package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/props"
	"repro/internal/store"
	"repro/internal/tree"
)

// config is the resolved server configuration. Field validation happens in
// parseFlags (main.go); newServer assumes a valid config.
type config struct {
	addr string
	// storePath is the verdict log; empty disables persistence.
	storePath string
	// cacheBytes bounds the resident verdict cache (NewBoundedViewCache).
	cacheBytes int64
	// maxInflight is the admission-control semaphore width: evaluations past
	// it are shed with 429 + Retry-After instead of queueing unboundedly.
	maxInflight int
	// defaultTimeout/maxTimeout bound per-request evaluation deadlines: the
	// default applies when the request names none, the max caps what a
	// request may ask for.
	defaultTimeout time.Duration
	maxTimeout     time.Duration
	// drainTimeout bounds graceful shutdown: in-flight evaluations get this
	// long to finish before the listener is torn down.
	drainTimeout time.Duration
	// queueDepth/syncEvery pass through to store.Options.
	queueDepth int
	syncEvery  bool
	// maxNodes caps instance sizes admitted for evaluation.
	maxNodes int

	// testDeciders lets tests register extra deterministic deciders (e.g. a
	// deliberately slow one) without widening the public vocabulary.
	testDeciders map[string]engine.Decider
}

// resident is one cached (graph, labels, decider) binding: built on first
// request, then reused for the server's lifetime so repeated evaluations pay
// zero construction cost and share every cached verdict.
type resident struct {
	l    *graph.Labeled
	dec  engine.Decider            // deterministic deciders
	rand local.RandomizedAlgorithm // randomized deciders (trials)
}

// server is the decided service: a resident verdict cache, an optional
// persistent store wired behind it, and the HTTP surface.
type server struct {
	cfg   config
	cache *engine.ViewCache
	store *store.Store // nil when persistence is off

	sem       chan struct{}
	ready     atomic.Bool
	residents sync.Map // key string → *resident

	served    atomic.Int64 // evaluations answered (eval + trials)
	rejected  atomic.Int64 // requests shed by admission control
	deadlines atomic.Int64 // evaluations cut by their deadline
	evalErrs  atomic.Int64 // evaluations that failed outright

	evalLat   latencyHist // /v1/eval evaluation latency (all outcomes)
	trialsLat latencyHist // /v1/trials sweep latency (all outcomes)

	start time.Time
	mux   *http.ServeMux
}

// newServer opens the store (recovering and warming the cache from it),
// wires the write-behind persistence hook, and builds the HTTP mux. The
// returned server is not yet ready: callers flip readiness once the listener
// is up.
func newServer(cfg config) (*server, error) {
	s := &server{
		cfg:   cfg,
		cache: engine.NewBoundedViewCache(cfg.cacheBytes),
		sem:   make(chan struct{}, cfg.maxInflight),
		start: time.Now(),
	}
	if cfg.storePath != "" {
		st, err := store.Open(cfg.storePath, store.Options{
			QueueDepth: cfg.queueDepth,
			SyncEvery:  cfg.syncEvery,
		})
		if err != nil {
			return nil, err
		}
		s.store = st
		// Warm-up: replay every recovered verdict into the cache. Insert
		// never echoes into the persist hook, so recovery cannot feed back
		// into the log.
		st.ForEach(func(r store.Record) {
			s.cache.Insert(r.Decider, r.Horizon, r.Code, engine.Verdict(r.Verdict))
		})
		// Write-behind: fresh canonical verdicts enqueue to the store; Put
		// never blocks (bounded queue, drop-on-overflow), which is the
		// contract the eval hot path requires.
		s.cache.SetPersist(func(decider string, horizon int, code []byte, verdict engine.Verdict) {
			st.Put(store.Record{Decider: decider, Horizon: horizon, Code: code, Verdict: bool(verdict)})
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/eval", s.handleEval)
	mux.HandleFunc("/v1/trials", s.handleTrials)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/statsz", s.handleStatsz)
	s.mux = mux
	return s, nil
}

// close flushes and closes the store. Call after the HTTP listener has
// drained so no evaluation races the final flush.
func (s *server) close() error {
	if s.store == nil {
		return nil
	}
	if err := s.store.Flush(); err != nil {
		s.store.Close()
		return err
	}
	return s.store.Close()
}

// httpError writes a plain-text error with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(status)
	fmt.Fprintf(w, format+"\n", args...)
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// admit acquires an admission slot without blocking. On shed it writes the
// 429 itself and returns false.
func (s *server) admit(w http.ResponseWriter) bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "server at capacity (%d evaluations in flight)", s.cfg.maxInflight)
		return false
	}
}

// release returns an admission slot.
func (s *server) release() { <-s.sem }

// requestTimeout resolves the evaluation deadline for a request: the
// timeout_ms query parameter when present (capped at maxTimeout), the
// configured default otherwise.
func (s *server) requestTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return s.cfg.defaultTimeout, nil
	}
	ms, err := strconv.Atoi(raw)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("timeout_ms must be a positive integer, got %q", raw)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.maxTimeout {
		d = s.cfg.maxTimeout
	}
	return d, nil
}

// residentFor resolves (and memoises) the instance+decider a request names.
func (s *server) residentFor(kind string, n int, deciderName string, seed int64) (*resident, error) {
	key := fmt.Sprintf("%s/%d/%s/%d", kind, n, deciderName, seed)
	if v, ok := s.residents.Load(key); ok {
		return v.(*resident), nil
	}
	g, err := buildServedGraph(kind, n, s.cfg.maxNodes)
	if err != nil {
		return nil, err
	}
	res, err := s.buildResident(g, deciderName, seed)
	if err != nil {
		return nil, err
	}
	actual, _ := s.residents.LoadOrStore(key, res)
	return actual.(*resident), nil
}

// buildServedGraph is the service's graph vocabulary — the same families
// localsim drives, capped at sizes a shared server should build on demand.
func buildServedGraph(kind string, n, maxNodes int) (*graph.Graph, error) {
	if n < 1 {
		return nil, fmt.Errorf("n must be positive, got %d", n)
	}
	var g *graph.Graph
	switch kind {
	case "cycle":
		g = graph.Cycle(n)
	case "path":
		g = graph.Path(n)
	case "star":
		g = graph.Star(n)
	case "grid":
		g = graph.Grid(n, 4)
	case "tree":
		if n > 24 {
			return nil, fmt.Errorf("tree depth %d out of range [1,24]", n)
		}
		g = graph.CompleteBinaryTree(n)
	case "pyramid":
		if n > 10 {
			return nil, fmt.Errorf("pyramid height %d out of range [1,10]", n)
		}
		g = tree.NewPyramid(n).G
	default:
		return nil, fmt.Errorf("unknown graph kind %q (cycle | path | star | grid | tree | pyramid)", kind)
	}
	if g.N() > maxNodes {
		return nil, fmt.Errorf("instance has %d nodes, over the served cap %d", g.N(), maxNodes)
	}
	return g, nil
}

// buildResident binds a decider name to a labeled instance.
func (s *server) buildResident(g *graph.Graph, name string, seed int64) (*resident, error) {
	if dec, ok := s.cfg.testDeciders[name]; ok {
		return &resident{l: graph.UniformlyLabeled(g, ""), dec: dec}, nil
	}
	switch name {
	case "3col":
		l := graph.RandomLabels(g, []graph.Label{"0", "1", "2"}, seed)
		return &resident{l: l, dec: local.EngineObliviousDecider(props.ThreeColoringVerifier())}, nil
	case "mis":
		l := graph.RandomLabels(g, []graph.Label{"0", "1"}, seed)
		return &resident{l: l, dec: local.EngineObliviousDecider(props.MISVerifier())}, nil
	case "degree2":
		return &resident{l: graph.UniformlyLabeled(g, ""), dec: local.EngineObliviousDecider(props.BoundedDegreeVerifier(2))}, nil
	case "triangle-free":
		return &resident{l: graph.UniformlyLabeled(g, ""), dec: local.EngineObliviousDecider(props.TriangleFreeVerifier())}, nil
	case "coin":
		alg := local.RandomizedFunc("coin(1/64)", 0, func(_ *graph.View, rng *rand.Rand) local.Verdict {
			return local.Verdict(rng.Intn(64) != 0)
		})
		return &resident{l: graph.UniformlyLabeled(g, ""), rand: alg}, nil
	default:
		return nil, fmt.Errorf("unknown decider %q (3col | mis | degree2 | triangle-free | coin)", name)
	}
}

// evalResponse is the JSON body of /v1/eval.
type evalResponse struct {
	Graph     string  `json:"graph"`
	N         int     `json:"n"`
	Decider   string  `json:"decider"`
	Accepted  bool    `json:"accepted"`
	Evaluated int     `json:"evaluated"`
	DedupHits int     `json:"dedupHits"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// parseCommon extracts the (graph, n, decider, seed) quadruple shared by
// /v1/eval and /v1/trials.
func parseCommon(r *http.Request) (kind string, n int, decider string, seed int64, err error) {
	q := r.URL.Query()
	kind = q.Get("graph")
	if kind == "" {
		kind = "cycle"
	}
	decider = q.Get("decider")
	if decider == "" {
		return "", 0, "", 0, errors.New("missing decider parameter")
	}
	n = 8
	if raw := q.Get("n"); raw != "" {
		if n, err = strconv.Atoi(raw); err != nil {
			return "", 0, "", 0, fmt.Errorf("n must be an integer, got %q", raw)
		}
	}
	seed = 1
	if raw := q.Get("seed"); raw != "" {
		if seed, err = strconv.ParseInt(raw, 10, 64); err != nil {
			return "", 0, "", 0, fmt.Errorf("seed must be an integer, got %q", raw)
		}
	}
	return kind, n, decider, seed, nil
}

// handleEval evaluates a deterministic decider on the named instance through
// the resident cache, under the request's deadline and the server's
// admission control.
func (s *server) handleEval(w http.ResponseWriter, r *http.Request) {
	kind, n, deciderName, seed, err := parseCommon(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	backend := engine.Scheduler(nil)
	switch b := r.URL.Query().Get("backend"); b {
	case "", "sequential":
	case "sharded":
		backend = engine.Sharded
	default:
		httpError(w, http.StatusBadRequest, "unknown backend %q (sequential | sharded)", b)
		return
	}
	if !s.admit(w) {
		return
	}
	defer s.release()
	res, err := s.residentFor(kind, n, deciderName, seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	opts := engine.Options{Scheduler: backend, Seed: seed, Ctx: ctx, EarlyExit: true}
	// nocache=1 is a diagnostic: evaluate without the resident cache (and
	// without feeding it), so operators can measure the cold path and tests
	// can exercise full-length evaluations.
	if res.dec.Decide != nil && r.URL.Query().Get("nocache") != "1" {
		opts.Cache = s.cache // implies dedup; ignored for randomized deciders
	}
	var dec engine.Decider
	if res.dec.Decide != nil {
		dec = res.dec
	} else if res.rand != nil {
		dec = local.EngineRandomizedDecider(res.rand)
	} else {
		httpError(w, http.StatusInternalServerError, "resident without a decider")
		return
	}
	begin := time.Now()
	out := engine.EvalOblivious(dec, res.l, opts)
	elapsed := time.Since(begin)
	s.evalLat.observe(elapsed)

	switch {
	case out.Err == nil:
		s.served.Add(1)
		writeJSON(w, evalResponse{
			Graph: kind, N: res.l.N(), Decider: deciderName,
			Accepted: out.Accepted, Evaluated: out.Stats.Evaluated,
			DedupHits: out.Stats.DedupHits, ElapsedMs: float64(elapsed.Microseconds()) / 1000,
		})
	case errors.Is(out.Err, context.DeadlineExceeded):
		s.deadlines.Add(1)
		httpError(w, http.StatusGatewayTimeout, "evaluation exceeded its %v deadline", timeout)
	case errors.Is(out.Err, context.Canceled):
		// Client went away; nothing useful to write, but record it.
		s.deadlines.Add(1)
		httpError(w, http.StatusServiceUnavailable, "evaluation canceled")
	default:
		s.evalErrs.Add(1)
		httpError(w, http.StatusInternalServerError, "evaluation failed: %v", out.Err)
	}
}

// trialsResponse is the JSON body of /v1/trials.
type trialsResponse struct {
	Graph     string  `json:"graph"`
	N         int     `json:"n"`
	Decider   string  `json:"decider"`
	Requested int     `json:"requested"`
	Committed int     `json:"committed"`
	Accepted  int     `json:"accepted"`
	Estimate  float64 `json:"estimate"`
	CILow     float64 `json:"ciLow"`
	CIHigh    float64 `json:"ciHigh"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// handleTrials runs a Monte Carlo acceptance sweep of a randomized decider
// under the request's deadline. A deadline that cuts the sweep mid-way still
// returns the committed prefix — partial statistics, honestly flagged with
// partial=true semantics via committed < requested.
func (s *server) handleTrials(w http.ResponseWriter, r *http.Request) {
	kind, n, deciderName, seed, err := parseCommon(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	timeout, err := s.requestTimeout(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	trials := 100
	if raw := r.URL.Query().Get("trials"); raw != "" {
		if trials, err = strconv.Atoi(raw); err != nil || trials < 1 {
			httpError(w, http.StatusBadRequest, "trials must be a positive integer, got %q", raw)
			return
		}
	}
	confidence := 0.95
	if raw := r.URL.Query().Get("confidence"); raw != "" {
		if confidence, err = strconv.ParseFloat(raw, 64); err != nil || confidence <= 0 || confidence >= 1 || math.IsNaN(confidence) {
			httpError(w, http.StatusBadRequest, "confidence must be in (0, 1), got %q", raw)
			return
		}
	}
	if !s.admit(w) {
		return
	}
	defer s.release()
	res, err := s.residentFor(kind, n, deciderName, seed)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if res.rand == nil {
		httpError(w, http.StatusBadRequest, "decider %q is deterministic; /v1/trials needs a randomized decider (coin)", deciderName)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()
	begin := time.Now()
	stats, terr := local.AcceptanceTrials(res.rand, res.l, engine.TrialOptions{
		Trials: trials, Seed: seed, Confidence: confidence, Ctx: ctx,
	})
	elapsed := time.Since(begin)
	s.trialsLat.observe(elapsed)
	if terr != nil && !errors.Is(terr, context.DeadlineExceeded) && !errors.Is(terr, context.Canceled) {
		s.evalErrs.Add(1)
		httpError(w, http.StatusInternalServerError, "trial sweep failed: %v", terr)
		return
	}
	if terr != nil {
		s.deadlines.Add(1)
	}
	s.served.Add(1)
	writeJSON(w, trialsResponse{
		Graph: kind, N: res.l.N(), Decider: deciderName,
		Requested: trials, Committed: stats.Trials, Accepted: stats.Accepted,
		Estimate: stats.Estimate, CILow: stats.CI.Low, CIHigh: stats.CI.High,
		ElapsedMs: float64(elapsed.Microseconds()) / 1000,
	})
}

// handleHealthz reports process liveness: 200 whenever the process can run a
// handler at all.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReadyz reports serving readiness: 200 once the store is recovered
// and the listener is up, 503 before that and again once shutdown begins —
// the signal a load balancer uses to drain this instance.
func (s *server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.ready.Load() {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, "ready")
		return
	}
	httpError(w, http.StatusServiceUnavailable, "not ready")
}

// statszResponse is the JSON body of /statsz.
type statszResponse struct {
	UptimeSeconds float64           `json:"uptimeSeconds"`
	Goroutines    int               `json:"goroutines"`
	Inflight      int               `json:"inflight"`
	MaxInflight   int               `json:"maxInflight"`
	Served        int64             `json:"served"`
	Rejected      int64             `json:"rejected"`
	Deadlines     int64             `json:"deadlineExceeded"`
	EvalErrors    int64             `json:"evalErrors"`
	Latency       latencyByRoute    `json:"latency"`
	Cache         engine.CacheStats `json:"cache"`
	Store         *store.Stats      `json:"store,omitempty"`
}

// latencyByRoute carries the per-route latency distributions of /statsz.
type latencyByRoute struct {
	Eval   latencySummary `json:"eval"`
	Trials latencySummary `json:"trials"`
}

// handleStatsz exposes the server's counters, the cache's accounting and the
// store's recovery/flush counters as one JSON document.
func (s *server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	resp := statszResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Goroutines:    runtime.NumGoroutine(),
		Inflight:      len(s.sem),
		MaxInflight:   s.cfg.maxInflight,
		Served:        s.served.Load(),
		Rejected:      s.rejected.Load(),
		Deadlines:     s.deadlines.Load(),
		EvalErrors:    s.evalErrs.Load(),
		Latency: latencyByRoute{
			Eval:   s.evalLat.summarize(),
			Trials: s.trialsLat.summarize(),
		},
		Cache: s.cache.Stats(),
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &st
	}
	writeJSON(w, resp)
}
