package main

import (
	"path/filepath"
	"sort"
	"strconv"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/store"
)

// benchDecider mirrors the engine miss benchmark's cheap decider: horizon 16
// on a randomly-labelled cycle makes every view distinct, so a cold sweep
// pays the full miss path (canonical code + insert + persist) at every node.
func benchDecider() engine.Decider {
	return engine.Decider{Name: "deg<=4", Horizon: 16, Decide: func(view *graph.View) engine.Verdict {
		return engine.Verdict(view.G.Degree(view.Root) <= 4)
	}}
}

// BenchmarkStoreWriteBehind measures what the write-behind persistence hook
// costs the eval path, in the two regimes that matter:
//
//   - steady: a warmed cache swept repeatedly — the resident service's
//     dominant regime, where every view hits and the persist hook never
//     fires, so persistence must cost the eval path nothing. (The gated
//     form of this claim is BenchmarkStoreSteadyOverhead below.)
//   - coldmiss: a fresh cache every iteration over pairwise-distinct views,
//     so all 512 nodes insert and persist — the worst case. Reported for
//     tracking; the enqueue is non-blocking (flusher I/O happens behind a
//     separate writer lock) but each fresh verdict still pays the dedup-map
//     and queue handoff, so this regime is bounded, not free.
func BenchmarkStoreWriteBehind(b *testing.B) {
	host := graph.RandomLabels(graph.Cycle(512), []graph.Label{"a", "b"}, 23)
	dec := benchDecider()
	sweep := func(b *testing.B, cache *engine.ViewCache) {
		out := engine.EvalOblivious(dec, host, engine.Options{Cache: cache})
		if out.Err != nil {
			b.Fatalf("sweep failed: %v", out.Err)
		}
	}
	openStore := func(b *testing.B) *store.Store {
		st, err := store.Open(filepath.Join(b.TempDir(), "bench.log"), store.Options{QueueDepth: 4096})
		if err != nil {
			b.Fatalf("store: %v", err)
		}
		b.Cleanup(func() { st.Close() })
		return st
	}
	b.Run("steady/nostore", func(b *testing.B) {
		cache := engine.NewBoundedViewCache(1 << 22)
		sweep(b, cache)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, cache)
		}
	})
	b.Run("steady/store", func(b *testing.B) {
		st := openStore(b)
		cache := engine.NewBoundedViewCache(1 << 22)
		cache.SetPersist(func(decider string, horizon int, code []byte, verdict engine.Verdict) {
			st.Put(store.Record{Decider: decider, Horizon: horizon, Code: code, Verdict: bool(verdict)})
		})
		sweep(b, cache)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sweep(b, cache)
		}
	})
	b.Run("coldmiss/nostore", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sweep(b, engine.NewBoundedViewCache(1<<22))
		}
	})
	b.Run("coldmiss/store", func(b *testing.B) {
		st := openStore(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cache := engine.NewBoundedViewCache(1 << 22)
			// The decider name is salted per iteration so every record is a
			// fresh key: each iteration pays the full enqueue path, not the
			// cheaper already-known dedup check.
			salt := strconv.Itoa(i) + "/"
			cache.SetPersist(func(decider string, horizon int, code []byte, verdict engine.Verdict) {
				st.Put(store.Record{Decider: salt + decider, Horizon: horizon, Code: code, Verdict: bool(verdict)})
			})
			sweep(b, cache)
		}
	})
}

// BenchmarkStoreSteadyOverhead is the gated form of the steady-state claim:
// it times the store-backed and store-free sweeps interleaved, pair by pair,
// inside one benchmark run — machine noise and frequency drift hit both arms
// of a pair alike — and reports the median per-pair backed/plain ratio as an
// "overhead" metric. The median is the right statistic for the bound: a real
// persist-hook cost would inflate most pairs and shift it, while a noise
// spike landing on either arm of a few pairs cannot. CI gates overhead
// ≤ 1.05 (benchgate -metric overhead -max-value): once the cache is warm the
// persist hook never fires, so the store must cost the eval hot path nothing
// beyond noise. The split two-arm wall-clock benchmark above is for
// tracking; ratios of independently-timed arms are too noisy on shared
// runners to gate at 5%.
func BenchmarkStoreSteadyOverhead(b *testing.B) {
	host := graph.RandomLabels(graph.Cycle(512), []graph.Label{"a", "b"}, 23)
	dec := benchDecider()
	sweep := func(cache *engine.ViewCache) {
		out := engine.EvalOblivious(dec, host, engine.Options{Cache: cache})
		if out.Err != nil {
			b.Fatalf("sweep failed: %v", out.Err)
		}
	}
	st, err := store.Open(filepath.Join(b.TempDir(), "bench.log"), store.Options{QueueDepth: 4096})
	if err != nil {
		b.Fatalf("store: %v", err)
	}
	defer st.Close()
	plain := engine.NewBoundedViewCache(1 << 22)
	backed := engine.NewBoundedViewCache(1 << 22)
	backed.SetPersist(func(decider string, horizon int, code []byte, verdict engine.Verdict) {
		st.Put(store.Record{Decider: decider, Horizon: horizon, Code: code, Verdict: bool(verdict)})
	})
	sweep(plain)
	sweep(backed)
	const pairs = 16
	var ratios []float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := 0; p < pairs; p++ {
			t0 := time.Now()
			sweep(plain)
			t1 := time.Now()
			sweep(backed)
			t2 := time.Now()
			ratios = append(ratios, float64(t2.Sub(t1))/float64(t1.Sub(t0)))
		}
	}
	sort.Float64s(ratios)
	b.ReportMetric(ratios[len(ratios)/2], "overhead")
}
