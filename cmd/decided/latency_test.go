package main

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestLatencyHistQuantiles pins the bucket arithmetic: quantiles resolve to
// the upper edge of the log2 bucket they fall in.
func TestLatencyHistQuantiles(t *testing.T) {
	var h latencyHist
	// 90 fast requests in (512µs, 1024µs] bit-length 10, 10 slow ones in
	// (32ms, 64ms] bit-length 16.
	for i := 0; i < 90; i++ {
		h.observe(600 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.observe(40 * time.Millisecond)
	}
	s := h.summarize()
	if s.Count != 100 {
		t.Fatalf("count %d, want 100", s.Count)
	}
	fastEdge := float64(uint64(1)<<10-1) / 1000 // 1.023 ms
	slowEdge := float64(uint64(1)<<16-1) / 1000 // 65.535 ms
	if s.P50Ms != fastEdge {
		t.Errorf("p50 %v ms, want fast bucket edge %v", s.P50Ms, fastEdge)
	}
	if s.P95Ms != slowEdge {
		t.Errorf("p95 %v ms, want slow bucket edge %v", s.P95Ms, slowEdge)
	}
	if s.P99Ms != slowEdge {
		t.Errorf("p99 %v ms, want slow bucket edge %v", s.P99Ms, slowEdge)
	}
	wantMean := (90*0.6 + 10*40) / 100
	if diff := s.MeanMs - wantMean; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("mean %v ms, want %v", s.MeanMs, wantMean)
	}
}

// TestLatencyHistEdges: zero, negative, and absurdly large observations all
// land in a bucket instead of panicking or skewing the count.
func TestLatencyHistEdges(t *testing.T) {
	var h latencyHist
	h.observe(0)
	h.observe(-5 * time.Millisecond)
	h.observe(200 * time.Hour)
	if s := h.summarize(); s.Count != 3 {
		t.Fatalf("count %d, want 3", s.Count)
	}
	var empty latencyHist
	if s := empty.summarize(); s.Count != 0 || s.P50Ms != 0 || s.MeanMs != 0 {
		t.Fatalf("empty histogram must summarize to zeros, got %+v", s)
	}
}

// TestLatencyHistConcurrent: recording is safe under concurrent writers and
// the total count is exact.
func TestLatencyHistConcurrent(t *testing.T) {
	var h latencyHist
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.observe(time.Duration(w*i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if s := h.summarize(); s.Count != workers*per {
		t.Fatalf("count %d, want %d", s.Count, workers*per)
	}
}

// TestStatszLatency: the per-route histograms surface in /statsz — eval
// requests populate the eval route and leave the trials route empty, and
// the quantile fields come back ordered.
func TestStatszLatency(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for i := 0; i < 3; i++ {
		get(t, ts.URL+"/v1/eval?graph=cycle&n=64&decider=degree2")
	}
	get(t, ts.URL+"/v1/trials?graph=cycle&n=16&decider=coin&trials=20")
	_, body := get(t, ts.URL+"/statsz")
	var st statszResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statsz not JSON: %v\n%s", err, body)
	}
	if st.Latency.Eval.Count != 3 {
		t.Errorf("eval latency count %d, want 3", st.Latency.Eval.Count)
	}
	if st.Latency.Trials.Count != 1 {
		t.Errorf("trials latency count %d, want 1", st.Latency.Trials.Count)
	}
	e := st.Latency.Eval
	if e.P50Ms <= 0 || e.P50Ms > e.P95Ms || e.P95Ms > e.P99Ms {
		t.Errorf("eval quantiles out of order: %+v", e)
	}
}
