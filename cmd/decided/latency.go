package main

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// latencyHist is a fixed-bucket log2 latency histogram: bucket i counts
// requests whose latency in microseconds has bit-length i (i.e. lies in
// [2^(i-1), 2^i)), so 32 buckets span sub-microsecond to over an hour.
// Recording is two atomic adds on the hot path — no locks, no allocation,
// no dependencies — and reading tolerates racing writers (a snapshot may be
// off by the handful of requests in flight, which is what a monitoring
// endpoint wants).
type latencyHist struct {
	buckets [32]atomic.Int64
	count   atomic.Int64
	sumUs   atomic.Int64
}

// observe records one request latency.
func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us))
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUs.Add(us)
}

// latencySummary is the JSON shape of one route's latency distribution:
// request count, mean, and the p50/p95/p99 bucket upper bounds in
// milliseconds. Quantiles are resolved to the upper edge of the log2 bucket
// the quantile falls in, so they are exact to within a factor of two — the
// precision a fixed-bucket histogram buys for two atomic adds per request.
type latencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
}

// summarize snapshots the histogram into its JSON shape.
func (h *latencyHist) summarize() latencySummary {
	var counts [32]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s := latencySummary{Count: total}
	if total == 0 {
		return s
	}
	s.MeanMs = float64(h.sumUs.Load()) / float64(total) / 1000
	quantile := func(q float64) float64 {
		// The smallest bucket upper edge covering fraction q of requests.
		need := int64(q*float64(total)) + 1
		if need > total {
			need = total
		}
		var seen int64
		for i, c := range counts {
			seen += c
			if seen >= need {
				// Bucket i spans [2^(i-1), 2^i) µs; report the upper edge.
				return float64(uint64(1)<<uint(i)-1) / 1000
			}
		}
		return float64(uint64(1)<<uint(len(counts))-1) / 1000
	}
	s.P50Ms = quantile(0.50)
	s.P95Ms = quantile(0.95)
	s.P99Ms = quantile(0.99)
	return s
}
