package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/store"
)

// chaosServeEnv guards the re-exec child body: when set to the store path,
// the test binary runs a serving-and-requesting loop instead of the suite.
const chaosServeEnv = "DECIDED_CHAOS_SERVE"

// chaosRequestSet is the deterministic request vocabulary both the child
// (writing) and the parent (verifying) iterate. Seeded 3col/mis members keep
// producing fresh labelings — hence fresh canonical views and fresh store
// records — so the write-behind log is still being appended whenever the
// SIGKILL lands.
func chaosRequestSet() []string {
	reqs := []string{
		"/v1/eval?graph=cycle&n=64&decider=degree2",
		"/v1/eval?graph=star&n=9&decider=degree2",
		"/v1/eval?graph=path&n=33&decider=triangle-free",
		"/v1/eval?graph=grid&n=12&decider=triangle-free",
	}
	for seed := 0; seed < 40; seed++ {
		reqs = append(reqs,
			fmt.Sprintf("/v1/eval?graph=cycle&n=97&decider=3col&seed=%d", seed),
			fmt.Sprintf("/v1/eval?graph=cycle&n=51&decider=mis&seed=%d", seed))
	}
	return reqs
}

// TestChaosKillRestartVerify is the end-to-end crash-safety contract:
//
//  1. a child process serves decisions with a sync-every store and a tiny
//     write-behind queue, evaluating the request set in a loop;
//  2. the parent SIGKILLs it mid-stream — mid-write with high probability;
//  3. the parent restarts the service in-process on the recovered store and
//     re-issues every request, comparing each served verdict against a
//     fresh engine evaluation with no cache and no store.
//
// Any corrupt record that survived recovery — or any cache warm-up serving
// mangled bytes — shows up as a verdict mismatch here.
func TestChaosKillRestartVerify(t *testing.T) {
	if path := os.Getenv(chaosServeEnv); path != "" {
		chaosServe(path)
		os.Exit(0)
	}
	if testing.Short() {
		t.Skip("re-exec chaos test skipped in -short")
	}
	bin, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	storePath := filepath.Join(t.TempDir(), "chaos-verdicts.log")
	cmd := exec.Command(bin, "-test.run", "TestChaosKillRestartVerify")
	cmd.Env = append(os.Environ(), chaosServeEnv+"="+storePath)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("stdout pipe: %v", err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatalf("start child: %v", err)
	}
	// The child prints one line per completed loop pass; wait until it has
	// served at least one full pass so there are verdicts worth losing, then
	// kill it without warning.
	ready := make(chan struct{})
	go func() {
		buf := make([]byte, 1)
		for {
			if _, err := out.Read(buf); err != nil {
				return
			}
			if buf[0] == '\n' {
				close(ready)
				return
			}
		}
	}()
	select {
	case <-ready:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("child never completed a serving pass")
	}
	time.Sleep(25 * time.Millisecond) // land inside the second pass's writes
	cmd.Process.Kill()
	cmd.Wait()

	// Restart: same store, fresh process (in-process here). Recovery must
	// succeed whatever the kill tore.
	cfg := testConfig()
	cfg.storePath = storePath
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("restart after SIGKILL: %v", err)
	}
	s.ready.Store(true)
	ts := httptest.NewServer(s.mux)
	defer func() {
		ts.Close()
		if err := s.close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	st := s.store.Stats()
	t.Logf("recovered %d records, truncated %d bytes, schema-skipped %d",
		st.Recovered, st.TruncatedBytes, st.SkippedSchema)

	// Re-issue every request and check each served verdict against a fresh
	// engine evaluation that bypasses cache and store entirely.
	for _, q := range chaosRequestSet() {
		resp, err := http.Get(ts.URL + q)
		if err != nil {
			t.Fatalf("GET %s: %v", q, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", q, resp.StatusCode, body)
		}
		var got evalResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", q, err)
		}
		want := freshVerdict(t, q)
		if got.Accepted != want {
			t.Fatalf("served verdict diverges from fresh engine evaluation for %s: served %v, fresh %v",
				q, got.Accepted, want)
		}
	}
}

// TestChaosRestartReplayIncremental is the dynamic extension of the chaos
// suite: verdicts persisted during a session that mutated its instance must
// replay into a fresh engine.Incremental session after a crash-and-recover,
// leaving the restarted session fully warm — zero fresh decisions for the
// initial full state — and subsequent updates repairing only their dirty
// balls, with verdicts matching a from-scratch ground-truth evaluation.
func TestChaosRestartReplayIncremental(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "dynamic-verdicts.log")
	srv := &server{cfg: testConfig()}
	g, err := buildServedGraph("cycle", 256, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.buildResident(g, "degree2", 0)
	if err != nil {
		t.Fatal(err)
	}

	// Session one: decide with a persistent cache, stream edge updates so
	// post-update view shapes reach the log too, then flush and tear the tail
	// (the torn record a SIGKILL mid-append would leave).
	st, err := store.Open(storePath, store.Options{SyncEvery: true})
	if err != nil {
		t.Fatal(err)
	}
	cache := engine.NewViewCache()
	cache.SetPersist(func(decider string, horizon int, code []byte, verdict engine.Verdict) {
		st.Put(store.Record{Decider: decider, Horizon: horizon, Code: code, Verdict: bool(verdict)})
	})
	inc := engine.MustNewIncremental(res.dec, res.l, engine.Options{Cache: cache})
	ops := []engine.EdgeOp{
		{U: 3, V: 100, Add: true},
		{U: 50, V: 51, Add: false},
		{U: 200, V: 10, Add: true},
	}
	for _, op := range ops {
		inc.ApplyEdge(op.U, op.V, op.Add)
	}
	want := append([]engine.Verdict(nil), inc.Verdicts()...)
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(storePath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn-mid-append")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Restart: recover the store (truncating the torn tail), warm a fresh
	// cache from it, and replay the final mutated instance into a new
	// incremental session.
	st2, err := store.Open(storePath, store.Options{})
	if err != nil {
		t.Fatalf("restart after torn append: %v", err)
	}
	defer st2.Close()
	if tr := st2.Stats().TruncatedBytes; tr == 0 {
		t.Fatal("recovery did not truncate the torn tail")
	}
	cache2 := engine.NewViewCache()
	st2.ForEach(func(r store.Record) {
		cache2.Insert(r.Decider, r.Horizon, r.Code, engine.Verdict(r.Verdict))
	})
	l2 := graph.NewLabeled(res.l.G.Clone(), append([]graph.Label(nil), res.l.Labels...))
	inc2 := engine.MustNewIncremental(res.dec, l2, engine.Options{Cache: cache2})
	if s2 := inc2.Stats(); s2.Evaluated != 0 {
		t.Fatalf("restarted session decided %d views fresh; recovered store should cover them all", s2.Evaluated)
	}
	got := inc2.Verdicts()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("node %d: replayed verdict %v != pre-crash verdict %v", v, got[v], want[v])
		}
	}

	// The recovered session keeps absorbing dynamics: each update decides at
	// most its dirty ball (cold views only), and stays bit-identical to a
	// cache-free from-scratch evaluation.
	for i, op := range []engine.EdgeOp{
		{U: 3, V: 100, Add: false},
		{U: 7, V: 77, Add: true},
	} {
		before := inc2.Stats().Evaluated
		dirty := inc2.ApplyEdge(op.U, op.V, op.Add)
		if delta := inc2.Stats().Evaluated - before; delta > dirty {
			t.Fatalf("update %d decided %d views for a %d-node dirty set", i, delta, dirty)
		}
		fresh := engine.EvalOblivious(res.dec, l2, engine.Options{})
		if fresh.Err != nil {
			t.Fatal(fresh.Err)
		}
		if fresh.Accepted != inc2.Accepted() {
			t.Fatalf("update %d: session accepted=%v, fresh engine %v", i, inc2.Accepted(), fresh.Accepted)
		}
		for v, vd := range fresh.Verdicts {
			if inc2.Verdict(v) != vd {
				t.Fatalf("update %d: node %d session verdict %v != fresh %v", i, v, inc2.Verdict(v), vd)
			}
		}
	}
}

// freshVerdict evaluates the instance a request names with a brand-new
// engine run: no cache, no dedup, no store — the ground truth the recovered
// service must agree with.
func freshVerdict(t *testing.T, rawQuery string) bool {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, rawQuery, nil)
	if err != nil {
		t.Fatalf("parse %s: %v", rawQuery, err)
	}
	kind, n, deciderName, seed, err := parseCommon(req)
	if err != nil {
		t.Fatalf("parse %s: %v", rawQuery, err)
	}
	g, err := buildServedGraph(kind, n, 1<<21)
	if err != nil {
		t.Fatalf("build %s: %v", rawQuery, err)
	}
	fresh := &server{cfg: testConfig()}
	res, err := fresh.buildResident(g, deciderName, seed)
	if err != nil {
		t.Fatalf("decider %s: %v", rawQuery, err)
	}
	out := engine.EvalOblivious(res.dec, res.l, engine.Options{EarlyExit: true})
	if out.Err != nil {
		t.Fatalf("fresh evaluation of %s failed: %v", rawQuery, out.Err)
	}
	return out.Accepted
}

// chaosServe is the child body: serve on a loopback port and evaluate the
// request set in an endless loop, printing one newline per completed pass.
// SyncEvery plus a tiny queue keeps the store appending continuously so the
// parent's SIGKILL lands mid-write with high probability.
func chaosServe(storePath string) {
	cfg := testConfig()
	cfg.storePath = storePath
	cfg.syncEvery = true
	cfg.queueDepth = 4
	s, err := newServer(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos child: %v\n", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Fprintf(os.Stderr, "chaos child: %v\n", err)
		os.Exit(1)
	}
	s.ready.Store(true)
	go http.Serve(ln, s.mux)
	base := "http://" + ln.Addr().String()
	serve := func(q string) {
		resp, err := http.Get(base + q)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chaos child: %v\n", err)
			os.Exit(1)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	// Pass one: the fixed set the parent verifies after restart.
	for _, q := range chaosRequestSet() {
		serve(q)
	}
	fmt.Println() // pass completed: the parent may kill any time now
	// Then: ever-fresh seeds, so new canonical views keep flowing into the
	// write-behind log and the SIGKILL lands while the store is appending.
	for seed := 1000; ; seed++ {
		serve(fmt.Sprintf("/v1/eval?graph=cycle&n=97&decider=3col&seed=%d", seed))
		serve(fmt.Sprintf("/v1/eval?graph=cycle&n=51&decider=mis&seed=%d", seed))
	}
}
