package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/testutil"
)

// testConfig is a small, fast server configuration for in-process tests.
func testConfig() config {
	return config{
		addr:           "127.0.0.1:0",
		cacheBytes:     1 << 20,
		maxInflight:    8,
		defaultTimeout: 5 * time.Second,
		maxTimeout:     10 * time.Second,
		drainTimeout:   5 * time.Second,
		queueDepth:     64,
		maxNodes:       1 << 20,
	}
}

// slowDecider is a deterministic decider that sleeps per view — the handle
// tests use (with nocache=1) to hold evaluations in flight on demand.
func slowDecider(perView time.Duration) engine.Decider {
	return engine.Decider{Name: "slowdec", Horizon: 1,
		Decide: func(*graph.View) engine.Verdict {
			time.Sleep(perView)
			return engine.Yes
		}}
}

// newTestServer builds an in-process server plus an httptest front end.
func newTestServer(t *testing.T, cfg config) (*server, *httptest.Server) {
	t.Helper()
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	s.ready.Store(true)
	ts := httptest.NewServer(s.mux)
	t.Cleanup(func() {
		ts.Close()
		if err := s.close(); err != nil {
			t.Errorf("server close: %v", err)
		}
	})
	return s, ts
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestEvalEndpoint: a decision request answers correctly and the second
// identical request is served entirely from the resident cache.
func TestEvalEndpoint(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	_, ts := newTestServer(t, testConfig())
	code, body := get(t, ts.URL+"/v1/eval?graph=cycle&n=64&decider=degree2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r1 evalResponse
	if err := json.Unmarshal([]byte(body), &r1); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if !r1.Accepted || r1.N != 64 {
		t.Fatalf("cycle/degree2 must accept: %+v", r1)
	}
	_, body = get(t, ts.URL+"/v1/eval?graph=cycle&n=64&decider=degree2")
	var r2 evalResponse
	json.Unmarshal([]byte(body), &r2)
	if r2.Evaluated != 0 {
		t.Fatalf("repeat request re-evaluated %d views; want full cache service", r2.Evaluated)
	}
	// A rejecting instance rejects: a star's hub exceeds degree 2.
	_, body = get(t, ts.URL+"/v1/eval?graph=star&n=6&decider=degree2")
	var r3 evalResponse
	json.Unmarshal([]byte(body), &r3)
	if r3.Accepted {
		t.Fatalf("star/degree2 must reject: %+v", r3)
	}
}

// TestEvalValidation: malformed requests get one-line 400s, not evaluations.
func TestEvalValidation(t *testing.T) {
	_, ts := newTestServer(t, testConfig())
	for _, q := range []string{
		"/v1/eval?decider=degree2&graph=nosuch",
		"/v1/eval?decider=nosuch",
		"/v1/eval",
		"/v1/eval?decider=degree2&n=abc",
		"/v1/eval?decider=degree2&n=-3",
		"/v1/eval?decider=degree2&timeout_ms=0",
		"/v1/eval?decider=degree2&timeout_ms=xyz",
		"/v1/eval?decider=degree2&backend=quantum",
		"/v1/eval?decider=degree2&seed=1e9",
		"/v1/trials?decider=coin&trials=0",
		"/v1/trials?decider=coin&confidence=1.5",
		"/v1/trials?decider=degree2", // deterministic decider on the trials endpoint
	} {
		code, body := get(t, ts.URL+q)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d (want 400): %s", q, code, strings.TrimSpace(body))
		}
	}
	// The size cap is enforced before construction of oversized instances.
	cfg := testConfig()
	cfg.maxNodes = 100
	_, ts2 := newTestServer(t, cfg)
	if code, _ := get(t, ts2.URL+"/v1/eval?graph=cycle&n=101&decider=degree2"); code != http.StatusBadRequest {
		t.Errorf("over-cap instance: status %d, want 400", code)
	}
}

// TestEvalDeadline: an evaluation that cannot finish inside its timeout_ms
// returns 504 and counts a deadline, instead of hogging the worker.
func TestEvalDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := testConfig()
	cfg.testDeciders = map[string]engine.Decider{"slowdec": slowDecider(200 * time.Microsecond)}
	s, ts := newTestServer(t, cfg)
	start := time.Now()
	code, body := get(t, ts.URL+"/v1/eval?graph=cycle&n=20000&decider=slowdec&nocache=1&timeout_ms=50")
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (want 504): %s", code, body)
	}
	// 20k views x 200µs is 4s; the deadline must cut far below.
	if elapsed > 2*time.Second {
		t.Fatalf("deadline-cut request took %v", elapsed)
	}
	if s.deadlines.Load() == 0 {
		t.Fatal("deadline counter not bumped")
	}
}

// TestAdmissionControl: with one admission slot, a second concurrent
// evaluation is shed with 429 + Retry-After, and service resumes once the
// slot frees.
func TestAdmissionControl(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := testConfig()
	cfg.maxInflight = 1
	cfg.testDeciders = map[string]engine.Decider{"slowdec": slowDecider(500 * time.Microsecond)}
	_, ts := newTestServer(t, cfg)

	slowDone := make(chan int, 1)
	go func() {
		code, _ := get(t, ts.URL+"/v1/eval?graph=cycle&n=4000&decider=slowdec&nocache=1")
		slowDone <- code
	}()
	// Wait until the slow evaluation holds the slot, then probe.
	deadline := time.Now().Add(2 * time.Second)
	var code int
	var hdr http.Header
	for {
		resp, err := http.Get(ts.URL + "/v1/eval?graph=cycle&n=8&decider=degree2")
		if err != nil {
			t.Fatalf("probe: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		code, hdr = resp.StatusCode, resp.Header
		if code == http.StatusTooManyRequests || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code != http.StatusTooManyRequests {
		t.Fatalf("probe while slot held: status %d, want 429", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := <-slowDone; got != http.StatusOK {
		t.Fatalf("slow evaluation finished %d, want 200", got)
	}
	// Slot free again: the same request now serves.
	if code, body := get(t, ts.URL+"/v1/eval?graph=cycle&n=8&decider=degree2"); code != http.StatusOK {
		t.Fatalf("post-drain request: status %d: %s", code, body)
	}
}

// TestTrialsEndpoint: the Monte Carlo endpoint returns committed statistics,
// and a deadline mid-sweep returns the committed prefix (committed <
// requested) rather than an error or a fabricated total.
func TestTrialsEndpoint(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	s, ts := newTestServer(t, testConfig())
	code, body := get(t, ts.URL+"/v1/trials?graph=cycle&n=32&decider=coin&trials=300&seed=7")
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var r1 trialsResponse
	if err := json.Unmarshal([]byte(body), &r1); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if r1.Committed != 300 {
		t.Fatalf("committed %d of 300 without a deadline", r1.Committed)
	}
	if r1.CILow > r1.Estimate || r1.Estimate > r1.CIHigh {
		t.Fatalf("estimate %v outside its CI [%v, %v]", r1.Estimate, r1.CILow, r1.CIHigh)
	}
	// A sweep too large for its deadline returns a partial prefix.
	code, body = get(t, ts.URL+"/v1/trials?graph=cycle&n=2048&decider=coin&trials=5000000&timeout_ms=50")
	if code != http.StatusOK {
		t.Fatalf("partial sweep status %d: %s", code, body)
	}
	var r2 trialsResponse
	json.Unmarshal([]byte(body), &r2)
	if r2.Committed >= r2.Requested {
		t.Fatalf("5M-trial sweep committed %d inside 50ms — deadline not applied", r2.Committed)
	}
	if s.deadlines.Load() == 0 {
		t.Fatal("partial sweep not counted as a deadline")
	}
}

// TestReadyz: readiness reflects the ready flag; health stays 200 throughout.
func TestReadyz(t *testing.T) {
	s, ts := newTestServer(t, testConfig())
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusOK {
		t.Fatalf("ready server reports %d", code)
	}
	s.ready.Store(false)
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("draining server reports %d, want 503", code)
	}
	if code, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz reports %d", code)
	}
}

// TestStatszShape: the stats document parses and carries the cache and
// store sections.
func TestStatszShape(t *testing.T) {
	cfg := testConfig()
	cfg.storePath = filepath.Join(t.TempDir(), "v.log")
	_, ts := newTestServer(t, cfg)
	get(t, ts.URL+"/v1/eval?graph=cycle&n=64&decider=degree2")
	_, body := get(t, ts.URL+"/statsz")
	var st statszResponse
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statsz not JSON: %v\n%s", err, body)
	}
	if st.Served != 1 || st.MaxInflight != testConfig().maxInflight {
		t.Fatalf("counters off: %+v", st)
	}
	if st.Cache.Capacity != testConfig().cacheBytes {
		t.Fatalf("cache capacity %d, want %d", st.Cache.Capacity, testConfig().cacheBytes)
	}
	if st.Store == nil {
		t.Fatal("store section missing with persistence on")
	}
}

// TestGracefulDrain: shutdown waits for the in-flight evaluation, which
// completes with 200; the store is flushed on close; no goroutines leak.
func TestGracefulDrain(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := testConfig()
	cfg.storePath = filepath.Join(t.TempDir(), "v.log")
	cfg.testDeciders = map[string]engine.Decider{"slowdec": slowDecider(500 * time.Microsecond)}
	s, err := newServer(cfg)
	if err != nil {
		t.Fatalf("newServer: %v", err)
	}
	s.ready.Store(true)
	ts := httptest.NewServer(s.mux)

	inFlight := make(chan int, 1)
	go func() {
		code, _ := get(t, ts.URL+"/v1/eval?graph=cycle&n=1000&decider=slowdec&nocache=1")
		inFlight <- code
	}()
	// Wait for the request to actually hold its admission slot.
	for i := 0; len(s.sem) == 0 && i < 400; i++ {
		time.Sleep(5 * time.Millisecond)
	}
	if len(s.sem) == 0 {
		t.Fatal("slow request never entered flight")
	}
	s.ready.Store(false)
	ts.Config.SetKeepAlivesEnabled(false)
	done := make(chan struct{})
	go func() { ts.Close(); close(done) }() // Close waits for outstanding requests
	select {
	case code := <-inFlight:
		if code != http.StatusOK {
			t.Fatalf("drained evaluation finished %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight evaluation never finished during drain")
	}
	<-done
	if err := s.close(); err != nil {
		t.Fatalf("store close after drain: %v", err)
	}
	if st := s.store.Stats(); st.Appended == 0 && st.QueueDrops == 0 {
		// The slow eval ran nocache so nothing persisted — but the earlier
		// counter contract still holds: closing flushed without error.
		t.Log("no records persisted (nocache evaluation), flush still clean")
	}
}

// TestOverloadSoak floods the server far past its admission width from many
// goroutines (run under -race): every response is 200 or 429, both occur,
// the server still serves afterwards, and no goroutines leak.
func TestOverloadSoak(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	cfg := testConfig()
	cfg.maxInflight = 2
	cfg.testDeciders = map[string]engine.Decider{"slowdec": slowDecider(100 * time.Microsecond)}
	s, ts := newTestServer(t, cfg)

	const clients = 16
	const perClient = 20
	var ok200, shed429 int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := 0; i < perClient; i++ {
				url := fmt.Sprintf("%s/v1/eval?graph=cycle&n=%d&decider=slowdec&nocache=1", ts.URL, 200+(c*perClient+i)%7)
				resp, err := client.Get(url)
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					ok200++
				case http.StatusTooManyRequests:
					shed429++
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if ok200 == 0 {
		t.Fatal("soak produced no successful evaluations")
	}
	if shed429 == 0 {
		t.Fatal("soak past 2 admission slots shed nothing — admission control inert")
	}
	if s.rejected.Load() != shed429 {
		t.Fatalf("rejected counter %d != observed 429s %d", s.rejected.Load(), shed429)
	}
	// The server is still healthy after the storm.
	if code, body := get(t, ts.URL+"/v1/eval?graph=cycle&n=64&decider=degree2"); code != http.StatusOK {
		t.Fatalf("post-soak request: status %d: %s", code, body)
	}
}

// TestParseFlagsValidation pins the up-front flag validation: each bad
// configuration is a one-line error before any socket or file opens.
func TestParseFlagsValidation(t *testing.T) {
	cases := [][]string{
		{"-addr", ""},
		{"-addr", "no-port-here"},
		{"-cache-bytes", "0"},
		{"-cache-bytes", "-5"},
		{"-max-inflight", "0"},
		{"-timeout", "0s"},
		{"-timeout", "10s", "-max-timeout", "1s"},
		{"-drain-timeout", "-1s"},
		{"-store-queue", "0"},
		{"-max-nodes", "0"},
		{"positional"},
	}
	for _, args := range cases {
		if _, err := parseFlags(args); err == nil {
			t.Errorf("parseFlags(%v) accepted a bad configuration", args)
		}
	}
	if _, err := parseFlags([]string{"-addr", "127.0.0.1:0"}); err != nil {
		t.Errorf("default configuration rejected: %v", err)
	}
}
