// Command decided is the decision-as-a-service daemon: a resident HTTP
// server that keeps the paper's instance families, a bounded verdict cache
// and a crash-safe persistent verdict store warm across requests, so
// repeated decision queries cost a cache lookup instead of a cold
// evaluation.
//
// Usage:
//
//	decided -addr :8080 -store /var/lib/decided/verdicts.log
//	decided -addr 127.0.0.1:0 -cache-bytes 67108864 -max-inflight 16
//
// Endpoints:
//
//	GET /v1/eval?graph=cycle&n=64&decider=degree2[&seed=1][&backend=sharded][&timeout_ms=500]
//	    Evaluate a deterministic decider on the named instance. Answers flow
//	    through the shared bounded cache; fresh verdicts are written behind
//	    to the store. 429 + Retry-After under overload, 504 when the
//	    evaluation exceeds its deadline.
//	GET /v1/trials?graph=cycle&n=64&decider=coin&trials=500[&confidence=0.99][&timeout_ms=2000]
//	    Monte Carlo acceptance sweep of a randomized decider. A deadline
//	    mid-sweep returns the committed prefix (committed < requested).
//	GET /healthz   process liveness.
//	GET /readyz    serving readiness: 503 before warm-up and during drain.
//	GET /statsz    counters: admission, cache accounting, store recovery.
//
// Shutdown: SIGTERM/SIGINT flips /readyz to 503, drains in-flight
// evaluations (bounded by -drain-timeout), flushes the store and exits —
// a SIGKILL'd instance instead recovers on next start by truncating the
// store's torn tail and re-serving every intact verdict.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "decided:", err)
		os.Exit(1)
	}
}

// parseFlags resolves and validates the configuration up front: every
// misconfiguration is a one-line usage error before any socket or file is
// touched.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("decided", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	storePath := fs.String("store", "", "persistent verdict log path (empty disables persistence)")
	cacheBytes := fs.Int64("cache-bytes", 64<<20, "verdict cache byte budget (bounded, CLOCK-evicted)")
	maxInflight := fs.Int("max-inflight", 32, "admission control: max concurrent evaluations before 429")
	defaultTimeout := fs.Duration("timeout", 5*time.Second, "default per-request evaluation deadline")
	maxTimeout := fs.Duration("max-timeout", 60*time.Second, "cap on the per-request timeout_ms parameter")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful-shutdown budget for in-flight evaluations")
	queueDepth := fs.Int("store-queue", 1024, "write-behind store queue depth")
	syncEvery := fs.Bool("store-sync", false, "fsync the store after every write batch")
	maxNodes := fs.Int("max-nodes", 1<<21, "largest instance (node count) served")
	if err := fs.Parse(args); err != nil {
		return config{}, err
	}
	if fs.NArg() > 0 {
		return config{}, fmt.Errorf("unexpected positional arguments: %v", fs.Args())
	}
	cfg := config{
		addr:           *addr,
		storePath:      *storePath,
		cacheBytes:     *cacheBytes,
		maxInflight:    *maxInflight,
		defaultTimeout: *defaultTimeout,
		maxTimeout:     *maxTimeout,
		drainTimeout:   *drainTimeout,
		queueDepth:     *queueDepth,
		syncEvery:      *syncEvery,
		maxNodes:       *maxNodes,
	}
	return cfg, validateConfig(cfg)
}

// validateConfig is the up-front configuration check shared by parseFlags
// and its tests.
func validateConfig(cfg config) error {
	if cfg.addr == "" {
		return errors.New("-addr must not be empty")
	}
	if _, _, err := net.SplitHostPort(cfg.addr); err != nil {
		return fmt.Errorf("-addr %q is not host:port: %v", cfg.addr, err)
	}
	if cfg.cacheBytes <= 0 {
		return fmt.Errorf("-cache-bytes must be positive, got %d", cfg.cacheBytes)
	}
	if cfg.maxInflight < 1 {
		return fmt.Errorf("-max-inflight must be at least 1, got %d", cfg.maxInflight)
	}
	if cfg.defaultTimeout <= 0 {
		return fmt.Errorf("-timeout must be positive, got %v", cfg.defaultTimeout)
	}
	if cfg.maxTimeout < cfg.defaultTimeout {
		return fmt.Errorf("-max-timeout %v must be at least -timeout %v", cfg.maxTimeout, cfg.defaultTimeout)
	}
	if cfg.drainTimeout <= 0 {
		return fmt.Errorf("-drain-timeout must be positive, got %v", cfg.drainTimeout)
	}
	if cfg.queueDepth < 1 {
		return fmt.Errorf("-store-queue must be at least 1, got %d", cfg.queueDepth)
	}
	if cfg.maxNodes < 1 {
		return fmt.Errorf("-max-nodes must be positive, got %d", cfg.maxNodes)
	}
	return nil
}

func run(args []string) error {
	cfg, err := parseFlags(args)
	if err != nil {
		return err
	}
	srv, err := newServer(cfg)
	if err != nil {
		return err
	}

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.mux}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		srv.close()
		return err
	}
	fmt.Printf("decided: listening on %s", ln.Addr())
	if cfg.storePath != "" {
		st := srv.store.Stats()
		fmt.Printf(" (store %s: %d verdicts recovered, %d bytes truncated)",
			cfg.storePath, st.Recovered, st.TruncatedBytes)
	}
	fmt.Println()
	srv.ready.Store(true)

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-serveErr:
		srv.close()
		return err
	case got := <-sig:
		fmt.Printf("decided: %v: draining (up to %v)\n", got, cfg.drainTimeout)
	}

	// Drain: stop admitting (readyz flips 503), let in-flight evaluations
	// finish, then flush the store so every served verdict is durable.
	srv.ready.Store(false)
	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		srv.close()
		return fmt.Errorf("drain: %w", err)
	}
	if err := srv.close(); err != nil {
		return fmt.Errorf("store shutdown: %w", err)
	}
	fmt.Println("decided: drained and flushed, exiting")
	return nil
}
