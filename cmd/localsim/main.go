// Command localsim runs a local decision algorithm on a generated instance
// and prints the per-node verdicts: a small driver for the LOCAL-model
// evaluation engine.
//
// Usage:
//
//	localsim -graph cycle -n 8 -decider 3col
//	localsim -graph cycle -n 1000 -decider degree2 -backend sharded -dedup
//	localsim -graph star -n 6 -decider degree2 -backend mp
//	localsim -graph cycle -n 500 -decider degree2 -runs 5 -cache
//	localsim -graph pyramid -n 10 -decider triangle-free -backend sharded -dedup -summary
//	localsim -graph cycle -n 64 -decider coin -trials 500 -confidence 0.99
//	localsim -graph cycle -n 64 -decider coin -trials 5000 -threshold 0.5
//
// Graphs: cycle, path, star, grid (rows x cols ~ n x 4), tree (depth n),
// pyramid (the Appendix-A layered quadtree of height n: n=10 is the
// 1024x1024 base, ~1.4 million nodes — the engine-scale sweep workload the
// arithmetic coordinate indexing unlocked), random (Erdős–Rényi on n nodes
// at expected degree ~4, seeded by -seed).
// Deciders: 3col (labels random colours), mis (labels random bits),
// degree2, triangle-free, forest (labels are BFS-distance forest
// certificates from props.CertifyForest; the horizon-1 certificate verifier
// rejects exactly when an update created a cycle or detached a certified
// parent — the natural dynamic language), coin (randomized: each node
// accepts unless its 1-in-64 coin draw comes up zero — use with -trials).
// Backends: sequential (default), sharded (worker pool), mp (goroutine
// message passing). -dedup decides each distinct canonical view once.
// -runs repeats the evaluation; with -cache the runs share one cross-run
// verdict cache (engine.ViewCache), so later runs reuse every verdict
// decided earlier — the per-run stats lines show the hits. -summary
// suppresses the per-node verdict lines, which at pyramid scale would be
// millions of lines of output.
//
// -trials N runs a randomized decider through the engine's Monte Carlo
// subsystem (engine.EvalTrials): N independent trials with deterministic
// per-(trial, node) coin streams, per-trial early exit, and a Wilson
// confidence interval on the acceptance estimate at the -confidence level.
// -threshold T additionally enables adaptive stopping: the sweep halts as
// soon as the interval separates from T. The trial pool follows -backend
// (sequential: one worker; sharded: GOMAXPROCS workers) — the committed
// statistics are identical either way, by construction.
//
// -faults injects deterministic, seed-replayable faults (internal/fault;
// replay is keyed by -fault-seed, intensity by -fault-rate):
//
//	localsim -faults flip -fault-rate 0.05 -fault-seed 7 -trials 20
//	localsim -faults labels -fault-rate 0.10 -summary
//	localsim -graph cycle -n 64 -decider degree2 -faults crash -fault-rate 0.2
//	localsim -graph cycle -n 32 -decider degree2 -faults messages -fault-rate 0.1
//
// Label models (flip | swap | randomize | labels = all three) run the E16
// self-stabilization protocol on the halting pyramidal family G(M, r) —
// corrupt, heal, re-decide — and print a rounds-to-recovery table
// (-graph/-decider are ignored; -trials sets episodes per model). "crash"
// injects decider crashes into the chosen instance on any backend and shows
// the retry/VerdictError machinery; "messages" forces the MessagePassing
// backend and injects drop/duplicate/delay at the given rate, showing the
// degraded-but-never-wrong fallback path.
//
// -dynamic N streams N seeded edge toggles through the decided instance and
// reports sustained updates/sec. With -incremental the instance stays
// resident in an engine.Incremental session and each update repairs only
// the radius-t balls around the touched endpoints (O(dirty), not O(n));
// without it every update triggers a from-scratch re-evaluation — run both
// to see the gap:
//
//	localsim -graph cycle -n 100000 -decider degree2 -dynamic 1000 -incremental -summary
//	localsim -graph random -n 1000 -decider forest -dynamic 200 -incremental -summary
//	localsim -graph cycle -n 10000 -decider degree2 -dynamic 50 -summary
//
// -incremental also reroutes the E16 label models (-faults flip|swap|...)
// through the resident-session episode path: identical tables, ball-sized
// heal-round repairs.
//
// -cpuprofile FILE and -memprofile FILE record runtime/pprof profiles of the
// whole invocation (graph construction included — build cost is part of a
// real sweep). The memory profile is a heap snapshot after a final GC. View
// with `go tool pprof FILE`. These exist so perf work can profile actual
// sweeps — e.g. a cold pyramid run at height 10 — instead of extrapolating
// from microbenchmarks:
//
//	localsim -graph pyramid -n 10 -decider triangle-free -dedup -summary -cpuprofile cpu.out -memprofile mem.out
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
	"repro/internal/halting"
	"repro/internal/local"
	"repro/internal/props"
	"repro/internal/tree"
	"repro/internal/turing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "localsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("localsim", flag.ContinueOnError)
	graphKind := fs.String("graph", "cycle", "cycle | path | star | grid | tree | pyramid")
	n := fs.Int("n", 8, "size parameter")
	deciderName := fs.String("decider", "3col", "3col | mis | degree2 | triangle-free | coin")
	seed := fs.Int64("seed", 1, "label and coin seed")
	backend := fs.String("backend", "sequential", "sequential | sharded | mp")
	shards := fs.Int("shards", 0, "run the sharded halo-exchange runtime with this many shards (0 = off; level-contiguous partitioning for pyramid/tree, BFS-blocked otherwise)")
	dedup := fs.Bool("dedup", false, "decide each distinct canonical view once")
	useMP := fs.Bool("mp", false, "shorthand for -backend mp")
	runs := fs.Int("runs", 1, "repeat the evaluation this many times")
	useCache := fs.Bool("cache", false, "share a cross-run verdict cache between runs (implies -dedup)")
	summary := fs.Bool("summary", false, "suppress per-node verdict lines (use for large instances)")
	trials := fs.Int("trials", 0, "run a Monte Carlo sweep of this many trials (randomized deciders only)")
	confidence := fs.Float64("confidence", 0.95, "confidence level for the trial sweep's Wilson interval")
	threshold := fs.Float64("threshold", math.NaN(), "acceptance threshold enabling adaptive stopping of the trial sweep")
	dynamic := fs.Int("dynamic", 0, "stream this many seeded edge toggles through the instance and report updates/sec")
	incremental := fs.Bool("incremental", false, "keep the instance resident in an incremental session (ball-sized repairs) for -dynamic and the E16 label models")
	faults := fs.String("faults", "", "inject faults: flip | swap | randomize | labels | crash | messages")
	faultRate := fs.Float64("fault-rate", 0.05, "fault intensity: corrupted-label fraction, crash or message-fault probability")
	faultSeed := fs.Int64("fault-seed", 1, "seed of the deterministic fault streams (same seed replays the same faults)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the invocation to this file (go tool pprof)")
	memprofile := fs.String("memprofile", "", "write a post-GC heap profile to this file (go tool pprof)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *useMP {
		if *backend != "sequential" && *backend != "mp" && *backend != "message-passing" {
			return fmt.Errorf("conflicting flags: -mp and -backend %s", *backend)
		}
		*backend = "mp"
	}
	if err := validateFlags(fs.NArg(), *graphKind, *n, *deciderName, *backend, *shards, *runs,
		*trials, *confidence, *threshold, *faults, *faultRate, *dynamic); err != nil {
		return err
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		// Deferred so the snapshot covers whichever mode ran; a final GC
		// makes the profile reflect live memory, not collectable garbage.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "localsim: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "localsim: memprofile:", err)
			}
		}()
	}
	switch *faults {
	case "", "crash", "messages":
		// crash/messages need the instance built below.
	case "flip", "swap", "randomize", "labels":
		return runSelfStab(*faults, *faultRate, *faultSeed, *trials, *incremental, *shards)
	default:
		return fmt.Errorf("unknown -faults model %q (flip | swap | randomize | labels | crash | messages)", *faults)
	}

	g, err := buildGraph(*graphKind, *n, *seed)
	if err != nil {
		return err
	}
	l, alg, randAlg, err := buildDecider(*deciderName, g, *seed)
	if err != nil {
		return err
	}
	if *faults != "" {
		if alg == nil {
			return fmt.Errorf("-faults %s needs a deterministic decider, got %q", *faults, *deciderName)
		}
		return runFaulty(*faults, l, alg, *graphKind, *backend, *shards, *faultRate, *faultSeed, *summary)
	}
	if *dynamic > 0 {
		if alg == nil {
			return fmt.Errorf("-dynamic needs a deterministic decider, got %q", *deciderName)
		}
		return runDynamic(l, alg, *graphKind, *backend, *shards, *dynamic, *seed, *incremental, *dedup, *summary)
	}
	if *trials > 0 {
		return runTrials(l, randAlg, *deciderName, *graphKind, *backend, *trials, *seed, *confidence, *threshold)
	}
	if randAlg != nil {
		return runRandomizedOnce(l, randAlg, *graphKind, *backend, *shards, *seed, *summary)
	}
	sched, err := buildScheduler(*backend, *shards, *graphKind)
	if err != nil {
		return err
	}

	var cache *engine.ViewCache
	if *useCache {
		cache = engine.NewViewCache()
	}
	opts := engine.Options{Scheduler: sched, Dedup: *dedup, Cache: cache}
	dec := local.EngineObliviousDecider(alg)

	var out engine.Outcome
	for r := 0; r < *runs; r++ {
		out = engine.EvalOblivious(dec, l, opts)
		if *runs > 1 {
			s := out.Stats
			fmt.Printf("run %d: evaluated=%d dedupHits=%d cacheSize=%d\n",
				r+1, s.Evaluated, s.DedupHits, s.CacheSize)
		}
	}

	fmt.Printf("graph=%s n=%d decider=%s backend=%s\n", *graphKind, l.N(), alg.Name(), out.Stats.Scheduler)
	if !*summary {
		for v := 0; v < l.N(); v++ {
			fmt.Printf("  node %3d  label=%-8q  verdict=%s\n", v, l.Labels[v], out.Verdicts[v])
		}
	}
	if out.Accepted {
		fmt.Println("globally ACCEPTED (all nodes yes)")
	} else {
		fmt.Println("globally REJECTED (some node said no)")
	}
	s := out.Stats
	isMP := s.Scheduler == engine.MessagePassing.Name()
	fmt.Printf("engine: workers=%d evaluated=%d", s.Workers, s.Evaluated)
	if (*dedup || *useCache) && !isMP {
		fmt.Printf(" dedupHits=%d distinctViews=%d", s.DedupHits, s.DistinctViews)
	}
	if isMP || s.Shards > 0 {
		fmt.Printf(" rounds=%d messages=%d knowledgeUnits=%d", s.Rounds, s.Messages, s.KnowledgeUnits)
	}
	fmt.Println()
	printShardedStats(s)
	if *useCache && !isMP {
		cs := cache.Stats()
		fmt.Printf("cache: shared across %d run(s), %d distinct views decided in total\n", *runs, cache.Len())
		fmt.Printf("cache: hits=%d misses=%d rejects=%d entries=%d\n", cs.Hits, cs.Misses, cs.Rejects, cs.Entries)
	}
	if (*dedup || *useCache) && isMP {
		fmt.Println("note: the message-passing backend assembles every view operationally and never deduplicates; -dedup/-cache had no effect")
	}
	return nil
}

// validateFlags is the up-front configuration check: every malformed or
// contradictory invocation fails with a one-line usage error here, before
// any profile file is created or any instance is built. Mode-specific range
// checks deeper in the pipeline stay as defense in depth; this is the front
// door.
func validateFlags(nArgs int, graphKind string, n int, decider, backend string,
	shards, runs, trials int, confidence, threshold float64, faults string, faultRate float64, dynamic int) error {
	if nArgs > 0 {
		return fmt.Errorf("unexpected positional arguments (flags only)")
	}
	switch graphKind {
	case "cycle", "path", "star", "grid", "tree", "pyramid", "random":
	default:
		return fmt.Errorf("unknown graph kind %q (cycle | path | star | grid | tree | pyramid | random)", graphKind)
	}
	if n < 0 {
		return fmt.Errorf("-n must be non-negative, got %d", n)
	}
	switch decider {
	case "3col", "mis", "degree2", "triangle-free", "forest", "coin":
	default:
		return fmt.Errorf("unknown decider %q (3col | mis | degree2 | triangle-free | forest | coin)", decider)
	}
	if dynamic < 0 {
		return fmt.Errorf("-dynamic must be non-negative, got %d", dynamic)
	}
	if dynamic > 0 {
		if trials > 0 {
			return fmt.Errorf("-dynamic and -trials are mutually exclusive")
		}
		if faults != "" {
			return fmt.Errorf("-dynamic and -faults are mutually exclusive")
		}
		if runs > 1 {
			return fmt.Errorf("-dynamic runs one sustained stream; drop -runs")
		}
	}
	switch backend {
	case "sequential", "sharded", "mp", "message-passing":
	default:
		return fmt.Errorf("unknown backend %q (sequential | sharded | mp)", backend)
	}
	if shards < 0 {
		return fmt.Errorf("-shards must be non-negative, got %d", shards)
	}
	if shards > 0 && backend != "sequential" {
		return fmt.Errorf("-shards selects the sharded message-passing runtime; drop -backend %q", backend)
	}
	if runs < 1 {
		return fmt.Errorf("-runs must be positive, got %d", runs)
	}
	if trials < 0 {
		return fmt.Errorf("-trials must be non-negative, got %d", trials)
	}
	if trials > 0 {
		if shards > 0 && faults == "" {
			return fmt.Errorf("-trials parallelises at trial level; drop -shards")
		}
		if confidence <= 0 || confidence >= 1 || math.IsNaN(confidence) {
			return fmt.Errorf("-confidence must be in (0, 1), got %v", confidence)
		}
		if !math.IsNaN(threshold) && (threshold < 0 || threshold > 1) {
			return fmt.Errorf("-threshold must be in [0, 1], got %v", threshold)
		}
	}
	switch faults {
	case "":
	case "flip", "swap", "randomize", "labels":
		if faultRate <= 0 || faultRate > 1 || math.IsNaN(faultRate) {
			return fmt.Errorf("-fault-rate must be in (0, 1] for label models, got %v", faultRate)
		}
	case "crash", "messages":
		if faultRate < 0 || faultRate > 1 || math.IsNaN(faultRate) {
			return fmt.Errorf("-fault-rate must be in [0, 1], got %v", faultRate)
		}
	default:
		return fmt.Errorf("unknown -faults model %q (flip | swap | randomize | labels | crash | messages)", faults)
	}
	return nil
}

// runTrials drives the Monte Carlo subsystem: -trials with a randomized
// decider.
func runTrials(l *graph.Labeled, alg local.RandomizedAlgorithm, deciderName, graphKind, backend string, trials int, seed int64, confidence, threshold float64) error {
	if alg == nil {
		return fmt.Errorf("decider %q is deterministic; -trials needs a randomized decider (coin)", deciderName)
	}
	if confidence <= 0 || confidence >= 1 {
		return fmt.Errorf("-confidence must be in (0, 1), got %v", confidence)
	}
	opts := engine.TrialOptions{Trials: trials, Seed: seed, Confidence: confidence}
	switch backend {
	case "sequential":
		opts.Workers = 1
	case "sharded":
		opts.Workers = 0 // GOMAXPROCS
	default:
		return fmt.Errorf("-trials supports -backend sequential or sharded, not %q", backend)
	}
	if !math.IsNaN(threshold) {
		if threshold < 0 || threshold > 1 {
			return fmt.Errorf("-threshold must be in [0, 1], got %v", threshold)
		}
		opts.AdaptiveStop = true
		opts.Threshold = threshold
	}
	stats, err := local.AcceptanceTrials(alg, l, opts)
	if err != nil {
		return err
	}
	fmt.Printf("graph=%s n=%d decider=%s backend=%s\n", graphKind, l.N(), alg.Name(), backend)
	fmt.Printf("trials: committed=%d/%d accepted=%d estimate=%.4f CI%.0f=[%.4f, %.4f]\n",
		stats.Trials, trials, stats.Accepted, stats.Estimate,
		stats.Confidence*100, stats.CI.Low, stats.CI.High)
	if opts.AdaptiveStop {
		if stats.Stopped {
			fmt.Printf("adaptive stop: interval separated from threshold %.4f after %d trials\n",
				threshold, stats.Trials)
		} else {
			fmt.Printf("adaptive stop: interval never separated from threshold %.4f\n", threshold)
		}
	}
	// Evaluated counts decisions from discarded trials too, so it is not
	// comparable against committed×nodes — report it on its own.
	fmt.Printf("engine: workers=%d evaluated=%d randomized decisions (per-trial early exit)\n",
		stats.Workers, stats.Evaluated)
	return nil
}

// runRandomizedOnce evaluates a randomized decider for a single trial
// through the ordinary engine path (per-node streams from -seed).
func runRandomizedOnce(l *graph.Labeled, alg local.RandomizedAlgorithm, graphKind, backend string, shards int, seed int64, summary bool) error {
	sched, err := buildScheduler(backend, shards, graphKind)
	if err != nil {
		return err
	}
	out := engine.EvalOblivious(local.EngineRandomizedDecider(alg), l,
		engine.Options{Scheduler: sched, Seed: seed})
	fmt.Printf("graph=%s n=%d decider=%s backend=%s\n", graphKind, l.N(), alg.Name(), out.Stats.Scheduler)
	if !summary {
		for v := 0; v < l.N(); v++ {
			fmt.Printf("  node %3d  label=%-8q  verdict=%s\n", v, l.Labels[v], out.Verdicts[v])
		}
	}
	if out.Accepted {
		fmt.Println("globally ACCEPTED (all nodes yes)")
	} else {
		fmt.Println("globally REJECTED (some node said no)")
	}
	fmt.Printf("engine: workers=%d evaluated=%d (single trial; use -trials for a sweep)\n",
		out.Stats.Workers, out.Stats.Evaluated)
	return nil
}

// runSelfStab drives the E16 self-stabilization protocol from the command
// line: corrupt the pyramidal G(M, r)'s labels under each requested model,
// heal over geometric per-victim rounds, re-decide with the radius-1
// pyramidal label verifier every round, and report rounds-to-recovery and
// the exposure window. Everything derives from -fault-seed, so the table
// replays exactly.
func runSelfStab(model string, rate float64, seed int64, trials int, incremental bool, shards int) error {
	if incremental && shards > 0 {
		return fmt.Errorf("-incremental keeps the instance resident; drop -shards")
	}
	if rate <= 0 || rate > 1 {
		return fmt.Errorf("-fault-rate must be in (0, 1], got %v", rate)
	}
	var models []fault.LabelModel
	if model == "labels" {
		models = []fault.LabelModel{fault.Flip, fault.Swap, fault.Randomize}
	} else {
		m, err := fault.ParseLabelModel(model)
		if err != nil {
			return err
		}
		models = []fault.LabelModel{m}
	}
	if trials <= 0 {
		trials = 20
	}
	p := halting.Params{Machine: turing.Counter(2, '0'), R: 1, MaxSteps: 100, FragmentLimit: 10}
	asm, err := p.BuildPyramidalG()
	if err != nil {
		return err
	}
	dec := local.EngineObliviousDecider(p.PyramidalLabelVerifier())
	cache := engine.NewViewCache()
	evalOpts := engine.Options{EarlyExit: true, Cache: cache}
	mode := "from-scratch per round"
	if incremental {
		mode = "incremental (ball-sized heal repairs)"
	}
	if shards > 0 {
		// E16 through the sharded runtime: the pyramidal instance is
		// level-ordered, so it shards level-contiguously.
		evalOpts.Scheduler = engine.ShardedMPPartitioned(shards, graph.PartitionLevelContiguous)
		mode = fmt.Sprintf("sharded-mp (%d shards, level-contiguous)", shards)
	}
	fmt.Printf("self-stabilization: pyramidal G(%s, r=%d) n=%d rate=%.2f fault-seed=%d episodes=%d engine=%s\n",
		p.Machine.Name, p.R, asm.Labeled.N(), rate, seed, trials, mode)
	fmt.Printf("%-10s %9s %10s %12s %15s %17s\n",
		"model", "episodes", "recovered", "mean rounds", "exposed rounds", "exposed episodes")
	for i, m := range models {
		sw, err := fault.RecoverySweep(asm.Labeled, fault.SelfStabConfig{
			Model:       m,
			Rate:        rate,
			Decider:     dec,
			Options:     evalOpts,
			Incremental: incremental,
		}, engine.TrialOptions{Trials: trials, Seed: seed + int64(i)})
		if err != nil {
			return err
		}
		fmt.Printf("%-10s %9d %10s %12.2f %15d %17d\n",
			m, sw.Episodes, fmt.Sprintf("%d/%d", sw.Trials.Accepted, sw.Episodes),
			sw.MeanRecoveryRounds, sw.ExposedRounds, sw.ExposedEpisodes)
	}
	cs := cache.Stats()
	fmt.Printf("cache: hits=%d misses=%d rejects=%d entries=%d\n", cs.Hits, cs.Misses, cs.Rejects, cs.Entries)
	return nil
}

// runFaulty evaluates the chosen instance once under injected decider
// crashes or message faults, showing the engine's recovery machinery: retry
// counters, VerdictErrors (never misreported as accept or reject), and the
// MessagePassing incomplete-view fallback.
func runFaulty(mode string, l *graph.Labeled, alg local.ObliviousAlgorithm, graphKind, backend string, shards int, rate float64, seed int64, summary bool) error {
	if rate < 0 || rate > 1 {
		return fmt.Errorf("-fault-rate must be in [0, 1], got %v", rate)
	}
	plan := &fault.Plan{Seed: seed}
	var opts engine.Options
	switch mode {
	case "crash":
		sched, err := buildScheduler(backend, shards, graphKind)
		if err != nil {
			return err
		}
		plan.Crash = &fault.CrashModel{Rate: rate}
		opts = engine.Options{Scheduler: sched, Faults: plan}
	case "messages":
		plan.Message = &fault.MessageModel{DropRate: rate, DuplicateRate: rate / 2, DelayRate: rate / 2}
		if shards > 0 {
			// Message fates apply per shard-pair link: a lost halo ring
			// degrades the receiving shard's rim nodes to exact fallback
			// extraction.
			opts = engine.Options{Scheduler: engine.ShardedMPPartitioned(shards, partitionStrategyFor(graphKind)), Faults: plan}
		} else {
			if backend != "sequential" && backend != "mp" && backend != "message-passing" {
				return fmt.Errorf("-faults messages runs on the message-passing backend, not %q", backend)
			}
			opts = engine.Options{Scheduler: engine.MessagePassing, Faults: plan}
		}
	}
	out := engine.EvalOblivious(local.EngineObliviousDecider(alg), l, opts)
	fmt.Printf("graph=%s n=%d decider=%s backend=%s faults=%s rate=%.2f fault-seed=%d\n",
		graphKind, l.N(), alg.Name(), out.Stats.Scheduler, mode, rate, seed)
	if !summary && out.Verdicts != nil {
		for v := 0; v < l.N(); v++ {
			fmt.Printf("  node %3d  label=%-8q  verdict=%s\n", v, l.Labels[v], out.Verdicts[v])
		}
	}
	switch {
	case out.Err != nil:
		fmt.Printf("globally UNDECIDED: %v\n", out.Err)
	case out.Accepted:
		fmt.Println("globally ACCEPTED (all nodes yes)")
	default:
		fmt.Println("globally REJECTED (some node said no)")
	}
	s := out.Stats
	fmt.Printf("engine: workers=%d evaluated=%d crashes=%d retries=%d\n",
		s.Workers, s.Evaluated, s.Crashes, s.Retries)
	if mode == "messages" {
		fmt.Printf("mp: rounds=%d messages=%d dropped=%d duplicated=%d delayed=%d retransmits=%d incompleteViews=%d timedOutRounds=%d\n",
			s.Rounds, s.Messages, s.Dropped, s.Duplicated, s.Delayed, s.Retransmits,
			s.IncompleteViews, s.TimedOutRounds)
	}
	printShardedStats(s)
	for _, ve := range out.Errs {
		fmt.Printf("  error: %v\n", ve)
	}
	return nil
}

// runDynamic streams seeded edge toggles through the decided instance and
// reports sustained update throughput. With incremental=true the instance
// stays resident in an engine.Incremental session, so each update's cost is
// the dirty-ball repair around the touched endpoints; otherwise every update
// triggers a from-scratch re-evaluation — identical verdicts (the session is
// parity-tested against the full engine), different cost model.
func runDynamic(l *graph.Labeled, alg local.ObliviousAlgorithm, graphKind, backend string, shards, updates int, seed int64, incremental, dedup, summary bool) error {
	sched, err := buildScheduler(backend, shards, graphKind)
	if err != nil {
		return err
	}
	n := l.N()
	if n < 2 {
		return fmt.Errorf("-dynamic needs at least 2 nodes, got %d", n)
	}
	dec := local.EngineObliviousDecider(alg)
	opts := engine.Options{Scheduler: sched, Dedup: dedup}
	rng := rand.New(rand.NewSource(seed + 0x9e3779b9))
	mode := "from-scratch"
	if incremental {
		mode = "incremental"
	}
	fmt.Printf("graph=%s n=%d decider=%s backend=%s dynamic: updates=%d mode=%s\n",
		graphKind, n, alg.Name(), backend, updates, mode)

	var (
		accepted   bool
		rejects    int
		stats      engine.Stats
		verdict    func(v int) engine.Verdict
		applied    int
		dirtyTotal int
		elapsed    time.Duration
	)
	start := time.Now()
	if incremental {
		inc, err := engine.NewIncremental(dec, l, opts)
		if err != nil {
			return err
		}
		fmt.Printf("initial decision: %v accepted=%v rejects=%d\n",
			time.Since(start).Round(time.Microsecond), inc.Accepted(), inc.Rejects())
		ustart := time.Now()
		for i := 0; i < updates; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			dirtyTotal += inc.ApplyEdge(u, v, !l.G.HasEdge(u, v))
			applied++
		}
		elapsed = time.Since(ustart)
		accepted, rejects, stats, verdict = inc.Accepted(), inc.Rejects(), inc.Stats(), inc.Verdict
		if out := inc.Outcome(); out.Err != nil {
			return fmt.Errorf("dynamic stream: %w", out.Err)
		}
	} else {
		out := engine.EvalOblivious(dec, l, opts)
		if out.Err != nil {
			return fmt.Errorf("initial decision: %w", out.Err)
		}
		fmt.Printf("initial decision: %v accepted=%v\n",
			time.Since(start).Round(time.Microsecond), out.Accepted)
		ustart := time.Now()
		for i := 0; i < updates; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			l.G.ApplyUpdate(u, v, !l.G.HasEdge(u, v))
			applied++
			out = engine.EvalOblivious(dec, l, opts)
			if out.Err != nil {
				return fmt.Errorf("dynamic stream (update %d): %w", applied, out.Err)
			}
		}
		elapsed = time.Since(ustart)
		accepted, stats = out.Accepted, out.Stats
		for _, vd := range out.Verdicts {
			if vd == engine.No {
				rejects++
			}
		}
		verdict = func(v int) engine.Verdict { return out.Verdicts[v] }
		dirtyTotal = applied * n
	}

	perSec := float64(applied) / elapsed.Seconds()
	fmt.Printf("updates: applied=%d elapsed=%v throughput=%.0f updates/sec\n",
		applied, elapsed.Round(time.Microsecond), perSec)
	if applied > 0 {
		if incremental {
			fmt.Printf("repairs: %d node re-decisions (avg %.1f per update; full sweep is %d)\n",
				dirtyTotal, float64(dirtyTotal)/float64(applied), n)
		} else {
			fmt.Printf("re-evaluations: %d full sweeps, %d node re-decisions (%d per update)\n",
				applied, dirtyTotal, n)
		}
	}
	if !summary {
		for v := 0; v < n; v++ {
			fmt.Printf("  node %3d  label=%-8q  verdict=%s\n", v, l.Labels[v], verdict(v))
		}
	}
	if accepted {
		fmt.Println("globally ACCEPTED (all nodes yes)")
	} else {
		fmt.Printf("globally REJECTED (%d nodes say no)\n", rejects)
	}
	fmt.Printf("engine: workers=%d evaluated=%d", stats.Workers, stats.Evaluated)
	if dedup {
		fmt.Printf(" dedupHits=%d distinctViews=%d", stats.DedupHits, stats.DistinctViews)
	}
	fmt.Println()
	return nil
}

// printShardedStats reports the halo-exchange accounting of a sharded-mp
// run: shard count, imported ghost nodes, and encoded boundary-view bytes,
// with per-round breakdowns. No-op for every other backend.
func printShardedStats(s engine.Stats) {
	if s.Shards == 0 {
		return
	}
	fmt.Printf("sharded: shards=%d ghostNodes=%d haloBytes=%d\n", s.Shards, s.GhostNodes, s.HaloBytes)
	for r := range s.RoundHaloBytes {
		fmt.Printf("  round %d: ghostNodes=%d haloBytes=%d\n", r, s.RoundGhostNodes[r], s.RoundHaloBytes[r])
	}
}

// partitionStrategyFor picks the sharded runtime's partition strategy by
// graph family: the level-ordered families (pyramids, layered trees) shard
// into level-contiguous id ranges, everything else into BFS-discovery
// blocks.
func partitionStrategyFor(graphKind string) graph.PartitionStrategy {
	switch graphKind {
	case "pyramid", "tree":
		return graph.PartitionLevelContiguous
	default:
		return graph.PartitionBFSBlocked
	}
}

func buildScheduler(name string, shards int, graphKind string) (engine.Scheduler, error) {
	if shards > 0 {
		return engine.ShardedMPPartitioned(shards, partitionStrategyFor(graphKind)), nil
	}
	switch name {
	case "sequential":
		return engine.Sequential, nil
	case "sharded":
		return engine.Sharded, nil
	case "mp", "message-passing":
		return engine.MessagePassing, nil
	default:
		return nil, fmt.Errorf("unknown backend %q", name)
	}
}

func buildGraph(kind string, n int, seed int64) (*graph.Graph, error) {
	switch kind {
	case "cycle":
		return graph.Cycle(n), nil
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "grid":
		return graph.Grid(n, 4), nil
	case "tree":
		return graph.CompleteBinaryTree(n), nil
	case "pyramid":
		if n < 0 || n > 12 {
			return nil, fmt.Errorf("pyramid height %d out of range [0,12]", n)
		}
		return tree.NewPyramid(n).G, nil
	case "random":
		// Erdős–Rényi at expected degree ~4. Note -dedup is a poor fit here:
		// the near-star views of a sparse random graph are the canonical
		// code's worst case.
		p := 4.0 / float64(max(n-1, 1))
		return graph.Random(n, p, seed), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

// buildDecider resolves a decider name: deterministic deciders return an
// ObliviousAlgorithm, randomized ones a RandomizedAlgorithm (exactly one is
// non-nil).
func buildDecider(name string, g *graph.Graph, seed int64) (*graph.Labeled, local.ObliviousAlgorithm, local.RandomizedAlgorithm, error) {
	switch name {
	case "3col":
		l := graph.RandomLabels(g, []graph.Label{"0", "1", "2"}, seed)
		return l, props.ThreeColoringVerifier(), nil, nil
	case "mis":
		l := graph.RandomLabels(g, []graph.Label{"0", "1"}, seed)
		return l, props.MISVerifier(), nil, nil
	case "degree2":
		return graph.UniformlyLabeled(g, ""), props.BoundedDegreeVerifier(2), nil, nil
	case "triangle-free":
		return graph.UniformlyLabeled(g, ""), props.TriangleFreeVerifier(), nil, nil
	case "forest":
		l := graph.NewLabeled(g, props.CertifyForest(g))
		return l, props.ForestCertVerifier(), nil, nil
	case "coin":
		alg := local.RandomizedFunc("coin(1/64)", 0, func(_ *graph.View, rng *rand.Rand) local.Verdict {
			return local.Verdict(rng.Intn(64) != 0)
		})
		return graph.UniformlyLabeled(g, ""), nil, alg, nil
	default:
		return nil, nil, nil, fmt.Errorf("unknown decider %q", name)
	}
}
