// Command localsim runs a local decision algorithm on a generated instance
// and prints the per-node verdicts: a small driver for the LOCAL-model
// simulator.
//
// Usage:
//
//	localsim -graph cycle -n 8 -decider 3col
//	localsim -graph star -n 6 -decider degree2 -mp
//
// Graphs: cycle, path, star, grid (rows x cols ~ n x 4), tree (depth n).
// Deciders: 3col (labels random colours), mis (labels random bits),
// degree2, triangle-free.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/props"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "localsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("localsim", flag.ContinueOnError)
	graphKind := fs.String("graph", "cycle", "cycle | path | star | grid | tree")
	n := fs.Int("n", 8, "size parameter")
	deciderName := fs.String("decider", "3col", "3col | mis | degree2 | triangle-free")
	seed := fs.Int64("seed", 1, "label seed")
	useMP := fs.Bool("mp", false, "run on the goroutine message-passing runtime")
	if err := fs.Parse(args); err != nil {
		return err
	}

	g, err := buildGraph(*graphKind, *n)
	if err != nil {
		return err
	}
	l, alg, err := buildDecider(*deciderName, g, *seed)
	if err != nil {
		return err
	}

	var out local.Outcome
	if *useMP {
		out = local.RunMessagePassingOblivious(alg, l)
	} else {
		out = local.RunOblivious(alg, l)
	}

	fmt.Printf("graph=%s n=%d decider=%s runtime=%s\n", *graphKind, l.N(), alg.Name(), runtimeName(*useMP))
	for v := 0; v < l.N(); v++ {
		fmt.Printf("  node %3d  label=%-8q  verdict=%s\n", v, l.Labels[v], out.Verdicts[v])
	}
	if out.Accepted {
		fmt.Println("globally ACCEPTED (all nodes yes)")
	} else {
		fmt.Println("globally REJECTED (some node said no)")
	}
	return nil
}

func runtimeName(mp bool) string {
	if mp {
		return "message-passing"
	}
	return "view-based"
}

func buildGraph(kind string, n int) (*graph.Graph, error) {
	switch kind {
	case "cycle":
		return graph.Cycle(n), nil
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "grid":
		return graph.Grid(n, 4), nil
	case "tree":
		return graph.CompleteBinaryTree(n), nil
	default:
		return nil, fmt.Errorf("unknown graph kind %q", kind)
	}
}

func buildDecider(name string, g *graph.Graph, seed int64) (*graph.Labeled, local.ObliviousAlgorithm, error) {
	switch name {
	case "3col":
		l := graph.RandomLabels(g, []graph.Label{"0", "1", "2"}, seed)
		return l, props.ThreeColoringVerifier(), nil
	case "mis":
		l := graph.RandomLabels(g, []graph.Label{"0", "1"}, seed)
		return l, props.MISVerifier(), nil
	case "degree2":
		return graph.UniformlyLabeled(g, ""), props.BoundedDegreeVerifier(2), nil
	case "triangle-free":
		return graph.UniformlyLabeled(g, ""), props.TriangleFreeVerifier(), nil
	default:
		return nil, nil, fmt.Errorf("unknown decider %q", name)
	}
}
