package main

import "testing"

func TestLocalsimCombos(t *testing.T) {
	combos := [][]string{
		{"-graph", "cycle", "-n", "6", "-decider", "3col"},
		{"-graph", "path", "-n", "5", "-decider", "mis"},
		{"-graph", "star", "-n", "5", "-decider", "degree2"},
		{"-graph", "grid", "-n", "3", "-decider", "triangle-free"},
		{"-graph", "tree", "-n", "3", "-decider", "degree2"},
		{"-graph", "cycle", "-n", "6", "-decider", "3col", "-mp"},
		{"-graph", "cycle", "-n", "50", "-decider", "degree2", "-runs", "3", "-cache"},
		{"-graph", "grid", "-n", "8", "-decider", "triangle-free", "-backend", "sharded", "-runs", "2", "-cache"},
		{"-graph", "pyramid", "-n", "2", "-decider", "triangle-free"},
		{"-graph", "pyramid", "-n", "4", "-decider", "degree2", "-backend", "sharded", "-dedup", "-summary"},
		{"-graph", "cycle", "-n", "16", "-decider", "coin", "-summary"},
		{"-graph", "cycle", "-n", "16", "-decider", "coin", "-trials", "80"},
		{"-graph", "cycle", "-n", "16", "-decider", "coin", "-trials", "200", "-confidence", "0.99", "-backend", "sharded"},
		{"-graph", "cycle", "-n", "16", "-decider", "coin", "-trials", "2000", "-threshold", "0.5"},
	}
	for _, args := range combos {
		if err := run(args); err != nil {
			t.Errorf("localsim %v: %v", args, err)
		}
	}
}

func TestLocalsimErrors(t *testing.T) {
	if err := run([]string{"-graph", "mystery"}); err == nil {
		t.Error("unknown graph accepted")
	}
	if err := run([]string{"-decider", "mystery"}); err == nil {
		t.Error("unknown decider accepted")
	}
	if err := run([]string{"-runs", "0"}); err == nil {
		t.Error("non-positive -runs accepted")
	}
	if err := run([]string{"-graph", "pyramid", "-n", "13"}); err == nil {
		t.Error("out-of-range pyramid height accepted")
	}
	if err := run([]string{"-decider", "3col", "-trials", "10"}); err == nil {
		t.Error("-trials with a deterministic decider accepted")
	}
	if err := run([]string{"-decider", "coin", "-trials", "10", "-backend", "mp"}); err == nil {
		t.Error("-trials with the message-passing backend accepted")
	}
	if err := run([]string{"-decider", "coin", "-trials", "10", "-threshold", "1.5"}); err == nil {
		t.Error("out-of-range -threshold accepted")
	}
	if err := run([]string{"-decider", "coin", "-trials", "10", "-confidence", "1.5"}); err == nil {
		t.Error("out-of-range -confidence accepted")
	}
}
