package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLocalsimCombos(t *testing.T) {
	combos := [][]string{
		{"-graph", "cycle", "-n", "6", "-decider", "3col"},
		{"-graph", "path", "-n", "5", "-decider", "mis"},
		{"-graph", "star", "-n", "5", "-decider", "degree2"},
		{"-graph", "grid", "-n", "3", "-decider", "triangle-free"},
		{"-graph", "tree", "-n", "3", "-decider", "degree2"},
		{"-graph", "cycle", "-n", "6", "-decider", "3col", "-mp"},
		{"-graph", "cycle", "-n", "50", "-decider", "degree2", "-runs", "3", "-cache"},
		{"-graph", "grid", "-n", "8", "-decider", "triangle-free", "-backend", "sharded", "-runs", "2", "-cache"},
		{"-graph", "pyramid", "-n", "2", "-decider", "triangle-free"},
		{"-graph", "pyramid", "-n", "4", "-decider", "degree2", "-backend", "sharded", "-dedup", "-summary"},
		{"-graph", "cycle", "-n", "16", "-decider", "coin", "-summary"},
		{"-graph", "cycle", "-n", "16", "-decider", "coin", "-trials", "80"},
		{"-graph", "cycle", "-n", "16", "-decider", "coin", "-trials", "200", "-confidence", "0.99", "-backend", "sharded"},
		{"-graph", "cycle", "-n", "16", "-decider", "coin", "-trials", "2000", "-threshold", "0.5"},
		{"-graph", "random", "-n", "40", "-decider", "degree2", "-seed", "3"},
		{"-graph", "path", "-n", "20", "-decider", "forest"},
		{"-graph", "cycle", "-n", "200", "-decider", "degree2", "-dynamic", "30", "-incremental", "-summary"},
		{"-graph", "cycle", "-n", "60", "-decider", "degree2", "-dynamic", "10", "-summary"},
		{"-graph", "random", "-n", "60", "-decider", "forest", "-dynamic", "20", "-incremental", "-seed", "5", "-summary"},
		{"-graph", "grid", "-n", "6", "-decider", "3col", "-dynamic", "12", "-incremental", "-backend", "sharded", "-summary"},
		{"-graph", "cycle", "-n", "64", "-decider", "degree2", "-shards", "4", "-summary"},
		{"-graph", "pyramid", "-n", "4", "-decider", "triangle-free", "-shards", "3", "-dedup", "-summary"},
		{"-graph", "tree", "-n", "5", "-decider", "degree2", "-shards", "2", "-summary"},
		{"-graph", "grid", "-n", "8", "-decider", "triangle-free", "-shards", "4", "-faults", "messages", "-fault-rate", "0.4", "-summary"},
		{"-graph", "cycle", "-n", "48", "-decider", "degree2", "-shards", "2", "-faults", "crash", "-fault-rate", "0.3", "-summary"},
		{"-graph", "cycle", "-n", "32", "-decider", "coin", "-shards", "2", "-summary"},
		{"-faults", "flip", "-fault-rate", "0.2", "-trials", "3", "-shards", "4"},
	}
	for _, args := range combos {
		if err := run(args); err != nil {
			t.Errorf("localsim %v: %v", args, err)
		}
	}
}

func TestLocalsimErrors(t *testing.T) {
	if err := run([]string{"-graph", "mystery"}); err == nil {
		t.Error("unknown graph accepted")
	}
	if err := run([]string{"-decider", "mystery"}); err == nil {
		t.Error("unknown decider accepted")
	}
	if err := run([]string{"-runs", "0"}); err == nil {
		t.Error("non-positive -runs accepted")
	}
	if err := run([]string{"-graph", "pyramid", "-n", "13"}); err == nil {
		t.Error("out-of-range pyramid height accepted")
	}
	if err := run([]string{"-decider", "3col", "-trials", "10"}); err == nil {
		t.Error("-trials with a deterministic decider accepted")
	}
	if err := run([]string{"-decider", "coin", "-trials", "10", "-backend", "mp"}); err == nil {
		t.Error("-trials with the message-passing backend accepted")
	}
	if err := run([]string{"-decider", "coin", "-trials", "10", "-threshold", "1.5"}); err == nil {
		t.Error("out-of-range -threshold accepted")
	}
	if err := run([]string{"-decider", "coin", "-trials", "10", "-confidence", "1.5"}); err == nil {
		t.Error("out-of-range -confidence accepted")
	}
}

// TestLocalsimUpFrontValidation pins the front-door flag check: each bad
// invocation fails with a one-line usage error before any instance is built
// or profile file created.
func TestLocalsimUpFrontValidation(t *testing.T) {
	bad := [][]string{
		{"stray-positional"},
		{"-backend", "quantum"},
		{"-n", "-4"},
		{"-runs", "-2"},
		{"-trials", "-5"},
		{"-faults", "mystery"},
		{"-faults", "flip", "-fault-rate", "0"},
		{"-faults", "flip", "-fault-rate", "1.5"},
		{"-faults", "crash", "-fault-rate", "-0.1"},
		{"-mp", "-backend", "sharded"},
		{"-graph", "mystery", "-cpuprofile", "/nonexistent-dir/should-not-be-created"},
		{"-dynamic", "-3"},
		{"-dynamic", "5", "-decider", "coin", "-trials", "10"},
		{"-dynamic", "5", "-faults", "crash"},
		{"-dynamic", "5", "-runs", "2"},
		{"-dynamic", "5", "-decider", "coin"},
		{"-shards", "-1"},
		{"-shards", "4", "-backend", "sharded"},
		{"-shards", "4", "-mp"},
		{"-decider", "coin", "-trials", "10", "-shards", "4"},
		{"-faults", "flip", "-trials", "3", "-shards", "4", "-incremental"},
	}
	for _, args := range bad {
		if err := run(args); err == nil {
			t.Errorf("localsim %v accepted a bad invocation", args)
		}
	}
	// Validation must run before profiling starts: an invalid invocation
	// must never create the profile file.
	prof := filepath.Join(t.TempDir(), "should-not-exist.prof")
	if err := run([]string{"-graph", "mystery", "-cpuprofile", prof}); err == nil {
		t.Error("invalid invocation with -cpuprofile accepted")
	}
	if _, err := os.Stat(prof); err == nil {
		t.Error("invalid invocation still created the profile file")
	}
}
