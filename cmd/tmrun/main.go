// Command tmrun runs a Turing machine from the library and prints its
// execution trace and, for halting machines, the full execution table of
// the paper's Section 3 construction.
//
// Usage:
//
//	tmrun -machine counter-3-0 [-steps 100] [-table]
//	tmrun -list
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/turing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tmrun:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tmrun", flag.ContinueOnError)
	name := fs.String("machine", "busybeaverish", "library machine name")
	steps := fs.Int("steps", 100, "simulation budget")
	table := fs.Bool("table", false, "print the execution table (halting machines)")
	list := fs.Bool("list", false, "list library machines")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, m := range turing.Library() {
			res, err := turing.Run(m, *steps)
			if err != nil {
				return err
			}
			status := "runs past the budget"
			if res.Halted {
				status = fmt.Sprintf("halts after %d steps with output %c", res.Steps, res.Output)
			}
			fmt.Printf("%-16s states=%d  %s\n", m.Name, m.States, status)
		}
		return nil
	}

	var machine *turing.Machine
	for _, m := range turing.Library() {
		if m.Name == *name {
			machine = m
		}
	}
	if machine == nil {
		return fmt.Errorf("unknown machine %q (try -list)", *name)
	}

	res, err := turing.Run(machine, *steps)
	if err != nil {
		return err
	}
	fmt.Printf("machine %s: ", machine.Name)
	if res.Halted {
		fmt.Printf("halted after %d steps, output %c\n", res.Steps, res.Output)
	} else {
		fmt.Printf("still running after %d steps\n", *steps)
	}

	rows := res.Steps + 1
	if !res.Halted {
		rows = min(*steps, 20)
	}
	trace, err := turing.Trace(machine, rows)
	if err != nil {
		return err
	}
	width := res.Steps + 1
	if !res.Halted {
		width = rows
	}
	fmt.Println("\ntrace (head position marked):")
	for i, c := range trace {
		fmt.Printf("%4d  %s\n", i, turing.FormatConfig(machine, c, width))
	}

	if *table {
		if !res.Halted {
			return fmt.Errorf("execution tables exist only for halting machines")
		}
		tab, err := turing.BuildTable(machine, *steps)
		if err != nil {
			return err
		}
		if err := tab.Check(); err != nil {
			return fmt.Errorf("table failed its own check: %w", err)
		}
		fmt.Println("\nexecution table (rows = configurations):")
		fmt.Print(tab.Format())
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
