package main

import "testing"

func TestList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunHaltingMachineWithTable(t *testing.T) {
	if err := run([]string{"-machine", "busybeaverish", "-table"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLooperTrace(t *testing.T) {
	if err := run([]string{"-machine", "looper", "-steps", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestTableForLooperFails(t *testing.T) {
	if err := run([]string{"-machine", "looper", "-table"}); err == nil {
		t.Fatal("expected error: loopers have no execution table")
	}
}

func TestUnknownMachine(t *testing.T) {
	if err := run([]string{"-machine", "nonsense"}); err == nil {
		t.Fatal("expected unknown-machine error")
	}
}
