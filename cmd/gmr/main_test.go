package main

import "testing"

func TestGMRFlat(t *testing.T) {
	if err := run([]string{"-machine", "halt-0", "-limit", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestGMRPyramid(t *testing.T) {
	if err := run([]string{"-machine", "counter-2-0", "-pyramid", "-limit", "5"}); err != nil {
		t.Fatalf("pyramid build: %v", err)
	}
	// A machine whose table side is not a power of two must be rejected on
	// the pyramid path.
	if err := run([]string{"-machine", "counter-3-0", "-pyramid", "-limit", "5"}); err == nil {
		t.Fatal("counter-3-0 has a 5x5 table; pyramid should reject it")
	}
}

func TestGMRUnknownMachine(t *testing.T) {
	if err := run([]string{"-machine", "zzz"}); err == nil {
		t.Fatal("expected unknown-machine error")
	}
}
