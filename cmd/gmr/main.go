// Command gmr builds the Section 3 graph G(M, r) for a library machine and
// prints its anatomy: table dimensions, fragment-collection statistics,
// gluing degrees, verification results, and the neighbourhood generator's
// output size.
//
// Usage:
//
//	gmr -machine halt-0 [-r 1] [-limit 50] [-pyramid]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/halting"
	"repro/internal/turing"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gmr:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gmr", flag.ContinueOnError)
	name := fs.String("machine", "halt-0", "library machine name")
	r := fs.Int("r", 1, "locality parameter")
	limit := fs.Int("limit", 50, "fragment content cap (0 = unlimited; collections grow exponentially)")
	pyramid := fs.Bool("pyramid", false, "build the Appendix A pyramidal variant")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var machine *turing.Machine
	for _, m := range turing.Library() {
		if m.Name == *name {
			machine = m
		}
	}
	if machine == nil {
		return fmt.Errorf("unknown machine %q", *name)
	}
	p := halting.Params{Machine: machine, R: *r, MaxSteps: 10000, FragmentLimit: *limit}

	if *pyramid {
		asm, err := p.BuildPyramidalG()
		if err != nil {
			return err
		}
		fmt.Printf("pyramidal G(%s, %d): n=%d m=%d fragments=%d truncated=%v\n",
			machine.Name, *r, asm.Labeled.N(), asm.Labeled.G.M(), len(asm.Fragments), asm.Truncated)
		grid, pyr := asm.DistanceShrinkage()
		fmt.Printf("corner-to-corner distance: grid %d, with pyramid %d\n", grid, pyr)
		if err := asm.CheckPyramidal(); err != nil {
			return fmt.Errorf("checkability FAILED: %w", err)
		}
		fmt.Println("Appendix A checkability: OK")
		return nil
	}

	asm, err := p.BuildG()
	if err != nil {
		return err
	}
	fmt.Printf("G(%s, %d)\n", machine.Name, *r)
	fmt.Printf("  table           %dx%d\n", asm.TableHeight(), asm.TableWidth())
	fmt.Printf("  placed frags    %d (contents x 9 phases x gluing variants)\n", len(asm.Fragments))
	fmt.Printf("  nodes / edges   %d / %d\n", asm.Labeled.N(), asm.Labeled.G.M())
	fmt.Printf("  pivot degree    %d\n", asm.Labeled.G.Degree(asm.Pivot))
	fmt.Printf("  truncated       %v\n", asm.Truncated)
	if err := asm.VerifyG(); err != nil {
		return fmt.Errorf("VerifyG FAILED: %w", err)
	}
	fmt.Println("  VerifyG         OK")

	gen, err := p.GenerateNeighborhoods()
	if err != nil {
		return err
	}
	fmt.Printf("  |B(M, r)|       %d neighbourhood codes (window nodes %d)\n",
		len(gen.Codes), gen.WindowNodes)
	return nil
}
