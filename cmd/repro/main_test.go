package main

import (
	"strings"
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "E6"}); err != nil {
		t.Fatalf("repro -quick E6: %v", err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"E99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("expected unknown-experiment error, got %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunMultipleExperiments(t *testing.T) {
	if err := run([]string{"-quick", "-seed", "3", "E4", "E11"}); err != nil {
		t.Fatalf("repro E4 E11: %v", err)
	}
}
