// Command repro regenerates every table and figure experiment of the
// reproduction and prints the result rows. With no arguments it runs the
// full registry (E1-E15); pass experiment ids to run a subset, and -quick
// for reduced parameter sweeps.
//
// Usage:
//
//	repro [-quick] [-seed N] [E1 E5 ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("repro", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "reduced parameter sweeps")
	seed := fs.Int64("seed", 42, "pseudo-randomness seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := experiments.Config{Quick: *quick, Seed: *seed}

	selected := fs.Args()
	if len(selected) == 0 {
		out, allOK, err := experiments.RunAll(cfg)
		fmt.Print(out)
		if err != nil {
			return err
		}
		if !allOK {
			return fmt.Errorf("some experiments reported ATTENTION")
		}
		return nil
	}
	ok := true
	for _, id := range selected {
		exp, found := experiments.Find(id)
		if !found {
			return fmt.Errorf("unknown experiment %q (known: E1..E15)", id)
		}
		res, err := exp.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Print(experiments.Render(res))
		fmt.Println()
		if !res.OK {
			ok = false
		}
	}
	if !ok {
		return fmt.Errorf("some experiments reported ATTENTION")
	}
	return nil
}
