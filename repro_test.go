package repro

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
)

// The characterisation (Table 1 as code) must reference experiments that
// actually exist, and the separation pattern must match the paper.
func TestCharacterizationWiredToExperiments(t *testing.T) {
	for _, q := range core.Characterization() {
		exp, ok := experiments.Find(q.Experiment)
		if !ok {
			t.Errorf("%s references unknown experiment %s", q.Assumption, q.Experiment)
			continue
		}
		if exp.Run == nil {
			t.Errorf("%s experiment %s has no runner", q.Assumption, q.Experiment)
		}
	}
	if !core.Separated(core.Assumption{BoundedIDs: true, Computable: true}) {
		t.Error("(B, C) must separate")
	}
	if core.Separated(core.Assumption{}) {
		t.Error("(¬B, ¬C) must not separate")
	}
}

// End-to-end: the four quadrant experiments run green in quick mode and the
// printed table shows the paper's pattern.
func TestQuadrantExperimentsEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs four construction experiments")
	}
	cfg := experiments.Config{Quick: true, Seed: 5}
	for _, q := range core.Characterization() {
		exp, ok := experiments.Find(q.Experiment)
		if !ok {
			t.Fatalf("experiment %s missing", q.Experiment)
		}
		res, err := exp.Run(cfg)
		if err != nil {
			t.Fatalf("%s (%s): %v", q.Experiment, q.Assumption, err)
		}
		if !res.OK {
			t.Errorf("%s (%s) reported ATTENTION:\n%s",
				q.Experiment, q.Assumption, experiments.Render(res))
		}
	}
	table := core.TableString()
	if !strings.Contains(table, "≠") || !strings.Contains(table, "=") {
		t.Errorf("table rendering suspicious:\n%s", table)
	}
}
