// Package decide models the paper's distributed decision framework: labelled
// graph properties, the classes LD (locally decidable), LD* (decidable
// Id-obliviously), NLD (nondeterministic local decision, with certificates)
// and BPLD ((p,q)-randomised deciders), plus promise problems and the test
// harness that checks a decider against a property on instance suites.
package decide

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// Property is a labelled graph property: a collection of labelled graphs
// closed under isomorphism. Implementations must depend only on the
// isomorphism class of the input.
type Property interface {
	Name() string
	// Contains reports membership of the labelled graph in the property.
	Contains(l *graph.Labeled) bool
}

// PropertyFunc adapts a function to a Property.
func PropertyFunc(name string, contains func(l *graph.Labeled) bool) Property {
	return funcProperty{name: name, contains: contains}
}

type funcProperty struct {
	name     string
	contains func(l *graph.Labeled) bool
}

func (p funcProperty) Name() string                   { return p.name }
func (p funcProperty) Contains(l *graph.Labeled) bool { return p.contains(l) }

// Instance suites --------------------------------------------------------------

// Suite is a collection of labelled graphs with known membership, used to
// exercise deciders.
type Suite struct {
	Name string
	Yes  []*graph.Labeled
	No   []*graph.Labeled
}

// Check validates the suite against a property (evidence that the suite and
// the property definition agree).
func (s *Suite) Check(p Property) error {
	for i, l := range s.Yes {
		if !p.Contains(l) {
			return fmt.Errorf("decide: suite %s yes-instance %d rejected by %s", s.Name, i, p.Name())
		}
	}
	for i, l := range s.No {
		if p.Contains(l) {
			return fmt.Errorf("decide: suite %s no-instance %d accepted by %s", s.Name, i, p.Name())
		}
	}
	return nil
}

// LD / LD* verification --------------------------------------------------------

// Report aggregates the result of exercising a decider on a suite.
type Report struct {
	Decider   string
	Suite     string
	YesPassed int
	YesTotal  int
	NoPassed  int
	NoTotal   int
	Failures  []string
}

// OK reports whether every instance behaved as required.
func (r *Report) OK() bool {
	return r.YesPassed == r.YesTotal && r.NoPassed == r.NoTotal
}

// String renders a one-line summary.
func (r *Report) String() string {
	status := "OK"
	if !r.OK() {
		status = fmt.Sprintf("FAIL (%d failures)", len(r.Failures))
	}
	return fmt.Sprintf("%s on %s: yes %d/%d, no %d/%d — %s",
		r.Decider, r.Suite, r.YesPassed, r.YesTotal, r.NoPassed, r.NoTotal, status)
}

// IDProvider generates identifier assignments for an n-node instance; the
// harness runs each instance under several assignments, since an LD decider
// must work for every legal assignment.
type IDProvider func(n int, trial int) []int

// BoundedIDs returns an IDProvider drawing legal assignments under bound b:
// trial 0 is sequential, trial 1 adversarial (largest legal values), further
// trials random.
func BoundedIDs(b ids.Bound, seed int64) IDProvider {
	return func(n, trial int) []int {
		switch trial {
		case 0:
			return ids.Sequential(n)
		case 1:
			return ids.Adversarial(n, b)
		default:
			return ids.RandomBounded(n, b, seed+int64(trial))
		}
	}
}

// UnboundedIDs returns an IDProvider for the (¬B) regime: sequential,
// shifted, then random with growing scale.
func UnboundedIDs(seed int64) IDProvider {
	return func(n, trial int) []int {
		switch trial {
		case 0:
			return ids.Sequential(n)
		case 1:
			return ids.SequentialFrom(n, 1000000)
		default:
			return ids.RandomUnbounded(n, 10*trial, seed+int64(trial))
		}
	}
}

// VerifyLD exercises an ID-using algorithm as an LD decider for property p on
// the suite: every yes-instance must be accepted under every tried
// assignment, every no-instance rejected under every tried assignment. Only
// global acceptance matters here, so the engine evaluates with early exit —
// the first rejecting node settles an instance.
func VerifyLD(alg local.Algorithm, s *Suite, provider IDProvider, trials int) *Report {
	r := &Report{Decider: alg.Name(), Suite: s.Name}
	dec := local.EngineDecider(alg)
	run := func(l *graph.Labeled, wantAccept bool, tag string, idx int) bool {
		for trial := 0; trial < trials; trial++ {
			in := graph.NewInstance(l, provider(l.N(), trial))
			out := engine.Eval(dec, in, engine.Options{EarlyExit: true})
			if out.Accepted != wantAccept {
				r.Failures = append(r.Failures, fmt.Sprintf(
					"%s-instance %d trial %d: accepted=%v want %v", tag, idx, trial, out.Accepted, wantAccept))
				return false
			}
		}
		return true
	}
	for i, l := range s.Yes {
		r.YesTotal++
		if run(l, true, "yes", i) {
			r.YesPassed++
		}
	}
	for i, l := range s.No {
		r.NoTotal++
		if run(l, false, "no", i) {
			r.NoPassed++
		}
	}
	return r
}

// VerifyLDStar exercises an Id-oblivious algorithm on the suite (no
// identifiers exist anywhere on this path), early-exiting on the first
// reject. Deduplication stays off here on purpose: this harness exists to
// probe candidate deciders, including ill-behaved ones whose verdicts are
// not invariant under the view's internal numbering — sharing verdicts
// across isomorphic views would mask exactly that defect.
func VerifyLDStar(alg local.ObliviousAlgorithm, s *Suite) *Report {
	r := &Report{Decider: alg.Name(), Suite: s.Name}
	dec := local.EngineObliviousDecider(alg)
	// Each side of the suite runs as one batched launch (shared worker pool
	// and per-worker extractor); dedup stays off per the contract above, so
	// batching changes only the launch cost, never what the probe observes.
	opts := engine.Options{EarlyExit: true}
	for i, out := range engine.EvalBatchOblivious(dec, s.Yes, opts) {
		r.YesTotal++
		if out.Accepted {
			r.YesPassed++
		} else {
			r.Failures = append(r.Failures, fmt.Sprintf("yes-instance %d rejected", i))
		}
	}
	for i, out := range engine.EvalBatchOblivious(dec, s.No, opts) {
		r.NoTotal++
		if !out.Accepted {
			r.NoPassed++
		} else {
			r.Failures = append(r.Failures, fmt.Sprintf("no-instance %d accepted", i))
		}
	}
	return r
}

// NLD ---------------------------------------------------------------------------

// Certificate is a per-node certificate assignment (the nondeterministic
// guess in NLD).
type Certificate []graph.Label

// NLDVerifier is a nondeterministic local decider: a local verifier of
// (label, certificate) pairs. A property P is in NLD if there is a verifier
// such that (G, x) ∈ P iff SOME certificate makes all nodes accept; for
// (G, x) ∉ P every certificate must be rejected by some node.
type NLDVerifier interface {
	Name() string
	Horizon() int
	// Verify receives the view of a labelled graph whose node labels have
	// been extended with certificates (encoded as label + "\x01" + cert).
	Verify(view *graph.View) local.Verdict
}

// NLDVerifierFunc adapts a function to an NLDVerifier.
func NLDVerifierFunc(name string, horizon int, verify func(view *graph.View) local.Verdict) NLDVerifier {
	return funcNLD{name: name, horizon: horizon, verify: verify}
}

type funcNLD struct {
	name    string
	horizon int
	verify  func(view *graph.View) local.Verdict
}

func (f funcNLD) Name() string                          { return f.name }
func (f funcNLD) Horizon() int                          { return f.horizon }
func (f funcNLD) Verify(view *graph.View) local.Verdict { return f.verify(view) }

// CertSeparator joins a node's original label with its certificate inside the
// extended label.
const CertSeparator = "\x01"

// WithCertificates extends a labelled graph's labels with certificates.
func WithCertificates(l *graph.Labeled, cert Certificate) *graph.Labeled {
	if len(cert) != l.N() {
		panic(fmt.Sprintf("decide: %d certificates for %d nodes", len(cert), l.N()))
	}
	labels := make([]graph.Label, l.N())
	for v, lab := range l.Labels {
		labels[v] = lab + CertSeparator + cert[v]
	}
	return graph.NewLabeled(l.G, labels)
}

// SplitCertLabel recovers (original label, certificate) from an extended
// label.
func SplitCertLabel(lab graph.Label) (graph.Label, graph.Label) {
	for i := 0; i+len(CertSeparator) <= len(lab); i++ {
		if lab[i:i+len(CertSeparator)] == CertSeparator {
			return lab[:i], lab[i+len(CertSeparator):]
		}
	}
	return lab, ""
}

// RunNLD evaluates a verifier on a labelled graph under a given certificate.
// Like VerifyLDStar, it keeps deduplication off: NLD soundness probing runs
// arbitrary candidate verifiers, and verdict sharing would hide
// numbering-sensitive ones.
func RunNLD(v NLDVerifier, l *graph.Labeled, cert Certificate) local.Outcome {
	extended := WithCertificates(l, cert)
	dec := engine.Decider{Name: v.Name(), Horizon: v.Horizon(), Decide: v.Verify}
	return engine.EvalOblivious(dec, extended, engine.Options{})
}

// BPLD ---------------------------------------------------------------------------

// PQDecider captures the paper's (p, q)-decider: yes-instances are fully
// accepted with probability >= p, no-instances rejected (some node says no)
// with probability >= q.
type PQDecider struct {
	Alg local.RandomizedAlgorithm
	P   float64
	Q   float64
}

// EstimatePQ measures empirical acceptance probability on yes-instances and
// rejection probability on no-instances over the suite. The first trial-sweep
// error aborts the estimate.
func EstimatePQ(d PQDecider, s *Suite, trials int, seed int64) (pHat, qHat float64, err error) {
	if len(s.Yes) > 0 {
		total := 0.0
		for _, l := range s.Yes {
			est, err := local.EstimateAcceptance(d.Alg, l, trials, seed)
			if err != nil {
				return 0, 0, err
			}
			total += est
		}
		pHat = total / float64(len(s.Yes))
	} else {
		pHat = 1
	}
	if len(s.No) > 0 {
		total := 0.0
		for _, l := range s.No {
			est, err := local.EstimateAcceptance(d.Alg, l, trials, seed+1)
			if err != nil {
				return 0, 0, err
			}
			total += 1 - est
		}
		qHat = total / float64(len(s.No))
	} else {
		qHat = 1
	}
	return pHat, qHat, nil
}

// Promise problems ----------------------------------------------------------------

// PromiseProblem restricts attention to inputs satisfying a promise: deciders
// are only required to answer correctly on promised instances.
type PromiseProblem struct {
	Name string
	// Yes and No are the promised instances (the promise is Yes ∪ No).
	Yes []*graph.Labeled
	No  []*graph.Labeled
}

// AsSuite converts the promise problem to a plain suite (the harness treats
// promised yes/no instances like ordinary ones).
func (p *PromiseProblem) AsSuite() *Suite {
	return &Suite{Name: p.Name, Yes: p.Yes, No: p.No}
}

// RandomCertificates draws k random certificate assignments over the given
// alphabet (for probing NLD soundness: no certificate may save a
// no-instance).
func RandomCertificates(n, k int, alphabet []graph.Label, seed int64) []Certificate {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Certificate, k)
	for i := range out {
		cert := make(Certificate, n)
		for v := range cert {
			cert[v] = alphabet[rng.Intn(len(alphabet))]
		}
		out[i] = cert
	}
	return out
}
