package decide

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// evenCycles is a toy property: labelled graphs that are cycles of even
// length (labels ignored).
var evenCycles = PropertyFunc("even-cycles", func(l *graph.Labeled) bool {
	n := l.N()
	if n < 3 || l.G.M() != n {
		return false
	}
	for v := 0; v < n; v++ {
		if l.G.Degree(v) != 2 {
			return false
		}
	}
	return l.G.IsConnected() && n%2 == 0
})

func cycleSuite() *Suite {
	mk := func(n int) *graph.Labeled { return graph.UniformlyLabeled(graph.Cycle(n), "c") }
	return &Suite{
		Name: "cycles",
		Yes:  []*graph.Labeled{mk(4), mk(6), mk(10)},
		No:   []*graph.Labeled{mk(5), mk(7), graph.UniformlyLabeled(graph.Path(6), "c")},
	}
}

func TestSuiteCheck(t *testing.T) {
	s := cycleSuite()
	if err := s.Check(evenCycles); err != nil {
		t.Fatal(err)
	}
	// A wrong suite is caught.
	bad := &Suite{Name: "bad", Yes: []*graph.Labeled{graph.UniformlyLabeled(graph.Cycle(5), "c")}}
	if err := bad.Check(evenCycles); err == nil {
		t.Error("mislabelled suite accepted")
	}
}

// degree2 is an oblivious decider that checks 2-regularity only — it cannot
// tell even from odd cycles, so it fails the suite (the point of the test
// harness is to surface exactly this).
func TestVerifyLDStarCatchesWeakDecider(t *testing.T) {
	deg2 := local.ObliviousFunc("2-regular", 1, func(view *graph.View) local.Verdict {
		return local.Verdict(view.G.Degree(view.Root) == 2)
	})
	r := VerifyLDStar(deg2, cycleSuite())
	if r.OK() {
		t.Fatal("degree check cannot decide even-cycles; harness should flag it")
	}
	if r.YesPassed != r.YesTotal {
		t.Error("degree check should pass all yes-instances")
	}
	if r.NoPassed == r.NoTotal {
		t.Error("degree check must fail some no-instance (odd cycles)")
	}
	if !strings.Contains(r.String(), "FAIL") {
		t.Errorf("report: %s", r)
	}
}

func TestVerifyLDWithIDs(t *testing.T) {
	// With bounded IDs f(n) = 2n, a node can reject when it sees an
	// identifier too large for the promised size... here we use a simpler
	// ID-using decider for a toy property "cycle of size <= 6 (yes) vs >= 10
	// (no)" under bound f(n)=n: a node with identifier >= 7 knows n >= 8.
	b := ids.Linear(1)
	alg := local.AlgorithmFunc("small-cycle", 1, func(view *graph.View) local.Verdict {
		if view.G.Degree(view.Root) != 2 {
			return local.No
		}
		return local.Verdict(view.RootID() < 7)
	})
	mk := func(n int) *graph.Labeled { return graph.UniformlyLabeled(graph.Cycle(n), "c") }
	s := &Suite{Name: "cycle-size", Yes: []*graph.Labeled{mk(4), mk(6)}, No: []*graph.Labeled{mk(10), mk(12)}}
	r := VerifyLD(alg, s, BoundedIDs(b, 3), 4)
	if !r.OK() {
		t.Fatalf("LD decider failed: %s; failures: %v", r, r.Failures)
	}
	// The same decider breaks under unbounded IDs: a 4-cycle may carry huge
	// identifiers.
	r2 := VerifyLD(alg, s, UnboundedIDs(3), 4)
	if r2.OK() {
		t.Error("bounded-ID decider should fail under unbounded assignments")
	}
}

func TestBoundedIDsProviderShapes(t *testing.T) {
	p := BoundedIDs(ids.Linear(2), 1)
	if got := p(4, 0); got[0] != 0 || got[3] != 3 {
		t.Errorf("trial 0 should be sequential: %v", got)
	}
	if got := p(4, 1); got[0] != 7 {
		t.Errorf("trial 1 should be adversarial: %v", got)
	}
	if err := ids.Valid(p(4, 2), ids.Linear(2)); err != nil {
		t.Error(err)
	}
	u := UnboundedIDs(1)
	if got := u(3, 1); got[0] != 1000000 {
		t.Errorf("unbounded trial 1 should be shifted: %v", got)
	}
}

func TestNLDCertificates(t *testing.T) {
	// Property: "the graph contains a node labelled with the marker" —
	// NLD-style: certificates encode a spanning-tree distance pointing toward
	// the marker. For the test we use something simpler: certificate = claimed
	// distance to a marked node; verifier checks local consistency of the
	// distance field. On yes-instances the honest certificate passes; on
	// no-instances (no marked node) every distance field has a local defect.
	verifier := NLDVerifierFunc("dist-to-marker", 1, func(view *graph.View) local.Verdict {
		lab, cert := SplitCertLabel(view.Labels[view.Root])
		d := parseInt(cert)
		if d < 0 {
			return local.No
		}
		if lab == "marked" {
			return local.Verdict(d == 0)
		}
		if d == 0 {
			return local.No // claims to be marked but is not
		}
		// Some neighbour must claim distance d-1.
		for _, u := range view.G.Neighbors(view.Root) {
			_, ucert := SplitCertLabel(view.Labels[u])
			if parseInt(ucert) == d-1 {
				return local.Yes
			}
		}
		return local.No
	})

	// Yes-instance: path with one marked end; honest certificate = distances.
	g := graph.Path(5)
	labels := []graph.Label{"marked", "plain", "plain", "plain", "plain"}
	l := graph.NewLabeled(g, labels)
	honest := Certificate{"0", "1", "2", "3", "4"}
	if out := RunNLD(verifier, l, honest); !out.Accepted {
		t.Fatalf("honest certificate rejected: %v", out.Verdicts)
	}
	// No-instance: no marked node; no certificate should work.
	plain := graph.UniformlyLabeled(g, "plain")
	for i, cert := range RandomCertificates(5, 50, []graph.Label{"0", "1", "2", "3", "4"}, 9) {
		if out := RunNLD(verifier, plain, cert); out.Accepted {
			t.Fatalf("certificate %d fooled the verifier on a no-instance", i)
		}
	}
	// And the distance-field defect is fundamental: even the "honest-shaped"
	// certificate fails.
	if out := RunNLD(verifier, plain, honest); out.Accepted {
		t.Fatal("no-instance accepted with distance certificate")
	}
}

func TestWithCertificatesValidation(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Path(3), "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on certificate length mismatch")
		}
	}()
	WithCertificates(l, Certificate{"a"})
}

func TestSplitCertLabel(t *testing.T) {
	lab, cert := SplitCertLabel("base" + CertSeparator + "cert")
	if lab != "base" || cert != "cert" {
		t.Errorf("split = %q, %q", lab, cert)
	}
	lab, cert = SplitCertLabel("nocert")
	if lab != "nocert" || cert != "" {
		t.Errorf("split = %q, %q", lab, cert)
	}
}

func TestEstimatePQ(t *testing.T) {
	// A decider that accepts yes-instances always and rejects no-instances
	// with probability 1/2 per run (one global coin at an arbitrary node).
	alg := local.RandomizedFunc("half-reject", 1, func(view *graph.View, rng *rand.Rand) local.Verdict {
		if view.G.Degree(view.Root) != 2 {
			return local.Verdict(rng.Intn(2) == 0)
		}
		return local.Yes
	})
	mk := func(n int) *graph.Labeled { return graph.UniformlyLabeled(graph.Cycle(n), "c") }
	s := &Suite{
		Name: "pq",
		Yes:  []*graph.Labeled{mk(5)},
		No:   []*graph.Labeled{graph.UniformlyLabeled(graph.Path(4), "c")},
	}
	d := PQDecider{Alg: alg, P: 1, Q: 0.5}
	pHat, qHat, err := EstimatePQ(d, s, 300, 11)
	if err != nil {
		t.Fatal(err)
	}
	if pHat != 1 {
		t.Errorf("pHat = %v, want 1", pHat)
	}
	if qHat < 0.5 {
		t.Errorf("qHat = %v, want >= 0.5 (path has 2 endpoints)", qHat)
	}
	// Empty suite sides default to 1.
	pHat, qHat, err = EstimatePQ(d, &Suite{Name: "empty"}, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pHat != 1 || qHat != 1 {
		t.Error("empty suite should default to 1")
	}
}

func TestPromiseProblemAsSuite(t *testing.T) {
	p := &PromiseProblem{Name: "pp", Yes: cycleSuite().Yes, No: cycleSuite().No}
	s := p.AsSuite()
	if s.Name != "pp" || len(s.Yes) != 3 || len(s.No) != 3 {
		t.Error("AsSuite lost data")
	}
}

func parseInt(s string) int {
	n := 0
	if s == "" {
		return -1
	}
	for _, c := range s {
		if c < '0' || c > '9' {
			return -1
		}
		n = n*10 + int(c-'0')
	}
	return n
}
