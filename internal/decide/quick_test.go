package decide

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Property: certificate embedding round-trips for arbitrary label/cert
// strings (including separator-free binary-ish content in the label).
func TestCertificateRoundTripProperty_Quick(t *testing.T) {
	property := func(label, cert string) bool {
		// Labels containing the separator are reserved by the encoding.
		for _, c := range label {
			if string(c) == CertSeparator {
				return true // skip reserved inputs
			}
		}
		g := graph.New(1)
		l := graph.NewLabeled(g, []graph.Label{graph.Label(label)})
		extended := WithCertificates(l, Certificate{graph.Label(cert)})
		gotLabel, gotCert := SplitCertLabel(extended.Labels[0])
		return string(gotLabel) == label && string(gotCert) == cert
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: RandomCertificates always yields exactly k certificates of the
// right length over the alphabet, deterministically per seed.
func TestRandomCertificatesProperty_Quick(t *testing.T) {
	alphabet := []graph.Label{"a", "b", "c"}
	property := func(nRaw, kRaw uint8, seed int64) bool {
		n := 1 + int(nRaw%10)
		k := 1 + int(kRaw%10)
		a := RandomCertificates(n, k, alphabet, seed)
		b := RandomCertificates(n, k, alphabet, seed)
		if len(a) != k {
			return false
		}
		for i := range a {
			if len(a[i]) != n {
				return false
			}
			for v := range a[i] {
				if a[i][v] != b[i][v] {
					return false
				}
				ok := false
				for _, s := range alphabet {
					if a[i][v] == s {
						ok = true
					}
				}
				if !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: a report is OK exactly when the pass counters match the totals.
func TestReportOKProperty_Quick(t *testing.T) {
	property := func(yp, yt, np, nt uint8) bool {
		r := &Report{
			YesPassed: int(yp % 8), YesTotal: int(yt % 8),
			NoPassed: int(np % 8), NoTotal: int(nt % 8),
		}
		want := r.YesPassed == r.YesTotal && r.NoPassed == r.NoTotal
		return r.OK() == want
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
