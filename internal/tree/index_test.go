package tree

import "testing"

// Differential coverage for the arithmetic coordinate indexing: the O(1)
// Node/LevelOffset formulas must agree, coordinate for coordinate, with a
// map index rebuilt from the exported Coords/Coords3 tables — including
// boundary coordinates and ok=false misses just outside every face.

func TestLayeredTreeNodeMatchesMapIndex(t *testing.T) {
	for _, depth := range []int{0, 1, 2, 5, 9} {
		lt := NewLayeredTree(depth)
		index := make(map[Coord]int, lt.N())
		for v, c := range lt.Coords {
			index[c] = v
		}
		if len(index) != lt.N() {
			t.Fatalf("depth %d: coordinate table is not a bijection", depth)
		}
		for y := -1; y <= depth+1; y++ {
			if y >= 0 && y <= depth {
				if off := lt.LevelOffset(y); off != (1<<y)-1 {
					t.Fatalf("depth %d: LevelOffset(%d) = %d", depth, y, off)
				}
				if w := lt.LevelWidth(y); w != 1<<y {
					t.Fatalf("depth %d: LevelWidth(%d) = %d", depth, y, w)
				}
			}
			hi := 1 << max(y, 0)
			for x := -1; x <= hi; x++ {
				c := Coord{X: x, Y: y}
				want, wantOK := index[c]
				got, ok := lt.Node(c)
				if ok != wantOK {
					t.Fatalf("depth %d: Node(%+v) ok=%v, map says %v", depth, c, ok, wantOK)
				}
				if ok && got != want {
					t.Fatalf("depth %d: Node(%+v) = %d, map says %d", depth, c, got, want)
				}
			}
		}
	}
}

func TestLayeredTreeMustNodeRoundTrip(t *testing.T) {
	lt := NewLayeredTree(7)
	for v, c := range lt.Coords {
		if got := lt.MustNode(c); got != v {
			t.Fatalf("MustNode(Coords[%d]) = %d", v, got)
		}
	}
}

func TestPyramidNodeMatchesMapIndex(t *testing.T) {
	for _, h := range []int{0, 1, 2, 4, 6} {
		p := NewPyramid(h)
		index := make(map[[3]int]int, p.N())
		for v, c := range p.Coords3 {
			index[c] = v
		}
		if len(index) != p.N() {
			t.Fatalf("height %d: coordinate table is not a bijection", h)
		}
		for z := -1; z <= h+1; z++ {
			if z >= 0 && z <= h {
				if side := p.LevelSide(z); side != 1<<(h-z) {
					t.Fatalf("height %d: LevelSide(%d) = %d", h, z, side)
				}
				wantOff := 0
				for zz := 0; zz < z; zz++ {
					s := 1 << (h - zz)
					wantOff += s * s
				}
				if off := p.LevelOffset(z); off != wantOff {
					t.Fatalf("height %d: LevelOffset(%d) = %d, want %d", h, z, off, wantOff)
				}
			}
			side := 1 << max(h-z, 0)
			for y := -1; y <= side; y++ {
				for x := -1; x <= side; x++ {
					want, wantOK := index[[3]int{x, y, z}]
					got, ok := p.Node(x, y, z)
					if ok != wantOK {
						t.Fatalf("height %d: Node(%d,%d,%d) ok=%v, map says %v", h, x, y, z, ok, wantOK)
					}
					if ok && got != want {
						t.Fatalf("height %d: Node(%d,%d,%d) = %d, map says %d", h, x, y, z, got, want)
					}
				}
			}
		}
		// LevelOffset's final entry is the node count, and the apex is the
		// last node.
		if p.LevelOffset(p.H)+1 != p.N() {
			t.Fatalf("height %d: top level does not end the numbering", h)
		}
		if p.Apex() != p.N()-1 {
			t.Fatalf("height %d: apex %d, want %d", h, p.Apex(), p.N()-1)
		}
	}
}

func TestPyramidBaseNodeRowMajor(t *testing.T) {
	p := NewPyramid(3)
	side := p.BaseSide()
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if got := p.BaseNode(x, y); got != y*side+x {
				t.Fatalf("BaseNode(%d,%d) = %d, want %d", x, y, got, y*side+x)
			}
		}
	}
}
