package tree

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// Differential coverage for the builder migration of this package's
// generators: the layered trees and pyramids must be Equal-identical to a
// graph rebuilt from the same edge set through the legacy incremental
// AddEdge path (shuffled order, duplicates and reversed pairs mixed in).
func rebuildViaAddEdge(g *graph.Graph, seed int64) *graph.Graph {
	edges := g.Edges()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	h := graph.New(g.N())
	for i, e := range edges {
		u, v := e[0], e[1]
		if i%2 == 1 {
			u, v = v, u
		}
		h.AddEdge(u, v)
		if i%3 == 0 {
			h.AddEdge(u, v)
		}
	}
	return h
}

func TestLayeredTreeMatchesAddEdgePath(t *testing.T) {
	for _, depth := range []int{0, 1, 3, 5} {
		lt := NewLayeredTree(depth)
		if h := rebuildViaAddEdge(lt.G, int64(depth)); !lt.G.Equal(h) {
			t.Fatalf("depth %d: builder-built layered tree differs from AddEdge rebuild", depth)
		}
	}
}

func TestPyramidMatchesAddEdgePath(t *testing.T) {
	for _, h := range []int{0, 1, 3} {
		p := NewPyramid(h)
		if g := rebuildViaAddEdge(p.G, int64(h)); !p.G.Equal(g) {
			t.Fatalf("height %d: builder-built pyramid differs from AddEdge rebuild", h)
		}
	}
}
