// Package tree builds the layered trees of the paper's Section 2 (Figure 1)
// and the layered quadtree pyramids of Appendix A (Figure 3).
//
// A layered depth-k tree is a complete binary tree of depth k in which,
// additionally, the nodes of each level are connected by a path in the
// natural (left-to-right) order. A pyramid is a square grid with a stack of
// shrinking quadtree levels attached on top, which makes the grid's global
// structure locally checkable.
//
// Both families have closed-form coordinate systems: node numbering is level
// order, so each level starts at an arithmetic offset (a geometric series in
// the level index) and a coordinate maps to its node id — and back — with
// integer arithmetic alone. All lookups (Node, MustNode, BaseNode, Apex) are
// O(1) and allocation-free; the packages used to carry map-based coordinate
// indexes whose population dominated construction at scale (>1.5s of the
// height-10 pyramid's build against ~30ms for the graph freeze itself).
package tree

import (
	"fmt"

	"repro/internal/graph"
)

// Coord is the position of a node in a layered tree: level y (0 = root) and
// index x within the level (0 <= x < 2^y).
type Coord struct {
	X, Y int
}

// LayeredTree is a layered depth-k tree together with its coordinate system.
type LayeredTree struct {
	Depth  int
	G      *graph.Graph
	Coords []Coord
}

// NewLayeredTree constructs the layered depth-k tree. Node numbering is
// level order: node for (x, y) is 2^y - 1 + x, so coordinate lookups are
// pure arithmetic and no index structure is built.
func NewLayeredTree(depth int) *LayeredTree {
	if depth < 0 {
		panic("tree: negative depth")
	}
	if depth > 25 {
		panic(fmt.Sprintf("tree: depth %d would allocate 2^%d nodes", depth, depth+1))
	}
	n := (1 << (depth + 1)) - 1
	coords := make([]Coord, n)
	offsets := make([]int32, n+1)
	sum := int32(0)
	for y := 0; y <= depth; y++ {
		width := 1 << y
		base := width - 1
		for x := 0; x < width; x++ {
			coords[base+x] = Coord{X: x, Y: y}
			d := int32(0)
			if y > 0 {
				d++ // parent
			}
			if x > 0 {
				d++ // left level-path neighbour
			}
			if x+1 < width {
				d++ // right level-path neighbour
			}
			if y < depth {
				d += 2 // children
			}
			sum += d
			offsets[base+x+1] = sum
		}
	}
	// Each row is emitted in ascending id order directly from the closed
	// forms: parent < left sibling < right sibling < children.
	g := graph.BuildCSR(offsets, func(nbrs []int32) {
		i := 0
		for y := 0; y <= depth; y++ {
			width := 1 << y
			parentBase := width/2 - 1
			childBase := 2*width - 1
			for x := 0; x < width; x++ {
				v := width - 1 + x
				if y > 0 {
					nbrs[i] = int32(parentBase + x/2)
					i++
				}
				if x > 0 {
					nbrs[i] = int32(v - 1)
					i++
				}
				if x+1 < width {
					nbrs[i] = int32(v + 1)
					i++
				}
				if y < depth {
					nbrs[i] = int32(childBase + 2*x)
					nbrs[i+1] = int32(childBase + 2*x + 1)
					i += 2
				}
			}
		}
	})
	return &LayeredTree{Depth: depth, G: g, Coords: coords}
}

// LevelOffset returns the node id of the first node of level y, the
// geometric series 2^y - 1. It does not check that y is a level of this
// tree; combine with LevelWidth (or use Node) for validated lookups.
func (t *LayeredTree) LevelOffset(y int) int { return (1 << y) - 1 }

// LevelWidth returns the number of nodes on level y, 2^y.
func (t *LayeredTree) LevelWidth(y int) int { return 1 << y }

// Node returns the node index for a coordinate: O(1) arithmetic
// (LevelOffset(c.Y) + c.X), no allocation, ok=false for coordinates outside
// the tree.
func (t *LayeredTree) Node(c Coord) (int, bool) {
	if c.Y < 0 || c.Y > t.Depth || c.X < 0 || c.X >= 1<<c.Y {
		return 0, false
	}
	return (1 << c.Y) - 1 + c.X, true
}

// MustNode is Node for coordinates known to exist.
func (t *LayeredTree) MustNode(c Coord) int {
	v, ok := t.Node(c)
	if !ok {
		panic(fmt.Sprintf("tree: no node at %+v", c))
	}
	return v
}

// N returns the number of nodes.
func (t *LayeredTree) N() int { return t.G.N() }

// CoordLabel encodes the paper's (r, x, y) node label.
func CoordLabel(r int, c Coord) graph.Label {
	return fmt.Sprintf("lt{r=%d;x=%d;y=%d}", r, c.X, c.Y)
}

// ParseCoordLabel inverts CoordLabel.
func ParseCoordLabel(lab graph.Label) (r int, c Coord, err error) {
	if _, err = fmt.Sscanf(lab, "lt{r=%d;x=%d;y=%d}", &r, &c.X, &c.Y); err != nil {
		return 0, Coord{}, fmt.Errorf("tree: bad coordinate label %q: %w", lab, err)
	}
	return r, c, nil
}

// PivotLabel is the label of the pivot node in the paper's H+ instances.
func PivotLabel(r int) graph.Label { return fmt.Sprintf("pivot{r=%d}", r) }

// IsPivotLabel reports whether a label is a pivot label and extracts r.
func IsPivotLabel(lab graph.Label) (int, bool) {
	var r int
	if _, err := fmt.Sscanf(lab, "pivot{r=%d}", &r); err != nil {
		return 0, false
	}
	return r, true
}

// Labeled returns the layered tree as a labelled graph with (r, x, y)
// coordinate labels — the paper's T_r when depth = R(r).
func (t *LayeredTree) Labeled(r int) *graph.Labeled {
	labels := make([]graph.Label, t.N())
	for v, c := range t.Coords {
		labels[v] = CoordLabel(r, c)
	}
	return graph.NewLabeled(t.G, labels)
}

// Slice describes an aligned depth-d sub-layered-tree of a layered tree: the
// descendant slice of the node at (rootY, rootX) down d levels. These are
// exactly the induced subgraphs of a layered tree whose topology is a
// layered depth-d tree (tree edges force alignment).
type Slice struct {
	RootX, RootY, Depth int
}

// SliceNodes lists the nodes of a slice inside t, in level order.
func (t *LayeredTree) SliceNodes(s Slice) ([]int, error) {
	if s.Depth < 0 || s.RootY < 0 || s.RootY+s.Depth > t.Depth {
		return nil, fmt.Errorf("tree: slice %+v out of depth-%d tree", s, t.Depth)
	}
	if s.RootX < 0 || s.RootX >= 1<<s.RootY {
		return nil, fmt.Errorf("tree: slice root x=%d out of level %d", s.RootX, s.RootY)
	}
	var nodes []int
	for d := 0; d <= s.Depth; d++ {
		y := s.RootY + d
		lo := s.RootX << d
		hi := (s.RootX + 1) << d // exclusive
		for x := lo; x < hi; x++ {
			nodes = append(nodes, t.MustNode(Coord{X: x, Y: y}))
		}
	}
	return nodes, nil
}

// AllSlices enumerates every depth-d slice of t.
func (t *LayeredTree) AllSlices(d int) []Slice {
	var out []Slice
	for y0 := 0; y0+d <= t.Depth; y0++ {
		for x0 := 0; x0 < 1<<y0; x0++ {
			out = append(out, Slice{RootX: x0, RootY: y0, Depth: d})
		}
	}
	return out
}

// BorderNodes returns the nodes of the slice that have a neighbour outside
// the slice (the paper's border nodes, to which the pivot is attached).
func (t *LayeredTree) BorderNodes(s Slice) ([]int, error) {
	nodes, err := t.SliceNodes(s)
	if err != nil {
		return nil, err
	}
	inSlice := make(map[int]struct{}, len(nodes))
	for _, v := range nodes {
		inSlice[v] = struct{}{}
	}
	var border []int
	for _, v := range nodes {
		for _, u := range t.G.Neighbors(v) {
			if _, ok := inSlice[int(u)]; !ok {
				border = append(border, v)
				break
			}
		}
	}
	return border, nil
}

// Pyramid (Appendix A, Figure 3) ------------------------------------------------

// Pyramid is a layered quadtree over a 2^h x 2^h base grid: level z holds a
// 2^(h-z) x 2^(h-z) grid, and each node (x, y, z), z < h, connects to
// (floor(x/2), floor(y/2), z+1). The base level z=0 is the grid itself.
//
// Node numbering is level order, base level first, each level in row-major
// (y, x) order, so coordinate lookups are O(1) arithmetic over the
// precomputed per-level offsets (a geometric series: level z starts at
// (4^(h+1) - 4^(h-z+1)) / 3).
type Pyramid struct {
	H int
	G *graph.Graph
	// Coords3 maps node -> (x, y, z).
	Coords3 [][3]int
	// levelOffset[z] is the node id of the first node of level z; the extra
	// final entry is the total node count, so level z spans
	// levelOffset[z]..levelOffset[z+1].
	levelOffset []int
}

// NewPyramid builds the pyramid of height h (base 2^h x 2^h). Construction
// emits every edge from computed node ids directly — no coordinate map is
// built, which is what makes the height-10 (n≈1.4×10^6) pyramid construct
// at graph-freeze speed instead of map-population speed.
func NewPyramid(h int) *Pyramid {
	if h < 0 {
		panic("tree: negative pyramid height")
	}
	if h > 12 {
		panic(fmt.Sprintf("tree: pyramid height %d too large", h))
	}
	levelOffset := make([]int, h+2)
	for z := 0; z <= h; z++ {
		side := 1 << (h - z)
		levelOffset[z+1] = levelOffset[z] + side*side
	}
	total := levelOffset[h+1]
	coords := make([][3]int, total)
	offsets := make([]int32, total+1)
	sum := int32(0)
	for z := 0; z <= h; z++ {
		side := 1 << (h - z)
		v := levelOffset[z]
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				coords[v] = [3]int{x, y, z}
				d := int32(0)
				if z > 0 {
					d += 4 // quadtree children always exist below
				}
				if y > 0 {
					d++
				}
				if x > 0 {
					d++
				}
				if x+1 < side {
					d++
				}
				if y+1 < side {
					d++
				}
				if z < h {
					d++ // quadtree parent
				}
				sum += d
				offsets[v+1] = sum
				v++
			}
		}
	}
	// Each row is emitted in ascending id order directly from the closed
	// forms: the four quadtree children on the level below, then the
	// same-level grid neighbours, then the quadtree parent above.
	g := graph.BuildCSR(offsets, func(nbrs []int32) {
		i := 0
		for z := 0; z <= h; z++ {
			side := 1 << (h - z)
			off := levelOffset[z]
			sideDown := side << 1
			sideUp := side >> 1
			for y := 0; y < side; y++ {
				v := off + y*side
				childRow := 0
				if z > 0 {
					childRow = levelOffset[z-1] + 2*y*sideDown
				}
				parentRow := 0
				if z < h {
					parentRow = levelOffset[z+1] + (y/2)*sideUp
				}
				for x := 0; x < side; x++ {
					if z > 0 {
						child := int32(childRow + 2*x)
						nbrs[i] = child
						nbrs[i+1] = child + 1
						nbrs[i+2] = child + int32(sideDown)
						nbrs[i+3] = child + int32(sideDown) + 1
						i += 4
					}
					if y > 0 {
						nbrs[i] = int32(v - side)
						i++
					}
					if x > 0 {
						nbrs[i] = int32(v - 1)
						i++
					}
					if x+1 < side {
						nbrs[i] = int32(v + 1)
						i++
					}
					if y+1 < side {
						nbrs[i] = int32(v + side)
						i++
					}
					if z < h {
						nbrs[i] = int32(parentRow + x/2)
						i++
					}
					v++
				}
			}
		}
	})
	return &Pyramid{H: h, G: g, Coords3: coords, levelOffset: levelOffset}
}

// LevelOffset returns the node id of the first node of level z (0 <= z <=
// h; the base grid is level 0). The offsets are the partial sums of the
// geometric series 4^h + 4^(h-1) + ... precomputed at construction.
func (p *Pyramid) LevelOffset(z int) int { return p.levelOffset[z] }

// LevelSide returns the side length 2^(h-z) of the level-z grid. It does
// not check that z is a level of this pyramid; combine with LevelOffset (or
// use Node) for validated lookups.
func (p *Pyramid) LevelSide(z int) int { return 1 << (p.H - z) }

// Node returns the node at pyramid coordinate (x, y, z): O(1) arithmetic
// (LevelOffset(z) + y*LevelSide(z) + x), no allocation, ok=false for
// coordinates outside the pyramid.
func (p *Pyramid) Node(x, y, z int) (int, bool) {
	if z < 0 || z > p.H {
		return 0, false
	}
	side := 1 << (p.H - z)
	if x < 0 || x >= side || y < 0 || y >= side {
		return 0, false
	}
	return p.levelOffset[z] + y*side + x, true
}

// BaseNode returns the base-grid node at (x, y, 0).
func (p *Pyramid) BaseNode(x, y int) int {
	v, ok := p.Node(x, y, 0)
	if !ok {
		panic(fmt.Sprintf("tree: base node (%d,%d) out of range", x, y))
	}
	return v
}

// Apex returns the single top node (the last node, by level-order
// numbering).
func (p *Pyramid) Apex() int {
	return p.levelOffset[p.H]
}

// N returns the number of nodes.
func (p *Pyramid) N() int { return p.G.N() }

// BaseSide returns the side length 2^h of the base grid.
func (p *Pyramid) BaseSide() int { return 1 << p.H }

// Verification --------------------------------------------------------------------

// VerifyLayeredTreeLabels checks globally that a labelled graph is exactly a
// layered depth-k tree with correct (r, x, y) coordinate labels for the given
// r (the global version of the local structure checks in the paper's proof
// of P' ∈ LD*). It returns the depth on success.
//
// The check uses the arithmetic coordinate formulas throughout: claimed
// coordinates are mapped to canonical level-order ids, bijectivity is a
// single slice pass, and no per-call coordinate map is built.
func VerifyLayeredTreeLabels(l *graph.Labeled, r int) (int, error) {
	n := l.N()
	if n == 0 {
		return 0, fmt.Errorf("tree: empty graph")
	}
	coords := make([]Coord, n)
	maxY := 0
	for v, lab := range l.Labels {
		rr, c, err := ParseCoordLabel(lab)
		if err != nil {
			return 0, err
		}
		if rr != r {
			return 0, fmt.Errorf("tree: node %d carries r=%d, want %d", v, rr, r)
		}
		if c.Y < 0 || c.X < 0 || c.X >= 1<<c.Y {
			return 0, fmt.Errorf("tree: node %d has invalid coordinates %+v", v, c)
		}
		coords[v] = c
		if c.Y > maxY {
			maxY = c.Y
		}
	}
	// Reject size mismatches before constructing the reference tree: a
	// depth-maxY layered tree has exactly 2^(maxY+1)-1 nodes.
	if wantN := (1 << (maxY + 1)) - 1; n != wantN {
		return 0, fmt.Errorf("tree: %d nodes, want %d for depth %d", n, wantN, maxY)
	}
	want := NewLayeredTree(maxY)
	// Coordinates must be a bijection onto the canonical id range: owner maps
	// each canonical id 2^y-1+x to the node claiming it. Counting makes a
	// duplicate-free assignment of n coordinates onto n ids surjective.
	owner := make([]int32, n)
	for i := range owner {
		owner[i] = -1
	}
	for v, c := range coords {
		id := want.MustNode(c)
		if owner[id] != -1 {
			return 0, fmt.Errorf("tree: duplicate coordinate %+v", c)
		}
		owner[id] = int32(v)
	}
	// Edges must match the reference tree exactly.
	for v, c := range coords {
		wantV := want.MustNode(c)
		for _, wu := range want.G.Neighbors(wantV) {
			u := owner[wu]
			if !l.G.HasEdge(v, int(u)) {
				return 0, fmt.Errorf("tree: missing edge %+v-%+v", c, want.Coords[wu])
			}
		}
		if l.G.Degree(v) != want.G.Degree(wantV) {
			return 0, fmt.Errorf("tree: extra edges at %+v", c)
		}
	}
	return maxY, nil
}

// VerifyPyramid checks globally that a graph is the pyramid of height h
// given a claimed coordinate assignment (used by the Appendix-A checkability
// experiments; the local variant is in package halting).
//
// Claimed coordinates are validated and mapped to canonical ids with the
// arithmetic formulas — the per-call coordinate map the check used to build
// is gone.
func VerifyPyramid(g *graph.Graph, coords [][3]int, h int) error {
	want := NewPyramid(h)
	if g.N() != want.N() {
		return fmt.Errorf("tree: %d nodes, want %d", g.N(), want.N())
	}
	if len(coords) != want.N() {
		return fmt.Errorf("tree: %d coordinates, want %d", len(coords), want.N())
	}
	// owner maps each canonical id to the node claiming its coordinate; the
	// counting argument of VerifyLayeredTreeLabels applies unchanged.
	owner := make([]int32, want.N())
	for i := range owner {
		owner[i] = -1
	}
	for v, c := range coords {
		id, ok := want.Node(c[0], c[1], c[2])
		if !ok {
			return fmt.Errorf("tree: invalid pyramid coordinate %v", c)
		}
		if owner[id] != -1 {
			return fmt.Errorf("tree: duplicate pyramid coordinate %v", c)
		}
		owner[id] = int32(v)
	}
	for v, c := range coords {
		wantV, _ := want.Node(c[0], c[1], c[2])
		if g.Degree(v) != want.G.Degree(wantV) {
			return fmt.Errorf("tree: degree mismatch at %v", c)
		}
		for _, wu := range want.G.Neighbors(wantV) {
			u := owner[wu]
			if !g.HasEdge(v, int(u)) {
				return fmt.Errorf("tree: missing edge %v-%v", c, want.Coords3[wu])
			}
		}
	}
	return nil
}
