// Package tree builds the layered trees of the paper's Section 2 (Figure 1)
// and the layered quadtree pyramids of Appendix A (Figure 3).
//
// A layered depth-k tree is a complete binary tree of depth k in which,
// additionally, the nodes of each level are connected by a path in the
// natural (left-to-right) order. A pyramid is a square grid with a stack of
// shrinking quadtree levels attached on top, which makes the grid's global
// structure locally checkable.
package tree

import (
	"fmt"

	"repro/internal/graph"
)

// Coord is the position of a node in a layered tree: level y (0 = root) and
// index x within the level (0 <= x < 2^y).
type Coord struct {
	X, Y int
}

// LayeredTree is a layered depth-k tree together with its coordinate system.
type LayeredTree struct {
	Depth  int
	G      *graph.Graph
	Coords []Coord
	// index maps a coordinate to its node.
	index map[Coord]int
}

// NewLayeredTree constructs the layered depth-k tree. Node numbering is
// level order: node for (x, y) is 2^y - 1 + x.
func NewLayeredTree(depth int) *LayeredTree {
	if depth < 0 {
		panic("tree: negative depth")
	}
	if depth > 25 {
		panic(fmt.Sprintf("tree: depth %d would allocate 2^%d nodes", depth, depth+1))
	}
	n := (1 << (depth + 1)) - 1
	b := graph.NewBuilderHint(n, 2*n)
	coords := make([]Coord, n)
	index := make(map[Coord]int, n)
	for y := 0; y <= depth; y++ {
		width := 1 << y
		base := width - 1
		for x := 0; x < width; x++ {
			v := base + x
			coords[v] = Coord{X: x, Y: y}
			index[Coord{X: x, Y: y}] = v
			if x > 0 {
				b.AddEdge(v-1, v) // level path
			}
			if y > 0 {
				parent := (1 << (y - 1)) - 1 + x/2
				b.AddEdge(parent, v)
			}
		}
	}
	return &LayeredTree{Depth: depth, G: b.Build(), Coords: coords, index: index}
}

// Node returns the node index for a coordinate.
func (t *LayeredTree) Node(c Coord) (int, bool) {
	v, ok := t.index[c]
	return v, ok
}

// MustNode is Node for coordinates known to exist.
func (t *LayeredTree) MustNode(c Coord) int {
	v, ok := t.index[c]
	if !ok {
		panic(fmt.Sprintf("tree: no node at %+v", c))
	}
	return v
}

// N returns the number of nodes.
func (t *LayeredTree) N() int { return t.G.N() }

// CoordLabel encodes the paper's (r, x, y) node label.
func CoordLabel(r int, c Coord) graph.Label {
	return fmt.Sprintf("lt{r=%d;x=%d;y=%d}", r, c.X, c.Y)
}

// ParseCoordLabel inverts CoordLabel.
func ParseCoordLabel(lab graph.Label) (r int, c Coord, err error) {
	if _, err = fmt.Sscanf(lab, "lt{r=%d;x=%d;y=%d}", &r, &c.X, &c.Y); err != nil {
		return 0, Coord{}, fmt.Errorf("tree: bad coordinate label %q: %w", lab, err)
	}
	return r, c, nil
}

// PivotLabel is the label of the pivot node in the paper's H+ instances.
func PivotLabel(r int) graph.Label { return fmt.Sprintf("pivot{r=%d}", r) }

// IsPivotLabel reports whether a label is a pivot label and extracts r.
func IsPivotLabel(lab graph.Label) (int, bool) {
	var r int
	if _, err := fmt.Sscanf(lab, "pivot{r=%d}", &r); err != nil {
		return 0, false
	}
	return r, true
}

// Labeled returns the layered tree as a labelled graph with (r, x, y)
// coordinate labels — the paper's T_r when depth = R(r).
func (t *LayeredTree) Labeled(r int) *graph.Labeled {
	labels := make([]graph.Label, t.N())
	for v, c := range t.Coords {
		labels[v] = CoordLabel(r, c)
	}
	return graph.NewLabeled(t.G, labels)
}

// Slice describes an aligned depth-d sub-layered-tree of a layered tree: the
// descendant slice of the node at (rootY, rootX) down d levels. These are
// exactly the induced subgraphs of a layered tree whose topology is a
// layered depth-d tree (tree edges force alignment).
type Slice struct {
	RootX, RootY, Depth int
}

// SliceNodes lists the nodes of a slice inside t, in level order.
func (t *LayeredTree) SliceNodes(s Slice) ([]int, error) {
	if s.Depth < 0 || s.RootY < 0 || s.RootY+s.Depth > t.Depth {
		return nil, fmt.Errorf("tree: slice %+v out of depth-%d tree", s, t.Depth)
	}
	if s.RootX < 0 || s.RootX >= 1<<s.RootY {
		return nil, fmt.Errorf("tree: slice root x=%d out of level %d", s.RootX, s.RootY)
	}
	var nodes []int
	for d := 0; d <= s.Depth; d++ {
		y := s.RootY + d
		lo := s.RootX << d
		hi := (s.RootX + 1) << d // exclusive
		for x := lo; x < hi; x++ {
			nodes = append(nodes, t.MustNode(Coord{X: x, Y: y}))
		}
	}
	return nodes, nil
}

// AllSlices enumerates every depth-d slice of t.
func (t *LayeredTree) AllSlices(d int) []Slice {
	var out []Slice
	for y0 := 0; y0+d <= t.Depth; y0++ {
		for x0 := 0; x0 < 1<<y0; x0++ {
			out = append(out, Slice{RootX: x0, RootY: y0, Depth: d})
		}
	}
	return out
}

// BorderNodes returns the nodes of the slice that have a neighbour outside
// the slice (the paper's border nodes, to which the pivot is attached).
func (t *LayeredTree) BorderNodes(s Slice) ([]int, error) {
	nodes, err := t.SliceNodes(s)
	if err != nil {
		return nil, err
	}
	inSlice := make(map[int]struct{}, len(nodes))
	for _, v := range nodes {
		inSlice[v] = struct{}{}
	}
	var border []int
	for _, v := range nodes {
		for _, u := range t.G.Neighbors(v) {
			if _, ok := inSlice[int(u)]; !ok {
				border = append(border, v)
				break
			}
		}
	}
	return border, nil
}

// Pyramid (Appendix A, Figure 3) ------------------------------------------------

// Pyramid is a layered quadtree over a 2^h x 2^h base grid: level z holds a
// 2^(h-z) x 2^(h-z) grid, and each node (x, y, z), z < h, connects to
// (floor(x/2), floor(y/2), z+1). The base level z=0 is the grid itself.
type Pyramid struct {
	H int
	G *graph.Graph
	// Coords3 maps node -> (x, y, z).
	Coords3 [][3]int
	index   map[[3]int]int
}

// NewPyramid builds the pyramid of height h (base 2^h x 2^h).
func NewPyramid(h int) *Pyramid {
	if h < 0 {
		panic("tree: negative pyramid height")
	}
	if h > 12 {
		panic(fmt.Sprintf("tree: pyramid height %d too large", h))
	}
	total := 0
	for z := 0; z <= h; z++ {
		side := 1 << (h - z)
		total += side * side
	}
	b := graph.NewBuilderHint(total, 3*total)
	coords := make([][3]int, total)
	index := make(map[[3]int]int, total)
	v := 0
	for z := 0; z <= h; z++ {
		side := 1 << (h - z)
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				coords[v] = [3]int{x, y, z}
				index[[3]int{x, y, z}] = v
				v++
			}
		}
	}
	for v, c := range coords {
		x, y, z := c[0], c[1], c[2]
		side := 1 << (h - z)
		if x+1 < side {
			b.AddEdge(v, index[[3]int{x + 1, y, z}])
		}
		if y+1 < side {
			b.AddEdge(v, index[[3]int{x, y + 1, z}])
		}
		if z < h {
			b.AddEdge(v, index[[3]int{x / 2, y / 2, z + 1}])
		}
	}
	return &Pyramid{H: h, G: b.Build(), Coords3: coords, index: index}
}

// Node returns the node at pyramid coordinate (x, y, z).
func (p *Pyramid) Node(x, y, z int) (int, bool) {
	v, ok := p.index[[3]int{x, y, z}]
	return v, ok
}

// BaseNode returns the base-grid node at (x, y, 0).
func (p *Pyramid) BaseNode(x, y int) int {
	v, ok := p.Node(x, y, 0)
	if !ok {
		panic(fmt.Sprintf("tree: base node (%d,%d) out of range", x, y))
	}
	return v
}

// Apex returns the single top node.
func (p *Pyramid) Apex() int {
	v, ok := p.Node(0, 0, p.H)
	if !ok {
		panic("tree: pyramid missing apex")
	}
	return v
}

// N returns the number of nodes.
func (p *Pyramid) N() int { return p.G.N() }

// BaseSide returns the side length 2^h of the base grid.
func (p *Pyramid) BaseSide() int { return 1 << p.H }

// Verification --------------------------------------------------------------------

// VerifyLayeredTreeLabels checks globally that a labelled graph is exactly a
// layered depth-k tree with correct (r, x, y) coordinate labels for the given
// r (the global version of the local structure checks in the paper's proof
// of P' ∈ LD*). It returns the depth on success.
func VerifyLayeredTreeLabels(l *graph.Labeled, r int) (int, error) {
	n := l.N()
	if n == 0 {
		return 0, fmt.Errorf("tree: empty graph")
	}
	coords := make([]Coord, n)
	maxY := 0
	for v, lab := range l.Labels {
		rr, c, err := ParseCoordLabel(lab)
		if err != nil {
			return 0, err
		}
		if rr != r {
			return 0, fmt.Errorf("tree: node %d carries r=%d, want %d", v, rr, r)
		}
		if c.Y < 0 || c.X < 0 || c.X >= 1<<c.Y {
			return 0, fmt.Errorf("tree: node %d has invalid coordinates %+v", v, c)
		}
		coords[v] = c
		if c.Y > maxY {
			maxY = c.Y
		}
	}
	want := NewLayeredTree(maxY)
	if n != want.N() {
		return 0, fmt.Errorf("tree: %d nodes, want %d for depth %d", n, want.N(), maxY)
	}
	// Coordinates must be a bijection, and edges must match exactly.
	seen := make(map[Coord]int, n)
	for v, c := range coords {
		if _, dup := seen[c]; dup {
			return 0, fmt.Errorf("tree: duplicate coordinate %+v", c)
		}
		seen[c] = v
	}
	for v, c := range coords {
		wantV := want.MustNode(c)
		for _, wu := range want.G.Neighbors(wantV) {
			uc := want.Coords[wu]
			u, ok := seen[uc]
			if !ok {
				return 0, fmt.Errorf("tree: missing coordinate %+v", uc)
			}
			if !l.G.HasEdge(v, u) {
				return 0, fmt.Errorf("tree: missing edge %+v-%+v", c, uc)
			}
		}
		if l.G.Degree(v) != want.G.Degree(wantV) {
			return 0, fmt.Errorf("tree: extra edges at %+v", c)
		}
	}
	return maxY, nil
}

// VerifyPyramid checks globally that a graph is the pyramid of height h
// given a claimed coordinate assignment (used by the Appendix-A checkability
// experiments; the local variant is in package halting).
func VerifyPyramid(g *graph.Graph, coords [][3]int, h int) error {
	want := NewPyramid(h)
	if g.N() != want.N() {
		return fmt.Errorf("tree: %d nodes, want %d", g.N(), want.N())
	}
	index := make(map[[3]int]int, len(coords))
	for v, c := range coords {
		if _, dup := index[c]; dup {
			return fmt.Errorf("tree: duplicate pyramid coordinate %v", c)
		}
		if _, ok := want.index[c]; !ok {
			return fmt.Errorf("tree: invalid pyramid coordinate %v", c)
		}
		index[c] = v
	}
	for v, c := range coords {
		wantV := want.index[c]
		if g.Degree(v) != want.G.Degree(wantV) {
			return fmt.Errorf("tree: degree mismatch at %v", c)
		}
		for _, wu := range want.G.Neighbors(wantV) {
			u := index[want.Coords3[wu]]
			if !g.HasEdge(v, u) {
				return fmt.Errorf("tree: missing edge %v-%v", c, want.Coords3[wu])
			}
		}
	}
	return nil
}
