package tree

import (
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestNewLayeredTreeShape(t *testing.T) {
	tests := []struct {
		depth int
		n, m  int
	}{
		{0, 1, 0},
		{1, 3, 3}, // root-child x2 + level-1 path edge
		{2, 7, 9}, // 6 tree edges + 1 + 2 path edges... see below
		{3, 15, 21},
	}
	for _, tc := range tests {
		lt := NewLayeredTree(tc.depth)
		if lt.N() != tc.n {
			t.Errorf("depth %d: n = %d, want %d", tc.depth, lt.N(), tc.n)
		}
		// Edge count: tree edges (n-1) + path edges sum(2^y - 1).
		wantM := tc.n - 1
		for y := 1; y <= tc.depth; y++ {
			wantM += (1 << y) - 1
		}
		if lt.G.M() != wantM {
			t.Errorf("depth %d: m = %d, want %d", tc.depth, lt.G.M(), wantM)
		}
		if !lt.G.IsConnected() {
			t.Errorf("depth %d: not connected", tc.depth)
		}
	}
}

func TestLayeredTreeAdjacency(t *testing.T) {
	lt := NewLayeredTree(3)
	// Node (x=1, y=2) neighbours: parent (0,1), laterals (0,2), (2,2),
	// children (2,3), (3,3).
	v := lt.MustNode(Coord{X: 1, Y: 2})
	expect := []Coord{{X: 0, Y: 1}, {X: 0, Y: 2}, {X: 2, Y: 2}, {X: 2, Y: 3}, {X: 3, Y: 3}}
	if lt.G.Degree(v) != len(expect) {
		t.Fatalf("degree = %d, want %d", lt.G.Degree(v), len(expect))
	}
	for _, c := range expect {
		u := lt.MustNode(c)
		if !lt.G.HasEdge(v, u) {
			t.Errorf("missing edge (1,2)-%+v", c)
		}
	}
	// Root: exactly its two children.
	root := lt.MustNode(Coord{X: 0, Y: 0})
	if lt.G.Degree(root) != 2 {
		t.Errorf("root degree = %d, want 2", lt.G.Degree(root))
	}
}

func TestCoordLabelRoundTrip(t *testing.T) {
	lab := CoordLabel(3, Coord{X: 5, Y: 4})
	r, c, err := ParseCoordLabel(lab)
	if err != nil || r != 3 || c.X != 5 || c.Y != 4 {
		t.Fatalf("round trip: r=%d c=%+v err=%v", r, c, err)
	}
	if _, _, err := ParseCoordLabel("garbage"); err == nil {
		t.Error("garbage label parsed")
	}
	p := PivotLabel(7)
	r, ok := IsPivotLabel(p)
	if !ok || r != 7 {
		t.Fatalf("pivot label: r=%d ok=%v", r, ok)
	}
	if _, ok := IsPivotLabel(lab); ok {
		t.Error("coordinate label misread as pivot")
	}
}

func TestSliceNodes(t *testing.T) {
	lt := NewLayeredTree(4)
	s := Slice{RootX: 1, RootY: 1, Depth: 2}
	nodes, err := lt.SliceNodes(s)
	if err != nil {
		t.Fatal(err)
	}
	// Levels 1 (1 node), 2 (2 nodes), 3 (4 nodes) = 7 nodes.
	if len(nodes) != 7 {
		t.Fatalf("slice size = %d, want 7", len(nodes))
	}
	// The induced subgraph must be a layered depth-2 tree.
	sub, _ := lt.G.InducedSubgraph(nodes)
	want := NewLayeredTree(2)
	a := graph.UniformlyLabeled(sub, "")
	b := graph.UniformlyLabeled(want.G, "")
	if !graph.Isomorphic(a, b) {
		t.Error("slice is not a layered depth-2 tree")
	}
	// Out-of-range slices error.
	if _, err := lt.SliceNodes(Slice{RootX: 0, RootY: 3, Depth: 2}); err == nil {
		t.Error("too-deep slice accepted")
	}
	if _, err := lt.SliceNodes(Slice{RootX: 5, RootY: 1, Depth: 1}); err == nil {
		t.Error("x out of level accepted")
	}
}

func TestAllSlices(t *testing.T) {
	lt := NewLayeredTree(3)
	slices := lt.AllSlices(1)
	// y0 in 0..2: 1 + 2 + 4 = 7 slices.
	if len(slices) != 7 {
		t.Fatalf("slices = %d, want 7", len(slices))
	}
	slices = lt.AllSlices(3)
	if len(slices) != 1 {
		t.Fatalf("full-depth slices = %d, want 1", len(slices))
	}
}

func TestBorderNodes(t *testing.T) {
	lt := NewLayeredTree(4)
	// Top slice (root at (0,0), depth 2): border = bottom level only (root
	// has no parent/laterals; middle level spans the whole level).
	nodes, err := lt.BorderNodes(Slice{RootX: 0, RootY: 0, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range nodes {
		if lt.Coords[v].Y != 2 {
			t.Errorf("unexpected border node %+v in top slice", lt.Coords[v])
		}
	}
	if len(nodes) != 4 {
		t.Errorf("top-slice border = %d nodes, want 4 (bottom level)", len(nodes))
	}
	// Interior slice rooted (1,1) depth 2: root border (parent+laterals
	// outside), range-edge columns border, bottom level border (children at
	// level 4? bottom is level 3 < 4 => all bottom nodes border).
	nodes, err = lt.BorderNodes(Slice{RootX: 1, RootY: 1, Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	borderSet := make(map[Coord]struct{})
	for _, v := range nodes {
		borderSet[lt.Coords[v]] = struct{}{}
	}
	// Border: the root (parent+lateral outside); (2,2) whose left lateral
	// (1,2) is outside; the whole bottom level (children outside). Note
	// (3,2) is NOT border: x=3 is the level edge, so it has no right lateral
	// anywhere, and its parent and children are inside the slice.
	for _, want := range []Coord{{X: 1, Y: 1}, {X: 2, Y: 2}, {X: 4, Y: 3}, {X: 5, Y: 3}, {X: 6, Y: 3}, {X: 7, Y: 3}} {
		if _, ok := borderSet[want]; !ok {
			t.Errorf("expected border node %+v missing (border: %v)", want, borderSet)
		}
	}
	if len(borderSet) != 6 {
		t.Errorf("border size = %d, want 6", len(borderSet))
	}
	if _, ok := borderSet[Coord{X: 3, Y: 2}]; ok {
		t.Error("(3,2) wrongly classified as border")
	}
}

func TestVerifyLayeredTreeLabels(t *testing.T) {
	lt := NewLayeredTree(3)
	l := lt.Labeled(2)
	depth, err := VerifyLayeredTreeLabels(l, 2)
	if err != nil || depth != 3 {
		t.Fatalf("valid tree rejected: depth=%d err=%v", depth, err)
	}
	// Wrong r.
	if _, err := VerifyLayeredTreeLabels(l, 1); err == nil {
		t.Error("wrong r accepted")
	}
	// Corrupt a label.
	bad := l.Clone()
	bad.Labels[3] = CoordLabel(2, Coord{X: 0, Y: 0})
	if _, err := VerifyLayeredTreeLabels(bad, 2); err == nil {
		t.Error("duplicate coordinate accepted")
	}
	// Remove an edge.
	nodes := make([]int, l.N()-1)
	for i := range nodes {
		nodes[i] = i + 1 // drop the root
	}
	sub, _ := l.InducedSubgraph(nodes)
	if _, err := VerifyLayeredTreeLabels(sub, 2); err == nil {
		t.Error("truncated tree accepted")
	}
	// Extra edge.
	extra := l.Clone()
	extra.G.AddEdge(lt.MustNode(Coord{X: 0, Y: 0}), lt.MustNode(Coord{X: 0, Y: 2}))
	if _, err := VerifyLayeredTreeLabels(extra, 2); err == nil {
		t.Error("extra edge accepted")
	}
}

func TestNewPyramidShape(t *testing.T) {
	p := NewPyramid(2)
	// Levels: 4x4 + 2x2 + 1x1 = 21 nodes.
	if p.N() != 21 {
		t.Fatalf("pyramid n = %d, want 21", p.N())
	}
	if p.BaseSide() != 4 {
		t.Errorf("base side = %d", p.BaseSide())
	}
	if !p.G.IsConnected() {
		t.Error("pyramid disconnected")
	}
	// Apex connects to the 2x2 level (4 children), nothing above.
	if d := p.G.Degree(p.Apex()); d != 4 {
		t.Errorf("apex degree = %d, want 4", d)
	}
	// Base corner (0,0,0): right + down + parent = 3.
	if d := p.G.Degree(p.BaseNode(0, 0)); d != 3 {
		t.Errorf("base corner degree = %d, want 3", d)
	}
	// Distance shrinkage: opposite base corners are 2h apart via the apex
	// rather than 2*(2^h - 1) through the grid.
	far := p.BaseNode(3, 3)
	if d := p.G.Distance(p.BaseNode(0, 0), far); d > 2*p.H {
		t.Errorf("corner distance = %d, want <= %d via the pyramid", d, 2*p.H)
	}
}

func TestPyramidParentStructure(t *testing.T) {
	p := NewPyramid(3)
	// Every non-apex node has exactly one parent: (x/2, y/2, z+1).
	for v, c := range p.Coords3 {
		if c[2] == p.H {
			continue
		}
		parent, ok := p.Node(c[0]/2, c[1]/2, c[2]+1)
		if !ok || !p.G.HasEdge(v, parent) {
			t.Fatalf("node %v missing parent edge", c)
		}
	}
}

func TestVerifyPyramid(t *testing.T) {
	p := NewPyramid(2)
	if err := VerifyPyramid(p.G, p.Coords3, 2); err != nil {
		t.Fatalf("valid pyramid rejected: %v", err)
	}
	// Wrong height.
	if err := VerifyPyramid(p.G, p.Coords3, 3); err == nil {
		t.Error("wrong height accepted")
	}
	// Tampered coordinates.
	coords := append([][3]int(nil), p.Coords3...)
	coords[0], coords[1] = coords[1], coords[0]
	if err := VerifyPyramid(p.G, coords, 2); err == nil {
		t.Error("swapped coordinates accepted")
	}
	// Missing edge.
	broken := graph.New(p.N())
	for _, e := range p.G.Edges()[1:] {
		broken.AddEdge(e[0], e[1])
	}
	if err := VerifyPyramid(broken, p.Coords3, 2); err == nil {
		t.Error("missing edge accepted")
	}
}

func TestConstructorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"negative tree depth": func() { NewLayeredTree(-1) },
		"huge tree depth":     func() { NewLayeredTree(30) },
		"negative pyramid":    func() { NewPyramid(-1) },
		"huge pyramid":        func() { NewPyramid(20) },
		"missing node":        func() { NewLayeredTree(1).MustNode(Coord{X: 9, Y: 9}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestLabeledTree(t *testing.T) {
	lt := NewLayeredTree(2)
	l := lt.Labeled(5)
	if l.N() != 7 {
		t.Fatal("wrong size")
	}
	for v, lab := range l.Labels {
		r, c, err := ParseCoordLabel(lab)
		if err != nil || r != 5 || c != lt.Coords[v] {
			t.Fatalf("label mismatch at %d: %q", v, lab)
		}
	}
	if !strings.Contains(l.Labels[0], "r=5") {
		t.Error("label format changed unexpectedly")
	}
}
