package tree

import (
	"fmt"
	"testing"
)

// Construction benchmarks at the scale the CSR substrate targets: pyramid
// height 9 is a 512x512 base (~3.5*10^5 nodes, ~10^6 edges), height 10 a
// 1024x1024 base (~1.4*10^6 nodes) — the n=10^6 pin for the layered
// quadtree family alongside the cycle/sparse-random pins in internal/graph.
func BenchmarkNewPyramid(b *testing.B) {
	for _, h := range []int{6, 9, 10} {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if p := NewPyramid(h); p.G.N() == 0 {
					b.Fatal("empty pyramid")
				}
			}
		})
	}
}

func BenchmarkNewLayeredTree(b *testing.B) {
	for _, depth := range []int{10, 16, 19} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if lt := NewLayeredTree(depth); lt.N() == 0 {
					b.Fatal("empty tree")
				}
			}
		})
	}
}
