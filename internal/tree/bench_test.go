package tree

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// Construction benchmarks at the scale the CSR substrate targets: pyramid
// height 9 is a 512x512 base (~3.5*10^5 nodes, ~10^6 edges), height 10 a
// 1024x1024 base (~1.4*10^6 nodes) — the n=10^6 pin for the layered
// quadtree family alongside the cycle/sparse-random pins in internal/graph.
func BenchmarkNewPyramid(b *testing.B) {
	for _, h := range []int{6, 9, 10} {
		b.Run(fmt.Sprintf("h=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if p := NewPyramid(h); p.G.N() == 0 {
					b.Fatal("empty pyramid")
				}
			}
		})
	}
}

func BenchmarkNewLayeredTree(b *testing.B) {
	for _, depth := range []int{10, 16, 19} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if lt := NewLayeredTree(depth); lt.N() == 0 {
					b.Fatal("empty tree")
				}
			}
		})
	}
}

// BenchmarkPyramidNode pins the arithmetic coordinate lookup: a full sweep
// over every coordinate of the height-8 pyramid (≈8.7×10^4 nodes) must be
// allocation-free — this used to be one map lookup per coordinate.
func BenchmarkPyramidNode(b *testing.B) {
	p := NewPyramid(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum := 0
		for z := 0; z <= p.H; z++ {
			side := p.LevelSide(z)
			for y := 0; y < side; y++ {
				for x := 0; x < side; x++ {
					v, ok := p.Node(x, y, z)
					if !ok {
						b.Fatal("miss")
					}
					sum += v
				}
			}
		}
		if sum == 0 {
			b.Fatal("bad sum")
		}
	}
}

// BenchmarkPyramidSweep is the engine-scale pyramid workload the arithmetic
// indexing unlocked: construct the height-h pyramid and run whole-graph
// analyses (full BFS from the apex, component labelling) on a Traversal
// scratch. h=10 is the n≈1.4×10^6 pin; before the rewrite the construction
// alone spent >1.5s populating the coordinate map.
func BenchmarkPyramidSweep(b *testing.B) {
	for _, h := range []int{9, 10} {
		b.Run(fmt.Sprintf("construct+analyze/h=%d", h), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := NewPyramid(h)
				tr := graph.NewTraversal()
				dist := tr.BFSFrom(p.G, p.Apex())
				if int(dist[p.BaseNode(0, 0)]) != p.H {
					b.Fatal("bad apex distance")
				}
				if _, count := tr.ComponentIDs(p.G); count != 1 {
					b.Fatal("pyramid disconnected")
				}
			}
		})
	}
	// Steady-state analyses on a prebuilt pyramid: 0 allocs/op.
	p := NewPyramid(10)
	tr := graph.NewTraversal()
	tr.BFSFrom(p.G, 0) // warm every scratch buffer so 1x runs report steady state
	tr.ComponentIDs(p.G)
	b.Run("bfs/h=10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.BFSFrom(p.G, i%p.N())
		}
	})
	b.Run("components/h=10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, count := tr.ComponentIDs(p.G); count != 1 {
				b.Fatal("pyramid disconnected")
			}
		}
	})
}
