package turing

import (
	"strings"
	"testing"
)

func mustTable(t *testing.T, m *Machine) *Table {
	t.Helper()
	tab, err := BuildTable(m, 10000)
	if err != nil {
		t.Fatalf("BuildTable(%s): %v", m.Name, err)
	}
	return tab
}

func TestBuildTableShape(t *testing.T) {
	tests := []struct {
		m    *Machine
		side int // runtime+1
	}{
		{HaltWith('0'), 2},
		{Counter(3, '0'), 5},
		{BusyBeaverish(), 4},
	}
	for _, tc := range tests {
		tab := mustTable(t, tc.m)
		if tab.Height() != tc.side || tab.Width() != tc.side {
			t.Errorf("%s: table %dx%d, want %dx%d",
				tc.m.Name, tab.Height(), tab.Width(), tc.side, tc.side)
		}
	}
}

func TestBuildTableNonHalting(t *testing.T) {
	if _, err := BuildTable(Looper(), 50); err == nil {
		t.Fatal("BuildTable should fail for a non-halting machine")
	}
}

func TestTableCheckAndOutput(t *testing.T) {
	for _, m := range []*Machine{HaltWith('0'), HaltWith('1'), Counter(4, '1'), BusyBeaverish()} {
		tab := mustTable(t, m)
		if err := tab.Check(); err != nil {
			t.Errorf("%s: valid table rejected: %v", m.Name, err)
		}
		out, err := tab.Output()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		res, _ := Run(m, 10000)
		if out != res.Output {
			t.Errorf("%s: table output %c, run output %c", m.Name, out, res.Output)
		}
	}
}

// Failure injection: corrupting any aspect of a valid table must be caught.
func TestTableCheckRejectsCorruption(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(tab *Table)
		want    string
	}{
		{"wrong start symbol", func(tab *Table) {
			tab.Rows[0][1] = Cell{Sym: '1', State: NoHead}
		}, "start configuration"},
		{"start head misplaced", func(tab *Table) {
			tab.Rows[0][0] = Cell{Sym: Blank, State: NoHead}
			tab.Rows[0][1] = Cell{Sym: Blank, State: 0}
		}, "start configuration"},
		{"symbol teleports", func(tab *Table) {
			tab.Rows[2][tab.Width()-1] = Cell{Sym: '1', State: NoHead}
		}, "window violation"},
		{"head duplicated", func(tab *Table) {
			tab.Rows[2][tab.Width()-1] = Cell{Sym: Blank, State: 0}
		}, ""},
		{"head vanishes", func(tab *Table) {
			for x := 0; x < tab.Width(); x++ {
				c := tab.Rows[2][x]
				c.State = NoHead
				tab.Rows[2][x] = c
			}
		}, ""},
		{"early halt", func(tab *Table) {
			for x := 0; x < tab.Width(); x++ {
				if tab.Rows[1][x].HasHead() {
					c := tab.Rows[1][x]
					c.State = tab.Machine.Halt
					tab.Rows[1][x] = c
				}
			}
		}, ""},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			tab := mustTable(t, Counter(4, '0'))
			tc.corrupt(tab)
			err := tab.Check()
			if err == nil {
				t.Fatal("corrupted table accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestPartialTable(t *testing.T) {
	// Looper: 6 rows, 4 cols — never halts, must still lay out fine.
	tab, err := PartialTable(Looper(), 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Height() != 6 || tab.Width() != 4 {
		t.Fatalf("partial table %dx%d", tab.Height(), tab.Width())
	}
	// Head marches right: row i has head at column i (while in range).
	for y := 0; y < 4; y++ {
		if tab.Rows[y][y].State != 0 {
			t.Errorf("row %d: head not at column %d", y, y)
		}
	}
	// Rows 4, 5: head out of the window; no head cells.
	for _, y := range []int{4, 5} {
		for x := 0; x < 4; x++ {
			if tab.Rows[y][x].HasHead() {
				t.Errorf("row %d col %d: unexpected head", y, x)
			}
		}
	}
	// A halting machine: frozen rows repeat after the halt.
	htab, err := PartialTable(HaltWith('0'), 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	for y := 1; y < 5; y++ {
		if htab.Rows[y][0] != (Cell{Sym: '0', State: HaltWith('0').Halt}) {
			t.Errorf("row %d: frozen halting cell missing: %+v", y, htab.Rows[y][0])
		}
	}
}

func TestNextCellsBasics(t *testing.T) {
	m := Counter(1, '0') // state 0 -R-> state 1; state 1 -S-> halt writing 0
	headStart := Cell{Sym: Blank, State: 0}
	noHead := Cell{Sym: Blank, State: NoHead}

	// Below a right-moving head: symbol written, head gone.
	below := NextCells(m, WallNeighbor(), headStart, KnownNeighbor(noHead))
	if len(below) != 1 || below[0] != (Cell{Sym: '1', State: NoHead}) {
		t.Errorf("below right-moving head: %v", below)
	}
	// Cell right of a right-moving head: receives the head in state 1.
	recv := NextCells(m, KnownNeighbor(headStart), noHead, WallNeighbor())
	if len(recv) != 1 || recv[0] != (Cell{Sym: Blank, State: 1}) {
		t.Errorf("arrival cell: %v", recv)
	}
	// Stay transition into halt: state 1 writes '0', stays, halts.
	stay := NextCells(m, WallNeighbor(), Cell{Sym: Blank, State: 1}, WallNeighbor())
	if len(stay) != 1 || stay[0] != (Cell{Sym: '0', State: m.Halt}) {
		t.Errorf("stay-halt cell: %v", stay)
	}
	// Halted cells freeze.
	frozen := NextCells(m, WallNeighbor(), Cell{Sym: '0', State: m.Halt}, WallNeighbor())
	if len(frozen) != 1 || frozen[0] != (Cell{Sym: '0', State: m.Halt}) {
		t.Errorf("frozen cell: %v", frozen)
	}
	// Plain cell with quiet neighbours: unchanged.
	quiet := NextCells(m, KnownNeighbor(noHead), Cell{Sym: '1', State: NoHead}, KnownNeighbor(noHead))
	if len(quiet) != 1 || quiet[0] != (Cell{Sym: '1', State: NoHead}) {
		t.Errorf("quiet cell: %v", quiet)
	}
}

func TestNextCellsCollisionsAndUnknowns(t *testing.T) {
	// A machine with both left and right moves: zigzag.
	m := Zigzag()
	rightMover := Cell{Sym: '0', State: 1} // state 1 on '0' moves right
	leftMover := Cell{Sym: '1', State: 2}  // state 2 on '1' moves left
	mid := Cell{Sym: '0', State: NoHead}

	// Two heads converging on the same cell: inconsistent.
	collide := NextCells(m, KnownNeighbor(rightMover), mid, KnownNeighbor(leftMover))
	if len(collide) != 0 {
		t.Errorf("collision should be inconsistent, got %v", collide)
	}
	// Head running into a halted cell: inconsistent.
	halted := Cell{Sym: '0', State: m.Halt}
	intoHalt := NextCells(m, KnownNeighbor(rightMover), halted, KnownNeighbor(mid))
	if len(intoHalt) != 0 {
		t.Errorf("arrival into halted cell should be inconsistent, got %v", intoHalt)
	}
	// Unknown side: a head may or may not arrive.
	open := NextCells(m, UnknownNeighbor(), mid, KnownNeighbor(mid))
	if len(open) < 2 {
		t.Errorf("unknown left side should allow arrivals: %v", open)
	}
	foundNoHead := false
	for _, c := range open {
		if c.State == NoHead {
			foundNoHead = true
		}
		if c.Sym != '0' {
			t.Errorf("arrival changed the symbol: %v", c)
		}
	}
	if !foundNoHead {
		t.Error("no-arrival option missing")
	}
	// Wall side: no arrivals.
	walled := NextCells(m, WallNeighbor(), mid, KnownNeighbor(mid))
	if len(walled) != 1 || walled[0].State != NoHead {
		t.Errorf("wall side should forbid arrivals: %v", walled)
	}
}

func TestCellLabelRoundTrip(t *testing.T) {
	c := Cell{Sym: '1', State: 2}
	label := c.Label(1, 2)
	got, x3, y3, err := ParseCellLabel(label)
	if err != nil {
		t.Fatal(err)
	}
	if got != c || x3 != 1 || y3 != 2 {
		t.Errorf("round trip: %+v (%d,%d)", got, x3, y3)
	}
	if _, _, _, err := ParseCellLabel("nonsense"); err == nil {
		t.Error("bad label accepted")
	}
}

func TestSubGrid(t *testing.T) {
	tab := mustTable(t, Counter(3, '0')) // 5x5
	sub := tab.SubGrid(1, 1, 2, 3)
	if len(sub) != 2 || len(sub[0]) != 3 {
		t.Fatalf("subgrid shape %dx%d", len(sub), len(sub[0]))
	}
	if sub[0][0] != tab.Rows[1][1] {
		t.Error("subgrid content wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range subgrid should panic")
		}
	}()
	tab.SubGrid(4, 4, 3, 3)
}

func TestTableFormat(t *testing.T) {
	tab := mustTable(t, HaltWith('0'))
	s := tab.Format()
	if !strings.Contains(s, "!") {
		t.Errorf("format lacks halt marker:\n%s", s)
	}
}
