package turing

import "sync"

// RunMemo memoises Run for one machine by step budget. Monte Carlo trial
// sweeps (Corollary 1's randomised decider) call Run once per (trial, node)
// with budgets drawn from a tiny set — halting.DrawBudget has at most 15
// distinct outcomes — so across trials×nodes calls only a handful of
// distinct simulations exist; the memo collapses the rest to a map lookup.
//
// A RunMemo is safe for concurrent use by the trial engine's workers.
// Results are shared: callers must treat the returned Result (including
// Final.Tape) as read-only.
type RunMemo struct {
	m  *Machine
	mu sync.RWMutex
	// results memoises by exact budget. Exactness matters: Run's Steps and
	// Final differ below the halting point, and a non-halting Result still
	// depends on how far the budget let the run go.
	results map[int]memoized
}

type memoized struct {
	res Result
	err error
}

// NewRunMemo returns an empty memo for m.
func NewRunMemo(m *Machine) *RunMemo {
	return &RunMemo{m: m, results: make(map[int]memoized)}
}

// Machine returns the memoised machine.
func (rm *RunMemo) Machine() *Machine { return rm.m }

// Run is Run(Machine(), maxSteps) served from the memo. The first call per
// budget simulates under the write lock; concurrent callers with the same
// budget wait rather than duplicating the simulation (budgets are few and
// simulations can be long, so lost parallelism is cheaper than lost work).
func (rm *RunMemo) Run(maxSteps int) (Result, error) {
	rm.mu.RLock()
	e, ok := rm.results[maxSteps]
	rm.mu.RUnlock()
	if ok {
		return e.res, e.err
	}
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if e, ok := rm.results[maxSteps]; ok {
		return e.res, e.err
	}
	res, err := Run(rm.m, maxSteps)
	rm.results[maxSteps] = memoized{res: res, err: err}
	return res, err
}

// Len reports how many distinct budgets have been simulated.
func (rm *RunMemo) Len() int {
	rm.mu.RLock()
	defer rm.mu.RUnlock()
	return len(rm.results)
}
