package turing

import (
	"sync"
	"testing"
)

// The memo must be transparent: same results as direct Run for every budget,
// one simulation per distinct budget, and safe under concurrent lookups.
func TestRunMemoMatchesRun(t *testing.T) {
	m := Counter(4, '1')
	memo := NewRunMemo(m)
	if memo.Machine() != m {
		t.Fatal("Machine() lost the machine")
	}
	budgets := []int{1, 4, 16, 64, 4, 16, 1}
	for _, b := range budgets {
		got, gotErr := memo.Run(b)
		want, wantErr := Run(m, b)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("budget %d: err %v, want %v", b, gotErr, wantErr)
		}
		if got.Halted != want.Halted || got.Steps != want.Steps || got.Output != want.Output {
			t.Fatalf("budget %d: result %+v, want %+v", b, got, want)
		}
	}
	if memo.Len() != 4 {
		t.Fatalf("memo holds %d budgets, want 4 distinct", memo.Len())
	}
}

func TestRunMemoConcurrent(t *testing.T) {
	memo := NewRunMemo(Counter(6, '0'))
	want, wantErr := Run(memo.Machine(), 64)
	if wantErr != nil {
		t.Fatal(wantErr)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				budget := 1 << (i % 8)
				res, err := memo.Run(budget)
				if err != nil {
					t.Error(err)
					return
				}
				if budget == 64 && (res.Halted != want.Halted || res.Output != want.Output) {
					t.Errorf("budget 64: %+v, want %+v", res, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}
