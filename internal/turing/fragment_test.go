package turing

import (
	"testing"
)

func TestEnumerateFragmentsHalt0(t *testing.T) {
	m := HaltWith('0')
	res := EnumerateFragments(m, 3, 3, 0)
	if res.Truncated {
		t.Fatal("unexpected truncation")
	}
	// halt-0 has no Left/Right-entering transitions, so each of the
	// (3 symbols x 3 head options)^3 = 729 first rows extends uniquely.
	if len(res.Fragments) != 729 {
		t.Fatalf("fragment count = %d, want 729", len(res.Fragments))
	}
	for _, f := range res.Fragments[:50] {
		if err := f.Consistent(); err != nil {
			t.Fatalf("enumerated fragment inconsistent: %v", err)
		}
	}
}

func TestEnumerateFragmentsLimit(t *testing.T) {
	m := HaltWith('0')
	res := EnumerateFragments(m, 3, 3, 10)
	if !res.Truncated {
		t.Fatal("limit should truncate")
	}
	if len(res.Fragments) != 10 {
		t.Fatalf("got %d fragments with limit 10", len(res.Fragments))
	}
}

// The containment property behind (P3): every sub-grid of a genuine
// execution table occurs in the enumerated fragment collection.
func TestTableSubgridsAreFragments(t *testing.T) {
	m := Counter(3, '0')
	tab := mustTable(t, m) // 5x5
	res := EnumerateFragments(m, 3, 3, 0)
	if res.Truncated {
		t.Fatal("unexpected truncation")
	}
	keys := make(map[string]struct{}, len(res.Fragments))
	for _, f := range res.Fragments {
		keys[f.Key()] = struct{}{}
	}
	for row := 0; row+3 <= tab.Height(); row++ {
		for col := 0; col+3 <= tab.Width(); col++ {
			f := FragmentOfTable(tab, row, col, 3, 3)
			if err := f.Consistent(); err != nil {
				t.Fatalf("table subgrid (%d,%d) not consistent: %v", row, col, err)
			}
			if _, ok := keys[f.Key()]; !ok {
				t.Fatalf("table subgrid (%d,%d) missing from C(M, r)", row, col)
			}
		}
	}
}

func TestFragmentOfTableConsistencyAllMachines(t *testing.T) {
	for _, m := range []*Machine{HaltWith('0'), HaltWith('1'), Counter(4, '1'), BusyBeaverish()} {
		tab := mustTable(t, m)
		h, w := tab.Height(), tab.Width()
		for _, dims := range [][2]int{{2, 2}, {2, 3}, {3, 3}} {
			fh, fw := dims[0], dims[1]
			if fh > h || fw > w {
				continue
			}
			for row := 0; row+fh <= h; row++ {
				for col := 0; col+fw <= w; col++ {
					f := FragmentOfTable(tab, row, col, fh, fw)
					if err := f.Consistent(); err != nil {
						t.Fatalf("%s subgrid (%d,%d,%dx%d): %v", m.Name, row, col, fh, fw, err)
					}
				}
			}
		}
	}
}

func TestBorderNaturalness(t *testing.T) {
	m := Counter(2, '0')   // head marches right from column 0, halts at column 2
	tab := mustTable(t, m) // 4x4

	// Full-width fragment anchored at the table origin: the left border is
	// the genuine tape edge (natural); the head crosses column boundaries
	// moving right, so interior-anchored left borders that the head crosses
	// are non-natural.
	left := FragmentOfTable(tab, 0, 0, 3, 2)
	if !left.LeftNatural() {
		t.Error("tape-edge left border should be natural")
	}
	// Fragment anchored at column 1: the head enters column 1 from column 0
	// (outside the fragment), so its left border is non-natural.
	shifted := FragmentOfTable(tab, 0, 1, 3, 2)
	if shifted.LeftNatural() {
		t.Error("head-crossed left border should be non-natural")
	}
	// Right border of a window the head exits rightward through.
	if left.RightNatural() {
		t.Error("head exits through the right border; should be non-natural")
	}
	// The last rows: frozen halting configuration; bottom row of the full
	// table contains only the halting head, which is natural.
	full := FragmentOfTable(tab, 0, 0, tab.Height(), tab.Width())
	if !full.BottomNatural() {
		t.Error("halting bottom row should be natural")
	}
	// A bottom row with a live head is non-natural.
	mid := FragmentOfTable(tab, 0, 0, 2, tab.Width())
	if mid.BottomNatural() {
		t.Error("bottom row with live head should be non-natural")
	}
	if full.TopNatural() {
		t.Error("the top row is never natural")
	}
}

func TestNonNaturalBordersAndConnectivity(t *testing.T) {
	m := Counter(2, '0')
	tab := mustTable(t, m)
	f := FragmentOfTable(tab, 0, 0, 3, 3)
	borders := f.NonNaturalBorders()
	// Top row always included.
	top := 0
	for _, p := range borders {
		if p[0] == 0 {
			top++
		}
	}
	if top != 3 {
		t.Errorf("top-row border cells = %d, want 3", top)
	}

	// This fragment hits the paper's "technical point": its bottom row holds
	// a live head (non-natural) while both side borders are natural, so the
	// actual glued borders are disconnected and gluing must use the two
	// forced variants instead.
	spec := f.ActualBorderSpec()
	if !spec.Bottom || spec.Left || spec.Right {
		t.Fatalf("unexpected actual spec %+v", spec)
	}
	if f.BorderConnected(spec) {
		t.Error("top+bottom-only borders should be disconnected in a 3x3 fragment")
	}
	variants := f.GluingVariants()
	if len(variants) != 2 {
		t.Fatalf("variants = %+v, want 2 forced variants", variants)
	}
	for _, v := range variants {
		if !f.BorderConnected(v) {
			t.Errorf("variant %+v still disconnected", v)
		}
	}

	// A fragment whose side border is crossed by the head is connected as-is.
	g := FragmentOfTable(tab, 0, 1, 3, 2)
	gspec := g.ActualBorderSpec()
	if !gspec.Left {
		t.Fatalf("expected non-natural left border, got %+v", gspec)
	}
	if !g.BorderConnected(gspec) {
		t.Error("side+top borders should be connected")
	}
	if n := len(g.GluingVariants()); n != 1 {
		t.Errorf("connected fragment should have 1 variant, got %d", n)
	}
}

func TestReconstructFromBorders(t *testing.T) {
	m := Counter(2, '0')
	tab := mustTable(t, m)
	f := FragmentOfTable(tab, 0, 0, 3, 3)
	borders := make(map[[2]int]Cell)
	for _, p := range f.NonNaturalBorders() {
		borders[p] = f.Cells[p[0]][p[1]]
	}
	got, ok := ReconstructFromBorders(m, 3, 3, borders)
	if !ok {
		t.Fatal("reconstruction failed")
	}
	if got.Key() != f.Key() {
		t.Fatalf("reconstruction mismatch:\ngot  %s\nwant %s", got.Key(), f.Key())
	}
}

func TestReconstructRejectsMissingTopRow(t *testing.T) {
	m := HaltWith('0')
	borders := map[[2]int]Cell{
		{0, 0}: {Sym: Blank, State: 0},
		// (0,1), (0,2) missing
	}
	if _, ok := ReconstructFromBorders(m, 3, 3, borders); ok {
		t.Error("incomplete top row should fail")
	}
}

func TestReconstructRejectsInconsistentBorders(t *testing.T) {
	m := Counter(2, '0')
	tab := mustTable(t, m)
	f := FragmentOfTable(tab, 0, 0, 3, 3)
	borders := make(map[[2]int]Cell)
	for _, p := range f.NonNaturalBorders() {
		borders[p] = f.Cells[p[0]][p[1]]
	}
	// Corrupt one non-top border cell that propagation will contradict.
	for p := range borders {
		if p[0] == 2 { // bottom or side row beyond the top
			c := borders[p]
			c.Sym = '1'
			if f.Cells[p[0]][p[1]].Sym == '1' {
				c.Sym = '0'
			}
			borders[p] = c
			break
		}
	}
	if _, ok := ReconstructFromBorders(m, 3, 3, borders); ok {
		t.Error("corrupted borders should fail reconstruction")
	}
}

func TestFragmentKeyDistinguishes(t *testing.T) {
	m := HaltWith('0')
	res := EnumerateFragments(m, 2, 2, 0)
	keys := make(map[string]struct{}, len(res.Fragments))
	for _, f := range res.Fragments {
		if _, dup := keys[f.Key()]; dup {
			t.Fatal("duplicate fragment key in enumeration")
		}
		keys[f.Key()] = struct{}{}
	}
}

func TestContainsFragment(t *testing.T) {
	m := HaltWith('0')
	res := EnumerateFragments(m, 2, 2, 20)
	if !ContainsFragment(res.Fragments, res.Fragments[3]) {
		t.Error("own member not found")
	}
	other := &Fragment{Machine: m, Cells: [][]Cell{
		{{Sym: 'Z', State: NoHead}, {Sym: 'Z', State: NoHead}},
		{{Sym: 'Z', State: NoHead}, {Sym: 'Z', State: NoHead}},
	}}
	if ContainsFragment(res.Fragments, other) {
		t.Error("foreign fragment found")
	}
}

func TestEnumerateFragmentsZigzagBordersArrivals(t *testing.T) {
	// Zigzag has both left- and right-moving transitions, so Unknown borders
	// admit head arrivals: fragments where a head materialises at the border
	// must exist.
	m := Zigzag()
	res := EnumerateFragments(m, 2, 2, 5000)
	foundArrival := false
	for _, f := range res.Fragments {
		// Head in row 1 at a border column without a head anywhere in row 0.
		headRow0 := false
		for _, c := range f.Cells[0] {
			if c.HasHead() {
				headRow0 = true
			}
		}
		if headRow0 {
			continue
		}
		for _, x := range []int{0, f.Width() - 1} {
			if f.Cells[1][x].HasHead() {
				foundArrival = true
			}
		}
		if foundArrival {
			break
		}
	}
	if !foundArrival {
		t.Error("no border-arrival fragment found; Unknown borders not modelled")
	}
}

func TestEnumerateInvalidDimsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	EnumerateFragments(HaltWith('0'), 0, 3, 0)
}
