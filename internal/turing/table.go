package turing

import (
	"fmt"
	"strconv"
	"strings"
)

// Cell is one entry of an execution table: the tape symbol at that position
// and, if the head is here, its control state (NoHead otherwise; the halting
// state may appear and freezes the cell).
type Cell struct {
	Sym   Symbol
	State State
}

// HasHead reports whether the head owns this cell (in any state, halting
// included).
func (c Cell) HasHead() bool { return c.State != NoHead }

// Label encodes the cell for use as part of a node label. The encoding also
// carries the (x mod 3, y mod 3) orientation coordinates required by the
// paper's labelling scheme, which supply a locally checkable orientation of
// the grid.
func (c Cell) Label(xMod3, yMod3 int) string {
	return fmt.Sprintf("cell{s=%c;q=%d;x3=%d;y3=%d}", c.Sym, c.State, xMod3, yMod3)
}

// ParseCellLabel inverts Cell.Label. The structure verifiers parse one label
// per (node, neighbour) pair in their hot loop, so this is a hand-rolled
// scan — fmt.Sscanf's reflection and internal panic/recover error path cost
// more than the whole surrounding check.
func ParseCellLabel(s string) (Cell, int, int, error) {
	fail := func() (Cell, int, int, error) {
		return Cell{}, 0, 0, fmt.Errorf("turing: bad cell label %q", s)
	}
	rest, ok := strings.CutPrefix(s, "cell{s=")
	if !ok || rest == "" {
		return fail()
	}
	sym := rest[0]
	q, rest, ok := cutInt(rest[1:], ";q=")
	if !ok {
		return fail()
	}
	x3, rest, ok := cutInt(rest, ";x3=")
	if !ok {
		return fail()
	}
	y3, rest, ok := cutInt(rest, ";y3=")
	if !ok || rest != "}" {
		return fail()
	}
	return Cell{Sym: Symbol(sym), State: State(q)}, x3, y3, nil
}

// cutInt strips prefix from s and reads the decimal (possibly negative)
// integer that follows, returning the value and the remainder.
func cutInt(s, prefix string) (int, string, bool) {
	s, ok := strings.CutPrefix(s, prefix)
	if !ok {
		return 0, s, false
	}
	i, neg := 0, false
	if i < len(s) && s[i] == '-' {
		neg = true
		i++
	}
	start, val := i, 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		val = val*10 + int(s[i]-'0')
		i++
	}
	if i == start {
		return 0, s, false
	}
	if neg {
		val = -val
	}
	return val, s[i:], true
}

// NeighborKind classifies a horizontal neighbour of a cell for the window
// relation.
type NeighborKind int

// Neighbour classifications: Known carries a concrete cell; Wall is the tape
// edge or a verified-absent neighbour (no head can arrive across it);
// Unknown is an unobserved region from which a head may arrive (used at
// fragment borders, where the paper places no constraints).
const (
	Known NeighborKind = iota + 1
	Wall
	Unknown
)

// Neighbor is a horizontal neighbour of a table cell.
type Neighbor struct {
	Kind NeighborKind
	Cell Cell // valid when Kind == Known
}

// KnownNeighbor wraps a concrete cell.
func KnownNeighbor(c Cell) Neighbor { return Neighbor{Kind: Known, Cell: c} }

// WallNeighbor is the tape edge.
func WallNeighbor() Neighbor { return Neighbor{Kind: Wall} }

// UnknownNeighbor is an unobserved region.
func UnknownNeighbor() Neighbor { return Neighbor{Kind: Unknown} }

// NextCells returns the set of cells that may legally appear directly below
// mid, given mid's horizontal neighbours. This is the Cook-Levin window
// relation: the cell below is determined by the three cells above, except
// that heads may arrive out of Unknown regions. An empty result means the
// configuration is locally inconsistent (e.g. two heads collide).
func NextCells(m *Machine, left Neighbor, mid Cell, right Neighbor) []Cell {
	// A halted head freezes its cell forever.
	if m.IsHalt(mid.State) {
		if definiteArrivalInto(m, left, right) {
			return nil // a second head running into a halted cell
		}
		return []Cell{mid}
	}

	// Symbol below: changes only if the head is on mid.
	sym := mid.Sym
	var stayArrival *State
	if mid.State != NoHead {
		tr := m.Delta[TransKey{State: mid.State, Read: mid.Sym}]
		sym = tr.Write
		if tr.Move == Stay {
			next := tr.Next
			stayArrival = &next
		}
	}

	var definite []State
	if stayArrival != nil {
		definite = append(definite, *stayArrival)
	}
	if q, ok := arrivalFrom(m, left, Right); ok {
		definite = append(definite, q)
	}
	if q, ok := arrivalFrom(m, right, Left); ok {
		definite = append(definite, q)
	}
	if len(definite) > 1 {
		return nil // head collision
	}
	if len(definite) == 1 {
		return []Cell{{Sym: sym, State: definite[0]}}
	}

	// No definite arrival: the cell may stay head-free, or a head may arrive
	// from an Unknown side.
	out := []Cell{{Sym: sym, State: NoHead}}
	seen := map[State]struct{}{}
	if left.Kind == Unknown {
		for _, q := range m.ReachableByMove(Right) {
			if _, dup := seen[q]; !dup {
				seen[q] = struct{}{}
				out = append(out, Cell{Sym: sym, State: q})
			}
		}
	}
	if right.Kind == Unknown {
		for _, q := range m.ReachableByMove(Left) {
			if _, dup := seen[q]; !dup {
				seen[q] = struct{}{}
				out = append(out, Cell{Sym: sym, State: q})
			}
		}
	}
	return out
}

// arrivalFrom reports whether a head definitely arrives into the middle cell
// from the given Known neighbour moving in direction toward.
func arrivalFrom(m *Machine, nb Neighbor, toward Move) (State, bool) {
	if nb.Kind != Known {
		return 0, false
	}
	c := nb.Cell
	if c.State == NoHead || m.IsHalt(c.State) {
		return 0, false
	}
	tr := m.Delta[TransKey{State: c.State, Read: c.Sym}]
	if tr.Move == toward {
		return tr.Next, true
	}
	return 0, false
}

func definiteArrivalInto(m *Machine, left, right Neighbor) bool {
	if _, ok := arrivalFrom(m, left, Right); ok {
		return true
	}
	_, ok := arrivalFrom(m, right, Left)
	return ok
}

// Table is an execution table (space-time diagram): Rows[i][x] is the cell at
// column x of the configuration before step i. A complete table of a machine
// with runtime s has s+1 rows and width s+1 (the head cannot leave columns
// 0..s).
type Table struct {
	Machine *Machine
	Rows    [][]Cell
}

// Width returns the number of columns.
func (t *Table) Width() int {
	if len(t.Rows) == 0 {
		return 0
	}
	return len(t.Rows[0])
}

// Height returns the number of rows.
func (t *Table) Height() int { return len(t.Rows) }

// Cell returns the cell at row y, column x.
func (t *Table) Cell(y, x int) Cell { return t.Rows[y][x] }

// BuildTable runs m to completion (within maxSteps) and lays out its full
// (s+1) x (s+1) execution table. This realises property (P1): the table is a
// faithful record of the execution.
func BuildTable(m *Machine, maxSteps int) (*Table, error) {
	res, err := Run(m, maxSteps)
	if err != nil {
		return nil, err
	}
	if !res.Halted {
		return nil, fmt.Errorf("turing: %q did not halt within %d steps", m.Name, maxSteps)
	}
	s := res.Steps
	width := s + 1
	configs, err := Trace(m, s+1)
	if err != nil {
		return nil, err
	}
	rows := make([][]Cell, s+1)
	for i, c := range configs {
		row := make([]Cell, width)
		for x := 0; x < width; x++ {
			row[x] = Cell{Sym: c.Read(x), State: NoHead}
		}
		if c.Head < width {
			row[c.Head] = Cell{Sym: c.Read(c.Head), State: c.State}
		}
		rows[i] = row
	}
	return &Table{Machine: m, Rows: rows}, nil
}

// PartialTable lays out the first rows x cols fragment of the (possibly
// infinite) execution of m: the T_{4r} sub-table of the paper's neighbourhood
// generator. It never requires m to halt. If m halts early the remaining rows
// repeat the frozen halting configuration.
func PartialTable(m *Machine, rows, cols int) (*Table, error) {
	configs, err := Trace(m, rows)
	if err != nil {
		return nil, err
	}
	out := make([][]Cell, rows)
	for i := 0; i < rows; i++ {
		c := configs[min(i, len(configs)-1)]
		row := make([]Cell, cols)
		for x := 0; x < cols; x++ {
			row[x] = Cell{Sym: c.Read(x), State: NoHead}
		}
		if c.Head < cols {
			row[c.Head] = Cell{Sym: c.Read(c.Head), State: c.State}
		}
		out[i] = row
	}
	return &Table{Machine: m, Rows: out}, nil
}

// Check verifies that the table is a valid complete execution table of its
// machine: the first row is the blank start configuration, every cell follows
// from the window relation with tape-edge walls at the sides, no halting head
// appears before the final row, and the final row contains exactly one head,
// in the halting state. This is the global version of local checkability.
func (t *Table) Check() error {
	h, w := t.Height(), t.Width()
	if h == 0 || w == 0 {
		return fmt.Errorf("turing: empty table")
	}
	m := t.Machine
	// First row: blank tape, head on cell 0 in state 0.
	for x := 0; x < w; x++ {
		want := Cell{Sym: Blank, State: NoHead}
		if x == 0 {
			want.State = 0
		}
		if t.Rows[0][x] != want {
			return fmt.Errorf("turing: row 0 col %d is %+v, want start configuration", x, t.Rows[0][x])
		}
	}
	for y := 0; y+1 < h; y++ {
		for x := 0; x < w; x++ {
			left := WallNeighbor()
			if x > 0 {
				left = KnownNeighbor(t.Rows[y][x-1])
			}
			right := WallNeighbor()
			if x+1 < w {
				right = KnownNeighbor(t.Rows[y][x+1])
			}
			options := NextCells(m, left, t.Rows[y][x], right)
			if !containsCell(options, t.Rows[y+1][x]) {
				return fmt.Errorf("turing: window violation at row %d col %d: below %+v got %+v, legal %v",
					y, x, t.Rows[y][x], t.Rows[y+1][x], options)
			}
		}
	}
	// Head accounting per row.
	for y := 0; y < h; y++ {
		heads := 0
		halts := 0
		for x := 0; x < w; x++ {
			if t.Rows[y][x].HasHead() {
				heads++
				if m.IsHalt(t.Rows[y][x].State) {
					halts++
				}
			}
		}
		if heads != 1 {
			return fmt.Errorf("turing: row %d has %d heads, want 1", y, heads)
		}
		if y < h-1 && halts > 0 {
			return fmt.Errorf("turing: halting head before final row (row %d)", y)
		}
		if y == h-1 && halts != 1 {
			return fmt.Errorf("turing: final row lacks the halting head")
		}
	}
	return nil
}

// Output returns the output symbol recorded in the final (halting) row.
func (t *Table) Output() (Symbol, error) {
	last := t.Rows[t.Height()-1]
	for _, c := range last {
		if c.HasHead() && t.Machine.IsHalt(c.State) {
			return c.Sym, nil
		}
	}
	return 0, fmt.Errorf("turing: table has no halting head in final row")
}

// SubGrid returns the h x w sub-table anchored at (row, col). It panics if
// the window exceeds the table (programming error in callers).
func (t *Table) SubGrid(row, col, h, w int) [][]Cell {
	if row < 0 || col < 0 || row+h > t.Height() || col+w > t.Width() {
		panic(fmt.Sprintf("turing: subgrid (%d,%d,%d,%d) out of %dx%d table",
			row, col, h, w, t.Height(), t.Width()))
	}
	out := make([][]Cell, h)
	for y := 0; y < h; y++ {
		out[y] = append([]Cell(nil), t.Rows[row+y][col:col+w]...)
	}
	return out
}

// Format renders the table for CLI display.
func (t *Table) Format() string {
	var b strings.Builder
	for y, row := range t.Rows {
		b.WriteString(strconv.Itoa(y))
		b.WriteByte('\t')
		for _, c := range row {
			if c.HasHead() {
				if t.Machine.IsHalt(c.State) {
					fmt.Fprintf(&b, "[%c!]", c.Sym)
				} else {
					fmt.Fprintf(&b, "[%c%d]", c.Sym, c.State)
				}
			} else {
				fmt.Fprintf(&b, " %c  ", c.Sym)
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func containsCell(cells []Cell, c Cell) bool {
	for _, x := range cells {
		if x == c {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
