package turing

import (
	"fmt"
	"testing"
)

// Ablation benches for DESIGN.md §5: fragment enumeration by constraint
// propagation (rows derived from the window relation) versus the naive
// bound, plus table construction and checking costs.

func BenchmarkEnumerateFragments(b *testing.B) {
	for _, m := range []*Machine{HaltWith('0'), BusyBeaverish()} {
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := EnumerateFragments(m, 3, 3, 0)
				if res.Truncated {
					b.Fatal("unexpected truncation")
				}
			}
		})
	}
}

func BenchmarkEnumerateFragmentsNaiveBound(b *testing.B) {
	// The naive enumeration would range over |domain|^9 labellings and
	// filter; the propagation-based enumerator explores |domain|^3 x
	// (branching) states. This bench quantifies the explored-state count
	// rather than timing the (intractable) naive loop.
	m := BusyBeaverish()
	res := EnumerateFragments(m, 3, 3, 0)
	naive := 1
	for i := 0; i < 9; i++ {
		naive *= len(cellDomain(m))
	}
	b.ReportMetric(float64(res.TotalExplored), "explored-states")
	b.ReportMetric(float64(naive), "naive-states")
	for i := 0; i < b.N; i++ {
		EnumerateFragments(m, 3, 3, 0)
	}
}

func BenchmarkBuildTable(b *testing.B) {
	for _, k := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("counter-%d", k), func(b *testing.B) {
			m := Counter(k, '0')
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := BuildTable(m, 10*k+10); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTableCheck(b *testing.B) {
	tab, err := BuildTable(Counter(32, '0'), 1000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tab.Check(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunInPlace(b *testing.B) {
	// The in-place simulator vs the copying Step path (the fix that took
	// identifier-scaled budgets from quadratic to linear).
	m := Zigzag()
	b.Run("run-in-place", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Run(m, 2000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("step-copying", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := StartConfig()
			for s := 0; s < 2000; s++ {
				next, err := c.Step(m)
				if err != nil {
					b.Fatal(err)
				}
				c = next
			}
		}
	})
}
