package turing

import (
	"fmt"
	"strings"
)

// Config is a machine configuration: tape contents, head position and control
// state. The tape is one-way infinite; unwritten cells read Blank.
type Config struct {
	Tape  []Symbol
	Head  int
	State State
}

// StartConfig returns the initial configuration: blank tape, head on cell 0,
// state 0.
func StartConfig() Config {
	return Config{Tape: nil, Head: 0, State: 0}
}

// Read returns the symbol at tape cell i.
func (c Config) Read(i int) Symbol {
	if i < 0 {
		panic(fmt.Sprintf("turing: read at negative cell %d", i))
	}
	if i >= len(c.Tape) {
		return Blank
	}
	return c.Tape[i]
}

// Step applies one transition of m and returns the successor configuration.
// Stepping a halted configuration or moving off the left tape end is an
// error (library machines never do either on a blank start tape).
func (c Config) Step(m *Machine) (Config, error) {
	if m.IsHalt(c.State) {
		return Config{}, fmt.Errorf("turing: step on halted configuration")
	}
	tr, ok := m.Delta[TransKey{State: c.State, Read: c.Read(c.Head)}]
	if !ok {
		return Config{}, fmt.Errorf("turing: missing transition delta(%d, %q)", c.State, c.Read(c.Head))
	}
	tape := append([]Symbol(nil), c.Tape...)
	for len(tape) <= c.Head {
		tape = append(tape, Blank)
	}
	tape[c.Head] = tr.Write
	head := c.Head + int(tr.Move)
	if head < 0 {
		return Config{}, fmt.Errorf("turing: head moved off the left tape end")
	}
	return Config{Tape: tape, Head: head, State: tr.Next}, nil
}

// Result summarises a bounded simulation.
type Result struct {
	Halted bool
	Steps  int    // number of transitions taken before halting (the runtime s)
	Output Symbol // symbol under the head in the halting configuration
	Final  Config
}

// Run simulates m from the blank start configuration for at most maxSteps
// transitions. If the machine halts within the budget, Result.Halted is true
// and Steps is its exact runtime.
//
// Unlike Config.Step (which copies the tape and suits table construction),
// Run mutates a single tape buffer in place: identifier-scaled simulation
// budgets (the Section 3 deciders simulate for Id(v) steps) make the
// quadratic copy-per-step cost prohibitive.
func Run(m *Machine, maxSteps int) (Result, error) {
	var tape []Symbol
	head := 0
	state := State(0)
	read := func(i int) Symbol {
		if i >= len(tape) {
			return Blank
		}
		return tape[i]
	}
	for step := 0; step <= maxSteps; step++ {
		if m.IsHalt(state) {
			final := Config{Tape: tape, Head: head, State: state}
			return Result{Halted: true, Steps: step, Output: read(head), Final: final}, nil
		}
		if step == maxSteps {
			break
		}
		tr, ok := m.Delta[TransKey{State: state, Read: read(head)}]
		if !ok {
			return Result{}, fmt.Errorf("turing: %q step %d: missing transition delta(%d, %q)",
				m.Name, step, state, read(head))
		}
		for len(tape) <= head {
			tape = append(tape, Blank)
		}
		tape[head] = tr.Write
		head += int(tr.Move)
		if head < 0 {
			return Result{}, fmt.Errorf("turing: %q step %d: head moved off the left tape end", m.Name, step)
		}
		state = tr.Next
	}
	return Result{Halted: false, Final: Config{Tape: tape, Head: head, State: state}}, nil
}

// Runtime returns the exact runtime of m if it halts within maxSteps, or
// (0, false).
func Runtime(m *Machine, maxSteps int) (int, bool) {
	res, err := Run(m, maxSteps)
	if err != nil || !res.Halted {
		return 0, false
	}
	return res.Steps, true
}

// Outputs0 reports whether m halts within maxSteps with output '0'
// (membership in L0, decided with a runtime budget). The second return is
// false when the machine did not halt within the budget.
func Outputs0(m *Machine, maxSteps int) (bool, bool) {
	res, err := Run(m, maxSteps)
	if err != nil || !res.Halted {
		return false, false
	}
	return res.Output == '0', true
}

// Trace returns the first rows configurations of the (possibly infinite)
// run of m: configurations before steps 1..rows. It never needs m to halt.
// If m halts before producing the requested rows, the trace ends at the
// halting configuration.
func Trace(m *Machine, rows int) ([]Config, error) {
	if rows < 1 {
		return nil, fmt.Errorf("turing: trace needs rows >= 1")
	}
	out := make([]Config, 0, rows)
	c := StartConfig()
	out = append(out, c)
	for len(out) < rows && !m.IsHalt(c.State) {
		next, err := c.Step(m)
		if err != nil {
			return nil, fmt.Errorf("turing: %q trace row %d: %w", m.Name, len(out), err)
		}
		c = next
		out = append(out, c)
	}
	return out, nil
}

// FormatConfig renders a configuration for CLI display, marking the head.
func FormatConfig(m *Machine, c Config, width int) string {
	var b strings.Builder
	for i := 0; i < width; i++ {
		if i == c.Head {
			if m.IsHalt(c.State) {
				fmt.Fprintf(&b, "[%c:HALT]", c.Read(i))
			} else {
				fmt.Fprintf(&b, "[%c:q%d]", c.Read(i), c.State)
			}
		} else {
			fmt.Fprintf(&b, " %c ", c.Read(i))
		}
	}
	return b.String()
}
