package turing

import (
	"fmt"
	"strings"
)

// Fragment is an h x w grid of cells that satisfies the local window rules of
// a machine's execution table everywhere, with no constraints at its borders
// (heads may enter or leave across them). The fragment collection C(M, r) of
// the paper consists of all such labelled grids of size 3r x 3r.
type Fragment struct {
	Machine *Machine
	Cells   [][]Cell
}

// Width returns the number of columns.
func (f *Fragment) Width() int {
	if len(f.Cells) == 0 {
		return 0
	}
	return len(f.Cells[0])
}

// Height returns the number of rows.
func (f *Fragment) Height() int { return len(f.Cells) }

// Key is a deterministic content fingerprint used for dedup and set
// comparisons.
func (f *Fragment) Key() string {
	var b strings.Builder
	for _, row := range f.Cells {
		for _, c := range row {
			fmt.Fprintf(&b, "%c%d;", c.Sym, c.State)
		}
		b.WriteByte('|')
	}
	return b.String()
}

// Consistent verifies every interior window of the fragment, treating the
// outside as Unknown (the paper's "no limitations on how the boundary nodes
// are labelled, as long as every sub-table is consistent").
func (f *Fragment) Consistent() error {
	h, w := f.Height(), f.Width()
	for y := 0; y+1 < h; y++ {
		for x := 0; x < w; x++ {
			left := UnknownNeighbor()
			if x > 0 {
				left = KnownNeighbor(f.Cells[y][x-1])
			}
			right := UnknownNeighbor()
			if x+1 < w {
				right = KnownNeighbor(f.Cells[y][x+1])
			}
			options := NextCells(f.Machine, left, f.Cells[y][x], right)
			if !containsCell(options, f.Cells[y+1][x]) {
				return fmt.Errorf("turing: fragment window violation at row %d col %d", y, x)
			}
		}
	}
	return nil
}

// Border naturalness (Section 3.2). A border is "natural" if it could, in
// principle, appear at the corresponding edge of a genuine execution table:
// no head crosses it. Non-natural borders are the ones glued to the pivot.

// LeftNatural reports whether the leftmost column could be the tape edge:
// every cell of the column remains consistent when the outside is a Wall, and
// no head in the column moves Left.
func (f *Fragment) LeftNatural() bool { return f.sideNatural(0, WallNeighbor(), Left) }

// RightNatural is the right-side analogue of LeftNatural.
func (f *Fragment) RightNatural() bool {
	return f.sideNatural(f.Width()-1, WallNeighbor(), Right)
}

func (f *Fragment) sideNatural(col int, outside Neighbor, crossing Move) bool {
	h, w := f.Height(), f.Width()
	for y := 0; y < h; y++ {
		c := f.Cells[y][col]
		// No head may cross the border outward.
		if c.State != NoHead && !f.Machine.IsHalt(c.State) {
			tr := f.Machine.Delta[TransKey{State: c.State, Read: c.Sym}]
			if tr.Move == crossing {
				return false
			}
		}
		// Each cell below must still be explainable with a Wall outside
		// (no head arrived from beyond the border).
		if y+1 < h {
			var left, right Neighbor
			if crossing == Left { // checking the leftmost column
				left = outside
				if w > 1 {
					right = KnownNeighbor(f.Cells[y][col+1])
				} else {
					right = UnknownNeighbor()
				}
			} else { // rightmost column
				right = outside
				if w > 1 {
					left = KnownNeighbor(f.Cells[y][col-1])
				} else {
					left = UnknownNeighbor()
				}
			}
			options := NextCells(f.Machine, left, f.Cells[y][col], right)
			if !containsCell(options, f.Cells[y+1][col]) {
				return false
			}
		}
	}
	return true
}

// BottomNatural reports whether the bottom row could end an execution table:
// it contains no non-halting head.
func (f *Fragment) BottomNatural() bool {
	for _, c := range f.Cells[f.Height()-1] {
		if c.State != NoHead && !f.Machine.IsHalt(c.State) {
			return false
		}
	}
	return true
}

// TopNatural is false for every fragment: the paper defines the top row as
// never natural, which keeps the non-natural borders non-empty so that every
// fragment is glued to the pivot.
func (f *Fragment) TopNatural() bool { return false }

// BorderSpec records which borders of a fragment are interpreted as
// non-natural (glued to the pivot). The top row is always non-natural. A
// spec may mark a border non-natural even though it is natural in fact —
// the paper's variant-splitting does exactly this — but never the converse.
type BorderSpec struct {
	Left   bool
	Right  bool
	Bottom bool
}

// ActualBorderSpec returns the borders that are truly non-natural.
func (f *Fragment) ActualBorderSpec() BorderSpec {
	return BorderSpec{
		Left:   !f.LeftNatural(),
		Right:  !f.RightNatural(),
		Bottom: !f.BottomNatural(),
	}
}

// GluingVariants returns the border interpretations under which this
// fragment enters the collection C. Usually this is the single actual spec;
// in the paper's "technical point" case — bottom non-natural while both
// sides are natural, so the glued borders would be disconnected — the
// fragment is replaced by two variants that force the left and right border
// non-natural in turn.
func (f *Fragment) GluingVariants() []BorderSpec {
	spec := f.ActualBorderSpec()
	if f.BorderConnected(spec) {
		return []BorderSpec{spec}
	}
	left := spec
	left.Left = true
	right := spec
	right.Right = true
	return []BorderSpec{left, right}
}

// BorderConnected reports whether the non-natural borders under the given
// spec form a connected subgraph of the fragment's grid (together with the
// always-non-natural top row).
func (f *Fragment) BorderConnected(spec BorderSpec) bool {
	nonNat := make(map[[2]int]struct{})
	for _, p := range f.BorderCells(spec) {
		nonNat[p] = struct{}{}
	}
	if len(nonNat) == 0 {
		return false
	}
	var start [2]int
	for p := range nonNat {
		start = p
		break
	}
	seen := map[[2]int]struct{}{start: {}}
	queue := [][2]int{start}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, d := range [][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}} {
			q := [2]int{p[0] + d[0], p[1] + d[1]}
			if _, in := nonNat[q]; !in {
				continue
			}
			if _, dup := seen[q]; dup {
				continue
			}
			seen[q] = struct{}{}
			queue = append(queue, q)
		}
	}
	return len(seen) == len(nonNat)
}

// BorderCells returns the (y, x) coordinates of the cells on the borders
// marked by spec plus the top row — the cells that get glued to the pivot
// node — in row-major order.
func (f *Fragment) BorderCells(spec BorderSpec) [][2]int {
	h, w := f.Height(), f.Width()
	set := make(map[[2]int]struct{})
	for x := 0; x < w; x++ {
		set[[2]int{0, x}] = struct{}{}
	}
	if spec.Left {
		for y := 0; y < h; y++ {
			set[[2]int{y, 0}] = struct{}{}
		}
	}
	if spec.Right {
		for y := 0; y < h; y++ {
			set[[2]int{y, w - 1}] = struct{}{}
		}
	}
	if spec.Bottom {
		for x := 0; x < w; x++ {
			set[[2]int{h - 1, x}] = struct{}{}
		}
	}
	out := make([][2]int, 0, len(set))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if _, in := set[[2]int{y, x}]; in {
				out = append(out, [2]int{y, x})
			}
		}
	}
	return out
}

// NonNaturalBorders returns the glued cells under the fragment's actual
// border spec.
func (f *Fragment) NonNaturalBorders() [][2]int {
	return f.BorderCells(f.ActualBorderSpec())
}

// EnumerateResult is the output of EnumerateFragments.
type EnumerateResult struct {
	Fragments []*Fragment
	// Truncated is true when the enumeration stopped at the limit; callers
	// must surface this (no silent caps).
	Truncated bool
	// TotalExplored counts partial labellings visited, a measure of the
	// syntactic search space.
	TotalExplored int
}

// cellDomain returns every possible cell value: any symbol, with no head, an
// ordinary-state head, or a halting head.
func cellDomain(m *Machine) []Cell {
	out := make([]Cell, 0, len(m.Symbols)*(m.States+2))
	for _, s := range m.Symbols {
		out = append(out, Cell{Sym: s, State: NoHead})
		for q := 0; q < m.States; q++ {
			out = append(out, Cell{Sym: s, State: State(q)})
		}
		out = append(out, Cell{Sym: s, State: m.Halt})
	}
	return out
}

// EnumerateFragments generates the fragment collection C(M, r) for fragments
// of the given dimensions: every h x w cell grid satisfying the window rules
// with unconstrained borders. The first row ranges over all cell
// combinations; each subsequent row is filled column by column from the
// window relation. Enumeration is depth-first and deterministic. At most
// limit fragments are produced (limit <= 0 means unlimited); if the limit
// stops the enumeration, Truncated is set.
func EnumerateFragments(m *Machine, h, w, limit int) *EnumerateResult {
	if h < 1 || w < 1 {
		panic(fmt.Sprintf("turing: invalid fragment dims %dx%d", h, w))
	}
	res := &EnumerateResult{}
	domain := cellDomain(m)
	grid := make([][]Cell, h)
	for i := range grid {
		grid[i] = make([]Cell, w)
	}
	var rec func(y, x int) bool // returns false to stop (limit reached)
	rec = func(y, x int) bool {
		if y == h {
			cells := make([][]Cell, h)
			for i := range cells {
				cells[i] = append([]Cell(nil), grid[i]...)
			}
			res.Fragments = append(res.Fragments, &Fragment{Machine: m, Cells: cells})
			return limit <= 0 || len(res.Fragments) < limit
		}
		if x == w {
			return rec(y+1, 0)
		}
		res.TotalExplored++
		var options []Cell
		if y == 0 {
			options = domain
		} else {
			left := UnknownNeighbor()
			if x > 0 {
				left = KnownNeighbor(grid[y-1][x-1])
			}
			right := UnknownNeighbor()
			if x+1 < w {
				right = KnownNeighbor(grid[y-1][x+1])
			}
			options = NextCells(m, left, grid[y-1][x], right)
		}
		for _, c := range options {
			grid[y][x] = c
			if !rec(y, x+1) {
				return false
			}
		}
		return true
	}
	res.Truncated = !rec(0, 0)
	return res
}

// FragmentOfTable cuts the h x w sub-grid of a table at (row, col) as a
// Fragment. Sub-grids of genuine execution tables are always consistent
// fragments — the containment property behind the paper's "every
// r-neighbourhood in T is found already in some labelled fragment in C".
func FragmentOfTable(t *Table, row, col, h, w int) *Fragment {
	return &Fragment{Machine: t.Machine, Cells: t.SubGrid(row, col, h, w)}
}

// ContainsFragment reports whether the collection contains a fragment with
// exactly the given content.
func ContainsFragment(fragments []*Fragment, f *Fragment) bool {
	key := f.Key()
	for _, g := range fragments {
		if g.Key() == key {
			return true
		}
	}
	return false
}

// ReconstructFromBorders demonstrates the paper's Border property: given only
// the cells on the non-natural borders of a fragment (the cells a pivot node
// sees through its gluing edges), the window rules reconstruct the fragment
// uniquely. Natural borders — which are absent from the input — carry the
// guarantee that no head ever crossed them, so the propagation treats the
// regions beyond them as walls.
//
// The borders map must contain the full top row (the top is never natural)
// and the full left/right columns and bottom row exactly when those borders
// are non-natural. Reconstruction proceeds row by row; it returns the
// reconstructed fragment and whether it is complete and consistent with the
// provided border cells.
func ReconstructFromBorders(m *Machine, h, w int, borders map[[2]int]Cell) (*Fragment, bool) {
	cells := make([][]Cell, h)
	for y := range cells {
		cells[y] = make([]Cell, w)
	}
	// Top row must be fully present.
	for x := 0; x < w; x++ {
		c, ok := borders[[2]int{0, x}]
		if !ok {
			return nil, false
		}
		cells[0][x] = c
	}
	for y := 1; y < h; y++ {
		for x := 0; x < w; x++ {
			if c, ok := borders[[2]int{y, x}]; ok && (x == 0 || x == w-1) {
				// Known non-natural side column: take it, but also verify it
				// against the propagation below where possible.
				cells[y][x] = c
				continue
			}
			left := WallNeighbor() // natural border: nothing crosses
			if x > 0 {
				left = KnownNeighbor(cells[y-1][x-1])
			}
			right := WallNeighbor()
			if x+1 < w {
				right = KnownNeighbor(cells[y-1][x+1])
			}
			options := NextCells(m, left, cells[y-1][x], right)
			if len(options) != 1 {
				return nil, false
			}
			cells[y][x] = options[0]
		}
	}
	// Verify all provided border cells agree with the reconstruction.
	frag := &Fragment{Machine: m, Cells: cells}
	for p, c := range borders {
		if cells[p[0]][p[1]] != c {
			return frag, false
		}
	}
	// Unknown-free verification: the reconstruction must be consistent.
	if err := frag.Consistent(); err != nil {
		return frag, false
	}
	return frag, true
}
