// Package turing implements the sequential-computability substrate of the
// paper's Section 3: deterministic single-tape Turing machines, bounded
// simulation, execution tables (space-time diagrams) with a locally checkable
// cell-labelling scheme, and the enumeration of all syntactically possible
// table fragments used by the fragment collection C(M, r).
//
// Local consistency is expressed through 2-row x 3-column windows in the
// Cook-Levin style: the cell below is determined by the three cells above it.
// The paper uses a labelling scheme with 2x2 windows; the difference is a
// constant in the checking radius only (see DESIGN.md), and the window
// relation here is the conventional, easily-audited one.
package turing

import (
	"fmt"
	"sort"
	"strings"
)

// Symbol is a tape symbol. The blank symbol is always Blank.
type Symbol byte

// Blank is the blank tape symbol.
const Blank Symbol = '_'

// State is a control state. States 0..Q-1 are ordinary states; state 0 is
// the start state. NoHead marks a table cell not owned by the head.
type State int

// NoHead marks the absence of the head in an execution-table cell.
const NoHead State = -1

// Move is a head movement.
type Move int8

// Head movements. Stay is permitted (it only appears on halting transitions
// in the library machines, but the table rules support it generally).
const (
	Left  Move = -1
	Stay  Move = 0
	Right Move = 1
)

// String renders the move as L/S/R.
func (m Move) String() string {
	switch m {
	case Left:
		return "L"
	case Stay:
		return "S"
	case Right:
		return "R"
	default:
		return fmt.Sprintf("Move(%d)", int8(m))
	}
}

// TransKey indexes the transition function: current state and read symbol.
type TransKey struct {
	State State
	Read  Symbol
}

// Trans is one transition: write a symbol, move, enter the next state.
type Trans struct {
	Write Symbol
	Move  Move
	Next  State
}

// Machine is a deterministic single-tape Turing machine operating on a
// one-way infinite tape, started on a blank tape with the head on cell 0 in
// state 0. It halts upon entering Halt. The output of a halting run is the
// symbol under the head in the halting configuration.
type Machine struct {
	Name    string
	States  int // ordinary states are 0..States-1
	Halt    State
	Symbols []Symbol // tape alphabet; must contain Blank
	Delta   map[TransKey]Trans
}

// Validate checks structural well-formedness: the alphabet contains Blank,
// Halt is outside the ordinary state range, and Delta is total on ordinary
// states and defined only there.
func (m *Machine) Validate() error {
	if m.States < 1 {
		return fmt.Errorf("turing: machine %q has no states", m.Name)
	}
	if int(m.Halt) < m.States {
		return fmt.Errorf("turing: machine %q halt state %d collides with ordinary states", m.Name, m.Halt)
	}
	hasBlank := false
	seen := make(map[Symbol]struct{}, len(m.Symbols))
	for _, s := range m.Symbols {
		if _, dup := seen[s]; dup {
			return fmt.Errorf("turing: machine %q duplicate symbol %q", m.Name, s)
		}
		seen[s] = struct{}{}
		if s == Blank {
			hasBlank = true
		}
	}
	if !hasBlank {
		return fmt.Errorf("turing: machine %q alphabet lacks blank", m.Name)
	}
	for q := State(0); int(q) < m.States; q++ {
		for _, s := range m.Symbols {
			tr, ok := m.Delta[TransKey{State: q, Read: s}]
			if !ok {
				return fmt.Errorf("turing: machine %q missing delta(%d, %q)", m.Name, q, s)
			}
			if _, okSym := seen[tr.Write]; !okSym {
				return fmt.Errorf("turing: machine %q writes foreign symbol %q", m.Name, tr.Write)
			}
			if tr.Move != Left && tr.Move != Stay && tr.Move != Right {
				return fmt.Errorf("turing: machine %q invalid move %d", m.Name, tr.Move)
			}
			if tr.Next != m.Halt && (tr.Next < 0 || int(tr.Next) >= m.States) {
				return fmt.Errorf("turing: machine %q transitions to unknown state %d", m.Name, tr.Next)
			}
		}
	}
	for key := range m.Delta {
		if key.State == m.Halt {
			return fmt.Errorf("turing: machine %q defines a transition out of halt", m.Name)
		}
		if key.State < 0 || int(key.State) >= m.States {
			return fmt.Errorf("turing: machine %q delta key for unknown state %d", m.Name, key.State)
		}
	}
	return nil
}

// IsHalt reports whether q is the halting state.
func (m *Machine) IsHalt(q State) bool { return q == m.Halt }

// Encode serialises the machine into a deterministic string, used as the
// (M, r) component of node labels in G(M, r).
func (m *Machine) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "tm{%s;Q=%d;H=%d;S=", m.Name, m.States, m.Halt)
	for _, s := range m.Symbols {
		b.WriteByte(byte(s))
	}
	b.WriteByte(';')
	keys := make([]TransKey, 0, len(m.Delta))
	for k := range m.Delta {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].State != keys[j].State {
			return keys[i].State < keys[j].State
		}
		return keys[i].Read < keys[j].Read
	})
	for _, k := range keys {
		tr := m.Delta[k]
		fmt.Fprintf(&b, "d(%d,%c)=(%c,%s,%d);", k.State, k.Read, tr.Write, tr.Move, tr.Next)
	}
	b.WriteByte('}')
	return b.String()
}

// ReachableByMove returns the set of states that some transition enters while
// moving in the given direction. Fragment enumeration uses this to model a
// head arriving from outside the fragment.
func (m *Machine) ReachableByMove(mv Move) []State {
	set := make(map[State]struct{})
	for _, tr := range m.Delta {
		if tr.Move == mv {
			set[tr.Next] = struct{}{}
		}
	}
	out := make([]State, 0, len(set))
	for q := range set {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Library machines ------------------------------------------------------------

// binaryAlphabet is the shared alphabet of the library machines.
func binaryAlphabet() []Symbol { return []Symbol{Blank, '0', '1'} }

// HaltWith returns a machine that immediately writes the given output symbol
// and halts (runtime 1). It is the minimal member of L0 (out='0') or L1
// (out='1').
func HaltWith(out Symbol) *Machine {
	m := &Machine{
		Name:    fmt.Sprintf("halt-%c", out),
		States:  1,
		Halt:    1,
		Symbols: binaryAlphabet(),
		Delta:   map[TransKey]Trans{},
	}
	for _, s := range m.Symbols {
		m.Delta[TransKey{State: 0, Read: s}] = Trans{Write: out, Move: Stay, Next: m.Halt}
	}
	return m
}

// Looper returns a machine that moves right forever (never halts).
func Looper() *Machine {
	m := &Machine{
		Name:    "looper",
		States:  1,
		Halt:    1,
		Symbols: binaryAlphabet(),
		Delta:   map[TransKey]Trans{},
	}
	for _, s := range m.Symbols {
		m.Delta[TransKey{State: 0, Read: s}] = Trans{Write: s, Move: Right, Next: 0}
	}
	return m
}

// Zigzag returns a machine that bounces between a left-edge marker and a
// growing right frontier and never halts, exercising both head directions
// indefinitely. The head never falls off the left tape end: cell 0 is marked
// with '0' on the first step and acts as a bumper.
func Zigzag() *Machine {
	return &Machine{
		Name:    "zigzag",
		States:  3,
		Halt:    3,
		Symbols: binaryAlphabet(),
		Delta: map[TransKey]Trans{
			// State 0: initialise the left-edge marker.
			{State: 0, Read: Blank}: {Write: '0', Move: Right, Next: 1},
			{State: 0, Read: '0'}:   {Write: '0', Move: Right, Next: 1},
			{State: 0, Read: '1'}:   {Write: '0', Move: Right, Next: 1},
			// State 1: sweep right over written cells; extend at the frontier
			// and turn around.
			{State: 1, Read: Blank}: {Write: '1', Move: Left, Next: 2},
			{State: 1, Read: '0'}:   {Write: '0', Move: Right, Next: 1},
			{State: 1, Read: '1'}:   {Write: '1', Move: Right, Next: 1},
			// State 2: sweep left over 1s; bounce off the edge marker.
			{State: 2, Read: Blank}: {Write: '1', Move: Right, Next: 1},
			{State: 2, Read: '0'}:   {Write: '0', Move: Right, Next: 1},
			{State: 2, Read: '1'}:   {Write: '1', Move: Left, Next: 2},
		},
	}
}

// Counter returns a machine that makes exactly k right-moves writing 1s and
// then halts writing out. Runtime is k+1 steps. It gives precise control over
// runtimes in the promise-problem experiments.
func Counter(k int, out Symbol) *Machine {
	if k < 0 {
		panic("turing: negative counter length")
	}
	m := &Machine{
		Name:    fmt.Sprintf("counter-%d-%c", k, out),
		States:  k + 1,
		Halt:    State(k + 1),
		Symbols: binaryAlphabet(),
		Delta:   map[TransKey]Trans{},
	}
	for q := 0; q < k; q++ {
		for _, s := range m.Symbols {
			m.Delta[TransKey{State: State(q), Read: s}] = Trans{Write: '1', Move: Right, Next: State(q + 1)}
		}
	}
	for _, s := range m.Symbols {
		m.Delta[TransKey{State: State(k), Read: s}] = Trans{Write: out, Move: Stay, Next: m.Halt}
	}
	return m
}

// BusyBeaverish returns a small 2-state machine with a nontrivial halting
// run that revisits cells (a shortened busy-beaver-style run).
func BusyBeaverish() *Machine {
	// Runs: writes 1s back and forth a few times, halts with output '1'.
	return &Machine{
		Name:    "busybeaverish",
		States:  2,
		Halt:    2,
		Symbols: binaryAlphabet(),
		Delta: map[TransKey]Trans{
			{State: 0, Read: Blank}: {Write: '1', Move: Right, Next: 1},
			{State: 0, Read: '0'}:   {Write: '1', Move: Right, Next: 1},
			{State: 0, Read: '1'}:   {Write: '1', Move: Stay, Next: 2},
			{State: 1, Read: Blank}: {Write: '1', Move: Left, Next: 0},
			{State: 1, Read: '0'}:   {Write: '1', Move: Left, Next: 0},
			{State: 1, Read: '1'}:   {Write: '1', Move: Right, Next: 1},
		},
	}
}

// Library returns the standard machine suite used across tests, examples and
// benchmarks, each validated.
func Library() []*Machine {
	ms := []*Machine{
		HaltWith('0'),
		HaltWith('1'),
		Looper(),
		Zigzag(),
		Counter(2, '0'), // runtime 3: table side 4, a power of two (pyramids)
		Counter(3, '0'),
		Counter(5, '1'),
		Counter(6, '0'), // runtime 7: table side 8 (pyramids)
		BusyBeaverish(),
	}
	for _, m := range ms {
		if err := m.Validate(); err != nil {
			panic(err)
		}
	}
	return ms
}
