package turing

import (
	"testing"
	"testing/quick"
)

// Property: for every counter length, the execution table built from the
// run passes its own validity check, and its output matches the direct
// simulation.
func TestTableValidityProperty_Quick(t *testing.T) {
	property := func(raw uint8) bool {
		k := int(raw % 12)
		for _, out := range []Symbol{'0', '1'} {
			m := Counter(k, out)
			tab, err := BuildTable(m, 100)
			if err != nil {
				return false
			}
			if tab.Check() != nil {
				return false
			}
			got, err := tab.Output()
			if err != nil || got != out {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: with fully known (or wall) horizontal context, the window
// relation is deterministic — at most one successor cell.
func TestWindowDeterminismProperty_Quick(t *testing.T) {
	machines := []*Machine{HaltWith('0'), Counter(3, '1'), BusyBeaverish(), Zigzag()}
	property := func(mi, li, ci, ri uint8, leftWall, rightWall bool) bool {
		m := machines[int(mi)%len(machines)]
		domain := cellDomain(m)
		mid := domain[int(ci)%len(domain)]
		left := WallNeighbor()
		if !leftWall {
			left = KnownNeighbor(domain[int(li)%len(domain)])
		}
		right := WallNeighbor()
		if !rightWall {
			right = KnownNeighbor(domain[int(ri)%len(domain)])
		}
		return len(NextCells(m, left, mid, right)) <= 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: Unknown context can only ADD options relative to Wall context
// (the fragment rules are a relaxation of the table rules).
func TestUnknownRelaxesWallProperty_Quick(t *testing.T) {
	machines := []*Machine{HaltWith('0'), Counter(2, '0'), Zigzag()}
	property := func(mi, li, ci, ri uint8) bool {
		m := machines[int(mi)%len(machines)]
		domain := cellDomain(m)
		mid := domain[int(ci)%len(domain)]
		left := KnownNeighbor(domain[int(li)%len(domain)])
		right := KnownNeighbor(domain[int(ri)%len(domain)])

		walled := NextCells(m, left, mid, WallNeighbor())
		open := NextCells(m, left, mid, UnknownNeighbor())
		for _, w := range walled {
			found := false
			for _, o := range open {
				if o == w {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		_ = right
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: every enumerated fragment passes its own consistency check, and
// enumeration is deterministic.
func TestEnumerationSelfConsistencyProperty_Quick(t *testing.T) {
	property := func(raw uint8) bool {
		dims := []struct{ h, w int }{{2, 2}, {2, 3}, {3, 2}}
		d := dims[int(raw)%len(dims)]
		a := EnumerateFragments(BusyBeaverish(), d.h, d.w, 40)
		b := EnumerateFragments(BusyBeaverish(), d.h, d.w, 40)
		if len(a.Fragments) != len(b.Fragments) {
			return false
		}
		for i := range a.Fragments {
			if a.Fragments[i].Key() != b.Fragments[i].Key() {
				return false
			}
			if a.Fragments[i].Consistent() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 9}); err != nil {
		t.Error(err)
	}
}

// Property: gluing variants are never empty, always connected, and only
// ever widen the actual non-natural border set.
func TestGluingVariantsProperty_Quick(t *testing.T) {
	res := EnumerateFragments(Counter(2, '0'), 3, 3, 300)
	property := func(raw uint16) bool {
		f := res.Fragments[int(raw)%len(res.Fragments)]
		actual := f.ActualBorderSpec()
		variants := f.GluingVariants()
		if len(variants) == 0 {
			return false
		}
		for _, v := range variants {
			if !f.BorderConnected(v) {
				return false
			}
			// Widening only: every actually non-natural border stays marked.
			if actual.Left && !v.Left || actual.Right && !v.Right || actual.Bottom && !v.Bottom {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
