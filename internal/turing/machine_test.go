package turing

import (
	"strings"
	"testing"
)

func TestLibraryValidates(t *testing.T) {
	for _, m := range Library() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	base := HaltWith('0')
	tests := []struct {
		name   string
		mutate func(m *Machine)
		want   string
	}{
		{"no states", func(m *Machine) { m.States = 0 }, "no states"},
		{"halt collides", func(m *Machine) { m.Halt = 0 }, "collides"},
		{"no blank", func(m *Machine) { m.Symbols = []Symbol{'0', '1'} }, "lacks blank"},
		{"duplicate symbol", func(m *Machine) { m.Symbols = append(m.Symbols, '0') }, "duplicate"},
		{"missing delta", func(m *Machine) { delete(m.Delta, TransKey{State: 0, Read: '1'}) }, "missing delta"},
		{"foreign write", func(m *Machine) {
			m.Delta[TransKey{State: 0, Read: '0'}] = Trans{Write: 'X', Move: Stay, Next: m.Halt}
		}, "foreign symbol"},
		{"bad move", func(m *Machine) {
			m.Delta[TransKey{State: 0, Read: '0'}] = Trans{Write: '0', Move: 5, Next: m.Halt}
		}, "invalid move"},
		{"unknown next", func(m *Machine) {
			m.Delta[TransKey{State: 0, Read: '0'}] = Trans{Write: '0', Move: Stay, Next: 77}
		}, "unknown state"},
		{"transition out of halt", func(m *Machine) {
			m.Delta[TransKey{State: m.Halt, Read: '0'}] = Trans{Write: '0', Move: Stay, Next: m.Halt}
		}, "out of halt"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m := &Machine{
				Name:    base.Name,
				States:  base.States,
				Halt:    base.Halt,
				Symbols: append([]Symbol(nil), base.Symbols...),
				Delta:   make(map[TransKey]Trans, len(base.Delta)),
			}
			for k, v := range base.Delta {
				m.Delta[k] = v
			}
			tc.mutate(m)
			err := m.Validate()
			if err == nil {
				t.Fatalf("expected validation error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRunHaltWith(t *testing.T) {
	for _, out := range []Symbol{'0', '1'} {
		m := HaltWith(out)
		res, err := Run(m, 100)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Halted || res.Steps != 1 || res.Output != out {
			t.Errorf("HaltWith(%c): %+v", out, res)
		}
	}
}

func TestRunLooperAndZigzagNeverHalt(t *testing.T) {
	for _, m := range []*Machine{Looper(), Zigzag()} {
		res, err := Run(m, 500)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if res.Halted {
			t.Errorf("%s halted unexpectedly after %d steps", m.Name, res.Steps)
		}
	}
}

func TestCounterRuntime(t *testing.T) {
	for _, k := range []int{0, 1, 3, 7} {
		m := Counter(k, '0')
		steps, ok := Runtime(m, 100)
		if !ok {
			t.Fatalf("Counter(%d) did not halt", k)
		}
		if steps != k+1 {
			t.Errorf("Counter(%d) runtime = %d, want %d", k, steps, k+1)
		}
	}
	res, err := Run(Counter(2, '1'), 100)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output != '1' {
		t.Errorf("Counter output = %c, want 1", res.Output)
	}
}

func TestBusyBeaverish(t *testing.T) {
	m := BusyBeaverish()
	res, err := Run(m, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted || res.Output != '1' {
		t.Errorf("BusyBeaverish: %+v", res)
	}
	if res.Steps < 3 {
		t.Errorf("BusyBeaverish too fast: %d steps", res.Steps)
	}
}

func TestOutputs0(t *testing.T) {
	if ok, halted := Outputs0(HaltWith('0'), 10); !ok || !halted {
		t.Error("halt-0 should be in L0")
	}
	if ok, halted := Outputs0(HaltWith('1'), 10); ok || !halted {
		t.Error("halt-1 should be in L1, not L0")
	}
	if _, halted := Outputs0(Looper(), 10); halted {
		t.Error("looper should exhaust the budget")
	}
}

func TestRunBudgetExhaustion(t *testing.T) {
	m := Counter(10, '0') // runtime 11
	res, err := Run(m, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Error("should not halt within 5 steps")
	}
	res, err = Run(m, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Error("should halt within exactly 11 steps")
	}
}

func TestTrace(t *testing.T) {
	m := Counter(2, '0') // runtime 3: configs 0..3
	configs, err := Trace(m, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 4 {
		t.Fatalf("trace length = %d, want 4 (halting cuts it short)", len(configs))
	}
	if configs[0].State != 0 || configs[0].Head != 0 {
		t.Error("trace does not start at the start configuration")
	}
	if !m.IsHalt(configs[3].State) {
		t.Error("trace should end in the halting configuration")
	}
	// Looper: trace exactly as many rows as requested.
	loopTrace, err := Trace(Looper(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(loopTrace) != 7 {
		t.Fatalf("looper trace length = %d, want 7", len(loopTrace))
	}
	if _, err := Trace(Looper(), 0); err == nil {
		t.Error("rows < 1 should error")
	}
}

func TestStepErrors(t *testing.T) {
	m := HaltWith('0')
	c := Config{State: m.Halt}
	if _, err := c.Step(m); err == nil {
		t.Error("stepping a halted configuration should error")
	}
	// A machine that immediately moves left falls off the tape.
	bad := &Machine{
		Name: "fall-left", States: 1, Halt: 1, Symbols: binaryAlphabet(),
		Delta: map[TransKey]Trans{},
	}
	for _, s := range bad.Symbols {
		bad.Delta[TransKey{State: 0, Read: s}] = Trans{Write: s, Move: Left, Next: 0}
	}
	if _, err := Run(bad, 10); err == nil {
		t.Error("falling off the left end should error")
	}
}

func TestEncodeDeterministicAndDistinct(t *testing.T) {
	a1 := HaltWith('0').Encode()
	a2 := HaltWith('0').Encode()
	b := HaltWith('1').Encode()
	if a1 != a2 {
		t.Error("Encode not deterministic")
	}
	if a1 == b {
		t.Error("different machines encode identically")
	}
	if !strings.Contains(a1, "halt-0") {
		t.Errorf("encoding lacks name: %s", a1)
	}
}

func TestReachableByMove(t *testing.T) {
	m := Counter(2, '0')
	right := m.ReachableByMove(Right)
	// States 1, 2 are entered by right moves.
	if len(right) != 2 || right[0] != 1 || right[1] != 2 {
		t.Errorf("ReachableByMove(Right) = %v", right)
	}
	if left := m.ReachableByMove(Left); len(left) != 0 {
		t.Errorf("ReachableByMove(Left) = %v, want empty", left)
	}
	stay := m.ReachableByMove(Stay)
	if len(stay) != 1 || stay[0] != m.Halt {
		t.Errorf("ReachableByMove(Stay) = %v, want [halt]", stay)
	}
}

func TestMoveString(t *testing.T) {
	if Left.String() != "L" || Stay.String() != "S" || Right.String() != "R" {
		t.Error("move strings wrong")
	}
	if Move(9).String() != "Move(9)" {
		t.Error("unknown move rendering wrong")
	}
}

func TestFormatConfig(t *testing.T) {
	m := HaltWith('0')
	s := FormatConfig(m, StartConfig(), 3)
	if !strings.Contains(s, "q0") {
		t.Errorf("FormatConfig lacks head marker: %q", s)
	}
	res, _ := Run(m, 10)
	s = FormatConfig(m, res.Final, 3)
	if !strings.Contains(s, "HALT") {
		t.Errorf("FormatConfig lacks halt marker: %q", s)
	}
}

func TestReadNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	StartConfig().Read(-1)
}
