package oblivious

import (
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
)

// sizeThresholdDecider rejects at a node iff it sees an identifier >= bound:
// the archetypal ID-using decider (it infers graph size from ID magnitude).
func sizeThresholdDecider(bound int) local.Algorithm {
	return local.AlgorithmFunc("id-threshold", 1, func(view *graph.View) local.Verdict {
		return local.Verdict(view.MaxIDInView() < bound)
	})
}

func TestSimulationRejectsIffSomeAssignmentRejects(t *testing.T) {
	alg := sizeThresholdDecider(5)
	domain := []int{0, 1, 2, 3, 4, 5, 6}
	sim := NewSimulation(alg, domain)
	l := graph.UniformlyLabeled(graph.Path(3), "")
	// Some assignment from the domain includes a value >= 5, so A* rejects
	// every view: A* decides the property "no assignment can reject", which
	// for this decider is empty. The point: A* is the universal
	// quantification over assignments, mirroring the paper's definition.
	out := local.RunOblivious(sim, l)
	if out.Accepted {
		t.Fatal("A* should reject: assignments with id >= 5 exist in the domain")
	}
	// With a domain entirely below the bound, no assignment rejects.
	small := NewSimulation(alg, []int{0, 1, 2, 3})
	if out := local.RunOblivious(small, l); !out.Accepted {
		t.Fatal("A* should accept when no domain assignment can reject")
	}
}

func TestSimulationMatchesPaperSemantics(t *testing.T) {
	// The paper: A* outputs no on v iff there is a local assignment Id'
	// making A output no. Test with an algorithm rejecting on a specific
	// pattern: root id even and some neighbour id < root id.
	alg := local.AlgorithmFunc("picky", 1, func(view *graph.View) local.Verdict {
		rootID := view.RootID()
		if rootID%2 != 0 {
			return local.Yes
		}
		for i, id := range view.IDs {
			if i != view.Root && id < rootID {
				return local.No
			}
		}
		return local.Yes
	})
	sim := NewSimulation(alg, []int{0, 1, 2})
	l := graph.UniformlyLabeled(graph.Path(2), "")
	// View of either endpoint: 2 nodes. Assignment (2,0): root=2 even,
	// neighbour 0 < 2: rejects. So A* rejects.
	if out := local.RunOblivious(sim, l); out.Accepted {
		t.Fatal("A* missed a rejecting assignment")
	}
	// Isolated node: only 1-node assignments; root even with no neighbours
	// never rejects.
	single := graph.UniformlyLabeled(graph.New(1), "")
	if out := local.RunOblivious(sim, single); !out.Accepted {
		t.Fatal("A* rejected with no rejecting assignment")
	}
}

// A simulation whose decide panics (undersized domain) no longer kills the
// process: the engine's crash recovery surfaces it as Outcome.Err.
func TestSimulationDomainTooSmallErrors(t *testing.T) {
	sim := NewSimulation(sizeThresholdDecider(5), []int{0})
	l := graph.UniformlyLabeled(graph.Path(3), "")
	out := local.RunOblivious(sim, l)
	if out.Err == nil || out.Accepted {
		t.Fatalf("undersized domain: %+v, want error", out)
	}
}

func TestSimulationCapErrors(t *testing.T) {
	sim := NewSimulation(sizeThresholdDecider(100), []int{0, 1, 2, 3, 4, 5, 6, 7})
	sim.MaxAssignments = 10
	l := graph.UniformlyLabeled(graph.Star(5), "")
	out := local.RunOblivious(sim, l)
	if out.Err == nil || out.Accepted {
		t.Fatalf("assignment cap: %+v, want error", out)
	}
}

func TestSimulationIsObliviousByConstruction(t *testing.T) {
	sim := NewSimulation(sizeThresholdDecider(4), []int{0, 1, 2, 3})
	asAlg := local.AsOblivious(sim)
	l := graph.UniformlyLabeled(graph.Cycle(5), "")
	if err := local.CheckOblivious(asAlg, l, ids.Renumberings(5, 4, nil, 3)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sim.Name(), "A*") {
		t.Error("name should advertise the simulation")
	}
	if sim.Horizon() != 1 {
		t.Error("horizon should match the wrapped algorithm")
	}
}

func TestRanks(t *testing.T) {
	r := Ranks([]int{30, 10, 20})
	want := []int{2, 0, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", r, want)
		}
	}
	if len(Ranks(nil)) != 0 {
		t.Error("empty ranks should be empty")
	}
}

func TestOIAlgorithm(t *testing.T) {
	// OI decider: accept iff the root holds the locally largest identifier
	// or is not a local maximum — i.e. compute something order-only.
	oi := OIFunc("local-max", 1, func(view *graph.View, rank []int) local.Verdict {
		return local.Verdict(rank[view.Root] == len(rank)-1 || view.G.Degree(view.Root) > 0)
	})
	alg := AsAlgorithm(oi)
	l := graph.UniformlyLabeled(graph.Path(4), "")
	// Order-isomorphic assignments must give identical verdicts.
	a := local.Run(alg, graph.NewInstance(l, []int{1, 5, 3, 7}))
	b := local.Run(alg, graph.NewInstance(l, []int{10, 50, 30, 70}))
	for v := range a.Verdicts {
		if a.Verdicts[v] != b.Verdicts[v] {
			t.Fatal("OI algorithm distinguished order-isomorphic assignments")
		}
	}
	if err := CheckOrderInvariance(alg, l, [][]int{{1, 5, 3, 7}, {10, 50, 30, 70}, {2, 9, 4, 11}}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckOrderInvarianceCatchesValueUse(t *testing.T) {
	// A decider using ID VALUES (not order): flags under order-isomorphic
	// renumbering.
	alg := sizeThresholdDecider(40)
	l := graph.UniformlyLabeled(graph.Path(3), "")
	err := CheckOrderInvariance(alg, l, [][]int{{1, 2, 3}, {10, 20, 30}, {100, 200, 300}})
	if err == nil {
		t.Fatal("value-dependent decider not flagged")
	}
	if err := CheckOrderInvariance(alg, l, [][]int{{1, 2, 3}}); err == nil {
		t.Fatal("single assignment should error")
	}
}

func TestOrientEdgesWithIDs(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(5), "")
	in := graph.NewInstance(l, []int{3, 1, 4, 0, 2})
	outputs := RunOutputs(OrientEdgesWithIDs(), in)
	if err := ValidOrientation(l, outputs); err != nil {
		t.Fatal(err)
	}
}

func TestObliviousOrientationImpossible(t *testing.T) {
	// On a uniformly labelled cycle every node has the same view, so every
	// Id-oblivious algorithm outputs the same direction string everywhere —
	// which is never a valid antisymmetric orientation.
	l := graph.UniformlyLabeled(graph.Cycle(6), "")
	code, err := ObliviousOutputsIdentical(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if code == "" {
		t.Fatal("empty view code")
	}
	// Constant outputs fail validation for every possible constant.
	for _, constant := range []string{"<<", "><", "<>", ">>"} {
		outputs := make([]string, l.N())
		for i := range outputs {
			outputs[i] = constant
		}
		if err := ValidOrientation(l, outputs); err == nil {
			t.Fatalf("constant orientation %q validated; impossibility argument broken", constant)
		}
	}
}

func TestTwoColoringWithIDs(t *testing.T) {
	// A perfect matching on 4 nodes: edges {0,1}, {2,3}.
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	l := graph.UniformlyLabeled(g, "")
	in := graph.NewInstance(l, []int{5, 2, 0, 9})
	outputs := RunOutputs(TwoColoringWithIDs(), in)
	if outputs[0] == outputs[1] || outputs[2] == outputs[3] {
		t.Fatalf("matching endpoints share a colour: %v", outputs)
	}
	// Id-obliviously impossible: both endpoints of an edge have identical
	// views.
	if _, err := ObliviousOutputsIdentical(l, 1); err != nil {
		t.Fatal(err)
	}
	// Degree != 1 is flagged.
	star := graph.UniformlyLabeled(graph.Star(3), "")
	bad := RunOutputs(TwoColoringWithIDs(), graph.NewInstance(star, []int{0, 1, 2}))
	if bad[0] != "invalid" {
		t.Error("centre of star should be invalid for 1-regular task")
	}
}

func TestObliviousOutputsIdenticalErrors(t *testing.T) {
	// A path has distinct views (endpoints vs middle).
	l := graph.UniformlyLabeled(graph.Path(4), "")
	if _, err := ObliviousOutputsIdentical(l, 1); err == nil {
		t.Fatal("path should not be view-transitive")
	}
}
