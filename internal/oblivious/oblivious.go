// Package oblivious implements the identifier-elimination side of the paper:
//
//   - the generic Id-oblivious simulation A* of Section 1 ("Id-oblivious
//     simulation"), which witnesses LD* = LD under (¬B, ¬C): A* outputs no
//     on a view iff SOME local identifier assignment makes the original
//     algorithm output no;
//   - the OI (order-invariant) and PO (port-numbering + orientation) models
//     of Section 1.3, with the classical construction-task separations
//     (edge orientation and 2-colouring a 1-regular graph are trivial in
//     LOCAL yet impossible Id-obliviously).
package oblivious

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/local"
)

// Simulation builds the paper's A* from an ID-using algorithm: on a view V,
// it searches local identifier assignments Id' over the given value domain
// and outputs No iff some assignment makes the original algorithm reject.
//
// Under (¬B, ¬C) the search ranges over all of N and A* exactly decides the
// same property. A computable reproduction must fix a finite domain; this is
// precisely the gap the paper's Theorem 1 lives in. The domain is therefore
// explicit, and Exhaustive reports whether the search is complete for
// algorithms whose behaviour depends only on comparisons within the domain.
type Simulation struct {
	Alg local.Algorithm
	// Domain is the candidate identifier value set (must be large enough for
	// the views: at least as many values as view nodes).
	Domain []int
	// MaxAssignments caps the search; exceeding it panics rather than
	// silently accepting (no silent caps).
	MaxAssignments int
}

// NewSimulation constructs the simulation with a default assignment cap.
func NewSimulation(alg local.Algorithm, domain []int) *Simulation {
	return &Simulation{Alg: alg, Domain: domain, MaxAssignments: 1 << 22}
}

// Name implements local.ObliviousAlgorithm.
func (s *Simulation) Name() string {
	return fmt.Sprintf("A*(%s,|domain|=%d)", s.Alg.Name(), len(s.Domain))
}

// Horizon implements local.ObliviousAlgorithm.
func (s *Simulation) Horizon() int { return s.Alg.Horizon() }

// DecideOblivious implements local.ObliviousAlgorithm: reject iff some local
// assignment from the domain makes the underlying algorithm reject.
func (s *Simulation) DecideOblivious(view *graph.View) local.Verdict {
	n := view.N()
	if len(s.Domain) < n {
		panic(fmt.Sprintf("oblivious: domain of %d values for a %d-node view", len(s.Domain), n))
	}
	ids := make([]int, n)
	used := make([]bool, len(s.Domain))
	count := 0
	var rejectFound bool
	var rec func(i int)
	rec = func(i int) {
		if rejectFound {
			return
		}
		if i == n {
			count++
			if count > s.MaxAssignments {
				panic("oblivious: assignment search exceeded MaxAssignments")
			}
			withIDs := &graph.View{
				Labeled:  view.Labeled,
				Root:     view.Root,
				Radius:   view.Radius,
				IDs:      append([]int(nil), ids...),
				Original: view.Original,
			}
			if s.Alg.Decide(withIDs) == local.No {
				rejectFound = true
			}
			return
		}
		for d, val := range s.Domain {
			if used[d] {
				continue
			}
			used[d] = true
			ids[i] = val
			rec(i + 1)
			used[d] = false
			if rejectFound {
				return
			}
		}
	}
	rec(0)
	if rejectFound {
		return local.No
	}
	return local.Yes
}

var _ local.ObliviousAlgorithm = (*Simulation)(nil)

// OI model ----------------------------------------------------------------------

// OIAlgorithm is an order-invariant local algorithm: its verdict may depend
// on the RELATIVE ORDER of the identifiers in the view but not their values.
type OIAlgorithm interface {
	Name() string
	Horizon() int
	// DecideOI receives the view and the rank of each view node's
	// identifier (0 = smallest).
	DecideOI(view *graph.View, rank []int) local.Verdict
}

// OIFunc adapts a function to an OIAlgorithm.
func OIFunc(name string, horizon int, decide func(view *graph.View, rank []int) local.Verdict) OIAlgorithm {
	return funcOI{name: name, horizon: horizon, decide: decide}
}

type funcOI struct {
	name    string
	horizon int
	decide  func(view *graph.View, rank []int) local.Verdict
}

func (f funcOI) Name() string { return f.name }
func (f funcOI) Horizon() int { return f.horizon }
func (f funcOI) DecideOI(view *graph.View, rank []int) local.Verdict {
	return f.decide(view, rank)
}

// AsAlgorithm runs an OI algorithm in the full LOCAL model by computing the
// identifier ranks: OI is intermediate between Id-oblivious and LOCAL.
func AsAlgorithm(alg OIAlgorithm) local.Algorithm {
	return local.AlgorithmFunc(alg.Name()+"/oi", alg.Horizon(), func(view *graph.View) local.Verdict {
		return alg.DecideOI(view, Ranks(view.IDs))
	})
}

// Ranks converts identifier values to dense ranks (0 = smallest).
func Ranks(ids []int) []int {
	order := make([]int, len(ids))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ids[order[a]] < ids[order[b]] })
	rank := make([]int, len(ids))
	for r, i := range order {
		rank[i] = r
	}
	return rank
}

// CheckOrderInvariance verifies empirically that an ID-using algorithm is
// order-invariant on a labelled graph: its verdicts must agree across
// order-isomorphic assignments.
func CheckOrderInvariance(alg local.Algorithm, l *graph.Labeled, assignments [][]int) error {
	if len(assignments) < 2 {
		return fmt.Errorf("oblivious: need two assignments")
	}
	baseRank := Ranks(assignments[0])
	base := local.Run(alg, graph.NewInstance(l, assignments[0]))
	for k, ids := range assignments[1:] {
		r := Ranks(ids)
		same := true
		for i := range r {
			if r[i] != baseRank[i] {
				same = false
				break
			}
		}
		if !same {
			continue // only order-isomorphic assignments constrain OI
		}
		out := local.Run(alg, graph.NewInstance(l, ids))
		for v := range out.Verdicts {
			if out.Verdicts[v] != base.Verdicts[v] {
				return fmt.Errorf("oblivious: %s not order-invariant at node %d (assignment %d)", alg.Name(), v, k+1)
			}
		}
	}
	return nil
}

// Construction tasks (Section 1.3 separations) ------------------------------------

// OutputAlgorithm is a local CONSTRUCTION algorithm: each node emits a label
// rather than a verdict.
type OutputAlgorithm interface {
	Name() string
	Horizon() int
	Output(view *graph.View) string
}

// OutputFunc adapts a function.
func OutputFunc(name string, horizon int, out func(view *graph.View) string) OutputAlgorithm {
	return funcOutput{name: name, horizon: horizon, out: out}
}

type funcOutput struct {
	name    string
	horizon int
	out     func(view *graph.View) string
}

func (f funcOutput) Name() string                   { return f.name }
func (f funcOutput) Horizon() int                   { return f.horizon }
func (f funcOutput) Output(view *graph.View) string { return f.out(view) }

// RunOutputs evaluates a construction algorithm on every node.
func RunOutputs(alg OutputAlgorithm, in *graph.Instance) []string {
	out := make([]string, in.N())
	for v := 0; v < in.N(); v++ {
		out[v] = alg.Output(graph.ViewOf(in, v, alg.Horizon()))
	}
	return out
}

// OrientEdgesWithIDs is the LOCAL-model edge orientation task: each node
// reports, per incident edge, whether it is the edge's source — orient
// toward the larger identifier. Trivial with identifiers.
func OrientEdgesWithIDs() OutputAlgorithm {
	return OutputFunc("orient-by-id", 1, func(view *graph.View) string {
		dirs := ""
		for _, u := range view.G.Neighbors(view.Root) {
			if view.IDs[view.Root] > view.IDs[u] {
				dirs += ">"
			} else {
				dirs += "<"
			}
		}
		return dirs
	})
}

// ObliviousOutputsIdentical demonstrates the impossibility of Id-oblivious
// construction on transitive instances: on a uniformly labelled graph where
// all radius-t views share one canonical code, every Id-oblivious algorithm
// must emit the same output at every node. It returns that common view code
// or an error if views differ (in which case the argument does not apply).
func ObliviousOutputsIdentical(l *graph.Labeled, horizon int) (string, error) {
	set := graph.ObliviousViewSet(l, horizon)
	if len(set) != 1 {
		return "", fmt.Errorf("oblivious: %d distinct views; impossibility argument needs 1", len(set))
	}
	for code := range set {
		return code, nil
	}
	return "", fmt.Errorf("oblivious: empty graph")
}

// ValidOrientation checks that per-node incident-edge direction reports form
// a consistent antisymmetric orientation (every edge directed exactly one
// way). Outputs follow the format of OrientEdgesWithIDs: the i-th character
// of node v's output orients the edge to its i-th neighbour.
func ValidOrientation(l *graph.Labeled, outputs []string) error {
	for v := 0; v < l.N(); v++ {
		nbrs := l.G.Neighbors(v)
		if len(outputs[v]) != len(nbrs) {
			return fmt.Errorf("oblivious: node %d reports %d directions for %d edges", v, len(outputs[v]), len(nbrs))
		}
		for i, u := range nbrs {
			// Find v in u's neighbour list.
			j := -1
			for k, w := range l.G.Neighbors(int(u)) {
				if int(w) == v {
					j = k
				}
			}
			if j == -1 {
				return fmt.Errorf("oblivious: adjacency asymmetry")
			}
			if outputs[v][i] == outputs[u][j] {
				return fmt.Errorf("oblivious: edge {%d,%d} oriented both ways or neither", v, u)
			}
		}
	}
	return nil
}

// TwoColoringWithIDs 2-colours a 1-regular graph (a perfect matching): each
// node compares its identifier with its single neighbour's. Trivial in
// LOCAL, impossible Id-obliviously (both endpoints have identical views).
func TwoColoringWithIDs() OutputAlgorithm {
	return OutputFunc("2col-by-id", 1, func(view *graph.View) string {
		nbrs := view.G.Neighbors(view.Root)
		if len(nbrs) != 1 {
			return "invalid"
		}
		if view.IDs[view.Root] < view.IDs[nbrs[0]] {
			return "black"
		}
		return "white"
	})
}
