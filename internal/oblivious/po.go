package oblivious

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/graph"
	"repro/internal/local"
)

// This file implements the PO model of Section 1.3: no identifiers, but each
// node numbers its incident edges with ports 1..deg, and every edge carries
// an orientation. PO retains some symmetry-breaking information — enough for
// tasks like reading off an edge orientation — but strictly less than
// identifiers: a t-round PO algorithm sees only the depth-t unfolding
// (universal cover) of the port-numbered oriented graph, so instances with
// a common cover are indistinguishable.

// PortNumbering equips a graph with ports and edge orientations.
type PortNumbering struct {
	// ports[v][i] is the neighbour of v reached through port i (0-based).
	ports [][]int
	// portBack[v][i] is the port at that neighbour leading back to v.
	portBack [][]int
	// outward[v][i] reports whether the edge at port i is oriented away
	// from v.
	outward [][]bool
}

// NewPortNumbering builds the canonical port numbering of a graph: ports
// follow the sorted adjacency lists, and each edge {u, v} is oriented from
// min to max index. (Index order is a construction device only; PO
// algorithms never see indices.)
func NewPortNumbering(g *graph.Graph) *PortNumbering {
	n := g.N()
	pn := &PortNumbering{
		ports:    make([][]int, n),
		portBack: make([][]int, n),
		outward:  make([][]bool, n),
	}
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		pn.ports[v] = make([]int, len(nbrs))
		pn.portBack[v] = make([]int, len(nbrs))
		pn.outward[v] = make([]bool, len(nbrs))
		for i, u := range nbrs {
			pn.ports[v][i] = int(u)
			pn.outward[v][i] = v < int(u)
			back := g.Neighbors(int(u))
			for j, w := range back {
				if int(w) == v {
					pn.portBack[v][i] = j
				}
			}
		}
	}
	return pn
}

// ShufflePorts permutes every node's port order pseudo-randomly (a PO
// algorithm must work for every port numbering).
func (pn *PortNumbering) ShufflePorts(seed int64) *PortNumbering {
	rng := rand.New(rand.NewSource(seed))
	n := len(pn.ports)
	out := &PortNumbering{
		ports:    make([][]int, n),
		portBack: make([][]int, n),
		outward:  make([][]bool, n),
	}
	// First pick the permutations.
	perms := make([][]int, n)
	for v := range perms {
		perms[v] = rng.Perm(len(pn.ports[v]))
	}
	for v := 0; v < n; v++ {
		deg := len(pn.ports[v])
		out.ports[v] = make([]int, deg)
		out.portBack[v] = make([]int, deg)
		out.outward[v] = make([]bool, deg)
		for i := 0; i < deg; i++ {
			src := perms[v][i]
			u := pn.ports[v][src]
			out.ports[v][i] = u
			out.outward[v][i] = pn.outward[v][src]
			// The back-port index must be u's NEW index for the edge.
			oldBack := pn.portBack[v][src]
			newBack := 0
			for j, p := range perms[u] {
				if p == oldBack {
					newBack = j
				}
			}
			out.portBack[v][i] = newBack
		}
	}
	return out
}

// ReverseOrientations flips every edge orientation.
func (pn *PortNumbering) ReverseOrientations() *PortNumbering {
	n := len(pn.ports)
	out := &PortNumbering{
		ports:    pn.ports,
		portBack: pn.portBack,
		outward:  make([][]bool, n),
	}
	for v := 0; v < n; v++ {
		out.outward[v] = make([]bool, len(pn.outward[v]))
		for i, o := range pn.outward[v] {
			out.outward[v][i] = !o
		}
	}
	return out
}

// ConsistentCycleOrientation returns a port numbering of a cycle where every
// node has its successor on port 0, oriented outward — the fully symmetric
// configuration under which all PO views coincide.
func ConsistentCycleOrientation(n int) (*graph.Graph, *PortNumbering) {
	if n < 3 {
		panic("oblivious: cycle needs n >= 3")
	}
	g := graph.Cycle(n)
	pn := &PortNumbering{
		ports:    make([][]int, n),
		portBack: make([][]int, n),
		outward:  make([][]bool, n),
	}
	for v := 0; v < n; v++ {
		next := (v + 1) % n
		prev := (v - 1 + n) % n
		pn.ports[v] = []int{next, prev}
		pn.portBack[v] = []int{1, 0} // at next, we are its port-1 (prev) side
		pn.outward[v] = []bool{true, false}
	}
	return g, pn
}

// POTree is the depth-t view of a PO algorithm: the unfolded (universal
// cover) neighbourhood. Each child is reached through a port and carries the
// far-end port and the orientation as seen from the parent.
type POTree struct {
	Label graph.Label
	// Children[i] corresponds to port i.
	Children []*POChild
}

// POChild is one port of a POTree node.
type POChild struct {
	// Outward reports whether the edge is oriented away from the parent.
	Outward bool
	// BackPort is the port number at the far end leading back.
	BackPort int
	// Subtree is nil at the view's depth limit.
	Subtree *POTree
}

// BuildPOView unfolds the depth-t PO view of node v. Unlike graph.ViewOf,
// the unfolding does NOT identify revisited nodes: anonymous message passing
// cannot detect cycles, which is exactly the PO model's weakness.
func BuildPOView(l *graph.Labeled, pn *PortNumbering, v, t int) *POTree {
	return unfold(l, pn, v, -1, t)
}

// unfold expands the view; cameFrom is the port index AT v through which we
// arrived (-1 at the root), excluded from re-expansion to avoid immediate
// backtracking (standard universal-cover convention keeps the back edge as
// a child but does not walk back through it; we keep all ports as children
// and only stop at depth 0).
func unfold(l *graph.Labeled, pn *PortNumbering, v, cameFrom, depth int) *POTree {
	node := &POTree{Label: l.Labels[v], Children: make([]*POChild, len(pn.ports[v]))}
	for i, u := range pn.ports[v] {
		child := &POChild{Outward: pn.outward[v][i], BackPort: pn.portBack[v][i]}
		if depth > 0 {
			child.Subtree = unfold(l, pn, u, pn.portBack[v][i], depth-1)
		}
		node.Children[i] = child
	}
	_ = cameFrom
	return node
}

// Encode serialises a POTree deterministically: equal encodings mean the PO
// algorithm receives identical inputs.
func (t *POTree) Encode() string {
	var b strings.Builder
	t.encode(&b)
	return b.String()
}

func (t *POTree) encode(b *strings.Builder) {
	fmt.Fprintf(b, "[%q", t.Label)
	for _, c := range t.Children {
		fmt.Fprintf(b, "(o=%v,bp=%d", c.Outward, c.BackPort)
		if c.Subtree != nil {
			c.Subtree.encode(b)
		}
		b.WriteByte(')')
	}
	b.WriteByte(']')
}

// POAlgorithm is a local algorithm in the PO model.
type POAlgorithm interface {
	Name() string
	Horizon() int
	DecidePO(view *POTree) local.Verdict
}

// POFunc adapts a function to a POAlgorithm.
func POFunc(name string, horizon int, decide func(view *POTree) local.Verdict) POAlgorithm {
	return funcPO{name: name, horizon: horizon, decide: decide}
}

type funcPO struct {
	name    string
	horizon int
	decide  func(view *POTree) local.Verdict
}

func (f funcPO) Name() string                        { return f.name }
func (f funcPO) Horizon() int                        { return f.horizon }
func (f funcPO) DecidePO(view *POTree) local.Verdict { return f.decide(view) }

// RunPO evaluates a PO algorithm on every node.
func RunPO(alg POAlgorithm, l *graph.Labeled, pn *PortNumbering) local.Outcome {
	verdicts := make([]local.Verdict, l.N())
	accepted := true
	for v := 0; v < l.N(); v++ {
		verdicts[v] = alg.DecidePO(BuildPOView(l, pn, v, alg.Horizon()))
		if verdicts[v] == local.No {
			accepted = false
		}
	}
	return local.Outcome{Verdicts: verdicts, Accepted: accepted}
}

// POOutputAlgorithm is a PO construction algorithm.
type POOutputAlgorithm interface {
	Name() string
	Horizon() int
	OutputPO(view *POTree) string
}

// POOutputFunc adapts a function.
func POOutputFunc(name string, horizon int, out func(view *POTree) string) POOutputAlgorithm {
	return funcPOOutput{name: name, horizon: horizon, out: out}
}

type funcPOOutput struct {
	name    string
	horizon int
	out     func(view *POTree) string
}

func (f funcPOOutput) Name() string                 { return f.name }
func (f funcPOOutput) Horizon() int                 { return f.horizon }
func (f funcPOOutput) OutputPO(view *POTree) string { return f.out(view) }

// RunPOOutputs evaluates a PO construction algorithm on every node.
func RunPOOutputs(alg POOutputAlgorithm, l *graph.Labeled, pn *PortNumbering) []string {
	out := make([]string, l.N())
	for v := 0; v < l.N(); v++ {
		out[v] = alg.OutputPO(BuildPOView(l, pn, v, alg.Horizon()))
	}
	return out
}

// OrientEdgesPO solves the edge-orientation task in the PO model by reading
// the given orientation — the task that is impossible Id-obliviously
// (Section 1.3's first example) becomes trivial with PO.
func OrientEdgesPO() POOutputAlgorithm {
	return POOutputFunc("orient-by-po", 0, func(view *POTree) string {
		dirs := make([]byte, len(view.Children))
		for i, c := range view.Children {
			if c.Outward {
				dirs[i] = '>'
			} else {
				dirs[i] = '<'
			}
		}
		return string(dirs)
	})
}

// TwoColoringPO 2-colours a 1-regular graph in the PO model: the edge
// orientation breaks the tie that defeats Id-oblivious algorithms.
func TwoColoringPO() POOutputAlgorithm {
	return POOutputFunc("2col-by-po", 0, func(view *POTree) string {
		if len(view.Children) != 1 {
			return "invalid"
		}
		if view.Children[0].Outward {
			return "black"
		}
		return "white"
	})
}

// POViewsAllEqual reports whether every node of the instance has the same
// PO view at the given horizon (the symmetric situation in which no PO
// algorithm can break ties or count).
func POViewsAllEqual(l *graph.Labeled, pn *PortNumbering, horizon int) bool {
	if l.N() == 0 {
		return true
	}
	first := BuildPOView(l, pn, 0, horizon).Encode()
	for v := 1; v < l.N(); v++ {
		if BuildPOView(l, pn, v, horizon).Encode() != first {
			return false
		}
	}
	return true
}

// PortOrder returns the ports of a node as the neighbour indices, for tests.
func (pn *PortNumbering) PortOrder(v int) []int {
	return append([]int(nil), pn.ports[v]...)
}

// Degree returns the number of ports at v.
func (pn *PortNumbering) Degree(v int) int { return len(pn.ports[v]) }

// CheckConsistent validates internal invariants: port/back-port symmetry and
// antisymmetric orientations.
func (pn *PortNumbering) CheckConsistent() error {
	for v := range pn.ports {
		if len(pn.ports[v]) != len(pn.portBack[v]) || len(pn.ports[v]) != len(pn.outward[v]) {
			return fmt.Errorf("oblivious: ragged port tables at node %d", v)
		}
		seen := map[int]struct{}{}
		for i, u := range pn.ports[v] {
			if _, dup := seen[u]; dup {
				return fmt.Errorf("oblivious: node %d lists neighbour %d twice", v, u)
			}
			seen[u] = struct{}{}
			back := pn.portBack[v][i]
			if back < 0 || back >= len(pn.ports[u]) || pn.ports[u][back] != v {
				return fmt.Errorf("oblivious: back port broken on edge {%d,%d}", v, u)
			}
			if pn.outward[v][i] == pn.outward[u][back] {
				return fmt.Errorf("oblivious: edge {%d,%d} oriented both ways or neither", v, u)
			}
		}
	}
	return nil
}

// sortedPorts is a test helper: the neighbours in port order, sorted.
func (pn *PortNumbering) sortedPorts(v int) []int {
	out := append([]int(nil), pn.ports[v]...)
	sort.Ints(out)
	return out
}
