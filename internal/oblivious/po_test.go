package oblivious

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
)

func TestNewPortNumberingConsistent(t *testing.T) {
	for name, g := range map[string]*graph.Graph{
		"cycle":  graph.Cycle(6),
		"star":   graph.Star(5),
		"grid":   graph.Grid(3, 3),
		"random": graph.Random(12, 0.3, 1),
	} {
		pn := NewPortNumbering(g)
		if err := pn.CheckConsistent(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		for v := 0; v < g.N(); v++ {
			if pn.Degree(v) != g.Degree(v) {
				t.Errorf("%s: node %d has %d ports for degree %d", name, v, pn.Degree(v), g.Degree(v))
			}
		}
	}
}

func TestShufflePortsStaysConsistent(t *testing.T) {
	g := graph.Random(10, 0.4, 2)
	pn := NewPortNumbering(g)
	for seed := int64(0); seed < 5; seed++ {
		sh := pn.ShufflePorts(seed)
		if err := sh.CheckConsistent(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// Same neighbour sets, possibly different order.
		for v := 0; v < g.N(); v++ {
			a, b := pn.sortedPorts(v), sh.sortedPorts(v)
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("seed %d: node %d neighbour set changed", seed, v)
				}
			}
		}
	}
}

func TestReverseOrientations(t *testing.T) {
	g := graph.Cycle(5)
	pn := NewPortNumbering(g)
	rev := pn.ReverseOrientations()
	if err := rev.CheckConsistent(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		for i := range pn.outward[v] {
			if pn.outward[v][i] == rev.outward[v][i] {
				t.Fatal("orientation not flipped")
			}
		}
	}
}

func TestPOViewEncodeDistinguishesOrientation(t *testing.T) {
	g := graph.Path(2)
	l := graph.UniformlyLabeled(g, "x")
	pn := NewPortNumbering(g)
	a := BuildPOView(l, pn, 0, 1).Encode()
	b := BuildPOView(l, pn, 1, 1).Encode()
	// Node 0 sees an outward edge, node 1 an inward edge.
	if a == b {
		t.Fatal("orientation should distinguish the endpoints")
	}
}

func TestPOUnfoldingIgnoresCycles(t *testing.T) {
	// A triangle and a long path have the same depth-1 PO unfolding shape
	// when ports/orientations line up: the unfolding is a TREE, so cycles
	// are invisible. Here we check unfolding depth: a depth-2 view of a
	// triangle keeps expanding (revisiting nodes without noticing).
	g := graph.Cycle(3)
	l := graph.UniformlyLabeled(g, "c")
	pn := NewPortNumbering(g)
	view := BuildPOView(l, pn, 0, 2)
	// Root has 2 children; each child has 2 children (one of which unfolds
	// back towards the root as a fresh tree node).
	if len(view.Children) != 2 {
		t.Fatalf("root children = %d", len(view.Children))
	}
	for _, c := range view.Children {
		if c.Subtree == nil || len(c.Subtree.Children) != 2 {
			t.Fatal("depth-2 unfolding truncated early")
		}
	}
}

func TestOrientEdgesPO(t *testing.T) {
	g := graph.Cycle(6)
	l := graph.UniformlyLabeled(g, "")
	pn := NewPortNumbering(g)
	outputs := RunPOOutputs(OrientEdgesPO(), l, pn)
	// Convert to the ValidOrientation format: outputs follow port order,
	// which NewPortNumbering aligns with sorted adjacency = Neighbors order.
	if err := ValidOrientation(l, outputs); err != nil {
		t.Fatalf("PO orientation invalid: %v", err)
	}
}

func TestTwoColoringPO(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1)
	g.AddEdge(2, 3)
	l := graph.UniformlyLabeled(g, "")
	pn := NewPortNumbering(g)
	outputs := RunPOOutputs(TwoColoringPO(), l, pn)
	if outputs[0] == outputs[1] || outputs[2] == outputs[3] {
		t.Fatalf("PO 2-colouring failed: %v", outputs)
	}
	star := graph.UniformlyLabeled(graph.Star(3), "")
	bad := RunPOOutputs(TwoColoringPO(), star, NewPortNumbering(star.G))
	if bad[0] != "invalid" {
		t.Error("non-1-regular node should be invalid")
	}
}

func TestConsistentCycleSymmetry(t *testing.T) {
	// Under the consistent orientation all PO views coincide — for cycles of
	// ANY length, so PO cannot separate the promise-problem cycle pair.
	for _, n := range []int{5, 8, 13} {
		g, pn := ConsistentCycleOrientation(n)
		if err := pn.CheckConsistent(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		l := graph.UniformlyLabeled(g, "c")
		if !POViewsAllEqual(l, pn, 2) {
			t.Fatalf("n=%d: consistent cycle views differ", n)
		}
	}
	// Across lengths: the views are the SAME string, so a PO decider treats
	// C5 and C13 alike.
	g5, pn5 := ConsistentCycleOrientation(5)
	g13, pn13 := ConsistentCycleOrientation(13)
	v5 := BuildPOView(graph.UniformlyLabeled(g5, "c"), pn5, 0, 2).Encode()
	v13 := BuildPOView(graph.UniformlyLabeled(g13, "c"), pn13, 0, 2).Encode()
	if v5 != v13 {
		t.Fatal("consistent cycles of different lengths should have equal PO views")
	}
}

func TestRunPODecision(t *testing.T) {
	// A PO decider: accept iff I have an outgoing edge (every node of a
	// consistently oriented cycle does; sinks of other orientations do not).
	hasOut := POFunc("has-outgoing", 0, func(view *POTree) local.Verdict {
		for _, c := range view.Children {
			if c.Outward {
				return local.Yes
			}
		}
		return local.No
	})
	g, pn := ConsistentCycleOrientation(6)
	l := graph.UniformlyLabeled(g, "")
	if out := RunPO(hasOut, l, pn); !out.Accepted {
		t.Fatal("consistent cycle has no sink")
	}
	// The min-to-max orientation of a path has a sink at the last node.
	path := graph.UniformlyLabeled(graph.Path(4), "")
	if out := RunPO(hasOut, path, NewPortNumbering(path.G)); out.Accepted {
		t.Fatal("path under min->max orientation has a sink")
	}
}

func TestPOAlgorithmMustSurvivePortShuffles(t *testing.T) {
	// A decider that depends on port ORDER (accept iff port 0 is outward) is
	// not a legitimate PO algorithm: shuffling ports changes its verdicts.
	fragile := POFunc("port0-out", 0, func(view *POTree) local.Verdict {
		return local.Verdict(len(view.Children) > 0 && view.Children[0].Outward)
	})
	g := graph.Cycle(6)
	l := graph.UniformlyLabeled(g, "")
	pn := NewPortNumbering(g)
	base := RunPO(fragile, l, pn)
	changed := false
	for seed := int64(0); seed < 10 && !changed; seed++ {
		out := RunPO(fragile, l, pn.ShufflePorts(seed))
		for v := range out.Verdicts {
			if out.Verdicts[v] != base.Verdicts[v] {
				changed = true
			}
		}
	}
	if !changed {
		t.Fatal("port shuffling never changed the fragile decider; test ineffective")
	}
}

func TestConsistentCyclePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ConsistentCycleOrientation(2)
}
