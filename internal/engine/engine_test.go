package engine

import (
	"errors"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

func degreeAtMost(k int) Decider {
	return Decider{
		Name:    "deg<=k",
		Horizon: 1,
		Decide: func(view *graph.View) Verdict {
			return Verdict(view.G.Degree(view.Root) <= k)
		},
	}
}

// An instance with no nodes is an explicit error on every scheduler: the
// seed-era vacuous accept made "we decided nothing" indistinguishable from
// "every node said yes".
func TestEmptyGraphIsAnError(t *testing.T) {
	l := graph.UniformlyLabeled(graph.New(0), "")
	for _, sched := range []Scheduler{Sequential, Sharded, MessagePassing} {
		out := EvalOblivious(degreeAtMost(0), l, Options{Scheduler: sched})
		if out.Accepted {
			t.Errorf("%s: empty graph must not read as accepted", sched.Name())
		}
		if !errors.Is(out.Err, ErrEmptyInstance) {
			t.Errorf("%s: Err = %v, want ErrEmptyInstance", sched.Name(), out.Err)
		}
	}
}

func TestDedupOnCycle(t *testing.T) {
	// Every node of a uniformly labelled cycle has the same radius-2 view:
	// one decide call, n-1 cache hits.
	l := graph.UniformlyLabeled(graph.Cycle(200), "c")
	var calls atomic.Int64
	dec := Decider{Name: "count", Horizon: 2, Decide: func(view *graph.View) Verdict {
		calls.Add(1)
		return Yes
	}}
	out := EvalOblivious(dec, l, Options{Dedup: true})
	if !out.Accepted {
		t.Fatal("uniform cycle should accept")
	}
	if calls.Load() != 1 {
		t.Errorf("decider called %d times, want 1 (dedup)", calls.Load())
	}
	if out.Stats.DedupHits != 199 || out.Stats.DistinctViews != 1 {
		t.Errorf("stats = %+v, want 199 hits over 1 distinct view", out.Stats)
	}
}

func TestDedupSkippedWhenUnsound(t *testing.T) {
	// Identifier-carrying evaluation: dedup must be silently disabled.
	l := graph.UniformlyLabeled(graph.Cycle(8), "c")
	ids := []int{3, 1, 4, 15, 9, 2, 6, 5}
	var calls atomic.Int64
	dec := Decider{Name: "count", Horizon: 1, UsesIDs: true, Decide: func(view *graph.View) Verdict {
		calls.Add(1)
		return Yes
	}}
	out := Eval(dec, graph.NewInstance(l, ids), Options{Dedup: true})
	if calls.Load() != 8 || out.Stats.DedupHits != 0 {
		t.Errorf("calls=%d hits=%d: dedup must not apply to ID-carrying views", calls.Load(), out.Stats.DedupHits)
	}
}

func TestEarlyExitStopsEvaluation(t *testing.T) {
	// A single-reject instance with early exit: sequential evaluation must
	// stop at the rejecting node.
	l := graph.UniformlyLabeled(graph.Path(100), "")
	dec := Decider{Name: "reject-root-5", Horizon: 0, Decide: func(view *graph.View) Verdict {
		return Verdict(view.Original[view.Root] != 5)
	}}
	out := EvalOblivious(dec, l, Options{EarlyExit: true})
	if out.Accepted {
		t.Fatal("instance must be rejected")
	}
	if out.Verdicts != nil {
		t.Error("early-exit outcomes carry no per-node verdicts")
	}
	if !out.Stats.EarlyExit {
		t.Error("stats should record the early exit")
	}
	if out.Stats.Evaluated != 6 {
		t.Errorf("evaluated %d nodes, want 6 (stop at first reject)", out.Stats.Evaluated)
	}
}

func TestShardedWithCapsWorkers(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(500), "c")
	out := EvalOblivious(degreeAtMost(2), l, Options{Scheduler: ShardedWith(3)})
	if !out.Accepted {
		t.Fatal("cycle is 2-regular")
	}
	if out.Stats.Workers != 3 {
		t.Errorf("workers = %d, want 3", out.Stats.Workers)
	}
	// Tiny instance: the pool must collapse to inline evaluation.
	small := graph.UniformlyLabeled(graph.Cycle(5), "c")
	out = EvalOblivious(degreeAtMost(2), small, Options{Scheduler: Sharded})
	if out.Stats.Workers != 1 {
		t.Errorf("workers = %d on n=5, want 1 (no idle goroutines)", out.Stats.Workers)
	}
}

func TestRandomizedSeedDeterminism(t *testing.T) {
	// Coin streams are a function of (seed, node) only, so repeated runs and
	// different schedulers agree verdict for verdict.
	l := graph.RandomLabels(graph.Random(80, 0.1, 1), []graph.Label{"a", "b"}, 2)
	dec := Decider{Name: "coin", Horizon: 1, DecideRand: func(view *graph.View, rng *rand.Rand) Verdict {
		return Verdict(rng.Intn(4) != 0)
	}}
	a := EvalOblivious(dec, l, Options{Seed: 7})
	b := EvalOblivious(dec, l, Options{Seed: 7, Scheduler: ShardedWith(4)})
	c := EvalOblivious(dec, l, Options{Seed: 8})
	for v := range a.Verdicts {
		if a.Verdicts[v] != b.Verdicts[v] {
			t.Fatalf("node %d: scheduler changed a coin verdict", v)
		}
	}
	diff := false
	for v := range a.Verdicts {
		if a.Verdicts[v] != c.Verdicts[v] {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds should (overwhelmingly) change some verdict")
	}
}

// Malformed deciders come back as Outcome.Err, not a panic; the panicking
// behaviour survives only in MustEvalOblivious/MustEval.
func TestDeciderValidation(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Path(3), "")
	for _, dec := range []Decider{
		{Name: "neither", Horizon: 1},
		{Name: "both", Horizon: 1,
			Decide:     func(view *graph.View) Verdict { return Yes },
			DecideRand: func(view *graph.View, rng *rand.Rand) Verdict { return Yes }},
	} {
		out := EvalOblivious(dec, l, Options{})
		if out.Err == nil || out.Accepted {
			t.Errorf("%s: Outcome = %+v, want validation error", dec.Name, out)
		}
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: MustEvalOblivious expected panic", dec.Name)
				}
			}()
			MustEvalOblivious(dec, l, Options{})
		}()
	}
}
