package engine

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file is the sharded message-passing runtime: the host graph is
// partitioned into p shards (graph.Partition), each shard runs as one worker
// owning its slice of the instance — its nodes' CSR rows, its own
// ViewExtractor arena, and (through the fingerprint striping of the shared
// ViewCache) its working set of the 64 cache stripes — and the only data
// that ever crosses a shard boundary is the halo: the depth-t boundary ball
// each shard needs to complete the radius-t views of its rim nodes.
//
// The exchange is round-structured like the flooding protocol, but with no
// transitive dependency: the ghost nodes a shard imports are owned by the
// sender, so ring r of a link (the ghosts at boundary distance exactly r)
// can be scheduled before the protocol starts. Because consecutive rounds'
// halos overlap totally (B(boundary, r) ⊇ B(boundary, r-1)), each round
// ships only the new ring, delta-encoded: gap-coded node ids, labels
// back-referenced against a per-link dictionary persisted across rounds,
// and adjacency rows gap-coded from the node id. Sent bytes and ghost-node
// counts are tallied per round into Stats — the shard-boundary
// communication cost the related-work communication games measure.
//
// Soundness of local evaluation (DESIGN.md §9): for an owned node v, every
// node of B(v, t) lies in owned(s) ∪ ghost(s), every node BFS expands
// (depth < t from v) has its full row available locally, and the
// owned+ghost set is renumbered monotonically — so the extractor, rebound
// to the local sub-host, discovers the exact same view, byte for byte, as
// it would on the full host. Verdicts are therefore bit-identical to the
// sequential scheduler, which the parity suite pins across shard counts.
//
// Fault injection applies per shard-pair link: Injector.MessageFate is
// consulted at sites (round, fromShard, toShard) — a pure function of the
// seed, so the schedule stays replayable on any machine. A lost ring (drop,
// or delay past the last round) degrades the receiving shard: its rim nodes
// fall back to extractor evaluation on the full host (degraded, never
// wrong); interior nodes, whose balls never leave the shard, still evaluate
// locally.

// ShardedMP evaluates on a partition-based worker pool: p shards exchanging
// delta-encoded halo (ghost-node) rings over per-shard-pair channels, then
// deciding their owned nodes on shard-local extractors. p defaults to
// GOMAXPROCS; partitioning defaults to BFS-blocked.
var ShardedMP Scheduler = shardedMPScheduler{}

// ShardedMPWith returns a ShardedMP scheduler with an explicit shard count
// (still capped at n).
func ShardedMPWith(shards int) Scheduler {
	if shards < 1 {
		panic("engine: shard count must be positive")
	}
	return shardedMPScheduler{shards: shards}
}

// ShardedMPPartitioned returns a ShardedMP scheduler with an explicit shard
// count and partition strategy — level-contiguous for the level-ordered
// families (pyramids, layered trees), BFS-blocked otherwise.
func ShardedMPPartitioned(shards int, strategy graph.PartitionStrategy) Scheduler {
	if shards < 1 {
		panic("engine: shard count must be positive")
	}
	return shardedMPScheduler{shards: shards, strategy: strategy}
}

type shardedMPScheduler struct {
	shards   int // 0 = GOMAXPROCS
	strategy graph.PartitionStrategy
}

func (shardedMPScheduler) Name() string { return "sharded-mp" }

// haloRing is one link's round-r payload schedule: the sender-owned ghost
// nodes at boundary distance exactly r+1 from the receiver's owned set
// (ring index r is the 0-based protocol round it ships in).
type haloRing struct {
	round int
	nodes []int32
}

// haloSend is a scheduled transmission after fate resolution.
type haloSend struct {
	ring   haloRing
	copies int // 1 + duplicates
}

// haloMsg is one transmitted copy on a link channel.
type haloMsg struct {
	round   int
	payload []byte
}

// haloLink is one ordered shard pair's exchange plan. Both endpoints read
// it; it is immutable once planned.
type haloLink struct {
	from, to int
	rings    []haloRing // scheduled rings, ascending round
	sends    []haloSend // rings that will actually be transmitted, ascending round
	expect   int        // total copies the receiver must drain
	lost     bool       // some scheduled ring never arrives: receiver degrades
	ch       chan haloMsg
}

func (s shardedMPScheduler) run(j *job) bool {
	if j.checkCanceled() {
		return false
	}
	t := j.dec.Horizon
	p := s.shards
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	part := graph.NewPartition(j.l.G, p, s.strategy)
	p = part.Shards()
	j.stats.Rounds = t
	j.stats.Workers = p
	j.stats.Shards = p

	// Plan phase: boundary balls, ring schedules, fates. Halo reuses the
	// partition's traversal scratch, so this stays single-threaded.
	rims := make([][]int32, p)          // owned nodes whose ball can leave the shard
	ringNodes := make([][][][]int32, p) // [from][to][round] ghost nodes
	for to := 0; to < p; to++ {
		nodes, depth := part.Halo(to, t)
		for i, v := range nodes {
			owner := part.ShardOf(int(v))
			if owner == to {
				if int(depth[i]) <= t-1 {
					rims[to] = append(rims[to], v)
				}
				continue
			}
			if ringNodes[owner] == nil {
				ringNodes[owner] = make([][][]int32, p)
			}
			if ringNodes[owner][to] == nil {
				ringNodes[owner][to] = make([][]int32, t)
			}
			r := int(depth[i]) - 1 // ghosts have depth >= 1
			ringNodes[owner][to][r] = append(ringNodes[owner][to][r], v)
		}
	}
	inLinks := make([][]*haloLink, p)
	outLinks := make([][]*haloLink, p)
	degraded := make([]bool, p)
	for from := 0; from < p; from++ {
		if ringNodes[from] == nil {
			continue
		}
		for to := 0; to < p; to++ {
			var rings []haloRing
			for r, nodes := range ringNodes[from][to] {
				if len(nodes) > 0 {
					rings = append(rings, haloRing{round: r, nodes: nodes})
				}
			}
			if len(rings) == 0 {
				continue
			}
			l := &haloLink{from: from, to: to, rings: rings}
			for _, ring := range rings {
				fate := j.messageFate(ring.round, from, to)
				if fate.Attempts > 1 {
					j.stats.Retransmits += fate.Attempts - 1
				}
				if !fate.Delivered {
					j.stats.Dropped++
					l.lost = true
					continue
				}
				if fate.Delay > 0 {
					j.stats.Delayed++
					if ring.round+fate.Delay >= t {
						// Arrives after the protocol's last round: lost.
						l.lost = true
						continue
					}
				}
				j.stats.Duplicated += fate.Duplicates
				l.sends = append(l.sends, haloSend{ring: ring, copies: 1 + fate.Duplicates})
				l.expect += 1 + fate.Duplicates
			}
			l.ch = make(chan haloMsg, l.expect)
			outLinks[from] = append(outLinks[from], l)
			inLinks[to] = append(inLinks[to], l)
			if l.lost {
				degraded[to] = true
			}
		}
	}
	withIDs := j.in != nil

	var (
		rejected   atomic.Bool
		statsMu    sync.Mutex
		wg         sync.WaitGroup
		inserted   int
		fallbackMu sync.Mutex
		fallbackX  fallbackExtractor
	)
	roundBytes := make([]int, t)
	roundGhosts := make([]int, t)
	wg.Add(p)
	for sh := 0; sh < p; sh++ {
		go func(sh int) {
			defer wg.Done()
			sent, units, ghostsIn, bytesOut := 0, 0, 0, 0
			localRoundBytes := make([]int, t)
			localRoundGhosts := make([]int, t)

			// Send loop: per round, encode and transmit this shard's due
			// rings. Channels are buffered for every copy a link can carry,
			// so sends never block and the rounds need no barrier — halo data
			// is never relayed, so there is no transitive dependency between
			// rounds.
			encDicts := make([]map[graph.Label]int, len(outLinks[sh]))
			for i := range encDicts {
				encDicts[i] = make(map[graph.Label]int)
			}
			for round := 0; round < t; round++ {
				for li, l := range outLinks[sh] {
					for _, snd := range l.sends {
						if snd.ring.round != round {
							continue
						}
						payload := encodeHaloRing(j, encDicts[li], snd.ring, withIDs)
						for c := 0; c < snd.copies; c++ {
							l.ch <- haloMsg{round: round, payload: payload}
							sent++
							units += len(snd.ring.nodes)
							bytesOut += len(payload)
							localRoundBytes[round] += len(payload)
						}
					}
				}
			}

			// Drain and decode. Unique rings decode in ascending-round order
			// per link, which is exactly the order the sender grew its label
			// dictionary in, so the per-link dictionaries stay in sync; lost
			// rings were never encoded and cannot desynchronise them.
			var ghosts []ghostRec
			for _, l := range inLinks[sh] {
				byRound := make(map[int][]byte, len(l.sends))
				for got := 0; got < l.expect; got++ {
					m := <-l.ch
					if _, dup := byRound[m.round]; !dup {
						byRound[m.round] = m.payload
					}
				}
				var dict []graph.Label
				for _, snd := range l.sends {
					payload, ok := byRound[snd.ring.round]
					if !ok {
						panic("engine: sharded-mp link drained but ring missing")
					}
					before := len(ghosts)
					ghosts, dict = decodeHaloRing(payload, dict, withIDs, ghosts)
					ghostsIn += len(ghosts) - before
					localRoundGhosts[snd.ring.round] += len(ghosts) - before
				}
			}

			// Assemble the shard-local sub-host: owned nodes plus imported
			// ghosts, monotone-renumbered, rows filtered to the local set.
			own := part.Owned(sh)
			sort.Slice(ghosts, func(i, k int) bool { return ghosts[i].node < ghosts[k].node })
			ext := make([]int32, 0, len(own)+len(ghosts))
			gi := 0
			for _, v := range own {
				for gi < len(ghosts) && ghosts[gi].node < v {
					ext = append(ext, ghosts[gi].node)
					gi++
				}
				ext = append(ext, v)
			}
			for ; gi < len(ghosts); gi++ {
				ext = append(ext, ghosts[gi].node)
			}
			local := buildLocalHost(j, ext, ghosts, withIDs)
			var x *graph.ViewExtractor
			if withIDs {
				x = graph.NewInstanceViewExtractor(local.instance)
			} else {
				x = graph.NewViewExtractor(local.labeled)
			}

			// Decide owned nodes in ascending host order. Degraded shards
			// route their rim nodes through the shared full-host fallback
			// extractor; interior balls never leave the shard and stay local.
			evaluated, hits, ins, crashes, retries, incomplete := 0, 0, 0, 0, 0, 0
			rim := rims[sh]
			for _, v32 := range own {
				v := int(v32)
				if j.opts.EarlyExit && rejected.Load() {
					break
				}
				if j.checkCanceled() {
					break
				}
				var verdict Verdict
				var ok bool
				if degraded[sh] && containsInt32(rim, v32) {
					incomplete++
					verdict, ok = j.guardedVerdict(v, &crashes, &retries, func() Verdict {
						return fallbackX.decide(j, &fallbackMu, v)
					})
				} else {
					li, found := lookupKnown(ext, v32)
					if !found {
						panic("engine: sharded-mp owned node missing from local host")
					}
					verdict, ok = j.guardedVerdict(v, &crashes, &retries, func() Verdict {
						view := x.At(li, t)
						// Rebind Original from local-host indices to host
						// addresses (in place — extractor scratch).
						for i, w := range view.Original {
							view.Original[i] = int(ext[w])
						}
						return cachedVerdict(j, view, v, &evaluated, &hits, &ins)
					})
				}
				if !ok {
					continue // recorded in j.errs; not a reject
				}
				if j.verdicts != nil {
					j.verdicts[v] = verdict
				}
				if verdict == No {
					rejected.Store(true)
				}
			}

			statsMu.Lock()
			j.stats.Messages += sent
			j.stats.KnowledgeUnits += units
			j.stats.GhostNodes += ghostsIn
			j.stats.HaloBytes += bytesOut
			j.stats.Evaluated += evaluated
			j.stats.DedupHits += hits
			j.stats.Crashes += crashes
			j.stats.Retries += retries
			j.stats.IncompleteViews += incomplete
			inserted += ins
			for r := 0; r < t; r++ {
				roundBytes[r] += localRoundBytes[r]
				roundGhosts[r] += localRoundGhosts[r]
			}
			statsMu.Unlock()
		}(sh)
	}
	wg.Wait()
	j.stats.RoundHaloBytes = roundBytes
	j.stats.RoundGhostNodes = roundGhosts
	accepted := !rejected.Load()
	j.finishCacheStats(inserted)
	j.stats.EarlyExit = j.opts.EarlyExit && !accepted
	return accepted
}

// ghostRec is one imported halo node: its host address, label, optional
// identifier, and full host adjacency row.
type ghostRec struct {
	node  int32
	label graph.Label
	id    int
	row   []int32
}

// localHost is a shard's assembled sub-host.
type localHost struct {
	labeled  *graph.Labeled
	instance *graph.Instance
}

// buildLocalHost assembles the monotone-renumbered sub-host over ext (owned
// ∪ ghosts, ascending). Rows come from the host CSR for owned nodes and
// from the imported records for ghosts, each filtered to ext — references
// outside the local set are provably outside every owned radius-t ball.
func buildLocalHost(j *job, ext []int32, ghosts []ghostRec, withIDs bool) localHost {
	k := len(ext)
	offsets := make([]int32, k+1)
	nbrs := make([]int32, 0)
	labels := make([]graph.Label, k)
	var ids []int
	if withIDs {
		ids = make([]int, k)
	}
	gi := 0
	for i, v := range ext {
		var row []int32
		if gi < len(ghosts) && ghosts[gi].node == v {
			rec := &ghosts[gi]
			row = rec.row
			labels[i] = rec.label
			if withIDs {
				ids[i] = rec.id
			}
			gi++
		} else {
			row = j.l.G.Neighbors(int(v))
			labels[i] = j.l.Labels[v]
			if withIDs {
				ids[i] = j.in.IDs[v]
			}
		}
		for _, u := range row {
			if li, ok := lookupKnown(ext, u); ok {
				nbrs = append(nbrs, int32(li))
			}
		}
		offsets[i+1] = int32(len(nbrs))
	}
	g := graph.BuildCSR(offsets, func(dst []int32) { copy(dst, nbrs) })
	l := graph.NewLabeled(g, labels)
	h := localHost{labeled: l}
	if withIDs {
		// Identifiers are pairwise distinct host-wide, hence on the subset.
		h.instance = &graph.Instance{Labeled: l, IDs: ids}
	}
	return h
}

// containsInt32 binary-searches a sorted slice.
func containsInt32(s []int32, v int32) bool {
	_, ok := lookupKnown(s, v)
	return ok
}

// encodeHaloRing serialises one ring for a link. Format, all varints:
//
//	round, count,
//	then per node (ascending): id gap (+1 from the previous id, so every
//	gap is >= 1), label back-reference (index+1 into the link's running
//	dictionary, or 0 followed by length+bytes for a first occurrence,
//	which also appends it to the dictionary), the identifier when the
//	evaluation carries them, then the full host row as degree followed by
//	a signed first-neighbour offset from the node id and unsigned gaps.
//
// The dictionary persists across the link's rings — that is the cross-round
// label delta; the node-disjoint rings are the adjacency delta (a node's
// row ships exactly once per link, in the round its ring is due).
func encodeHaloRing(j *job, dict map[graph.Label]int, ring haloRing, withIDs bool) []byte {
	buf := binary.AppendUvarint(nil, uint64(ring.round))
	buf = binary.AppendUvarint(buf, uint64(len(ring.nodes)))
	prev := int32(-1)
	for _, v := range ring.nodes {
		buf = binary.AppendUvarint(buf, uint64(v-prev))
		prev = v
		lab := j.l.Labels[v]
		if idx, ok := dict[lab]; ok {
			buf = binary.AppendUvarint(buf, uint64(idx+1))
		} else {
			buf = binary.AppendUvarint(buf, 0)
			buf = binary.AppendUvarint(buf, uint64(len(lab)))
			buf = append(buf, lab...)
			dict[lab] = len(dict)
		}
		if withIDs {
			buf = binary.AppendUvarint(buf, uint64(j.in.IDs[v]))
		}
		row := j.l.G.Neighbors(int(v))
		buf = binary.AppendUvarint(buf, uint64(len(row)))
		rprev := v
		for ri, u := range row {
			if ri == 0 {
				buf = binary.AppendVarint(buf, int64(u)-int64(v))
			} else {
				buf = binary.AppendUvarint(buf, uint64(u-rprev))
			}
			rprev = u
		}
	}
	return buf
}

// decodeHaloRing is encodeHaloRing's inverse, appending the decoded records
// to out and the first-occurrence labels to the link dictionary.
func decodeHaloRing(payload []byte, dict []graph.Label, withIDs bool, out []ghostRec) ([]ghostRec, []graph.Label) {
	pos := 0
	next := func() uint64 {
		x, n := binary.Uvarint(payload[pos:])
		if n <= 0 {
			panic(fmt.Sprintf("engine: corrupt halo ring at byte %d", pos))
		}
		pos += n
		return x
	}
	nextSigned := func() int64 {
		x, n := binary.Varint(payload[pos:])
		if n <= 0 {
			panic(fmt.Sprintf("engine: corrupt halo ring at byte %d", pos))
		}
		pos += n
		return x
	}
	_ = next() // round (carried in haloMsg too; kept for self-containment)
	count := int(next())
	prev := int32(-1)
	for i := 0; i < count; i++ {
		v := prev + int32(next())
		prev = v
		var lab graph.Label
		if ref := next(); ref > 0 {
			lab = dict[ref-1]
		} else {
			n := int(next())
			lab = graph.Label(payload[pos : pos+n])
			pos += n
			dict = append(dict, lab)
		}
		rec := ghostRec{node: v, label: lab}
		if withIDs {
			rec.id = int(next())
		}
		deg := int(next())
		rec.row = make([]int32, deg)
		rprev := v
		for ri := 0; ri < deg; ri++ {
			if ri == 0 {
				rprev = v + int32(nextSigned())
			} else {
				rprev += int32(next())
			}
			rec.row[ri] = rprev
		}
		out = append(out, rec)
	}
	return out, dict
}
