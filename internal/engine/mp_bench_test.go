package engine

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// Message-passing benchmarks: the flat sorted-row knowledge machinery (the
// per-round merge/snapshot discipline that replaced per-edge maps) and the
// sharded halo-exchange runtime against the per-node flooding protocol.

// BenchmarkMPRound pins the allocation discipline of the round machinery:
// one op is a full t-round synchronous gather on a cycle, simulated
// sequentially so goroutine scheduling stays out of the measurement. The
// double-buffered merge reuses its arenas, so allocs/op is dominated by the
// per-round snapshots plus amortised arena growth — linear in n·t, not
// quadratic in merged knowledge volume. The CI gate pins allocs/op at
// 40000 (~18 per node·round; the per-edge map representation this replaced
// allocated per merged edge and blew through that bound several times over).
func BenchmarkMPRound(b *testing.B) {
	const n, t = 512, 4
	l := graph.UniformlyLabeled(graph.Cycle(n), "u")
	j, err := newJob(cheapDecider(t), l, nil, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bufs := make([]*knowledgeBuf, n)
		for v := range bufs {
			bufs[v] = newNodeKnowledge(j, v, v)
		}
		snaps := make([]*knowledge, n)
		for r := 0; r < t; r++ {
			for v := range bufs {
				snaps[v] = bufs[v].snapshot()
			}
			for v := 0; v < n; v++ {
				for _, u := range l.G.Neighbors(v) {
					bufs[v].absorb(snaps[u])
				}
			}
		}
	}
}

// BenchmarkMPCycle is the sharded-vs-legacy gate pair on the issue's pinned
// workload: a uniform cycle with n=10^5 and horizon 8. The legacy arm runs
// the per-node flooding protocol (n goroutines, per-edge channels, radius-t
// snapshot gathering); the sharded arm partitions the cycle, exchanges only
// delta-encoded halo rings, and evaluates on shard-local extractors. CI
// gates sharded ≤ 0.5× legacy ns/op in the same artifact.
func BenchmarkMPCycle(b *testing.B) {
	l := graph.UniformlyLabeled(graph.Cycle(100_000), "u")
	dec := cheapDecider(8)
	b.Run("legacy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := EvalOblivious(dec, l, Options{Scheduler: MessagePassing})
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	})
	b.Run("sharded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			out := EvalOblivious(dec, l, Options{Scheduler: ShardedMP})
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	})
}

// BenchmarkMPShards sweeps the shard count on the same workload — the
// shards-vs-throughput curve of the README's sharded tour. One shard is the
// degenerate no-exchange case (a single extractor pass); the interesting
// scaling question is how the halo-exchange cost grows against the
// evaluation parallelism won.
func BenchmarkMPShards(b *testing.B) {
	l := graph.UniformlyLabeled(graph.Cycle(100_000), "u")
	dec := cheapDecider(8)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out := EvalOblivious(dec, l, Options{Scheduler: ShardedMPWith(p)})
				if out.Err != nil {
					b.Fatal(out.Err)
				}
			}
		})
	}
}
