package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// The parity suite is the engine's core guarantee: every scheduler — and
// every option combination — produces exactly the per-node verdicts of the
// naive seed-era loop (one graph.ViewOf / ObliviousViewOf call per node).
// It runs property-based over randomized instance suites (cycles, trees,
// random graphs) and over ID-using, oblivious, randomized, and
// NLD-certificate deciders.

// legacyEval is the historical per-node loop the engine replaced, kept here
// as the reference implementation.
func legacyEval(dec Decider, l *graph.Labeled, in *graph.Instance, seed int64) []Verdict {
	verdicts := make([]Verdict, l.N())
	for v := 0; v < l.N(); v++ {
		var view *graph.View
		if in != nil {
			view = graph.ViewOf(in, v, dec.Horizon)
		} else {
			view = graph.ObliviousViewOf(l, v, dec.Horizon)
		}
		if dec.DecideRand != nil {
			verdicts[v] = dec.DecideRand(view, newCoins(streamSeed(seed, v)))
		} else {
			verdicts[v] = dec.Decide(view)
		}
	}
	return verdicts
}

// parityInstances generates the randomized instance suite for one seed.
func parityInstances(seed int64) []*graph.Labeled {
	labelsOf := func(g *graph.Graph, s int64) *graph.Labeled {
		return graph.RandomLabels(g, []graph.Label{"a", "b", "c"}, s)
	}
	n := 3 + int((seed%17+17)%17)
	// Note no high-symmetry instances with repeated labels (stars): the
	// code-hashing deciders below call View.Code, whose exact canonical
	// search is factorial on those — they are exercised by the refinement
	// benches in internal/graph instead.
	return []*graph.Labeled{
		graph.UniformlyLabeled(graph.Cycle(3+n), "u"),
		labelsOf(graph.Cycle(3+n), seed),
		labelsOf(graph.CompleteBinaryTree(2+int(seed%3+3)%3), seed+1),
		labelsOf(graph.Random(n, 0.25, seed+2), seed+3),
		labelsOf(graph.Grid(3, 2+n/4), seed+4),
	}
}

// parityDeciders returns the decider battery; the names key subtests.
func parityDeciders() map[string]Decider {
	hashOf := func(code string) int {
		sum := 0
		for _, b := range []byte(code) {
			sum += int(b)
		}
		return sum
	}
	return map[string]Decider{
		// Depends on everything an ID-using algorithm can see.
		"id-viewhash": {Name: "id-viewhash", Horizon: 2, UsesIDs: true,
			Decide: func(view *graph.View) Verdict { return Verdict(hashOf(view.Code())%3 != 0) }},
		// Depends on the oblivious isomorphism class.
		"obl-viewhash": {Name: "obl-viewhash", Horizon: 2,
			Decide: func(view *graph.View) Verdict { return Verdict(hashOf(view.ObliviousCode())%3 != 0) }},
		// Structural decider in the style of the props package.
		"obl-degree": {Name: "obl-degree", Horizon: 1,
			Decide: func(view *graph.View) Verdict { return Verdict(view.G.Degree(view.Root) <= 2) }},
		// Horizon 0: the view is a single node.
		"obl-label": {Name: "obl-label", Horizon: 0,
			Decide: func(view *graph.View) Verdict { return Verdict(view.Labels[view.Root] != "c") }},
		// Randomized decider (nondeterministic per-node coins).
		"rand-coin": {Name: "rand-coin", Horizon: 1,
			DecideRand: func(view *graph.View, rng *rand.Rand) Verdict {
				return Verdict(rng.Intn(3) != 0 || view.G.Degree(view.Root) > 2)
			}},
		// NLD-style verifier: reads the certificate half of extended labels
		// (label + "\x01" + cert), accepting iff the root's certificate
		// matches its neighbour count parity.
		"nld-cert": {Name: "nld-cert", Horizon: 1,
			Decide: func(view *graph.View) Verdict {
				lab := view.Labels[view.Root]
				for i := 0; i < len(lab); i++ {
					if lab[i] == '\x01' {
						want := fmt.Sprint(view.G.Degree(view.Root) % 2)
						return Verdict(lab[i+1:] == want)
					}
				}
				return No
			}},
	}
}

// withCerts extends labels with parity certificates, correct on even nodes.
func withCerts(l *graph.Labeled) *graph.Labeled {
	labels := make([]graph.Label, l.N())
	for v, lab := range l.Labels {
		cert := fmt.Sprint(l.G.Degree(v) % 2)
		if v%5 == 3 { // plant some wrong certificates
			cert = "x"
		}
		labels[v] = lab + "\x01" + cert
	}
	return graph.NewLabeled(l.G, labels)
}

func idsFor(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	ids := rng.Perm(3*n + 1)[:n]
	return ids
}

func TestSchedulerParity(t *testing.T) {
	schedulers := []Scheduler{
		Sequential, Sharded, ShardedWith(3), MessagePassing,
		ShardedMPWith(1), ShardedMPWith(2), ShardedMPWith(4), ShardedMPWith(8),
		ShardedMPPartitioned(3, graph.PartitionLevelContiguous),
	}
	property := func(seed int64) bool {
		for _, base := range parityInstances(seed) {
			for name, dec := range parityDeciders() {
				l := base
				if name == "nld-cert" {
					l = withCerts(base)
				}
				var in *graph.Instance
				if dec.UsesIDs {
					in = graph.NewInstance(l, idsFor(l.N(), seed+9))
				}
				want := legacyEval(dec, l, in, seed)
				for _, sched := range schedulers {
					for _, dedup := range []bool{false, true} {
						opts := Options{Scheduler: sched, Dedup: dedup, Seed: seed}
						var out Outcome
						if in != nil {
							out = Eval(dec, in, opts)
						} else {
							out = EvalOblivious(dec, l, opts)
						}
						for v := range want {
							if out.Verdicts[v] != want[v] {
								t.Logf("seed=%d decider=%s sched=%s dedup=%v node=%d: got %s want %s",
									seed, name, sched.Name(), dedup, v, out.Verdicts[v], want[v])
								return false
							}
						}
						wantAccepted := true
						for _, w := range want {
							if w == No {
								wantAccepted = false
							}
						}
						if out.Accepted != wantAccepted {
							t.Logf("seed=%d decider=%s sched=%s: acceptance diverges", seed, name, sched.Name())
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Early exit must agree with full evaluation on the acceptance bit for every
// scheduler, on accepted and rejected instances alike.
func TestEarlyExitAcceptanceParity(t *testing.T) {
	schedulers := []Scheduler{Sequential, Sharded, MessagePassing, ShardedMPWith(4)}
	property := func(seed int64) bool {
		for _, l := range parityInstances(seed) {
			for name, dec := range parityDeciders() {
				if name == "nld-cert" {
					l = withCerts(l)
				}
				var in *graph.Instance
				if dec.UsesIDs {
					in = graph.NewInstance(l, idsFor(l.N(), seed+9))
				}
				eval := func(opts Options) Outcome {
					if in != nil {
						return Eval(dec, in, opts)
					}
					return EvalOblivious(dec, l, opts)
				}
				want := eval(Options{Seed: seed}).Accepted
				for _, sched := range schedulers {
					out := eval(Options{Scheduler: sched, EarlyExit: true, Seed: seed})
					if out.Accepted != want {
						t.Logf("seed=%d decider=%s sched=%s: early-exit acceptance %v, want %v",
							seed, name, sched.Name(), out.Accepted, want)
						return false
					}
					if out.Verdicts != nil {
						t.Log("early-exit outcome must not carry verdicts")
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Dedup must never change verdicts, and on uniform structured instances it
// must actually deduplicate.
func TestDedupEffectiveOnStructuredInstances(t *testing.T) {
	dec := parityDeciders()["obl-viewhash"]
	for _, tc := range []struct {
		name string
		l    *graph.Labeled
	}{
		{"cycle", graph.UniformlyLabeled(graph.Cycle(300), "u")},
		{"tree", graph.UniformlyLabeled(graph.CompleteBinaryTree(7), "u")},
	} {
		out := EvalOblivious(dec, tc.l, Options{Dedup: true})
		if out.Stats.DedupHits == 0 || out.Stats.DistinctViews >= tc.l.N()/2 {
			t.Errorf("%s: dedup ineffective: %+v", tc.name, out.Stats)
		}
		plain := EvalOblivious(dec, tc.l, Options{})
		for v := range plain.Verdicts {
			if plain.Verdicts[v] != out.Verdicts[v] {
				t.Fatalf("%s: dedup changed verdict at node %d", tc.name, v)
			}
		}
	}
}
