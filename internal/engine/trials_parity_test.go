package engine

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// The trial parity suite pins EvalTrials against the historical sequential
// trial loop — one full engine evaluation per trial, early-exiting — which
// survives here as the reference implementation. The contract: at a fixed
// sweep seed, trial t of EvalTrials draws exactly the coins of a single
// evaluation with Options.Seed = TrialSeed(seed, t), so the per-trial
// verdict sequences coincide, for every trial scheduler (worker count) and
// every single-evaluation scheduler alike.

// legacyTrialLoop is the seed-era shape of EstimateAcceptance: one
// early-exiting engine evaluation per trial.
func legacyTrialLoop(dec Decider, l *graph.Labeled, trials int, seed int64, sched Scheduler) []Verdict {
	verdicts := make([]Verdict, trials)
	for t := 0; t < trials; t++ {
		out := EvalOblivious(dec, l, Options{Scheduler: sched, EarlyExit: true, Seed: TrialSeed(seed, t)})
		verdicts[t] = Verdict(out.Accepted)
	}
	return verdicts
}

// trialParityDecider couples coins to structure so both halves matter: a
// node accepts iff its degree is at most 3 and its coin draw in 8 is
// nonzero.
var trialParityDecider = TrialDecider{
	Name:    "deg3+coin8",
	Horizon: 1,
	Prefix: func(view *graph.View) Verdict {
		return Verdict(view.G.Degree(view.Root) <= 3)
	},
	DecideRand: func(view *graph.View, rng *rand.Rand) Verdict {
		return Verdict(rng.Intn(8) != 0)
	},
}

// combined is the unfactored reference decider: prefix ∧ random stage per
// node, exactly what the trial engine's factoring must be equivalent to.
func combinedDecider(td TrialDecider) Decider {
	return Decider{Name: td.Name, Horizon: td.Horizon,
		DecideRand: func(view *graph.View, rng *rand.Rand) Verdict {
			if td.Prefix != nil && td.Prefix(view) == No {
				return No
			}
			return td.DecideRand(view, rng)
		}}
}

func TestTrialParityAgainstSequentialLoop(t *testing.T) {
	schedulers := []Scheduler{Sequential, Sharded, MessagePassing}
	property := func(seed int64) bool {
		for _, l := range parityInstances(seed) {
			const trials = 12
			want := legacyTrialLoop(combinedDecider(trialParityDecider), l, trials, seed, Sequential)
			// The reference loop itself must be scheduler-invariant (streams
			// depend on (seed, node) only).
			for _, sched := range schedulers[1:] {
				got := legacyTrialLoop(combinedDecider(trialParityDecider), l, trials, seed, sched)
				for i := range want {
					if got[i] != want[i] {
						t.Logf("seed=%d sched=%s: reference loop diverges at trial %d", seed, sched.Name(), i)
						return false
					}
				}
			}
			for _, workers := range []int{1, 4} {
				stats, err := EvalTrials(trialParityDecider, l, TrialOptions{Trials: trials, Seed: seed, Workers: workers})
				if err != nil {
					t.Logf("seed=%d workers=%d: %v", seed, workers, err)
					return false
				}
				if len(stats.Verdicts) != trials {
					t.Logf("seed=%d workers=%d: %d verdicts, want %d", seed, workers, len(stats.Verdicts), trials)
					return false
				}
				for i := range want {
					if stats.Verdicts[i] != want[i] {
						t.Logf("seed=%d workers=%d: trial %d verdict %s, want %s",
							seed, workers, i, stats.Verdicts[i], want[i])
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Concurrent trials share one deterministic-prefix evaluation: the prefix
// must run exactly once per sweep regardless of worker count, and the sweep
// must be race-free while all workers consume its result (this test is the
// -race canary for the sharing).
func TestTrialsSharePrefixResult(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(64), "u")
	var prefixCalls, randCalls atomic.Int64
	dec := TrialDecider{
		Name:        "counted",
		Horizon:     1,
		PrefixDedup: true,
		Prefix: func(view *graph.View) Verdict {
			prefixCalls.Add(1)
			return Yes
		},
		DecideRand: func(view *graph.View, rng *rand.Rand) Verdict {
			randCalls.Add(1)
			return Verdict(rng.Intn(64) != 0)
		},
	}
	stats, err := EvalTrials(dec, l, TrialOptions{Trials: 200, Seed: 3, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Dedup collapses the uniform cycle's views, so the prefix decides far
	// fewer views than nodes — and in all cases at most one evaluation's
	// worth, not one per trial.
	if calls := prefixCalls.Load(); calls == 0 || calls > int64(l.N()) {
		t.Errorf("prefix ran %d times, want within one evaluation", calls)
	}
	if stats.PrefixStats.Nodes != l.N() || stats.PrefixRejected {
		t.Errorf("prefix stats wrong: %+v", stats)
	}
	if randCalls.Load() < int64(stats.Trials) {
		t.Errorf("random stage ran %d times for %d trials", randCalls.Load(), stats.Trials)
	}
}
