package engine

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/testutil"
)

// slowDecider accepts every view after a small sleep — enough work per node
// that a deadline reliably lands mid-evaluation on a large instance.
func slowDecider(perNode time.Duration) Decider {
	return Decider{Name: "slow-accept", Horizon: 1, Decide: func(view *graph.View) Verdict {
		time.Sleep(perNode)
		return Yes
	}}
}

// TestEvalContextPreCanceled: an already-canceled context stops the
// evaluation before (or immediately after) the first node; the outcome
// reports the cancellation instead of fabricating a verdict.
func TestEvalContextPreCanceled(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	l := graph.UniformlyLabeled(graph.Cycle(1000), "u")
	for _, sched := range []Scheduler{Sequential, Sharded, MessagePassing} {
		out := EvalOblivious(slowDecider(0), l, Options{Scheduler: sched, Ctx: ctx})
		if out.Accepted {
			t.Fatalf("%s: canceled evaluation must not accept", sched.Name())
		}
		if !errors.Is(out.Err, context.Canceled) {
			t.Fatalf("%s: Err = %v, want wrapped context.Canceled", sched.Name(), out.Err)
		}
	}
}

// TestEvalDeadlineMidRun: a deadline expiring mid-evaluation stops the
// remaining nodes promptly and surfaces context.DeadlineExceeded, on both
// functional schedulers, without stranding worker goroutines.
func TestEvalDeadlineMidRun(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	l := graph.UniformlyLabeled(graph.Cycle(10000), "u")
	for _, sched := range []Scheduler{Sequential, Sharded} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		start := time.Now()
		out := EvalOblivious(slowDecider(100*time.Microsecond), l, Options{Scheduler: sched, Ctx: ctx})
		elapsed := time.Since(start)
		cancel()
		if out.Accepted {
			t.Fatalf("%s: deadline-cut evaluation must not accept", sched.Name())
		}
		if !errors.Is(out.Err, context.DeadlineExceeded) {
			t.Fatalf("%s: Err = %v, want wrapped context.DeadlineExceeded", sched.Name(), out.Err)
		}
		// 10k nodes x 100µs would take ≥1s; the deadline must cut far below.
		if elapsed > 500*time.Millisecond {
			t.Fatalf("%s: evaluation ran %v past a 5ms deadline", sched.Name(), elapsed)
		}
		if out.Stats.Evaluated >= l.N() {
			t.Fatalf("%s: every node evaluated despite the deadline", sched.Name())
		}
	}
}

// TestEvalContextUnsetUnchanged: evaluations without a context behave
// exactly as before — the fast path is a nil check.
func TestEvalContextUnsetUnchanged(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(64), "u")
	out := EvalOblivious(degreeAtMost(2), l, Options{})
	if !out.Accepted || out.Err != nil {
		t.Fatalf("plain evaluation broken: %+v", out)
	}
}

// TestEvalTrialsDeadline: a trial sweep under a deadline returns the
// committed in-order prefix plus an error wrapping the context's — partial
// statistics, honestly flagged — and strands no trial workers.
func TestEvalTrialsDeadline(t *testing.T) {
	testutil.VerifyNoLeaks(t)
	l := graph.UniformlyLabeled(graph.Cycle(32), "u")
	slow := TrialDecider{Name: "slow-coin", Horizon: 1,
		DecideRand: func(view *graph.View, rng *rand.Rand) Verdict {
			time.Sleep(200 * time.Microsecond)
			return Yes
		}}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	stats, err := EvalTrials(slow, l, TrialOptions{Trials: 100000, Seed: 1, Workers: 4, Ctx: ctx})
	elapsed := time.Since(start)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
	if stats.Trials >= 100000 {
		t.Fatal("sweep ran every trial despite the deadline")
	}
	// 100k trials x 32 nodes x 200µs is hours; the deadline must cut fast.
	if elapsed > 2*time.Second {
		t.Fatalf("sweep ran %v past a 10ms deadline", elapsed)
	}
	// The committed prefix remains worker-count-invariant data: every
	// committed trial accepted (the decider always says Yes).
	if stats.Accepted != stats.Trials {
		t.Fatalf("committed prefix inconsistent: %d accepted of %d", stats.Accepted, stats.Trials)
	}
}
