package engine

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// This file is the property-based check on the dirty-ball invariant itself:
// for random graphs and radii, the set the session re-decides must equal the
// brute-force union of the endpoint balls (taken after an insertion, before
// a removal — computed here with an independent map-based BFS, not the
// Traversal scratch the engine uses), and must cover every node whose
// extracted view bytes (RawCode) actually changed. The first containment
// catches under-invalidation (stale verdicts); the equality catches gross
// over-invalidation. Note the dirty set is deliberately a superset of the
// changed-RawCode set: a node at distance exactly t from one endpoint has
// both endpoints on its view's boundary but not the edge between them, so
// its bytes can come out unchanged.

// bruteBall is an independent BFS ball: plain maps, no shared scratch.
func bruteBall(g *graph.Graph, v, radius int) map[int]bool {
	dist := map[int]int{v: 0}
	queue := []int{v}
	for len(queue) > 0 {
		w := queue[0]
		queue = queue[1:]
		if dist[w] == radius {
			continue
		}
		for _, u := range g.Neighbors(w) {
			if _, seen := dist[int(u)]; !seen {
				dist[int(u)] = dist[w] + 1
				queue = append(queue, int(u))
			}
		}
	}
	ball := make(map[int]bool, len(dist))
	for w := range dist {
		ball[w] = true
	}
	return ball
}

// rawSnapshot captures every node's RawCode bytes through a fresh extractor.
func rawSnapshot(l *graph.Labeled, horizon int) []string {
	x := graph.NewViewExtractor(l)
	codes := make([]string, l.N())
	for v := 0; v < l.N(); v++ {
		codes[v] = string(x.At(v, horizon).RawCode().Bytes)
	}
	return codes
}

func TestDirtySetProperty(t *testing.T) {
	dec := func(horizon int) Decider {
		return Decider{Name: "any", Horizon: horizon, Decide: func(view *graph.View) Verdict {
			return Verdict(view.N()%2 == 0)
		}}
	}
	for _, horizon := range []int{0, 1, 2, 3} {
		for _, seed := range []int64{1, 2, 3} {
			rng := rand.New(rand.NewSource(seed*100 + int64(horizon)))
			n := 24 + rng.Intn(40)
			host := graph.Random(n, 0.06, seed)
			l := graph.NewLabeled(host, graph.RandomLabels(host, []graph.Label{"a", "b"}, seed).Labels)
			inc := MustNewIncremental(dec(horizon), l, Options{})

			for step := 0; step < 40; step++ {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v {
					continue
				}
				add := rng.Intn(2) == 0
				g := l.G

				before := rawSnapshot(l, horizon)
				structural := add != g.HasEdge(u, v)
				want := map[int]bool{}
				if structural && !add {
					// Removal: balls in the pre-update graph.
					for w := range bruteBall(g, u, horizon) {
						want[w] = true
					}
					for w := range bruteBall(g, v, horizon) {
						want[w] = true
					}
				}
				inc.ApplyEdge(u, v, add)
				if structural && add {
					// Insertion: balls in the post-update graph.
					for w := range bruteBall(g, u, horizon) {
						want[w] = true
					}
					for w := range bruteBall(g, v, horizon) {
						want[w] = true
					}
				}
				after := rawSnapshot(l, horizon)

				dirty := map[int]bool{}
				for _, w := range inc.LastDirty() {
					if dirty[w] {
						t.Fatalf("h=%d seed=%d step %d: node %d repeated in dirty set", horizon, seed, step, w)
					}
					dirty[w] = true
				}

				if len(dirty) != len(want) {
					t.Fatalf("h=%d seed=%d step %d (%d,%d,add=%v): dirty size %d != brute ball union %d",
						horizon, seed, step, u, v, add, len(dirty), len(want))
				}
				for w := range want {
					if !dirty[w] {
						t.Fatalf("h=%d seed=%d step %d: brute ball node %d missing from dirty set", horizon, seed, step, w)
					}
				}
				for w := range before {
					if before[w] != after[w] && !dirty[w] {
						t.Fatalf("h=%d seed=%d step %d (%d,%d,add=%v): node %d's view changed but was not repaired (under-invalidation)",
							horizon, seed, step, u, v, add, w)
					}
				}
			}
		}
	}
}

// TestDirtySetLabelProperty is the same check for label rewrites: the dirty
// set must equal the ball around the rewritten node and cover every changed
// view.
func TestDirtySetLabelProperty(t *testing.T) {
	const horizon = 2
	host := graph.Random(48, 0.06, 9)
	l := graph.NewLabeled(host, graph.RandomLabels(host, []graph.Label{"a", "b"}, 9).Labels)
	dec := Decider{Name: "any", Horizon: horizon, Decide: func(view *graph.View) Verdict {
		return Verdict(len(view.Labels) > 1)
	}}
	inc := MustNewIncremental(dec, l, Options{})
	rng := rand.New(rand.NewSource(7))
	for step := 0; step < 30; step++ {
		v := rng.Intn(48)
		before := rawSnapshot(l, horizon)
		want := bruteBall(l.G, v, horizon)
		inc.ApplyLabel(v, graph.Label([]string{"a", "b", "c"}[rng.Intn(3)]))
		after := rawSnapshot(l, horizon)

		dirty := map[int]bool{}
		for _, w := range inc.LastDirty() {
			dirty[w] = true
		}
		if len(dirty) != len(want) {
			t.Fatalf("step %d: dirty size %d != ball size %d", step, len(dirty), len(want))
		}
		for w := range want {
			if !dirty[w] {
				t.Fatalf("step %d: ball node %d missing from dirty set", step, w)
			}
		}
		for w := range before {
			if before[w] != after[w] && !dirty[w] {
				t.Fatalf("step %d: node %d's view changed but was not repaired", step, w)
			}
		}
	}
}
