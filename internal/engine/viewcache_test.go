package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// TestViewCacheFingerprintCollisionFallback fabricates two codes with the
// same fingerprint but different bytes: the cache must keep both verdicts
// apart by verifying the full byte code, never serving one view's verdict
// for the other.
func TestViewCacheFingerprintCollisionFallback(t *testing.T) {
	c := NewViewCache()
	codeA := graph.Code{Fingerprint: 42, Bytes: []byte("view-A")}
	codeB := graph.Code{Fingerprint: 42, Bytes: []byte("view-B")}

	v, computed, stored := c.lookupOrCompute("d", 1, codeA, func() Verdict { return Yes })
	if v != Yes || !computed || !stored {
		t.Fatalf("first insert: got (%v, %v, %v)", v, computed, stored)
	}
	v, computed, stored = c.lookupOrCompute("d", 1, codeB, func() Verdict { return No })
	if v != No || !computed || !stored {
		t.Fatalf("colliding insert must compute its own verdict: got (%v, %v, %v)", v, computed, stored)
	}
	// Both survive, resolved by byte comparison.
	if v, computed, _ := c.lookupOrCompute("d", 1, codeA, func() Verdict { t.Fatal("recompute"); return No }); v != Yes || computed {
		t.Fatalf("collision victim A lost its verdict: got (%v, %v)", v, computed)
	}
	if v, computed, _ := c.lookupOrCompute("d", 1, codeB, func() Verdict { t.Fatal("recompute"); return Yes }); v != No || computed {
		t.Fatalf("collision victim B lost its verdict: got (%v, %v)", v, computed)
	}
	if c.Len() != 2 {
		t.Fatalf("cache should hold both colliding entries, Len=%d", c.Len())
	}
}

// TestViewCacheKeyScoping: the same code under a different decider name or
// horizon is a different key — no cross-talk between deciders sharing one
// cache.
func TestViewCacheKeyScoping(t *testing.T) {
	c := NewViewCache()
	code := graph.Code{Fingerprint: 7, Bytes: []byte("v")}
	c.lookupOrCompute("a", 1, code, func() Verdict { return Yes })
	if v, _, _ := c.lookupOrCompute("b", 1, code, func() Verdict { return No }); v != No {
		t.Fatal("decider name not part of the key")
	}
	if v, _, _ := c.lookupOrCompute("a", 2, code, func() Verdict { return No }); v != No {
		t.Fatal("horizon not part of the key")
	}
	if v, computed, _ := c.lookupOrCompute("a", 1, code, func() Verdict { return No }); v != Yes || computed {
		t.Fatal("original entry lost")
	}
}

// TestViewCacheComputesOncePerCodeConcurrently hammers one small key set
// from many goroutines: the single critical section per lookup-or-insert
// must yield exactly one compute per distinct (key, code).
func TestViewCacheComputesOncePerCodeConcurrently(t *testing.T) {
	c := NewViewCache()
	const codes = 32
	const goroutines = 16
	const rounds = 200
	var computes atomic.Int64
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := (i + g) % codes
				code := graph.Code{Fingerprint: uint64(k), Bytes: []byte(fmt.Sprintf("code-%d", k))}
				want := Verdict(k%2 == 0)
				got, _, _ := c.lookupOrCompute("d", 1, code, func() Verdict {
					computes.Add(1)
					return want
				})
				if got != want {
					t.Errorf("code %d: got %v want %v", k, got, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := computes.Load(); n != codes {
		t.Fatalf("expected exactly %d computes, got %d", codes, n)
	}
	if c.Len() != codes {
		t.Fatalf("Len=%d, want %d", c.Len(), codes)
	}
}

// TestCrossRunCacheReuse is the cache's reason to exist: a second evaluation
// over an instance whose views were all decided by the first must not invoke
// the decider at all, and verdicts must match the uncached evaluation.
func TestCrossRunCacheReuse(t *testing.T) {
	dec := parityDeciders()["obl-viewhash"]
	first := graph.UniformlyLabeled(graph.Cycle(200), "u")
	second := graph.UniformlyLabeled(graph.Cycle(350), "u") // same views, different size
	cache := NewViewCache()

	for _, sched := range []Scheduler{Sequential, Sharded} {
		cold := EvalOblivious(dec, first, Options{Scheduler: sched, Cache: cache})
		if !cold.Stats.CacheShared {
			t.Fatalf("%s: CacheShared not reported", sched.Name())
		}
		warm := EvalOblivious(dec, second, Options{Scheduler: sched, Cache: cache})
		if warm.Stats.Evaluated != 0 {
			t.Errorf("%s: warm run re-decided %d views (hits=%d)",
				sched.Name(), warm.Stats.Evaluated, warm.Stats.DedupHits)
		}
		if warm.Stats.DedupHits != second.N() {
			t.Errorf("%s: warm run hits=%d, want %d", sched.Name(), warm.Stats.DedupHits, second.N())
		}
		plain := EvalOblivious(dec, second, Options{Scheduler: sched})
		for v := range plain.Verdicts {
			if plain.Verdicts[v] != warm.Verdicts[v] {
				t.Fatalf("%s: cached verdict diverges at node %d", sched.Name(), v)
			}
		}
	}
	// A uniform cycle has one interior view plus boundary-free symmetry:
	// the cache stays tiny across both instances.
	if cache.Len() == 0 || cache.Len() > 4 {
		t.Errorf("unexpected cache size %d for uniform cycles", cache.Len())
	}
}

// TestCacheImpliesDedup: setting Options.Cache without Dedup still
// deduplicates (documented behaviour), and identifier-carrying or randomized
// evaluations silently skip the cache.
func TestCacheImpliesDedup(t *testing.T) {
	dec := parityDeciders()["obl-viewhash"]
	l := graph.UniformlyLabeled(graph.Cycle(120), "u")
	cache := NewViewCache()
	out := EvalOblivious(dec, l, Options{Cache: cache})
	if out.Stats.DedupHits == 0 || cache.Len() == 0 {
		t.Fatalf("Cache alone should enable dedup: %+v", out.Stats)
	}

	// Randomized decider: cache must remain untouched.
	randCache := NewViewCache()
	rd := parityDeciders()["rand-coin"]
	EvalOblivious(rd, l, Options{Cache: randCache, Seed: 3})
	if randCache.Len() != 0 {
		t.Fatalf("randomized evaluation must not populate the cache, Len=%d", randCache.Len())
	}

	// Identifier-carrying evaluation: likewise.
	idCache := NewViewCache()
	in := graph.NewInstance(l, idsFor(l.N(), 5))
	idDec := parityDeciders()["id-viewhash"]
	Eval(idDec, in, Options{Cache: idCache})
	if idCache.Len() != 0 {
		t.Fatalf("identifier-carrying evaluation must not populate the cache, Len=%d", idCache.Len())
	}
}

// TestCrossRunCacheParityOnFamily runs a whole instance family through one
// shared cache and pins every per-node verdict against fresh uncached
// evaluations, across schedulers — the cross-run analogue of the parity
// suite.
func TestCrossRunCacheParityOnFamily(t *testing.T) {
	dec := parityDeciders()["obl-viewhash"]
	family := []*graph.Labeled{
		graph.UniformlyLabeled(graph.Cycle(64), "u"),
		graph.UniformlyLabeled(graph.Cycle(96), "u"),
		graph.RandomLabels(graph.Grid(6, 6), []graph.Label{"a", "b"}, 1),
		graph.RandomLabels(graph.Grid(8, 6), []graph.Label{"a", "b"}, 1),
		graph.UniformlyLabeled(graph.CompleteBinaryTree(5), "t"),
	}
	for _, sched := range []Scheduler{Sequential, Sharded, ShardedWith(3)} {
		cache := NewViewCache()
		for i, l := range family {
			cached := EvalOblivious(dec, l, Options{Scheduler: sched, Cache: cache})
			plain := EvalOblivious(dec, l, Options{Scheduler: sched})
			for v := range plain.Verdicts {
				if cached.Verdicts[v] != plain.Verdicts[v] {
					t.Fatalf("%s instance %d: cached verdict diverges at node %d", sched.Name(), i, v)
				}
			}
			if cached.Stats.CacheSize != cache.Len() {
				t.Fatalf("%s instance %d: CacheSize %d, cache.Len %d",
					sched.Name(), i, cached.Stats.CacheSize, cache.Len())
			}
		}
	}
}

// TestRawLayerNamespaceSeparation: a raw entry and a canonical entry with the
// same fingerprint and the same bytes must never be confused — the raw flag
// keys two disjoint namespaces.
func TestRawLayerNamespaceSeparation(t *testing.T) {
	c := NewViewCache()
	code := graph.Code{Fingerprint: 9, Bytes: []byte("same-bytes")}
	c.lookupOrCompute("d", 1, code, func() Verdict { return Yes })
	if _, ok := c.lookupRaw("d", 1, code); ok {
		t.Fatal("canonical entry leaked into the raw namespace")
	}
	c.storeRaw("d", 1, code, No)
	if v, ok := c.lookupRaw("d", 1, code); !ok || v != No {
		t.Fatalf("raw entry not served: (%v, %v)", v, ok)
	}
	if v, computed, _ := c.lookupOrCompute("d", 1, code, func() Verdict { t.Fatal("recompute"); return No }); v != Yes || computed {
		t.Fatalf("raw entry overwrote the canonical verdict: (%v, %v)", v, computed)
	}
	if c.Len() != 1 {
		t.Fatalf("Len must count canonical entries only, got %d", c.Len())
	}
}

// TestRawLayerScoping mirrors TestViewCacheKeyScoping for the raw layer.
func TestRawLayerScoping(t *testing.T) {
	c := NewViewCache()
	code := graph.Code{Fingerprint: 3, Bytes: []byte("r")}
	c.storeRaw("a", 1, code, Yes)
	if _, ok := c.lookupRaw("b", 1, code); ok {
		t.Fatal("decider name not part of the raw key")
	}
	if _, ok := c.lookupRaw("a", 2, code); ok {
		t.Fatal("horizon not part of the raw key")
	}
	if v, ok := c.lookupRaw("a", 1, code); !ok || v != Yes {
		t.Fatalf("raw entry lost: (%v, %v)", v, ok)
	}
}

// TestRawCodeDistinguishesViews: raw codes must differ whenever structure,
// labels or root differ — the soundness direction of the raw dedup layer
// (equal raw code => identical view).
func TestRawCodeDistinguishesViews(t *testing.T) {
	host := graph.UniformlyLabeled(graph.Path(5), "x")
	a := graph.ObliviousViewOf(host, 0, 1) // path end: 2-node view
	b := graph.ObliviousViewOf(host, 2, 1) // interior: 3-node view
	c := graph.ObliviousViewOf(host, 3, 1) // interior elsewhere: same shape as b
	ra := a.RawCode().Clone()
	rb := b.RawCode().Clone()
	rc := c.RawCode().Clone()
	if ra.Equal(rb) {
		t.Fatal("different-size views share a raw code")
	}
	if !rb.Equal(rc) {
		t.Fatal("byte-identical interior views must share a raw code")
	}
	labelled := graph.NewLabeled(host.G, []graph.Label{"x", "x", "y", "x", "x"})
	d := graph.ObliviousViewOf(labelled, 3, 1)
	if d.RawCode().Equal(rc) {
		t.Fatal("label change must change the raw code")
	}
}

// TestRawLayerParityWithDedup: evaluating with dedup (raw layer active) must
// produce verdicts identical to a dedup-free evaluation on an instance whose
// views repeat only up to isomorphism (so both cache levels get exercised).
func TestRawLayerParityWithDedup(t *testing.T) {
	l := graph.RandomLabels(graph.Random(60, 0.1, 3), []graph.Label{"a", "b"}, 4)
	dec := Decider{Name: "parity-raw", Horizon: 2, Decide: func(view *graph.View) Verdict {
		return Verdict(view.G.Degree(view.Root)%2 == 0)
	}}
	plain := EvalOblivious(dec, l, Options{})
	dedup := EvalOblivious(dec, l, Options{Dedup: true})
	for v := range plain.Verdicts {
		if plain.Verdicts[v] != dedup.Verdicts[v] {
			t.Fatalf("verdict mismatch at node %d", v)
		}
	}
	if dedup.Stats.DedupHits+dedup.Stats.Evaluated != l.N() {
		t.Fatalf("hits %d + evaluated %d != n %d", dedup.Stats.DedupHits, dedup.Stats.Evaluated, l.N())
	}
}
