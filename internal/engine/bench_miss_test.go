package engine

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"slices"
	"sort"
	"testing"

	"repro/internal/graph"
)

// The dedup-MISS benchmark: cold cache, dedup on, cache re-created every
// iteration, over hosts whose per-node labels make every view distinct — so
// every node pays the full miss path (raw-key miss, canonical code, decide,
// insert) instead of the ~0.9999-hit-rate regime BenchmarkDedup measures.
//
// Two arms per family:
//
//	engine  — the current miss path: shape fast paths + counting/radix
//	          refinement (EvalOblivious with a fresh private cache per
//	          iteration).
//	replica — the BENCH_5-era miss path, frozen below: the same extraction,
//	          raw-key and cache protocol, but canonical codes computed by the
//	          PR5 generic pipeline (per-round comparison sorts, per-node
//	          slices.Sort of neighbour colours, int-typed SoA). CI benchgates
//	          engine ≥3× replica on the cycle family.
//
// The replica is a faithful port of internal/graph/code.go as of BENCH_5
// (git ae9f8a1) onto the public Graph API; it exists only as a measurement
// baseline and is differentially pinned against the live pipeline by
// TestMissReplicaMatchesLivePipeline.

// missFamilies are the cold-sweep hosts. Random two-letter labels make the
// views pairwise distinct (so both cache layers miss on every node — the
// assertion in the bench body checks this) while leaving plenty of symmetry
// inside each view, which is exactly what costs the generic pipeline
// refinement rounds. Shapes cover the fast paths (path segments of a cycle,
// deg ≤ 4 tree views) plus the generic fallback (grid views, deg 4 with
// cycles).
func missFamilies() []struct {
	name    string
	host    *graph.Labeled
	horizon int
} {
	ab := []graph.Label{"a", "b"}
	rng := rand.New(rand.NewSource(17))
	tree := graph.New(512)
	deg := make([]int, 512)
	for v := 1; v < 512; v++ {
		u := rng.Intn(v)
		for deg[u] >= 3 {
			u = rng.Intn(v)
		}
		tree.AddEdge(v, u)
		deg[u]++
		deg[v]++
	}
	return []struct {
		name    string
		host    *graph.Labeled
		horizon int
	}{
		{"cycle512-r16", graph.RandomLabels(graph.Cycle(512), ab, 23), 16},
		{"tree512-r5", graph.RandomLabels(tree, ab, 29), 5},
		{"grid20x20-r3", graph.RandomLabels(graph.Grid(20, 20), ab, 31), 3},
	}
}

func BenchmarkDedupMiss(b *testing.B) {
	for _, fam := range missFamilies() {
		dec := cheapDecider(fam.horizon)
		// A handful of repeated leaf neighbourhoods is tolerable; the bench
		// must stay a miss bench, so hits are capped at 5% of nodes.
		maxHits := fam.host.N() / 20
		b.Run(fam.name+"/engine", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				out := EvalOblivious(dec, fam.host, Options{Dedup: true})
				if out.Stats.DedupHits > maxHits {
					b.Fatalf("miss bench host produced %d dedup hits; labels not distinct enough", out.Stats.DedupHits)
				}
			}
		})
		b.Run(fam.name+"/replica", func(b *testing.B) {
			b.ReportAllocs()
			w := &replicaWorkspace{}
			w.sigS.w = w
			for i := 0; i < b.N; i++ {
				if hits := replicaColdSweep(dec, fam.host, w); hits > maxHits {
					b.Fatalf("miss bench host produced %d dedup hits; labels not distinct enough", hits)
				}
			}
		})
	}
}

// replicaColdSweep is the PR5 sequential dedup evaluation loop: one batched
// extractor, a fresh two-layer cache, and the frozen generic pipeline for
// every canonical code. Returns the dedup hit count (expected 0 on the miss
// families).
func replicaColdSweep(dec Decider, host *graph.Labeled, w *replicaWorkspace) int {
	cache := NewViewCache()
	x := graph.NewViewExtractor(host)
	hits := 0
	for v := 0; v < host.N(); v++ {
		view := x.At(v, dec.Horizon)
		if view.N() > dedupMaxViewNodes {
			_ = dec.Decide(view)
			continue
		}
		raw := view.RawCode()
		if _, ok := cache.lookupRaw(dec.Name, dec.Horizon, raw); ok {
			hits++
			continue
		}
		code := w.rootedCode(view.Labeled, view.Root)
		verdict, computed, _ := cache.lookupOrCompute(dec.Name, dec.Horizon, code,
			func() Verdict { return dec.Decide(view) })
		if !computed {
			hits++
		}
		cache.storeRaw(dec.Name, dec.Horizon, raw, verdict)
	}
	return hits
}

// TestMissReplicaMatchesLivePipeline pins the replica to the live pipeline
// on the benchmark's own view population: equal codes iff equal live codes
// (the byte encodings differ by design — fast paths use their own namespace
// — but the induced equivalence, which is what dedup consumes, must match).
func TestMissReplicaMatchesLivePipeline(t *testing.T) {
	w := &replicaWorkspace{}
	w.sigS.w = w
	live := graph.NewCodeWorkspace()
	for _, fam := range missFamilies() {
		x := graph.NewViewExtractor(fam.host)
		seen := map[string]string{}
		for v := 0; v < fam.host.N(); v += 7 {
			view := x.At(v, fam.horizon)
			rc := string(w.rootedCode(view.Labeled, view.Root).Bytes)
			lc := string(live.RootedCode(view.Labeled, view.Root).Clone().Bytes)
			if prev, ok := seen[rc]; ok && prev != lc {
				t.Fatalf("%s node %d: replica code collides across distinct live codes", fam.name, v)
			}
			seen[rc] = lc
		}
		liveSeen := map[string]bool{}
		for _, lc := range seen {
			if liveSeen[lc] {
				t.Fatalf("%s: live code collides across distinct replica codes", fam.name)
			}
			liveSeen[lc] = true
		}
	}
}

// ---------------------------------------------------------------------------
// Frozen BENCH_5 generic pipeline (PR5, git ae9f8a1), ported onto the public
// Graph API. Do not optimise: its whole purpose is to stay what PR5 shipped.
// ---------------------------------------------------------------------------

type replicaWorkspace struct {
	cur      []int
	next     []int
	sigPos   []int
	sigLen   []int
	sigBuf   []int
	order    []int
	counts   []int
	initS    replicaInitSorter
	sigS     replicaSigSorter
	encOrder []int
	encNbrs  []int
	buf      []byte
	frames   []replicaFrame
}

type replicaFrame struct {
	colors []int
	best   []byte
	try    []byte
}

func (w *replicaWorkspace) rootedCode(l *graph.Labeled, root int) graph.Code {
	n := l.N()
	w.grow(n)
	w.buf = w.buf[:0]
	if n == 0 {
		w.buf = binary.AppendUvarint(w.buf, 0)
		return graph.Code{Fingerprint: replicaFNV(w.buf), Bytes: w.buf}
	}
	k := w.initColors(l, root)
	w.buf = w.canon(l, root, 0, k, w.cur[:n], w.buf)
	return graph.Code{Fingerprint: replicaFNV(w.buf), Bytes: w.buf}
}

func replicaFNV(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

func (w *replicaWorkspace) grow(n int) {
	if cap(w.cur) < n {
		w.cur = make([]int, n)
		w.next = make([]int, n)
		w.sigPos = make([]int, n)
		w.sigLen = make([]int, n)
		w.order = make([]int, n)
		w.counts = make([]int, n+1)
		w.encOrder = make([]int, n)
	}
	if len(w.frames) < n+1 {
		frames := make([]replicaFrame, n+1)
		copy(frames, w.frames)
		w.frames = frames
	}
}

func (w *replicaWorkspace) initColors(l *graph.Labeled, root int) int {
	n := l.N()
	uniform := true
	for _, lab := range l.Labels {
		if lab != l.Labels[0] {
			uniform = false
			break
		}
	}
	if uniform {
		if root < 0 || n == 1 {
			for i := 0; i < n; i++ {
				w.cur[i] = 0
			}
			return 1
		}
		for i := 0; i < n; i++ {
			w.cur[i] = 1
		}
		w.cur[root] = 0
		return 2
	}
	order := w.order[:n]
	for i := range order {
		order[i] = i
	}
	w.initS = replicaInitSorter{order: order, labels: l.Labels, root: root}
	sort.Sort(&w.initS)
	k := 0
	w.cur[order[0]] = 0
	for i := 1; i < n; i++ {
		prev, v := order[i-1], order[i]
		if (v == root) != (prev == root) || l.Labels[v] != l.Labels[prev] {
			k++
		}
		w.cur[v] = k
	}
	return k + 1
}

type replicaInitSorter struct {
	order  []int
	labels []graph.Label
	root   int
}

func (s *replicaInitSorter) Len() int      { return len(s.order) }
func (s *replicaInitSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }
func (s *replicaInitSorter) Less(i, j int) bool {
	a, b := s.order[i], s.order[j]
	if (a == s.root) != (b == s.root) {
		return a == s.root
	}
	return s.labels[a] < s.labels[b]
}

func (w *replicaWorkspace) canon(l *graph.Labeled, root, depth, k int, colors []int, out []byte) []byte {
	k = w.refine(l.G, colors, k)
	target := w.firstNonSingletonClass(colors, k)
	if target < 0 {
		return w.encode(l, root, colors, out)
	}
	f := &w.frames[depth]
	if cap(f.colors) < len(colors) {
		f.colors = make([]int, len(colors))
	}
	haveBest := false
	for v := range colors {
		if colors[v] != target {
			continue
		}
		bc := f.colors[:len(colors)]
		copy(bc, colors)
		for u := range bc {
			bc[u]++
		}
		bc[v] = 0
		f.try = w.canon(l, root, depth+1, k+1, bc, f.try[:0])
		if !haveBest || bytes.Compare(f.try, f.best) < 0 {
			f.best = append(f.best[:0], f.try...)
			haveBest = true
		}
	}
	return append(out, f.best...)
}

func (w *replicaWorkspace) refine(g *graph.Graph, colors []int, k int) int {
	n := len(colors)
	for {
		w.sigBuf = w.sigBuf[:0]
		for v := 0; v < n; v++ {
			w.sigPos[v] = len(w.sigBuf)
			w.sigBuf = append(w.sigBuf, colors[v])
			start := len(w.sigBuf)
			for _, u := range g.Neighbors(v) {
				w.sigBuf = append(w.sigBuf, colors[u])
			}
			slices.Sort(w.sigBuf[start:])
			w.sigLen[v] = len(w.sigBuf) - w.sigPos[v]
		}
		order := w.order[:n]
		for i := range order {
			order[i] = i
		}
		if n <= 32 {
			for i := 1; i < n; i++ {
				for j := i; j > 0 && w.compareSig(order[j-1], order[j]) > 0; j-- {
					order[j-1], order[j] = order[j], order[j-1]
				}
			}
		} else {
			w.sigS.n = n
			sort.Sort(&w.sigS)
		}
		next := w.next[:n]
		kNext := 0
		next[order[0]] = 0
		for i := 1; i < n; i++ {
			if w.compareSig(order[i-1], order[i]) != 0 {
				kNext++
			}
			next[order[i]] = kNext
		}
		kNext++
		copy(colors, next)
		if kNext == k {
			return k
		}
		k = kNext
	}
}

func (w *replicaWorkspace) compareSig(a, b int) int {
	pa, la := w.sigPos[a], w.sigLen[a]
	pb, lb := w.sigPos[b], w.sigLen[b]
	m := la
	if lb < m {
		m = lb
	}
	buf := w.sigBuf
	for i := 0; i < m; i++ {
		if x, y := buf[pa+i], buf[pb+i]; x != y {
			if x < y {
				return -1
			}
			return 1
		}
	}
	return la - lb
}

type replicaSigSorter struct {
	w *replicaWorkspace
	n int
}

func (s *replicaSigSorter) Len() int { return s.n }
func (s *replicaSigSorter) Swap(i, j int) {
	o := s.w.order
	o[i], o[j] = o[j], o[i]
}
func (s *replicaSigSorter) Less(i, j int) bool {
	return s.w.compareSig(s.w.order[i], s.w.order[j]) < 0
}

func (w *replicaWorkspace) firstNonSingletonClass(colors []int, k int) int {
	counts := w.counts[:k]
	for c := range counts {
		counts[c] = 0
	}
	for _, c := range colors {
		counts[c]++
	}
	for c, cnt := range counts {
		if cnt > 1 {
			return c
		}
	}
	return -1
}

func (w *replicaWorkspace) encode(l *graph.Labeled, root int, colors []int, out []byte) []byte {
	n := l.N()
	order := w.encOrder[:n]
	for v, c := range colors {
		order[c] = v
	}
	out = binary.AppendUvarint(out, uint64(n))
	for _, v := range order {
		flag := byte(0)
		if v == root {
			flag = 1
		}
		out = append(out, flag)
		lab := l.Labels[v]
		out = binary.AppendUvarint(out, uint64(len(lab)))
		out = append(out, lab...)
	}
	for _, v := range order {
		nbrs := l.G.Neighbors(v)
		out = binary.AppendUvarint(out, uint64(len(nbrs)))
		p := w.encNbrs[:0]
		for _, u := range nbrs {
			p = append(p, colors[u])
		}
		slices.Sort(p)
		w.encNbrs = p
		for _, q := range p {
			out = binary.AppendUvarint(out, uint64(q))
		}
	}
	return out
}
