package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file is the engine's Monte Carlo subsystem: randomized deciders
// (Corollary 1's Id-oblivious decider is the motivating one) are evaluated
// over many independent trials, each trial being one full instance
// evaluation with fresh per-node coins. Trials are a first-class engine
// workload: they run on a worker pool with per-worker extraction scratch,
// per-trial early exit, deterministic per-(trial, node) coin streams, and an
// adaptive stopping rule on the acceptance estimate — while returning
// results that are bit-identical for every worker count.

// splitmix64 stream derivation ------------------------------------------------

// golden64 is the splitmix64 increment (the 64-bit golden ratio). The
// seed-era coin derivation XORed the node index with a truncated (56-bit,
// even) version of this constant, which left the low bit of every derived
// seed equal across all nodes; the splitmix64 finalizer below avalanches all
// 64 bits instead.
const golden64 = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a bijective avalanche of all 64 bits,
// so consecutive inputs (adjacent nodes, trials, seeds) yield statistically
// independent outputs.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// streamSeed derives node v's coin-stream seed from an evaluation seed: one
// splitmix64 step into the seed's stream, indexed by node. Shared by
// single-evaluation randomized deciders (Options.Seed) and the trial engine
// (per-trial seeds from TrialSeed), so trial t of EvalTrials replays exactly
// as Eval/EvalOblivious with Options.Seed = TrialSeed(seed, t).
func streamSeed(seed int64, v int) int64 {
	return int64(mix64(uint64(seed) + golden64*uint64(v+1)))
}

// TrialSeed derives the evaluation seed of one trial from the sweep seed:
// trial t of EvalTrials(dec, l, TrialOptions{Seed: s, ...}) draws exactly
// the coins of a single evaluation with Options.Seed = TrialSeed(s, t), so
// any trial subset is reproducible from the one sweep seed.
func TrialSeed(seed int64, trial int) int64 {
	return int64(mix64(mix64(uint64(seed)+golden64) + golden64*uint64(trial+1)))
}

// coinSource is a rand.Source64 over the splitmix64 stream. Unlike
// rand.NewSource (whose lagged-Fibonacci state costs ~600 words of seeding
// per stream), reseeding is one store — cheap enough to derive a fresh
// stream per (trial, node) in the trial engine's inner loop.
type coinSource struct{ state uint64 }

func (s *coinSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *coinSource) Uint64() uint64 {
	s.state += golden64
	return mix64(s.state)
}

func (s *coinSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// newCoins returns the coin stream for one derived stream seed.
func newCoins(seed int64) *rand.Rand { return rand.New(&coinSource{state: uint64(seed)}) }

// Trial evaluation ------------------------------------------------------------

// TrialDecider is a randomized decision procedure factored for trial sweeps:
// an optional deterministic prefix stage plus the coin-dependent stage.
type TrialDecider struct {
	// Name identifies the decider in reports.
	Name string
	// Horizon is the constant local horizon t of both stages.
	Horizon int
	// Prefix is the optional coin-free stage. A node's verdict is the
	// conjunction Prefix(view) ∧ DecideRand(view, coins), and conjunctions
	// distribute over the all-nodes aggregation, so the engine evaluates the
	// prefix ONCE per sweep — through the deduplicating engine with early
	// exit — instead of once per trial: if it rejects, every trial rejects
	// deterministically; if it accepts, trials run only the random stage.
	// Prefix must be a deterministic function of the view's isomorphism
	// class (the dedup contract, see Options.Dedup).
	Prefix func(view *graph.View) Verdict
	// PrefixDedup enables canonical-view deduplication for the prefix
	// evaluation. Worthwhile only when the prefix outweighs the cache key
	// (one raw-code fingerprint per view, one canonical code per miss —
	// see Options.Dedup); for constant-time structural checks the key costs
	// more than the verdicts it saves.
	PrefixDedup bool
	// DecideRand is the coin-dependent stage. Each (trial, node) pair gets
	// its own deterministic stream; see TrialSeed.
	DecideRand func(view *graph.View, rng *rand.Rand) Verdict
	// RandIgnoresView declares that DecideRand never reads its view (the
	// Corollary 1 budget stage is coins + simulation only). The trial loop
	// then skips view extraction entirely and passes a nil view.
	RandIgnoresView bool
}

// Interval is a two-sided confidence interval on a probability.
type Interval struct {
	// Low and High bound the interval, within [0, 1].
	Low, High float64
}

// Separates reports whether the interval excludes p — the adaptive
// stopping criterion of EvalTrials once enough trials have committed.
func (iv Interval) Separates(p float64) bool { return iv.Low > p || iv.High < p }

// TrialOptions tune one Monte Carlo sweep.
type TrialOptions struct {
	// Trials is the maximum number of trials; it must be positive. Without
	// adaptive stopping exactly this many trials run.
	Trials int
	// Seed drives every trial's coin streams; see TrialSeed.
	Seed int64
	// Workers caps the trial-level worker pool (0 means GOMAXPROCS, further
	// capped at Trials). Results are identical for every worker count:
	// trials are committed in trial order regardless of completion order.
	Workers int
	// Confidence is the confidence level of the reported Wilson interval
	// (and of the stopping rule); 0 means 0.95.
	Confidence float64
	// AdaptiveStop halts the sweep once the Wilson interval at Confidence
	// separates from Threshold (after at least MinTrials trials): further
	// trials cannot move the estimate back across the threshold with the
	// asked-for confidence, so their cost buys nothing.
	AdaptiveStop bool
	// Threshold is the acceptance-probability threshold the stopping rule
	// tests against; meaningful only with AdaptiveStop.
	Threshold float64
	// MinTrials is the floor below which the stopping rule never fires
	// (0 means 16): Wilson intervals on a handful of trials are wide but
	// not wide enough to survive unlucky streaks.
	MinTrials int
	// Ctx, when set, bounds the sweep: workers poll it between trials and
	// the sweep returns the committed in-order prefix alongside an error
	// wrapping ctx.Err() — a serving layer's per-request deadline cuts a
	// sweep short with honest partial statistics, exactly like a decider
	// panic does. Nil means no deadline.
	Ctx context.Context
}

// TrialStats is the outcome of a Monte Carlo sweep. For a fixed seed every
// field is a pure function of the inputs — worker count and scheduling
// cannot change it.
type TrialStats struct {
	// Trials is the number of trials actually committed (fewer than
	// requested when the stopping rule fired).
	Trials int
	// Accepted counts committed trials in which every node said Yes.
	Accepted int
	// Estimate is Accepted / Trials, the acceptance-probability estimate.
	Estimate float64
	// CI is the Wilson score interval on Estimate at Confidence.
	CI Interval
	// Confidence is the confidence level CI was computed at.
	Confidence float64
	// Stopped reports that the adaptive stopping rule ended the sweep
	// before Trials reached the requested maximum.
	Stopped bool
	// PrefixRejected reports that the deterministic prefix stage rejected:
	// every trial rejects with probability 1 and no random stage ran.
	PrefixRejected bool
	// PrefixStats carries the engine stats of the prefix evaluation (zero
	// when the decider has no prefix).
	PrefixStats Stats
	// Evaluated counts DecideRand invocations across all committed and
	// discarded trials (per-trial early exit keeps it below Trials×Nodes).
	Evaluated int
	// Workers is the size of the trial worker pool.
	Workers int
	// Verdicts is the per-trial acceptance verdict sequence, indexed by
	// trial: Verdicts[t] is Yes iff trial t accepted. Length Trials.
	Verdicts []Verdict
}

// ValidateTrials reports an error unless the trial count is positive. It is
// the shared validation of every trial entry point (engine.EvalTrials,
// local.EstimateAcceptance, halting.EstimateRejection), keeping the message
// consistent across layers. It used to panic; library paths now degrade
// gracefully and only the Must* wrappers re-panic.
func ValidateTrials(trials int) error {
	if trials < 1 {
		return fmt.Errorf("engine: trials must be positive, got %d", trials)
	}
	return nil
}

// WilsonInterval returns the Wilson score interval for accepted successes
// out of trials at the given confidence level (0 means 0.95). Unlike the
// normal approximation it behaves at the boundaries p̂ ∈ {0, 1} — exactly
// where Corollary 1's decider lives (yes-instances are never rejected).
func WilsonInterval(accepted, trials int, confidence float64) Interval {
	if trials <= 0 {
		return Interval{Low: 0, High: 1}
	}
	z := zScore(confidence)
	n := float64(trials)
	p := float64(accepted) / n
	denom := 1 + z*z/n
	center := (p + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/n+z*z/(4*n*n))
	return Interval{Low: math.Max(0, center-half), High: math.Min(1, center+half)}
}

// zScore converts a two-sided confidence level to the normal quantile z.
// Callers that accept external input validate through validConfidence first;
// the panic here only guards WilsonInterval's documented contract.
func zScore(confidence float64) float64 {
	if confidence == 0 {
		confidence = defaultConfidence
	}
	if confidence <= 0 || confidence >= 1 {
		panic("engine: confidence must be in (0, 1)")
	}
	return math.Sqrt2 * math.Erfinv(confidence)
}

// validConfidence checks a confidence level (0 meaning the default) without
// panicking.
func validConfidence(confidence float64) error {
	if confidence != 0 && (confidence <= 0 || confidence >= 1) {
		return fmt.Errorf("engine: confidence must be in (0, 1), got %v", confidence)
	}
	return nil
}

// defaultConfidence is the confidence level used when TrialOptions leaves it
// zero.
const defaultConfidence = 0.95

// defaultMinTrials is the adaptive-stopping floor when TrialOptions leaves
// MinTrials zero.
const defaultMinTrials = 16

// EvalTrials runs a Monte Carlo sweep of a randomized decider over a
// labelled graph (the Id-oblivious regime, where coins substitute for
// identifiers): up to opts.Trials independent trials, each evaluating every
// node with fresh deterministic coins and early-exiting at its first No.
//
// The deterministic prefix stage (when present) runs once through the
// deduplicating engine before any trial. Trials then run on a worker pool,
// but are committed strictly in trial order and the stopping rule is
// evaluated only on committed prefixes — so Trials, Estimate, CI and the
// per-trial verdict sequence are identical for every worker count, and any
// single trial can be replayed via TrialSeed.
//
// Malformed deciders or options are returned as errors (the historical
// panics live on only in MustEvalTrials). A trial whose decider panics is
// recovered: the sweep stops, and the statistics of the committed in-order
// prefix are returned alongside the error — partial data, clearly flagged,
// instead of a dead process.
func EvalTrials(dec TrialDecider, l *graph.Labeled, opts TrialOptions) (TrialStats, error) {
	if dec.DecideRand == nil {
		return TrialStats{}, errors.New("engine: TrialDecider.DecideRand must be set")
	}
	if dec.Horizon < 0 {
		return TrialStats{}, fmt.Errorf("engine: negative horizon %d", dec.Horizon)
	}
	if err := ValidateTrials(opts.Trials); err != nil {
		return TrialStats{}, err
	}
	if err := validConfidence(opts.Confidence); err != nil {
		return TrialStats{}, err
	}
	if opts.AdaptiveStop && (opts.Threshold < 0 || opts.Threshold > 1 || math.IsNaN(opts.Threshold)) {
		return TrialStats{}, fmt.Errorf("engine: adaptive-stop threshold must be in [0, 1], got %v", opts.Threshold)
	}
	if l.N() == 0 {
		return TrialStats{}, ErrEmptyInstance
	}
	confidence := opts.Confidence
	if confidence == 0 {
		confidence = defaultConfidence
	}
	minTrials := opts.MinTrials
	if minTrials <= 0 {
		minTrials = defaultMinTrials
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Trials {
		workers = opts.Trials
	}

	stats := TrialStats{Confidence: confidence, Workers: workers}

	// Deterministic prefix: one deduplicated, early-exiting evaluation for
	// the whole sweep.
	if dec.Prefix != nil {
		sched := Sequential
		if workers > 1 {
			sched = ShardedWith(workers)
		}
		prefix := Decider{Name: dec.Name + "/prefix", Horizon: dec.Horizon, Decide: dec.Prefix}
		out := EvalOblivious(prefix, l, Options{Scheduler: sched, Dedup: dec.PrefixDedup, EarlyExit: true, Ctx: opts.Ctx})
		stats.PrefixStats = out.Stats
		if out.Err != nil {
			// A crashed or invalid prefix evaluation is not a rejection: the
			// sweep's premise failed, so surface the error with no trials.
			return stats, fmt.Errorf("engine: prefix evaluation failed: %w", out.Err)
		}
		if !out.Accepted {
			stats.PrefixRejected = true
			stats.Trials = opts.Trials
			stats.Verdicts = make([]Verdict, opts.Trials) // all No
			stats.Estimate = 0
			stats.CI = WilsonInterval(0, opts.Trials, confidence)
			return stats, nil
		}
	}

	n := l.N()
	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		done     = make([]bool, opts.Trials)
		verdicts = make([]Verdict, opts.Trials)

		committed int
		accepted  int
		stopped   bool
		evaluated int
		sweepErr  error
	)

	// commit folds newly finished trials into the in-order prefix and
	// evaluates the stopping rule at each new prefix point. Called with mu
	// held.
	commit := func() {
		for committed < opts.Trials && done[committed] && !stopped {
			if verdicts[committed] == Yes {
				accepted++
			}
			committed++
			if opts.AdaptiveStop && committed >= minTrials &&
				WilsonInterval(accepted, committed, confidence).Separates(opts.Threshold) {
				stopped = true
				stop.Store(true)
			}
		}
		if committed == opts.Trials {
			stop.Store(true)
		}
	}

	// runTrial is one trial's coin-stage evaluation, guarded: a decider panic
	// becomes a returned error instead of killing the sweep's process.
	runTrial := func(t int, x *graph.ViewExtractor, coins *rand.Rand, decided *int) (verdict Verdict, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("engine: trial %d: decider panicked: %v", t, r)
			}
		}()
		tseed := TrialSeed(opts.Seed, t)
		verdict = Yes
		for v := 0; v < n; v++ {
			coins.Seed(streamSeed(tseed, v))
			var view *graph.View
			if x != nil {
				view = x.At(v, dec.Horizon)
			}
			*decided++
			if dec.DecideRand(view, coins) == No {
				verdict = No
				break
			}
		}
		return verdict, nil
	}

	// canceled polls the sweep's context between trials (nil-fast).
	var ctxDone <-chan struct{}
	if opts.Ctx != nil {
		ctxDone = opts.Ctx.Done()
	}
	canceled := func() bool {
		if ctxDone == nil {
			return false
		}
		select {
		case <-ctxDone:
			return true
		default:
			return false
		}
	}

	worker := func() {
		var x *graph.ViewExtractor
		if n > 0 && !dec.RandIgnoresView {
			x = graph.NewViewExtractor(l)
		}
		coins := rand.New(&coinSource{})
		decided := 0
		for {
			t := int(next.Add(1)) - 1
			if t >= opts.Trials || stop.Load() {
				break
			}
			if canceled() {
				mu.Lock()
				if sweepErr == nil {
					sweepErr = fmt.Errorf("engine: trial sweep canceled: %w", opts.Ctx.Err())
				}
				stop.Store(true)
				mu.Unlock()
				break
			}
			verdict, err := runTrial(t, x, coins, &decided)
			mu.Lock()
			if err != nil {
				// First error wins; the sweep stops and the committed in-order
				// prefix is what the caller gets back.
				if sweepErr == nil {
					sweepErr = err
				}
				stop.Store(true)
				mu.Unlock()
				break
			}
			done[t], verdicts[t] = true, verdict
			commit()
			mu.Unlock()
		}
		mu.Lock()
		evaluated += decided
		mu.Unlock()
	}

	if workers <= 1 {
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	stats.Trials = committed
	stats.Accepted = accepted
	if committed > 0 {
		stats.Estimate = float64(accepted) / float64(committed)
	}
	stats.CI = WilsonInterval(accepted, committed, confidence)
	stats.Stopped = stopped
	stats.Evaluated = evaluated
	stats.Verdicts = verdicts[:committed]
	return stats, sweepErr
}

// MustEvalTrials is EvalTrials for callers that treat malformed input or a
// crashing decider as a programming error: it panics on any error and
// otherwise returns the statistics. The seed-era panicking behaviour lives
// here; library paths should call EvalTrials and propagate.
func MustEvalTrials(dec TrialDecider, l *graph.Labeled, opts TrialOptions) TrialStats {
	stats, err := EvalTrials(dec, l, opts)
	if err != nil {
		panic(err)
	}
	return stats
}
