package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// EdgeOp is one edge update of a dynamic stream: insert (Add) or delete
// (!Add) the undirected edge {U, V}.
type EdgeOp struct {
	// U and V are the edge's endpoints.
	U, V int
	// Add selects insertion; false selects removal.
	Add bool
}

// Incremental is a resident decision session over one labelled graph: it
// holds the per-node verdicts and the aggregate outcome continuously correct
// across a stream of edge and label updates, re-deciding only the nodes an
// update can have affected instead of the whole instance.
//
// Locality is what makes this sound. A node's verdict is a function of its
// radius-t view, so an update at {u, v} can change verdicts only inside the
// distance-t balls of u and v:
//
//   - for an edge insertion the balls are taken AFTER applying the update
//     (distances only shrink, so a node outside both new balls has no path of
//     length <= t to either endpoint — its view cannot contain the new edge);
//   - for an edge removal the balls are taken BEFORE applying it (the
//     symmetric argument: distances only grow);
//   - for a label change at v the ball around v suffices, unchanged on either
//     side.
//
// The dirty set is the union of those balls, computed with the shared
// graph.Traversal scratch (0 allocs/op); dirty nodes are re-extracted through
// the same ViewExtractor / ViewCache / fast-path pipeline the from-scratch
// engine uses, so a warm session decides an update in O(|dirty|) cache probes
// — the differential fuzz suite pins the results bit-identical to a
// from-scratch Eval after every step.
//
// Options are honoured with three deviations, all forced by the residency:
// EarlyExit is ignored (the session must keep every per-node verdict), Ctx is
// ignored (repairs are O(ball), not instance-sized), and the MessagePassing
// scheduler repairs sequentially (its goroutine-per-node flooding evaluates
// whole instances; dirty subsets go through the functional pipeline).
// Options.Cache and Options.Faults work exactly as in Eval: a shared cache
// warms the session across restarts (cmd/decided replays its verdict store
// into one), and injected decider crashes surface as per-node errors that
// heal on the next touching update.
//
// The session owns its instance: after NewIncremental, every mutation of the
// graph must go through ApplyEdge/ApplyUpdates and every label change
// through ApplyLabel (or InvalidateLabels when labels were rewritten in
// place). Mutating the host directly desynchronises the verdict table; the
// session panics on the next update if the graph's generation moved without
// it. An Incremental is not safe for concurrent use.
type Incremental struct {
	dec  Decider
	l    *graph.Labeled
	opts Options
	n    int

	j    *job
	trav *graph.Traversal
	xs   []*graph.ViewExtractor

	// Resident state: one verdict per node plus the aggregate counters that
	// make Accepted O(1). failed marks nodes whose last repair crashed every
	// attempt; they hold verdict No but are counted separately (a failure is
	// neither an accept nor a reject, mirroring Outcome.Errs).
	verdicts []Verdict
	failed   []bool
	rejects  int
	nfailed  int
	errs     map[int]VerdictError

	// Dirty-set scratch: epoch-stamped membership plus the node list, reused
	// across updates.
	mark  []uint64
	epoch uint64
	dirty []int

	// Repair result buffers, committed single-threaded after the sweep.
	res []Verdict
	ok  []bool

	// gen is the graph generation the verdict table corresponds to; a
	// mismatch at the next update means the host was mutated behind the
	// session's back.
	gen uint64

	inserted int
	updates  int
}

// NewIncremental opens a session on l, runs the initial full evaluation with
// the configured scheduler pipeline, and returns the resident session.
// Validation failures and empty instances return an error, matching Eval's
// Outcome.Err conditions.
func NewIncremental(dec Decider, l *graph.Labeled, opts Options) (*Incremental, error) {
	opts.EarlyExit = false
	opts.Ctx = nil
	j, err := newJob(dec, l, nil, opts)
	if err != nil {
		return nil, err
	}
	if j.n == 0 {
		return nil, ErrEmptyInstance
	}
	inc := &Incremental{
		dec:      dec,
		l:        l,
		opts:     opts,
		n:        j.n,
		j:        j,
		trav:     graph.NewTraversal(),
		verdicts: make([]Verdict, j.n),
		failed:   make([]bool, j.n),
		mark:     make([]uint64, j.n),
		gen:      l.G.Generation(),
	}
	inc.j.stats.Scheduler = "incremental(" + inc.schedulerName() + ")"
	// Convert the host to its dynamic representation now, while the O(n)
	// initial evaluation dominates anyway. Left to the lazy conversion in
	// ApplyUpdate, the first update of the session would pay a hidden O(n+m)
	// — an order-of-magnitude outlier in an otherwise O(dirty) stream.
	l.G.BeginUpdates()
	// The initial evaluation is a repair of everything: all-Yes with zero
	// rejects is the fixed point the commit deltas start from.
	for v := range inc.verdicts {
		inc.verdicts[v] = Yes
	}
	inc.beginDirty()
	for v := 0; v < inc.n; v++ {
		inc.dirty = append(inc.dirty, v)
	}
	inc.repair()
	return inc, nil
}

// MustNewIncremental is NewIncremental panicking on error.
func MustNewIncremental(dec Decider, l *graph.Labeled, opts Options) *Incremental {
	inc, err := NewIncremental(dec, l, opts)
	if err != nil {
		panic(err)
	}
	return inc
}

// ApplyEdge applies one edge update and repairs the affected balls. It
// returns the number of dirty nodes re-decided (0 when the update was a
// structural no-op: inserting a present edge or removing an absent one).
// Self-loops and out-of-range endpoints panic, matching graph.ApplyUpdate.
func (inc *Incremental) ApplyEdge(u, v int, add bool) int {
	inc.checkGen()
	inc.beginDirty()
	inc.collectOp(u, v, add)
	inc.gen = inc.l.G.Generation()
	inc.repair()
	inc.updates++
	return len(inc.dirty)
}

// ApplyUpdates applies a batch of edge updates in order and repairs the
// union of their dirty balls in one sweep (re-deciding is idempotent, so one
// repair against the final graph covers every intermediate state). It
// returns the number of dirty nodes re-decided.
func (inc *Incremental) ApplyUpdates(ops []EdgeOp) int {
	inc.checkGen()
	inc.beginDirty()
	for _, op := range ops {
		inc.collectOp(op.U, op.V, op.Add)
	}
	inc.gen = inc.l.G.Generation()
	inc.repair()
	inc.updates += len(ops)
	return len(inc.dirty)
}

// ApplyLabel sets node v's label and repairs the radius-t ball around it.
// It returns the number of dirty nodes re-decided.
func (inc *Incremental) ApplyLabel(v int, lab graph.Label) int {
	inc.checkGen()
	inc.l.Labels[v] = lab
	inc.beginDirty()
	inc.collectBall(v)
	inc.repair()
	inc.updates++
	return len(inc.dirty)
}

// InvalidateLabels repairs the balls around nodes whose labels were already
// rewritten in place by an external actor — the fault layer's corruption and
// heal steps mutate l.Labels directly. It returns the number of dirty nodes
// re-decided. Only label changes may be signalled this way; structural
// changes must go through ApplyEdge.
func (inc *Incremental) InvalidateLabels(nodes []int) int {
	inc.checkGen()
	inc.beginDirty()
	for _, v := range nodes {
		inc.collectBall(v)
	}
	inc.repair()
	inc.updates++
	return len(inc.dirty)
}

// Accepted reports the aggregate outcome in O(1): every node currently says
// Yes and no node is in a failed state.
func (inc *Incremental) Accepted() bool {
	return inc.rejects == 0 && inc.nfailed == 0
}

// Rejects returns the number of nodes currently saying No (failed nodes are
// counted separately; see Failed).
func (inc *Incremental) Rejects() int { return inc.rejects }

// Failed returns the number of nodes whose last repair failed every decide
// attempt.
func (inc *Incremental) Failed() int { return inc.nfailed }

// Verdict returns node v's current verdict.
func (inc *Incremental) Verdict(v int) Verdict {
	if v < 0 || v >= inc.n {
		panic(fmt.Sprintf("engine: node %d out of range [0,%d)", v, inc.n))
	}
	return inc.verdicts[v]
}

// Verdicts returns the resident per-node verdict table. The slice is owned
// by the session and must not be modified; it is updated in place by
// subsequent Apply calls.
func (inc *Incremental) Verdicts() []Verdict { return inc.verdicts }

// LastDirty returns the dirty set of the most recent update: the nodes whose
// balls the update touched and that were therefore re-decided. The slice is
// session-owned scratch, valid until the next Apply call.
func (inc *Incremental) LastDirty() []int { return inc.dirty }

// Updates returns the number of Apply calls processed (ApplyUpdates counts
// each op).
func (inc *Incremental) Updates() int { return inc.updates }

// Stats returns the session's cumulative cost accounting: decider
// invocations, cache hits and crash/retry counts summed over the initial
// evaluation and every repair since.
func (inc *Incremental) Stats() Stats {
	stats := inc.j.stats
	stats.EarlyExit = false
	inc.finishStats(&stats)
	return stats
}

// Outcome assembles a from-scratch-shaped Outcome from the resident state:
// per-node verdicts (copied), aggregate acceptance, and the current per-node
// failures sorted by node — field-compatible with Eval's Outcome so
// differential harnesses compare them directly.
func (inc *Incremental) Outcome() Outcome {
	out := Outcome{
		Verdicts: append([]Verdict(nil), inc.verdicts...),
		Accepted: inc.Accepted(),
		Stats:    inc.Stats(),
	}
	if len(inc.errs) > 0 {
		out.Errs = make([]VerdictError, 0, len(inc.errs))
		for _, e := range inc.errs {
			out.Errs = append(out.Errs, e)
		}
		sortVerdictErrors(out.Errs)
		out.Err = fmt.Errorf("engine: %d node(s) failed all %d attempt(s); first: %w",
			len(out.Errs), inc.j.maxAttempts, out.Errs[0])
	}
	return out
}

// checkGen panics when the host graph was mutated outside the session —
// the verdict table would silently desynchronise otherwise.
func (inc *Incremental) checkGen() {
	if g := inc.l.G.Generation(); g != inc.gen {
		panic(fmt.Sprintf("engine: incremental session's graph mutated externally (generation %d, session at %d); all mutations must go through ApplyEdge/ApplyLabel", g, inc.gen))
	}
}

// beginDirty starts a fresh dirty set (one counter increment; membership is
// epoch-stamped like the Traversal scratch).
func (inc *Incremental) beginDirty() {
	inc.epoch++
	inc.dirty = inc.dirty[:0]
}

// collectOp applies one edge update to the host and collects its dirty
// balls at the side of the update where they are sound: after an insertion,
// before a removal.
func (inc *Incremental) collectOp(u, v int, add bool) {
	g := inc.l.G
	if add {
		if !g.ApplyUpdate(u, v, true) {
			return
		}
		inc.collectBall(u)
		inc.collectBall(v)
		return
	}
	if !g.HasEdge(u, v) {
		// Check first: collecting balls for a structural no-op would
		// re-decide nodes no update affected.
		return
	}
	inc.collectBall(u)
	inc.collectBall(v)
	g.ApplyUpdate(u, v, false)
}

// collectBall unions the radius-t ball around v into the dirty set.
func (inc *Incremental) collectBall(v int) {
	for _, w := range inc.trav.Ball(inc.l.G, v, inc.dec.Horizon) {
		if inc.mark[w] != inc.epoch {
			inc.mark[w] = inc.epoch
			inc.dirty = append(inc.dirty, w)
		}
	}
}

// repair re-decides every node in the dirty set against the current graph
// through the guarded evalNode pipeline (extraction, cache, retry), then
// commits the verdict deltas into the resident table single-threaded.
func (inc *Incremental) repair() {
	k := len(inc.dirty)
	if k == 0 {
		return
	}
	if cap(inc.res) < k {
		inc.res = make([]Verdict, k)
		inc.ok = make([]bool, k)
	}
	res, oks := inc.res[:k], inc.ok[:k]

	workers := inc.repairWorkers(k)
	if workers > inc.j.stats.Workers {
		// Stats.Workers reports the session's high-water pool size: repairs
		// pick their own width per dirty set.
		inc.j.stats.Workers = workers
	}
	if workers <= 1 {
		x := inc.extractor(0)
		for i, v := range inc.dirty {
			res[i], oks[i] = inc.j.evalNode(x, v,
				&inc.j.stats.Evaluated, &inc.j.stats.DedupHits, &inc.inserted,
				&inc.j.stats.Crashes, &inc.j.stats.Retries)
		}
	} else {
		for w := 0; w < workers; w++ {
			inc.extractor(w) // bind before launch; extractor() is not goroutine-safe
		}
		var (
			next atomic.Int64
			mu   sync.Mutex
			wg   sync.WaitGroup
		)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func(x *graph.ViewExtractor) {
				defer wg.Done()
				evaluated, hits, ins, crashes, retries := 0, 0, 0, 0, 0
				for {
					i := int(next.Add(1)) - 1
					if i >= k {
						break
					}
					res[i], oks[i] = inc.j.evalNode(x, inc.dirty[i],
						&evaluated, &hits, &ins, &crashes, &retries)
				}
				mu.Lock()
				inc.j.stats.Evaluated += evaluated
				inc.j.stats.DedupHits += hits
				inc.j.stats.Crashes += crashes
				inc.j.stats.Retries += retries
				inc.inserted += ins
				mu.Unlock()
			}(inc.xs[w])
		}
		wg.Wait()
	}

	for i, v := range inc.dirty {
		inc.commit(v, res[i], oks[i])
	}
	inc.drainErrs()
}

// commit replaces node v's resident verdict, maintaining the aggregate
// counters by delta.
func (inc *Incremental) commit(v int, verdict Verdict, ok bool) {
	if inc.failed[v] {
		inc.failed[v] = false
		inc.nfailed--
	} else if inc.verdicts[v] == No {
		inc.rejects--
	}
	if !ok {
		// All attempts crashed: neither an accept nor a reject. The verdict
		// slot holds No to match what a from-scratch sweep leaves there.
		inc.verdicts[v] = No
		inc.failed[v] = true
		inc.nfailed++
		return
	}
	inc.verdicts[v] = verdict
	if verdict == No {
		inc.rejects++
	}
	if _, was := inc.errs[v]; was {
		delete(inc.errs, v)
	}
}

// drainErrs moves the sweep's recorded failures into the per-node error map
// (the resident analogue of Outcome.Errs).
func (inc *Incremental) drainErrs() {
	if len(inc.j.errs) == 0 {
		return
	}
	if inc.errs == nil {
		inc.errs = make(map[int]VerdictError, len(inc.j.errs))
	}
	for _, e := range inc.j.errs {
		inc.errs[e.Node] = e
	}
	inc.j.errs = inc.j.errs[:0]
}

// extractor returns worker w's extractor, rebound to the host's current
// generation (Reset is O(1): the scratch arrays persist).
func (inc *Incremental) extractor(w int) *graph.ViewExtractor {
	for len(inc.xs) <= w {
		inc.xs = append(inc.xs, graph.NewViewExtractor(inc.l))
	}
	x := inc.xs[w]
	x.Reset(inc.l)
	return x
}

// repairWorkers picks the sweep's worker count from the configured
// scheduler: sharded repairs use its pool (capped at the dirty count),
// everything else — including MessagePassing, whose flooding runtime is
// whole-instance by construction — repairs sequentially. Sub-threshold
// sweeps run inline like the sharded scheduler does.
func (inc *Incremental) repairWorkers(k int) int {
	s, ok := inc.opts.Scheduler.(shardedScheduler)
	if !ok || k < shardedMinNodes {
		return 1
	}
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	return workers
}

// schedulerName names the configured repair backend for stats.
func (inc *Incremental) schedulerName() string {
	if inc.opts.Scheduler == nil {
		return Sequential.Name()
	}
	if _, ok := inc.opts.Scheduler.(shardedScheduler); !ok {
		return Sequential.Name()
	}
	return inc.opts.Scheduler.Name()
}

// finishStats fills the cache-side fields of a stats snapshot.
func (inc *Incremental) finishStats(stats *Stats) {
	if inc.j.cache == nil {
		return
	}
	stats.DistinctViews = inc.inserted
	stats.CacheSize = inc.j.cache.Len()
	stats.CacheShared = inc.j.shared
}
