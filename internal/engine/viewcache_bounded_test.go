package engine

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// codeFor fabricates a distinct canonical code for test churn.
func codeFor(i int) graph.Code {
	b := make([]byte, 24)
	binary.LittleEndian.PutUint64(b, uint64(i))
	copy(b[8:], "bounded-churn-pad")
	return graph.Code{Fingerprint: graph.Fingerprint(b), Bytes: b}
}

// TestBoundedCacheNeverExceedsCapacity is the concurrent-churn contract of
// the bounded cache (run it under -race): N goroutines insert distinct codes
// far past capacity while a sampler thread reads Stats(); the accounted
// bytes must never exceed the configured capacity — during churn, not just
// at rest — and the final counters must reconcile (every lookup is a hit or
// a miss, evictions happened, live entries fit the budget).
func TestBoundedCacheNeverExceedsCapacity(t *testing.T) {
	const capBytes = 64 * 1024
	const goroutines = 8
	const perG = 4000
	c := NewBoundedViewCache(capBytes)

	var stop atomic.Bool
	var samples atomic.Int64
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		for !stop.Load() {
			st := c.Stats()
			if st.Bytes > st.Capacity {
				t.Errorf("mid-churn: accounted bytes %d exceed capacity %d", st.Bytes, st.Capacity)
				return
			}
			samples.Add(1)
		}
	}()

	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				code := codeFor(g*perG + i)
				verdict := Verdict(i%2 == 0)
				got, _, _ := c.lookupOrCompute("churn", 1, code, func() Verdict { return verdict })
				if got != verdict {
					t.Errorf("wrong verdict for code %d", g*perG+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	stop.Store(true)
	<-samplerDone

	st := c.Stats()
	if st.Bytes > st.Capacity {
		t.Fatalf("final: accounted bytes %d exceed capacity %d", st.Bytes, st.Capacity)
	}
	const ops = goroutines * perG
	if st.Hits+st.Misses != ops {
		t.Fatalf("hits %d + misses %d != %d lookups", st.Hits, st.Misses, ops)
	}
	if st.Evictions == 0 {
		t.Fatal("churn past capacity must evict")
	}
	if st.Rejects != 0 {
		t.Fatalf("clean churn must not trip the integrity guard: rejects=%d", st.Rejects)
	}
	// Live entries (all canonical here) must fit the budget entry-wise too.
	if int64(st.Entries)*entryBytes(cacheKey{decider: "churn"}, codeFor(0).Bytes) > st.Capacity+cacheShardCount*entryBytes(cacheKey{decider: "churn"}, codeFor(0).Bytes) {
		t.Fatalf("implausible live entry count %d for capacity %d", st.Entries, st.Capacity)
	}
	if samples.Load() == 0 {
		t.Fatal("sampler never ran")
	}
}

// TestBoundedCacheEvictionRecompute: an evicted verdict is recomputed on the
// next lookup — eviction degrades to a miss, never to a wrong or missing
// verdict.
func TestBoundedCacheEvictionRecompute(t *testing.T) {
	// A deliberately tiny cache: room for only a handful of entries.
	c := NewBoundedViewCache(cacheShardCount * 256)
	first := codeFor(0)
	c.lookupOrCompute("d", 1, first, func() Verdict { return Yes })
	// Churn far past capacity so the first entry is eventually evicted.
	for i := 1; i < 5000; i++ {
		c.lookupOrCompute("d", 1, codeFor(i), func() Verdict { return No })
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("churn must evict")
	}
	recomputed := false
	v, _, _ := c.lookupOrCompute("d", 1, first, func() Verdict { recomputed = true; return Yes })
	if v != Yes {
		t.Fatalf("verdict after eviction: got %v", v)
	}
	if !recomputed {
		// Not strictly impossible (the entry may have survived), but with
		// 5000 same-shard-size inserts into ~2 entries/shard it would mean
		// eviction never touched it — which the CLOCK must not guarantee.
		t.Log("first entry survived churn; CLOCK kept it resident")
	}
}

// TestBoundedCacheClockKeepsHotEntry: an entry hit between every cold
// insert carries a set reference bit whenever the CLOCK hand passes, so
// sustained churn evicts the cold entries around it and the hot verdict
// stays resident — the recency property segmented-LRU/CLOCK buys over FIFO.
func TestBoundedCacheClockKeepsHotEntry(t *testing.T) {
	c := NewBoundedViewCache(cacheShardCount * 512)
	hot := codeFor(1 << 20)
	c.lookupOrCompute("d", 1, hot, func() Verdict { return Yes })
	for i := 0; i < 3000; i++ {
		c.lookupOrCompute("d", 1, codeFor(i), func() Verdict { return No })
		// Re-touch the hot entry: sets its reference bit.
		if v, computed, _ := c.lookupOrCompute("d", 1, hot, func() Verdict { return Yes }); v != Yes || computed {
			t.Fatalf("hot entry evicted at churn step %d (computed=%v)", i, computed)
		}
	}
	if c.Stats().Evictions == 0 {
		t.Fatal("cold churn must evict")
	}
}

// TestBoundedCacheOversizedEntryDeclined: an entry larger than a whole
// shard's budget is decided directly (stored=false) instead of wedging the
// CLOCK into a full-rotation failure.
func TestBoundedCacheOversizedEntryDeclined(t *testing.T) {
	c := NewBoundedViewCache(cacheShardCount * 128)
	big := make([]byte, 4096)
	code := graph.Code{Fingerprint: graph.Fingerprint(big), Bytes: big}
	v, computed, stored := c.lookupOrCompute("d", 1, code, func() Verdict { return Yes })
	if v != Yes || !computed || stored {
		t.Fatalf("oversized entry: got (%v, %v, %v), want (Yes, true, false)", v, computed, stored)
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("oversized entry leaked accounting: %+v", st)
	}
}

// TestBoundedCacheInsertWarmup pins the store-recovery warm-up path: Insert
// records an external verdict exactly once, never echoes into the persist
// hook, and serves subsequent lookups without recompute.
func TestBoundedCacheInsertWarmup(t *testing.T) {
	c := NewBoundedViewCache(1 << 20)
	persisted := 0
	c.SetPersist(func(decider string, horizon int, code []byte, verdict Verdict) { persisted++ })
	code := codeFor(7)
	if !c.Insert("d", 3, code.Bytes, Yes) {
		t.Fatal("fresh Insert must store")
	}
	if c.Insert("d", 3, code.Bytes, Yes) {
		t.Fatal("duplicate Insert must decline")
	}
	if persisted != 0 {
		t.Fatalf("Insert must not invoke the persist hook, got %d calls", persisted)
	}
	v, computed, _ := c.lookupOrCompute("d", 3, code, func() Verdict { t.Fatal("recompute"); return No })
	if v != Yes || computed {
		t.Fatalf("warmed entry not served: (%v, %v)", v, computed)
	}
	// A genuinely fresh insert through the lookup path does persist.
	c.lookupOrCompute("d", 3, codeFor(8), func() Verdict { return No })
	if persisted != 1 {
		t.Fatalf("persist hook calls = %d, want 1", persisted)
	}
}

// periodicCycleFamily is the hit-rate workload: cycles whose labels repeat
// with a short period, so each member contributes a handful of distinct
// views that recur across every sweep — the steady-state regime a resident
// service's cache lives in.
func periodicCycleFamily() []*graph.Labeled {
	alphabet := []graph.Label{"a", "b", "c"}
	family := make([]*graph.Labeled, 0, 4)
	for f, n := range []int{64, 96, 128, 160} {
		g := graph.Cycle(n)
		labels := make([]graph.Label, n)
		for i := range labels {
			// A per-member pattern: same period, different letter sequence,
			// so members share nothing and the working set is the union.
			labels[i] = alphabet[(i+(f+1)*(i%8))%3]
		}
		family = append(family, graph.NewLabeled(g, labels))
	}
	return family
}

// sweepHitRate runs rounds of full-family evaluations against cache and
// returns the cache hit rate over the measured rounds (warm-up excluded).
func sweepHitRate(tb testing.TB, cache *ViewCache, rounds int) float64 {
	tb.Helper()
	family := periodicCycleFamily()
	dec := degreeAtMost(2)
	run := func() {
		for _, l := range family {
			out := EvalOblivious(dec, l, Options{Cache: cache})
			if out.Err != nil {
				tb.Fatalf("sweep failed: %v", out.Err)
			}
		}
	}
	run() // warm-up: cold misses belong to no regime
	before := cache.Stats()
	for r := 0; r < rounds; r++ {
		run()
	}
	after := cache.Stats()
	hits := after.Hits - before.Hits
	misses := after.Misses - before.Misses
	if hits+misses == 0 {
		tb.Fatal("no lookups measured")
	}
	return float64(hits) / float64(hits+misses)
}

// TestBoundedCacheHitRateRetention is the steady-state guarantee the CI
// benchgate also pins: on the periodic-cycle family, a bounded cache sized
// for the working set retains at least 95% of the unbounded cache's hit
// rate. (The CI gate measures the same contract through
// BenchmarkBoundedCacheHitRate so regressions show up as artifacts too.)
func TestBoundedCacheHitRateRetention(t *testing.T) {
	unbounded := sweepHitRate(t, NewViewCache(), 10)
	bounded := sweepHitRate(t, NewBoundedViewCache(boundedHitRateCapBytes), 10)
	if unbounded == 0 {
		t.Fatal("unbounded sweep produced no hits; workload broken")
	}
	if ratio := bounded / unbounded; ratio < 0.95 {
		t.Fatalf("bounded cache retains only %.3f of the unbounded hit rate (%.4f vs %.4f)",
			ratio, bounded, unbounded)
	}
}

// boundedHitRateCapBytes sizes the bounded arm of the hit-rate contract: a
// few hundred KiB — far below what an unbounded cache accumulates across a
// long service life, comfortably above the periodic family's working set.
const boundedHitRateCapBytes = 256 * 1024
