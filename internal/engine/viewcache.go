package engine

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// ViewCache is the engine's sharded, concurrency-safe verdict cache: one
// verdict per distinct canonical view code per (decider name, horizon). The
// engine creates a private one per evaluation when Options.Dedup is set; a
// caller that evaluates a family of instances (experiment sweeps, repeated
// localsim runs, the halting instance family) can create one ViewCache and
// pass it through Options.Cache so later evaluations reuse verdicts decided
// in earlier ones — structured instance families share most of their views.
//
// Keys are the 64-bit fingerprint of the view's canonical code; the full
// byte code is stored alongside the verdict and compared on every lookup, so
// a fingerprint collision degrades to an extra comparison, never to a wrong
// verdict. Shards are selected by fingerprint, giving lock-striped access
// with a single critical section per lookup-or-insert (the fix for the
// seed-era double lock acquisition per miss).
//
// A cache built with NewBoundedViewCache additionally carries a byte budget:
// every entry is byte-accounted (code bytes + decider name + a fixed
// per-entry overhead) and a per-shard CLOCK sweep evicts cold entries to
// admit new ones, so a resident service can keep one cache alive for weeks
// without unbounded growth. Eviction is an accelerator decision, never a
// soundness one — an evicted verdict is recomputed on the next miss.
//
// Soundness: sharing a verdict across evaluations assumes (a) the decider is
// a deterministic function of the view's isomorphism class — the LOCAL
// model's contract for Id-oblivious deciders — and (b) a decider name
// uniquely identifies one decide function for the cache's lifetime. The
// engine enforces the conditions it can see (identifier-carrying and
// randomized evaluations never touch the cache); the naming discipline is
// the caller's.
type ViewCache struct {
	shards [cacheShardCount]cacheShard

	// bounded/capShard carry the byte budget: capShard is the per-shard
	// slice of the total capacity handed to NewBoundedViewCache. An
	// unbounded cache (NewViewCache) keeps the historical per-shard entry
	// cap instead.
	bounded  bool
	capShard int64

	// persist, when set, is invoked after each canonical-layer insert —
	// the write-behind hook the persistent verdict store attaches to. See
	// SetPersist.
	persist PersistFunc

	// hits/misses/rejects/evictions are the observability counters behind
	// Stats(): verdicts served from the cache, verdicts the cache had to
	// compute, entries discarded by the integrity guard, and entries
	// evicted by the capacity CLOCK. Atomic so readers never block the
	// striped shard locks.
	hits      atomic.Int64
	misses    atomic.Int64
	rejects   atomic.Int64
	evictions atomic.Int64
}

// PersistFunc is the write-behind persistence hook: called once per fresh
// canonical verdict insert with the cache-owned copy of the code bytes. The
// callee must treat code as read-only and MUST NOT block — the hook runs on
// the eval hot path (outside the shard lock); a persistent store enqueues to
// a bounded queue and drops on overflow rather than stalling evaluation.
type PersistFunc func(decider string, horizon int, code []byte, verdict Verdict)

// SetPersist attaches the write-behind persistence hook. It must be called
// before the cache is shared across goroutines (wire-up time, not serving
// time); raw-layer entries are process-local accelerators and are never
// persisted.
func (c *ViewCache) SetPersist(fn PersistFunc) { c.persist = fn }

// CacheStats is a point-in-time snapshot of a ViewCache's counters.
type CacheStats struct {
	// Hits counts lookups served from the cache (raw or canonical layer).
	Hits int64
	// Misses counts lookups that had to compute the verdict.
	Misses int64
	// Rejects counts entries discarded by the integrity guard: stored code
	// bytes that no longer hash to their bucket fingerprint (corruption).
	// Each reject degrades to a miss, never to a wrong verdict.
	Rejects int64
	// Evictions counts entries (canonical and raw) evicted by the byte-
	// capacity CLOCK of a bounded cache. Always 0 for unbounded caches.
	Evictions int64
	// Entries is the cache's canonical-verdict entry count (Len).
	Entries int
	// RawEntries is the first-level raw-structure entry count (an
	// accelerator layer, not counted by Len).
	RawEntries int
	// Bytes is the accounted size of all live entries (code bytes +
	// decider names + fixed per-entry overhead) across both layers.
	Bytes int64
	// Capacity is the cache's total byte budget; 0 means unbounded.
	Capacity int64
}

// Stats snapshots the cache's counters, entry counts and byte accounting.
// The counters accumulate across every evaluation sharing the cache;
// resident services (cmd/decided's /statsz, localsim -summary) read them for
// observability.
func (c *ViewCache) Stats() CacheStats {
	st := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Rejects:   c.rejects.Load(),
		Evictions: c.evictions.Load(),
	}
	if c.bounded {
		st.Capacity = c.capShard * cacheShardCount
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += s.entries
		st.RawEntries += s.rawEntries
		st.Bytes += s.bytes
		s.mu.Unlock()
	}
	return st
}

// cacheShardCount is a power of two so shard selection is a mask. 64 shards
// keep worker collisions rare at any plausible GOMAXPROCS.
const cacheShardCount = 64

// cacheShardMaxEntries bounds each shard of an UNBOUNDED cache. A full shard
// serves hits but declines inserts (callers decide directly) — the cache
// silently degrades rather than growing without bound across long sweeps.
// Bounded caches replace this entry cap with the byte-accounted CLOCK.
const cacheShardMaxEntries = 1 << 15

// entryOverheadBytes is the fixed accounting charge per cache entry on top
// of its variable bytes (code + decider name): the entry struct, its slot,
// the index int32 and amortised map bucket space. A round number chosen to
// over- rather than under-estimate, so the configured capacity bounds true
// memory growth.
const entryOverheadBytes = 96

// cacheShard is one lock stripe. The two maps are the two storage layouts —
// exactly one is non-nil, fixed at construction. Unbounded caches (the
// engine's default Dedup path) store entries inline in mi: the lean layout
// with no indirection on the hot lookup. Bounded caches store slot indices
// in m over the slots arena: the arena gives the CLOCK eviction sweep a flat
// iteration target (map iteration order is neither stable nor resumable) and
// recycles slots through a free list so steady-state eviction allocates
// nothing.
type cacheShard struct {
	mu    sync.Mutex
	mi    map[cacheKey][]cacheEntry // unbounded layout: entries inline
	m     map[cacheKey][]int32      // bounded layout: indices into slots
	slots []cacheEntry
	free  []int32
	hand  int   // CLOCK hand: next slot the eviction sweep examines
	bytes int64 // accounted bytes of all live entries
	// entries counts live canonical entries; rawEntries counts first-level
	// raw-structure entries, capped separately in unbounded mode so the
	// raw layer can never crowd out canonical verdicts (or vice versa).
	// Raw entries are an accelerator: not reported by Len.
	entries    int
	rawEntries int
}

// cacheKey scopes a verdict to one decider and horizon, so one cache can be
// shared across different deciders and radii without cross-talk. raw marks
// the first-level raw-structure namespace: raw codes and canonical codes are
// different encodings of different equivalence relations, so their entries
// must never be compared against each other even under a fingerprint
// collision.
type cacheKey struct {
	decider string
	horizon int
	fp      uint64
	raw     bool
}

// cacheEntry is one cached verdict — stored inline in mi (unbounded) or as
// a slot of the shard's arena (bounded). key/live/ref are arena-only and
// stay zero inline: live distinguishes occupied slots from free-listed
// ones; ref is the CLOCK reference bit, set on every hit and cleared by the
// sweep, so an entry survives one full hand rotation after its last hit
// before becoming an eviction candidate.
type cacheEntry struct {
	key     cacheKey
	code    []byte // full code bytes (canonical or raw): collision verification
	sum     uint64 // hash of code at insert time: the integrity guard's reference
	verdict Verdict
	live    bool
	ref     bool
}

// entryBytes is the accounting size of an entry under a key.
func entryBytes(key cacheKey, code []byte) int64 {
	return int64(len(code)) + int64(len(key.decider)) + entryOverheadBytes
}

// NewViewCache returns an empty unbounded cache ready for concurrent use
// (per-shard entry count still capped, as always, so it cannot grow without
// limit — but nothing is ever evicted). Unbounded shards store entries
// inline in the map — the lean layout the default Dedup path has always
// had; only bounded caches pay for the slot arena the CLOCK sweep needs.
func NewViewCache() *ViewCache {
	c := &ViewCache{}
	for i := range c.shards {
		c.shards[i].mi = make(map[cacheKey][]cacheEntry)
	}
	return c
}

// NewBoundedViewCache returns an empty cache with a total byte budget:
// entries are byte-accounted and a per-shard CLOCK sweep evicts cold entries
// once the budget is reached, so the accounted size never exceeds capBytes.
// The budget is split evenly across the 64 shards; a capBytes smaller than
// 64 × one entry's footprint admits nothing (correct, if useless). A
// capBytes <= 0 panics — use NewViewCache for an unbounded cache.
func NewBoundedViewCache(capBytes int64) *ViewCache {
	if capBytes <= 0 {
		panic("engine: NewBoundedViewCache needs a positive byte capacity")
	}
	c := &ViewCache{bounded: true, capShard: capBytes / cacheShardCount}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey][]int32)
	}
	return c
}

// Len returns the total number of cached canonical verdicts across all
// shards.
func (c *ViewCache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.entries
		s.mu.Unlock()
	}
	return total
}

// shardFor selects the lock stripe of a fingerprint.
func (c *ViewCache) shardFor(fp uint64) *cacheShard {
	return &c.shards[fp&(cacheShardCount-1)]
}

// findVerified scans the key's entries for an exact byte match, evicting any
// entry whose stored bytes no longer hash to their recorded sum (the
// integrity guard: a corrupted entry becomes a counted reject and a
// recompute, never a poisoned verdict). In the bounded layout a match sets
// the CLOCK reference bit. Callers hold the shard lock.
func (c *ViewCache) findVerified(s *cacheShard, key cacheKey, code []byte) (Verdict, bool) {
	if !c.bounded {
		return c.findVerifiedInline(s, key, code)
	}
	idxs := s.m[key]
	for i := 0; i < len(idxs); {
		e := &s.slots[idxs[i]]
		if graph.Fingerprint(e.code) != e.sum {
			c.dropAt(s, key, i)
			idxs = s.m[key]
			c.rejects.Add(1)
			continue
		}
		if bytes.Equal(e.code, code) {
			e.ref = true
			return e.verdict, true
		}
		i++
	}
	return No, false
}

// findVerifiedInline is findVerified over the unbounded inline layout:
// corrupt entries are swap-deleted from the map slice directly, and the
// slice is written back only when something was culled — the hit path
// touches the map once.
func (c *ViewCache) findVerifiedInline(s *cacheShard, key cacheKey, code []byte) (Verdict, bool) {
	entries := s.mi[key]
	verdict, found := No, false
	culled := false
	for i := 0; i < len(entries); {
		e := &entries[i]
		if graph.Fingerprint(e.code) != e.sum {
			s.bytes -= entryBytes(key, e.code)
			if key.raw {
				s.rawEntries--
			} else {
				s.entries--
			}
			entries[i] = entries[len(entries)-1]
			entries = entries[:len(entries)-1]
			culled = true
			c.rejects.Add(1)
			continue
		}
		if bytes.Equal(e.code, code) {
			verdict, found = e.verdict, true
			break
		}
		i++
	}
	if culled {
		if len(entries) == 0 {
			delete(s.mi, key)
		} else {
			s.mi[key] = entries
		}
	}
	return verdict, found
}

// dropAt removes the entry at position pos of key's index slice, releasing
// its slot and its byte accounting. Callers hold the shard lock and count
// the removal (reject or eviction) themselves.
func (c *ViewCache) dropAt(s *cacheShard, key cacheKey, pos int) {
	idxs := s.m[key]
	slot := idxs[pos]
	idxs[pos] = idxs[len(idxs)-1]
	idxs = idxs[:len(idxs)-1]
	if len(idxs) == 0 {
		delete(s.m, key)
	} else {
		s.m[key] = idxs
	}
	e := &s.slots[slot]
	s.bytes -= entryBytes(key, e.code)
	if key.raw {
		s.rawEntries--
	} else {
		s.entries--
	}
	*e = cacheEntry{}
	s.free = append(s.free, slot)
}

// evictSlot is dropAt addressed by slot rather than key position — the CLOCK
// sweep's removal path. Callers hold the shard lock.
func (c *ViewCache) evictSlot(s *cacheShard, slot int32) {
	e := &s.slots[slot]
	for pos, ix := range s.m[e.key] {
		if ix == slot {
			c.dropAt(s, e.key, pos)
			c.evictions.Add(1)
			return
		}
	}
}

// makeRoom decides whether an entry of the given size may be inserted,
// evicting via the CLOCK sweep when the cache is bounded. Unbounded caches
// keep the historical per-shard entry cap. Callers hold the shard lock.
func (c *ViewCache) makeRoom(s *cacheShard, key cacheKey, need int64) bool {
	if !c.bounded {
		if key.raw {
			return s.rawEntries < cacheShardMaxEntries
		}
		return s.entries < cacheShardMaxEntries
	}
	if need > c.capShard {
		return false // larger than a whole shard's budget: decide directly
	}
	// CLOCK: advance the hand, clearing reference bits; evict the first
	// unreferenced live entry, repeating until the new entry fits. Two full
	// rotations suffice (the first clears every bit, the second evicts), so
	// the scan guard below can only fire on accounting corruption.
	scanned, limit := 0, 2*len(s.slots)+2
	for s.bytes+need > c.capShard {
		if s.entries+s.rawEntries == 0 {
			return s.bytes+need <= c.capShard
		}
		if s.hand >= len(s.slots) {
			s.hand = 0
		}
		e := &s.slots[s.hand]
		if e.live {
			if e.ref {
				e.ref = false
			} else {
				c.evictSlot(s, int32(s.hand))
			}
		}
		s.hand++
		if scanned++; scanned > limit {
			return false
		}
	}
	return true
}

// storeEntry inserts an owned entry, assuming makeRoom approved it. Callers
// hold the shard lock.
func (c *ViewCache) storeEntry(s *cacheShard, key cacheKey, owned []byte, verdict Verdict) {
	if !c.bounded {
		s.mi[key] = append(s.mi[key], cacheEntry{
			code:    owned,
			sum:     graph.Fingerprint(owned),
			verdict: verdict,
		})
	} else {
		var slot int32
		if n := len(s.free); n > 0 {
			slot = s.free[n-1]
			s.free = s.free[:n-1]
		} else {
			if len(s.slots) == cap(s.slots) {
				// Grow the arena in explicit steps (min 32 slots) rather than
				// through append's 1→2→4→… chain: entries carry pointers, and
				// re-copying them at every doubling costs write barriers and
				// GC scan work on exactly the cold-sweep path the miss
				// benchmark gates.
				grown := make([]cacheEntry, len(s.slots), max(32, 2*cap(s.slots)))
				copy(grown, s.slots)
				s.slots = grown
			}
			s.slots = append(s.slots, cacheEntry{})
			slot = int32(len(s.slots) - 1)
		}
		s.slots[slot] = cacheEntry{
			key:     key,
			code:    owned,
			sum:     graph.Fingerprint(owned),
			verdict: verdict,
			live:    true,
		}
		s.m[key] = append(s.m[key], slot)
	}
	s.bytes += entryBytes(key, owned)
	if key.raw {
		s.rawEntries++
	} else {
		s.entries++
	}
}

// lookupOrCompute returns the verdict for code under (decider, horizon),
// computing and inserting it on a miss. computed reports whether this call
// ran compute; stored whether the result entered the cache (false when the
// shard declines the insert — entry cap in unbounded mode, an entry larger
// than the shard budget in bounded mode). The whole lookup-or-insert is one
// critical section on the code's shard: on a miss the decider runs under the
// shard lock, which serialises same-shard misses but removes the second lock
// acquisition and the duplicated decide the seed-era cache allowed. In the
// dedup regime misses are rare by construction (that is the regime's point),
// and the fingerprint striping keeps first-run miss storms spread over the
// shards.
//
// code.Bytes is cloned before compute runs: the bytes alias the caller's
// CodeWorkspace, and a decider that computes further codes (benchmarks and
// code-hashing deciders do) rewrites that buffer mid-compute.
func (c *ViewCache) lookupOrCompute(decider string, horizon int, code graph.Code,
	compute func() Verdict) (verdict Verdict, computed, stored bool) {
	s := c.shardFor(code.Fingerprint)
	key := cacheKey{decider: decider, horizon: horizon, fp: code.Fingerprint}
	s.mu.Lock()
	if v, ok := c.findVerified(s, key, code.Bytes); ok {
		s.mu.Unlock()
		c.hits.Add(1)
		return v, false, false
	}
	c.misses.Add(1)
	owned := append([]byte(nil), code.Bytes...)
	if !c.makeRoom(s, key, entryBytes(key, owned)) {
		s.mu.Unlock()
		return compute(), true, false
	}
	verdict = compute()
	c.storeEntry(s, key, owned, verdict)
	s.mu.Unlock()
	if c.persist != nil {
		c.persist(decider, horizon, owned, verdict)
	}
	return verdict, true, true
}

// Insert records an externally computed canonical verdict — the warm-up path
// a persistent store replays recovered records through at startup. It
// reports whether the entry was stored (false when an equal entry already
// exists or the shard declines it). The persistence hook is deliberately NOT
// invoked: records arriving from the store must not echo back into it.
func (c *ViewCache) Insert(decider string, horizon int, code []byte, verdict Verdict) bool {
	fp := graph.Fingerprint(code)
	s := c.shardFor(fp)
	key := cacheKey{decider: decider, horizon: horizon, fp: fp}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := c.findVerified(s, key, code); ok {
		return false
	}
	owned := append([]byte(nil), code...)
	if !c.makeRoom(s, key, entryBytes(key, owned)) {
		return false
	}
	c.storeEntry(s, key, owned, verdict)
	return true
}

// lookupRaw consults the first-level raw-structure layer: verdicts keyed by
// the view's exact extracted byte encoding (graph.View.RawCode). A hit means
// a byte-identical rooted labelled view was decided before — sound because
// byte-identical views are isomorphic a fortiori. Misses are expected for
// views whose structure repeats only up to isomorphism; callers fall back to
// the canonical-code layer.
func (c *ViewCache) lookupRaw(decider string, horizon int, raw graph.Code) (Verdict, bool) {
	s := c.shardFor(raw.Fingerprint)
	key := cacheKey{decider: decider, horizon: horizon, fp: raw.Fingerprint, raw: true}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v, ok := c.findVerified(s, key, raw.Bytes); ok {
		c.hits.Add(1)
		return v, true
	}
	// A raw miss is not counted: the caller falls through to the canonical
	// layer, whose lookup tallies the hit or miss for the whole decision.
	return No, false
}

// storeRaw records a verdict under a view's raw-structure key so future
// byte-identical extractions skip the canonical code entirely. Raw entries
// obey the same capacity regime as canonical ones (entry cap unbounded,
// byte-accounted CLOCK bounded); beyond it the raw layer degrades to a
// pass-through and the canonical layer still serves.
func (c *ViewCache) storeRaw(decider string, horizon int, raw graph.Code, verdict Verdict) {
	s := c.shardFor(raw.Fingerprint)
	key := cacheKey{decider: decider, horizon: horizon, fp: raw.Fingerprint, raw: true}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.bounded {
		for _, ix := range s.m[key] {
			if bytes.Equal(s.slots[ix].code, raw.Bytes) {
				return // another worker stored it first
			}
		}
	} else {
		for i := range s.mi[key] {
			if bytes.Equal(s.mi[key][i].code, raw.Bytes) {
				return // another worker stored it first
			}
		}
	}
	owned := append([]byte(nil), raw.Bytes...)
	if !c.makeRoom(s, key, entryBytes(key, owned)) {
		return
	}
	c.storeEntry(s, key, owned, verdict)
}
