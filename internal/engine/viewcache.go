package engine

import (
	"bytes"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// ViewCache is the engine's sharded, concurrency-safe verdict cache: one
// verdict per distinct canonical view code per (decider name, horizon). The
// engine creates a private one per evaluation when Options.Dedup is set; a
// caller that evaluates a family of instances (experiment sweeps, repeated
// localsim runs, the halting instance family) can create one ViewCache and
// pass it through Options.Cache so later evaluations reuse verdicts decided
// in earlier ones — structured instance families share most of their views.
//
// Keys are the 64-bit fingerprint of the view's canonical code; the full
// byte code is stored alongside the verdict and compared on every lookup, so
// a fingerprint collision degrades to an extra comparison, never to a wrong
// verdict. Shards are selected by fingerprint, giving lock-striped access
// with a single critical section per lookup-or-insert (the fix for the
// seed-era double lock acquisition per miss).
//
// Soundness: sharing a verdict across evaluations assumes (a) the decider is
// a deterministic function of the view's isomorphism class — the LOCAL
// model's contract for Id-oblivious deciders — and (b) a decider name
// uniquely identifies one decide function for the cache's lifetime. The
// engine enforces the conditions it can see (identifier-carrying and
// randomized evaluations never touch the cache); the naming discipline is
// the caller's.
type ViewCache struct {
	shards [cacheShardCount]cacheShard

	// hits/misses/rejects are the observability counters behind Stats():
	// verdicts served from the cache, verdicts the cache had to compute, and
	// entries evicted by the integrity guard. Atomic so readers never block
	// the striped shard locks.
	hits    atomic.Int64
	misses  atomic.Int64
	rejects atomic.Int64
}

// CacheStats is a point-in-time snapshot of a ViewCache's counters.
type CacheStats struct {
	// Hits counts lookups served from the cache (raw or canonical layer).
	Hits int64
	// Misses counts lookups that had to compute the verdict.
	Misses int64
	// Rejects counts entries discarded by the integrity guard: stored code
	// bytes that no longer hash to their bucket fingerprint (corruption).
	// Each reject degrades to a miss, never to a wrong verdict.
	Rejects int64
	// Entries is the cache's canonical-verdict entry count (Len).
	Entries int
}

// Stats snapshots the cache's hit/miss/reject counters and entry count. The
// counters accumulate across every evaluation sharing the cache; resident
// services (and localsim -summary) read them for observability.
func (c *ViewCache) Stats() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Rejects: c.rejects.Load(),
		Entries: c.Len(),
	}
}

// verifyEntries is the integrity guard: it re-hashes every candidate entry's
// stored code bytes against the hash recorded when the entry was inserted and
// evicts entries that fail — a corrupted entry (torn write, stray memory
// corruption, a future persistence layer's bad read) becomes a counted reject
// and a recompute, never a poisoned verdict shared across runs. The recorded
// hash is the entry's own byte hash, not the bucket fingerprint, so genuine
// fingerprint collisions (different bytes, same bucket) verify cleanly.
// Callers hold the shard lock. It returns the surviving entry slice.
func (c *ViewCache) verifyEntries(s *cacheShard, key cacheKey) []cacheEntry {
	entries := s.m[key]
	for i := 0; i < len(entries); {
		if graph.Fingerprint(entries[i].code) != entries[i].sum {
			entries[i] = entries[len(entries)-1]
			entries = entries[:len(entries)-1]
			if key.raw {
				s.rawEntries--
			} else {
				s.entries--
			}
			c.rejects.Add(1)
			continue
		}
		i++
	}
	if len(entries) == 0 {
		delete(s.m, key)
		return nil
	}
	s.m[key] = entries
	return entries
}

// cacheShardCount is a power of two so shard selection is a mask. 64 shards
// keep worker collisions rare at any plausible GOMAXPROCS.
const cacheShardCount = 64

// cacheShardMaxEntries bounds each shard. A full shard serves hits but
// declines inserts (callers decide directly) — the cache silently degrades
// rather than growing without bound across long sweeps.
const cacheShardMaxEntries = 1 << 15

type cacheShard struct {
	mu      sync.Mutex
	m       map[cacheKey][]cacheEntry
	entries int
	// rawEntries counts first-level raw-structure entries, capped separately
	// so the raw layer can never crowd out canonical verdicts (or vice
	// versa). Raw entries are an accelerator: not reported by Len.
	rawEntries int
}

// cacheKey scopes a verdict to one decider and horizon, so one cache can be
// shared across different deciders and radii without cross-talk. raw marks
// the first-level raw-structure namespace: raw codes and canonical codes are
// different encodings of different equivalence relations, so their entries
// must never be compared against each other even under a fingerprint
// collision.
type cacheKey struct {
	decider string
	horizon int
	fp      uint64
	raw     bool
}

type cacheEntry struct {
	code    []byte // full code bytes (canonical or raw): collision verification
	sum     uint64 // hash of code at insert time: the integrity guard's reference
	verdict Verdict
}

// NewViewCache returns an empty cache ready for concurrent use.
func NewViewCache() *ViewCache {
	c := &ViewCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[cacheKey][]cacheEntry)
	}
	return c
}

// Len returns the total number of cached verdicts across all shards.
func (c *ViewCache) Len() int {
	total := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		total += s.entries
		s.mu.Unlock()
	}
	return total
}

// lookupOrCompute returns the verdict for code under (decider, horizon),
// computing and inserting it on a miss. computed reports whether this call
// ran compute; stored whether the result entered the cache (false when the
// shard is at its cap). The whole lookup-or-insert is one critical section
// on the code's shard: on a miss the decider runs under the shard lock,
// which serialises same-shard misses but removes the second lock
// acquisition and the duplicated decide the seed-era cache allowed. In the
// dedup regime misses are rare by construction (that is the regime's
// point), and the fingerprint striping keeps first-run miss storms spread
// over the shards.
//
// code.Bytes is cloned before compute runs: the bytes alias the caller's
// CodeWorkspace, and a decider that computes further codes (benchmarks and
// code-hashing deciders do) rewrites that buffer mid-compute.
func (c *ViewCache) lookupOrCompute(decider string, horizon int, code graph.Code,
	compute func() Verdict) (verdict Verdict, computed, stored bool) {
	s := &c.shards[code.Fingerprint&(cacheShardCount-1)]
	key := cacheKey{decider: decider, horizon: horizon, fp: code.Fingerprint}
	s.mu.Lock()
	for _, e := range c.verifyEntries(s, key) {
		if bytes.Equal(e.code, code.Bytes) {
			verdict = e.verdict
			s.mu.Unlock()
			c.hits.Add(1)
			return verdict, false, false
		}
	}
	c.misses.Add(1)
	if s.entries >= cacheShardMaxEntries {
		s.mu.Unlock()
		return compute(), true, false
	}
	defer s.mu.Unlock()
	owned := append([]byte(nil), code.Bytes...)
	verdict = compute()
	s.m[key] = append(s.m[key], cacheEntry{code: owned, sum: graph.Fingerprint(owned), verdict: verdict})
	s.entries++
	return verdict, true, true
}

// lookupRaw consults the first-level raw-structure layer: verdicts keyed by
// the view's exact extracted byte encoding (graph.View.RawCode). A hit means
// a byte-identical rooted labelled view was decided before — sound because
// byte-identical views are isomorphic a fortiori. Misses are expected for
// views whose structure repeats only up to isomorphism; callers fall back to
// the canonical-code layer.
func (c *ViewCache) lookupRaw(decider string, horizon int, raw graph.Code) (Verdict, bool) {
	s := &c.shards[raw.Fingerprint&(cacheShardCount-1)]
	key := cacheKey{decider: decider, horizon: horizon, fp: raw.Fingerprint, raw: true}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range c.verifyEntries(s, key) {
		if bytes.Equal(e.code, raw.Bytes) {
			c.hits.Add(1)
			return e.verdict, true
		}
	}
	// A raw miss is not counted: the caller falls through to the canonical
	// layer, whose lookup tallies the hit or miss for the whole decision.
	return No, false
}

// storeRaw records a verdict under a view's raw-structure key so future
// byte-identical extractions skip the canonical code entirely. Raw entries
// obey their own per-shard cap; beyond it the raw layer degrades to a
// pass-through and the canonical layer still serves.
func (c *ViewCache) storeRaw(decider string, horizon int, raw graph.Code, verdict Verdict) {
	s := &c.shards[raw.Fingerprint&(cacheShardCount-1)]
	key := cacheKey{decider: decider, horizon: horizon, fp: raw.Fingerprint, raw: true}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rawEntries >= cacheShardMaxEntries {
		return
	}
	for _, e := range s.m[key] {
		if bytes.Equal(e.code, raw.Bytes) {
			return // another worker stored it first
		}
	}
	owned := append([]byte(nil), raw.Bytes...)
	s.m[key] = append(s.m[key], cacheEntry{code: owned, sum: graph.Fingerprint(owned), verdict: verdict})
	s.rawEntries++
}
