package engine

import (
	"testing"
	"time"
)

// TestBackoffDeterministicReplay pins the retry-backoff contract: for fixed
// (base, seed, node, attempt) the duration is a pure function — the property
// that keeps fault-seeded runs replayable sleep for sleep.
func TestBackoffDeterministicReplay(t *testing.T) {
	base := 100 * time.Microsecond
	for node := 0; node < 8; node++ {
		for attempt := 1; attempt < 6; attempt++ {
			a := backoffDuration(base, 42, node, attempt)
			b := backoffDuration(base, 42, node, attempt)
			if a != b {
				t.Fatalf("node %d attempt %d: %v != %v", node, attempt, a, b)
			}
		}
	}
}

// TestBackoffJitterRange: every duration lands in [d/2, d] where d is the
// capped exponential step — jittered enough to spread concurrent retries,
// bounded enough to stay an exponential schedule.
func TestBackoffJitterRange(t *testing.T) {
	base := 100 * time.Microsecond
	for seed := int64(0); seed < 5; seed++ {
		for node := 0; node < 16; node++ {
			for attempt := 1; attempt < 12; attempt++ {
				d := base << uint(attempt-1)
				if d > retryBackoffCap || d < base {
					d = retryBackoffCap
				}
				got := backoffDuration(base, seed, node, attempt)
				if got < d/2 || got > d {
					t.Fatalf("seed %d node %d attempt %d: %v outside [%v, %v]",
						seed, node, attempt, got, d/2, d)
				}
			}
		}
	}
}

// TestBackoffCapped: attempts far past the doubling range sleep at most the
// cap — a persistently crashing decider costs milliseconds per retry, not
// exponentially growing stalls.
func TestBackoffCapped(t *testing.T) {
	for attempt := 1; attempt < 64; attempt++ {
		if got := backoffDuration(time.Millisecond, 7, 3, attempt); got > retryBackoffCap {
			t.Fatalf("attempt %d: %v exceeds cap %v", attempt, got, retryBackoffCap)
		}
	}
	// The shift that used to overflow into negative durations must not: a
	// huge attempt index still yields a positive, capped sleep.
	if got := backoffDuration(time.Millisecond, 7, 3, 200); got <= 0 || got > retryBackoffCap {
		t.Fatalf("attempt 200: %v outside (0, %v]", got, retryBackoffCap)
	}
}

// TestBackoffSpreadsNodes: concurrent retries of distinct nodes draw
// distinct jitter (same seed, same attempt) — no thundering herd in
// crash-burst fault plans.
func TestBackoffSpreadsNodes(t *testing.T) {
	seen := make(map[time.Duration]bool)
	for node := 0; node < 32; node++ {
		seen[backoffDuration(time.Millisecond, 9, node, 1)] = true
	}
	if len(seen) < 16 {
		t.Fatalf("32 nodes drew only %d distinct backoffs", len(seen))
	}
}
