package engine

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/tree"
)

// Benchmarks for the incremental session: the CI-gated incremental-vs-scratch
// pair on the n=10^5 cycle at horizon 16, and the sustained update-absorption
// sweep across graph families (ns/op is the per-update repair cost, so
// updates/sec = 1e9 / ns/op; allocs/op is the steady-state allocation bill of
// a resident session).

// BenchmarkIncrementalVsScratch is the gate pair: one edge toggle absorbed by
// a resident session (dirty-ball repair, ~66 of 10^5 nodes at horizon 16)
// versus a from-scratch re-evaluation of the same instance. Both arms run the
// same decider, scheduler and dynamic graph representation in the same
// artifact, so runner speed cancels; CI demands incremental stay at or below
// 0.1x of scratch per update.
func BenchmarkIncrementalVsScratch(b *testing.B) {
	const n = 100_000
	dec := cheapDecider(16)
	b.Run("cycle100k-r16/incremental", func(b *testing.B) {
		l := graph.UniformlyLabeled(graph.Cycle(n), "c")
		inc := MustNewIncremental(dec, l, Options{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			inc.ApplyEdge(3, n/2, i%2 == 0)
		}
	})
	b.Run("cycle100k-r16/scratch", func(b *testing.B) {
		l := graph.UniformlyLabeled(graph.Cycle(n), "c")
		l.G.BeginUpdates() // same dynamic representation as the session
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l.G.ApplyUpdate(3, n/2, i%2 == 0)
			if out := EvalOblivious(dec, l, Options{}); out.Err != nil {
				b.Fatal(out.Err)
			}
		}
	})
}

// BenchmarkIncrementalUpdates pins sustained absorption of a rotating toggle
// stream per family. The random family runs at horizon 2 with no dedup:
// radius balls blow up fast at expected degree 4, and the near-star views of
// sparse random graphs are the canonical code's factorial worst case.
func BenchmarkIncrementalUpdates(b *testing.B) {
	families := []struct {
		name    string
		host    func() *graph.Graph
		horizon int
	}{
		{"cycle100k-r16", func() *graph.Graph { return graph.Cycle(100_000) }, 16},
		{"pyramid8-r4", func() *graph.Graph { return tree.NewPyramid(8).G }, 4},
		{"random50k-r2", func() *graph.Graph { return graph.Random(50_000, 0.00008, 7) }, 2},
	}
	for _, f := range families {
		b.Run(f.name, func(b *testing.B) {
			host := f.host()
			n := host.N()
			l := graph.UniformlyLabeled(host, "c")
			inc := MustNewIncremental(cheapDecider(f.horizon), l, Options{})
			rng := rand.New(rand.NewSource(1))
			pairs := make([][2]int, 64)
			for i := range pairs {
				u, v := rng.Intn(n), rng.Intn(n)
				for u == v {
					v = rng.Intn(n)
				}
				pairs[i] = [2]int{u, v}
			}
			b.ReportAllocs()
			b.ResetTimer()
			dirty := 0
			for i := 0; i < b.N; i++ {
				p := pairs[i%len(pairs)]
				dirty += inc.ApplyEdge(p[0], p[1], !host.HasEdge(p[0], p[1]))
			}
			b.ReportMetric(float64(dirty)/float64(b.N), "dirty/op")
		})
	}
}
