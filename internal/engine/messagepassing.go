package engine

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file is the operational backend of the engine: one goroutine per
// node, communicating over per-edge channels in synchronous rounds. After t
// rounds of full-information flooding each node has gathered (a superset of)
// its radius-t neighbourhood; the backend then restricts the gathered
// knowledge to the induced ball B(v, t) so the decider receives exactly the
// view (G, x, Id) |> B(v, t) of the functional definition. The parity suite
// pins this backend against the functional ones node for node (experiment
// E13 reports the cost gap). It descends from internal/local's original
// runtime, which now delegates here.
//
// Knowledge is held in flat sorted-row form (the same CSR discipline as the
// extractor arena), not per-node maps: a node's picture of the network is a
// strictly-ascending list of known node addresses with parallel label/id
// columns and one full host adjacency row per known node. Two pictures merge
// with a single two-pointer sweep over the flat arrays, and each goroutine
// merges into a double buffer, so the steady state allocates only the
// per-round immutable snapshot it must publish to its neighbours.

// knowledge is a node's accumulated picture of the network, keyed by the
// runtime's hidden node addresses (never exposed to deciders), in flat
// sorted-row form.
//
// Invariant: nodes is strictly ascending and nbrs holds, for each known
// node, its complete host adjacency row — a node only becomes known through
// a snapshot chain rooted at that node, which carries its full row. Rows may
// reference nodes that are not (yet) known; assembleView filters them.
type knowledge struct {
	nodes   []int32       // known node addresses, strictly ascending
	offsets []int32       // len(nodes)+1; row i spans nbrs[offsets[i]:offsets[i+1]]
	nbrs    []int32       // full host rows of the known nodes (host addresses)
	labels  []graph.Label // labels[i] labels nodes[i]
	ids     []int         // ids[i] identifies nodes[i]
}

// size is the knowledge-unit count reported in Stats (known nodes).
func (k *knowledge) size() int { return len(k.nodes) }

// lookupKnown binary-searches the ascending known-node column.
func lookupKnown(nodes []int32, v int32) (int, bool) {
	lo, hi := 0, len(nodes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nodes[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(nodes) && nodes[lo] == v {
		return lo, true
	}
	return lo, false
}

// mergeKnowledge writes the union of a and b into dst, reusing dst's
// buffers. Rows of a node known to both sides are identical by the
// knowledge invariant, so the union is a plain two-pointer merge of the
// parallel columns — no per-row set arithmetic.
func mergeKnowledge(dst, a, b *knowledge) {
	dst.nodes = dst.nodes[:0]
	dst.labels = dst.labels[:0]
	dst.ids = dst.ids[:0]
	dst.offsets = append(dst.offsets[:0], 0)
	dst.nbrs = dst.nbrs[:0]
	i, k := 0, 0
	for i < len(a.nodes) || k < len(b.nodes) {
		src, at := a, i
		switch {
		case k >= len(b.nodes):
			i++
		case i >= len(a.nodes) || b.nodes[k] < a.nodes[i]:
			src, at = b, k
			k++
		case a.nodes[i] < b.nodes[k]:
			i++
		default: // known on both sides
			i++
			k++
		}
		dst.nodes = append(dst.nodes, src.nodes[at])
		dst.labels = append(dst.labels, src.labels[at])
		dst.ids = append(dst.ids, src.ids[at])
		dst.nbrs = append(dst.nbrs, src.nbrs[src.offsets[at]:src.offsets[at+1]]...)
		dst.offsets = append(dst.offsets, int32(len(dst.nbrs)))
	}
}

// knowledgeBuf is one goroutine's working knowledge: a double buffer that
// absorbs incoming snapshots by merging cur+src into spare and flipping, so
// repeated merges churn two reusable arenas instead of allocating per merge.
type knowledgeBuf struct {
	cur, spare *knowledge
}

// newNodeKnowledge seeds node v's initial picture: itself, its label, its
// hidden identifier, and its full host row. The row is copied, not aliased:
// the initial buffer cycles through the merge double-buffer, whose in-place
// truncate-and-append would otherwise scribble over the host's shared
// neighbour arena.
func newNodeKnowledge(j *job, v, id int) *knowledgeBuf {
	row := j.l.G.Neighbors(v)
	cur := &knowledge{
		nodes:   []int32{int32(v)},
		offsets: []int32{0, int32(len(row))},
		nbrs:    append(make([]int32, 0, len(row)), row...),
		labels:  []graph.Label{j.l.Labels[v]},
		ids:     []int{id},
	}
	return &knowledgeBuf{cur: cur, spare: &knowledge{}}
}

// absorb merges one incoming snapshot into the working knowledge.
func (b *knowledgeBuf) absorb(src *knowledge) {
	mergeKnowledge(b.spare, b.cur, src)
	b.cur, b.spare = b.spare, b.cur
}

// snapshot publishes an immutable exact-size copy of the working knowledge —
// the one steady-state allocation of a protocol round (receivers keep
// merging from it while the sender's working buffers move on).
func (b *knowledgeBuf) snapshot() *knowledge {
	k := b.cur
	return &knowledge{
		nodes:   append(make([]int32, 0, len(k.nodes)), k.nodes...),
		offsets: append(make([]int32, 0, len(k.offsets)), k.offsets...),
		nbrs:    append(make([]int32, 0, len(k.nbrs)), k.nbrs...),
		labels:  append(make([]graph.Label, 0, len(k.labels)), k.labels...),
		ids:     append(make([]int, 0, len(k.ids)), k.ids...),
	}
}

// mpAssemblers pools the ViewExtractors backing knowledge assembly: each
// node decides exactly once, so a small pool of extractors (with their flat
// arenas and canonical-code workspaces) cycles through the whole run instead
// of every goroutine growing its own.
var mpAssemblers = sync.Pool{
	New: func() any {
		return graph.NewViewExtractor(graph.NewLabeled(graph.FromEdges(0, nil), nil))
	},
}

// assembleView restricts gathered knowledge to the induced radius-t ball
// around centre and packages it as a View matching graph.ViewOf. The known
// subgraph is built by filtering each known node's full host row to the
// known set — a monotone dense renumbering, so BFS discovery order (and with
// it the exact view layout) is preserved — and the ball restriction is the
// extractor's, rebound to the known subgraph. Both faulty and lossless
// message-passing paths, and the sharded runtime's halo assembly, share this
// one routine.
func assembleView(x *graph.ViewExtractor, know *knowledge, centre, t int, oblivious bool) *graph.View {
	k := len(know.nodes)
	offsets := make([]int32, k+1)
	nbrs := make([]int32, 0, len(know.nbrs))
	for i := 0; i < k; i++ {
		for _, u := range know.nbrs[know.offsets[i]:know.offsets[i+1]] {
			if li, ok := lookupKnown(know.nodes, u); ok {
				nbrs = append(nbrs, int32(li))
			}
		}
		offsets[i+1] = int32(len(nbrs))
	}
	g := graph.BuildCSR(offsets, func(dst []int32) { copy(dst, nbrs) })
	l := graph.NewLabeled(g, know.labels)
	centreIdx, ok := lookupKnown(know.nodes, int32(centre))
	if !ok {
		panic("engine: assembleView centre not in its own knowledge")
	}
	if oblivious {
		x.Reset(l)
	} else {
		// The identifier column is pairwise distinct by construction (one
		// hidden identifier per node), so the Instance is built directly
		// instead of through NewInstance's validating copy.
		x.ResetInstance(&graph.Instance{Labeled: l, IDs: know.ids})
	}
	view := x.At(centreIdx, t)
	// The extractor numbered Original against the known subgraph; rebind it
	// to host addresses (in place — the slice is extractor scratch, reset on
	// the next extraction).
	for i, w := range view.Original {
		view.Original[i] = int(know.nodes[w])
	}
	return view
}

type mpScheduler struct{}

func (mpScheduler) Name() string { return "message-passing" }

func (mpScheduler) run(j *job) bool {
	// Cancellation is honoured at launch only: mid-protocol the per-node
	// goroutines are interlocked through round barriers (a node that stops
	// sending deadlocks its neighbours), so bounded rounds come from
	// Options.RoundTimeout, not Ctx. See Options.Ctx.
	if j.checkCanceled() {
		return false
	}
	// Fault injection or a round timeout switches to the hardened runtime
	// (mpfaulty.go); the lossless path below stays byte-identical to the
	// seed-era protocol apart from the guarded decide stage.
	if j.faults != nil || j.opts.RoundTimeout > 0 {
		return runMPFaulty(j)
	}
	return runMPLossless(j)
}

func runMPLossless(j *job) bool {
	n := j.n
	t := j.dec.Horizon
	j.stats.Rounds = t
	j.stats.Workers = n

	// Hidden routing identifiers: the instance's real identifiers when the
	// evaluation carries them, throwaway node indices otherwise (stripped
	// from the assembled views before the decider sees them).
	oblivious := j.in == nil
	idOf := func(v int) int {
		if oblivious {
			return v
		}
		return j.in.IDs[v]
	}

	// Per-directed-edge channels, buffered for one message: within a round
	// every node first sends to all neighbours, then receives, so a buffer
	// of one message per edge keeps rounds deadlock-free.
	type edgeKey struct{ from, to int }
	chans := make(map[edgeKey]chan *knowledge, 2*j.l.G.M())
	for u := 0; u < n; u++ {
		for _, v := range j.l.G.Neighbors(u) {
			chans[edgeKey{from: u, to: int(v)}] = make(chan *knowledge, 1)
		}
	}

	var (
		rejected  atomic.Bool
		statsMu   sync.Mutex
		wg        sync.WaitGroup
		evaluated atomic.Int64
	)
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			buf := newNodeKnowledge(j, v, idOf(v))
			sent, units := 0, 0
			for round := 0; round < t; round++ {
				// Send a snapshot to every neighbour, then receive from every
				// neighbour. The per-edge one-slot buffers make each round a
				// synchronisation barrier with the local neighbourhood.
				snapshot := buf.snapshot()
				for _, u := range j.l.G.Neighbors(v) {
					chans[edgeKey{from: v, to: int(u)}] <- snapshot
					sent++
					units += snapshot.size()
				}
				for _, u := range j.l.G.Neighbors(v) {
					buf.absorb(<-chans[edgeKey{from: int(u), to: v}])
				}
			}
			// The protocol itself must run to completion (neighbours depend
			// on this node's sends), but once a reject is known an
			// early-exit evaluation skips the remaining decide calls.
			crashes, retries := 0, 0
			if !(j.opts.EarlyExit && rejected.Load()) {
				verdict, ok := j.guardedVerdict(v, &crashes, &retries, func() Verdict {
					x := mpAssemblers.Get().(*graph.ViewExtractor)
					verdict := j.decideView(assembleView(x, buf.cur, v, t, oblivious), v)
					mpAssemblers.Put(x)
					return verdict
				})
				evaluated.Add(1)
				if ok {
					if j.verdicts != nil {
						j.verdicts[v] = verdict
					}
					if verdict == No {
						rejected.Store(true)
					}
				}
			}
			statsMu.Lock()
			j.stats.Messages += sent
			j.stats.KnowledgeUnits += units
			j.stats.Crashes += crashes
			j.stats.Retries += retries
			statsMu.Unlock()
		}(v)
	}
	wg.Wait()
	accepted := !rejected.Load()
	j.stats.Evaluated = int(evaluated.Load())
	j.stats.EarlyExit = j.opts.EarlyExit && !accepted
	return accepted
}
