package engine

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file is the operational backend of the engine: one goroutine per
// node, communicating over per-edge channels in synchronous rounds. After t
// rounds of full-information flooding each node has gathered (a superset of)
// its radius-t neighbourhood; the backend then restricts the gathered
// knowledge to the induced ball B(v, t) so the decider receives exactly the
// view (G, x, Id) |> B(v, t) of the functional definition. The parity suite
// pins this backend against the functional ones node for node (experiment
// E13 reports the cost gap). It descends from internal/local's original
// runtime, which now delegates here.

// knowledge is a node's accumulated picture of the network, keyed by the
// runtime's hidden node addresses (never exposed to deciders).
type knowledge struct {
	labels map[int]graph.Label
	ids    map[int]int
	edges  map[[2]int]struct{}
}

func newKnowledge() *knowledge {
	return &knowledge{
		labels: make(map[int]graph.Label),
		ids:    make(map[int]int),
		edges:  make(map[[2]int]struct{}),
	}
}

func (k *knowledge) addEdge(u, v int) {
	if u > v {
		u, v = v, u
	}
	k.edges[[2]int{u, v}] = struct{}{}
}

func (k *knowledge) merge(other *knowledge) {
	for v, lab := range other.labels {
		k.labels[v] = lab
	}
	for v, id := range other.ids {
		k.ids[v] = id
	}
	for e := range other.edges {
		k.edges[e] = struct{}{}
	}
}

func (k *knowledge) clone() *knowledge {
	c := newKnowledge()
	c.merge(k)
	return c
}

type mpScheduler struct{}

func (mpScheduler) Name() string { return "message-passing" }

func (mpScheduler) run(j *job) bool {
	// Cancellation is honoured at launch only: mid-protocol the per-node
	// goroutines are interlocked through round barriers (a node that stops
	// sending deadlocks its neighbours), so bounded rounds come from
	// Options.RoundTimeout, not Ctx. See Options.Ctx.
	if j.checkCanceled() {
		return false
	}
	// Fault injection or a round timeout switches to the hardened runtime
	// (mpfaulty.go); the lossless path below stays byte-identical to the
	// seed-era protocol apart from the guarded decide stage.
	if j.faults != nil || j.opts.RoundTimeout > 0 {
		return runMPFaulty(j)
	}
	return runMPLossless(j)
}

func runMPLossless(j *job) bool {
	n := j.n
	t := j.dec.Horizon
	j.stats.Rounds = t
	j.stats.Workers = n

	// Hidden routing identifiers: the instance's real identifiers when the
	// evaluation carries them, throwaway node indices otherwise (stripped
	// from the assembled views before the decider sees them).
	oblivious := j.in == nil
	idOf := func(v int) int {
		if oblivious {
			return v
		}
		return j.in.IDs[v]
	}

	// Per-directed-edge channels, buffered for one message: within a round
	// every node first sends to all neighbours, then receives, so a buffer
	// of one message per edge keeps rounds deadlock-free.
	type edgeKey struct{ from, to int }
	chans := make(map[edgeKey]chan *knowledge, 2*j.l.G.M())
	for u := 0; u < n; u++ {
		for _, v := range j.l.G.Neighbors(u) {
			chans[edgeKey{from: u, to: int(v)}] = make(chan *knowledge, 1)
		}
	}

	var (
		rejected  atomic.Bool
		statsMu   sync.Mutex
		wg        sync.WaitGroup
		evaluated atomic.Int64
	)
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			know := newKnowledge()
			know.labels[v] = j.l.Labels[v]
			know.ids[v] = idOf(v)
			for _, u := range j.l.G.Neighbors(v) {
				know.addEdge(v, int(u))
			}
			sent, units := 0, 0
			for round := 0; round < t; round++ {
				// Send a snapshot to every neighbour, then receive from every
				// neighbour. The per-edge one-slot buffers make each round a
				// synchronisation barrier with the local neighbourhood.
				snapshot := know.clone()
				for _, u := range j.l.G.Neighbors(v) {
					chans[edgeKey{from: v, to: int(u)}] <- snapshot
					sent++
					units += len(snapshot.labels)
				}
				for _, u := range j.l.G.Neighbors(v) {
					know.merge(<-chans[edgeKey{from: int(u), to: v}])
				}
			}
			// The protocol itself must run to completion (neighbours depend
			// on this node's sends), but once a reject is known an
			// early-exit evaluation skips the remaining decide calls.
			crashes, retries := 0, 0
			if !(j.opts.EarlyExit && rejected.Load()) {
				verdict, ok := j.guardedVerdict(v, &crashes, &retries, func() Verdict {
					view := assembleView(know, v, t)
					if oblivious {
						view.IDs = nil
					}
					return j.decideView(view, v)
				})
				evaluated.Add(1)
				if ok {
					if j.verdicts != nil {
						j.verdicts[v] = verdict
					}
					if verdict == No {
						rejected.Store(true)
					}
				}
			}
			statsMu.Lock()
			j.stats.Messages += sent
			j.stats.KnowledgeUnits += units
			j.stats.Crashes += crashes
			j.stats.Retries += retries
			statsMu.Unlock()
		}(v)
	}
	wg.Wait()
	accepted := !rejected.Load()
	j.stats.Evaluated = int(evaluated.Load())
	j.stats.EarlyExit = j.opts.EarlyExit && !accepted
	return accepted
}

// assembleView restricts gathered knowledge to the induced radius-t ball
// around centre and packages it as a View matching graph.ViewOf, including
// the node ordering (the dense renumbering below is monotone in the original
// indices, so BFS discovery order is preserved).
func assembleView(know *knowledge, centre, t int) *graph.View {
	// Build the known subgraph with a dense renumbering in deterministic
	// order (map iteration is random).
	order := make([]int, 0, len(know.labels))
	for v := range know.labels {
		order = append(order, v)
	}
	sort.Ints(order)
	index := make(map[int]int, len(order))
	for i, v := range order {
		index[v] = i
	}
	b := graph.NewBuilderHint(len(order), len(know.edges))
	for e := range know.edges {
		u, okU := index[e[0]]
		w, okW := index[e[1]]
		if okU && okW {
			b.AddEdge(u, w)
		}
	}
	g := b.Build()
	labels := make([]graph.Label, len(order))
	idsSlice := make([]int, len(order))
	for i, v := range order {
		labels[i] = know.labels[v]
		idsSlice[i] = know.ids[v]
	}
	l := graph.NewLabeled(g, labels)

	// Restrict to the induced ball around the centre. Distances within t in
	// the known subgraph equal true distances, because the full induced ball
	// (with all its shortest paths) has been gathered.
	ball := g.Ball(index[centre], t)
	sub, orig := l.InducedSubgraph(ball)
	ids := make([]int, len(orig))
	originals := make([]int, len(orig))
	for i, w := range orig {
		ids[i] = idsSlice[w]
		originals[i] = order[w]
	}
	return &graph.View{Labeled: sub, Root: 0, Radius: t, IDs: ids, Original: originals}
}
