package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// EvalBatch evaluates one decider on a slice of identifier-carrying
// instances through a single scheduler launch. Per-outcome verdicts and
// acceptance are exactly those of calling Eval on each instance with the
// same options (the batch parity suite pins this per scheduler); what the
// batch amortises is everything around the verdicts:
//
//   - one worker pool for the whole slice instead of a spawn/join per
//     instance, with instances handed out by an atomic counter;
//   - one batched ViewExtractor (and its canonical-code workspace) per
//     worker, Reset between instances instead of reallocated — back-to-back
//     instances run in warm buffers;
//   - one dedup cache handle for the whole batch: when Options.Dedup is set
//     without an explicit cache, the private cache is shared across the
//     slice, so a view shape repeating across instances (the G(M,r) and
//     E8/E13 sweep regimes, where thousands of small instances share a few
//     hundred local shapes) is decided once, not once per instance.
//
// Work is parallelised across instances, one worker per instance at a time —
// the geometry of the many-small-instances sweeps this API exists for. A
// batch of one delegates to the scheduler's normal per-instance run (which
// parallelises across nodes), and the MessagePassing backend always runs
// per-instance: it assembles views operationally and has no batched form.
func EvalBatch(dec Decider, batch []*graph.Instance, opts Options) []Outcome {
	items := make([]batchItem, len(batch))
	for i, in := range batch {
		items[i] = batchItem{l: in.Labeled, in: in}
	}
	return evalBatch(dec, items, opts)
}

// EvalBatchOblivious is EvalBatch for identifier-free evaluation — the
// batched equivalent of EvalOblivious, and the variant on which the shared
// dedup cache actually engages (identifiers disable dedup instance-wise,
// exactly as in Eval).
func EvalBatchOblivious(dec Decider, batch []*graph.Labeled, opts Options) []Outcome {
	items := make([]batchItem, len(batch))
	for i, l := range batch {
		items[i] = batchItem{l: l}
	}
	return evalBatch(dec, items, opts)
}

// batchItem is one instance of a batch: a labelled graph plus its optional
// identifier assignment.
type batchItem struct {
	l  *graph.Labeled
	in *graph.Instance
}

func evalBatch(dec Decider, items []batchItem, opts Options) []Outcome {
	outcomes := make([]Outcome, len(items))
	if len(items) == 0 {
		return outcomes
	}
	sched := opts.Scheduler
	if sched == nil {
		sched = Sequential
	}
	// One cache handle for the whole batch. Soundness is still gated
	// per-instance by newJob (identifier-carrying instances keep dedup off);
	// this only replaces the cache *handle* of the jobs that do dedup, so a
	// Dedup batch without an explicit Options.Cache shares one private cache
	// instead of creating one per instance.
	var cache *ViewCache
	shared := false
	if (opts.Dedup || opts.Cache != nil) && dec.DecideRand == nil {
		if opts.Cache != nil {
			cache, shared = opts.Cache, true
		} else if opts.CacheBytes > 0 {
			cache = NewBoundedViewCache(opts.CacheBytes)
		} else {
			cache = NewViewCache()
		}
	}
	jobs := make([]*job, len(items))
	for i, it := range items {
		j, err := newJob(dec, it.l, it.in, opts)
		if err != nil {
			// Validation errors are a property of (decider, options): they
			// fail every instance of the batch identically.
			for k := range outcomes {
				outcomes[k] = Outcome{Accepted: false, Err: err}
			}
			return outcomes
		}
		if j.cache != nil {
			j.cache, j.shared = cache, shared
		}
		j.stats.Scheduler = sched.Name()
		jobs[i] = j
	}

	workers := 1
	switch s := sched.(type) {
	case seqScheduler:
	case shardedScheduler:
		workers = s.workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		if workers > len(items) {
			workers = len(items)
		}
	default:
		// MessagePassing (or an unknown backend): no batched form; run each
		// instance through the scheduler's own per-instance path.
		for i, j := range jobs {
			outcomes[i] = j.run()
		}
		return outcomes
	}

	if len(items) == 1 {
		outcomes[0] = jobs[0].run()
		return outcomes
	}

	accepted := make([]bool, len(jobs))
	runWorker := func() {
		var x *graph.ViewExtractor
		for i := range jobs {
			j := jobs[i]
			if j.n == 0 {
				continue // surfaced as ErrEmptyInstance below, never an accept
			}
			if x == nil {
				x = j.extractor()
			} else {
				j.rebind(x)
			}
			accepted[i] = j.runNodes(x)
		}
	}
	if workers <= 1 {
		runWorker()
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				var x *graph.ViewExtractor
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					j := jobs[i]
					if j.n == 0 {
						continue
					}
					if x == nil {
						x = j.extractor()
					} else {
						j.rebind(x)
					}
					accepted[i] = j.runNodes(x)
				}
			}()
		}
		wg.Wait()
	}
	for i, j := range jobs {
		if j.n == 0 {
			j.stats.Workers = 0
			outcomes[i] = Outcome{Verdicts: j.verdicts, Accepted: false, Err: ErrEmptyInstance, Stats: j.stats}
			continue
		}
		outcomes[i] = j.outcome(accepted[i])
	}
	return outcomes
}

// rebind points an existing per-worker extractor at this job's host,
// reusing every scratch buffer (see graph.ViewExtractor.Reset).
func (j *job) rebind(x *graph.ViewExtractor) {
	if j.in != nil {
		x.ResetInstance(j.in)
	} else {
		x.Reset(j.l)
	}
}
