package engine

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// The batch parity suite: EvalBatch / EvalBatchOblivious must produce, per
// instance, exactly the Verdicts and Accepted of the per-instance Eval /
// EvalOblivious call with the same options — on every scheduler, decider
// (deterministic, randomized, ID-using), and option combination. Batching
// may only change the cost accounting, never a verdict.

func TestEvalBatchParity(t *testing.T) {
	schedulers := []Scheduler{Sequential, Sharded, ShardedWith(3), MessagePassing, ShardedMPWith(3)}
	property := func(seed int64) bool {
		base := parityInstances(seed)
		for name, dec := range parityDeciders() {
			hosts := base
			if name == "nld-cert" {
				hosts = make([]*graph.Labeled, len(base))
				for i, l := range base {
					hosts[i] = withCerts(l)
				}
			}
			var instances []*graph.Instance
			if dec.UsesIDs {
				instances = make([]*graph.Instance, len(hosts))
				for i, l := range hosts {
					instances[i] = graph.NewInstance(l, idsFor(l.N(), seed+int64(i)))
				}
			}
			for _, sched := range schedulers {
				for _, dedup := range []bool{false, true} {
					for _, earlyExit := range []bool{false, true} {
						opts := Options{Scheduler: sched, Dedup: dedup, EarlyExit: earlyExit, Seed: seed}
						var got []Outcome
						if instances != nil {
							got = EvalBatch(dec, instances, opts)
						} else {
							got = EvalBatchOblivious(dec, hosts, opts)
						}
						for i := range hosts {
							var want Outcome
							if instances != nil {
								want = Eval(dec, instances[i], opts)
							} else {
								want = EvalOblivious(dec, hosts[i], opts)
							}
							if got[i].Accepted != want.Accepted {
								t.Logf("seed=%d decider=%s sched=%s dedup=%v early=%v instance=%d: batch accepted %v, eval %v",
									seed, name, sched.Name(), dedup, earlyExit, i, got[i].Accepted, want.Accepted)
								return false
							}
							if earlyExit {
								if got[i].Verdicts != nil {
									t.Logf("batch early-exit outcome must carry no verdicts")
									return false
								}
								continue
							}
							for v := range want.Verdicts {
								if got[i].Verdicts[v] != want.Verdicts[v] {
									t.Logf("seed=%d decider=%s sched=%s dedup=%v instance=%d node=%d: batch %s, eval %s",
										seed, name, sched.Name(), dedup, i, v, got[i].Verdicts[v], want.Verdicts[v])
									return false
								}
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 4}); err != nil {
		t.Error(err)
	}
}

// TestEvalBatchSharesCache pins the batch's headline amortisation: with
// Dedup set and no explicit cache, one private cache serves the whole slice,
// so a view shape repeating across instances is decided exactly once.
func TestEvalBatchSharesCache(t *testing.T) {
	dec := Decider{Name: "deg2", Horizon: 2,
		Decide: func(view *graph.View) Verdict { return Verdict(view.G.Degree(view.Root) == 2) }}
	batch := make([]*graph.Labeled, 6)
	for i := range batch {
		batch[i] = graph.UniformlyLabeled(graph.Cycle(30), "c")
	}
	for _, sched := range []Scheduler{Sequential, Sharded} {
		outs := EvalBatchOblivious(dec, batch, Options{Scheduler: sched, Dedup: true})
		evaluated, inserted := 0, 0
		for i, out := range outs {
			if !out.Accepted {
				t.Fatalf("%s: instance %d rejected", sched.Name(), i)
			}
			evaluated += out.Stats.Evaluated
			inserted += out.Stats.DistinctViews
		}
		// Every node of every uniform cycle has the same radius-2 view: one
		// decide for the whole batch.
		if evaluated != 1 || inserted != 1 {
			t.Errorf("%s: want 1 evaluation / 1 insert across the batch, got %d / %d",
				sched.Name(), evaluated, inserted)
		}
	}
}

// TestEvalBatchCrossRunCache pins that an explicit Options.Cache behaves
// exactly as in Eval: the batch marks outcomes cache-shared and a second
// batch is served entirely from the first one's verdicts.
func TestEvalBatchCrossRunCache(t *testing.T) {
	dec := Decider{Name: "deg2", Horizon: 1,
		Decide: func(view *graph.View) Verdict { return Verdict(view.G.Degree(view.Root) == 2) }}
	batch := []*graph.Labeled{
		graph.UniformlyLabeled(graph.Cycle(12), "c"),
		graph.UniformlyLabeled(graph.Cycle(17), "c"),
	}
	cache := NewViewCache()
	first := EvalBatchOblivious(dec, batch, Options{Dedup: true, Cache: cache})
	if !first[0].Stats.CacheShared {
		t.Fatalf("explicit cache must mark outcomes shared")
	}
	second := EvalBatchOblivious(dec, batch, Options{Dedup: true, Cache: cache})
	for i, out := range second {
		if out.Stats.Evaluated != 0 {
			t.Errorf("instance %d: second batch re-decided %d views", i, out.Stats.Evaluated)
		}
	}
}

// TestEvalBatchDegenerate covers the edges: the empty batch, a batch
// containing an empty graph, and a batch of one (which delegates to the
// scheduler's per-instance run).
func TestEvalBatchDegenerate(t *testing.T) {
	dec := Decider{Name: "yes", Horizon: 1,
		Decide: func(*graph.View) Verdict { return Yes }}
	if outs := EvalBatchOblivious(dec, nil, Options{}); len(outs) != 0 {
		t.Fatalf("empty batch must return no outcomes")
	}
	batch := []*graph.Labeled{
		graph.UniformlyLabeled(graph.New(0), ""),
		graph.UniformlyLabeled(graph.Path(5), "p"),
	}
	for _, sched := range []Scheduler{Sequential, Sharded} {
		outs := EvalBatchOblivious(dec, batch, Options{Scheduler: sched})
		if outs[0].Accepted || !errors.Is(outs[0].Err, ErrEmptyInstance) || outs[0].Stats.Workers != 0 {
			t.Errorf("%s: empty graph must surface ErrEmptyInstance with 0 workers, got %+v", sched.Name(), outs[0])
		}
		if !outs[1].Accepted || len(outs[1].Verdicts) != 5 {
			t.Errorf("%s: 5-node path outcome malformed", sched.Name())
		}
	}
	single := EvalBatchOblivious(dec, batch[1:], Options{Scheduler: Sharded})
	if !single[0].Accepted || len(single[0].Verdicts) != 5 {
		t.Errorf("batch of one must match per-instance run")
	}
}
