package engine

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestIncrementalEmptyInstance(t *testing.T) {
	l := graph.UniformlyLabeled(graph.New(0), "")
	if _, err := NewIncremental(degreeAtMost(2), l, Options{}); !errors.Is(err, ErrEmptyInstance) {
		t.Fatalf("err = %v, want ErrEmptyInstance", err)
	}
}

func TestIncrementalValidation(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(8), "")
	if _, err := NewIncremental(Decider{Name: "bad"}, l, Options{}); err == nil {
		t.Fatal("decider with no Decide function must fail validation")
	}
}

// TestIncrementalEdgeLifecycle walks a cycle through chord insertion and
// removal under the degree decider: the aggregate outcome and the individual
// verdicts must track each update, and each repair must stay ball-sized.
func TestIncrementalEdgeLifecycle(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(64), "c")
	inc := MustNewIncremental(degreeAtMost(2), l, Options{Dedup: true})
	if !inc.Accepted() {
		t.Fatal("plain cycle must accept deg<=2")
	}

	dirty := inc.ApplyEdge(3, 30, true)
	// Horizon 1: dirty = ball(3,1) ∪ ball(30,1) in the new graph = {3,2,4,30}
	// ∪ {30,29,31,3} = 6 nodes.
	if dirty != 6 {
		t.Fatalf("chord add repaired %d nodes, want 6", dirty)
	}
	if inc.Accepted() || inc.Rejects() != 2 {
		t.Fatalf("chord endpoints must reject: accepted=%v rejects=%d", inc.Accepted(), inc.Rejects())
	}
	if inc.Verdict(3) != No || inc.Verdict(30) != No || inc.Verdict(2) != Yes {
		t.Fatal("per-node verdicts wrong after chord add")
	}

	if d := inc.ApplyEdge(3, 30, true); d != 0 {
		t.Fatalf("duplicate add repaired %d nodes, want 0", d)
	}
	if d := inc.ApplyEdge(10, 40, false); d != 0 {
		t.Fatalf("absent remove repaired %d nodes, want 0", d)
	}

	if d := inc.ApplyEdge(3, 30, false); d != 6 {
		t.Fatalf("chord remove repaired %d nodes, want 6", d)
	}
	if !inc.Accepted() || inc.Rejects() != 0 {
		t.Fatalf("cycle restored but accepted=%v rejects=%d", inc.Accepted(), inc.Rejects())
	}
}

// TestIncrementalBatchedUpdates checks ApplyUpdates repairs the union once
// and lands on the same state as single-op application.
func TestIncrementalBatchedUpdates(t *testing.T) {
	dec := degreeAtMost(2)
	ops := []EdgeOp{{U: 1, V: 20, Add: true}, {U: 5, V: 33, Add: true}, {U: 1, V: 20, Add: false}}

	a := graph.UniformlyLabeled(graph.Cycle(48), "c")
	incA := MustNewIncremental(dec, a, Options{})
	incA.ApplyUpdates(ops)

	b := graph.UniformlyLabeled(graph.Cycle(48), "c")
	incB := MustNewIncremental(dec, b, Options{})
	for _, op := range ops {
		incB.ApplyEdge(op.U, op.V, op.Add)
	}

	if incA.Accepted() != incB.Accepted() || incA.Rejects() != incB.Rejects() {
		t.Fatalf("batched state (%v,%d) != sequential state (%v,%d)",
			incA.Accepted(), incA.Rejects(), incB.Accepted(), incB.Rejects())
	}
	for v := 0; v < 48; v++ {
		if incA.Verdict(v) != incB.Verdict(v) {
			t.Fatalf("node %d: batched %v != sequential %v", v, incA.Verdict(v), incB.Verdict(v))
		}
	}
}

// TestIncrementalLabelUpdate checks ApplyLabel repairs exactly the ball
// around the relabelled node.
func TestIncrementalLabelUpdate(t *testing.T) {
	// Reject iff some label in the radius-2 view is "x".
	dec := Decider{Name: "no-x-r2", Horizon: 2, Decide: func(view *graph.View) Verdict {
		for _, lab := range view.Labels {
			if lab == "x" {
				return No
			}
		}
		return Yes
	}}
	l := graph.UniformlyLabeled(graph.Cycle(32), "c")
	inc := MustNewIncremental(dec, l, Options{})
	if !inc.Accepted() {
		t.Fatal("clean cycle must accept")
	}
	if d := inc.ApplyLabel(10, "x"); d != 5 {
		t.Fatalf("label repair touched %d nodes, want 5 (radius-2 cycle ball)", d)
	}
	if inc.Rejects() != 5 {
		t.Fatalf("rejects = %d, want 5 (nodes 8..12 see the x)", inc.Rejects())
	}
	if d := inc.ApplyLabel(10, "c"); d != 5 || !inc.Accepted() {
		t.Fatalf("heal repaired %d nodes, accepted=%v", d, inc.Accepted())
	}
}

// TestIncrementalInvalidateLabels mirrors the fault layer's in-place
// corruption: labels mutate externally, the session is told which nodes.
func TestIncrementalInvalidateLabels(t *testing.T) {
	dec := Decider{Name: "no-x-r1", Horizon: 1, Decide: func(view *graph.View) Verdict {
		for _, lab := range view.Labels {
			if lab == "x" {
				return No
			}
		}
		return Yes
	}}
	l := graph.UniformlyLabeled(graph.Cycle(24), "c")
	inc := MustNewIncremental(dec, l, Options{})
	l.Labels[4] = "x"
	l.Labels[17] = "x"
	inc.InvalidateLabels([]int{4, 17})
	if inc.Rejects() != 6 {
		t.Fatalf("rejects = %d, want 6", inc.Rejects())
	}
	l.Labels[4] = "c"
	l.Labels[17] = "c"
	inc.InvalidateLabels([]int{4, 17})
	if !inc.Accepted() {
		t.Fatal("healed labels must re-accept")
	}
}

// TestIncrementalExternalMutationDetected pins the ownership contract:
// mutating the host graph behind the session's back is a detected error at
// the next update, not silent verdict drift.
func TestIncrementalExternalMutationDetected(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(16), "c")
	inc := MustNewIncremental(degreeAtMost(2), l, Options{})
	l.G.ApplyUpdate(0, 8, true) // behind the session's back
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("update after external mutation did not panic")
		} else if !strings.Contains(r.(string), "mutated externally") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	inc.ApplyEdge(1, 9, true)
}

// TestIncrementalFaultInjection checks the session's crash handling: a node
// whose decides all crash is a failure (neither accept nor reject), surfaces
// in Outcome().Errs, and keeps the aggregate un-accepted; transient crashes
// retry through.
func TestIncrementalFaultInjection(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(32), "c")

	// Node 5 crashes every attempt.
	inc := MustNewIncremental(degreeAtMost(2), l, Options{
		Faults:       crashNodes{5: -1},
		RetryBackoff: -1,
	})
	if inc.Accepted() || inc.Failed() != 1 || inc.Rejects() != 0 {
		t.Fatalf("accepted=%v failed=%d rejects=%d, want false/1/0", inc.Accepted(), inc.Failed(), inc.Rejects())
	}
	out := inc.Outcome()
	if len(out.Errs) != 1 || out.Errs[0].Node != 5 || out.Accepted {
		t.Fatalf("Outcome errs = %+v accepted=%v", out.Errs, out.Accepted)
	}
	// An update away from node 5 leaves the failure in place.
	inc.ApplyEdge(20, 25, true)
	if inc.Failed() != 1 {
		t.Fatalf("failure lost by unrelated update: failed=%d", inc.Failed())
	}

	// Node 7 crashes only on attempt 0: retries recover the verdict.
	l2 := graph.UniformlyLabeled(graph.Cycle(32), "c")
	inc2 := MustNewIncremental(degreeAtMost(2), l2, Options{
		Faults:       crashNodes{7: 1},
		RetryBackoff: -1,
	})
	if !inc2.Accepted() || inc2.Failed() != 0 {
		t.Fatalf("transient crash not retried through: accepted=%v failed=%d", inc2.Accepted(), inc2.Failed())
	}
	if s := inc2.Stats(); s.Retries == 0 || s.Crashes == 0 {
		t.Fatalf("stats missed the crash/retry: %+v", s)
	}
}

// crashNodes injects decide crashes: node -> number of crashing attempts
// (-1 = all attempts crash).
type crashNodes map[int]int

func (c crashNodes) CrashDecide(node, attempt int) bool {
	k, ok := c[node]
	if !ok {
		return false
	}
	return k < 0 || attempt < k
}

func (c crashNodes) MessageFate(round, from, to int) MessageFate {
	return MessageFate{Delivered: true, Attempts: 1}
}

// TestIncrementalSharedCache checks a shared ViewCache warms the session: a
// second session over the same instance decides nothing fresh.
func TestIncrementalSharedCache(t *testing.T) {
	cache := NewViewCache()
	l := graph.UniformlyLabeled(graph.Cycle(128), "c")
	inc1 := MustNewIncremental(degreeAtMost(2), l, Options{Cache: cache})
	s1 := inc1.Stats()
	if s1.Evaluated == 0 || !s1.CacheShared {
		t.Fatalf("first session stats: %+v", s1)
	}

	l2 := graph.UniformlyLabeled(graph.Cycle(128), "c")
	inc2 := MustNewIncremental(degreeAtMost(2), l2, Options{Cache: cache})
	s2 := inc2.Stats()
	if s2.Evaluated != 0 || s2.DedupHits != 128 {
		t.Fatalf("second session should be fully warm: %+v", s2)
	}
	if !inc2.Accepted() {
		t.Fatal("warm session lost the outcome")
	}
}

// TestIncrementalShardedRepair runs a large dirty set through the sharded
// repair path and pins it against the sequential session.
func TestIncrementalShardedRepair(t *testing.T) {
	// Dedup stays off: near-star views of sparse random graphs are the
	// canonical code's factorial worst case (a from-scratch Eval with Dedup
	// hangs on this exact instance too — the random family is evaluated
	// direct throughout the repo).
	g := graph.Random(400, 0.02, 11)
	dec := Decider{Name: "viewsize-r1", Horizon: 1, Decide: func(view *graph.View) Verdict {
		return Verdict(view.N()%5 != 0)
	}}
	mk := func(sched Scheduler) *Incremental {
		l := graph.NewLabeled(g.Clone(), nil)
		return MustNewIncremental(dec, l, Options{Scheduler: sched})
	}
	seq := mk(Sequential)
	shd := mk(ShardedWith(4))
	// A wide batch makes the update's dirty set itself large enough for the
	// pool (the initial 400-node repair already ran sharded).
	var batch []EdgeOp
	for i := 0; i < 40; i++ {
		batch = append(batch, EdgeOp{U: i, V: 200 + i, Add: true})
	}
	steps := [][]EdgeOp{
		batch,
		{{U: 0, V: 200, Add: false}, {U: 3, V: 77, Add: true}},
	}
	for _, ops := range steps {
		seq.ApplyUpdates(ops)
		shd.ApplyUpdates(ops)
		if seq.Accepted() != shd.Accepted() || seq.Rejects() != shd.Rejects() {
			t.Fatalf("sharded repair diverged: (%v,%d) vs (%v,%d)",
				seq.Accepted(), seq.Rejects(), shd.Accepted(), shd.Rejects())
		}
		for v := 0; v < 400; v++ {
			if seq.Verdict(v) != shd.Verdict(v) {
				t.Fatalf("node %d: sequential %v != sharded %v", v, seq.Verdict(v), shd.Verdict(v))
			}
		}
	}
	if ws := shd.Stats().Workers; ws < 2 {
		t.Fatalf("sharded session never used its pool (workers=%d)", ws)
	}
}
