package engine

import (
	"fmt"
	"testing"

	"repro/internal/graph"
)

// Engine-level benchmarks: the batched extraction fast path against the
// seed-era per-node loop, the dedup hit rate on structured instances, and
// parallel scaling of the sharded scheduler.

// cheapDecider makes extraction dominate: the verdict is a constant-time
// structural check.
func cheapDecider(horizon int) Decider {
	return Decider{Name: "deg<=4", Horizon: horizon, Decide: func(view *graph.View) Verdict {
		return Verdict(view.G.Degree(view.Root) <= 4)
	}}
}

// canonDecider makes deciding dominate: the verdict hashes the canonical
// code, the regime where deduplication pays.
func canonDecider(horizon int) Decider {
	return Decider{Name: "canonhash", Horizon: horizon, Decide: func(view *graph.View) Verdict {
		sum := 0
		for _, b := range []byte(view.ObliviousCode()) {
			sum += int(b)
		}
		return Verdict(sum%97 != 0)
	}}
}

// expensiveDecider stands in for verification-grade deciders (fragment
// reconstruction, machine simulation) whose per-view cost dwarfs the dedup
// cache key: it recomputes the canonical code several times.
func expensiveDecider(horizon, work int) Decider {
	return Decider{Name: "expensive", Horizon: horizon, Decide: func(view *graph.View) Verdict {
		sum := 0
		for r := 0; r < work; r++ {
			for _, b := range []byte(view.ObliviousCode()) {
				sum += int(b)
			}
		}
		return Verdict(sum%97 != 0)
	}}
}

func benchHosts() map[string]*graph.Labeled {
	return map[string]*graph.Labeled{
		"cycle10k":  graph.UniformlyLabeled(graph.Cycle(10000), "c"),
		"grid60x60": graph.UniformlyLabeled(graph.Grid(60, 60), "g"),
	}
}

func BenchmarkEngineVsLegacy(b *testing.B) {
	for name, l := range benchHosts() {
		dec := cheapDecider(2)
		b.Run(name+"/legacy-loop", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				legacyEval(dec, l, nil, 0)
			}
		})
		b.Run(name+"/sequential", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				EvalOblivious(dec, l, Options{})
			}
		})
		b.Run(name+"/sharded", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				EvalOblivious(dec, l, Options{Scheduler: Sharded})
			}
		})
	}
}

// Dedup pays exactly when the decider outweighs the cache key (one
// canonical code). The expensive decider is ~8 keys' worth of work; on a
// uniform cycle every node shares one view, so dedup approaches that ratio.
func BenchmarkDedup(b *testing.B) {
	l := graph.UniformlyLabeled(graph.Cycle(10000), "c")
	dec := expensiveDecider(2, 8)
	b.Run("expensive/no-dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EvalOblivious(dec, l, Options{})
		}
	})
	b.Run("expensive/dedup", func(b *testing.B) {
		var out Outcome
		for i := 0; i < b.N; i++ {
			out = EvalOblivious(dec, l, Options{Dedup: true})
		}
		b.ReportMetric(float64(out.Stats.DedupHits)/float64(out.Stats.Nodes), "hit-rate")
	})
}

// The cross-run ViewCache on an instance family: per-run dedup re-decides
// every distinct view on every instance, the shared cache decides each view
// once for the whole family. The family is periodically-labelled cycles —
// many distinct views, all shared across instances, exactly the shape of the
// experiment sweeps and the halting promise family — and the decider is
// verification-grade, so re-deciding is the dominant cost.
func BenchmarkCrossRunCache(b *testing.B) {
	labelPeriodic := func(n, period int) *graph.Labeled {
		labels := make([]graph.Label, n)
		for v := range labels {
			labels[v] = fmt.Sprintf("p%d", v%period)
		}
		return graph.NewLabeled(graph.Cycle(n), labels)
	}
	family := []*graph.Labeled{
		labelPeriodic(512, 16),
		labelPeriodic(768, 16),
		labelPeriodic(1024, 16),
	}
	dec := expensiveDecider(2, 64)
	b.Run("per-run-dedup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, l := range family {
				EvalOblivious(dec, l, Options{Dedup: true})
			}
		}
	})
	b.Run("shared-cache", func(b *testing.B) {
		// A fresh cache per iteration keeps the measurement
		// iteration-invariant: every iteration is one cold family sweep
		// (decide each view once), not a converging pure-hit steady state.
		for i := 0; i < b.N; i++ {
			cache := NewViewCache()
			for _, l := range family {
				EvalOblivious(dec, l, Options{Cache: cache})
			}
		}
	})
}

// Scaling of the sharded scheduler with the worker cap (visible only on
// multi-core hardware; on a single-CPU host all worker counts coincide).
func BenchmarkParallelScaling(b *testing.B) {
	l := graph.UniformlyLabeled(graph.Grid(48, 48), "g")
	dec := canonDecider(1)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			sched := ShardedWith(workers)
			for i := 0; i < b.N; i++ {
				EvalOblivious(dec, l, Options{Scheduler: sched})
			}
		})
	}
}

// BenchmarkEvalBatch measures the many-small-instances regime EvalBatch
// exists for — hundreds of small hosts through one launch — against the
// per-instance Eval loop every caller ran before. Both arms get the same
// options including an explicit fresh cache per iteration, so the measured
// gap is pure launch/extractor amortisation, not cache sharing (that effect
// is pinned separately by TestEvalBatchSharesCache).
func BenchmarkEvalBatch(b *testing.B) {
	dec := cheapDecider(2)
	batch := make([]*graph.Labeled, 256)
	for i := range batch {
		batch[i] = graph.RandomLabels(graph.Cycle(16+i%17), []graph.Label{"a", "b"}, int64(i))
	}
	for _, tc := range []struct {
		name  string
		sched Scheduler
	}{{"sequential", Sequential}, {"sharded", Sharded}} {
		b.Run(tc.name+"/eval-loop", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := Options{Scheduler: tc.sched, Dedup: true, Cache: NewViewCache()}
				for _, l := range batch {
					EvalOblivious(dec, l, opts)
				}
			}
		})
		b.Run(tc.name+"/batch", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := Options{Scheduler: tc.sched, Dedup: true, Cache: NewViewCache()}
				EvalBatchOblivious(dec, batch, opts)
			}
		})
	}
}
