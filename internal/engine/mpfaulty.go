package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// This file is the hardened MessagePassing runtime, engaged when an
// evaluation carries an Injector or a RoundTimeout. It runs the same
// synchronous flooding protocol as the lossless backend, but every directed
// message passes through the injector — drop after a bounded retransmit
// budget, duplicate, delay by d rounds — and every round barrier carries an
// optional wall-clock timeout.
//
// The degradation ladder keeps verdicts correct under every fault mix:
//
//  1. A node whose radius-t dependency cone saw no drop, no delay and no
//     timeout has gathered exactly its induced ball, and decides from the
//     assembled view — identical to the lossless backend.
//  2. Any other node declares its view incomplete and falls back to
//     extractor-based evaluation (the functional definition of the same
//     view), so message faults degrade cost, never verdicts.
//
// Cone cleanliness is precomputed from the injector before the protocol
// starts (the injector is a pure function, so sender and receiver agree on
// every fate by construction), and cross-checked at runtime by counting
// on-time arrivals per round — which also catches desynchronisation caused
// by barrier timeouts.

// maxMessageDuplicates clamps an injector's per-message duplicate count so
// per-edge channel capacity stays bounded.
const maxMessageDuplicates = 3

// mpMsg is one (possibly duplicated, possibly delayed) protocol message.
type mpMsg struct {
	sendRound    int
	deliverRound int
	know         *knowledge
}

// mpFatePlan is the precomputed fate table of one faulty run: per-round
// expected on-time in-message counts, the transitive per-node cleanliness
// after t rounds, and the deterministic fault tally.
type mpFatePlan struct {
	clean    []bool  // clean[v]: v's whole dependency cone was on time
	expected [][]int // expected[r][v]: on-time arrivals v must see in round r

	dropped, duplicated, delayed, retransmits int
}

// messageFate resolves one directed message's fate, normalised: no injector
// means delivered-on-time, and duplicate counts arrive pre-clamped.
func (j *job) messageFate(round, from, to int) MessageFate {
	if j.faults == nil {
		return MessageFate{Delivered: true, Attempts: 1}
	}
	fate := j.faults.MessageFate(round, from, to)
	if fate.Duplicates > maxMessageDuplicates {
		fate.Duplicates = maxMessageDuplicates
	}
	if fate.Duplicates < 0 {
		fate.Duplicates = 0
	}
	if fate.Delay < 0 {
		fate.Delay = 0
	}
	return fate
}

// planFates walks every (round, directed edge) site once, before the
// protocol starts: it accumulates the deterministic fault tally and computes
// the transitive cleanliness recursion
//
//	clean_0(v) = true
//	clean_{r+1}(v) = clean_r(v) ∧ ∀(u,v)∈E: onTime_r(u→v) ∧ clean_r(u)
//
// — exactly "v's radius-(r+1) gather is the true ball". The injector being a
// pure function, the goroutines re-consulting the same sites later see the
// same fates.
func (j *job) planFates(t int) *mpFatePlan {
	n := j.n
	p := &mpFatePlan{clean: make([]bool, n)}
	for v := range p.clean {
		p.clean[v] = true
	}
	if j.faults == nil {
		return p
	}
	p.expected = make([][]int, t)
	for r := 0; r < t; r++ {
		p.expected[r] = make([]int, n)
		next := make([]bool, n)
		copy(next, p.clean)
		for u := 0; u < n; u++ {
			for _, w := range j.l.G.Neighbors(u) {
				fate := j.messageFate(r, u, int(w))
				if fate.Attempts > 1 {
					p.retransmits += fate.Attempts - 1
				}
				onTime := fate.Delivered && fate.Delay == 0
				if onTime {
					p.expected[r][int(w)]++
				} else if !fate.Delivered {
					p.dropped++
				} else {
					p.delayed++
				}
				p.duplicated += fate.Duplicates
				if !onTime || !p.clean[u] {
					next[int(w)] = false
				}
			}
		}
		p.clean = next
	}
	return p
}

// expectedOnTime is the on-time in-message count node v must observe in
// round r for its gather to stay synchronised (full in-degree when no
// injector is present).
func (p *mpFatePlan) expectedOnTime(j *job, r, v int) int {
	if p.expected == nil {
		return len(j.l.G.Neighbors(v))
	}
	return p.expected[r][v]
}

// roundBarrier is a reusable synchronisation barrier with per-wait timeout
// and permanent departure: a timed-out node leaves and never blocks the
// survivors again.
type roundBarrier struct {
	mu      sync.Mutex
	n       int // remaining participants
	arrived int
	gen     int
	release chan struct{}
}

func newRoundBarrier(n int) *roundBarrier {
	return &roundBarrier{n: n, release: make(chan struct{})}
}

// advance releases the current generation. Callers hold b.mu.
func (b *roundBarrier) advance() {
	b.arrived = 0
	b.gen++
	close(b.release)
	b.release = make(chan struct{})
}

// wait blocks until all remaining participants arrive, or until timeout
// (0 = wait forever). It returns false on timeout, in which case the caller
// has been removed from the barrier and must not wait again.
func (b *roundBarrier) wait(timeout time.Duration) bool {
	b.mu.Lock()
	gen := b.gen
	b.arrived++
	if b.arrived >= b.n {
		b.advance()
		b.mu.Unlock()
		return true
	}
	ch := b.release
	b.mu.Unlock()
	if timeout <= 0 {
		<-ch
		return true
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-ch:
		return true
	case <-timer.C:
	}
	// Timed out: leave the barrier. If the generation advanced while the
	// timer raced the release, our arrival was already consumed; otherwise
	// withdraw it so the survivors' count stays exact.
	b.mu.Lock()
	if b.gen == gen {
		b.arrived--
	}
	b.n--
	if b.n > 0 && b.arrived >= b.n {
		b.advance()
	}
	b.mu.Unlock()
	return false
}

// runMPFaulty is the hardened message-passing run; see the file comment for
// the protocol and the degradation ladder.
func runMPFaulty(j *job) bool {
	n := j.n
	t := j.dec.Horizon
	j.stats.Rounds = t
	j.stats.Workers = n

	oblivious := j.in == nil
	idOf := func(v int) int {
		if oblivious {
			return v
		}
		return j.in.IDs[v]
	}

	plan := j.planFates(t)
	j.stats.Dropped = plan.dropped
	j.stats.Duplicated = plan.duplicated
	j.stats.Delayed = plan.delayed
	j.stats.Retransmits = plan.retransmits

	// Per-directed-edge channels sized for every message the edge can ever
	// carry (t rounds × one original + clamped duplicates), so sends never
	// block — a receiver that timed out and stopped draining cannot wedge
	// its neighbours.
	type edgeKey struct{ from, to int }
	capacity := t*(1+maxMessageDuplicates) + 1
	chans := make(map[edgeKey]chan mpMsg, 2*j.l.G.M())
	for u := 0; u < n; u++ {
		for _, v := range j.l.G.Neighbors(u) {
			chans[edgeKey{from: u, to: int(v)}] = make(chan mpMsg, capacity)
		}
	}

	barrier := newRoundBarrier(n)
	var (
		rejected  atomic.Bool
		statsMu   sync.Mutex
		wg        sync.WaitGroup
		evaluated atomic.Int64

		fallbackMu sync.Mutex
		fallbackX  fallbackExtractor
	)
	wg.Add(n)
	for v := 0; v < n; v++ {
		go func(v int) {
			defer wg.Done()
			buf := newNodeKnowledge(j, v, idOf(v))
			var pending []mpMsg
			incomplete := !plan.clean[v]
			timedOut := 0
			left := false
			sent, units := 0, 0
			for round := 0; round < t; round++ {
				snapshot := buf.snapshot()
				for _, u := range j.l.G.Neighbors(v) {
					fate := j.messageFate(round, v, int(u))
					if !fate.Delivered {
						continue
					}
					m := mpMsg{sendRound: round, deliverRound: round + fate.Delay, know: snapshot}
					for c := 0; c <= fate.Duplicates; c++ {
						chans[edgeKey{from: v, to: int(u)}] <- m
						sent++
						units += snapshot.size()
					}
				}
				if !left && !barrier.wait(j.opts.RoundTimeout) {
					timedOut++
					incomplete = true
					left = true
				}
				// Drain everything currently buffered on the in-edges;
				// messages due this round merge now, future deliveries wait
				// in the pending list.
				onTime := 0
				for _, u := range j.l.G.Neighbors(v) {
					ch := chans[edgeKey{from: int(u), to: v}]
					for drained := false; !drained; {
						select {
						case m := <-ch:
							if m.deliverRound <= round {
								buf.absorb(m.know)
								if m.sendRound == round && m.deliverRound == round {
									onTime++
								}
							} else {
								pending = append(pending, m)
							}
						default:
							drained = true
						}
					}
				}
				kept := pending[:0]
				for _, m := range pending {
					if m.deliverRound <= round {
						buf.absorb(m.know)
						// A round-r message drained ahead of the receiver's
						// round r (the sender ran ahead after the barrier) is
						// still an on-time arrival of the synchronous
						// protocol — it parked in pending only because the
						// receiver's drain saw it early.
						if m.sendRound == round && m.deliverRound == round {
							onTime++
						}
					} else {
						kept = append(kept, m)
					}
				}
				pending = kept
				// Fewer on-time arrivals than the fate plan demands means a
				// sender ran ahead or behind (barrier timeout somewhere):
				// the gather can no longer be trusted.
				if onTime < plan.expectedOnTime(j, round, v) {
					incomplete = true
				}
			}

			crashes, retries := 0, 0
			if !(j.opts.EarlyExit && rejected.Load()) {
				var verdict Verdict
				var ok bool
				if incomplete {
					verdict, ok = j.guardedVerdict(v, &crashes, &retries, func() Verdict {
						return fallbackX.decide(j, &fallbackMu, v)
					})
				} else {
					verdict, ok = j.guardedVerdict(v, &crashes, &retries, func() Verdict {
						x := mpAssemblers.Get().(*graph.ViewExtractor)
						verdict := j.decideView(assembleView(x, buf.cur, v, t, oblivious), v)
						mpAssemblers.Put(x)
						return verdict
					})
				}
				evaluated.Add(1)
				if ok {
					if j.verdicts != nil {
						j.verdicts[v] = verdict
					}
					if verdict == No {
						rejected.Store(true)
					}
				}
			}
			statsMu.Lock()
			j.stats.Messages += sent
			j.stats.KnowledgeUnits += units
			j.stats.Crashes += crashes
			j.stats.Retries += retries
			j.stats.TimedOutRounds += timedOut
			if incomplete {
				j.stats.IncompleteViews++
			}
			statsMu.Unlock()
		}(v)
	}
	wg.Wait()
	accepted := !rejected.Load()
	j.stats.Evaluated = int(evaluated.Load())
	j.stats.EarlyExit = j.opts.EarlyExit && !accepted
	return accepted
}

// fallbackExtractor is the shared, lazily-built extractor serving incomplete
// nodes: one per faulty run, mutex-guarded because extractor views are
// scratch-backed and the decide must finish before the next extraction.
type fallbackExtractor struct {
	x *graph.ViewExtractor
}

// decide extracts node v's true functional view and decides it, serialised
// on mu. The extracted view is exactly the functional definition of the
// node's radius-t view, so fallback verdicts equal lossless verdicts.
func (f *fallbackExtractor) decide(j *job, mu *sync.Mutex, v int) Verdict {
	mu.Lock()
	defer mu.Unlock()
	if f.x == nil {
		f.x = j.extractor()
	}
	view := f.x.At(v, j.dec.Horizon)
	return j.decideView(view, v)
}
