// Integration tests of the sharded message-passing runtime against the real
// internal/fault injector (an external test package: fault imports engine,
// so these tests cannot live in package engine).
package engine_test

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
)

// shardedHosts is the host battery for the sharded fault-parity property:
// thin boundaries (path, cycle), fat boundaries (random), and a grid.
func shardedHosts(seed int64) []*graph.Labeled {
	n := 8 + int((seed%19+19)%19)
	labels := []graph.Label{"a", "b", "c"}
	return []*graph.Labeled{
		graph.RandomLabels(graph.Cycle(3+n), labels, seed),
		graph.RandomLabels(graph.Random(n, 0.25, seed+1), labels, seed+2),
		graph.RandomLabels(graph.Grid(3, 2+n/3), labels, seed+3),
	}
}

func shardedDecider() engine.Decider {
	return engine.Decider{Name: "obl-viewhash", Horizon: 2,
		Decide: func(view *graph.View) engine.Verdict {
			sum := 0
			for _, b := range []byte(view.ObliviousCode()) {
				sum += int(b)
			}
			return engine.Verdict(sum%3 != 0)
		}}
}

// shardedFaultPlans is the ≥2-plan battery the parity pin runs under: a pure
// crash plan, a pure message plan, and a mixed one. Message fates apply per
// shard-pair link in the sharded runtime; crash fates apply per (node,
// attempt) site in both schedulers.
func shardedFaultPlans(seed int64) []*fault.Plan {
	return []*fault.Plan{
		{Seed: seed, Crash: &fault.CrashModel{Rate: 0.3}},
		{Seed: seed + 1, Message: &fault.MessageModel{DropRate: 0.3, DuplicateRate: 0.3, DelayRate: 0.3, RetransmitBudget: 1}},
		{Seed: seed + 2, Crash: &fault.CrashModel{Rate: 0.2}, Message: &fault.MessageModel{DropRate: 0.5}},
	}
}

// TestShardedMPFaultParity pins the degradation ladder: under every fault
// plan, sharded verdicts are bit-identical to the sequential scheduler's for
// every shard count — a lost halo ring degrades rim nodes to exact fallback
// extraction, it never changes a verdict.
func TestShardedMPFaultParity(t *testing.T) {
	dec := shardedDecider()
	property := func(seed int64) bool {
		for _, l := range shardedHosts(seed) {
			for _, plan := range shardedFaultPlans(seed) {
				want := engine.EvalOblivious(dec, l, engine.Options{Faults: plan, Seed: seed})
				for _, p := range []int{1, 2, 4, 8} {
					for _, dedup := range []bool{false, true} {
						opts := engine.Options{Scheduler: engine.ShardedMPWith(p), Faults: plan, Dedup: dedup, Seed: seed}
						got := engine.EvalOblivious(dec, l, opts)
						if got.Accepted != want.Accepted {
							t.Logf("seed=%d p=%d dedup=%v: acceptance %v, sequential %v",
								seed, p, dedup, got.Accepted, want.Accepted)
							return false
						}
						for v := range want.Verdicts {
							if got.Verdicts[v] != want.Verdicts[v] {
								t.Logf("seed=%d p=%d dedup=%v node=%d: verdict %s, sequential %s",
									seed, p, dedup, v, got.Verdicts[v], want.Verdicts[v])
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestShardedMPStats pins the exchange accounting: a multi-shard run on a
// connected host reports its shard count, imports ghost nodes, counts halo
// bytes per transmitted copy, and breaks both down by round; a single shard
// exchanges nothing.
func TestShardedMPStats(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(64), "u")
	dec := shardedDecider()

	out := engine.EvalOblivious(dec, l, engine.Options{Scheduler: engine.ShardedMPWith(4)})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	s := out.Stats
	if s.Shards != 4 || s.Workers != 4 {
		t.Errorf("Shards=%d Workers=%d, want 4/4", s.Shards, s.Workers)
	}
	if s.GhostNodes == 0 || s.HaloBytes == 0 || s.Messages == 0 {
		t.Errorf("no exchange recorded: %+v", s)
	}
	if len(s.RoundHaloBytes) != dec.Horizon || len(s.RoundGhostNodes) != dec.Horizon {
		t.Fatalf("per-round breakdowns have lengths %d/%d, want %d",
			len(s.RoundHaloBytes), len(s.RoundGhostNodes), dec.Horizon)
	}
	sumB, sumG := 0, 0
	for r := range s.RoundHaloBytes {
		sumB += s.RoundHaloBytes[r]
		sumG += s.RoundGhostNodes[r]
	}
	if sumB != s.HaloBytes {
		t.Errorf("round halo bytes sum to %d, total %d", sumB, s.HaloBytes)
	}
	if sumG != s.GhostNodes {
		t.Errorf("round ghost nodes sum to %d, total %d", sumG, s.GhostNodes)
	}
	// On a cycle each shard has 2 boundary edges per side; every round's ring
	// is nonempty for horizon 2.
	for r := range s.RoundGhostNodes {
		if s.RoundGhostNodes[r] == 0 {
			t.Errorf("round %d imported no ghosts on a cycle", r)
		}
	}

	solo := engine.EvalOblivious(dec, l, engine.Options{Scheduler: engine.ShardedMPWith(1)})
	if solo.Stats.GhostNodes != 0 || solo.Stats.HaloBytes != 0 || solo.Stats.Messages != 0 {
		t.Errorf("single shard exchanged data: %+v", solo.Stats)
	}
	if solo.Stats.Shards != 1 {
		t.Errorf("Shards=%d, want 1", solo.Stats.Shards)
	}
}

// TestShardedMPMessageFaultTally checks the deterministic fault counters
// surface on the sharded path and that heavy drop degrades (IncompleteViews)
// without changing verdicts.
func TestShardedMPMessageFaultTally(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(48), "u")
	dec := shardedDecider()
	plan := &fault.Plan{Seed: 9, Message: &fault.MessageModel{DropRate: 0.9}}
	want := engine.EvalOblivious(dec, l, engine.Options{Seed: 9})
	got := engine.EvalOblivious(dec, l, engine.Options{Scheduler: engine.ShardedMPWith(4), Faults: plan, Seed: 9})
	if got.Err != nil {
		t.Fatal(got.Err)
	}
	if got.Stats.Dropped == 0 {
		t.Error("0.9 drop rate dropped no rings")
	}
	if got.Stats.IncompleteViews == 0 {
		t.Error("dropped rings degraded no rim nodes")
	}
	for v := range want.Verdicts {
		if got.Verdicts[v] != want.Verdicts[v] {
			t.Fatalf("node %d: verdict %s under faults, %s lossless", v, got.Verdicts[v], want.Verdicts[v])
		}
	}
}

// TestRecoverySweepShardedParity runs the E16 self-stabilization sweep
// through the sharded runtime: episode aggregates must match the default
// scheduler's exactly (heal times derive from seed streams, and sharded
// verdicts are parity-pinned).
func TestRecoverySweepShardedParity(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(32), "ok")
	dec := engine.Decider{Name: "all-ok", Horizon: 1, Decide: func(view *graph.View) engine.Verdict {
		for _, lab := range view.Labels {
			if lab != "ok" {
				return engine.No
			}
		}
		return engine.Yes
	}}
	opts := engine.TrialOptions{Trials: 10, Seed: 7, Workers: 1}
	base, err := fault.RecoverySweep(l, fault.SelfStabConfig{Model: fault.Flip, Rate: 0.2, Decider: dec}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := fault.RecoverySweep(l, fault.SelfStabConfig{
		Model: fault.Flip, Rate: 0.2, Decider: dec,
		Options: engine.Options{Scheduler: engine.ShardedMPWith(4)},
	}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if sharded.Episodes != base.Episodes ||
		sharded.ExposedRounds != base.ExposedRounds ||
		sharded.ExposedEpisodes != base.ExposedEpisodes ||
		sharded.MeanRecoveryRounds != base.MeanRecoveryRounds ||
		sharded.Trials.Accepted != base.Trials.Accepted {
		t.Fatalf("sharded E16 sweep diverged:\nbase:    %+v\nsharded: %+v", base, sharded)
	}
}

// TestShardedMPOriginalMapping pins View.Original across the sub-host
// runtimes: both the flooding protocol and the sharded runtime extract views
// from renumbered local graphs, and must rebind Original to host addresses
// before the decider sees it (a regression test for the rewrite that moved
// assembly onto shared extractors).
func TestShardedMPOriginalMapping(t *testing.T) {
	g := graph.Grid(3, 5)
	labels := make([]graph.Label, g.N())
	for v := range labels {
		labels[v] = graph.Label(fmt.Sprintf("n%d", v))
	}
	l := graph.NewLabeled(g, labels)
	var mu sync.Mutex
	var bad []string
	dec := engine.Decider{Name: "probe-original", Horizon: 2,
		Decide: func(view *graph.View) engine.Verdict {
			host := view.Original[view.Root]
			if host < 0 || host >= len(labels) || view.Labels[view.Root] != labels[host] {
				mu.Lock()
				bad = append(bad, fmt.Sprintf("root labelled %q claims host %d (%q)",
					view.Labels[view.Root], host, labels[host]))
				mu.Unlock()
			}
			return engine.Yes
		}}
	for _, sched := range []engine.Scheduler{engine.MessagePassing, engine.ShardedMPWith(4)} {
		bad = bad[:0]
		out := engine.EvalOblivious(dec, l, engine.Options{Scheduler: sched})
		if out.Err != nil {
			t.Fatalf("%s: %v", sched.Name(), out.Err)
		}
		if len(bad) > 0 {
			t.Errorf("%s: Original misbound: %s (and %d more)", sched.Name(), bad[0], len(bad)-1)
		}
	}
}
