package engine

import "testing"

// BenchmarkBoundedCacheHitRate measures the steady-state hit rate of the
// periodic-cycle family sweep (the same workload as
// TestBoundedCacheHitRateRetention) on an unbounded cache versus a bounded
// cache sized at boundedHitRateCapBytes, reporting each arm's rate as a
// "hitrate" metric. CI gates bounded/unbounded ≥ 0.95 via benchgate
// -metric hitrate -min-ratio 0.95 — eviction may cost capacity, not the
// steady-state regime.
func BenchmarkBoundedCacheHitRate(b *testing.B) {
	b.Run("unbounded", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			rate = sweepHitRate(b, NewViewCache(), 10)
		}
		b.ReportMetric(rate, "hitrate")
	})
	b.Run("bounded", func(b *testing.B) {
		var rate float64
		for i := 0; i < b.N; i++ {
			rate = sweepHitRate(b, NewBoundedViewCache(boundedHitRateCapBytes), 10)
		}
		b.ReportMetric(rate, "hitrate")
	})
}
