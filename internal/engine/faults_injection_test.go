// Integration tests of the engine's fault-injection hardening against the
// real internal/fault injector (an external test package: fault imports
// engine, so these tests cannot live in package engine).
package engine_test

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/graph"
)

func degreeDecider() engine.Decider {
	return engine.Decider{
		Name:    "deg<=2",
		Horizon: 1,
		Decide: func(view *graph.View) engine.Verdict {
			return engine.Verdict(view.G.Degree(view.Root) <= 2)
		},
	}
}

// labelSumDecider needs the full radius-2 view, so MP flooding (and its
// faulty degradation paths) does real work.
func labelSumDecider() engine.Decider {
	return engine.Decider{
		Name:    "label-sum",
		Horizon: 2,
		Decide: func(view *graph.View) engine.Verdict {
			sum := 0
			for _, lab := range view.Labels {
				sum += len(lab)
			}
			return engine.Verdict(sum%7 != 3)
		},
	}
}

func testInstance(n int) *graph.Labeled {
	return graph.RandomLabels(graph.Cycle(n), []graph.Label{"a", "bb", "ccc"}, 9)
}

// Worker crashes must never lose or duplicate a node's verdict: whatever the
// scheduler or worker count, a crashed decide is respawned and the committed
// verdicts match the fault-free run exactly (or surface as VerdictErrors —
// never as silent wrong verdicts). Crash draws are pure in (node, attempt),
// so the whole fault trace replays identically everywhere.
func TestCrashRespawnNeverLosesVerdicts(t *testing.T) {
	l := testInstance(60)
	dec := degreeDecider()
	clean := engine.EvalOblivious(dec, l, engine.Options{})
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}

	plan := &fault.Plan{Seed: 21, Crash: &fault.CrashModel{Rate: 0.4}}
	type runKey struct {
		name  string
		sched engine.Scheduler
	}
	runs := []runKey{
		{"sequential", engine.Sequential},
		{"sharded-2", engine.ShardedWith(2)},
		{"sharded-8", engine.ShardedWith(8)},
		{"mp", engine.MessagePassing},
	}
	var base engine.Outcome
	for i, rk := range runs {
		out := engine.EvalOblivious(dec, l, engine.Options{
			Scheduler:    rk.sched,
			Faults:       plan,
			MaxAttempts:  8,
			RetryBackoff: -1,
		})
		if len(out.Errs) != 0 {
			// Rate 0.4 with 8 attempts: per-node failure odds 0.4^8. The
			// trace is deterministic, so this is a fixed property of seed 21.
			t.Fatalf("%s: unexpected exhausted nodes %v", rk.name, out.Errs)
		}
		if out.Err != nil {
			t.Fatalf("%s: %v", rk.name, out.Err)
		}
		if !reflect.DeepEqual(out.Verdicts, clean.Verdicts) || out.Accepted != clean.Accepted {
			t.Errorf("%s: crash respawn changed verdicts", rk.name)
		}
		if out.Stats.Crashes == 0 {
			t.Errorf("%s: rate 0.4 injected no crashes", rk.name)
		}
		if out.Stats.Retries != out.Stats.Crashes {
			t.Errorf("%s: crashes=%d retries=%d, want equal when no node exhausts",
				rk.name, out.Stats.Crashes, out.Stats.Retries)
		}
		if i == 0 {
			base = out
			continue
		}
		// The fault trace is scheduler- and worker-count-invariant.
		if out.Stats.Crashes != base.Stats.Crashes || out.Stats.Retries != base.Stats.Retries {
			t.Errorf("%s: fault tally (crashes=%d retries=%d) diverged from sequential (%d, %d)",
				rk.name, out.Stats.Crashes, out.Stats.Retries, base.Stats.Crashes, base.Stats.Retries)
		}
	}
}

// Exhausted retries surface as per-node VerdictErrors and an unreliable
// outcome — never as an accept, on the early-exit path included.
func TestCrashExhaustionIsErrorNotAccept(t *testing.T) {
	l := testInstance(12)
	dec := degreeDecider()
	plan := &fault.Plan{Seed: 1, Crash: &fault.CrashModel{Rate: 1}}
	opts := engine.Options{Faults: plan, MaxAttempts: 2, RetryBackoff: -1}

	out := engine.EvalOblivious(dec, l, opts)
	if out.Accepted {
		t.Fatal("an all-crash run must not read as accepted")
	}
	if out.Err == nil {
		t.Fatal("an all-crash run must carry an error")
	}
	var ve engine.VerdictError
	if !errors.As(out.Err, &ve) {
		t.Fatalf("Err = %v, want a VerdictError", out.Err)
	}
	if len(out.Errs) != l.N() {
		t.Fatalf("errs = %d, want one per node", len(out.Errs))
	}
	for i, e := range out.Errs {
		if e.Node != i || e.Attempts != 2 {
			t.Errorf("errs[%d] = %+v, want node %d after 2 attempts", i, e, i)
		}
	}

	opts.EarlyExit = true
	out = engine.EvalOblivious(dec, l, opts)
	if out.Accepted || out.Err == nil {
		t.Error("early exit must not turn exhausted nodes into an accept")
	}
}

// A genuine decider panic (not injected) takes the same respawn path: flaky
// panics are retried away, persistent ones become VerdictErrors.
func TestGenuinePanicRespawn(t *testing.T) {
	l := testInstance(10)
	var calls [10]atomic.Int32
	flaky := engine.Decider{
		Name:    "flaky",
		Horizon: 1,
		Decide: func(view *graph.View) engine.Verdict {
			if calls[view.Original[view.Root]].Add(1) == 1 {
				panic("first attempt always dies")
			}
			return engine.Yes
		},
	}
	out := engine.EvalOblivious(flaky, l, engine.Options{MaxAttempts: 3, RetryBackoff: -1})
	if !out.Accepted || out.Err != nil {
		t.Fatalf("flaky decider must recover on retry: accepted=%v err=%v", out.Accepted, out.Err)
	}
	if out.Stats.Crashes != 10 || out.Stats.Retries != 10 {
		t.Errorf("crashes=%d retries=%d, want 10 each (one panic per node)",
			out.Stats.Crashes, out.Stats.Retries)
	}

	persistent := engine.Decider{
		Name:    "dies-at-7",
		Horizon: 1,
		Decide: func(view *graph.View) engine.Verdict {
			if view.Original[view.Root] == 7 {
				panic("node 7 always dies")
			}
			return engine.Yes
		},
	}
	out = engine.EvalOblivious(persistent, l, engine.Options{MaxAttempts: 3, RetryBackoff: -1})
	if out.Accepted {
		t.Fatal("a persistently panicking node must not read as accepted")
	}
	if len(out.Errs) != 1 || out.Errs[0].Node != 7 || out.Errs[0].Attempts != 3 {
		t.Fatalf("errs = %+v, want node 7 after 3 attempts", out.Errs)
	}
}

// The message-fault matrix: drop, duplicate and delay at several rates, with
// and without a round timeout. Degradation must never change a verdict —
// incomplete views fall back to extractor evaluation, so the committed
// verdicts always equal the fault-free run — and the fault trace must replay
// identically from the seed.
func TestMessageFaultMatrixNeverWrong(t *testing.T) {
	l := testInstance(24)
	dec := labelSumDecider()
	clean := engine.EvalOblivious(dec, l, engine.Options{})
	if clean.Err != nil {
		t.Fatal(clean.Err)
	}

	matrix := []fault.MessageModel{
		{DropRate: 0.1, RetransmitBudget: 1},
		{DropRate: 0.4, RetransmitBudget: 1},
		{DropRate: 0.4, RetransmitBudget: 0},
		{DuplicateRate: 0.3},
		{DelayRate: 0.3, MaxDelay: 2},
		{DropRate: 0.2, DuplicateRate: 0.2, DelayRate: 0.2, RetransmitBudget: 2},
	}
	for i, m := range matrix {
		m := m
		plan := &fault.Plan{Seed: int64(100 + i), Message: &m}
		opts := engine.Options{Scheduler: engine.MessagePassing, Faults: plan}
		out := engine.EvalOblivious(dec, l, opts)
		if out.Err != nil {
			t.Fatalf("model %d: message faults must degrade, not fail: %v", i, out.Err)
		}
		if !reflect.DeepEqual(out.Verdicts, clean.Verdicts) || out.Accepted != clean.Accepted {
			t.Errorf("model %d (%+v): faulty MP verdicts diverged from fault-free", i, m)
		}
		if m.DropRate >= 0.4 && out.Stats.Dropped == 0 {
			t.Errorf("model %d: dropRate %.1f recorded no drops", i, m.DropRate)
		}
		if m.DuplicateRate > 0 && out.Stats.Duplicated == 0 {
			t.Errorf("model %d: duplicateRate %.1f recorded no duplicates", i, m.DuplicateRate)
		}
		if m.DelayRate > 0 && out.Stats.Delayed == 0 {
			t.Errorf("model %d: delayRate %.1f recorded no delays", i, m.DelayRate)
		}
		if out.Stats.Dropped > 0 && out.Stats.IncompleteViews == 0 {
			t.Errorf("model %d: lost messages recorded no incomplete views", i)
		}

		// Replay: the identical options replay the identical fault trace.
		again := engine.EvalOblivious(dec, l, opts)
		if !reflect.DeepEqual(again.Stats, out.Stats) {
			t.Errorf("model %d: same seed, different stats:\n%+v\n%+v", i, again.Stats, out.Stats)
		}
		if !reflect.DeepEqual(again.Verdicts, out.Verdicts) {
			t.Errorf("model %d: same seed, different verdicts", i)
		}
	}
}

// A round timeout with no faults takes the hardened MP path but must behave
// exactly like the lossless protocol: nothing times out, nothing degrades.
func TestRoundTimeoutCleanPath(t *testing.T) {
	l := testInstance(20)
	dec := labelSumDecider()
	clean := engine.EvalOblivious(dec, l, engine.Options{Scheduler: engine.MessagePassing})
	out := engine.EvalOblivious(dec, l, engine.Options{
		Scheduler:    engine.MessagePassing,
		RoundTimeout: 5 * time.Second,
	})
	if out.Err != nil {
		t.Fatal(out.Err)
	}
	if !reflect.DeepEqual(out.Verdicts, clean.Verdicts) {
		t.Error("timeout-armed clean run diverged from lossless MP")
	}
	if out.Stats.IncompleteViews != 0 || out.Stats.TimedOutRounds != 0 ||
		out.Stats.Dropped != 0 || out.Stats.Duplicated != 0 || out.Stats.Delayed != 0 {
		t.Errorf("clean run recorded fault activity: %+v", out.Stats)
	}
}

// Crash injection and message faults compose on the MP backend.
func TestMessageAndCrashFaultsCompose(t *testing.T) {
	l := testInstance(16)
	dec := labelSumDecider()
	clean := engine.EvalOblivious(dec, l, engine.Options{})
	plan := &fault.Plan{
		Seed:    5,
		Crash:   &fault.CrashModel{Rate: 0.3},
		Message: &fault.MessageModel{DropRate: 0.3, RetransmitBudget: 1},
	}
	out := engine.EvalOblivious(dec, l, engine.Options{
		Scheduler:    engine.MessagePassing,
		Faults:       plan,
		MaxAttempts:  8,
		RetryBackoff: -1,
	})
	if out.Err != nil {
		t.Fatalf("composed faults: %v", out.Err)
	}
	if !reflect.DeepEqual(out.Verdicts, clean.Verdicts) {
		t.Error("composed faults changed verdicts")
	}
	if out.Stats.Crashes == 0 || out.Stats.Dropped == 0 {
		t.Errorf("stats = %+v, want both crash and drop activity", out.Stats)
	}
}
