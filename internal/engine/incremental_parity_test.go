package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// This file is the incremental engine's differential oracle: randomized
// update streams (edge add/remove with duplicates and no-ops, label
// rewrites, updates inside and outside existing balls) run through an
// Incremental session while a mirror instance is re-evaluated from scratch
// after every step. Per-node verdicts and the aggregate outcome must be
// bit-identical at each step, for every scheduler on the from-scratch side
// and both repair widths on the incremental side. FuzzIncrementalParity
// extends the pinned streams with coverage-guided ones (CI runs it with
// -fuzztime on top of the seed corpus).

// streamOp is one update of a generated stream: an edge toggle or, when
// Label is non-empty, a label rewrite at node U.
type streamOp struct {
	U, V  int
	Add   bool
	Label graph.Label
}

// genStream derives a deterministic op stream: mostly edge toggles biased
// towards repeat endpoints (duplicates and no-ops included by construction),
// with a sprinkle of label rewrites.
func genStream(rng *rand.Rand, n, steps int) []streamOp {
	ops := make([]streamOp, 0, steps)
	for len(ops) < steps {
		switch rng.Intn(10) {
		case 0: // label rewrite
			ops = append(ops, streamOp{U: rng.Intn(n), Label: graph.Label(fmt.Sprintf("L%d", rng.Intn(3)))})
		case 1, 2: // toggle around a previous endpoint: inside existing balls
			if len(ops) == 0 {
				continue
			}
			u := ops[rng.Intn(len(ops))].U
			v := rng.Intn(n)
			if u == v {
				continue
			}
			ops = append(ops, streamOp{U: u, V: v, Add: rng.Intn(2) == 0})
		default:
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			ops = append(ops, streamOp{U: u, V: v, Add: rng.Intn(2) == 0})
		}
	}
	return ops
}

// parityDeciders are structure- and label-sensitive deterministic deciders
// (arbitrary isomorphism-invariant view functions — ideal differential
// subjects).
func incParityDeciders() []Decider {
	return []Decider{
		degreeAtMost(2),
		{Name: "ballsize-r2", Horizon: 2, Decide: func(view *graph.View) Verdict {
			return Verdict(view.N()%3 != 0)
		}},
		{Name: "labelmix-r2", Horizon: 2, Decide: func(view *graph.View) Verdict {
			l0 := 0
			for _, lab := range view.Labels {
				if lab == "L0" {
					l0++
				}
			}
			return Verdict(2*l0 <= len(view.Labels))
		}},
	}
}

// runParityStream drives one op stream through an Incremental session and
// asserts bit-identical verdicts and outcome against from-scratch
// re-evaluation of a mirror instance after every step.
func runParityStream(t *testing.T, host *graph.Graph, labels []graph.Label, dec Decider, ops []streamOp, incOpts, refOpts Options) {
	t.Helper()
	incL := graph.NewLabeled(host.Clone(), append([]graph.Label(nil), labels...))
	refL := graph.NewLabeled(host.Clone(), append([]graph.Label(nil), labels...))

	inc, err := NewIncremental(dec, incL, incOpts)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	compareStep(t, -1, inc, dec, refL, refOpts)
	for i, op := range ops {
		if op.Label != "" {
			inc.ApplyLabel(op.U, op.Label)
			refL.Labels[op.U] = op.Label
		} else {
			inc.ApplyEdge(op.U, op.V, op.Add)
			refL.G.ApplyUpdate(op.U, op.V, op.Add)
		}
		compareStep(t, i, inc, dec, refL, refOpts)
	}
}

// compareStep is one from-scratch evaluation plus the bit-identity check.
func compareStep(t *testing.T, step int, inc *Incremental, dec Decider, refL *graph.Labeled, refOpts Options) {
	t.Helper()
	ref := EvalOblivious(dec, refL, refOpts)
	if ref.Err != nil {
		t.Fatalf("step %d: from-scratch eval failed: %v", step, ref.Err)
	}
	got := inc.Outcome()
	if got.Accepted != ref.Accepted {
		t.Fatalf("step %d: accepted %v != from-scratch %v", step, got.Accepted, ref.Accepted)
	}
	if len(got.Verdicts) != len(ref.Verdicts) {
		t.Fatalf("step %d: verdict lengths %d != %d", step, len(got.Verdicts), len(ref.Verdicts))
	}
	for v := range ref.Verdicts {
		if got.Verdicts[v] != ref.Verdicts[v] {
			t.Fatalf("step %d: node %d verdict %v != from-scratch %v (dirty=%v)",
				step, v, got.Verdicts[v], ref.Verdicts[v], inc.LastDirty())
		}
	}
	if got.Err != nil || len(got.Errs) != 0 {
		t.Fatalf("step %d: fault-free session reported errors: %v", step, got.Err)
	}
}

// parityHosts are the graph families the pinned streams cover. Labels come
// from a 3-letter alphabet: label diversity both exercises label-sensitive
// deciders and keeps the canonical code's refinement search polynomial.
func parityHosts() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"cycle48":  graph.Cycle(48),
		"grid6x8":  graph.Grid(6, 8),
		"random64": graph.Random(64, 0.05, 3),
	}
}

// TestIncrementalParityStreams is the pinned-seed differential suite: every
// host family and decider, from-scratch arms on all three schedulers plus an
// explicit worker count, incremental repairs both sequential and sharded.
func TestIncrementalParityStreams(t *testing.T) {
	refScheds := map[string]Scheduler{
		"sequential": Sequential,
		"sharded":    Sharded,
		"sharded3":   ShardedWith(3),
		"mp":         MessagePassing,
	}
	incScheds := map[string]Scheduler{
		"seq": Sequential,
		"shd": ShardedWith(4),
	}
	for hostName, host := range parityHosts() {
		for _, dec := range incParityDeciders() {
			rng := rand.New(rand.NewSource(int64(len(hostName)) * int64(dec.Horizon+7)))
			labels := graph.RandomLabels(host, []graph.Label{"L0", "L1", "L2"}, rng.Int63()).Labels
			ops := genStream(rng, host.N(), 24)
			for refName, refSched := range refScheds {
				for incName, incSched := range incScheds {
					name := fmt.Sprintf("%s/%s/%s/%s", hostName, dec.Name, refName, incName)
					t.Run(name, func(t *testing.T) {
						runParityStream(t, host, labels, dec, ops,
							Options{Scheduler: incSched}, Options{Scheduler: refSched})
					})
				}
			}
		}
	}
}

// TestIncrementalParityWithDedup re-runs one stream per host with the shared
// dedup cache on both arms: the cache layer must not change any verdict.
func TestIncrementalParityWithDedup(t *testing.T) {
	for hostName, host := range parityHosts() {
		t.Run(hostName, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			labels := graph.RandomLabels(host, []graph.Label{"L0", "L1", "L2"}, 5).Labels
			ops := genStream(rng, host.N(), 24)
			runParityStream(t, host, labels, degreeAtMost(3), ops,
				Options{Dedup: true}, Options{Dedup: true})
		})
	}
}

// FuzzIncrementalParity is the coverage-guided variant: the fuzzer picks the
// stream seed and the shape, the harness asserts step-wise bit-identity on
// both repair widths.
func FuzzIncrementalParity(f *testing.F) {
	f.Add(int64(1), uint8(32), uint8(16), uint8(0))
	f.Add(int64(2), uint8(48), uint8(24), uint8(1))
	f.Add(int64(3), uint8(64), uint8(24), uint8(2))
	f.Add(int64(99), uint8(8), uint8(32), uint8(0))
	f.Add(int64(1234567), uint8(80), uint8(12), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, stepsRaw, family uint8) {
		n := 8 + int(nRaw)%89         // 8..96
		steps := 1 + int(stepsRaw)%32 // 1..32
		var host *graph.Graph
		switch family % 3 {
		case 0:
			host = graph.Cycle(n)
		case 1:
			host = graph.Path(n)
		default:
			host = graph.Random(n, 0.05, seed)
		}
		rng := rand.New(rand.NewSource(seed))
		labels := graph.RandomLabels(host, []graph.Label{"L0", "L1", "L2"}, rng.Int63()).Labels
		ops := genStream(rng, n, steps)
		dec := incParityDeciders()[int(family/3)%3]
		runParityStream(t, host, labels, dec, ops,
			Options{Scheduler: ShardedWith(4)}, Options{Scheduler: Sequential})
	})
}
