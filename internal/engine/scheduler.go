package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Scheduler is an evaluation backend. All schedulers produce identical
// per-node verdicts for contract-abiding deciders; they differ in cost model
// and fidelity (the message-passing backend actually runs the synchronous
// protocol). The interface is closed over this package: backends share the
// job's internal buffers.
type Scheduler interface {
	// Name identifies the backend in stats and reports.
	Name() string
	// run evaluates the job, filling j.verdicts (when present) and j.stats,
	// and reports global acceptance.
	run(j *job) bool
}

// Sequential evaluates nodes in index order on the calling goroutine.
var Sequential Scheduler = seqScheduler{}

// Sharded evaluates nodes on a worker pool with one batched extractor per
// worker, capped at min(GOMAXPROCS, n) workers; small instances run inline
// so no idle goroutines are ever spawned.
var Sharded Scheduler = shardedScheduler{}

// MessagePassing evaluates by actually running the synchronous flooding
// protocol with one goroutine per node — the operational definition of a
// local algorithm, kept as a backend so its equivalence with the functional
// backends stays continuously tested.
var MessagePassing Scheduler = mpScheduler{}

// ShardedWith returns a Sharded scheduler with an explicit worker cap
// (still additionally capped at n).
func ShardedWith(workers int) Scheduler {
	if workers < 1 {
		panic("engine: worker count must be positive")
	}
	return shardedScheduler{workers: workers}
}

// shardedMinNodes is the instance size below which the sharded scheduler
// runs inline: dispatching a handful of views to a pool costs more than
// deciding them.
const shardedMinNodes = 64

// dedupMaxViewNodes bounds the views the deduplication cache considers.
// The canonical code is the cache key, and its individualisation-refinement
// search can explode on large symmetric views (the Section 3 pivot
// neighbourhoods are the canonical offender); large views also repeat far
// less often than the small structured ones dedup exists for. Oversized
// views are decided directly.
const dedupMaxViewNodes = 64

// cachedVerdict looks up / fills the dedup cache around a decide call. The
// cache handles its own striped locking, so sequential and sharded workers
// share this path; counters are worker-local and aggregated by the caller.
func cachedVerdict(j *job, view *graph.View, v int, evaluated, hits, inserted *int) Verdict {
	if j.cache == nil || view.N() > dedupMaxViewNodes {
		*evaluated++
		return j.decideView(view, v)
	}
	// First level: the raw-structure key — one linear pass over the view's
	// flat CSR arena. Structured instances repeat neighbourhoods
	// byte-for-byte (extraction order is a function of structure), so the
	// common case never pays for a canonical code.
	raw := view.RawCode()
	if verdict, ok := j.cache.lookupRaw(j.dec.Name, j.dec.Horizon, raw); ok {
		*hits++
		return verdict
	}
	// Second level: the canonical code, catching views that repeat only up
	// to isomorphism. The raw bytes live in their own workspace buffer, so
	// they survive the canonical computation below and can seed the raw
	// layer afterwards.
	code := view.CanonCode()
	verdict, computed, stored := j.cache.lookupOrCompute(j.dec.Name, j.dec.Horizon, code,
		func() Verdict { return j.decideView(view, v) })
	if computed {
		*evaluated++
	} else {
		*hits++
	}
	if stored {
		*inserted++
	}
	j.cache.storeRaw(j.dec.Name, j.dec.Horizon, raw, verdict)
	return verdict
}

// finishCacheStats records the cache-side stats after a run.
func (j *job) finishCacheStats(inserted int) {
	if j.cache == nil {
		return
	}
	j.stats.DistinctViews = inserted
	j.stats.CacheSize = j.cache.Len()
	j.stats.CacheShared = j.shared
}

type seqScheduler struct{}

func (seqScheduler) Name() string { return "sequential" }

func (seqScheduler) run(j *job) bool {
	return j.runNodes(j.extractor())
}

// runNodes evaluates every node of the job in index order on the calling
// goroutine through the given extractor (which must be bound to the job's
// host), filling verdicts and all single-worker stats. It is the sequential
// scheduler's whole body and the per-instance inner loop of EvalBatch, where
// the extractor arrives Reset from the previous instance instead of freshly
// allocated.
func (j *job) runNodes(x *graph.ViewExtractor) bool {
	accepted := true
	inserted := 0
	for v := 0; v < j.n; v++ {
		if j.checkCanceled() {
			break
		}
		verdict, ok := j.evalNode(x, v,
			&j.stats.Evaluated, &j.stats.DedupHits, &inserted, &j.stats.Crashes, &j.stats.Retries)
		if !ok {
			// All attempts crashed: recorded in j.errs; neither an accept
			// nor a reject, so it must not trigger early exit.
			continue
		}
		if j.verdicts != nil {
			j.verdicts[v] = verdict
		}
		if verdict == No {
			accepted = false
			if j.opts.EarlyExit {
				break
			}
		}
	}
	j.stats.Workers = 1
	j.finishCacheStats(inserted)
	j.stats.EarlyExit = j.opts.EarlyExit && !accepted
	return accepted
}

type shardedScheduler struct {
	// workers caps the pool; 0 means GOMAXPROCS.
	workers int
}

func (shardedScheduler) Name() string { return "sharded" }

func (s shardedScheduler) run(j *job) bool {
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > j.n {
		workers = j.n
	}
	if workers <= 1 || j.n < shardedMinNodes {
		return seqScheduler{}.run(j)
	}

	var (
		next     atomic.Int64
		rejected atomic.Bool
		mu       sync.Mutex // guards stats aggregation only; the cache stripes its own locks
		wg       sync.WaitGroup
		inserted int
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			x := j.extractor()
			evaluated, hits, ins, crashes, retries := 0, 0, 0, 0, 0
			for {
				v := int(next.Add(1)) - 1
				if v >= j.n {
					break
				}
				if j.opts.EarlyExit && rejected.Load() {
					break
				}
				if j.checkCanceled() {
					break
				}
				verdict, ok := j.evalNode(x, v, &evaluated, &hits, &ins, &crashes, &retries)
				if !ok {
					continue // recorded in j.errs; not a reject
				}
				if j.verdicts != nil {
					j.verdicts[v] = verdict
				}
				if verdict == No {
					rejected.Store(true)
				}
			}
			mu.Lock()
			j.stats.Evaluated += evaluated
			j.stats.DedupHits += hits
			j.stats.Crashes += crashes
			j.stats.Retries += retries
			inserted += ins
			mu.Unlock()
		}()
	}
	wg.Wait()
	accepted := !rejected.Load()
	j.stats.Workers = workers
	j.finishCacheStats(inserted)
	j.stats.EarlyExit = j.opts.EarlyExit && !accepted
	return accepted
}
