package engine

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// Scheduler is an evaluation backend. All schedulers produce identical
// per-node verdicts for contract-abiding deciders; they differ in cost model
// and fidelity (the message-passing backend actually runs the synchronous
// protocol). The interface is closed over this package: backends share the
// job's internal buffers.
type Scheduler interface {
	// Name identifies the backend in stats and reports.
	Name() string
	// run evaluates the job, filling j.verdicts (when present) and j.stats,
	// and reports global acceptance.
	run(j *job) bool
}

// Sequential evaluates nodes in index order on the calling goroutine.
var Sequential Scheduler = seqScheduler{}

// Sharded evaluates nodes on a worker pool with one batched extractor per
// worker, capped at min(GOMAXPROCS, n) workers; small instances run inline
// so no idle goroutines are ever spawned.
var Sharded Scheduler = shardedScheduler{}

// MessagePassing evaluates by actually running the synchronous flooding
// protocol with one goroutine per node — the operational definition of a
// local algorithm, kept as a backend so its equivalence with the functional
// backends stays continuously tested.
var MessagePassing Scheduler = mpScheduler{}

// ShardedWith returns a Sharded scheduler with an explicit worker cap
// (still additionally capped at n).
func ShardedWith(workers int) Scheduler {
	if workers < 1 {
		panic("engine: worker count must be positive")
	}
	return shardedScheduler{workers: workers}
}

// shardedMinNodes is the instance size below which the sharded scheduler
// runs inline: dispatching a handful of views to a pool costs more than
// deciding them.
const shardedMinNodes = 64

// dedupMaxViewNodes bounds the views the deduplication cache considers.
// The canonical code is the cache key, and its individualisation-refinement
// search can explode on large symmetric views (the Section 3 pivot
// neighbourhoods are the canonical offender); large views also repeat far
// less often than the small structured ones dedup exists for. Oversized
// views are decided directly.
const dedupMaxViewNodes = 64

// cachedVerdict looks up / fills the dedup cache around a decide call.
// lock is nil for the single-threaded scheduler.
func cachedVerdict(j *job, cache map[string]Verdict, lock *sync.Mutex, view *graph.View, v int,
	evaluated, hits *int) Verdict {
	if cache == nil || view.N() > dedupMaxViewNodes {
		*evaluated++
		return j.decideView(view, v)
	}
	code := view.ObliviousCode()
	if lock != nil {
		lock.Lock()
	}
	verdict, ok := cache[code]
	if lock != nil {
		lock.Unlock()
	}
	if ok {
		*hits++
		return verdict
	}
	verdict = j.decideView(view, v)
	*evaluated++
	if lock != nil {
		lock.Lock()
	}
	cache[code] = verdict
	if lock != nil {
		lock.Unlock()
	}
	return verdict
}

type seqScheduler struct{}

func (seqScheduler) Name() string { return "sequential" }

func (seqScheduler) run(j *job) bool {
	x := j.extractor()
	var cache map[string]Verdict
	if j.dedup {
		cache = make(map[string]Verdict)
	}
	accepted := true
	for v := 0; v < j.n; v++ {
		view := x.At(v, j.dec.Horizon)
		verdict := cachedVerdict(j, cache, nil, view, v, &j.stats.Evaluated, &j.stats.DedupHits)
		if j.verdicts != nil {
			j.verdicts[v] = verdict
		}
		if verdict == No {
			accepted = false
			if j.opts.EarlyExit {
				break
			}
		}
	}
	j.stats.Workers = 1
	j.stats.DistinctViews = len(cache)
	j.stats.EarlyExit = j.opts.EarlyExit && !accepted
	return accepted
}

type shardedScheduler struct {
	// workers caps the pool; 0 means GOMAXPROCS.
	workers int
}

func (shardedScheduler) Name() string { return "sharded" }

func (s shardedScheduler) run(j *job) bool {
	workers := s.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > j.n {
		workers = j.n
	}
	if workers <= 1 || j.n < shardedMinNodes {
		return seqScheduler{}.run(j)
	}

	var (
		next     atomic.Int64
		rejected atomic.Bool
		mu       sync.Mutex // guards cache and stats aggregation
		wg       sync.WaitGroup
		cache    map[string]Verdict
	)
	if j.dedup {
		cache = make(map[string]Verdict)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			x := j.extractor()
			evaluated, hits := 0, 0
			for {
				v := int(next.Add(1)) - 1
				if v >= j.n {
					break
				}
				if j.opts.EarlyExit && rejected.Load() {
					break
				}
				view := x.At(v, j.dec.Horizon)
				verdict := cachedVerdict(j, cache, &mu, view, v, &evaluated, &hits)
				if j.verdicts != nil {
					j.verdicts[v] = verdict
				}
				if verdict == No {
					rejected.Store(true)
				}
			}
			mu.Lock()
			j.stats.Evaluated += evaluated
			j.stats.DedupHits += hits
			mu.Unlock()
		}()
	}
	wg.Wait()
	accepted := !rejected.Load()
	j.stats.Workers = workers
	j.stats.DistinctViews = len(cache)
	j.stats.EarlyExit = j.opts.EarlyExit && !accepted
	return accepted
}
