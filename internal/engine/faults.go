package engine

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/graph"
)

// This file is the engine's crash-hardening layer: every decider invocation
// runs inside a recover guard with a bounded retry-and-backoff loop, so a
// panicking decider (or an injected crash from Options.Faults) costs one
// node's verdict at worst — recorded as a VerdictError on the Outcome —
// instead of killing the whole process. The guard is compiled into every
// scheduler's hot path; fault-free overhead is one nil check plus an
// open-coded defer per node, gated ≤5% by the CI benchgates.

// evalNode runs the full guarded pipeline for one node on a functional
// scheduler (sequential, sharded, batch): extract the view, consult the dedup
// cache, decide — retrying up to j.maxAttempts times when an attempt panics.
// ok reports whether a verdict was produced; on false the node has been
// recorded in j.errs and the caller must not treat the returned No as a
// decision. Counters are worker-local, aggregated by the caller.
func (j *job) evalNode(x *graph.ViewExtractor, v int, evaluated, hits, inserted, crashes, retries *int) (Verdict, bool) {
	var cause error
	for a := 0; a < j.maxAttempts; a++ {
		if a > 0 {
			*retries++
			j.backoffSleep(v, a)
		}
		verdict, err := j.attemptNode(x, v, a, evaluated, hits, inserted)
		if err == nil {
			return verdict, true
		}
		*crashes++
		cause = err
	}
	j.recordErr(VerdictError{Node: v, Attempts: j.maxAttempts, Cause: cause})
	return No, false
}

// attemptNode is one guarded attempt of evalNode: the recover boundary.
// View extraction runs inside the guard too — a decider receiving a view is
// not the only thing that can panic on a corrupted instance.
func (j *job) attemptNode(x *graph.ViewExtractor, v, attempt int, evaluated, hits, inserted *int) (verdict Verdict, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if j.faults != nil && j.faults.CrashDecide(v, attempt) {
		panic("injected worker crash")
	}
	view := x.At(v, j.dec.Horizon)
	return cachedVerdict(j, view, v, evaluated, hits, inserted), nil
}

// guardedVerdict is the retry loop for callers that bring their own decide
// body (the MessagePassing backend, whose views are assembled from gathered
// knowledge rather than extracted). Same contract as evalNode.
func (j *job) guardedVerdict(v int, crashes, retries *int, body func() Verdict) (Verdict, bool) {
	var cause error
	for a := 0; a < j.maxAttempts; a++ {
		if a > 0 {
			*retries++
			j.backoffSleep(v, a)
		}
		verdict, err := j.attemptBody(v, a, body)
		if err == nil {
			return verdict, true
		}
		*crashes++
		cause = err
	}
	j.recordErr(VerdictError{Node: v, Attempts: j.maxAttempts, Cause: cause})
	return No, false
}

// attemptBody is guardedVerdict's recover boundary.
func (j *job) attemptBody(v, attempt int, body func() Verdict) (verdict Verdict, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	if j.faults != nil && j.faults.CrashDecide(v, attempt) {
		panic("injected worker crash")
	}
	return body(), nil
}

// retryBackoffCap bounds the exponential retry backoff: beyond it further
// attempts wait the capped duration (with jitter) instead of doubling on —
// a node with a persistently crashing decider must not stall its worker for
// seconds before the VerdictError is recorded.
const retryBackoffCap = 10 * time.Millisecond

// backoffSleep sleeps before re-attempt number a (a >= 1) of node v's
// decide. A non-positive backoff disables sleeping (j.backoff is defaulted
// at job construction; negative means "no backoff", for tests).
func (j *job) backoffSleep(v, a int) {
	if j.backoff <= 0 {
		return
	}
	time.Sleep(backoffDuration(j.backoff, j.opts.Seed, v, a))
}

// backoffDuration is the deterministic capped-exponential-with-jitter retry
// schedule: base doubles per attempt up to retryBackoffCap, then a
// splitmix64 draw off (seed, node, attempt) — the same stream family as the
// fault/trial seeds — picks a jitter point in [d/2, d]. Retries under a
// seeded fault plan therefore remain exactly replayable: the same seed
// yields the same sleeps, while distinct nodes retrying concurrently (a
// crash-burst fault plan) spread out instead of thundering in lockstep.
func backoffDuration(base time.Duration, seed int64, node, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt; i++ {
		d <<= 1
		if d >= retryBackoffCap {
			break
		}
	}
	if d > retryBackoffCap {
		d = retryBackoffCap
	}
	half := uint64(d / 2)
	h := mix64(mix64(uint64(seed)+golden64*uint64(node+1)) + golden64*uint64(attempt))
	return time.Duration(half + h%(half+1))
}

// recordErr appends a node failure under the job's error lock (workers
// record concurrently; outcome() sorts).
func (j *job) recordErr(e VerdictError) {
	j.errMu.Lock()
	j.errs = append(j.errs, e)
	j.errMu.Unlock()
}

// sortVerdictErrors orders failures by node index so Outcome.Errs is
// deterministic across worker counts and schedulers.
func sortVerdictErrors(errs []VerdictError) {
	sort.Slice(errs, func(i, k int) bool { return errs[i].Node < errs[k].Node })
}
