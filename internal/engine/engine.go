// Package engine is the single evaluation pipeline behind every decision
// runner in the repository. All of the paper's results — the LD vs LD*
// separations, NLD certificate checking, BPLD sampling — reduce to one
// operation: evaluate a local verdict on the radius-t view of every node of
// an instance and aggregate by unanimity. The engine implements that
// operation once, well:
//
//   - batched view extraction through graph.ViewExtractor, reusing per-worker
//     frontier and subgraph scratch buffers instead of allocating per node;
//   - optional canonical-view deduplication: structurally identical views
//     (ubiquitous on cycles, layered trees T_r and the pyramid instances) are
//     decided once and the verdict shared;
//   - early-exit aggregation: LOCAL acceptance is all-accept, so in
//     accept-only evaluations the first reject cancels all outstanding work;
//   - pluggable schedulers — Sequential, Sharded (worker pool) and
//     MessagePassing (the fidelity-preserving goroutine-per-node flooding
//     runtime) — all guaranteed to produce identical per-node verdicts,
//     which the parity suite enforces.
//
// The higher layers (internal/local, internal/decide, internal/experiments,
// cmd/localsim) are thin adapters over Eval and EvalOblivious.
package engine

import (
	"math/rand"

	"repro/internal/graph"
)

// Verdict is a node's local output in a decision task.
type Verdict bool

// Local outputs. A property holds globally iff every node says Yes; it fails
// iff at least one node says No.
const (
	Yes Verdict = true
	No  Verdict = false
)

// String renders the verdict.
func (v Verdict) String() string {
	if v == Yes {
		return "yes"
	}
	return "no"
}

// Decider is the engine's uniform per-view verdict function. Exactly one of
// Decide and DecideRand must be set; DecideRand additionally receives the
// node's private coin stream (derived deterministically from Options.Seed and
// the node index, so scheduler choice never changes coins).
type Decider struct {
	// Name identifies the decider in reports.
	Name string
	// Horizon is the constant local horizon t.
	Horizon int
	// UsesIDs documents that the decider reads view.IDs. It is advisory —
	// identifiers are present on a view iff the evaluation carries them —
	// but lets call sites state intent.
	UsesIDs bool
	// Decide maps a view to a verdict. Deciders must be deterministic
	// functions of the view (up to isomorphism of the view's internal
	// numbering, per the LOCAL model).
	Decide func(view *graph.View) Verdict
	// DecideRand is the randomized variant; when set it takes precedence
	// over Decide and disables view deduplication (coins differ per node).
	DecideRand func(view *graph.View, rng *rand.Rand) Verdict
}

// Outcome is the result of evaluating a decider on an instance.
type Outcome struct {
	// Verdicts holds the per-node verdicts, indexed by node. It is nil when
	// the evaluation ran with Options.EarlyExit: early exit trades per-node
	// output for the right to stop at the first reject.
	Verdicts []Verdict
	// Accepted is true iff every node output Yes.
	Accepted bool
	// Stats reports how the engine got there.
	Stats Stats
}

// Stats is the engine's cost accounting for one evaluation.
type Stats struct {
	// Scheduler is the backend that ran the evaluation.
	Scheduler string
	// Nodes is the instance size.
	Nodes int
	// Evaluated counts decider invocations; with deduplication or early
	// exit it can be far below Nodes.
	Evaluated int
	// DedupHits counts verdicts served from the canonical-view cache.
	DedupHits int
	// DistinctViews is the number of distinct canonical view codes this
	// evaluation decided and inserted into the cache (0 when deduplication
	// is off). With a private per-evaluation cache this equals the number of
	// distinct codes seen; with a shared Options.Cache, views already decided
	// by earlier evaluations count as DedupHits instead.
	DistinctViews int
	// CacheSize is the verdict cache's total entry count after the
	// evaluation — across every decider and prior evaluation sharing it when
	// Options.Cache is set.
	CacheSize int
	// CacheShared reports that the evaluation ran against a caller-provided
	// cross-run cache rather than a private one.
	CacheShared bool
	// Workers is the number of concurrent workers used.
	Workers int
	// EarlyExit reports whether evaluation stopped before covering all
	// nodes.
	EarlyExit bool
	// Messages and KnowledgeUnits are filled by the MessagePassing backend:
	// point-to-point sends and total snapshot sizes of the flooding
	// protocol.
	Messages       int
	KnowledgeUnits int
	// Rounds is the number of synchronous rounds of the MessagePassing
	// backend (equal to the horizon).
	Rounds int
}

// Options tune one evaluation.
type Options struct {
	// Scheduler selects the backend; nil means Sequential.
	Scheduler Scheduler
	// Dedup enables canonical-view deduplication. It applies only to
	// deterministic deciders on identifier-free evaluations (identifiers
	// make views per-node unique, coins make verdicts per-node unique);
	// the engine silently skips it otherwise. Views larger than an internal
	// threshold are also decided directly — canonical codes of large
	// symmetric views (the Section 3 pivot neighbourhoods) are far more
	// expensive than the verdicts they would save. The MessagePassing
	// backend never deduplicates: it assembles every node's view
	// operationally by design.
	//
	// Sharing a verdict across isomorphic views assumes the decider is a
	// function of the view's isomorphism class (the LOCAL model's contract;
	// see Decider.Decide). Verification harnesses probing possibly
	// ill-behaved deciders should leave dedup off.
	Dedup bool
	// Cache, when set, is a shared cross-evaluation verdict cache: views
	// already decided by an earlier evaluation (of this decider, keyed by
	// name and horizon) are served without re-deciding. Setting Cache
	// implies Dedup; the same soundness conditions apply, plus the naming
	// condition documented on ViewCache. When nil and Dedup is set, the
	// engine uses a private cache for the one evaluation.
	Cache *ViewCache
	// EarlyExit lets the engine stop at the first No verdict. The Outcome
	// then carries no per-node verdicts.
	EarlyExit bool
	// Seed drives the per-node coin streams of randomized deciders.
	Seed int64
}

// Eval evaluates a decider on every node of an identifier-carrying instance.
func Eval(dec Decider, in *graph.Instance, opts Options) Outcome {
	return newJob(dec, in.Labeled, in, opts).run()
}

// EvalOblivious evaluates a decider on every node of a labelled graph with no
// identifiers anywhere — the Id-oblivious regime.
func EvalOblivious(dec Decider, l *graph.Labeled, opts Options) Outcome {
	return newJob(dec, l, nil, opts).run()
}

// job is one evaluation in flight: the resolved inputs plus the output
// buffers the scheduler fills.
type job struct {
	dec  Decider
	l    *graph.Labeled
	in   *graph.Instance // nil for oblivious evaluation
	opts Options

	n        int
	cache    *ViewCache // nil when dedup is off or unsound for this input
	shared   bool       // cache came from Options.Cache (cross-run)
	verdicts []Verdict
	stats    Stats
}

func newJob(dec Decider, l *graph.Labeled, in *graph.Instance, opts Options) *job {
	if (dec.Decide == nil) == (dec.DecideRand == nil) {
		panic("engine: exactly one of Decide and DecideRand must be set")
	}
	if dec.Horizon < 0 {
		panic("engine: negative horizon")
	}
	j := &job{
		dec:  dec,
		l:    l,
		in:   in,
		opts: opts,
		n:    l.N(),
	}
	// Dedup (and hence any cache use) is sound only for deterministic
	// deciders on identifier-free evaluations; the engine silently skips it
	// otherwise, exactly as before.
	if (opts.Dedup || opts.Cache != nil) && in == nil && dec.DecideRand == nil {
		if opts.Cache != nil {
			j.cache, j.shared = opts.Cache, true
		} else {
			j.cache = NewViewCache()
		}
	}
	j.stats.Nodes = j.n
	if !opts.EarlyExit {
		j.verdicts = make([]Verdict, j.n)
	}
	return j
}

// run dispatches to the scheduler and assembles the outcome.
func (j *job) run() Outcome {
	sched := j.opts.Scheduler
	if sched == nil {
		sched = Sequential
	}
	j.stats.Scheduler = sched.Name()
	if j.n == 0 {
		j.stats.Workers = 0
		return Outcome{Verdicts: j.verdicts, Accepted: true, Stats: j.stats}
	}
	accepted := sched.run(j)
	return Outcome{Verdicts: j.verdicts, Accepted: accepted, Stats: j.stats}
}

// extractor builds the per-worker batched view extractor for this job.
func (j *job) extractor() *graph.ViewExtractor {
	if j.in != nil {
		return graph.NewInstanceViewExtractor(j.in)
	}
	return graph.NewViewExtractor(j.l)
}

// decideView invokes the decider on one view, deriving the node's coin
// stream when the decider is randomized. Streams are splitmix64-derived from
// (Options.Seed, node) — see streamSeed — so scheduler choice never changes
// coins and the trial engine can replay any single trial (TrialSeed). The
// historical derivation (seed XOR node times a truncated odd constant) left
// the low bit of every node's source seed identical; it is gone.
func (j *job) decideView(view *graph.View, v int) Verdict {
	if j.dec.DecideRand != nil {
		return j.dec.DecideRand(view, newCoins(streamSeed(j.opts.Seed, v)))
	}
	return j.dec.Decide(view)
}
