// Package engine is the single evaluation pipeline behind every decision
// runner in the repository. All of the paper's results — the LD vs LD*
// separations, NLD certificate checking, BPLD sampling — reduce to one
// operation: evaluate a local verdict on the radius-t view of every node of
// an instance and aggregate by unanimity. The engine implements that
// operation once, well:
//
//   - batched view extraction through graph.ViewExtractor, reusing per-worker
//     frontier and subgraph scratch buffers instead of allocating per node;
//   - optional canonical-view deduplication: structurally identical views
//     (ubiquitous on cycles, layered trees T_r and the pyramid instances) are
//     decided once and the verdict shared;
//   - early-exit aggregation: LOCAL acceptance is all-accept, so in
//     accept-only evaluations the first reject cancels all outstanding work;
//   - pluggable schedulers — Sequential, Sharded (worker pool) and
//     MessagePassing (the fidelity-preserving goroutine-per-node flooding
//     runtime) — all guaranteed to produce identical per-node verdicts,
//     which the parity suite enforces.
//
// The higher layers (internal/local, internal/decide, internal/experiments,
// cmd/localsim) are thin adapters over Eval and EvalOblivious.
package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
)

// Verdict is a node's local output in a decision task.
type Verdict bool

// Local outputs. A property holds globally iff every node says Yes; it fails
// iff at least one node says No.
const (
	Yes Verdict = true
	No  Verdict = false
)

// String renders the verdict.
func (v Verdict) String() string {
	if v == Yes {
		return "yes"
	}
	return "no"
}

// Decider is the engine's uniform per-view verdict function. Exactly one of
// Decide and DecideRand must be set; DecideRand additionally receives the
// node's private coin stream (derived deterministically from Options.Seed and
// the node index, so scheduler choice never changes coins).
type Decider struct {
	// Name identifies the decider in reports.
	Name string
	// Horizon is the constant local horizon t.
	Horizon int
	// UsesIDs documents that the decider reads view.IDs. It is advisory —
	// identifiers are present on a view iff the evaluation carries them —
	// but lets call sites state intent.
	UsesIDs bool
	// Decide maps a view to a verdict. Deciders must be deterministic
	// functions of the view (up to isomorphism of the view's internal
	// numbering, per the LOCAL model).
	Decide func(view *graph.View) Verdict
	// DecideRand is the randomized variant; when set it takes precedence
	// over Decide and disables view deduplication (coins differ per node).
	DecideRand func(view *graph.View, rng *rand.Rand) Verdict
}

// MessageFate is an Injector's ruling on one directed message of the
// MessagePassing backend: whether the message (eventually) arrives, how many
// sends it took, how many extra copies are delivered, and how many rounds
// late it lands. The zero value means "lost on the first send".
type MessageFate struct {
	// Delivered reports that some (re)transmission got through.
	Delivered bool
	// Attempts is the number of sends consumed, the successful one included
	// (at least 1 whenever the fate was consulted).
	Attempts int
	// Duplicates is the number of extra copies delivered beyond the first.
	Duplicates int
	// Delay is the number of rounds the delivery lands late (0 = on time).
	Delay int
}

// Injector decides the fate of fault-injection sites during an evaluation.
// Implementations MUST be pure functions of their arguments (the engine may
// consult the same site more than once and relies on getting the same
// answer), which also makes every faulty run replayable from the injector's
// seed. internal/fault provides the seed-derived implementation; the engine
// only defines the contract.
type Injector interface {
	// CrashDecide reports whether the decider invocation for this node
	// should crash on the given attempt (0-based). The engine retries up to
	// Options.MaxAttempts times before recording a VerdictError.
	CrashDecide(node, attempt int) bool
	// MessageFate rules on the round-r message from one node to a
	// neighbour in the MessagePassing backend.
	MessageFate(round, from, to int) MessageFate
}

// VerdictError records a node whose verdict could not be computed: every
// attempt crashed (injected or genuine panic). Errored nodes never count as
// accepts — an Outcome carrying errors reports Accepted == false.
type VerdictError struct {
	// Node is the node whose evaluation failed.
	Node int
	// Attempts is the number of attempts made before giving up.
	Attempts int
	// Cause is the recovered panic of the final attempt.
	Cause error
}

// Error implements the error interface.
func (e VerdictError) Error() string {
	return fmt.Sprintf("engine: node %d failed after %d attempt(s): %v", e.Node, e.Attempts, e.Cause)
}

// Unwrap exposes the recovered cause.
func (e VerdictError) Unwrap() error { return e.Cause }

// ErrEmptyInstance is returned when an evaluation is asked to decide an
// instance with no nodes. Unanimity over zero nodes is vacuous, and the
// seed-era engine reported such instances as accepted — indistinguishable
// from a genuine accept in early-exit aggregation. The engine now surfaces
// the condition instead of guessing.
var ErrEmptyInstance = errors.New("engine: empty instance (no nodes to decide)")

// Outcome is the result of evaluating a decider on an instance.
type Outcome struct {
	// Verdicts holds the per-node verdicts, indexed by node. It is nil when
	// the evaluation ran with Options.EarlyExit: early exit trades per-node
	// output for the right to stop at the first reject.
	Verdicts []Verdict
	// Accepted is true iff every node output Yes. It is always false when
	// Err is non-nil: an instance with failed nodes is never reported
	// accepted (and never silently rejected either — Err says why).
	Accepted bool
	// Errs lists the nodes whose evaluation failed after all retry
	// attempts, sorted by node index. Empty on healthy runs.
	Errs []VerdictError
	// Err summarises why the outcome is unreliable: a validation error
	// (malformed Decider or Options), ErrEmptyInstance, or the first
	// VerdictError when nodes failed. Nil on healthy runs.
	Err error
	// Stats reports how the engine got there.
	Stats Stats
}

// Stats is the engine's cost accounting for one evaluation.
type Stats struct {
	// Scheduler is the backend that ran the evaluation.
	Scheduler string
	// Nodes is the instance size.
	Nodes int
	// Evaluated counts decider invocations; with deduplication or early
	// exit it can be far below Nodes.
	Evaluated int
	// DedupHits counts verdicts served from the canonical-view cache.
	DedupHits int
	// DistinctViews is the number of distinct canonical view codes this
	// evaluation decided and inserted into the cache (0 when deduplication
	// is off). With a private per-evaluation cache this equals the number of
	// distinct codes seen; with a shared Options.Cache, views already decided
	// by earlier evaluations count as DedupHits instead.
	DistinctViews int
	// CacheSize is the verdict cache's total entry count after the
	// evaluation — across every decider and prior evaluation sharing it when
	// Options.Cache is set.
	CacheSize int
	// CacheShared reports that the evaluation ran against a caller-provided
	// cross-run cache rather than a private one.
	CacheShared bool
	// Workers is the number of concurrent workers used.
	Workers int
	// EarlyExit reports whether evaluation stopped before covering all
	// nodes.
	EarlyExit bool
	// Messages and KnowledgeUnits are filled by the MessagePassing backend:
	// point-to-point sends and total snapshot sizes of the flooding
	// protocol.
	Messages       int
	KnowledgeUnits int
	// Rounds is the number of synchronous rounds of the MessagePassing
	// backend (equal to the horizon).
	Rounds int
	// Crashes counts decider invocations that crashed (injected or genuine
	// panics, recovered by the engine); Retries counts the re-attempts those
	// crashes triggered. A node whose every attempt crashed additionally
	// appears in Outcome.Errs.
	Crashes int
	// Retries counts crash re-attempts (see Crashes).
	Retries int
	// Dropped, Duplicated, Delayed and Retransmits are filled by the
	// MessagePassing backend under fault injection: messages lost after the
	// retransmit budget, extra copies delivered, deliveries landing late,
	// and retransmissions consumed.
	Dropped     int
	Duplicated  int
	Delayed     int
	Retransmits int
	// IncompleteViews counts nodes whose flooding gather was incomplete
	// (dropped/delayed messages anywhere in their dependency cone, or a
	// round timeout) and that therefore fell back to extractor-based view
	// evaluation — degraded but never wrong.
	IncompleteViews int
	// TimedOutRounds counts round-barrier timeouts observed by nodes
	// (Options.RoundTimeout).
	TimedOutRounds int
	// Shards is the shard count of the ShardedMP backend (0 for every other
	// scheduler).
	Shards int
	// GhostNodes counts the ghost (halo) node records imported across all
	// shard-pair links by the ShardedMP backend — the total boundary-ball
	// volume the partition forced onto the wire.
	GhostNodes int
	// HaloBytes is the total encoded size of the boundary-view messages the
	// ShardedMP backend sent (every transmitted copy counted), the
	// shard-boundary communication cost of the run.
	HaloBytes int
	// RoundHaloBytes and RoundGhostNodes break HaloBytes and GhostNodes down
	// per exchange round (index r holds round r's tally); nil outside the
	// ShardedMP backend.
	RoundHaloBytes  []int
	RoundGhostNodes []int
}

// Options tune one evaluation.
type Options struct {
	// Scheduler selects the backend; nil means Sequential.
	Scheduler Scheduler
	// Dedup enables canonical-view deduplication. It applies only to
	// deterministic deciders on identifier-free evaluations (identifiers
	// make views per-node unique, coins make verdicts per-node unique);
	// the engine silently skips it otherwise. Views larger than an internal
	// threshold are also decided directly — canonical codes of large
	// symmetric views (the Section 3 pivot neighbourhoods) are far more
	// expensive than the verdicts they would save. The MessagePassing
	// backend never deduplicates: it assembles every node's view
	// operationally by design.
	//
	// Sharing a verdict across isomorphic views assumes the decider is a
	// function of the view's isomorphism class (the LOCAL model's contract;
	// see Decider.Decide). Verification harnesses probing possibly
	// ill-behaved deciders should leave dedup off.
	Dedup bool
	// Cache, when set, is a shared cross-evaluation verdict cache: views
	// already decided by an earlier evaluation (of this decider, keyed by
	// name and horizon) are served without re-deciding. Setting Cache
	// implies Dedup; the same soundness conditions apply, plus the naming
	// condition documented on ViewCache. When nil and Dedup is set, the
	// engine uses a private cache for the one evaluation.
	Cache *ViewCache
	// CacheBytes bounds the private dedup cache the engine creates when
	// Dedup is set without an explicit Cache: the cache is byte-accounted
	// and CLOCK-evicted so it never exceeds this many bytes (see
	// NewBoundedViewCache). 0 means the historical unbounded-with-entry-cap
	// private cache; negative is a validation error. Ignored when
	// Options.Cache is provided — bound a shared cache at construction.
	CacheBytes int64
	// Ctx, when set, bounds the evaluation: the sequential and sharded
	// schedulers (and EvalBatch) poll it between nodes and stop once it is
	// done, returning Outcome{Accepted: false, Err: wrapping ctx.Err()}.
	// This is how a serving layer propagates per-request deadlines into the
	// engine. The MessagePassing backend checks only at launch — its
	// goroutine-per-node rounds are bounded with RoundTimeout instead. Nil
	// means no deadline.
	Ctx context.Context
	// EarlyExit lets the engine stop at the first No verdict. The Outcome
	// then carries no per-node verdicts.
	EarlyExit bool
	// Seed drives the per-node coin streams of randomized deciders.
	Seed int64
	// Faults, when set, injects deterministic faults into the evaluation:
	// decider crashes on every scheduler, message drop/duplicate/delay on
	// the MessagePassing backend. See Injector. Nil means a perfect world
	// (the hooks stay compiled in but cost one nil check).
	Faults Injector
	// MaxAttempts bounds the per-node decide attempts when an attempt
	// crashes (injected via Faults or a genuine decider panic). 0 means 3;
	// negative is a validation error. After the last attempt the node is
	// recorded as a VerdictError instead of killing the sweep.
	MaxAttempts int
	// RetryBackoff is the sleep before the first re-attempt of a crashed
	// decide, doubling per further attempt. 0 means 100µs; negative
	// disables backoff entirely (tests).
	RetryBackoff time.Duration
	// RoundTimeout bounds how long a MessagePassing node waits at each
	// round barrier. 0 means wait forever (the lossless protocol cannot
	// deadlock — every node reaches every barrier). A node that times out
	// stops synchronising, declares its view incomplete and falls back to
	// extractor-based evaluation: degradation, not a hang and not a wrong
	// verdict.
	RoundTimeout time.Duration
}

// Eval evaluates a decider on every node of an identifier-carrying instance.
// A malformed decider or options yields Outcome{Accepted: false, Err: ...}
// instead of a panic — library callers degrade gracefully; MustEval keeps the
// panicking contract for call sites that want it.
func Eval(dec Decider, in *graph.Instance, opts Options) Outcome {
	j, err := newJob(dec, in.Labeled, in, opts)
	if err != nil {
		return Outcome{Accepted: false, Err: err}
	}
	return j.run()
}

// EvalOblivious evaluates a decider on every node of a labelled graph with no
// identifiers anywhere — the Id-oblivious regime. Validation failures are
// returned in Outcome.Err, as in Eval.
func EvalOblivious(dec Decider, l *graph.Labeled, opts Options) Outcome {
	j, err := newJob(dec, l, nil, opts)
	if err != nil {
		return Outcome{Accepted: false, Err: err}
	}
	return j.run()
}

// MustEval is Eval panicking on any Outcome.Err — validation failures, empty
// instances and node-level verdict errors alike. For call sites where a
// failed evaluation is a programming error.
func MustEval(dec Decider, in *graph.Instance, opts Options) Outcome {
	out := Eval(dec, in, opts)
	if out.Err != nil {
		panic(out.Err)
	}
	return out
}

// MustEvalOblivious is EvalOblivious panicking on any Outcome.Err.
func MustEvalOblivious(dec Decider, l *graph.Labeled, opts Options) Outcome {
	out := EvalOblivious(dec, l, opts)
	if out.Err != nil {
		panic(out.Err)
	}
	return out
}

// job is one evaluation in flight: the resolved inputs plus the output
// buffers the scheduler fills.
type job struct {
	dec  Decider
	l    *graph.Labeled
	in   *graph.Instance // nil for oblivious evaluation
	opts Options

	n        int
	cache    *ViewCache // nil when dedup is off or unsound for this input
	shared   bool       // cache came from Options.Cache (cross-run)
	verdicts []Verdict
	stats    Stats

	faults      Injector
	maxAttempts int
	backoff     time.Duration

	// done is Options.Ctx's done channel (nil without a context); canceled
	// latches the first observation so every scheduler loop sees one answer.
	done     <-chan struct{}
	canceled atomic.Bool

	errMu sync.Mutex
	errs  []VerdictError
}

func newJob(dec Decider, l *graph.Labeled, in *graph.Instance, opts Options) (*job, error) {
	if (dec.Decide == nil) == (dec.DecideRand == nil) {
		return nil, errors.New("engine: exactly one of Decide and DecideRand must be set")
	}
	if dec.Horizon < 0 {
		return nil, fmt.Errorf("engine: negative horizon %d", dec.Horizon)
	}
	if opts.MaxAttempts < 0 {
		return nil, fmt.Errorf("engine: negative MaxAttempts %d", opts.MaxAttempts)
	}
	if opts.CacheBytes < 0 {
		return nil, fmt.Errorf("engine: negative CacheBytes %d", opts.CacheBytes)
	}
	j := &job{
		dec:         dec,
		l:           l,
		in:          in,
		opts:        opts,
		n:           l.N(),
		faults:      opts.Faults,
		maxAttempts: opts.MaxAttempts,
		backoff:     opts.RetryBackoff,
	}
	if j.maxAttempts == 0 {
		j.maxAttempts = defaultMaxAttempts
	}
	if j.backoff == 0 {
		j.backoff = defaultRetryBackoff
	}
	// Dedup (and hence any cache use) is sound only for deterministic
	// deciders on identifier-free evaluations; the engine silently skips it
	// otherwise, exactly as before.
	if (opts.Dedup || opts.Cache != nil) && in == nil && dec.DecideRand == nil {
		if opts.Cache != nil {
			j.cache, j.shared = opts.Cache, true
		} else if opts.CacheBytes > 0 {
			j.cache = NewBoundedViewCache(opts.CacheBytes)
		} else {
			j.cache = NewViewCache()
		}
	}
	if opts.Ctx != nil {
		j.done = opts.Ctx.Done()
	}
	j.stats.Nodes = j.n
	if !opts.EarlyExit {
		j.verdicts = make([]Verdict, j.n)
	}
	return j, nil
}

// defaultMaxAttempts is the per-node attempt budget when Options leaves
// MaxAttempts zero: one initial attempt plus two retries.
const defaultMaxAttempts = 3

// defaultRetryBackoff is the first-retry backoff when Options leaves
// RetryBackoff zero. It doubles per further attempt.
const defaultRetryBackoff = 100 * time.Microsecond

// run dispatches to the scheduler and assembles the outcome.
func (j *job) run() Outcome {
	sched := j.opts.Scheduler
	if sched == nil {
		sched = Sequential
	}
	j.stats.Scheduler = sched.Name()
	if j.n == 0 {
		j.stats.Workers = 0
		return Outcome{Verdicts: j.verdicts, Accepted: false, Err: ErrEmptyInstance, Stats: j.stats}
	}
	accepted := sched.run(j)
	return j.outcome(accepted)
}

// outcome assembles the final Outcome after a scheduler run: node-level
// failures (recorded by the guarded decide path) force Accepted to false and
// surface as a sorted error list plus a summary Err — a sweep with failed
// nodes is neither an accept nor a clean reject. A context cancellation
// observed mid-run likewise yields neither: the outcome reports the
// cancellation so a serving layer can answer "deadline exceeded" instead of
// a fabricated verdict.
func (j *job) outcome(accepted bool) Outcome {
	out := Outcome{Verdicts: j.verdicts, Accepted: accepted, Stats: j.stats}
	if len(j.errs) > 0 {
		sortVerdictErrors(j.errs)
		out.Errs = j.errs
		out.Accepted = false
		out.Err = fmt.Errorf("engine: %d node(s) failed all %d attempt(s); first: %w",
			len(j.errs), j.maxAttempts, j.errs[0])
	}
	if j.canceled.Load() {
		out.Accepted = false
		out.Err = fmt.Errorf("engine: evaluation canceled: %w", j.opts.Ctx.Err())
	}
	return out
}

// checkCanceled polls the evaluation's context between nodes: one nil check
// on context-free evaluations, a latched non-blocking receive otherwise.
// Once done fires, every scheduler loop sees true and winds down.
func (j *job) checkCanceled() bool {
	if j.done == nil {
		return false
	}
	if j.canceled.Load() {
		return true
	}
	select {
	case <-j.done:
		j.canceled.Store(true)
		return true
	default:
		return false
	}
}

// extractor builds the per-worker batched view extractor for this job.
func (j *job) extractor() *graph.ViewExtractor {
	if j.in != nil {
		return graph.NewInstanceViewExtractor(j.in)
	}
	return graph.NewViewExtractor(j.l)
}

// decideView invokes the decider on one view, deriving the node's coin
// stream when the decider is randomized. Streams are splitmix64-derived from
// (Options.Seed, node) — see streamSeed — so scheduler choice never changes
// coins and the trial engine can replay any single trial (TrialSeed). The
// historical derivation (seed XOR node times a truncated odd constant) left
// the low bit of every node's source seed identical; it is gone.
func (j *job) decideView(view *graph.View, v int) Verdict {
	if j.dec.DecideRand != nil {
		return j.dec.DecideRand(view, newCoins(streamSeed(j.opts.Seed, v)))
	}
	return j.dec.Decide(view)
}
