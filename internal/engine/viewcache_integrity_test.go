package engine

import (
	"testing"

	"repro/internal/graph"
)

// The integrity guard: an entry whose stored code bytes no longer hash to
// the sum recorded at insert time is evicted, counted as a reject, and
// recomputed — corruption degrades to a miss, never to a poisoned verdict.
func TestViewCacheIntegrityGuardRejectsCorruption(t *testing.T) {
	cache := NewViewCache()
	l := graph.UniformlyLabeled(graph.Cycle(50), "c")
	dec := degreeAtMost(2)

	out := EvalOblivious(dec, l, Options{Dedup: true, Cache: cache})
	if !out.Accepted {
		t.Fatal("clean cycle must accept")
	}
	if st := cache.Stats(); st.Rejects != 0 || st.Entries == 0 {
		t.Fatalf("after warmup: %+v, want entries and no rejects", st)
	}

	// Corrupt every stored entry's bytes in place (raw and canonical layers
	// both, inline and arena layouts both), simulating a torn write or stray
	// memory corruption.
	corrupted := 0
	for i := range cache.shards {
		s := &cache.shards[i]
		s.mu.Lock()
		for j := range s.slots {
			if s.slots[j].live && len(s.slots[j].code) > 0 {
				s.slots[j].code[0] ^= 0xff
				corrupted++
			}
		}
		for _, entries := range s.mi {
			for j := range entries {
				if len(entries[j].code) > 0 {
					entries[j].code[0] ^= 0xff
					corrupted++
				}
			}
		}
		s.mu.Unlock()
	}
	if corrupted == 0 {
		t.Fatal("nothing to corrupt: the cache stored no entries")
	}

	out = EvalOblivious(dec, l, Options{Dedup: true, Cache: cache})
	if !out.Accepted {
		t.Fatal("recomputed verdicts must still accept")
	}
	st := cache.Stats()
	if st.Rejects == 0 {
		t.Fatal("corrupted entries must be rejected, not served")
	}

	// The rejected entries were recomputed and re-inserted: a third run is
	// all hits again, with no further rejects.
	before := st
	out = EvalOblivious(dec, l, Options{Dedup: true, Cache: cache})
	if !out.Accepted {
		t.Fatal("healed cache must still accept")
	}
	st = cache.Stats()
	if st.Rejects != before.Rejects {
		t.Errorf("healed cache rejected again: %d -> %d", before.Rejects, st.Rejects)
	}
	if st.Hits <= before.Hits {
		t.Error("healed cache served no hits")
	}
}

// Stats must count hits and misses across evaluations sharing the cache.
func TestViewCacheStatsCounters(t *testing.T) {
	cache := NewViewCache()
	l := graph.UniformlyLabeled(graph.Cycle(30), "c")
	dec := degreeAtMost(2)

	EvalOblivious(dec, l, Options{Dedup: true, Cache: cache})
	st := cache.Stats()
	if st.Misses == 0 {
		t.Error("first run must record misses")
	}
	if st.Entries != cache.Len() {
		t.Errorf("Entries = %d, Len = %d", st.Entries, cache.Len())
	}
	hitsBefore := st.Hits
	EvalOblivious(dec, l, Options{Dedup: true, Cache: cache})
	if st = cache.Stats(); st.Hits <= hitsBefore {
		t.Error("second run must be served from the cache")
	}
}
