package engine

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// trialCoin is the battery's randomized stage: accept unless the node's
// first draw in `sides` comes up zero, plus a structural condition so the
// verdict also depends on the view.
func trialCoin(sides int) func(view *graph.View, rng *rand.Rand) Verdict {
	return func(view *graph.View, rng *rand.Rand) Verdict {
		if view != nil && view.G.Degree(view.Root) > 4 {
			return No
		}
		return Verdict(rng.Intn(sides) != 0)
	}
}

func TestWilsonInterval(t *testing.T) {
	iv := WilsonInterval(0, 200, 0.95)
	if iv.Low != 0 || iv.High < 0.015 || iv.High > 0.03 {
		t.Errorf("Wilson(0/200) = %+v, want [0, ~0.019]", iv)
	}
	iv = WilsonInterval(200, 200, 0.95)
	if iv.High != 1 || iv.Low < 0.97 || iv.Low > 0.99 {
		t.Errorf("Wilson(200/200) = %+v, want [~0.981, 1]", iv)
	}
	mid := WilsonInterval(100, 200, 0.95)
	if mid.Low >= 0.5 || mid.High <= 0.5 {
		t.Errorf("Wilson(100/200) = %+v must contain 0.5", mid)
	}
	wider := WilsonInterval(100, 200, 0.99)
	if wider.High-wider.Low <= mid.High-mid.Low {
		t.Error("99% interval must be wider than 95%")
	}
	if !mid.Separates(0.8) || mid.Separates(0.5) {
		t.Errorf("Separates wrong on %+v", mid)
	}
}

// The committed statistics must be a pure function of (decider, instance,
// options minus Workers): every worker count yields the identical verdict
// sequence, estimate, interval, and stopping point.
func TestEvalTrialsWorkerInvariance(t *testing.T) {
	l := graph.RandomLabels(graph.Cycle(40), []graph.Label{"a", "b"}, 3)
	for _, opts := range []TrialOptions{
		{Trials: 60, Seed: 7},
		{Trials: 400, Seed: 11, AdaptiveStop: true, Threshold: 0.9, Confidence: 0.99},
		{Trials: 400, Seed: 13, AdaptiveStop: true, Threshold: 0.2, MinTrials: 32},
	} {
		dec := TrialDecider{Name: "coin16", Horizon: 1, DecideRand: trialCoin(16)}
		base := opts
		base.Workers = 1
		want, err := EvalTrials(dec, l, base)
		if err != nil {
			t.Fatalf("sequential sweep: %v", err)
		}
		for _, workers := range []int{2, 3, 8} {
			o := opts
			o.Workers = workers
			got, err := EvalTrials(dec, l, o)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			if got.Trials != want.Trials || got.Accepted != want.Accepted ||
				got.Estimate != want.Estimate || got.CI != want.CI || got.Stopped != want.Stopped {
				t.Fatalf("workers=%d: stats %+v diverge from sequential %+v", workers, got, want)
			}
			for i := range want.Verdicts {
				if got.Verdicts[i] != want.Verdicts[i] {
					t.Fatalf("workers=%d: trial %d verdict %s, want %s", workers, i, got.Verdicts[i], want.Verdicts[i])
				}
			}
		}
	}
}

// Adaptive stopping must fire when the estimate is far from the threshold,
// respect the MinTrials floor, and never fire when the threshold sits inside
// the interval.
func TestEvalTrialsAdaptiveStop(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(8), "u")
	dec := TrialDecider{Name: "coin2", Horizon: 0, DecideRand: trialCoin(2)}
	// Acceptance ≈ 0.5^8 ≈ 0.004, threshold 0.9: separation is immediate.
	stats, err := EvalTrials(dec, l, TrialOptions{Trials: 10000, Seed: 1, AdaptiveStop: true, Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Stopped || stats.Trials == 10000 {
		t.Fatalf("sweep did not stop early: %+v", stats)
	}
	if stats.Trials < defaultMinTrials {
		t.Fatalf("stopped after %d trials, below the %d floor", stats.Trials, defaultMinTrials)
	}
	if stats.CI.High >= 0.9 {
		t.Fatalf("stopped without separation: %+v", stats)
	}
	// Threshold placed on the estimate itself: must run to the cap.
	p := math.Pow(0.5, 8)
	stats, err = EvalTrials(dec, l, TrialOptions{Trials: 50, Seed: 1, AdaptiveStop: true, Threshold: p})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Stopped && stats.CI.Low <= p && p <= stats.CI.High {
		t.Fatalf("stopped while the interval straddles the threshold: %+v", stats)
	}
}

// A rejecting deterministic prefix short-circuits the whole sweep.
func TestEvalTrialsPrefixRejects(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Star(5), "u") // centre degree exceeds 2
	dec := TrialDecider{
		Name:    "deg<=2+coin",
		Horizon: 1,
		Prefix: func(view *graph.View) Verdict {
			return Verdict(view.G.Degree(view.Root) <= 2)
		},
		DecideRand: func(view *graph.View, rng *rand.Rand) Verdict {
			t.Error("random stage ran despite prefix rejection")
			return No
		},
	}
	stats, err := EvalTrials(dec, l, TrialOptions{Trials: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PrefixRejected || stats.Trials != 30 || stats.Accepted != 0 || stats.Estimate != 0 {
		t.Fatalf("prefix rejection stats wrong: %+v", stats)
	}
	if len(stats.Verdicts) != 30 {
		t.Fatalf("verdict sequence has %d entries, want 30", len(stats.Verdicts))
	}
	for i, v := range stats.Verdicts {
		if v != No {
			t.Fatalf("trial %d verdict %s, want no", i, v)
		}
	}
	if stats.PrefixStats.Nodes != l.N() {
		t.Fatalf("prefix stats missing: %+v", stats.PrefixStats)
	}
}

// An empty instance is an explicit error, not a silent vacuous accept: the
// historical behaviour reported Estimate = 1 for a sweep that decided
// nothing, indistinguishable from a genuine all-yes instance.
func TestEvalTrialsEmptyGraph(t *testing.T) {
	l := graph.UniformlyLabeled(graph.New(0), "")
	dec := TrialDecider{Name: "coin", Horizon: 0, DecideRand: trialCoin(2)}
	stats, err := EvalTrials(dec, l, TrialOptions{Trials: 10, Seed: 1})
	if !errors.Is(err, ErrEmptyInstance) {
		t.Fatalf("empty graph: err = %v, want ErrEmptyInstance", err)
	}
	if stats.Trials != 0 || stats.Accepted != 0 || stats.Estimate != 0 {
		t.Fatalf("empty graph returned non-zero stats: %+v", stats)
	}
}

// Malformed deciders and options come back as errors with zero stats; the
// historical panics survive only behind MustEvalTrials.
func TestEvalTrialsValidation(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(3), "u")
	expectErr := func(name string, dec TrialDecider, opts TrialOptions) {
		t.Helper()
		if _, err := EvalTrials(dec, l, opts); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
	dec := TrialDecider{Name: "c", Horizon: 0, DecideRand: trialCoin(2)}
	expectErr("zero trials", dec, TrialOptions{Trials: 0})
	expectErr("nil DecideRand", TrialDecider{Name: "x", Horizon: 0}, TrialOptions{Trials: 1})
	expectErr("negative horizon", TrialDecider{Name: "x", Horizon: -1, DecideRand: trialCoin(2)}, TrialOptions{Trials: 1})
	expectErr("bad confidence", dec, TrialOptions{Trials: 1, Confidence: 1.5})
	expectErr("bad threshold", dec, TrialOptions{Trials: 1, AdaptiveStop: true, Threshold: 1.5})

	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustEvalTrials: expected panic on invalid options")
			}
		}()
		MustEvalTrials(dec, l, TrialOptions{Trials: 0})
	}()
}

// A decider that panics mid-sweep must not kill the process: the sweep stops,
// the committed in-order prefix comes back, and the panic surfaces as the
// returned error.
func TestEvalTrialsDeciderPanicRecovered(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(4), "u")
	for _, workers := range []int{1, 4} {
		var calls atomic.Int64
		dec := TrialDecider{
			Name:    "crashy",
			Horizon: 0,
			DecideRand: func(_ *graph.View, rng *rand.Rand) Verdict {
				if calls.Add(1) > 20 {
					panic("injected decider crash")
				}
				rng.Intn(2)
				return Yes
			},
			RandIgnoresView: true,
		}
		stats, err := EvalTrials(dec, l, TrialOptions{Trials: 1000, Seed: 3, Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: expected error from panicking decider", workers)
		}
		if stats.Trials >= 1000 {
			t.Fatalf("workers=%d: sweep did not stop after the panic: %+v", workers, stats)
		}
		if stats.Trials != stats.Accepted {
			t.Fatalf("workers=%d: committed prefix inconsistent: %+v", workers, stats)
		}
	}
}

// Stream independence (the truncated-constant regression): the seed-era
// derivation `seed ^ (node+1)*0x9e3779b97f4a7c` multiplies by an EVEN
// constant, so every node's source seed shared the sweep seed's low bit.
// The splitmix64 derivation must avalanche: low bits vary across adjacent
// nodes, trials, and seeds, and first coins are balanced.
func TestStreamIndependence(t *testing.T) {
	// The historical bug, pinned: the old derived seeds' low bit never moves.
	for _, seed := range []int64{0, 1, 42} {
		for v := 0; v < 16; v++ {
			old := seed ^ (int64(v+1) * 0x9e3779b97f4a7c)
			if old&1 != seed&1 {
				t.Fatalf("historical derivation unexpectedly varies its low bit; regression pin is stale")
			}
		}
	}

	// New derivation: low bit across nodes at a fixed seed.
	countLow := func(f func(i int) int64, n int) int {
		ones := 0
		for i := 0; i < n; i++ {
			ones += int(f(i) & 1)
		}
		return ones
	}
	const n = 256
	for _, seed := range []int64{0, 1, 42} {
		ones := countLow(func(v int) int64 { return streamSeed(seed, v) }, n)
		if ones < n/4 || ones > 3*n/4 {
			t.Errorf("seed %d: node-stream low bit ones = %d/%d, want ~%d", seed, ones, n, n/2)
		}
		ones = countLow(func(tr int) int64 { return TrialSeed(seed, tr) }, n)
		if ones < n/4 || ones > 3*n/4 {
			t.Errorf("seed %d: trial-seed low bit ones = %d/%d, want ~%d", seed, ones, n, n/2)
		}
	}
	// Across adjacent seeds at a fixed node.
	ones := countLow(func(s int) int64 { return streamSeed(int64(s), 0) }, n)
	if ones < n/4 || ones > 3*n/4 {
		t.Errorf("adjacent seeds: low bit ones = %d/%d, want ~%d", ones, n, n/2)
	}
	// First coin of each (trial, node) stream over a grid of both: a fair
	// coin must land fair, and distinct streams must not collapse.
	heads, distinct := 0, map[int64]bool{}
	for tr := 0; tr < 64; tr++ {
		tseed := TrialSeed(9, tr)
		for v := 0; v < 64; v++ {
			s := streamSeed(tseed, v)
			distinct[s] = true
			heads += newCoins(s).Intn(2)
		}
	}
	if heads < 64*64*2/5 || heads > 64*64*3/5 {
		t.Errorf("first coins: %d/%d heads, want ~half", heads, 64*64)
	}
	if len(distinct) != 64*64 {
		t.Errorf("stream seeds collide: %d distinct of %d", len(distinct), 64*64)
	}
}
