package fault

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Streams must be pure functions of (seed, site, coordinates): the engine
// consults the same site repeatedly and replays whole runs from one seed.
func TestStreamDeterminism(t *testing.T) {
	a := streamFor(7, SiteMessage, 1, 2, 3)
	b := streamFor(7, SiteMessage, 1, 2, 3)
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("draw %d diverged for identical stream coordinates", i)
		}
	}
}

func TestStreamSiteSeparation(t *testing.T) {
	// Different sites or coordinates must give (practically) independent
	// streams: identical first draws would mean the mixing is broken.
	seen := make(map[uint64][]string)
	for _, site := range []Site{SiteLabel, SiteEdge, SiteMessage, SiteCrash, SiteHeal} {
		for c := 0; c < 8; c++ {
			s := streamFor(1, site, c, 0, 0)
			v := s.Uint64()
			seen[v] = append(seen[v], fmt.Sprintf("site%d/%d", site, c))
		}
	}
	for v, ids := range seen {
		if len(ids) > 1 {
			t.Errorf("streams %v share first draw %#x", ids, v)
		}
	}
}

func TestStreamFloat64Range(t *testing.T) {
	s := streamFor(3, SiteCrash, 0, 0, 0)
	for i := 0; i < 1000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of [0, 1)", f)
		}
	}
}

func TestPlanCrashDecide(t *testing.T) {
	never := &Plan{Seed: 1, Crash: &CrashModel{Rate: 0}}
	always := &Plan{Seed: 1, Crash: &CrashModel{Rate: 1}}
	some := &Plan{Seed: 1, Crash: &CrashModel{Rate: 0.5}}
	crashes := 0
	for node := 0; node < 50; node++ {
		for attempt := 0; attempt < 3; attempt++ {
			if never.CrashDecide(node, attempt) {
				t.Fatal("rate 0 must never crash")
			}
			if !always.CrashDecide(node, attempt) {
				t.Fatal("rate 1 must always crash")
			}
			got := some.CrashDecide(node, attempt)
			if got != some.CrashDecide(node, attempt) {
				t.Fatalf("CrashDecide(%d, %d) is not pure", node, attempt)
			}
			if got {
				crashes++
			}
		}
	}
	if crashes == 0 || crashes == 150 {
		t.Errorf("rate 0.5 produced %d/150 crashes; the stream looks degenerate", crashes)
	}
	var nilPlan *Plan
	if nilPlan.CrashDecide(0, 0) {
		t.Error("nil plan must be fault-free")
	}
}

func TestPlanMessageFate(t *testing.T) {
	clean := &Plan{Seed: 1}
	f := clean.MessageFate(0, 1, 2)
	if !f.Delivered || f.Attempts != 1 || f.Duplicates != 0 || f.Delay != 0 {
		t.Fatalf("plan without a message model must deliver cleanly, got %+v", f)
	}

	// Certain drop with a retransmit budget: all 1+b transmissions consumed,
	// nothing delivered.
	drop := &Plan{Seed: 1, Message: &MessageModel{DropRate: 1, RetransmitBudget: 3}}
	f = drop.MessageFate(2, 0, 1)
	if f.Delivered || f.Attempts != 4 {
		t.Fatalf("dropRate 1, budget 3: want lost after 4 attempts, got %+v", f)
	}

	// Purity: the engine consults the same fate in its plan pass and at the
	// send site; both must agree.
	p := &Plan{Seed: 9, Message: &MessageModel{DropRate: 0.3, DuplicateRate: 0.3, DelayRate: 0.3, RetransmitBudget: 2}}
	for round := 0; round < 4; round++ {
		for from := 0; from < 6; from++ {
			for to := 0; to < 6; to++ {
				if p.MessageFate(round, from, to) != p.MessageFate(round, from, to) {
					t.Fatalf("MessageFate(%d, %d, %d) is not pure", round, from, to)
				}
			}
		}
	}

	// Delay bounds: 1..MaxDelay when drawn.
	d := &Plan{Seed: 4, Message: &MessageModel{DelayRate: 1, MaxDelay: 3}}
	sawDelay := false
	for i := 0; i < 64; i++ {
		f := d.MessageFate(i, 0, 1)
		if f.Delay < 1 || f.Delay > 3 {
			t.Fatalf("delay %d out of [1, 3]", f.Delay)
		}
		if f.Delay > 1 {
			sawDelay = true
		}
	}
	if !sawDelay {
		t.Error("delayRate 1 never drew a delay above 1; the stream looks degenerate")
	}
}

func pyramidLikeInstance() *graph.Labeled {
	l := graph.RandomLabels(graph.Cycle(40), []graph.Label{"a", "b", "c"}, 5)
	return l
}

func TestCorruptLabelsDeterminismAndModels(t *testing.T) {
	l := pyramidLikeInstance()
	orig := append([]graph.Label(nil), l.Labels...)

	for _, model := range []LabelModel{Flip, Swap, Randomize} {
		c1, v1 := CorruptLabels(l, model, 8, 11)
		c2, v2 := CorruptLabels(l, model, 8, 11)
		if !reflect.DeepEqual(v1, v2) || !reflect.DeepEqual(c1.Labels, c2.Labels) {
			t.Fatalf("%s: same seed corrupted differently", model)
		}
		if !reflect.DeepEqual(l.Labels, orig) {
			t.Fatalf("%s: CorruptLabels mutated its input", model)
		}
		seen := make(map[int]bool)
		for _, v := range v1 {
			if seen[v] {
				t.Fatalf("%s: victim %d selected twice", model, v)
			}
			seen[v] = true
		}
		_, v3 := CorruptLabels(l, model, 8, 12)
		if reflect.DeepEqual(v1, v3) {
			t.Errorf("%s: different seeds picked identical victims", model)
		}
	}

	// Flip: every victim's label changes (the alphabet has 3 labels).
	flipped, victims := CorruptLabels(l, Flip, 8, 11)
	if len(victims) != 8 {
		t.Fatalf("flip victims = %d, want 8", len(victims))
	}
	for _, v := range victims {
		if flipped.Labels[v] == l.Labels[v] {
			t.Errorf("flip left node %d's label unchanged", v)
		}
	}

	// Swap: an odd k rounds down; the label multiset is preserved.
	swapped, victims := CorruptLabels(l, Swap, 7, 11)
	if len(victims) != 6 {
		t.Fatalf("swap victims = %d, want 6 (odd k rounds down)", len(victims))
	}
	count := func(labels []graph.Label) map[graph.Label]int {
		m := make(map[graph.Label]int)
		for _, lab := range labels {
			m[lab]++
		}
		return m
	}
	if !reflect.DeepEqual(count(swapped.Labels), count(l.Labels)) {
		t.Error("swap changed the label multiset")
	}

	// Randomize: garbage labels that no grammar parses.
	randomized, victims := CorruptLabels(l, Randomize, 4, 11)
	for _, v := range victims {
		if !strings.HasPrefix(string(randomized.Labels[v]), "\x00corrupt-") {
			t.Errorf("randomize gave node %d a non-garbage label %q", v, randomized.Labels[v])
		}
	}

	// k past n clamps; non-positive k is a no-op copy.
	_, victims = CorruptLabels(l, Flip, 1000, 11)
	if len(victims) != l.N() {
		t.Errorf("k>n victims = %d, want n=%d", len(victims), l.N())
	}
	same, victims := CorruptLabels(l, Flip, 0, 11)
	if len(victims) != 0 || !reflect.DeepEqual(same.Labels, l.Labels) {
		t.Error("k=0 must return an untouched copy")
	}
}

func TestTamperEdges(t *testing.T) {
	l := pyramidLikeInstance()
	origEdges := l.G.M()

	t1, toggles1 := TamperEdges(l, 5, 3)
	t2, toggles2 := TamperEdges(l, 5, 3)
	if !reflect.DeepEqual(toggles1, toggles2) {
		t.Fatal("same seed toggled different edges")
	}
	if len(toggles1) != 5 {
		t.Fatalf("toggles = %d, want 5", len(toggles1))
	}
	if l.G.M() != origEdges {
		t.Fatal("TamperEdges mutated its input graph")
	}
	if !reflect.DeepEqual(t1.Labels, l.Labels) {
		t.Error("TamperEdges must preserve labels")
	}
	// Each toggle flips presence; net edge count = orig - removed + inserted.
	parity := make(map[[2]int]int)
	for _, e := range toggles1 {
		parity[e]++
	}
	want := origEdges
	for e, c := range parity {
		if c%2 == 0 {
			continue
		}
		had := false
		for _, ge := range l.G.Edges() {
			if ge == e {
				had = true
				break
			}
		}
		if had {
			want--
		} else {
			want++
		}
	}
	if t1.G.M() != want {
		t.Errorf("tampered graph has %d edges, want %d", t1.G.M(), want)
	}
	if t2.G.M() != t1.G.M() {
		t.Error("same seed built different tampered graphs")
	}
}

func TestParseLabelModelRoundTrip(t *testing.T) {
	for _, m := range []LabelModel{Flip, Swap, Randomize} {
		got, err := ParseLabelModel(m.String())
		if err != nil || got != m {
			t.Errorf("round trip of %s failed: %v, %v", m, got, err)
		}
	}
	if _, err := ParseLabelModel("meteor"); err == nil {
		t.Error("unknown model must be an error")
	}
}

// okDecider accepts iff every label in the view equals "ok": the simplest
// label-grammar verifier, blind to equal-label swaps by construction.
func okDecider() engine.Decider {
	return engine.Decider{
		Name:    "all-ok",
		Horizon: 1,
		Decide: func(view *graph.View) engine.Verdict {
			for _, lab := range view.Labels {
				if lab != "ok" {
					return engine.No
				}
			}
			return engine.Yes
		},
	}
}

func TestRunEpisodeDeterminismAndRecovery(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(24), "ok")
	cfg := SelfStabConfig{Model: Flip, Rate: 0.2, Decider: okDecider()}

	ep1, err := RunEpisode(l, cfg, 33)
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := RunEpisode(l, cfg, 33)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ep1, ep2) {
		t.Fatalf("same seed, different episodes:\n%+v\n%+v", ep1, ep2)
	}
	// Flip on a uniform alphabet mints a marked label the grammar rejects:
	// zero exposure, and healing is capped so recovery is certain.
	if !ep1.Recovered {
		t.Error("episode must recover within the heal budget")
	}
	if ep1.ExposedRounds != 0 {
		t.Errorf("flip on uniform labels exposed %d rounds, want 0", ep1.ExposedRounds)
	}
	if ep1.RecoveryRound < 1 || ep1.RecoveryRound > 16 {
		t.Errorf("recovery round %d out of the heal budget", ep1.RecoveryRound)
	}
	if len(ep1.Victims) != 5 {
		t.Errorf("rate 0.2 on n=24 corrupted %d nodes, want 5", len(ep1.Victims))
	}

	// Swap on uniform labels is invisible: the verifier accepts every round,
	// so every corrupted round is exposure and recovery lands at the first
	// fully-healed round.
	swapEp, err := RunEpisode(l, SelfStabConfig{Model: Swap, Rate: 0.2, Decider: okDecider()}, 33)
	if err != nil {
		t.Fatal(err)
	}
	if !swapEp.Recovered {
		t.Error("swap episode must recover")
	}
	if swapEp.ExposedRounds == 0 {
		t.Error("uniform-label swaps are invisible: exposure must be positive")
	}

	if _, err := RunEpisode(graph.UniformlyLabeled(graph.New(0), ""), cfg, 1); err == nil {
		t.Error("empty instance must be an error")
	}
}

// The incremental episode path must reproduce the from-scratch episodes
// exactly: heal times derive from the seed's SiteHeal streams independently
// of evaluation, and the resident session's verdicts are parity-locked to
// EvalOblivious, so every field except the repair tally coincides.
func TestRunEpisodeIncrementalParity(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(48), "ok")
	for _, model := range []LabelModel{Flip, Swap, Randomize} {
		for seed := int64(1); seed <= 8; seed++ {
			full, err := RunEpisode(l, SelfStabConfig{Model: model, Rate: 0.15, Decider: okDecider()}, seed)
			if err != nil {
				t.Fatal(err)
			}
			inc, err := RunEpisode(l, SelfStabConfig{Model: model, Rate: 0.15, Decider: okDecider(), Incremental: true}, seed)
			if err != nil {
				t.Fatal(err)
			}
			if full.DirtyNodes != 0 {
				t.Fatalf("%v seed %d: from-scratch episode reported dirty nodes: %d", model, seed, full.DirtyNodes)
			}
			if inc.DirtyNodes == 0 {
				t.Fatalf("%v seed %d: incremental episode repaired nothing", model, seed)
			}
			// Heal-round repairs stay ball-sized: strictly less work than
			// re-deciding all n nodes every one of the budgeted rounds.
			if inc.DirtyNodes >= l.N()*(inc.Evaluations-1) {
				t.Fatalf("%v seed %d: repairs (%d nodes over %d rounds) not sublinear",
					model, seed, inc.DirtyNodes, inc.Evaluations-1)
			}
			inc.DirtyNodes = 0
			if !reflect.DeepEqual(full, inc) {
				t.Fatalf("%v seed %d: incremental episode diverged:\nfull: %+v\ninc:  %+v", model, seed, full, inc)
			}
		}
	}
}

// The sweep aggregates must also coincide: E16's rounds-to-recovery table is
// identical whichever engine path computed it.
func TestRecoverySweepIncrementalParity(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(32), "ok")
	opts := engine.TrialOptions{Trials: 10, Seed: 7, Workers: 1}
	full, err := RecoverySweep(l, SelfStabConfig{Model: Flip, Rate: 0.2, Decider: okDecider()}, opts)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := RecoverySweep(l, SelfStabConfig{Model: Flip, Rate: 0.2, Decider: okDecider(), Incremental: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Episodes != full.Episodes ||
		inc.ExposedRounds != full.ExposedRounds ||
		inc.ExposedEpisodes != full.ExposedEpisodes ||
		inc.MeanRecoveryRounds != full.MeanRecoveryRounds ||
		inc.Trials.Accepted != full.Trials.Accepted {
		t.Fatalf("incremental sweep diverged:\nfull: %+v\ninc:  %+v", full, inc)
	}
}

// The sweep's aggregates must not depend on the worker count: trials commit
// in order and tallies are commutative sums, so any pool size reports the
// same table — the acceptance criterion behind the E16 replay guarantee.
func TestRecoverySweepWorkerInvariance(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(24), "ok")
	cfg := SelfStabConfig{Model: Swap, Rate: 0.2, Decider: okDecider()}
	base, err := RecoverySweep(l, cfg, engine.TrialOptions{Trials: 12, Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if base.Episodes != 12 {
		t.Fatalf("episodes = %d, want 12", base.Episodes)
	}
	for _, workers := range []int{2, 4} {
		sw, err := RecoverySweep(l, cfg, engine.TrialOptions{Trials: 12, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if sw.Episodes != base.Episodes ||
			sw.ExposedRounds != base.ExposedRounds ||
			sw.ExposedEpisodes != base.ExposedEpisodes ||
			sw.MeanRecoveryRounds != base.MeanRecoveryRounds ||
			sw.Trials.Accepted != base.Trials.Accepted ||
			sw.Trials.Estimate != base.Trials.Estimate {
			t.Errorf("workers=%d diverged from workers=1:\n%+v\n%+v", workers, sw, base)
		}
	}
}

func TestRecoverySweepRejectsAdaptiveStop(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(8), "ok")
	cfg := SelfStabConfig{Model: Flip, Rate: 0.2, Decider: okDecider()}
	_, err := RecoverySweep(l, cfg, engine.TrialOptions{Trials: 4, Seed: 1, AdaptiveStop: true, Threshold: 0.5})
	if err == nil {
		t.Fatal("adaptive stopping must be rejected: tallies need every trial to run")
	}
}
