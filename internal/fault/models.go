package fault

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// LabelModel selects a transient-label-corruption model: how a victim node's
// label is rewritten. The models form an exposure gradient for verifiers —
// Randomize is always structurally detectable, Flip usually, Swap of equal
// labels never — which is exactly what the self-stabilization experiment
// measures.
type LabelModel int

// The label-corruption models.
const (
	// Flip replaces a victim's label with the next distinct label of the
	// instance's label alphabet.
	Flip LabelModel = iota
	// Swap exchanges the labels of victim pairs. Swapping identical labels
	// is a no-op — the invisible end of the exposure gradient.
	Swap
	// Randomize replaces a victim's label with a fresh garbage string that
	// no verifier's label grammar accepts.
	Randomize
)

// String returns the model's flag-facing name.
func (m LabelModel) String() string {
	switch m {
	case Flip:
		return "flip"
	case Swap:
		return "swap"
	case Randomize:
		return "randomize"
	}
	return fmt.Sprintf("LabelModel(%d)", int(m))
}

// ParseLabelModel resolves a flag-facing model name.
func ParseLabelModel(name string) (LabelModel, error) {
	switch name {
	case "flip":
		return Flip, nil
	case "swap":
		return Swap, nil
	case "randomize":
		return Randomize, nil
	}
	return 0, fmt.Errorf("fault: unknown label model %q (flip | swap | randomize)", name)
}

// CorruptLabels returns a copy of l with k node labels corrupted under the
// given model, plus the victim nodes in selection order. Victims and
// replacement labels are drawn from the seed's SiteLabel stream, so the same
// (l, model, k, seed) always corrupts the same nodes the same way. k is
// clamped to n (and, for Swap, rounded down to a whole number of pairs); a
// non-positive k returns an untouched copy.
func CorruptLabels(l *graph.Labeled, model LabelModel, k int, seed int64) (*graph.Labeled, []int) {
	out := l.Clone()
	n := out.N()
	if k > n {
		k = n
	}
	if model == Swap {
		k -= k % 2
	}
	if k <= 0 || n == 0 {
		return out, nil
	}
	s := streamFor(seed, SiteLabel, 0, 0, 0)
	// Partial Fisher–Yates: the first k entries of a uniform permutation.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	victims := append([]int(nil), idx[:k]...)

	switch model {
	case Flip:
		alphabet := labelAlphabet(l)
		for _, v := range victims {
			out.Labels[v] = nextLabel(alphabet, out.Labels[v])
		}
	case Swap:
		for i := 0; i+1 < len(victims); i += 2 {
			a, b := victims[i], victims[i+1]
			out.Labels[a], out.Labels[b] = out.Labels[b], out.Labels[a]
		}
	case Randomize:
		for _, v := range victims {
			vs := streamFor(seed, SiteLabel, v, 1, 0)
			out.Labels[v] = graph.Label(fmt.Sprintf("\x00corrupt-%016x", vs.Uint64()))
		}
	default:
		panic(fmt.Sprintf("fault: unknown label model %d", int(model)))
	}
	return out, victims
}

// labelAlphabet is the sorted distinct label set of an instance.
func labelAlphabet(l *graph.Labeled) []graph.Label {
	seen := make(map[graph.Label]bool, 8)
	var alphabet []graph.Label
	for _, lab := range l.Labels {
		if !seen[lab] {
			seen[lab] = true
			alphabet = append(alphabet, lab)
		}
	}
	sort.Slice(alphabet, func(i, j int) bool { return alphabet[i] < alphabet[j] })
	return alphabet
}

// nextLabel is Flip's replacement rule: the cyclic successor in the alphabet,
// or a derived marker when the alphabet has a single label (there is no
// distinct label to flip to).
func nextLabel(alphabet []graph.Label, lab graph.Label) graph.Label {
	if len(alphabet) < 2 {
		return lab + "\x00flip"
	}
	i := sort.Search(len(alphabet), func(i int) bool { return alphabet[i] >= lab })
	return alphabet[(i+1)%len(alphabet)]
}

// TamperEdges returns a copy of l with k edge toggles applied — each toggle
// picks a node pair from the seed's SiteEdge stream and removes the edge if
// present, inserts it otherwise — plus the toggled pairs in draw order.
// Structural tampering models a corrupted topology rather than corrupted
// state; verifiers whose horizon covers a toggle see a different view.
func TamperEdges(l *graph.Labeled, k int, seed int64) (*graph.Labeled, [][2]int) {
	n := l.N()
	if k <= 0 || n < 2 {
		return l.Clone(), nil
	}
	present := make(map[[2]int]bool, l.G.M())
	for _, e := range l.G.Edges() {
		present[e] = true
	}
	s := streamFor(seed, SiteEdge, 0, 0, 0)
	toggles := make([][2]int, 0, k)
	for i := 0; i < k; i++ {
		u := s.Intn(n)
		v := s.Intn(n - 1)
		if v >= u {
			v++
		}
		if u > v {
			u, v = v, u
		}
		e := [2]int{u, v}
		present[e] = !present[e]
		toggles = append(toggles, e)
	}
	b := graph.NewBuilderHint(n, len(present))
	for e, on := range present {
		if on {
			b.AddEdge(e[0], e[1])
		}
	}
	return graph.NewLabeled(b.Build(), append([]graph.Label(nil), l.Labels...)), toggles
}
