package fault

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Self-stabilization episodes: corrupt a decided instance's labels, then
// re-evaluate under sustained healing rounds and measure how long the system
// takes to return to a clean accepting verdict — and for how many rounds the
// corrupted state was EXPOSED (read as accepted while still corrupted). The
// exposure count is the experiment's sharpest number: a verifier whose label
// grammar catches the corruption model has zero exposure, one blind to it
// (label swaps between equal labels) accepts throughout.

// SelfStabConfig parameterises one self-stabilization episode family.
type SelfStabConfig struct {
	// Model is the label-corruption model applied at round zero.
	Model LabelModel
	// Rate is the corrupted fraction of nodes (at least one node).
	Rate float64
	// HealProb is each victim's per-round heal probability (geometric heal
	// times); 0 means 0.5.
	HealProb float64
	// MaxRounds is the heal-round budget after which an unrecovered episode
	// gives up; 0 means 16. Every victim's heal time is capped at MaxRounds,
	// so full healing is guaranteed by the final round — an unrecovered
	// episode means the verifier rejected a fully healed instance.
	MaxRounds int
	// Decider is the verifier re-evaluated after each heal round.
	Decider engine.Decider
	// Options are the engine options of each evaluation (scheduler, dedup,
	// cache, early exit). A shared Options.Cache amortises re-evaluation
	// across rounds and episodes.
	Options engine.Options
	// Incremental, when set, runs each episode through a resident
	// engine.Incremental session instead of a from-scratch evaluation per
	// round: the corrupted instance is decided once, then every heal round
	// repairs only the radius-t balls around the victims healed that round.
	// Episode outcomes are identical either way — heal times derive from the
	// seed's SiteHeal streams independently of evaluation, and the session's
	// verdicts are parity-tested against from-scratch evaluation — but the
	// per-round work drops from O(n) to O(dirty). DirtyNodes records it.
	Incremental bool
}

func (cfg *SelfStabConfig) healProb() float64 {
	if cfg.HealProb <= 0 {
		return 0.5
	}
	return cfg.HealProb
}

func (cfg *SelfStabConfig) maxRounds() int {
	if cfg.MaxRounds <= 0 {
		return 16
	}
	return cfg.MaxRounds
}

// Episode is the outcome of one corruption-heal-recover run.
type Episode struct {
	// Victims are the corrupted nodes, in selection order.
	Victims []int
	// ExposedRounds counts evaluation rounds (the initial corrupted one
	// included) in which corruption remained and the verifier accepted —
	// committed wrong verdicts.
	ExposedRounds int
	// RecoveryRound is the first heal round at which the instance was fully
	// healed and accepted, or -1 if that never happened within the budget.
	RecoveryRound int
	// Recovered reports RecoveryRound >= 0.
	Recovered bool
	// Evaluations counts engine evaluations the episode ran.
	Evaluations int
	// DirtyNodes totals the nodes re-decided by heal-round repairs when the
	// episode ran incrementally (the initial full decision is not counted;
	// always 0 for from-scratch episodes).
	DirtyNodes int
}

// RunEpisode corrupts l under cfg's model, then heals victims over rounds
// drawn from the seed's SiteHeal streams, re-evaluating cfg.Decider after
// each round until the verdict recovers or the budget runs out. The whole
// episode is a pure function of (l, cfg, seed).
func RunEpisode(l *graph.Labeled, cfg SelfStabConfig, seed int64) (Episode, error) {
	ep := Episode{RecoveryRound: -1}
	n := l.N()
	if n == 0 {
		return ep, engine.ErrEmptyInstance
	}
	k := int(cfg.Rate*float64(n) + 0.5)
	if k < 1 {
		k = 1
	}
	maxRounds := cfg.maxRounds()
	healProb := cfg.healProb()

	corrupted, victims := CorruptLabels(l, cfg.Model, k, seed)
	ep.Victims = victims

	// Per-victim heal rounds: geometric(healProb), capped at the budget so
	// the final round is always fully healed.
	healRound := make(map[int]int, len(victims))
	for _, v := range victims {
		s := streamFor(seed, SiteHeal, v, 0, 0)
		r := 1
		for r < maxRounds && s.Float64() >= healProb {
			r++
		}
		healRound[v] = r
	}

	working := corrupted
	remaining := len(victims)
	var inc *engine.Incremental
	if cfg.Incremental {
		session, err := engine.NewIncremental(cfg.Decider, working, cfg.Options)
		if err != nil {
			return ep, fmt.Errorf("fault: incremental episode session: %w", err)
		}
		inc = session
	}
	// evaluate re-decides the working instance after the given nodes' labels
	// were healed in place: a ball-sized repair on the resident session, or a
	// from-scratch sweep otherwise. The session's initial full decision stands
	// in for the round-zero evaluation.
	evaluate := func(healed []int) (bool, error) {
		ep.Evaluations++
		if inc != nil {
			ep.DirtyNodes += inc.InvalidateLabels(healed)
			if inc.Failed() > 0 {
				return false, fmt.Errorf("fault: episode evaluation failed: %w", inc.Outcome().Err)
			}
			return inc.Accepted(), nil
		}
		out := engine.EvalOblivious(cfg.Decider, working, cfg.Options)
		if out.Err != nil {
			return false, fmt.Errorf("fault: episode evaluation failed: %w", out.Err)
		}
		return out.Accepted, nil
	}

	// Round zero: the corrupted instance as injected.
	accepted, err := evaluate(nil)
	if err != nil {
		return ep, err
	}
	if accepted && remaining > 0 {
		ep.ExposedRounds++
	}
	var healedNow []int
	for round := 1; round <= maxRounds; round++ {
		healedNow = healedNow[:0]
		for _, v := range victims {
			if healRound[v] == round {
				working.Labels[v] = l.Labels[v]
				remaining--
				healedNow = append(healedNow, v)
			}
		}
		accepted, err := evaluate(healedNow)
		if err != nil {
			return ep, err
		}
		if remaining > 0 {
			if accepted {
				ep.ExposedRounds++
			}
			continue
		}
		if accepted {
			ep.RecoveryRound = round
			ep.Recovered = true
			break
		}
	}
	return ep, nil
}

// SweepStats aggregates a RecoverySweep.
type SweepStats struct {
	// Trials is the engine's per-episode acceptance statistics, where a
	// trial "accepts" iff its episode recovered within the budget — so
	// Estimate is the recovery probability with its Wilson interval.
	Trials engine.TrialStats
	// Episodes is the number of episodes run.
	Episodes int
	// MeanRecoveryRounds averages RecoveryRound over recovered episodes
	// (0 when none recovered).
	MeanRecoveryRounds float64
	// ExposedRounds totals corrupted-but-accepted evaluation rounds across
	// all episodes.
	ExposedRounds int
	// ExposedEpisodes counts episodes with at least one exposed round.
	ExposedEpisodes int
}

// RecoverySweep runs `trials` independent episodes through the engine's
// Monte Carlo subsystem — each trial derives its episode seed from the
// sweep's per-trial coin stream, so the sweep replays exactly from one seed —
// and aggregates recovery statistics. The per-episode engine work runs under
// cfg.Options; the sweep itself is paced by opts (trial count, seed, worker
// pool; adaptive stopping is rejected because the aggregate tallies need
// every trial to run exactly once).
func RecoverySweep(l *graph.Labeled, cfg SelfStabConfig, opts engine.TrialOptions) (SweepStats, error) {
	var sw SweepStats
	if opts.AdaptiveStop {
		return sw, fmt.Errorf("fault: RecoverySweep does not support adaptive stopping")
	}
	var (
		mu        sync.Mutex
		sumRounds int
		recovered int
		firstErr  error
	)
	host := graph.UniformlyLabeled(graph.New(1), "episode")
	dec := engine.TrialDecider{
		Name:    "selfstab/" + cfg.Model.String(),
		Horizon: 0,
		DecideRand: func(_ *graph.View, rng *rand.Rand) engine.Verdict {
			ep, err := RunEpisode(l, cfg, rng.Int63())
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				panic(err) // recovered by the trial engine; stops the sweep
			}
			sw.Episodes++
			sw.ExposedRounds += ep.ExposedRounds
			if ep.ExposedRounds > 0 {
				sw.ExposedEpisodes++
			}
			if ep.Recovered {
				recovered++
				sumRounds += ep.RecoveryRound
			}
			return engine.Verdict(ep.Recovered)
		},
		RandIgnoresView: true,
	}
	stats, err := engine.EvalTrials(dec, host, opts)
	sw.Trials = stats
	if recovered > 0 {
		sw.MeanRecoveryRounds = float64(sumRounds) / float64(recovered)
	}
	if firstErr != nil {
		return sw, firstErr
	}
	return sw, err
}
