// Package fault is the deterministic fault-injection layer of the
// reproduction: every fault the robustness suite can inject — corrupted
// labels, tampered edges, lossy or delayed messages, crashing workers,
// healing rounds — is drawn from a splitmix64 stream derived from one seed
// and the fault's site coordinates. Replaying a seed replays the exact fault
// trace, independent of scheduling, worker count, or wall-clock timing; the
// determinism mirrors the engine's per-(trial, node) coin streams, so fault
// experiments compose with the Monte Carlo subsystem without correlation.
package fault

// Site identifies one class of injection site. Distinct sites index disjoint
// splitmix64 streams, so e.g. the message-fault draws at (round 3, edge u→w)
// can never correlate with the crash draws at (node 3, attempt 0).
type Site uint64

// The injection sites of the fault layer.
const (
	// SiteLabel draws label-corruption victims and replacement labels.
	SiteLabel Site = iota + 1
	// SiteEdge draws structural edge-tampering victims.
	SiteEdge
	// SiteMessage draws per-(round, edge) message fates.
	SiteMessage
	// SiteCrash draws per-(node, attempt) worker-crash decisions.
	SiteCrash
	// SiteHeal draws per-victim heal rounds in self-stabilization episodes.
	SiteHeal
)

// golden64 is the splitmix64 increment (the 64-bit golden ratio), matching
// the engine's coin-stream derivation.
const golden64 = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a bijective avalanche of all 64 bits.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Stream is a tiny deterministic random stream (splitmix64). Reseeding is a
// single store, so a fresh stream per injection site costs nothing — which is
// what makes the injector a pure function of its site coordinates.
type Stream struct{ state uint64 }

// Uint64 returns the stream's next 64-bit draw.
func (s *Stream) Uint64() uint64 {
	s.state += golden64
	return mix64(s.state)
}

// Float64 returns the stream's next draw in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Intn returns the stream's next draw in [0, n); n must be positive.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("fault: Intn on non-positive bound")
	}
	return int(s.Uint64() % uint64(n))
}

// streamFor derives the stream of one injection site: the seed stepped
// through the site class and up to three site coordinates, each step a full
// splitmix64 finalization. Calling it twice with the same arguments yields
// identical streams — the purity the engine's injector contract demands.
func streamFor(seed int64, site Site, a, b, c int) Stream {
	x := mix64(uint64(seed) + golden64*uint64(site))
	x = mix64(x + golden64*uint64(a+1))
	x = mix64(x + golden64*uint64(b+1))
	x = mix64(x + golden64*uint64(c+1))
	return Stream{state: x}
}
