package fault

import (
	"repro/internal/engine"
)

// CrashModel injects worker crashes: each (node, attempt) decide call panics
// independently with probability Rate. The engine's retry loop respawns the
// work up to Options.MaxAttempts times, so a crashed node is re-decided on a
// fresh attempt stream — persistent bad luck (all attempts crash) surfaces as
// a per-node VerdictError, never a dead process.
type CrashModel struct {
	// Rate is the per-attempt crash probability in [0, 1].
	Rate float64
}

// MessageModel injects message faults into the message-passing backend.
// Every directed (round, edge) message draws its fate independently.
type MessageModel struct {
	// DropRate is the per-transmission loss probability in [0, 1]. With a
	// RetransmitBudget of b, a message is lost for good only when all 1+b
	// transmissions drop.
	DropRate float64
	// DuplicateRate is the probability a delivered message is duplicated
	// (1–2 extra copies; the engine clamps the total).
	DuplicateRate float64
	// DelayRate is the probability a delivered message arrives late, by
	// 1..MaxDelay rounds.
	DelayRate float64
	// MaxDelay bounds the delay in rounds (0 means 2).
	MaxDelay int
	// RetransmitBudget is the number of retransmissions after a dropped
	// transmission before the message is abandoned.
	RetransmitBudget int
}

// Plan is a seed-replayable fault plan: it implements engine.Injector by
// deriving every fate from Seed and the fate's site coordinates, nothing
// else. The same Plan value replays the identical fault trace on every run,
// every scheduler, and every worker count.
type Plan struct {
	// Seed drives every stream of the plan.
	Seed int64
	// Crash, when set, injects worker crashes into decide calls.
	Crash *CrashModel
	// Message, when set, injects message faults into the MP backend.
	Message *MessageModel
}

// CrashDecide reports whether node v's decide attempt should crash — a pure
// function of (seed, node, attempt), per the engine's injector contract.
func (p *Plan) CrashDecide(node, attempt int) bool {
	if p == nil || p.Crash == nil || p.Crash.Rate <= 0 {
		return false
	}
	s := streamFor(p.Seed, SiteCrash, node, attempt, 0)
	return s.Float64() < p.Crash.Rate
}

// MessageFate resolves the fate of round r's message from → to — a pure
// function of (seed, round, from, to). The engine consults it both in its
// precomputed fate plan and at each send; purity guarantees the two agree.
func (p *Plan) MessageFate(round, from, to int) engine.MessageFate {
	fate := engine.MessageFate{Delivered: true, Attempts: 1}
	if p == nil || p.Message == nil {
		return fate
	}
	m := p.Message
	s := streamFor(p.Seed, SiteMessage, round, from, to)
	if m.DropRate > 0 {
		fate.Delivered = false
		for a := 0; a <= m.RetransmitBudget; a++ {
			fate.Attempts = a + 1
			if s.Float64() >= m.DropRate {
				fate.Delivered = true
				break
			}
		}
		if !fate.Delivered {
			return fate
		}
	}
	if m.DuplicateRate > 0 && s.Float64() < m.DuplicateRate {
		fate.Duplicates = 1 + s.Intn(2)
	}
	if m.DelayRate > 0 && s.Float64() < m.DelayRate {
		maxDelay := m.MaxDelay
		if maxDelay <= 0 {
			maxDelay = 2
		}
		fate.Delay = 1 + s.Intn(maxDelay)
	}
	return fate
}
