// Package hereditary reproduces the positive results surveyed in the
// paper's Section 1.3 (from Fraigniaud, Halldorsson, Korman, OPODIS 2012):
//
//   - LD* = LD for hereditary languages (closed under induced subgraphs):
//     implemented as ObliviousLift, which converts an ID-using decider into
//     an Id-oblivious one by searching identifier assignments over a finite
//     canonical domain;
//   - NLD* = NLD: nondeterminism subsumes identifiers, because certificates
//     can carry a guessed identifier assignment (GuessIDVerifier).
//
// These are reproduced constructively on concrete languages and deciders;
// the full generality is the cited paper's theorem (see DESIGN.md).
package hereditary

import (
	"fmt"
	"strconv"

	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/oblivious"
)

// IsHereditary tests (by exhaustion over induced subgraphs) whether a
// property is closed under induced subgraphs on the given instances: every
// induced subgraph of a yes-instance must again satisfy the property. It is
// exponential and meant for validating example languages in tests.
func IsHereditary(p decide.Property, instances []*graph.Labeled, maxN int) error {
	for idx, l := range instances {
		if !p.Contains(l) {
			return fmt.Errorf("hereditary: instance %d not in %s", idx, p.Name())
		}
		if l.N() > maxN {
			return fmt.Errorf("hereditary: instance %d too large for exhaustive check (n=%d > %d)", idx, l.N(), maxN)
		}
		n := l.N()
		for mask := 1; mask < 1<<n; mask++ {
			var nodes []int
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					nodes = append(nodes, v)
				}
			}
			sub, _ := l.InducedSubgraph(nodes)
			if !p.Contains(sub) {
				return fmt.Errorf("hereditary: %s not closed: instance %d, subgraph mask %b", p.Name(), idx, mask)
			}
		}
	}
	return nil
}

// ObliviousLift converts an ID-using decider into an Id-oblivious one via
// the paper's simulation A* with a canonical finite identifier domain
// {0, ..., domainSize-1}: reject a view iff some injective assignment from
// the domain makes the original decider reject.
//
// For hereditary languages decided by deciders whose ID use is
// comparison-bounded (the OPODIS regime), the finite domain loses nothing;
// tests demonstrate agreement decider-vs-lift across the suites.
func ObliviousLift(alg local.Algorithm, domainSize int) local.ObliviousAlgorithm {
	domain := make([]int, domainSize)
	for i := range domain {
		domain[i] = i
	}
	return oblivious.NewSimulation(alg, domain)
}

// GuessIDVerifier realises NLD* ⊇ NLD: given an ID-using NLD-style local
// verifier, build an Id-oblivious NLD verifier whose certificates carry a
// guessed identifier for each node. The verifier runs the original algorithm
// with the guessed identifiers and additionally checks that guessed
// identifiers are pairwise distinct within its view (local one-to-one-ness,
// the soundness core of the OPODIS argument).
func GuessIDVerifier(alg local.Algorithm) decide.NLDVerifier {
	name := fmt.Sprintf("nld-guess-ids(%s)", alg.Name())
	return decide.NLDVerifierFunc(name, alg.Horizon(), func(view *graph.View) local.Verdict {
		n := view.N()
		ids := make([]int, n)
		labels := make([]graph.Label, n)
		seen := make(map[int]struct{}, n)
		for v := 0; v < n; v++ {
			lab, cert := decide.SplitCertLabel(view.Labels[v])
			labels[v] = lab
			id, err := strconv.Atoi(string(cert))
			if err != nil || id < 0 {
				return local.No
			}
			if _, dup := seen[id]; dup {
				return local.No // guessed identifiers collide locally
			}
			seen[id] = struct{}{}
			ids[v] = id
		}
		stripped := &graph.View{
			Labeled:  graph.NewLabeled(view.G, labels),
			Root:     view.Root,
			Radius:   view.Radius,
			IDs:      ids,
			Original: view.Original,
		}
		return alg.Decide(stripped)
	})
}

// HonestIDCertificate builds the honest certificate for GuessIDVerifier:
// the actual identifiers, stringified.
func HonestIDCertificate(ids []int) decide.Certificate {
	cert := make(decide.Certificate, len(ids))
	for i, id := range ids {
		cert[i] = graph.Label(strconv.Itoa(id))
	}
	return cert
}

// AgreementReport compares an ID-using decider with its oblivious lift
// across a suite: for each instance, the lift must reach the same global
// verdict as the decider does under canonical identifiers.
type AgreementReport struct {
	Instances int
	Agreed    int
	Details   []string
}

// CompareLift measures decider/lift agreement on the union of a suite's
// instances.
func CompareLift(alg local.Algorithm, lift local.ObliviousAlgorithm, s *decide.Suite) *AgreementReport {
	rep := &AgreementReport{}
	run := func(l *graph.Labeled, tag string, i int) {
		rep.Instances++
		ids := make([]int, l.N())
		for v := range ids {
			ids[v] = v
		}
		want := local.Run(alg, graph.NewInstance(l, ids)).Accepted
		got := local.RunOblivious(lift, l).Accepted
		if want == got {
			rep.Agreed++
		} else {
			rep.Details = append(rep.Details, fmt.Sprintf("%s-instance %d: decider=%v lift=%v", tag, i, want, got))
		}
	}
	for i, l := range s.Yes {
		run(l, "yes", i)
	}
	for i, l := range s.No {
		run(l, "no", i)
	}
	return rep
}
