package hereditary

import (
	"testing"

	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/props"
)

func TestIsHereditary(t *testing.T) {
	// Triangle-freeness and bounded degree are hereditary.
	instances := []*graph.Labeled{
		graph.UniformlyLabeled(graph.Cycle(5), ""),
		graph.UniformlyLabeled(graph.Path(4), ""),
	}
	if err := IsHereditary(props.TriangleFree(), instances, 8); err != nil {
		t.Errorf("triangle-free: %v", err)
	}
	if err := IsHereditary(props.BoundedDegree(2), instances, 8); err != nil {
		t.Errorf("bounded-degree: %v", err)
	}
	// Connectivity is NOT hereditary: removing middle nodes of a path
	// disconnects it.
	connected := decide.PropertyFunc("connected", func(l *graph.Labeled) bool {
		return l.G.IsConnected()
	})
	if err := IsHereditary(connected, []*graph.Labeled{graph.UniformlyLabeled(graph.Path(4), "")}, 8); err == nil {
		t.Error("connectivity misclassified as hereditary")
	}
	// Size guard.
	if err := IsHereditary(props.TriangleFree(), []*graph.Labeled{graph.UniformlyLabeled(graph.Cycle(30), "")}, 8); err == nil {
		t.Error("oversized instance accepted")
	}
	// Non-member instance reported.
	if err := IsHereditary(props.TriangleFree(), []*graph.Labeled{graph.UniformlyLabeled(graph.Cycle(3), "")}, 8); err == nil {
		t.Error("non-member instance accepted")
	}
}

// An ID-using decider for bounded degree (it has no reason to use IDs, but
// we let it look at them in an inconsequential way to make the lift
// non-trivial): reject iff degree too high, with a tie-break consult of ID
// ordering that never changes the verdict.
func degreeDeciderWithIDs(d int) local.Algorithm {
	return local.AlgorithmFunc("deg-with-ids", 1, func(view *graph.View) local.Verdict {
		if view.G.Degree(view.Root) > d {
			return local.No
		}
		_ = view.RootID() // IDs available but irrelevant
		return local.Yes
	})
}

func TestObliviousLiftAgreesOnHereditary(t *testing.T) {
	suite := &decide.Suite{
		Name: "degree",
		Yes: []*graph.Labeled{
			graph.UniformlyLabeled(graph.Cycle(5), ""),
			graph.UniformlyLabeled(graph.Path(6), ""),
		},
		No: []*graph.Labeled{
			graph.UniformlyLabeled(graph.Star(5), ""),
			graph.UniformlyLabeled(graph.Complete(4), ""),
		},
	}
	alg := degreeDeciderWithIDs(2)
	lift := ObliviousLift(alg, 7)
	rep := CompareLift(alg, lift, suite)
	if rep.Agreed != rep.Instances {
		t.Fatalf("lift disagreement: %v", rep.Details)
	}
	// The lift is a genuine LD* decider for the property.
	starRep := decide.VerifyLDStar(lift, suite)
	if !starRep.OK() {
		t.Fatalf("lift failed as LD* decider: %s", starRep)
	}
}

func TestObliviousLiftCatchesIDAbuse(t *testing.T) {
	// A decider that rejects when it sees a large identifier: the lift (the
	// universal quantification over assignments) must reject everywhere once
	// the domain contains a large value — showing exactly why the simulation
	// fails outside the hereditary/(¬B,¬C) regimes.
	sizeSniffer := local.AlgorithmFunc("size-sniffer", 1, func(view *graph.View) local.Verdict {
		return local.Verdict(view.MaxIDInView() < 5)
	})
	lift := ObliviousLift(sizeSniffer, 8) // domain includes 5, 6, 7
	l := graph.UniformlyLabeled(graph.Cycle(4), "")
	if local.RunOblivious(lift, l).Accepted {
		t.Fatal("lift should reject: some assignment uses an id >= 5")
	}
}

func TestGuessIDVerifierNLD(t *testing.T) {
	// Property: "cycle of length >= 4" decided (for the demo) by an
	// ID-using verifier that checks degree 2 and, through guessed ids,
	// rules out triangles: in a triangle every node sees all three ids, so
	// a node sees a 3-clique in its view. (A contrived but honest ID user.)
	alg := local.AlgorithmFunc("no-triangle", 1, func(view *graph.View) local.Verdict {
		if view.G.Degree(view.Root) != 2 {
			return local.No
		}
		nbrs := view.G.Neighbors(view.Root)
		if view.G.HasEdge(int(nbrs[0]), int(nbrs[1])) {
			return local.No
		}
		return local.Yes
	})
	verifier := GuessIDVerifier(alg)

	yes := graph.UniformlyLabeled(graph.Cycle(5), "c")
	honest := HonestIDCertificate([]int{4, 1, 3, 0, 2})
	if out := decide.RunNLD(verifier, yes, honest); !out.Accepted {
		t.Fatalf("honest certificate rejected: %v", out.Verdicts)
	}

	no := graph.UniformlyLabeled(graph.Cycle(3), "c")
	for i, cert := range decide.RandomCertificates(3, 30, []graph.Label{"0", "1", "2", "3", "4"}, 5) {
		if out := decide.RunNLD(verifier, no, cert); out.Accepted {
			t.Fatalf("certificate %d fooled the verifier on a triangle", i)
		}
	}
	// Colliding guessed ids are rejected even on yes-instances.
	colliding := HonestIDCertificate([]int{1, 1, 2, 3, 4})
	if out := decide.RunNLD(verifier, yes, colliding); out.Accepted {
		t.Fatal("locally colliding guessed ids accepted")
	}
	// Garbage certificates are rejected.
	garbage := decide.Certificate{"x", "y", "z", "w", "v"}
	if out := decide.RunNLD(verifier, yes, garbage); out.Accepted {
		t.Fatal("non-numeric certificate accepted")
	}
}

func TestHonestIDCertificate(t *testing.T) {
	cert := HonestIDCertificate([]int{10, 0})
	if cert[0] != "10" || cert[1] != "0" {
		t.Fatalf("certificate = %v", cert)
	}
}

func TestCompareLiftReportsDisagreement(t *testing.T) {
	// An ID-PARITY decider is not liftable: the lift rejects everything
	// (some assignment has an odd root id), the decider's verdict depends on
	// the assignment — CompareLift must report disagreements on
	// yes-instances.
	parity := local.AlgorithmFunc("parity", 0, func(view *graph.View) local.Verdict {
		return local.Verdict(view.RootID()%2 == 0)
	})
	lift := ObliviousLift(parity, 4)
	// A single node: under the canonical assignment its id is 0 (even), so
	// the decider accepts, while the lift finds the odd assignments and
	// rejects.
	suite := &decide.Suite{
		Name: "parity",
		Yes:  []*graph.Labeled{graph.UniformlyLabeled(graph.New(1), "")},
	}
	rep := CompareLift(parity, lift, suite)
	if rep.Agreed == rep.Instances {
		t.Fatal("expected disagreement for a non-liftable decider")
	}
	if len(rep.Details) == 0 {
		t.Fatal("details missing")
	}
}
