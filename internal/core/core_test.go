package core

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestCharacterizationMatchesPaperTable(t *testing.T) {
	// The paper's table: separation everywhere except (¬B, ¬C).
	want := map[Assumption]bool{
		{BoundedIDs: true, Computable: true}:   true,
		{BoundedIDs: true, Computable: false}:  true,
		{BoundedIDs: false, Computable: true}:  true,
		{BoundedIDs: false, Computable: false}: false,
	}
	quads := Characterization()
	if len(quads) != 4 {
		t.Fatalf("%d quadrants, want 4", len(quads))
	}
	seen := map[Assumption]bool{}
	for _, q := range quads {
		if seen[q.Assumption] {
			t.Fatalf("duplicate quadrant %s", q.Assumption)
		}
		seen[q.Assumption] = true
		if q.Separated != want[q.Assumption] {
			t.Errorf("%s: separated=%v, want %v", q.Assumption, q.Separated, want[q.Assumption])
		}
		if q.Witness == "" || q.Experiment == "" {
			t.Errorf("%s: missing witness or experiment", q.Assumption)
		}
	}
}

func TestSeparatedAgreesWithCharacterization_Quick(t *testing.T) {
	property := func(b, c bool) bool {
		a := Assumption{BoundedIDs: b, Computable: c}
		q, err := Lookup(a)
		return err == nil && q.Separated == Separated(a)
	}
	if err := quick.Check(property, nil); err != nil {
		t.Error(err)
	}
}

func TestAssumptionString(t *testing.T) {
	tests := map[Assumption]string{
		{BoundedIDs: true, Computable: true}:   "(B, C)",
		{BoundedIDs: true, Computable: false}:  "(B, ¬C)",
		{BoundedIDs: false, Computable: true}:  "(¬B, C)",
		{BoundedIDs: false, Computable: false}: "(¬B, ¬C)",
	}
	for a, want := range tests {
		if a.String() != want {
			t.Errorf("%+v renders %q, want %q", a, a.String(), want)
		}
	}
}

func TestTableString(t *testing.T) {
	s := TableString()
	if strings.Count(s, "LD* ≠ LD") != 3 {
		t.Errorf("table should contain three separations:\n%s", s)
	}
	if strings.Count(s, "LD* = LD") != 1 {
		t.Errorf("table should contain one equality:\n%s", s)
	}
}
