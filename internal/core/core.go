// Package core exposes the paper's primary contribution as a queryable
// artifact: the complete characterisation of when unique node identifiers
// help constant-time distributed decision (Theorem 1 and the table of
// Section 1.1).
//
// The model has two switches:
//
//	(B)  identifiers bounded by f(n)   vs (¬B) unbounded identifiers
//	(C)  computable local algorithms   vs (¬C) arbitrary functions
//
// The characterisation: LD* = LD if and only if BOTH restrictions are
// dropped — identifiers are unnecessary exactly under (¬B, ¬C), where the
// generic Id-oblivious simulation A* applies; under (B) the Section 2
// layered-tree construction separates, and under (C) the Section 3
// halting-table construction separates.
//
// Each quadrant names its witness construction and the experiment (see
// DESIGN.md) that exercises it end to end.
package core

import "fmt"

// Assumption selects one of the four model combinations.
type Assumption struct {
	// BoundedIDs is the paper's (B): identifiers below a function f of the
	// instance size.
	BoundedIDs bool
	// Computable is the paper's (C): nodes run computable algorithms.
	Computable bool
}

// String renders the assumption in the paper's notation.
func (a Assumption) String() string {
	b := "¬B"
	if a.BoundedIDs {
		b = "B"
	}
	c := "¬C"
	if a.Computable {
		c = "C"
	}
	return "(" + b + ", " + c + ")"
}

// Quadrant is one cell of the paper's results table.
type Quadrant struct {
	Assumption Assumption
	// Separated is true when LD* != LD (identifiers are necessary).
	Separated bool
	// Witness names the construction establishing the cell.
	Witness string
	// Experiment is the id of the experiment exercising the cell.
	Experiment string
}

// Characterization returns the paper's full results table (Theorem 1 plus
// the (¬B, ¬C) equality).
func Characterization() []Quadrant {
	return []Quadrant{
		{
			Assumption: Assumption{BoundedIDs: true, Computable: true},
			Separated:  true,
			Witness:    "Section 3 halting tables (bounded identifiers still reach the runtime)",
			Experiment: "E1",
		},
		{
			Assumption: Assumption{BoundedIDs: true, Computable: false},
			Separated:  true,
			Witness:    "Section 2 layered trees T_r vs H_r with the bound f as an oracle",
			Experiment: "E2",
		},
		{
			Assumption: Assumption{BoundedIDs: false, Computable: true},
			Separated:  true,
			Witness:    "Section 3 halting tables G(M, r); deciding P obliviously would separate L0/L1",
			Experiment: "E3",
		},
		{
			Assumption: Assumption{BoundedIDs: false, Computable: false},
			Separated:  false,
			Witness:    "the generic Id-oblivious simulation A* (reject iff some assignment rejects)",
			Experiment: "E4",
		},
	}
}

// Separated answers the paper's question for one assumption combination:
// does LD* != LD hold, i.e. do identifiers genuinely help?
func Separated(a Assumption) bool {
	return a.BoundedIDs || a.Computable
}

// Lookup returns the quadrant for an assumption.
func Lookup(a Assumption) (Quadrant, error) {
	for _, q := range Characterization() {
		if q.Assumption == a {
			return q, nil
		}
	}
	return Quadrant{}, fmt.Errorf("core: no quadrant for %s", a)
}

// TableString renders the Section 1.1 table.
func TableString() string {
	cell := func(sep bool) string {
		if sep {
			return "LD* ≠ LD"
		}
		return "LD* = LD"
	}
	bc, _ := Lookup(Assumption{BoundedIDs: true, Computable: true})
	bnc, _ := Lookup(Assumption{BoundedIDs: true, Computable: false})
	nbc, _ := Lookup(Assumption{BoundedIDs: false, Computable: true})
	nbnc, _ := Lookup(Assumption{BoundedIDs: false, Computable: false})
	return fmt.Sprintf(
		"          (C)         (¬C)\n(B)   %s    %s\n(¬B)  %s    %s\n",
		cell(bc.Separated), cell(bnc.Separated), cell(nbc.Separated), cell(nbnc.Separated))
}
