package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
)

// This file is the integer canonical-form pipeline: the allocation-free
// replacement for the string-building individualisation-refinement in
// canon.go. The legacy string implementation stays as the differential
// reference (code_test.go pins the two against each other); everything on a
// hot path — View.CanonCode, the engine's dedup cache, ObliviousViewSet —
// routes through a reusable CodeWorkspace instead.
//
// The pipeline produces a Code: a full canonical byte encoding (equal iff
// label- and root-preserving isomorphic, exactly like the legacy string) plus
// a 64-bit FNV-1a fingerprint of those bytes. Caches key on the fingerprint
// and keep the byte code only to verify the rare fingerprint collision.
//
// Rooted inputs first go through the shape-specialised fast paths in
// fastpath.go (rooted paths, cycles and bounded-degree trees — the dominant
// small view shapes — get closed-form canonical codes in O(n), in a byte
// namespace disjoint from the generic encoder's). Everything else runs the
// generic search below: 1-WL refinement with counting/radix rounds over the
// dense colour range, then individualisation-refinement branching where the
// colouring is not discrete.

// Code is a canonical form of a (rooted) labelled graph. Bytes is a complete
// canonical encoding: two graphs receive equal Bytes iff they are isomorphic
// by a label-preserving (and root-preserving, when rooted) map. Fingerprint
// is the 64-bit FNV-1a hash of Bytes — a compact, deterministic cache key
// whose collisions must be resolved by comparing Bytes.
type Code struct {
	Fingerprint uint64
	Bytes       []byte
}

// Clone returns a Code with its own copy of the byte encoding. Codes handed
// out by a CodeWorkspace alias workspace memory and are only valid until the
// workspace's next use; Clone detaches them.
func (c Code) Clone() Code {
	return Code{Fingerprint: c.Fingerprint, Bytes: append([]byte(nil), c.Bytes...)}
}

// Equal reports whether two codes denote the same isomorphism class.
func (c Code) Equal(d Code) bool {
	return c.Fingerprint == d.Fingerprint && bytes.Equal(c.Bytes, d.Bytes)
}

// FNV-1a 64-bit parameters. FNV is used instead of maphash so fingerprints
// are stable across workspaces, goroutines and process restarts — the
// cross-run verdict cache and the recorded benchmark artifacts rely on that
// determinism.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fingerprint64 is FNV-1a over b, consuming 8-byte words per loop iteration
// with the hash step fully unrolled. FNV-1a chains through every byte, so the
// word loop cannot reorder or combine steps — it only removes per-byte bounds
// checks and loop overhead. The output is bit-identical to the byte-at-a-time
// reference (fingerprint64Scalar, pinned by TestFingerprintUnrolledMatchesScalar).
func fingerprint64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for len(b) >= 8 {
		x := binary.LittleEndian.Uint64(b)
		h = (h ^ (x & 0xff)) * fnvPrime64
		h = (h ^ (x >> 8 & 0xff)) * fnvPrime64
		h = (h ^ (x >> 16 & 0xff)) * fnvPrime64
		h = (h ^ (x >> 24 & 0xff)) * fnvPrime64
		h = (h ^ (x >> 32 & 0xff)) * fnvPrime64
		h = (h ^ (x >> 40 & 0xff)) * fnvPrime64
		h = (h ^ (x >> 48 & 0xff)) * fnvPrime64
		h = (h ^ (x >> 56)) * fnvPrime64
		b = b[8:]
	}
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime64
	}
	return h
}

// Fingerprint is the exported code-fingerprint function: FNV-1a over b,
// bit-identical to the Fingerprint field every Code carries for its Bytes.
// The engine's verdict-cache integrity guard re-hashes stored code bytes
// through it to detect corrupted entries.
func Fingerprint(b []byte) uint64 { return fingerprint64(b) }

// fingerprint64Scalar is the byte-at-a-time FNV-1a reference the unrolled
// word loop is pinned against.
func fingerprint64Scalar(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// radixMaxSigLen bounds the refinement-signature length (1 + degree) for
// which the counting/radix sort runs: an LSD radix pass touches every node
// once per signature position, so skewed-degree inputs (one hub of degree
// n-1 would force n passes over all nodes) fall back to the comparison sort.
// Every view family the engine dedups is bounded-degree, far below the
// bound.
const radixMaxSigLen = 16

// CodeWorkspace holds every buffer the canonical-form search needs: the
// colour arrays, the flat refinement-signature storage, the counting and
// ordering scratch, the encoder's output buffer and the per-depth branching
// frames of the individualisation-refinement search. All of it is reused
// between calls, so computing the code of a view allocates nothing once the
// workspace has warmed up to the largest view seen.
//
// A CodeWorkspace is not safe for concurrent use; give each worker its own
// (the engine does, via the per-worker ViewExtractor).
type CodeWorkspace struct {
	// Colouring state for the top-level call; branches use frame buffers.
	// Colours and signatures are int32 — node counts fit (the Graph
	// representation is int32-bounded) and the halved element size keeps the
	// refinement loop's working set cache-dense.
	cur []int32

	// Refinement scratch: per-node signature (colour followed by the
	// neighbour colour multiset in ascending order) stored flat in sigBuf at
	// sigPos/sigLen. sigCur is the per-node write cursor of the
	// counting-based signature fill; order/order2 are the ping-pong node
	// permutations of the LSD radix rounds.
	next   []int32
	sigPos []int
	sigLen []int
	sigCur []int
	sigBuf []int32
	order  []int
	order2 []int
	counts []int

	// Persistent sorters so sort.Sort receives a pointer into the workspace
	// and no closure or interface value is allocated on the (rare)
	// comparison-sort fallback.
	initS initSorter
	sigS  sigSorter

	// Encoder scratch.
	encOrder []int
	encNbrs  []int32

	// Top-level output buffer; returned Codes alias it.
	buf []byte

	// rawBuf backs RawCode: kept separate from buf so a raw key survives a
	// subsequent canonical-code computation in the same workspace.
	rawBuf []byte

	// fpScratch is the fast paths' subtree-encoding arena (fastpath.go);
	// fpCount is the traversal budget that bounds shape detection on
	// ill-formed inputs.
	fpScratch []byte
	fpCount   int

	// Individualisation-refinement branching frames, one per recursion
	// depth, pre-grown so frame pointers stay stable across recursion.
	frames []canonFrame
}

type canonFrame struct {
	colors []int32
	best   []byte
	try    []byte
}

// NewCodeWorkspace returns an empty workspace; buffers grow on first use.
func NewCodeWorkspace() *CodeWorkspace {
	w := &CodeWorkspace{}
	w.sigS.w = w
	return w
}

// GraphCode returns the canonical code of an unrooted labelled graph — the
// integer-pipeline equivalent of CanonicalCode. Unrooted codes always run
// the generic search: the shape fast paths exploit the root as a fixed
// anchor.
func (w *CodeWorkspace) GraphCode(l *Labeled) Code {
	return w.code(l, -1)
}

// RootedCode returns the canonical code of a rooted labelled graph — the
// integer-pipeline equivalent of RootedCanonicalCode. The returned Code's
// bytes alias workspace memory and are valid until the workspace's next use;
// Clone them to retain.
func (w *CodeWorkspace) RootedCode(l *Labeled, root int) Code {
	if root < 0 || root >= l.N() {
		panic(fmt.Sprintf("graph: root %d out of range", root))
	}
	return w.code(l, root)
}

func (w *CodeWorkspace) code(l *Labeled, root int) Code {
	l.G.ensureStatic()
	if root >= 0 {
		if out, ok := w.fastCode(l, root, w.buf[:0]); ok {
			w.buf = out
			return Code{Fingerprint: fingerprint64(w.buf), Bytes: w.buf}
		}
	}
	return w.genericCode(l, root)
}

// genericCode is the full 1-WL + individualisation-refinement pipeline,
// bypassing the shape fast paths. It is the fallback for every input no fast
// path accepts and the differential reference the fast paths are pinned
// against (fastpath_test.go).
func (w *CodeWorkspace) genericCode(l *Labeled, root int) Code {
	n := l.N()
	w.grow(n)
	w.buf = w.buf[:0]
	if n == 0 {
		w.buf = binary.AppendUvarint(w.buf, 0)
		return Code{Fingerprint: fingerprint64(w.buf), Bytes: w.buf}
	}
	k := w.initColors(l, root)
	w.buf = w.canon(l, root, 0, k, w.cur[:n], w.buf)
	return Code{Fingerprint: fingerprint64(w.buf), Bytes: w.buf}
}

// grow sizes the per-node buffers for an n-node input. The frames slice is
// grown up front because recursion depth is bounded by n and frame pointers
// must not move while a deeper call appends.
func (w *CodeWorkspace) grow(n int) {
	if cap(w.cur) < n {
		w.cur = make([]int32, n)
		w.next = make([]int32, n)
		w.sigPos = make([]int, n)
		w.sigLen = make([]int, n)
		w.sigCur = make([]int, n)
		w.order = make([]int, n)
		w.order2 = make([]int, n)
		w.counts = make([]int, n+2)
		w.encOrder = make([]int, n)
	}
	if len(w.frames) < n+1 {
		frames := make([]canonFrame, n+1)
		copy(frames, w.frames)
		w.frames = frames
	}
}

// Prewarm sizes every workspace buffer for inputs of up to n nodes and m
// edges, so the first canonical codes of a sweep pay no growth allocations
// and back-to-back misses touch the same warm memory. The ViewExtractor
// prewarms its shared workspace with each extracted view's dimensions.
func (w *CodeWorkspace) Prewarm(n, m int) {
	w.grow(n)
	if need := n + 2*m; cap(w.sigBuf) < need {
		w.sigBuf = make([]int32, need)
	}
}

// initColors assigns the initial colouring by (root flag, label): the root —
// when present — forms the smallest class, and the remaining classes are
// ordered by label. This is the integer analogue of the legacy base-string
// densification: it depends only on label values and the root choice, so it
// is invariant under isomorphism.
func (w *CodeWorkspace) initColors(l *Labeled, root int) int {
	n := l.N()
	// Fast path for the uniform labelling that dominates engine sweeps: the
	// root (when present) is class 0 and everything else one class — exactly
	// what the sort below produces, without sorting.
	uniform := true
	for _, lab := range l.Labels {
		if lab != l.Labels[0] {
			uniform = false
			break
		}
	}
	if uniform {
		if root < 0 || n == 1 {
			for i := 0; i < n; i++ {
				w.cur[i] = 0
			}
			return 1
		}
		for i := 0; i < n; i++ {
			w.cur[i] = 1
		}
		w.cur[root] = 0
		return 2
	}
	order := w.order[:n]
	for i := range order {
		order[i] = i
	}
	w.initS = initSorter{order: order, labels: l.Labels, root: root}
	sort.Sort(&w.initS)
	k := int32(0)
	w.cur[order[0]] = 0
	for i := 1; i < n; i++ {
		prev, v := order[i-1], order[i]
		if (v == root) != (prev == root) || l.Labels[v] != l.Labels[prev] {
			k++
		}
		w.cur[v] = k
	}
	return int(k) + 1
}

// initSorter orders nodes by (root-first, label).
type initSorter struct {
	order  []int
	labels []Label
	root   int
}

func (s *initSorter) Len() int      { return len(s.order) }
func (s *initSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }
func (s *initSorter) Less(i, j int) bool {
	a, b := s.order[i], s.order[j]
	if (a == s.root) != (b == s.root) {
		return a == s.root
	}
	return s.labels[a] < s.labels[b]
}

// canon is the individualisation-refinement search over integer colourings:
// refine to a stable colouring; if discrete, encode; otherwise branch over
// the members of the smallest non-singleton class and keep the
// lexicographically smallest byte code. colors is refined in place; k is its
// current class count.
func (w *CodeWorkspace) canon(l *Labeled, root, depth, k int, colors []int32, out []byte) []byte {
	k = w.refine(l.G, colors, k)
	target := w.firstNonSingletonClass(colors, k)
	if target < 0 {
		return w.encode(l, root, colors, out)
	}
	f := &w.frames[depth]
	if cap(f.colors) < len(colors) {
		f.colors = make([]int32, len(colors))
	}
	haveBest := false
	for v := range colors {
		if int(colors[v]) != target {
			continue
		}
		bc := f.colors[:len(colors)]
		copy(bc, colors)
		// Individualise v: a fresh colour class below all others, keeping
		// the branch ordering deterministic (mirrors the legacy search).
		for u := range bc {
			bc[u]++
		}
		bc[v] = 0
		f.try = w.canon(l, root, depth+1, k+1, bc, f.try[:0])
		if !haveBest || bytes.Compare(f.try, f.best) < 0 {
			f.best = append(f.best[:0], f.try...)
			haveBest = true
		}
	}
	return append(out, f.best...)
}

// refine runs 1-WL colour refinement in counting passes over the dense
// colour range. Each round:
//
//  1. orders nodes by current colour with one counting sort;
//  2. builds every node's signature — its colour followed by its neighbour
//     colours in ascending order — WITHOUT any per-node sort: walking the
//     nodes u in ascending colour order and appending colour(u) to each
//     neighbour's signature emits every neighbour list already sorted
//     (one O(n+m) scatter, the classic partition-refinement trick);
//  3. sorts the node permutation lexicographically by signature with LSD
//     radix passes (pad-at-end sentinel smaller than every colour, so the
//     padded fixed-length order equals the shorter-prefix-first variable
//     length order the comparison sort used — the resulting colouring, and
//     hence the emitted bytes, are unchanged);
//  4. re-densifies colours along the sorted order until the class count
//     stabilises.
//
// Total cost per round is O(n + m + maxSig·(n + k)) with maxSig = 1 + max
// degree — no comparison sort, no interface dispatch, no per-node
// slices.Sort. Inputs with maxSig > radixMaxSigLen (degree-skewed hosts, not
// views) take the comparison fallback, which is the pre-counting behaviour.
// colors is updated in place; the final class count is returned.
func (w *CodeWorkspace) refine(g *Graph, colors []int32, k int) int {
	n := len(colors)
	offsets, nbrs := g.offsets, g.neighbors
	if need := n + len(nbrs); cap(w.sigBuf) < need {
		w.sigBuf = make([]int32, need)
	}
	sigBuf := w.sigBuf[:n+len(nbrs)]
	for {
		// (1) order nodes by current colour (counting sort).
		counts := w.counts[:k+1]
		for c := range counts {
			counts[c] = 0
		}
		for _, c := range colors {
			counts[c]++
		}
		sum := 0
		for c := range counts {
			counts[c], sum = sum, sum+counts[c]
		}
		order := w.order[:n]
		for v := 0; v < n; v++ {
			c := colors[v]
			order[counts[c]] = v
			counts[c]++
		}
		// (2) signature layout and sorted-neighbour fill.
		pos, maxSig := 0, 0
		for v := 0; v < n; v++ {
			w.sigPos[v] = pos
			w.sigCur[v] = pos + 1
			d := int(offsets[v+1] - offsets[v])
			w.sigLen[v] = 1 + d
			if 1+d > maxSig {
				maxSig = 1 + d
			}
			sigBuf[pos] = colors[v]
			pos += 1 + d
		}
		for _, u := range order {
			cu := colors[u]
			for _, v := range nbrs[offsets[u]:offsets[u+1]] {
				sigBuf[w.sigCur[v]] = cu
				w.sigCur[v]++
			}
		}
		// (3) lexicographic sort of the permutation by signature.
		if maxSig <= radixMaxSigLen {
			w.radixOrder(n, k, maxSig)
		} else if n <= 32 {
			for i := 1; i < n; i++ {
				for j := i; j > 0 && w.compareSig(order[j-1], order[j]) > 0; j-- {
					order[j-1], order[j] = order[j], order[j-1]
				}
			}
		} else {
			w.sigS.n = n
			sort.Sort(&w.sigS)
		}
		// (4) densify along the sorted order.
		next := w.next[:n]
		kNext := int32(0)
		next[order[0]] = 0
		for i := 1; i < n; i++ {
			if w.compareSig(order[i-1], order[i]) != 0 {
				kNext++
			}
			next[order[i]] = kNext
		}
		copy(colors, next)
		if int(kNext)+1 == k {
			return k
		}
		k = int(kNext) + 1
	}
}

// radixOrder sorts w.order[:n] lexicographically by signature with stable
// LSD counting passes, one per signature position from last to first.
// Signatures shorter than the pass position contribute the sentinel key 0,
// which sorts below every colour key c+1 — exactly the
// shorter-is-smaller-on-a-common-prefix rule of compareSig.
func (w *CodeWorkspace) radixOrder(n, k, maxSig int) {
	a, b := w.order[:n], w.order2[:n]
	sigBuf := w.sigBuf
	for p := maxSig - 1; p >= 0; p-- {
		counts := w.counts[:k+2]
		for c := range counts {
			counts[c] = 0
		}
		for _, v := range a {
			key := 0
			if p < w.sigLen[v] {
				key = int(sigBuf[w.sigPos[v]+p]) + 1
			}
			counts[key]++
		}
		sum := 0
		for c := range counts {
			counts[c], sum = sum, sum+counts[c]
		}
		for _, v := range a {
			key := 0
			if p < w.sigLen[v] {
				key = int(sigBuf[w.sigPos[v]+p]) + 1
			}
			b[counts[key]] = v
			counts[key]++
		}
		a, b = b, a
	}
	if &a[0] != &w.order[0] {
		copy(w.order[:n], a)
	}
}

// compareSig lexicographically compares two node signatures (shorter is
// smaller on a common prefix). Signatures are tuples of colour numbers, so
// the ordering is invariant under isomorphism.
func (w *CodeWorkspace) compareSig(a, b int) int {
	pa, la := w.sigPos[a], w.sigLen[a]
	pb, lb := w.sigPos[b], w.sigLen[b]
	m := la
	if lb < m {
		m = lb
	}
	buf := w.sigBuf
	for i := 0; i < m; i++ {
		if x, y := buf[pa+i], buf[pb+i]; x != y {
			if x < y {
				return -1
			}
			return 1
		}
	}
	return la - lb
}

// sigSorter orders the workspace's node permutation by signature (the
// comparison fallback for signature lengths beyond the radix bound).
type sigSorter struct {
	w *CodeWorkspace
	n int
}

func (s *sigSorter) Len() int { return s.n }
func (s *sigSorter) Swap(i, j int) {
	o := s.w.order
	o[i], o[j] = o[j], o[i]
}
func (s *sigSorter) Less(i, j int) bool {
	return s.w.compareSig(s.w.order[i], s.w.order[j]) < 0
}

// firstNonSingletonClass returns the smallest colour with more than one
// member, or -1 when the colouring is discrete. Slice-based counting over the
// dense colour range.
func (w *CodeWorkspace) firstNonSingletonClass(colors []int32, k int) int {
	counts := w.counts[:k]
	for c := range counts {
		counts[c] = 0
	}
	for _, c := range colors {
		counts[c]++
	}
	for c, cnt := range counts {
		if cnt > 1 {
			return c
		}
	}
	return -1
}

// encode serialises the graph under a discrete colouring: node count, then
// per node (in colour order) the root flag and length-prefixed label, then
// per node the sorted adjacency as canonical positions. The encoding is
// unambiguous, so equal byte codes imply a label- and root-preserving
// isomorphism — the same guarantee as the legacy string encoder.
func (w *CodeWorkspace) encode(l *Labeled, root int, colors []int32, out []byte) []byte {
	n := l.N()
	order := w.encOrder[:n]
	for v, c := range colors {
		order[c] = v
	}
	out = binary.AppendUvarint(out, uint64(n))
	for _, v := range order {
		flag := byte(0)
		if v == root {
			flag = 1
		}
		out = append(out, flag)
		lab := l.Labels[v]
		out = binary.AppendUvarint(out, uint64(len(lab)))
		out = append(out, lab...)
	}
	offsets, flat := l.G.offsets, l.G.neighbors
	for _, v := range order {
		nbrs := flat[offsets[v]:offsets[v+1]]
		out = binary.AppendUvarint(out, uint64(len(nbrs)))
		p := w.encNbrs[:0]
		for _, u := range nbrs {
			// The position of node u in the canonical order is its (discrete)
			// colour.
			p = append(p, colors[u])
		}
		sortInt32sSmall(p)
		w.encNbrs = p
		for _, q := range p {
			out = binary.AppendUvarint(out, uint64(q))
		}
	}
	return out
}

// sortInt32sSmall sorts an int32 slice, by insertion below 32 entries
// (adjacency rows of views are a handful of entries; stdlib dispatch costs
// more than the sort) and via the stdlib beyond.
func sortInt32sSmall(p []int32) {
	if len(p) > 32 {
		slices.Sort(p)
		return
	}
	for i := 1; i < len(p); i++ {
		for j := i; j > 0 && p[j-1] > p[j]; j-- {
			p[j-1], p[j] = p[j], p[j-1]
		}
	}
}
