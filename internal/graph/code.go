package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"slices"
	"sort"
)

// This file is the integer canonical-form pipeline: the allocation-free
// replacement for the string-building individualisation-refinement in
// canon.go. The legacy string implementation stays as the differential
// reference (code_test.go pins the two against each other); everything on a
// hot path — View.CanonCode, the engine's dedup cache, ObliviousViewSet —
// routes through a reusable CodeWorkspace instead.
//
// The pipeline produces a Code: a full canonical byte encoding (equal iff
// label- and root-preserving isomorphic, exactly like the legacy string) plus
// a 64-bit FNV-1a fingerprint of those bytes. Caches key on the fingerprint
// and keep the byte code only to verify the rare fingerprint collision.

// Code is a canonical form of a (rooted) labelled graph. Bytes is a complete
// canonical encoding: two graphs receive equal Bytes iff they are isomorphic
// by a label-preserving (and root-preserving, when rooted) map. Fingerprint
// is the 64-bit FNV-1a hash of Bytes — a compact, deterministic cache key
// whose collisions must be resolved by comparing Bytes.
type Code struct {
	Fingerprint uint64
	Bytes       []byte
}

// Clone returns a Code with its own copy of the byte encoding. Codes handed
// out by a CodeWorkspace alias workspace memory and are only valid until the
// workspace's next use; Clone detaches them.
func (c Code) Clone() Code {
	return Code{Fingerprint: c.Fingerprint, Bytes: append([]byte(nil), c.Bytes...)}
}

// Equal reports whether two codes denote the same isomorphism class.
func (c Code) Equal(d Code) bool {
	return c.Fingerprint == d.Fingerprint && bytes.Equal(c.Bytes, d.Bytes)
}

// FNV-1a 64-bit parameters. FNV is used instead of maphash so fingerprints
// are stable across workspaces, goroutines and process restarts — the
// cross-run verdict cache and the recorded benchmark artifacts rely on that
// determinism.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fingerprint64(b []byte) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= fnvPrime64
	}
	return h
}

// CodeWorkspace holds every buffer the canonical-form search needs: the
// colour arrays, the flat refinement-signature storage, the counting and
// ordering scratch, the encoder's output buffer and the per-depth branching
// frames of the individualisation-refinement search. All of it is reused
// between calls, so computing the code of a view allocates nothing once the
// workspace has warmed up to the largest view seen.
//
// A CodeWorkspace is not safe for concurrent use; give each worker its own
// (the engine does, via the per-worker ViewExtractor).
type CodeWorkspace struct {
	// Colouring state for the top-level call; branches use frame buffers.
	cur []int

	// Refinement scratch: per-node signature (colour followed by the sorted
	// neighbour colour multiset) stored flat in sigBuf at sigPos/sigLen.
	next   []int
	sigPos []int
	sigLen []int
	sigBuf []int
	order  []int
	counts []int

	// Persistent sorters so sort.Sort receives a pointer into the workspace
	// and no closure or interface value is allocated per call.
	initS initSorter
	sigS  sigSorter

	// Encoder scratch.
	encOrder []int
	encNbrs  []int

	// Top-level output buffer; returned Codes alias it.
	buf []byte

	// rawBuf backs RawCode: kept separate from buf so a raw key survives a
	// subsequent canonical-code computation in the same workspace.
	rawBuf []byte

	// Individualisation-refinement branching frames, one per recursion
	// depth, pre-grown so frame pointers stay stable across recursion.
	frames []canonFrame
}

type canonFrame struct {
	colors []int
	best   []byte
	try    []byte
}

// NewCodeWorkspace returns an empty workspace; buffers grow on first use.
func NewCodeWorkspace() *CodeWorkspace {
	w := &CodeWorkspace{}
	w.sigS.w = w
	return w
}

// GraphCode returns the canonical code of an unrooted labelled graph — the
// integer-pipeline equivalent of CanonicalCode.
func (w *CodeWorkspace) GraphCode(l *Labeled) Code {
	return w.code(l, -1)
}

// RootedCode returns the canonical code of a rooted labelled graph — the
// integer-pipeline equivalent of RootedCanonicalCode. The returned Code's
// bytes alias workspace memory and are valid until the workspace's next use;
// Clone them to retain.
func (w *CodeWorkspace) RootedCode(l *Labeled, root int) Code {
	if root < 0 || root >= l.N() {
		panic(fmt.Sprintf("graph: root %d out of range", root))
	}
	return w.code(l, root)
}

func (w *CodeWorkspace) code(l *Labeled, root int) Code {
	n := l.N()
	w.grow(n)
	w.buf = w.buf[:0]
	if n == 0 {
		w.buf = binary.AppendUvarint(w.buf, 0)
		return Code{Fingerprint: fingerprint64(w.buf), Bytes: w.buf}
	}
	k := w.initColors(l, root)
	w.buf = w.canon(l, root, 0, k, w.cur[:n], w.buf)
	return Code{Fingerprint: fingerprint64(w.buf), Bytes: w.buf}
}

// grow sizes the per-node buffers for an n-node input. The frames slice is
// grown up front because recursion depth is bounded by n and frame pointers
// must not move while a deeper call appends.
func (w *CodeWorkspace) grow(n int) {
	if cap(w.cur) < n {
		w.cur = make([]int, n)
		w.next = make([]int, n)
		w.sigPos = make([]int, n)
		w.sigLen = make([]int, n)
		w.order = make([]int, n)
		w.counts = make([]int, n+1)
		w.encOrder = make([]int, n)
	}
	if len(w.frames) < n+1 {
		frames := make([]canonFrame, n+1)
		copy(frames, w.frames)
		w.frames = frames
	}
}

// initColors assigns the initial colouring by (root flag, label): the root —
// when present — forms the smallest class, and the remaining classes are
// ordered by label. This is the integer analogue of the legacy base-string
// densification: it depends only on label values and the root choice, so it
// is invariant under isomorphism.
func (w *CodeWorkspace) initColors(l *Labeled, root int) int {
	n := l.N()
	// Fast path for the uniform labelling that dominates engine sweeps: the
	// root (when present) is class 0 and everything else one class — exactly
	// what the sort below produces, without sorting.
	uniform := true
	for _, lab := range l.Labels {
		if lab != l.Labels[0] {
			uniform = false
			break
		}
	}
	if uniform {
		if root < 0 || n == 1 {
			for i := 0; i < n; i++ {
				w.cur[i] = 0
			}
			return 1
		}
		for i := 0; i < n; i++ {
			w.cur[i] = 1
		}
		w.cur[root] = 0
		return 2
	}
	order := w.order[:n]
	for i := range order {
		order[i] = i
	}
	w.initS = initSorter{order: order, labels: l.Labels, root: root}
	sort.Sort(&w.initS)
	k := 0
	w.cur[order[0]] = 0
	for i := 1; i < n; i++ {
		prev, v := order[i-1], order[i]
		if (v == root) != (prev == root) || l.Labels[v] != l.Labels[prev] {
			k++
		}
		w.cur[v] = k
	}
	return k + 1
}

// initSorter orders nodes by (root-first, label).
type initSorter struct {
	order  []int
	labels []Label
	root   int
}

func (s *initSorter) Len() int      { return len(s.order) }
func (s *initSorter) Swap(i, j int) { s.order[i], s.order[j] = s.order[j], s.order[i] }
func (s *initSorter) Less(i, j int) bool {
	a, b := s.order[i], s.order[j]
	if (a == s.root) != (b == s.root) {
		return a == s.root
	}
	return s.labels[a] < s.labels[b]
}

// canon is the individualisation-refinement search over integer colourings:
// refine to a stable colouring; if discrete, encode; otherwise branch over
// the members of the smallest non-singleton class and keep the
// lexicographically smallest byte code. colors is refined in place; k is its
// current class count.
func (w *CodeWorkspace) canon(l *Labeled, root, depth, k int, colors []int, out []byte) []byte {
	k = w.refine(l.G, colors, k)
	target := w.firstNonSingletonClass(colors, k)
	if target < 0 {
		return w.encode(l, root, colors, out)
	}
	f := &w.frames[depth]
	if cap(f.colors) < len(colors) {
		f.colors = make([]int, len(colors))
	}
	haveBest := false
	for v := range colors {
		if colors[v] != target {
			continue
		}
		bc := f.colors[:len(colors)]
		copy(bc, colors)
		// Individualise v: a fresh colour class below all others, keeping
		// the branch ordering deterministic (mirrors the legacy search).
		for u := range bc {
			bc[u]++
		}
		bc[v] = 0
		f.try = w.canon(l, root, depth+1, k+1, bc, f.try[:0])
		if !haveBest || bytes.Compare(f.try, f.best) < 0 {
			f.best = append(f.best[:0], f.try...)
			haveBest = true
		}
	}
	return append(out, f.best...)
}

// refine runs 1-WL colour refinement with counting-free integer signatures:
// each round sorts nodes by (colour, sorted neighbour colour multiset) and
// re-densifies, until the class count stabilises. colors is updated in
// place; the final class count is returned.
func (w *CodeWorkspace) refine(g *Graph, colors []int, k int) int {
	n := len(colors)
	offsets, nbrs := g.offsets, g.neighbors
	for {
		w.sigBuf = w.sigBuf[:0]
		for v := 0; v < n; v++ {
			w.sigPos[v] = len(w.sigBuf)
			w.sigBuf = append(w.sigBuf, colors[v])
			start := len(w.sigBuf)
			for _, u := range nbrs[offsets[v]:offsets[v+1]] {
				w.sigBuf = append(w.sigBuf, colors[u])
			}
			slices.Sort(w.sigBuf[start:])
			w.sigLen[v] = len(w.sigBuf) - w.sigPos[v]
		}
		order := w.order[:n]
		for i := range order {
			order[i] = i
		}
		// Views are small, so a direct insertion sort beats sort.Sort's
		// interface dispatch; large inputs fall back to the stdlib.
		if n <= 32 {
			for i := 1; i < n; i++ {
				for j := i; j > 0 && w.compareSig(order[j-1], order[j]) > 0; j-- {
					order[j-1], order[j] = order[j], order[j-1]
				}
			}
		} else {
			w.sigS.n = n
			sort.Sort(&w.sigS)
		}
		next := w.next[:n]
		kNext := 0
		next[order[0]] = 0
		for i := 1; i < n; i++ {
			if w.compareSig(order[i-1], order[i]) != 0 {
				kNext++
			}
			next[order[i]] = kNext
		}
		kNext++
		copy(colors, next)
		if kNext == k {
			return k
		}
		k = kNext
	}
}

// compareSig lexicographically compares two node signatures (shorter is
// smaller on a common prefix). Signatures are tuples of colour numbers, so
// the ordering is invariant under isomorphism.
func (w *CodeWorkspace) compareSig(a, b int) int {
	pa, la := w.sigPos[a], w.sigLen[a]
	pb, lb := w.sigPos[b], w.sigLen[b]
	m := la
	if lb < m {
		m = lb
	}
	buf := w.sigBuf
	for i := 0; i < m; i++ {
		if x, y := buf[pa+i], buf[pb+i]; x != y {
			if x < y {
				return -1
			}
			return 1
		}
	}
	return la - lb
}

// sigSorter orders the workspace's node permutation by signature.
type sigSorter struct {
	w *CodeWorkspace
	n int
}

func (s *sigSorter) Len() int { return s.n }
func (s *sigSorter) Swap(i, j int) {
	o := s.w.order
	o[i], o[j] = o[j], o[i]
}
func (s *sigSorter) Less(i, j int) bool {
	return s.w.compareSig(s.w.order[i], s.w.order[j]) < 0
}

// firstNonSingletonClass returns the smallest colour with more than one
// member, or -1 when the colouring is discrete. Slice-based counting over the
// dense colour range.
func (w *CodeWorkspace) firstNonSingletonClass(colors []int, k int) int {
	counts := w.counts[:k]
	for c := range counts {
		counts[c] = 0
	}
	for _, c := range colors {
		counts[c]++
	}
	for c, cnt := range counts {
		if cnt > 1 {
			return c
		}
	}
	return -1
}

// encode serialises the graph under a discrete colouring: node count, then
// per node (in colour order) the root flag and length-prefixed label, then
// per node the sorted adjacency as canonical positions. The encoding is
// unambiguous, so equal byte codes imply a label- and root-preserving
// isomorphism — the same guarantee as the legacy string encoder.
func (w *CodeWorkspace) encode(l *Labeled, root int, colors []int, out []byte) []byte {
	n := l.N()
	order := w.encOrder[:n]
	for v, c := range colors {
		order[c] = v
	}
	out = binary.AppendUvarint(out, uint64(n))
	for _, v := range order {
		flag := byte(0)
		if v == root {
			flag = 1
		}
		out = append(out, flag)
		lab := l.Labels[v]
		out = binary.AppendUvarint(out, uint64(len(lab)))
		out = append(out, lab...)
	}
	offsets, flat := l.G.offsets, l.G.neighbors
	for _, v := range order {
		nbrs := flat[offsets[v]:offsets[v+1]]
		out = binary.AppendUvarint(out, uint64(len(nbrs)))
		p := w.encNbrs[:0]
		for _, u := range nbrs {
			// The position of node u in the canonical order is its (discrete)
			// colour.
			p = append(p, colors[u])
		}
		slices.Sort(p)
		w.encNbrs = p
		for _, q := range p {
			out = binary.AppendUvarint(out, uint64(q))
		}
	}
	return out
}
