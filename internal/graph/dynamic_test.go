package graph

import (
	"math/rand"
	"testing"
)

// rebuildFromEdges freezes an edge set into a fresh static graph via Builder,
// the independent oracle for the dynamic update path.
func rebuildFromEdges(n int, edges map[[2]int]bool) *Graph {
	b := NewBuilder(n)
	for e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func normEdge(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

// TestApplyUpdateDifferential drives a long random add/remove stream through
// ApplyUpdate and checks after every step that the dynamic graph equals a
// from-scratch Builder rebuild of the tracked edge set — in structure, edge
// count, degrees, and flat arrays after Compact.
func TestApplyUpdateDifferential(t *testing.T) {
	const n = 24
	const steps = 600
	rng := rand.New(rand.NewSource(9))

	g := New(n)
	edges := map[[2]int]bool{}
	for step := 0; step < steps; step++ {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		e := normEdge(u, v)
		add := rng.Intn(2) == 0
		changed := g.ApplyUpdate(u, v, add)
		if add {
			if changed == edges[e] {
				t.Fatalf("step %d: add(%v) changed=%v but present=%v", step, e, changed, edges[e])
			}
			edges[e] = true
		} else {
			if changed != edges[e] {
				t.Fatalf("step %d: remove(%v) changed=%v but present=%v", step, e, changed, edges[e])
			}
			delete(edges, e)
		}
		want := rebuildFromEdges(n, edges)
		if g.M() != len(edges) {
			t.Fatalf("step %d: M=%d want %d", step, g.M(), len(edges))
		}
		if !g.Equal(want) {
			t.Fatalf("step %d: dynamic graph != rebuilt graph", step)
		}
		if !want.Equal(g) {
			t.Fatalf("step %d: Equal not symmetric across representations", step)
		}
	}

	// Clone of a dynamic graph is static and equal.
	c := g.Clone()
	if c.Dynamic() {
		t.Fatal("Clone of dynamic graph should be static")
	}
	if !c.Equal(g) || !g.Equal(c) {
		t.Fatal("Clone not equal to original")
	}

	// Compact returns to flat CSR with identical structure.
	want := rebuildFromEdges(n, edges)
	g.Compact()
	if g.Dynamic() {
		t.Fatal("Compact left graph dynamic")
	}
	if !g.Equal(want) {
		t.Fatal("Compact changed structure")
	}
}

// TestApplyUpdateNoop checks that duplicate adds and absent removes report
// false and leave structure and generation untouched.
func TestApplyUpdateNoop(t *testing.T) {
	g := Cycle(8)
	g.BeginUpdates()
	gen := g.Generation()
	if g.ApplyUpdate(0, 1, true) {
		t.Fatal("adding existing edge reported changed")
	}
	if g.ApplyUpdate(2, 5, false) {
		t.Fatal("removing absent edge reported changed")
	}
	if g.Generation() != gen {
		t.Fatalf("no-op updates advanced generation %d -> %d", gen, g.Generation())
	}
	if g.M() != 8 {
		t.Fatalf("M=%d want 8", g.M())
	}
}

// TestBeginUpdatesPreservesStructure checks the O(n+m) conversion is
// structure- and generation-neutral in both directions.
func TestBeginUpdatesPreservesStructure(t *testing.T) {
	g := Grid(5, 7)
	want := g.Clone()
	gen := g.Generation()
	g.BeginUpdates()
	if !g.Dynamic() {
		t.Fatal("BeginUpdates did not enter dynamic mode")
	}
	if g.Generation() != gen {
		t.Fatal("BeginUpdates advanced generation")
	}
	if !g.Equal(want) {
		t.Fatal("BeginUpdates changed structure")
	}
	g.Compact()
	if g.Generation() != gen {
		t.Fatal("Compact advanced generation")
	}
	if !g.Equal(want) {
		t.Fatal("Compact changed structure")
	}
}

// TestDynamicRowIndependence exercises the three-index-slice footgun: growing
// one row past its capacity in the shared buffer must not clobber the next
// row.
func TestDynamicRowIndependence(t *testing.T) {
	// Path 0-1-2-3: node 1's row is [0,2] with capacity ending where node 2's
	// row starts. Adding edge {1,3} grows row 1; row 2 must stay [1,3].
	g := Path(4)
	g.BeginUpdates()
	g.ApplyUpdate(1, 3, true)
	wantRows := [][]int32{{1}, {0, 2, 3}, {1, 3}, {1, 2}}
	for v, want := range wantRows {
		got := g.Neighbors(v)
		if len(got) != len(want) {
			t.Fatalf("node %d: neighbours %v want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("node %d: neighbours %v want %v", v, got, want)
			}
		}
	}
}

// TestAddNodeDynamic checks AddNode works in dynamic mode and the new node
// can immediately receive edges.
func TestAddNodeDynamic(t *testing.T) {
	g := Cycle(4)
	g.BeginUpdates()
	v := g.AddNode()
	if v != 4 || g.N() != 5 {
		t.Fatalf("AddNode=%d N=%d want 4,5", v, g.N())
	}
	g.ApplyUpdate(v, 0, true)
	if !g.HasEdge(4, 0) || g.Degree(4) != 1 {
		t.Fatal("edge to fresh dynamic node missing")
	}
	g.Compact()
	if !g.HasEdge(4, 0) || g.M() != 5 {
		t.Fatal("Compact lost edge to fresh node")
	}
}

// TestGenerationCounter pins the generation semantics: structural changes
// advance it, representation changes and no-ops do not.
func TestGenerationCounter(t *testing.T) {
	g := Cycle(6)
	if g.Generation() != 0 {
		t.Fatalf("fresh generator graph at generation %d", g.Generation())
	}
	g.AddEdge(0, 2)
	if g.Generation() != 1 {
		t.Fatalf("AddEdge: generation %d want 1", g.Generation())
	}
	g.AddEdge(0, 2) // idempotent no-op
	if g.Generation() != 1 {
		t.Fatalf("idempotent AddEdge advanced generation to %d", g.Generation())
	}
	g.AddNode()
	if g.Generation() != 2 {
		t.Fatalf("AddNode: generation %d want 2", g.Generation())
	}
	g.BeginUpdates()
	g.Compact()
	if g.Generation() != 2 {
		t.Fatalf("BeginUpdates/Compact advanced generation to %d", g.Generation())
	}
	if !g.ApplyUpdate(1, 4, true) {
		t.Fatal("ApplyUpdate add reported unchanged")
	}
	if g.Generation() != 3 {
		t.Fatalf("ApplyUpdate: generation %d want 3", g.Generation())
	}
}

// TestStaleExtractorDetected is the regression test for the compat-mutator
// footgun: using a ViewExtractor after the host graph mutated must panic
// instead of silently reading stale adjacency, and Reset must clear the
// condition.
func TestStaleExtractorDetected(t *testing.T) {
	g := Cycle(8)
	l := &Labeled{G: g, Labels: make([]Label, 8)}
	x := NewViewExtractor(l)
	x.At(0, 2) // fresh extractor works

	g.AddEdge(0, 4)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("At on stale extractor did not panic")
			}
		}()
		x.At(0, 2)
	}()

	x.Reset(l)
	v := x.At(0, 1)
	if v.N() != 4 { // centre + neighbours 1, 7 and the new chord 4
		t.Fatalf("post-Reset view has %d nodes, want 4", v.N())
	}
}

// TestDynamicExtraction checks view extraction and codes work directly on a
// dynamic-mode host (the incremental engine's steady state).
func TestDynamicExtraction(t *testing.T) {
	g := Cycle(10)
	g.BeginUpdates()
	g.ApplyUpdate(0, 5, true)
	l := &Labeled{G: g, Labels: make([]Label, 10)}
	x := NewViewExtractor(l)
	view := x.At(0, 1)
	if view.N() != 4 {
		t.Fatalf("dynamic view has %d nodes, want 4", view.N())
	}
	if code := view.CanonCode(); len(code.Bytes) == 0 {
		t.Fatal("empty canonical code from dynamic host view")
	}
}
