package graph

import "math"

// Traversal is reusable scratch memory for whole-graph analyses: one
// persistent int32 queue plus epoch-stamped distance/visited/parent arrays
// that back scratch-aware variants of BFSFrom, Ball, IsConnected,
// ComponentIDs (the scratch shape of ConnectedComponents), Diameter,
// Distance and HasCycle. It mirrors ViewExtractor's role for view
// extraction: one Traversal per worker turns repeated whole-graph analyses
// into a 0 allocs/op steady state, which is what makes diameter sweeps and
// component scans over the n=10^6 instances (cycles, sparse random graphs,
// the height-10 pyramids) allocator-quiet.
//
// Epoch stamping: partial traversals (Ball, Distance, the per-source BFS
// inside Diameter) never clear their per-node state. A node counts as
// visited only when stamp[v] equals the current epoch, so starting the next
// traversal is one counter increment instead of an O(n) wipe — a Ball of 7
// nodes in a 10^6-node host touches 7 stamps, not 10^6. The epoch counter
// is wrapped safely: when it would overflow, the stamp array is zeroed once
// and counting restarts, so a stale stamp can never alias a live epoch.
// Full-output analyses (BFSFrom's distance vector, ComponentIDs' id vector)
// are Θ(n) by contract and fill a reused output buffer instead.
//
// A Traversal may be reused across graphs of different sizes; the scratch
// grows to the largest host seen. The zero value is ready to use.
//
// Lifetime contract: slices returned by BFSFrom, Ball and ComponentIDs are
// owned by the Traversal and valid only until its next call. Callers that
// retain results must copy them (the package-level Graph methods are exactly
// those copying wrappers).
//
// A Traversal is not safe for concurrent use; give each goroutine its own.
type Traversal struct {
	// Epoch-stamped per-node state, sized to the largest host seen. dist and
	// parent are only meaningful at indices where stamp equals epoch.
	stamp  []int32
	dist   []int32
	parent []int32
	epoch  int32

	// queue is the persistent BFS queue (also the DFS stack of HasCycle).
	queue []int32

	// Reused output buffers: Ball's node list, BFSFrom's full distance
	// vector, ComponentIDs' id vector.
	ball    []int
	distOut []int32
	comp    []int32
}

// NewTraversal returns an empty Traversal. Equivalent to new(Traversal);
// scratch arrays are grown on first use.
func NewTraversal() *Traversal { return &Traversal{} }

// next begins a new epoch with per-node state grown to n nodes.
func (t *Traversal) next(n int) {
	if len(t.stamp) < n {
		// Fresh arrays are zeroed, so restart the epoch count: stamp 0 never
		// equals an epoch >= 1.
		t.stamp = make([]int32, n)
		t.dist = make([]int32, n)
		t.parent = make([]int32, n)
		t.epoch = 0
	}
	if t.epoch == math.MaxInt32 {
		for i := range t.stamp {
			t.stamp[i] = 0
		}
		t.epoch = 0
	}
	t.epoch++
}

// BFSFrom runs a breadth-first search from source and returns the distance
// to every node; unreachable nodes get distance -1. The returned slice is
// scratch-owned: it is valid until the Traversal's next call and must be
// copied to be retained. Steady-state the call is 0 allocs/op; the
// distance fill is Θ(n) by contract.
func (t *Traversal) BFSFrom(g *Graph, source int) []int32 {
	g.check(source)
	n := g.N()
	if cap(t.distOut) < n {
		t.distOut = make([]int32, n)
	}
	dist := t.distOut[:n]
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	q := append(t.queue[:0], int32(source))
	for head := 0; head < len(q); head++ {
		v := q[head]
		dv := dist[v] + 1
		for _, u := range g.row(int(v)) {
			if dist[u] == -1 {
				dist[u] = dv
				q = append(q, u)
			}
		}
	}
	t.queue = q
	return dist
}

// Ball returns the nodes within distance radius of v, in BFS discovery
// order with the centre first — element-for-element the same order as
// Graph.Ball. The returned slice is scratch-owned (valid until the next
// call); the traversal touches only the ball, not the whole host, and is
// 0 allocs/op steady-state.
func (t *Traversal) Ball(g *Graph, v, radius int) []int {
	g.check(v)
	if radius < 0 {
		panic("graph: negative radius")
	}
	t.next(g.N())
	e := t.epoch
	t.stamp[v] = e
	t.dist[v] = 0
	ball := append(t.ball[:0], v)
	q := append(t.queue[:0], int32(v))
	for head := 0; head < len(q); head++ {
		w := q[head]
		dw := t.dist[w]
		if int(dw) == radius {
			// FIFO order makes distances monotone: everything still queued is
			// already at the radius.
			break
		}
		for _, u := range g.row(int(w)) {
			if t.stamp[u] != e {
				t.stamp[u] = e
				t.dist[u] = dw + 1
				q = append(q, u)
				ball = append(ball, int(u))
			}
		}
	}
	t.queue, t.ball = q, ball
	return ball
}

// IsConnected reports whether the graph is connected; the empty graph
// counts as connected. 0 allocs/op steady-state.
func (t *Traversal) IsConnected(g *Graph) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	_, reached := t.eccentricity(g, 0)
	return reached == n
}

// ComponentIDs labels every node with its connected-component id and
// returns the id vector together with the component count. Ids are dense
// and assigned in order of each component's smallest member, so grouping
// nodes 0..n-1 by id yields exactly Graph.ConnectedComponents. The id
// vector is scratch-owned (valid until the next call); steady-state the
// scan is 0 allocs/op.
func (t *Traversal) ComponentIDs(g *Graph) ([]int32, int) {
	n := g.N()
	if cap(t.comp) < n {
		t.comp = make([]int32, n)
	}
	comp := t.comp[:n]
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	q := t.queue[:0]
	for start := 0; start < n; start++ {
		if comp[start] != -1 {
			continue
		}
		id := int32(count)
		count++
		comp[start] = id
		q = append(q[:0], int32(start))
		for head := 0; head < len(q); head++ {
			for _, u := range g.row(int(q[head])) {
				if comp[u] == -1 {
					comp[u] = id
					q = append(q, u)
				}
			}
		}
	}
	t.queue = q
	return comp, count
}

// Diameter returns the largest finite shortest-path distance, or -1 for a
// disconnected or empty graph. It runs one stamped BFS per node over the
// shared scratch — 0 allocs/op steady-state, where the slice-allocating
// equivalent churns ~n fresh distance vectors.
func (t *Traversal) Diameter(g *Graph) int {
	n := g.N()
	if n == 0 {
		return -1
	}
	diameter := 0
	for v := 0; v < n; v++ {
		ecc, reached := t.eccentricity(g, v)
		if reached != n {
			return -1
		}
		if ecc > diameter {
			diameter = ecc
		}
	}
	return diameter
}

// Distance returns the shortest-path distance between u and v, or -1 if
// they are in different components. The BFS stops as soon as v is reached.
// 0 allocs/op steady-state.
func (t *Traversal) Distance(g *Graph, u, v int) int {
	g.check(u)
	g.check(v)
	if u == v {
		return 0
	}
	t.next(g.N())
	e := t.epoch
	t.stamp[u] = e
	t.dist[u] = 0
	q := append(t.queue[:0], int32(u))
	for head := 0; head < len(q); head++ {
		w := q[head]
		dw := t.dist[w]
		for _, x := range g.row(int(w)) {
			if t.stamp[x] != e {
				if int(x) == v {
					t.queue = q
					return int(dw) + 1
				}
				t.stamp[x] = e
				t.dist[x] = dw + 1
				q = append(q, x)
			}
		}
	}
	t.queue = q
	return -1
}

// HasCycle reports whether the graph contains any cycle. It runs the same
// stack-based search as Graph.HasCycle over epoch-stamped visited/parent
// scratch. 0 allocs/op steady-state.
func (t *Traversal) HasCycle(g *Graph) bool {
	n := g.N()
	t.next(n)
	e := t.epoch
	q := t.queue[:0] // used as a stack here
	for start := 0; start < n; start++ {
		if t.stamp[start] == e {
			continue
		}
		t.stamp[start] = e
		t.parent[start] = -1
		q = append(q[:0], int32(start))
		for len(q) > 0 {
			v := q[len(q)-1]
			q = q[:len(q)-1]
			for _, u := range g.row(int(v)) {
				if t.stamp[u] != e {
					t.stamp[u] = e
					t.parent[u] = v
					q = append(q, u)
				} else if t.parent[v] != u {
					t.queue = q
					return true
				}
			}
		}
	}
	t.queue = q
	return false
}

// eccentricity runs a stamped BFS from source and returns the distance to
// the farthest reached node together with the number of nodes reached.
func (t *Traversal) eccentricity(g *Graph, source int) (ecc, reached int) {
	t.next(g.N())
	e := t.epoch
	t.stamp[source] = e
	t.dist[source] = 0
	q := append(t.queue[:0], int32(source))
	var last int32
	for head := 0; head < len(q); head++ {
		w := q[head]
		last = t.dist[w]
		for _, u := range g.row(int(w)) {
			if t.stamp[u] != e {
				t.stamp[u] = e
				t.dist[u] = last + 1
				q = append(q, u)
			}
		}
	}
	t.queue = q
	return int(last), len(q)
}
