package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func labeledPath(labels ...Label) *Labeled {
	return NewLabeled(Path(len(labels)), labels)
}

func TestCanonicalCodeBasics(t *testing.T) {
	a := labeledPath("x", "y", "z")
	b := labeledPath("z", "y", "x") // reversal is an isomorphism
	c := labeledPath("x", "z", "y") // not isomorphic to a
	if CanonicalCode(a) != CanonicalCode(b) {
		t.Error("reversed path should have the same code")
	}
	if CanonicalCode(a) == CanonicalCode(c) {
		t.Error("different label orders along a path should differ")
	}
}

func TestCanonicalCodeDistinguishesStructure(t *testing.T) {
	// C6 vs two triangles: same degrees, same label multiset.
	c6 := UniformlyLabeled(Cycle(6), "a")
	twoTriangles := New(6)
	twoTriangles.AddEdge(0, 1)
	twoTriangles.AddEdge(1, 2)
	twoTriangles.AddEdge(2, 0)
	twoTriangles.AddEdge(3, 4)
	twoTriangles.AddEdge(4, 5)
	twoTriangles.AddEdge(5, 3)
	tt := UniformlyLabeled(twoTriangles, "a")
	if CanonicalCode(c6) == CanonicalCode(tt) {
		t.Error("C6 and 2xC3 should have different codes")
	}
}

func TestCanonicalCodeRegularPair(t *testing.T) {
	// Both 3-regular on 8 nodes: K4 x K2 (cube-ish) vs K3,3 plus... use
	// simpler: cube graph Q3 vs K4 disjoint-union K4 have same degree
	// sequence; colour refinement alone cannot split regular graphs, so this
	// exercises the individualisation branch.
	cube := New(8)
	for _, e := range [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 7}, {7, 4},
		{0, 4}, {1, 5}, {2, 6}, {3, 7},
	} {
		cube.AddEdge(e[0], e[1])
	}
	twoK4 := New(8)
	for _, block := range [][]int{{0, 1, 2, 3}, {4, 5, 6, 7}} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				twoK4.AddEdge(block[i], block[j])
			}
		}
	}
	a := UniformlyLabeled(cube, "")
	b := UniformlyLabeled(twoK4, "")
	if CanonicalCode(a) == CanonicalCode(b) {
		t.Error("Q3 and 2xK4 should differ")
	}
	// A relabelled cube must match the cube.
	perm := []int{3, 5, 0, 6, 2, 7, 1, 4}
	if CanonicalCode(a) != CanonicalCode(a.Relabel(perm)) {
		t.Error("relabelled cube should have identical code")
	}
}

func TestRootedCanonicalCode(t *testing.T) {
	l := UniformlyLabeled(Path(5), "")
	// Endpoints are equivalent to each other but not to the middle.
	if RootedCanonicalCode(l, 0) != RootedCanonicalCode(l, 4) {
		t.Error("path endpoints should be root-equivalent")
	}
	if RootedCanonicalCode(l, 0) == RootedCanonicalCode(l, 2) {
		t.Error("endpoint and centre should differ as roots")
	}
	if RootedCanonicalCode(l, 1) != RootedCanonicalCode(l, 3) {
		t.Error("symmetric interior nodes should be root-equivalent")
	}
}

func TestIsomorphicAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alphabet := []Label{"a", "b"}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(7)
		g := Random(n, 0.4, int64(trial))
		la := RandomLabels(g, alphabet, int64(trial*3+1))
		// Random permutation of la: must be isomorphic.
		perm := rng.Perm(n)
		lb := la.Relabel(perm)
		if !Isomorphic(la, lb) {
			t.Fatalf("trial %d: relabelled graph not Isomorphic", trial)
		}
		if !BruteForceIsomorphic(la, lb) {
			t.Fatalf("trial %d: brute force disagrees on relabelled graph", trial)
		}
		// An independent random graph: canonical codes must agree with brute force.
		h := Random(n, 0.4, int64(trial+1000))
		lc := RandomLabels(h, alphabet, int64(trial*5+2))
		if got, want := Isomorphic(la, lc), BruteForceIsomorphic(la, lc); got != want {
			t.Fatalf("trial %d: Isomorphic=%v, brute force=%v\nA:\n%s\nB:\n%s",
				trial, got, want, FormatAdjacency(la), FormatAdjacency(lc))
		}
	}
}

func TestRootedIsomorphicAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	alphabet := []Label{"a", "b"}
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.Intn(6)
		la := RandomLabels(Random(n, 0.5, int64(trial)), alphabet, int64(trial))
		rootA := rng.Intn(n)
		perm := rng.Perm(n)
		lb := la.Relabel(perm)
		if !RootedIsomorphic(la, rootA, lb, perm[rootA]) {
			t.Fatalf("trial %d: relabelled rooted graph not isomorphic", trial)
		}
		otherRoot := rng.Intn(n)
		got := RootedIsomorphic(la, rootA, lb, otherRoot)
		want := BruteForceRootedIsomorphic(la, rootA, lb, otherRoot)
		if got != want {
			t.Fatalf("trial %d: rooted Isomorphic=%v, brute force=%v", trial, got, want)
		}
	}
}

func TestCanonicalCodeInvariantUnderRelabel_Quick(t *testing.T) {
	// Property: for any seed-derived labelled graph and permutation, the
	// canonical code is invariant.
	property := func(seed int64, permSeed int64) bool {
		n := 1 + int(abs64(seed)%8)
		l := RandomLabels(Random(n, 0.35, seed), []Label{"p", "q", "r"}, seed+1)
		perm := rand.New(rand.NewSource(permSeed)).Perm(n)
		return CanonicalCode(l) == CanonicalCode(l.Relabel(perm))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestRootedCodeInvariantUnderRelabel_Quick(t *testing.T) {
	property := func(seed int64, permSeed int64, rootPick uint8) bool {
		n := 1 + int(abs64(seed)%7)
		l := RandomLabels(Random(n, 0.35, seed), []Label{"p", "q"}, seed+2)
		root := int(rootPick) % n
		perm := rand.New(rand.NewSource(permSeed)).Perm(n)
		return RootedCanonicalCode(l, root) == RootedCanonicalCode(l.Relabel(perm), perm[root])
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func abs64(x int64) int64 {
	if x < 0 {
		if x == -1<<63 {
			return 1<<63 - 1
		}
		return -x
	}
	return x
}
