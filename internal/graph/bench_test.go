package graph

import (
	"fmt"
	"testing"
)

// Ablation benches for DESIGN.md §5: the canonical-code implementation
// (individualisation-refinement) against the brute-force oracle, and the
// refinement-only invariant against the exact code on symmetric inputs.

func benchGraphs() []*Labeled {
	return []*Labeled{
		RandomLabels(Random(8, 0.3, 1), []Label{"a", "b"}, 2),
		UniformlyLabeled(Cycle(12), "c"),
		UniformlyLabeled(Grid(3, 4), "g"),
		UniformlyLabeled(CompleteBinaryTree(3), "t"),
	}
}

func BenchmarkCanonicalCodeIR(b *testing.B) {
	gs := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CanonicalCode(gs[i%len(gs)])
	}
}

// The integer pipeline against the legacy string encoder on the same
// inputs: the ratio here is the per-key cost cut the engine's dedup cache
// sees, and the -benchmem delta is the point (the fast path should be
// allocation-free once the workspace has warmed up).
func BenchmarkCanonicalCodeFastVsLegacy(b *testing.B) {
	gs := benchGraphs()
	b.Run("legacy-string", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			RootedCanonicalCode(gs[i%len(gs)], 0)
		}
	})
	b.Run("fast-workspace", func(b *testing.B) {
		w := NewCodeWorkspace()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RootedCode(gs[i%len(gs)], 0)
		}
	})
	b.Run("fast-fresh-workspace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			NewCodeWorkspace().RootedCode(gs[i%len(gs)], 0)
		}
	})
}

// Extraction plus code computation — the engine's dedup inner loop — with
// everything routed through one extractor-owned workspace.
func BenchmarkViewCanonCode(b *testing.B) {
	hosts := map[string]*Labeled{
		"cycle10000": UniformlyLabeled(Cycle(10000), "c"),
		"grid20x20":  UniformlyLabeled(Grid(20, 20), "g"),
	}
	for name, l := range hosts {
		b.Run(name, func(b *testing.B) {
			x := NewViewExtractor(l)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x.At((i*37)%l.N(), 2).CanonCode()
			}
		})
	}
}

func BenchmarkIsomorphismViaCodes(b *testing.B) {
	gs := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Isomorphic(gs[i%len(gs)], gs[(i+1)%len(gs)])
	}
}

func BenchmarkIsomorphismBruteForce(b *testing.B) {
	// The exponential oracle on the same inputs: the reason the canonical
	// code exists.
	gs := benchGraphs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BruteForceIsomorphic(gs[i%len(gs)], gs[(i+1)%len(gs)])
	}
}

func BenchmarkRefinementInvariantLargeSymmetric(b *testing.B) {
	// A star with many identical leaves: worst case for IR branching, the
	// regime where the WL-1 fallback earns its keep.
	l := UniformlyLabeled(Star(400), "s")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RootedRefinementCode(l, 0)
	}
}

func BenchmarkViewExtraction(b *testing.B) {
	for _, t := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("radius-%d", t), func(b *testing.B) {
			l := UniformlyLabeled(Grid(20, 20), "g")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ObliviousViewOf(l, (i*37)%l.N(), t)
			}
		})
	}
}

// The one-shot helper against the batched extractor on the same access
// pattern: the extractor's scratch reuse is the engine's per-node fast path,
// and the ratio here is the per-view cost of the map-backed seed path.
func BenchmarkViewExtractorVsOneShot(b *testing.B) {
	hosts := map[string]*Labeled{
		"grid20x20":  UniformlyLabeled(Grid(20, 20), "g"),
		"cycle10000": UniformlyLabeled(Cycle(10000), "c"),
	}
	for name, l := range hosts {
		for _, t := range []int{2, 3} {
			b.Run(fmt.Sprintf("%s/radius-%d/oneshot", name, t), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ObliviousViewOf(l, (i*37)%l.N(), t)
				}
			})
			b.Run(fmt.Sprintf("%s/radius-%d/extractor", name, t), func(b *testing.B) {
				x := NewViewExtractor(l)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					x.At((i*37)%l.N(), t)
				}
			})
		}
	}
}

func BenchmarkBallExtraction(b *testing.B) {
	g := Grid(30, 30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Ball((i*101)%g.N(), 3)
	}
}
