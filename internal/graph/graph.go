// Package graph provides the graph substrate for the LOCAL-model decision
// framework: simple undirected graphs, labelled graphs, identifier-carrying
// instances, radius-t views, canonical forms of views modulo identifiers, and
// generators for the graph families used throughout the paper (paths, cycles,
// grids, layered trees are built on top in package tree).
//
// Nodes are dense integer indices 0..n-1. Labels are opaque strings; packages
// that need structured labels (coordinates, Turing-machine cells) provide
// their own encode/decode functions on top.
//
// Graphs are stored in compressed sparse row (CSR) form: one flat offsets
// array and one flat neighbors array holding every adjacency list
// back-to-back, each list sorted ascending. The representation is canonical —
// two structurally equal graphs have identical arrays — and cache-linear:
// BFS and view extraction walk contiguous int32 ranges instead of chasing
// per-node slice headers. Bulk construction goes through Builder, which
// freezes an edge list in O(n+m); AddEdge/AddNode remain as compatibility
// mutators for small post-hoc edits (tests corrupting instances) but rebuild
// the flat arrays per call and must not be used on hot paths.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on nodes 0..n-1 in CSR form.
//
// The zero value is the empty graph. Node indices and offsets are int32: the
// representation supports up to 2^31-1 nodes and 2^30 undirected edges, far
// above the 10^6-node production target, at half the memory of int on 64-bit.
// Adjacency rows are kept sorted so that two structurally equal graphs
// compare equal field-wise.
//
// A graph has two representations. The static (default) form is pure CSR:
// two flat arrays, canonical and cache-linear. The dynamic form — entered by
// BeginUpdates or the first ApplyUpdate — keeps one mutable sorted row per
// node, so a sustained edge-update stream costs O(deg) per update instead of
// the O(n+m) full-array shift the compatibility mutators pay. Every accessor
// (Neighbors, Degree, HasEdge, Equal, traversals, view extraction) works on
// both forms; Compact returns to flat CSR.
type Graph struct {
	// offsets has length n+1 (nil for the zero-value empty graph); node v's
	// neighbours are neighbors[offsets[v]:offsets[v+1]], sorted ascending.
	// In dynamic mode only the length of offsets is meaningful (it carries
	// the node count); the adjacency lives in rows.
	offsets   []int32
	neighbors []int32
	// m is the cached undirected edge count (= len(neighbors)/2), so M() is
	// O(1) instead of the legacy sum over all adjacency lengths.
	m int
	// rows, when non-nil, is the dynamic-mode adjacency: one sorted slice
	// per node. Initially every row aliases one shared copy of the flat
	// neighbour array (three-index sliced so a growing row reallocates out
	// instead of clobbering its successor); rows mutate independently.
	rows [][]int32
	// gen counts structural mutations (AddNode, AddEdge, ApplyUpdate). It
	// backs Generation: scratch holders (ViewExtractor) capture it at bind
	// time so stale use after a mutation is a detected error, not silent
	// corruption.
	gen uint64
}

// New returns an empty graph on n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	checkInt32Range(n)
	return &Graph{offsets: make([]int32, n+1)}
}

// N returns the number of nodes.
func (g *Graph) N() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// M returns the number of edges in O(1).
func (g *Graph) M() int { return g.m }

// row returns node v's sorted neighbour range (unchecked).
func (g *Graph) row(v int) []int32 {
	if g.rows != nil {
		return g.rows[v]
	}
	return g.neighbors[g.offsets[v]:g.offsets[v+1]]
}

// Generation returns the graph's structural mutation counter: it increments
// on every AddNode and on every AddEdge/ApplyUpdate that changes the edge
// set. Slices returned by Neighbors and scratch bound to the graph (a
// ViewExtractor's arenas) are only valid for the generation they were
// obtained at; the extractor checks this and panics on stale use instead of
// silently reading torn adjacency.
func (g *Graph) Generation() uint64 { return g.gen }

// Dynamic reports whether the graph is in dynamic (mutable-rows) mode.
func (g *Graph) Dynamic() bool { return g.rows != nil }

// AddNode appends a new isolated node and returns its index.
//
// This is a compatibility mutator; bulk construction should use Builder.
func (g *Graph) AddNode() int {
	if len(g.offsets) == 0 {
		g.offsets = []int32{0}
	}
	checkInt32Range(len(g.offsets))
	g.gen++
	if g.rows != nil {
		g.offsets = append(g.offsets, 0) // dynamic mode: length-only
		g.rows = append(g.rows, nil)
		return len(g.offsets) - 2
	}
	g.offsets = append(g.offsets, g.offsets[len(g.offsets)-1])
	return len(g.offsets) - 2
}

// BeginUpdates switches the graph to dynamic mode: the flat CSR adjacency is
// copied once (O(n+m)) into one mutable sorted row per node, after which
// ApplyUpdate inserts or deletes an edge in O(deg) instead of the O(n+m)
// full-array shift AddEdge pays. Structure is unchanged, so outstanding
// Neighbors slices stay valid and the generation does not advance. A no-op
// when already dynamic.
func (g *Graph) BeginUpdates() {
	if g.rows != nil {
		return
	}
	n := g.N()
	rows := make([][]int32, n)
	buf := append([]int32(nil), g.neighbors...)
	for v := 0; v < n; v++ {
		// Three-index slice: a row's capacity ends where the next row
		// starts, so an insert into a full row reallocates that row out of
		// the shared buffer instead of overwriting its successor.
		rows[v] = buf[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
	}
	g.rows = rows
	g.neighbors = nil
}

// ApplyUpdate applies one dynamic edge update: add inserts the undirected
// edge {u, v}, !add removes it. It reports whether the edge set changed
// (inserting a present edge and removing an absent one are no-ops). The
// first call switches the graph to dynamic mode (one O(n+m) conversion);
// every call after that costs O(deg(u) + deg(v)). Self-loops panic, matching
// AddEdge. This is the delta path behind engine.Incremental's sustained
// update streams.
func (g *Graph) ApplyUpdate(u, v int, add bool) bool {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if g.rows == nil {
		g.BeginUpdates()
	}
	var changed bool
	if add {
		changed = g.insertHalf(u, v)
		if changed {
			g.insertHalf(v, u)
			g.m++
		}
	} else {
		changed = g.removeHalf(u, v)
		if changed {
			g.removeHalf(v, u)
			g.m--
		}
	}
	if changed {
		g.gen++
	}
	return changed
}

// insertHalf inserts v into u's sorted row; reports false if already present.
func (g *Graph) insertHalf(u, v int) bool {
	row := g.rows[u]
	i := searchInt32(row, int32(v))
	if i < len(row) && row[i] == int32(v) {
		return false
	}
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = int32(v)
	g.rows[u] = row
	return true
}

// removeHalf removes v from u's sorted row; reports false if absent.
func (g *Graph) removeHalf(u, v int) bool {
	row := g.rows[u]
	i := searchInt32(row, int32(v))
	if i >= len(row) || row[i] != int32(v) {
		return false
	}
	copy(row[i:], row[i+1:])
	g.rows[u] = row[:len(row)-1]
	return true
}

// Compact rebuilds the flat CSR arrays from the dynamic rows and leaves
// dynamic mode. Structure is unchanged (generation does not advance); a
// no-op on static graphs.
func (g *Graph) Compact() {
	if g.rows == nil {
		return
	}
	offsets, neighbors := g.flatten()
	g.offsets, g.neighbors, g.rows = offsets, neighbors, nil
}

// flatten materialises the dynamic rows as fresh flat CSR arrays.
func (g *Graph) flatten() (offsets, neighbors []int32) {
	n := g.N()
	offsets = make([]int32, n+1)
	total := int32(0)
	for v := 0; v < n; v++ {
		offsets[v] = total
		total += int32(len(g.rows[v]))
	}
	offsets[n] = total
	neighbors = make([]int32, total)
	for v := 0; v < n; v++ {
		copy(neighbors[offsets[v]:offsets[v+1]], g.rows[v])
	}
	return offsets, neighbors
}

// ensureStatic compacts a dynamic-mode graph so callers that read the flat
// CSR arrays directly (canonical-code pipeline, RawCode) see a consistent
// view. Free (one nil check) on static graphs — which views, the only graphs
// those paths ever receive on hot paths, always are.
func (g *Graph) ensureStatic() {
	if g.rows != nil {
		g.Compact()
	}
}

// AddEdge inserts the undirected edge {u, v}. It is idempotent: inserting an
// existing edge is a no-op. Self-loops are rejected because the paper's model
// uses simple graphs.
//
// This is a compatibility mutator for small post-hoc edits: each call shifts
// the flat neighbour array (O(n+m)) and invalidates slices previously
// returned by Neighbors. Bulk construction should use Builder, which freezes
// an entire edge list in O(n+m) total.
func (g *Graph) AddEdge(u, v int) {
	if g.rows != nil {
		g.ApplyUpdate(u, v, true)
		return
	}
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if g.HasEdge(u, v) {
		return
	}
	g.gen++
	lo, hi := u, v
	if lo > hi {
		lo, hi = hi, lo
	}
	// Insertion points inside the flat array: hi goes into lo's row, lo into
	// hi's row; insLo < insHi because lo's row precedes hi's row.
	insLo := int(g.offsets[lo]) + searchInt32(g.row(lo), int32(hi))
	insHi := int(g.offsets[hi]) + searchInt32(g.row(hi), int32(lo))
	out := make([]int32, len(g.neighbors)+2)
	copy(out, g.neighbors[:insLo])
	out[insLo] = int32(hi)
	copy(out[insLo+1:], g.neighbors[insLo:insHi])
	out[insHi+1] = int32(lo)
	copy(out[insHi+2:], g.neighbors[insHi:])
	g.neighbors = out
	for w := lo + 1; w <= hi; w++ {
		g.offsets[w]++
	}
	for w := hi + 1; w < len(g.offsets); w++ {
		g.offsets[w] += 2
	}
	g.m++
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	// Search the smaller row.
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	row := g.row(u)
	i := searchInt32(row, int32(v))
	return i < len(row) && row[i] == int32(v)
}

// Neighbors returns the sorted adjacency list of v as a subslice of the flat
// CSR neighbour array. The returned slice is owned by the graph and must not
// be modified; it is invalidated by the compatibility mutators.
func (g *Graph) Neighbors(v int) []int32 {
	g.check(v)
	return g.row(v)
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	if g.rows != nil {
		return len(g.rows[v])
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v, n := 0, g.N(); v < n; v++ {
		if d := len(g.row(v)); d > max {
			max = d
		}
	}
	return max
}

// Edges returns all edges as ordered pairs (u, v) with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.m)
	for u, n := 0, g.N(); u < n; u++ {
		for _, v := range g.row(u) {
			if int32(u) < v {
				edges = append(edges, [2]int{u, int(v)})
			}
		}
	}
	return edges
}

// Clone returns a deep copy. The clone is always in static (flat CSR) form,
// even when g is dynamic, and starts at generation zero with no outstanding
// scratch bound to it.
func (g *Graph) Clone() *Graph {
	h := &Graph{m: g.m}
	if g.rows != nil {
		h.offsets, h.neighbors = g.flatten()
		return h
	}
	if g.offsets != nil {
		h.offsets = append([]int32(nil), g.offsets...)
	}
	if g.neighbors != nil {
		h.neighbors = append([]int32(nil), g.neighbors...)
	}
	return h
}

// Equal reports whether g and h are identical as indexed graphs (same node
// count and same edge set; this is equality, not isomorphism). Rows are kept
// sorted in both representations, so this is a row-wise comparison — two flat
// array comparisons when both graphs are static.
func (g *Graph) Equal(h *Graph) bool {
	n := g.N()
	if n != h.N() || g.m != h.m {
		return false
	}
	if g.rows == nil && h.rows == nil {
		// offsets[0] is always 0, so starting at 1 also keeps a zero-value
		// (nil-offsets) empty graph comparable against New(0).
		for v := 1; v <= n; v++ {
			if g.offsets[v] != h.offsets[v] {
				return false
			}
		}
		for i, u := range g.neighbors {
			if h.neighbors[i] != u {
				return false
			}
		}
		return true
	}
	for v := 0; v < n; v++ {
		gr, hr := g.row(v), h.row(v)
		if len(gr) != len(hr) {
			return false
		}
		for i, u := range gr {
			if hr[i] != u {
				return false
			}
		}
	}
	return true
}

// InducedSubgraph returns the subgraph induced on the given nodes together
// with the mapping from new indices to original node indices. The order of
// nodes determines the new indexing; duplicate nodes are rejected.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	index := make(map[int]int32, len(nodes))
	for i, v := range nodes {
		g.check(v)
		if _, dup := index[v]; dup {
			panic(fmt.Sprintf("graph: duplicate node %d in induced subgraph", v))
		}
		index[v] = int32(i)
	}
	b := NewBuilder(len(nodes))
	for i, v := range nodes {
		for _, u := range g.row(v) {
			if j, ok := index[int(u)]; ok && int32(i) < j {
				b.AddEdge(i, int(j))
			}
		}
	}
	original := append([]int(nil), nodes...)
	return b.Build(), original
}

// Relabel returns a copy of g with node v renamed to perm[v]. perm must be a
// permutation of 0..n-1.
func (g *Graph) Relabel(perm []int) *Graph {
	n := g.N()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: permutation length %d != n %d", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic("graph: invalid permutation")
		}
		seen[p] = true
	}
	b := NewBuilderHint(n, g.m)
	for u := 0; u < n; u++ {
		for _, v := range g.row(u) {
			if int32(u) < v {
				b.AddEdge(perm[u], perm[int(v)])
			}
		}
	}
	return b.Build()
}

// String renders a compact description, e.g. "Graph(n=4, m=3)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.N(), g.M())
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.N() {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, g.N()))
	}
}

// searchInt32 is sort.SearchInts over an int32 slice.
func searchInt32(s []int32, v int32) int {
	return sort.Search(len(s), func(i int) bool { return s[i] >= v })
}

func checkInt32Range(n int) {
	if int64(n) > int64(1<<31-2) {
		panic(fmt.Sprintf("graph: node count %d exceeds int32 representation", n))
	}
}
