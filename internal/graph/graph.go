// Package graph provides the graph substrate for the LOCAL-model decision
// framework: simple undirected graphs, labelled graphs, identifier-carrying
// instances, radius-t views, canonical forms of views modulo identifiers, and
// generators for the graph families used throughout the paper (paths, cycles,
// grids, layered trees are built on top in package tree).
//
// Nodes are dense integer indices 0..n-1. Labels are opaque strings; packages
// that need structured labels (coordinates, Turing-machine cells) provide
// their own encode/decode functions on top.
package graph

import (
	"fmt"
	"sort"
)

// Graph is a simple undirected graph on nodes 0..n-1.
//
// The zero value is the empty graph. Adjacency lists are kept sorted so that
// two structurally equal graphs compare equal field-wise.
type Graph struct {
	adj [][]int
}

// New returns an empty graph on n isolated nodes.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Graph{adj: make([][]int, n)}
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.adj) }

// M returns the number of edges.
func (g *Graph) M() int {
	total := 0
	for _, nbrs := range g.adj {
		total += len(nbrs)
	}
	return total / 2
}

// AddNode appends a new isolated node and returns its index.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	return len(g.adj) - 1
}

// AddEdge inserts the undirected edge {u, v}. It is idempotent: inserting an
// existing edge is a no-op. Self-loops are rejected because the paper's model
// uses simple graphs.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	if g.HasEdge(u, v) {
		return
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
}

// HasEdge reports whether the undirected edge {u, v} is present.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	nbrs := g.adj[u]
	i := sort.SearchInts(nbrs, v)
	return i < len(nbrs) && nbrs[i] == v
}

// Neighbors returns the sorted adjacency list of v. The returned slice is
// owned by the graph and must not be modified.
func (g *Graph) Neighbors(v int) []int {
	g.check(v)
	return g.adj[v]
}

// Degree returns the degree of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return len(g.adj[v])
}

// MaxDegree returns the maximum degree, or 0 for the empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for _, nbrs := range g.adj {
		if len(nbrs) > max {
			max = len(nbrs)
		}
	}
	return max
}

// Edges returns all edges as ordered pairs (u, v) with u < v, sorted.
func (g *Graph) Edges() [][2]int {
	edges := make([][2]int, 0, g.M())
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				edges = append(edges, [2]int{u, v})
			}
		}
	}
	return edges
}

// Clone returns a deep copy.
func (g *Graph) Clone() *Graph {
	adj := make([][]int, len(g.adj))
	for i, nbrs := range g.adj {
		adj[i] = append([]int(nil), nbrs...)
	}
	return &Graph{adj: adj}
}

// Equal reports whether g and h are identical as indexed graphs (same node
// count and same edge set; this is equality, not isomorphism).
func (g *Graph) Equal(h *Graph) bool {
	if g.N() != h.N() {
		return false
	}
	for v, nbrs := range g.adj {
		other := h.adj[v]
		if len(nbrs) != len(other) {
			return false
		}
		for i, u := range nbrs {
			if other[i] != u {
				return false
			}
		}
	}
	return true
}

// InducedSubgraph returns the subgraph induced on the given nodes together
// with the mapping from new indices to original node indices. The order of
// nodes determines the new indexing; duplicate nodes are rejected.
func (g *Graph) InducedSubgraph(nodes []int) (*Graph, []int) {
	index := make(map[int]int, len(nodes))
	for i, v := range nodes {
		g.check(v)
		if _, dup := index[v]; dup {
			panic(fmt.Sprintf("graph: duplicate node %d in induced subgraph", v))
		}
		index[v] = i
	}
	sub := New(len(nodes))
	for i, v := range nodes {
		for _, u := range g.adj[v] {
			if j, ok := index[u]; ok && i < j {
				sub.AddEdge(i, j)
			}
		}
	}
	original := append([]int(nil), nodes...)
	return sub, original
}

// Relabel returns a copy of g with node v renamed to perm[v]. perm must be a
// permutation of 0..n-1.
func (g *Graph) Relabel(perm []int) *Graph {
	n := g.N()
	if len(perm) != n {
		panic(fmt.Sprintf("graph: permutation length %d != n %d", len(perm), n))
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			panic("graph: invalid permutation")
		}
		seen[p] = true
	}
	h := New(n)
	for u, nbrs := range g.adj {
		for _, v := range nbrs {
			if u < v {
				h.AddEdge(perm[u], perm[v])
			}
		}
	}
	return h
}

// String renders a compact description, e.g. "Graph(n=4, m=3)".
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.N(), g.M())
}

func (g *Graph) check(v int) {
	if v < 0 || v >= len(g.adj) {
		panic(fmt.Sprintf("graph: node %d out of range [0,%d)", v, len(g.adj)))
	}
}

func insertSorted(s []int, v int) []int {
	i := sort.SearchInts(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
