package graph

import (
	"sort"
	"testing"
	"testing/quick"
)

// partitionHosts builds the randomized host suite for one seed: a connected
// random graph, a cycle, a grid, and a sparse disconnected forest-ish host
// (Random with p=0 is a tree; we take two disjoint pieces via a relabel-free
// union is overkill — a path with an isolated tail suffices).
func partitionHosts(seed int64) []*Graph {
	n := 8 + int((seed%23+23)%23)
	return []*Graph{
		Random(n, 0.2, seed),
		Cycle(3 + n),
		Grid(3, 2+n/3),
		Path(n), // bridges make boundaries thin
	}
}

func TestPartitionCoversNodes(t *testing.T) {
	property := func(seed int64) bool {
		for _, g := range partitionHosts(seed) {
			for _, strat := range []PartitionStrategy{PartitionBFSBlocked, PartitionLevelContiguous} {
				for _, p := range []int{1, 2, 3, 5, 100} {
					pt := NewPartition(g, p, strat)
					seen := make([]int, g.N())
					for s := 0; s < pt.Shards(); s++ {
						if len(pt.Owned(s)) == 0 {
							t.Logf("%v p=%d: empty shard %d", strat, p, s)
							return false
						}
						for _, v := range pt.Owned(s) {
							seen[v]++
							if pt.ShardOf(int(v)) != s {
								t.Logf("%v p=%d: ShardOf(%d) != %d", strat, p, v, s)
								return false
							}
						}
					}
					for v, c := range seen {
						if c != 1 {
							t.Logf("%v p=%d: node %d owned %d times", strat, p, v, c)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPartitionSubCSRUnionIsHost(t *testing.T) {
	property := func(seed int64) bool {
		for _, g := range partitionHosts(seed) {
			pt := NewPartition(g, 4, PartitionBFSBlocked)
			// Collect every (owner-row node, neighbour) arc from the sub-CSRs.
			type arc struct{ v, u int32 }
			var got []arc
			for s := 0; s < pt.Shards(); s++ {
				offsets, nbrs := pt.SubCSR(s)
				own := pt.Owned(s)
				if int(offsets[len(offsets)-1]) != len(nbrs) {
					t.Log("sub-CSR offsets do not close over neighbors")
					return false
				}
				for i, v := range own {
					for _, u := range nbrs[offsets[i]:offsets[i+1]] {
						got = append(got, arc{v, u})
					}
				}
			}
			var want []arc
			for v := 0; v < g.N(); v++ {
				for _, u := range g.Neighbors(v) {
					want = append(want, arc{int32(v), u})
				}
			}
			less := func(a []arc) func(i, k int) bool {
				return func(i, k int) bool {
					if a[i].v != a[k].v {
						return a[i].v < a[k].v
					}
					return a[i].u < a[k].u
				}
			}
			sort.Slice(got, less(got))
			sort.Slice(want, less(want))
			if len(got) != len(want) {
				t.Logf("arc multiset size %d, host has %d", len(got), len(want))
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					t.Logf("arc %d: %v vs %v", i, got[i], want[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPartitionHaloFrontierBruteForce pins HaloFrontier(t) against the
// definition: for shard s, the nodes within distance t of some owned
// endpoint of a cross-shard edge, computed here by one full BFS per
// boundary node.
func TestPartitionHaloFrontierBruteForce(t *testing.T) {
	property := func(seed int64) bool {
		tr := NewTraversal()
		for _, g := range partitionHosts(seed) {
			for _, strat := range []PartitionStrategy{PartitionBFSBlocked, PartitionLevelContiguous} {
				pt := NewPartition(g, 3, strat)
				for _, radius := range []int{0, 1, 2, 4} {
					frontier := pt.HaloFrontier(radius)
					for s := 0; s < pt.Shards(); s++ {
						want := map[int32]bool{}
						for _, v := range pt.Owned(s) {
							cross := false
							for _, u := range g.Neighbors(int(v)) {
								if pt.ShardOf(int(u)) != s {
									cross = true
									break
								}
							}
							if !cross {
								continue
							}
							dist := tr.BFSFrom(g, int(v))
							for u, d := range dist {
								if d >= 0 && int(d) <= radius {
									want[int32(u)] = true
								}
							}
						}
						got := frontier[s]
						if len(got) != len(want) {
							t.Logf("%v radius=%d shard=%d: |halo|=%d want %d", strat, radius, s, len(got), len(want))
							return false
						}
						for i, v := range got {
							if !want[v] {
								t.Logf("%v radius=%d shard=%d: unexpected halo node %d", strat, radius, s, v)
								return false
							}
							if i > 0 && got[i-1] >= v {
								t.Log("halo not strictly ascending")
								return false
							}
						}
						// Depth column must match true BFS distance to the boundary.
						nodes, depth := pt.Halo(s, radius)
						for i, v := range nodes {
							best := int32(-1)
							for _, b := range pt.Boundary(s) {
								dist := tr.BFSFrom(g, int(b))
								if d := dist[v]; d >= 0 && (best < 0 || d < best) {
									best = d
								}
							}
							if depth[i] != best {
								t.Logf("shard=%d node=%d: depth %d, want %d", s, v, depth[i], best)
								return false
							}
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 6}); err != nil {
		t.Error(err)
	}
}
