package graph

import (
	"strconv"
	"testing"
)

func sequentialIDs(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func TestViewExtraction(t *testing.T) {
	l := UniformlyLabeled(Path(7), "u")
	in := NewInstance(l, sequentialIDs(7))
	v := ViewOf(in, 3, 1)
	if v.N() != 3 {
		t.Fatalf("view size = %d, want 3", v.N())
	}
	if v.Root != 0 {
		t.Fatalf("root index = %d, want 0", v.Root)
	}
	if v.RootID() != 3 {
		t.Fatalf("root id = %d, want 3", v.RootID())
	}
	if v.MaxIDInView() != 4 {
		t.Fatalf("max id in view = %d, want 4", v.MaxIDInView())
	}
	// Radius 0: just the node itself.
	v0 := ViewOf(in, 2, 0)
	if v0.N() != 1 || v0.RootID() != 2 {
		t.Fatalf("radius-0 view wrong: n=%d id=%d", v0.N(), v0.RootID())
	}
}

func TestObliviousViewIgnoresIDs(t *testing.T) {
	l := UniformlyLabeled(Cycle(8), "c")
	a := NewInstance(l, sequentialIDs(8))
	huge := make([]int, 8)
	for i := range huge {
		huge[i] = 1000 + 17*i
	}
	b := NewInstance(l, huge)
	for v := 0; v < 8; v++ {
		va := ViewOf(a, v, 2)
		vb := ViewOf(b, v, 2)
		if va.ObliviousCode() != vb.ObliviousCode() {
			t.Fatalf("oblivious code changed with IDs at node %d", v)
		}
		if va.Code() == vb.Code() {
			t.Fatalf("ID-aware code should differ at node %d", v)
		}
	}
}

func TestCycleViewsAllIdentical(t *testing.T) {
	// Every node of a uniformly labelled cycle has the same oblivious view:
	// the local indistinguishability the paper's Section 2 exploits.
	l := UniformlyLabeled(Cycle(12), "c")
	set := ObliviousViewSet(l, 3)
	if len(set) != 1 {
		t.Fatalf("C12 radius-3 distinct views = %d, want 1", len(set))
	}
	// Two cycles of different sizes share that single view when both are
	// long enough relative to the radius.
	l2 := UniformlyLabeled(Cycle(20), "c")
	set2 := ObliviousViewSet(l2, 3)
	for code := range set {
		if _, ok := set2[code]; !ok {
			t.Fatal("C12 and C20 radius-3 views should coincide")
		}
	}
}

func TestCoverageFraction(t *testing.T) {
	big := UniformlyLabeled(Cycle(30), "c")
	small := UniformlyLabeled(Cycle(10), "c")
	if f := CoverageFraction(big, []*Labeled{small}, 2); f != 1 {
		t.Errorf("cycle coverage = %v, want 1 (all views identical)", f)
	}
	// A path does NOT cover a cycle at its interior? Interior path views are
	// the same as cycle views; endpoints differ. Cycle views covered by path
	// interior views: fraction 1. Path covered by cycle: endpoints missing.
	cyc := UniformlyLabeled(Cycle(30), "c")
	path := UniformlyLabeled(Path(30), "c")
	if f := CoverageFraction(cyc, []*Labeled{path}, 2); f != 1 {
		t.Errorf("cycle-by-path coverage = %v, want 1", f)
	}
	f := CoverageFraction(path, []*Labeled{cyc}, 2)
	// 4 of 30 path nodes (two ends at distance <2 from an endpoint) have
	// views not present in a cycle.
	want := float64(30-4) / 30
	if f != want {
		t.Errorf("path-by-cycle coverage = %v, want %v", f, want)
	}
}

func TestViewCodeFoldsIDs(t *testing.T) {
	l := UniformlyLabeled(Path(3), "x")
	in := NewInstance(l, []int{5, 6, 7})
	v := ViewOf(in, 1, 1)
	// Same structure, renamed IDs: Code must change, ObliviousCode must not.
	in2 := NewInstance(l, []int{9, 6, 7})
	v2 := ViewOf(in2, 1, 1)
	if v.Code() == v2.Code() {
		t.Error("Code should see identifier 5 -> 9 change")
	}
	if v.ObliviousCode() != v2.ObliviousCode() {
		t.Error("ObliviousCode should not see identifier changes")
	}
	// Swapping the two symmetric endpoints' IDs yields an isomorphic
	// ID-labelled view: Code must be equal.
	in3 := NewInstance(l, []int{7, 6, 5})
	v3 := ViewOf(in3, 1, 1)
	if v.Code() != v3.Code() {
		t.Error("Code should be invariant under the view automorphism swapping endpoints")
	}
}

func TestInstanceValidation(t *testing.T) {
	l := UniformlyLabeled(Path(3), "x")
	for _, tc := range []struct {
		name string
		ids  []int
	}{
		{"duplicate", []int{1, 1, 2}},
		{"negative", []int{-1, 0, 2}},
		{"short", []int{0, 1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %s ids", tc.name)
				}
			}()
			NewInstance(l, tc.ids)
		})
	}
}

func TestStripIDs(t *testing.T) {
	l := UniformlyLabeled(Path(3), "x")
	in := NewInstance(l, []int{3, 1, 2})
	v := ViewOf(in, 0, 1).StripIDs()
	if v.IDs != nil {
		t.Fatal("StripIDs left IDs behind")
	}
	if v.Code() != v.ObliviousCode() {
		t.Fatal("stripped view Code should equal ObliviousCode")
	}
}

func TestAllObliviousViews(t *testing.T) {
	l := UniformlyLabeled(Star(5), "s")
	views := AllObliviousViews(l, 1)
	if len(views) != 5 {
		t.Fatalf("views = %d, want 5", len(views))
	}
	centre := views[0].ObliviousCode()
	leaf := views[1].ObliviousCode()
	if centre == leaf {
		t.Error("centre and leaf of star should have distinct views")
	}
	for i := 2; i < 5; i++ {
		if views[i].ObliviousCode() != leaf {
			t.Errorf("leaf %d view differs from leaf 1", i)
		}
	}
}

func TestLabeledHelpers(t *testing.T) {
	l := NewLabeled(Path(3), []Label{"b", "a", "c"})
	sorted := l.SortedLabels()
	if sorted[0] != "a" || sorted[1] != "b" || sorted[2] != "c" {
		t.Errorf("SortedLabels = %v", sorted)
	}
	c := l.Clone()
	c.Labels[0] = "zzz"
	if l.Labels[0] != "b" {
		t.Error("Clone shares label storage")
	}
	sub, _ := l.InducedSubgraph([]int{1, 2})
	if sub.Labels[0] != "a" || sub.Labels[1] != "c" {
		t.Errorf("induced labels = %v", sub.Labels)
	}
	if !l.Equal(l.Clone()) {
		t.Error("clone not Equal to original")
	}
	if l.Equal(UniformlyLabeled(Path(3), "b")) {
		t.Error("different labels reported Equal")
	}
}

func TestUniformAndRandomLabels(t *testing.T) {
	g := Cycle(5)
	u := UniformlyLabeled(g, "k")
	for _, lab := range u.Labels {
		if lab != "k" {
			t.Fatal("uniform labelling broken")
		}
	}
	r1 := RandomLabels(g, []Label{"0", "1"}, 3)
	r2 := RandomLabels(g, []Label{"0", "1"}, 3)
	for i := range r1.Labels {
		if r1.Labels[i] != r2.Labels[i] {
			t.Fatal("RandomLabels not deterministic for fixed seed")
		}
	}
	for _, lab := range r1.Labels {
		if _, err := strconv.Atoi(lab); err != nil {
			t.Fatalf("unexpected label %q", lab)
		}
	}
}
