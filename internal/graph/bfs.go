package graph

import "sync"

// The whole-graph analyses on *Graph are thin wrappers over a pooled
// Traversal (see traversal.go): each call borrows a scratch from a
// sync.Pool, runs the allocation-free traversal, and copies out only what
// its historical signature promises the caller owns. Hot paths that run
// many analyses should hold their own Traversal and use the scratch API
// directly; these wrappers exist so the one-shot call sites (tests,
// verifiers, small experiments) keep their familiar shape.

// traversalPool recycles Traversal scratch across the wrapper methods. A
// pooled scratch retains the largest host size it has seen, so repeated
// wrapper calls on large graphs stop re-growing arrays.
var traversalPool = sync.Pool{New: func() any { return NewTraversal() }}

// BFSFrom runs a breadth-first search from source and returns the distance
// to every node; unreachable nodes get distance -1. The returned slice is
// freshly allocated and owned by the caller (one Θ(n) allocation); use
// Traversal.BFSFrom to reuse the distance vector across calls.
func (g *Graph) BFSFrom(source int) []int {
	t := traversalPool.Get().(*Traversal)
	d32 := t.BFSFrom(g, source)
	dist := make([]int, len(d32))
	for i, d := range d32 {
		dist[i] = int(d)
	}
	traversalPool.Put(t)
	return dist
}

// Ball returns the nodes within distance t of v (the set B(v, t)), centre
// first, in BFS discovery order. The returned slice is freshly allocated
// and owned by the caller; use Traversal.Ball for the allocation-free
// variant. (This wrapper is on the engine's view-extraction comparison
// path in tests; it used to build a map of distances per call.)
func (g *Graph) Ball(v, t int) []int {
	tr := traversalPool.Get().(*Traversal)
	ball := append([]int(nil), tr.Ball(g, v, t)...)
	traversalPool.Put(tr)
	return ball
}

// IsConnected reports whether the graph is connected. The empty graph
// counts as connected. Allocation-free apart from pool traffic; see
// Traversal.IsConnected for the scratch-reusing variant.
func (g *Graph) IsConnected() bool {
	t := traversalPool.Get().(*Traversal)
	connected := t.IsConnected(g)
	traversalPool.Put(t)
	return connected
}

// ConnectedComponents returns the node sets of the connected components,
// each sorted ascending, in order of smallest member. The component slices
// are freshly allocated views into one flat backing array owned by the
// caller. Scratch-reusing callers should use Traversal.ComponentIDs, which
// returns the per-node id vector without materialising the groups: the
// groups here are rebuilt by a counting pass over the ids (ascending node
// order makes every group sorted with no per-component sort at all).
func (g *Graph) ConnectedComponents() [][]int {
	t := traversalPool.Get().(*Traversal)
	comp, count := t.ComponentIDs(g)
	if count == 0 {
		traversalPool.Put(t)
		return nil
	}
	sizes := make([]int, count)
	for _, id := range comp {
		sizes[id]++
	}
	flat := make([]int, g.N())
	components := make([][]int, count)
	off := 0
	for id, size := range sizes {
		components[id] = flat[off : off : off+size]
		off += size
	}
	for v, id := range comp {
		components[id] = append(components[id], v)
	}
	traversalPool.Put(t)
	return components
}

// Diameter returns the largest finite shortest-path distance. It returns
// -1 for a disconnected or empty graph. The n BFS passes share one pooled
// scratch (no per-source distance vector); see Traversal.Diameter.
func (g *Graph) Diameter() int {
	t := traversalPool.Get().(*Traversal)
	d := t.Diameter(g)
	traversalPool.Put(t)
	return d
}

// Distance returns the shortest-path distance between u and v, or -1 if
// they are in different components. The search stops as soon as v is
// reached; see Traversal.Distance for the scratch-reusing variant.
func (g *Graph) Distance(u, v int) int {
	t := traversalPool.Get().(*Traversal)
	d := t.Distance(g, u, v)
	traversalPool.Put(t)
	return d
}

// IsTree reports whether the graph is connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.N() > 0 && g.IsConnected() && g.M() == g.N()-1
}

// HasCycle reports whether the graph contains any cycle. Allocation-free
// apart from pool traffic; see Traversal.HasCycle.
func (g *Graph) HasCycle() bool {
	t := traversalPool.Get().(*Traversal)
	c := t.HasCycle(g)
	traversalPool.Put(t)
	return c
}
