package graph

// BFSFrom runs a breadth-first search from source and returns the distance to
// every node; unreachable nodes get distance -1. The traversal walks the flat
// CSR neighbour array directly, so each node's edge scan is one contiguous
// int32 range.
func (g *Graph) BFSFrom(source int) []int {
	g.check(source)
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.row(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, int(u))
			}
		}
	}
	return dist
}

// Ball returns the nodes within distance t of v (the set B(v, t)), sorted by
// (distance, node index). The center v is always first.
func (g *Graph) Ball(v, t int) []int {
	g.check(v)
	if t < 0 {
		panic("graph: negative radius")
	}
	dist := make(map[int]int, 16)
	dist[v] = 0
	ball := []int{v}
	frontier := []int{v}
	for d := 0; d < t && len(frontier) > 0; d++ {
		var next []int
		for _, w := range frontier {
			for _, u := range g.row(w) {
				if _, seen := dist[int(u)]; !seen {
					dist[int(u)] = d + 1
					next = append(next, int(u))
					ball = append(ball, int(u))
				}
			}
		}
		frontier = next
	}
	return ball
}

// IsConnected reports whether the graph is connected. The empty graph counts
// as connected.
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	dist := g.BFSFrom(0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// ConnectedComponents returns the node sets of the connected components, each
// sorted, in order of smallest member.
func (g *Graph) ConnectedComponents() [][]int {
	comp := make([]int, g.N())
	for i := range comp {
		comp[i] = -1
	}
	var components [][]int
	for start := 0; start < g.N(); start++ {
		if comp[start] != -1 {
			continue
		}
		id := len(components)
		comp[start] = id
		nodes := []int{start}
		queue := []int{start}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, u := range g.row(v) {
				if comp[u] == -1 {
					comp[u] = id
					nodes = append(nodes, int(u))
					queue = append(queue, int(u))
				}
			}
		}
		components = append(components, nodes)
	}
	for _, nodes := range components {
		sortInts(nodes)
	}
	return components
}

// Diameter returns the largest finite shortest-path distance. It returns -1
// for a disconnected or empty graph.
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	diameter := 0
	for v := 0; v < g.N(); v++ {
		dist := g.BFSFrom(v)
		for _, d := range dist {
			if d == -1 {
				return -1
			}
			if d > diameter {
				diameter = d
			}
		}
	}
	return diameter
}

// Distance returns the shortest-path distance between u and v, or -1 if they
// are in different components.
func (g *Graph) Distance(u, v int) int {
	return g.BFSFrom(u)[v]
}

// IsTree reports whether the graph is connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.N() > 0 && g.IsConnected() && g.M() == g.N()-1
}

// HasCycle reports whether the graph contains any cycle.
func (g *Graph) HasCycle() bool {
	visited := make([]bool, g.N())
	parent := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
	}
	for start := 0; start < g.N(); start++ {
		if visited[start] {
			continue
		}
		visited[start] = true
		stack := []int{start}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, u := range g.row(v) {
				if !visited[u] {
					visited[u] = true
					parent[u] = v
					stack = append(stack, int(u))
				} else if parent[v] != int(u) {
					return true
				}
			}
		}
	}
	return false
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func sortInt32s(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
