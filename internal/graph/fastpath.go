package graph

import (
	"bytes"
	"encoding/binary"
)

// Shape-specialised canonical-code fast paths for the dominant small
// bounded-degree view shapes: rooted paths (which include the radius-t views
// of cycle nodes — "cycle segments"), full rooted cycles, and rooted trees of
// degree at most four (the layered trees T_r and every Section 3 tree
// family). Detection is O(n) on structural isomorphism invariants only
// (node/edge counts, degrees, traversal from the root), so two isomorphic
// rooted labelled graphs always take the same path — fast or generic — and
// the codes a cache mixes are always comparable.
//
// Fast-path codes live in their own byte namespace: every code starts with
// the fastCodePrefix byte 0x00 followed by a per-shape tag. The generic
// encoder's first byte is uvarint(n) ≥ 1 for every non-empty graph and its
// empty-graph code is the single byte 0x00, so no fast-path code can collide
// with a generic code of a different (necessarily non-isomorphic) graph.
// Within a shape the encodings below are complete invariants — equal bytes
// iff label- and root-preserving isomorphic — which fastpath_test.go pins
// differentially against the generic pipeline and the legacy string canon
// over randomized families.
//
// The fast paths bypass 1-WL refinement and the individualisation search
// entirely: one traversal, closed-form orientation/ordering, one byte
// emission. They are the cache-miss path's answer to the hit side's raw-code
// layer.

const (
	// fastCodeMaxNodes bounds the inputs the fast paths consider. The AHU
	// tree encoder copies each subtree encoding into its parent, an
	// O(n·depth) byte volume that is trivial for view-sized inputs but must
	// not run on million-node hosts (RootedCode is public API); large inputs
	// take the generic search, exactly as before. 64 mirrors the engine's
	// dedup view-size cap.
	fastCodeMaxNodes = 64
	// fastCodeMaxDegree is the degree bound of the tree fast path: four
	// covers every Section 3 family (cycles, T_r, pyramids' tree skeletons,
	// G(M,r) grid rows) while keeping the per-node child frame a fixed-size
	// array with branchless sorting.
	fastCodeMaxDegree = 4
)

// fastCodePrefix opens every fast-path code; see the namespace argument in
// the file comment.
const fastCodePrefix byte = 0x00

// Per-shape tags. Distinct tags keep the three shape encoders' byte
// languages disjoint, so cross-shape collisions need no further argument
// (a path is never classified as a general tree: maxdeg ≤ 2 routes to the
// path encoder deterministically).
const (
	fastTagPath  byte = 'P'
	fastTagCycle byte = 'C'
	fastTagTree  byte = 'T'
)

// fastCode attempts a shape-specialised canonical code of the rooted
// labelled graph, appending to out. ok is false when no fast path applies —
// the caller falls back to the generic pipeline. The emitted bytes are a
// complete rooted-labelled-isomorphism invariant within the fast-path
// namespace (see the file comment for the collision argument).
func (w *CodeWorkspace) fastCode(l *Labeled, root int, out []byte) ([]byte, bool) {
	n := l.N()
	if n == 0 || n > fastCodeMaxNodes {
		return out, false
	}
	m := l.G.M()
	switch {
	case m == n-1:
		// Candidate tree. Degree bounds and connectivity (an (n-1)-edge
		// graph is a tree iff connected) are verified during traversal.
		if maxDegreeAtMost(l.G, 2) {
			return w.pathCode(l, root, out)
		}
		if maxDegreeAtMost(l.G, fastCodeMaxDegree) {
			return w.treeCode(l, root, out)
		}
	case m == n && allDegreesExactly(l.G, 2):
		// Candidate single cycle (n edges, 2-regular ⇒ disjoint cycles);
		// the walk verifies there is exactly one.
		return w.cycleCode(l, root, out)
	}
	return out, false
}

// maxDegreeAtMost reports whether every node degree is ≤ d.
func maxDegreeAtMost(g *Graph, d int) bool {
	offsets := g.offsets
	for v := 1; v < len(offsets); v++ {
		if int(offsets[v]-offsets[v-1]) > d {
			return false
		}
	}
	return true
}

// allDegreesExactly reports whether every node degree equals d.
func allDegreesExactly(g *Graph, d int) bool {
	offsets := g.offsets
	for v := 1; v < len(offsets); v++ {
		if int(offsets[v]-offsets[v-1]) != d {
			return false
		}
	}
	return true
}

// pathCode canonises a rooted path (a tree with maximum degree ≤ 2): the
// root splits the path into at most two arms, and the canonical form is the
// root label followed by the two arm label sequences in lexicographic order
// — the closed-form "arm orientation" that replaces the generic search's
// mirror-symmetry branching. Encoding: prefix, tag, uvarint(n), root label,
// then each arm as uvarint(length) + length-prefixed labels, smaller arm
// first. Equal bytes iff the rooted labelled paths are isomorphic: the iso
// class of a rooted path is exactly (root label, multiset of arm label
// sequences).
func (w *CodeWorkspace) pathCode(l *Labeled, root int, out []byte) ([]byte, bool) {
	g := l.G
	row := g.row(root)
	var armA, armB []int32 // arm node sequences, outward from the root
	w.grow(l.N())
	visited := 1
	for i, first := range row {
		buf := w.cur[:0] // stash arms in the workspace colour scratch
		if i == 1 {
			buf = w.next[:0]
		}
		arm, ok := walkArm(g, root, first, l.N(), buf)
		if !ok {
			return out, false
		}
		if i == 0 {
			armA = arm
		} else {
			armB = arm
		}
		visited += len(arm)
	}
	if visited != l.N() {
		return out, false // disconnected: not a path from the root's view
	}
	if armB == nil || lessLabelSeq(l, armB, armA) {
		armA, armB = armB, armA
	}
	out = append(out, fastCodePrefix, fastTagPath)
	out = binary.AppendUvarint(out, uint64(l.N()))
	out = appendLabel(out, l.Labels[root])
	out = appendArm(out, l, armA)
	out = appendArm(out, l, armB)
	return out, true
}

// walkArm follows the unique unexplored direction from root through first
// until a degree-1 endpoint, appending the visited sequence to seq. ok is
// false if the walk returns to the root or exceeds budget steps (a cycle
// component — the input is not a path).
func walkArm(g *Graph, root int, first int32, budget int, seq []int32) ([]int32, bool) {
	prev, cur := int32(root), first
	for {
		if cur == int32(root) || len(seq) >= budget {
			return nil, false
		}
		seq = append(seq, cur)
		row := g.row(int(cur))
		if len(row) == 1 {
			return seq, true
		}
		nxt := row[0]
		if nxt == prev {
			nxt = row[1]
		}
		prev, cur = cur, nxt
	}
}

// lessLabelSeq compares two node sequences by their label sequences:
// element-wise label order, shorter-on-a-common-prefix smaller.
func lessLabelSeq(l *Labeled, a, b []int32) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		la, lb := l.Labels[a[i]], l.Labels[b[i]]
		if la != lb {
			return la < lb
		}
	}
	return len(a) < len(b)
}

// appendArm emits one arm: uvarint(length) then the length-prefixed labels
// outward from the root.
func appendArm(out []byte, l *Labeled, arm []int32) []byte {
	out = binary.AppendUvarint(out, uint64(len(arm)))
	for _, v := range arm {
		out = appendLabel(out, l.Labels[v])
	}
	return out
}

// appendLabel emits one length-prefixed label.
func appendLabel(out []byte, lab Label) []byte {
	out = binary.AppendUvarint(out, uint64(len(lab)))
	return append(out, lab...)
}

// cycleCode canonises a rooted cycle. The automorphisms of a cycle fixing
// the root are the identity and the reflection through the root, so the
// canonical form is the root label followed by the lexicographically smaller
// of the two directed label sequences around the cycle. Equal bytes iff the
// rooted labelled cycles are isomorphic.
func (w *CodeWorkspace) cycleCode(l *Labeled, root int, out []byte) ([]byte, bool) {
	g := l.G
	n := l.N()
	w.grow(n)
	row := g.row(root)
	seqA, okA := walkCycle(g, root, row[0], n, w.cur[:0])
	if !okA {
		return out, false // 2-regular but more than one cycle component
	}
	seqB, _ := walkCycle(g, root, row[1], n, w.next[:0])
	if lessLabelSeq(l, seqB, seqA) {
		seqA = seqB
	}
	out = append(out, fastCodePrefix, fastTagCycle)
	out = binary.AppendUvarint(out, uint64(n))
	out = appendLabel(out, l.Labels[root])
	for _, v := range seqA {
		out = appendLabel(out, l.Labels[v])
	}
	return out, true
}

// walkCycle follows the cycle from root through first and returns the n-1
// interior nodes in walk order; ok is false when the walk closes before
// covering all n nodes (the graph is a union of several cycles).
func walkCycle(g *Graph, root int, first int32, n int, seq []int32) ([]int32, bool) {
	prev, cur := int32(root), first
	for cur != int32(root) {
		if len(seq) >= n {
			return nil, false
		}
		seq = append(seq, cur)
		row := g.row(int(cur))
		nxt := row[0]
		if nxt == prev {
			nxt = row[1]
		}
		prev, cur = cur, nxt
	}
	return seq, len(seq) == n-1
}

// treeCode canonises a rooted tree of degree ≤ 4 AHU-style: each node's
// encoding is its length-prefixed label, its child count, and its children's
// encodings in ascending byte order — computed bottom-up in one DFS, no
// refinement, no search. The encoding is prefix-unambiguous, so equal bytes
// iff the rooted labelled trees are isomorphic (the classic AHU argument).
// ok is false when the traversal reveals the input is not a tree from the
// root (a cycle elsewhere plus a detached component can satisfy m == n-1) or
// a degree exceeds the bound.
func (w *CodeWorkspace) treeCode(l *Labeled, root int, out []byte) ([]byte, bool) {
	w.fpCount = 0
	w.fpScratch = w.fpScratch[:0]
	pos, length, ok := w.subtreeCode(l, int32(root), -1)
	if !ok || w.fpCount != l.N() {
		return out, false
	}
	out = append(out, fastCodePrefix, fastTagTree)
	out = binary.AppendUvarint(out, uint64(l.N()))
	return append(out, w.fpScratch[pos:pos+length]...), true
}

// subtreeCode appends the canonical encoding of the subtree rooted at v
// (entered from parent) to the workspace scratch arena, returning its range.
// The traversal budget w.fpCount aborts on revisits: if the component
// containing the root has a cycle, the parent-skipping walk would otherwise
// not terminate.
func (w *CodeWorkspace) subtreeCode(l *Labeled, v, parent int32) (pos, length int, ok bool) {
	w.fpCount++
	if w.fpCount > l.N() {
		return 0, 0, false
	}
	row := l.G.row(int(v))
	if len(row) > fastCodeMaxDegree {
		return 0, 0, false
	}
	var cpos, clen [fastCodeMaxDegree]int
	k := 0
	for _, u := range row {
		if u == parent {
			continue
		}
		cp, cl, cok := w.subtreeCode(l, u, v)
		if !cok {
			return 0, 0, false
		}
		// Insertion into ascending byte order among the ≤ 4 siblings.
		j := k
		for j > 0 && bytes.Compare(w.fpScratch[cp:cp+cl], w.fpScratch[cpos[j-1]:cpos[j-1]+clen[j-1]]) < 0 {
			cpos[j], clen[j] = cpos[j-1], clen[j-1]
			j--
		}
		cpos[j], clen[j] = cp, cl
		k++
	}
	pos = len(w.fpScratch)
	w.fpScratch = appendLabel(w.fpScratch, l.Labels[v])
	w.fpScratch = binary.AppendUvarint(w.fpScratch, uint64(k))
	for i := 0; i < k; i++ {
		w.fpScratch = append(w.fpScratch, w.fpScratch[cpos[i]:cpos[i]+clen[i]]...)
	}
	return pos, len(w.fpScratch) - pos, true
}
