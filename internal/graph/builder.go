package graph

import (
	"fmt"
	"slices"
)

// Builder accumulates an undirected edge list and freezes it into a CSR
// Graph in O(n + m) total via two stable counting-sort passes. It replaces
// the legacy per-edge sorted insertion (O(m·Δ) construction) on every bulk
// construction path: generators, layered trees, pyramids, Turing-table
// assemblies and the engine's message-passing view graphs.
//
// Contract:
//   - AddEdge(u, v) records the edge; both endpoints must already exist
//     (AddNode grows the node set). Self-loops panic, matching the legacy
//     mutator. Duplicate and reversed pairs are welcome — Build dedups.
//   - Build freezes the accumulated edges into a new Graph with sorted,
//     deduplicated rows. The builder remains usable afterwards (further
//     AddEdge calls followed by another Build produce a graph with the
//     union of all edges recorded so far).
//
// Node indices must fit int32 (checked); a Builder is not safe for
// concurrent use.
type Builder struct {
	n        int
	from, to []int32
}

// NewBuilder returns a builder for a graph on n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	checkInt32Range(n)
	return &Builder{n: n}
}

// NewBuilderHint is NewBuilder with the edge buffers pre-sized for mHint
// edges, avoiding append regrowth when the final edge count is known.
func NewBuilderHint(n, mHint int) *Builder {
	b := NewBuilder(n)
	if mHint > 0 {
		b.from = make([]int32, 0, mHint)
		b.to = make([]int32, 0, mHint)
	}
	return b
}

// N returns the current node count.
func (b *Builder) N() int { return b.n }

// AddNode appends a new isolated node and returns its index.
func (b *Builder) AddNode() int {
	checkInt32Range(b.n + 1)
	b.n++
	return b.n - 1
}

// AddEdge records the undirected edge {u, v}. Duplicates are removed by
// Build; self-loops and out-of-range endpoints panic.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at node %d", u))
	}
	b.from = append(b.from, int32(u))
	b.to = append(b.to, int32(v))
}

// AddGraphAt records every edge of g with node indices shifted by offset —
// the bulk idiom for assembling disjoint components (pyramids over table
// fragments, etc.) into one instance.
func (b *Builder) AddGraphAt(g *Graph, offset int) {
	if offset < 0 || offset+g.N() > b.n {
		panic(fmt.Sprintf("graph: component [%d,%d) out of range [0,%d)", offset, offset+g.N(), b.n))
	}
	for u, n := 0, g.N(); u < n; u++ {
		for _, v := range g.row(u) {
			if int32(u) < v {
				b.from = append(b.from, int32(u+offset))
				b.to = append(b.to, v+int32(offset))
			}
		}
	}
}

// Build freezes the recorded edges into a CSR graph in three passes over the
// half-edges: a counting pass sizes every row, a single scatter pass drops
// each half-edge into its source's row, and a compaction pass sorts rows
// that need it (generator edge streams arrive in row order, so the
// ascending-row fast path usually skips the sort) and squeezes out adjacent
// duplicates in place. Total work is O(n + m) plus O(Δ log Δ) for each row
// that arrives unsorted; memory beyond the result is two n-sized counting
// arrays.
func (b *Builder) Build() *Graph {
	n := b.n
	// The half-edge total must fit the int32 offsets (2^31-2 half-edges,
	// i.e. 2^30 undirected edges); beyond that the counting accumulator
	// would wrap silently.
	if len(b.from) > (1<<31-2)/2 {
		panic(fmt.Sprintf("graph: %d recorded edges exceed the int32 CSR bound", len(b.from)))
	}
	counts := make([]int32, n)
	for _, u := range b.from {
		counts[u]++
	}
	for _, v := range b.to {
		counts[v]++
	}
	offsets := make([]int32, n+1)
	pos := make([]int32, n)
	sum := int32(0)
	for v := 0; v < n; v++ {
		offsets[v] = sum
		pos[v] = sum
		sum += counts[v]
	}
	offsets[n] = sum
	neighbors := make([]int32, sum)
	for i, u := range b.from {
		v := b.to[i]
		neighbors[pos[u]] = v
		pos[u]++
		neighbors[pos[v]] = u
		pos[v]++
	}
	// Compaction: sort each row if its half-edges arrived out of order, then
	// drop adjacent duplicates, sliding the flat array left in place (the
	// write cursor never passes the read cursor).
	w := int32(0)
	for v := 0; v < n; v++ {
		start, end := offsets[v], offsets[v+1]
		row := neighbors[start:end]
		for i := 1; i < len(row); i++ {
			if row[i-1] > row[i] {
				sortInt32Row(row)
				break
			}
		}
		offsets[v] = w
		prev := int32(-1)
		for _, u := range row {
			if u != prev {
				neighbors[w] = u
				prev = u
				w++
			}
		}
	}
	offsets[n] = w
	return &Graph{offsets: offsets, neighbors: neighbors[:w:w], m: int(w) / 2}
}

// sortInt32Row sorts one adjacency row. slices.Sort insertion-sorts the
// short rows that dominate bounded-degree instances and pdqsorts long ones,
// so the explicit small-row special case the package used to carry is gone.
func sortInt32Row(row []int32) {
	slices.Sort(row)
}

// FromEdges builds a graph on n nodes from an edge list in O(n + len(edges)).
func FromEdges(n int, edges [][2]int) *Graph {
	b := NewBuilderHint(n, len(edges))
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// BuildCSR assembles a Graph directly in CSR form for families whose
// adjacency is known in closed form (layered trees, pyramids, grids). The
// caller provides the finished offsets array (length n+1, offsets[0] = 0,
// non-decreasing: node v's row is neighbors[offsets[v]:offsets[v+1]]) and a
// callback that writes the entire neighbour array, each row strictly
// ascending. This skips the Builder's edge list entirely — no recording
// pass, no counting sort, no compaction, no per-node callback dispatch — so
// construction cost is one sequential write of the neighbour array, which
// is what lets the 10^6-node pyramid build at memory speed. BuildCSR takes
// ownership of offsets; the caller must not retain it.
//
// The result is verified before the Graph is returned: every row must be
// strictly ascending (which rules out duplicates), in range, free of
// self-loops, and the adjacency must be exactly symmetric. Verification is
// a single fused O(n+m) sweep — symmetry falls out of one mirror-cursor
// pass, not per-edge binary searches — and panics on the first violation,
// so a buggy closed form cannot silently break the package's
// canonical-representation invariant. Allocation: the neighbour array of
// the result plus one n-sized cursor array for the sweep.
func BuildCSR(offsets []int32, fill func(neighbors []int32)) *Graph {
	n := len(offsets) - 1
	if n < 0 || offsets[0] != 0 {
		panic("graph: BuildCSR offsets must have length n+1 and start at 0")
	}
	checkInt32Range(n)
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			panic(fmt.Sprintf("graph: BuildCSR offsets decrease at node %d", v))
		}
	}
	sum := offsets[n]
	neighbors := make([]int32, sum)
	fill(neighbors)
	// Fused validation sweep. Scanning nodes in ascending order, each row is
	// checked strictly ascending / in range / loop-free, and symmetry falls
	// out of the mirror cursors: the sub-diagonal prefix of each row must be
	// consumed exactly, in order, by the super-diagonal entries of earlier
	// rows.
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		vv := int32(v)
		row := neighbors[offsets[v]:offsets[v+1]]
		prev := int32(-1)
		k := int32(0)
		for _, u := range row {
			if u <= prev || u >= int32(n) {
				panic(fmt.Sprintf("graph: BuildCSR row %d not strictly ascending in range", v))
			}
			if u == vv {
				panic(fmt.Sprintf("graph: self-loop at node %d", v))
			}
			prev = u
			if u < vv {
				k++
				continue
			}
			j := offsets[u] + cursor[u]
			if j >= offsets[u+1] || neighbors[j] != vv {
				panic(fmt.Sprintf("graph: BuildCSR edge {%d,%d} has no mirror half", v, u))
			}
			cursor[u]++
		}
		if cursor[v] != k {
			panic(fmt.Sprintf("graph: BuildCSR adjacency not symmetric at node %d", v))
		}
	}
	return &Graph{offsets: offsets, neighbors: neighbors, m: int(sum) / 2}
}
