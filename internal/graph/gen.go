package graph

import (
	"fmt"
	"math/rand"
)

// Path returns the path graph on n nodes (0-1-2-...-n-1).
func Path(n int) *Graph {
	g := New(n)
	for v := 0; v+1 < n; v++ {
		g.AddEdge(v, v+1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	g := Path(n)
	g.AddEdge(n-1, 0)
	return g
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// Star returns the star graph with one centre (node 0) and n-1 leaves.
func Star(n int) *Graph {
	if n < 1 {
		panic("graph: star needs n >= 1")
	}
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v)
	}
	return g
}

// Grid returns the rows x cols grid graph. GridIndex gives the node numbering.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: invalid grid %dx%d", rows, cols))
	}
	g := New(rows * cols)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if x+1 < cols {
				g.AddEdge(GridIndex(y, x, cols), GridIndex(y, x+1, cols))
			}
			if y+1 < rows {
				g.AddEdge(GridIndex(y, x, cols), GridIndex(y+1, x, cols))
			}
		}
	}
	return g
}

// GridIndex maps (row, col) to the node index used by Grid.
func GridIndex(row, col, cols int) int { return row*cols + col }

// Torus returns the rows x cols torus (grid with wraparound), requiring both
// dimensions >= 3 to stay simple.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs dims >= 3, got %dx%d", rows, cols))
	}
	g := New(rows * cols)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			g.AddEdge(GridIndex(y, x, cols), GridIndex(y, (x+1)%cols, cols))
			g.AddEdge(GridIndex(y, x, cols), GridIndex((y+1)%rows, x, cols))
		}
	}
	return g
}

// CompleteBinaryTree returns the complete binary tree of the given depth
// (depth 0 is a single root). Node numbering is heap order: the root is 0 and
// node v has children 2v+1 and 2v+2.
func CompleteBinaryTree(depth int) *Graph {
	if depth < 0 {
		panic("graph: negative tree depth")
	}
	n := (1 << (depth + 1)) - 1
	g := New(n)
	for v := 0; 2*v+2 < n; v++ {
		g.AddEdge(v, 2*v+1)
		g.AddEdge(v, 2*v+2)
	}
	return g
}

// Random returns a connected Erdos-Renyi-style graph: a uniform spanning tree
// skeleton plus each remaining edge independently with probability p. The
// generator is deterministic given the seed.
func Random(n int, p float64, seed int64) *Graph {
	if n < 1 {
		panic("graph: random graph needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	// Random tree skeleton guarantees connectivity.
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) && rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// RandomLabels assigns each node a label drawn uniformly from alphabet,
// deterministically given the seed.
func RandomLabels(g *Graph, alphabet []Label, seed int64) *Labeled {
	if len(alphabet) == 0 {
		panic("graph: empty label alphabet")
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make([]Label, g.N())
	for v := range labels {
		labels[v] = alphabet[rng.Intn(len(alphabet))]
	}
	return NewLabeled(g, labels)
}
