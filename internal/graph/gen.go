package graph

import (
	"fmt"
	"math"
	"math/rand"
)

// Path returns the path graph on n nodes (0-1-2-...-n-1).
func Path(n int) *Graph {
	b := NewBuilderHint(n, n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Build()
}

// Cycle returns the cycle graph on n >= 3 nodes.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	b := NewBuilderHint(n, n)
	for v := 0; v+1 < n; v++ {
		b.AddEdge(v, v+1)
	}
	b.AddEdge(n-1, 0)
	return b.Build()
}

// Complete returns the complete graph on n nodes.
func Complete(n int) *Graph {
	b := NewBuilderHint(n, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// Star returns the star graph with one centre (node 0) and n-1 leaves.
func Star(n int) *Graph {
	if n < 1 {
		panic("graph: star needs n >= 1")
	}
	b := NewBuilderHint(n, n-1)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	return b.Build()
}

// Grid returns the rows x cols grid graph. GridIndex gives the node numbering.
func Grid(rows, cols int) *Graph {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("graph: invalid grid %dx%d", rows, cols))
	}
	b := NewBuilderHint(rows*cols, 2*rows*cols)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			if x+1 < cols {
				b.AddEdge(GridIndex(y, x, cols), GridIndex(y, x+1, cols))
			}
			if y+1 < rows {
				b.AddEdge(GridIndex(y, x, cols), GridIndex(y+1, x, cols))
			}
		}
	}
	return b.Build()
}

// GridIndex maps (row, col) to the node index used by Grid.
func GridIndex(row, col, cols int) int { return row*cols + col }

// Torus returns the rows x cols torus (grid with wraparound), requiring both
// dimensions >= 3 to stay simple.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs dims >= 3, got %dx%d", rows, cols))
	}
	b := NewBuilderHint(rows*cols, 2*rows*cols)
	for y := 0; y < rows; y++ {
		for x := 0; x < cols; x++ {
			b.AddEdge(GridIndex(y, x, cols), GridIndex(y, (x+1)%cols, cols))
			b.AddEdge(GridIndex(y, x, cols), GridIndex((y+1)%rows, x, cols))
		}
	}
	return b.Build()
}

// CompleteBinaryTree returns the complete binary tree of the given depth
// (depth 0 is a single root). Node numbering is heap order: the root is 0 and
// node v has children 2v+1 and 2v+2.
func CompleteBinaryTree(depth int) *Graph {
	if depth < 0 {
		panic("graph: negative tree depth")
	}
	n := (1 << (depth + 1)) - 1
	b := NewBuilderHint(n, n-1)
	for v := 0; 2*v+2 < n; v++ {
		b.AddEdge(v, 2*v+1)
		b.AddEdge(v, 2*v+2)
	}
	return b.Build()
}

// Random returns a connected Erdos-Renyi-style graph: a uniform spanning tree
// skeleton plus each remaining pair independently with probability p. The
// generator is deterministic given the seed.
//
// Non-tree pairs are drawn by geometric skip sampling over the lexicographic
// pair sequence (skip lengths ~ Geometric(p)), so generation is O(n + m)
// expected rather than the legacy O(n²) all-pairs loop. Each pair is still
// included independently with probability p — pairs that the skip lands on
// but that already carry a tree edge are simply discarded (the builder dedups
// them), which does not disturb the other pairs' marginals. Note the random
// edge stream differs from the seed generator's: the same seed yields a graph
// from the same distribution, not the identical graph.
func Random(n int, p float64, seed int64) *Graph {
	if n < 1 {
		panic("graph: random graph needs n >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	expected := n - 1
	if p > 0 {
		expected += int(p * float64(n) * float64(n-1) / 2)
	}
	b := NewBuilderHint(n, expected)
	// Random tree skeleton guarantees connectivity.
	for v := 1; v < n; v++ {
		b.AddEdge(v, rng.Intn(v))
	}
	if p > 0 {
		if p >= 1 {
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					b.AddEdge(u, v)
				}
			}
			return b.Build()
		}
		logQ := math.Log1p(-p)
		// Walk the pairs (0,1), (0,2), ..., (0,n-1), (1,2), ... advancing by
		// 1 + Geometric(p) positions per sample.
		u, v := 0, 0 // v == u means "row u, before its first pair (u, u+1)"
		for {
			skip := 1
			if r := rng.Float64(); r > 0 {
				skip += int(math.Log(r) / logQ)
			} else {
				break // log(0) would skip past every remaining pair
			}
			v += skip
			for v >= n {
				u++
				if u >= n-1 {
					return b.Build()
				}
				v = u + (v - n) + 1
			}
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// RandomLabels assigns each node a label drawn uniformly from alphabet,
// deterministically given the seed.
func RandomLabels(g *Graph, alphabet []Label, seed int64) *Labeled {
	if len(alphabet) == 0 {
		panic("graph: empty label alphabet")
	}
	rng := rand.New(rand.NewSource(seed))
	labels := make([]Label, g.N())
	for v := range labels {
		labels[v] = alphabet[rng.Intn(len(alphabet))]
	}
	return NewLabeled(g, labels)
}
