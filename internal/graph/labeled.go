package graph

import (
	"fmt"
	"sort"
	"strings"
)

// Label is the local input x(v) of a node. Labels are opaque strings;
// structured labels are encoded by their owning packages.
type Label = string

// Labeled is a labelled graph (G, x): a graph together with one label per
// node. It corresponds to the paper's notion of an input instance before
// identifiers are assigned.
type Labeled struct {
	G      *Graph
	Labels []Label
}

// NewLabeled wraps g with the given labels. The label slice length must equal
// the node count; a nil slice yields all-empty labels.
func NewLabeled(g *Graph, labels []Label) *Labeled {
	if labels == nil {
		labels = make([]Label, g.N())
	}
	if len(labels) != g.N() {
		panic(fmt.Sprintf("graph: %d labels for %d nodes", len(labels), g.N()))
	}
	return &Labeled{G: g, Labels: labels}
}

// UniformlyLabeled wraps g with the same label on every node.
func UniformlyLabeled(g *Graph, label Label) *Labeled {
	labels := make([]Label, g.N())
	for i := range labels {
		labels[i] = label
	}
	return &Labeled{G: g, Labels: labels}
}

// N returns the number of nodes.
func (l *Labeled) N() int { return l.G.N() }

// Clone returns a deep copy.
func (l *Labeled) Clone() *Labeled {
	return &Labeled{G: l.G.Clone(), Labels: append([]Label(nil), l.Labels...)}
}

// InducedSubgraph restricts the labelled graph to the given nodes, returning
// the sub-labelled-graph and the new-index -> old-index mapping.
func (l *Labeled) InducedSubgraph(nodes []int) (*Labeled, []int) {
	sub, orig := l.G.InducedSubgraph(nodes)
	labels := make([]Label, len(nodes))
	for i, v := range nodes {
		labels[i] = l.Labels[v]
	}
	return &Labeled{G: sub, Labels: labels}, orig
}

// Relabel applies a node permutation to both structure and labels.
func (l *Labeled) Relabel(perm []int) *Labeled {
	h := l.G.Relabel(perm)
	labels := make([]Label, len(l.Labels))
	for v, lab := range l.Labels {
		labels[perm[v]] = lab
	}
	return &Labeled{G: h, Labels: labels}
}

// Equal reports field-wise equality (same indexing, structure and labels).
func (l *Labeled) Equal(m *Labeled) bool {
	if !l.G.Equal(m.G) {
		return false
	}
	for i, lab := range l.Labels {
		if m.Labels[i] != lab {
			return false
		}
	}
	return true
}

// String renders a compact description including a label summary.
func (l *Labeled) String() string {
	distinct := make(map[Label]struct{}, len(l.Labels))
	for _, lab := range l.Labels {
		distinct[lab] = struct{}{}
	}
	return fmt.Sprintf("Labeled(n=%d, m=%d, labels=%d distinct)", l.N(), l.G.M(), len(distinct))
}

// Instance is an input triple (G, x, Id): a labelled graph together with a
// one-to-one identifier assignment.
type Instance struct {
	*Labeled
	IDs []int
}

// NewInstance pairs a labelled graph with identifiers. Identifiers must be
// non-negative and pairwise distinct (the assignment Id: V -> N is
// one-to-one).
func NewInstance(l *Labeled, ids []int) *Instance {
	if len(ids) != l.N() {
		panic(fmt.Sprintf("graph: %d identifiers for %d nodes", len(ids), l.N()))
	}
	seen := make(map[int]struct{}, len(ids))
	for v, id := range ids {
		if id < 0 {
			panic(fmt.Sprintf("graph: negative identifier %d at node %d", id, v))
		}
		if _, dup := seen[id]; dup {
			panic(fmt.Sprintf("graph: duplicate identifier %d", id))
		}
		seen[id] = struct{}{}
	}
	return &Instance{Labeled: l, IDs: append([]int(nil), ids...)}
}

// MaxID returns the largest identifier, or -1 for the empty instance.
func (in *Instance) MaxID() int {
	max := -1
	for _, id := range in.IDs {
		if id > max {
			max = id
		}
	}
	return max
}

// WithIDs returns a new instance over the same labelled graph with different
// identifiers.
func (in *Instance) WithIDs(ids []int) *Instance {
	return NewInstance(in.Labeled, ids)
}

// String renders a compact description.
func (in *Instance) String() string {
	return fmt.Sprintf("Instance(n=%d, m=%d, maxID=%d)", in.N(), in.G.M(), in.MaxID())
}

// FormatAdjacency renders an adjacency-list dump for debugging and CLI tools.
func FormatAdjacency(l *Labeled) string {
	var b strings.Builder
	for v := 0; v < l.N(); v++ {
		nbrs := l.G.Neighbors(v)
		parts := make([]string, len(nbrs))
		for i, u := range nbrs {
			parts[i] = fmt.Sprint(u)
		}
		fmt.Fprintf(&b, "%4d [%s] -> %s\n", v, l.Labels[v], strings.Join(parts, " "))
	}
	return b.String()
}

// SortedLabels returns the multiset of labels in sorted order (useful for
// isomorphism-invariant comparisons in tests).
func (l *Labeled) SortedLabels() []Label {
	out := append([]Label(nil), l.Labels...)
	sort.Strings(out)
	return out
}
