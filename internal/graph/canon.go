package graph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// canonInput bundles what the canonical-form search needs: structure, the
// per-node base signature (label text plus root marker, which must survive
// into the final encoding), and the current colour classes.
type canonInput struct {
	g      *Graph
	base   []string // immutable per-node signature: label + root marking
	colors []int    // current colour classes, dense 0..k-1
}

// CanonicalCode returns a string that is identical for two labelled graphs if
// and only if they are isomorphic respecting labels. It implements
// individualisation-refinement: iterated colour refinement (1-WL), and where
// the colouring is not discrete, branching over the members of the first
// non-singleton class and keeping the lexicographically smallest code.
//
// Views in this codebase are small (bounded-degree balls of small radius), so
// the worst-case exponential branching is never a concern in practice.
func CanonicalCode(l *Labeled) string {
	in := newCanonInput(l, -1)
	return canonicalCode(in)
}

// RootedCanonicalCode is CanonicalCode with a distinguished root node: two
// rooted labelled graphs get the same code iff there is a label-preserving
// isomorphism mapping root to root. This is the comparison underlying
// Id-oblivious algorithms, whose output is a function of exactly this code.
func RootedCanonicalCode(l *Labeled, root int) string {
	if root < 0 || root >= l.N() {
		panic(fmt.Sprintf("graph: root %d out of range", root))
	}
	return canonicalCode(newCanonInput(l, root))
}

func newCanonInput(l *Labeled, root int) canonInput {
	n := l.N()
	base := make([]string, n)
	for v, lab := range l.Labels {
		marker := "."
		if v == root {
			marker = "R"
		}
		base[v] = marker + "\x00" + lab
	}
	colors, _ := densify(base)
	return canonInput{g: l.G, base: base, colors: colors}
}

// refine runs colour refinement (1-dimensional Weisfeiler-Leman) until the
// colouring stabilises. It returns the refined colouring with dense classes.
func refine(g *Graph, colors []int) []int {
	n := g.N()
	cur := append([]int(nil), colors...)
	for {
		signatures := make([]string, n)
		for v := 0; v < n; v++ {
			nbrColors := make([]int, 0, g.Degree(v))
			for _, u := range g.Neighbors(v) {
				nbrColors = append(nbrColors, cur[u])
			}
			sort.Ints(nbrColors)
			var b strings.Builder
			b.WriteString(strconv.Itoa(cur[v]))
			b.WriteByte('|')
			for _, c := range nbrColors {
				b.WriteString(strconv.Itoa(c))
				b.WriteByte(',')
			}
			signatures[v] = b.String()
		}
		next, classes := densify(signatures)
		if classes == countClasses(cur) {
			return next
		}
		cur = next
	}
}

// densify maps arbitrary signature strings to dense colour indices ordered by
// signature, preserving determinism.
func densify(signatures []string) ([]int, int) {
	uniq := append([]string(nil), signatures...)
	sort.Strings(uniq)
	index := make(map[string]int, len(uniq))
	for _, s := range uniq {
		if _, ok := index[s]; !ok {
			index[s] = len(index)
		}
	}
	out := make([]int, len(signatures))
	for v, s := range signatures {
		out[v] = index[s]
	}
	return out, len(index)
}

// countClasses returns the number of colour classes. Colourings here are
// always dense (densify and the individualisation step both preserve
// density), so the count is one past the largest colour — no map needed.
func countClasses(colors []int) int {
	k := 0
	for _, c := range colors {
		if c >= k {
			k = c + 1
		}
	}
	return k
}

// canonicalCode performs the individualisation-refinement search.
func canonicalCode(in canonInput) string {
	colors := refine(in.g, in.colors)
	target := firstNonSingleton(colors)
	if target == -1 {
		return encodeByColorOrder(in.g, in.base, colors)
	}
	best := ""
	for v := range colors {
		if colors[v] != target {
			continue
		}
		branch := append([]int(nil), colors...)
		// Individualise v: give it a fresh colour class below all others so
		// the branch ordering stays deterministic.
		for u := range branch {
			branch[u]++
		}
		branch[v] = 0
		code := canonicalCode(canonInput{g: in.g, base: in.base, colors: branch})
		if best == "" || code < best {
			best = code
		}
	}
	return best
}

// firstNonSingleton returns the smallest colour with more than one member, or
// -1 if the colouring is discrete. The colouring is dense, so one counting
// slice replaces the previous map-and-sort.
func firstNonSingleton(colors []int) int {
	counts := make([]int, countClasses(colors))
	for _, c := range colors {
		counts[c]++
	}
	for c, k := range counts {
		if k > 1 {
			return c
		}
	}
	return -1
}

// encodeByColorOrder serialises the graph with nodes ordered by their (now
// discrete) colours. The code covers n, the per-node base signatures (labels
// and root marker) and the adjacency relation, so equal codes imply a
// label- and root-preserving isomorphism.
func encodeByColorOrder(g *Graph, base []string, colors []int) string {
	n := g.N()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return colors[order[i]] < colors[order[j]] })
	pos := make([]int, n)
	for p, v := range order {
		pos[v] = p
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d;", n)
	for _, v := range order {
		b.WriteString(strconv.Quote(base[v]))
		b.WriteByte(';')
	}
	for _, v := range order {
		nbrs := make([]int, 0, g.Degree(v))
		for _, u := range g.Neighbors(v) {
			nbrs = append(nbrs, pos[u])
		}
		sort.Ints(nbrs)
		fmt.Fprintf(&b, "e%v;", nbrs)
	}
	return b.String()
}

// RootedRefinementCode returns an isomorphism-invariant (but possibly
// incomplete) code based on colour refinement alone: isomorphic rooted
// labelled graphs always receive equal codes; distinct codes certify
// non-isomorphism. It avoids the individualisation search, so it stays
// cheap on large graphs with many mutually symmetric parts (such as the
// pivot neighbourhoods of the Section 3 construction, where thousands of
// glued fragments would make the exact search explode).
func RootedRefinementCode(l *Labeled, root int) string {
	in := newCanonInput(l, root)
	colors := refine(in.g, in.colors)
	// Class summary: per colour, its population and base signature (constant
	// within a class because refinement only splits the initial colouring).
	type classInfo struct {
		count int
		base  string
	}
	classes := make(map[int]*classInfo)
	for v, c := range colors {
		info := classes[c]
		if info == nil {
			info = &classInfo{base: in.base[v]}
			classes[c] = info
		}
		info.count++
	}
	// Edge profile: counts of unordered colour pairs.
	edgePairs := make(map[[2]int]int)
	for u := 0; u < in.g.N(); u++ {
		for _, v := range in.g.Neighbors(u) {
			if int32(u) < v {
				a, b := colors[u], colors[v]
				if a > b {
					a, b = b, a
				}
				edgePairs[[2]int{a, b}]++
			}
		}
	}
	classKeys := make([]int, 0, len(classes))
	for c := range classes {
		classKeys = append(classKeys, c)
	}
	sort.Ints(classKeys)
	var b strings.Builder
	fmt.Fprintf(&b, "wl1:n=%d;", in.g.N())
	for _, c := range classKeys {
		fmt.Fprintf(&b, "c%d:%d:%s;", c, classes[c].count, strconv.Quote(classes[c].base))
	}
	pairKeys := make([][2]int, 0, len(edgePairs))
	for pk := range edgePairs {
		pairKeys = append(pairKeys, pk)
	}
	sort.Slice(pairKeys, func(i, j int) bool {
		if pairKeys[i][0] != pairKeys[j][0] {
			return pairKeys[i][0] < pairKeys[j][0]
		}
		return pairKeys[i][1] < pairKeys[j][1]
	})
	for _, pk := range pairKeys {
		fmt.Fprintf(&b, "e%d-%d:%d;", pk[0], pk[1], edgePairs[pk])
	}
	return b.String()
}

// Isomorphic reports whether two labelled graphs are isomorphic respecting
// labels, via canonical codes (the integer pipeline; see code.go).
func Isomorphic(a, b *Labeled) bool {
	if a.N() != b.N() || a.G.M() != b.G.M() {
		return false
	}
	w := NewCodeWorkspace()
	ca := w.GraphCode(a).Clone()
	return ca.Equal(w.GraphCode(b))
}

// RootedIsomorphic reports whether two rooted labelled graphs are isomorphic
// by a root- and label-preserving map.
func RootedIsomorphic(a *Labeled, rootA int, b *Labeled, rootB int) bool {
	if a.N() != b.N() || a.G.M() != b.G.M() {
		return false
	}
	w := NewCodeWorkspace()
	ca := w.RootedCode(a, rootA).Clone()
	return ca.Equal(w.RootedCode(b, rootB))
}
