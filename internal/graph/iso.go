package graph

// BruteForceIsomorphic is a backtracking label-preserving isomorphism test.
// It is exponential and intended only as a test oracle for the canonical-code
// implementation on small graphs.
func BruteForceIsomorphic(a, b *Labeled) bool {
	return bruteForce(a, b, -1, -1)
}

// BruteForceRootedIsomorphic is the rooted variant of BruteForceIsomorphic.
func BruteForceRootedIsomorphic(a *Labeled, rootA int, b *Labeled, rootB int) bool {
	return bruteForce(a, b, rootA, rootB)
}

func bruteForce(a, b *Labeled, rootA, rootB int) bool {
	n := a.N()
	if n != b.N() || a.G.M() != b.G.M() {
		return false
	}
	if (rootA == -1) != (rootB == -1) {
		panic("graph: mixed rooted/unrooted brute-force comparison")
	}
	mapping := make([]int, n)
	used := make([]bool, n)
	for i := range mapping {
		mapping[i] = -1
	}
	if rootA != -1 {
		if a.Labels[rootA] != b.Labels[rootB] || a.G.Degree(rootA) != b.G.Degree(rootB) {
			return false
		}
		mapping[rootA] = rootB
		used[rootB] = true
	}
	return extendMapping(a, b, mapping, used, 0)
}

// extendMapping assigns images to nodes v = next, next+1, ... in order,
// checking label equality and edge consistency against already-mapped nodes.
func extendMapping(a, b *Labeled, mapping []int, used []bool, next int) bool {
	n := a.N()
	for next < n && mapping[next] != -1 {
		next++
	}
	if next == n {
		return true
	}
	for img := 0; img < n; img++ {
		if used[img] ||
			a.Labels[next] != b.Labels[img] ||
			a.G.Degree(next) != b.G.Degree(img) {
			continue
		}
		ok := true
		for u := 0; u < n && ok; u++ {
			if mapping[u] == -1 {
				continue
			}
			if a.G.HasEdge(next, u) != b.G.HasEdge(img, mapping[u]) {
				ok = false
			}
		}
		if !ok {
			continue
		}
		mapping[next] = img
		used[img] = true
		if extendMapping(a, b, mapping, used, next+1) {
			return true
		}
		mapping[next] = -1
		used[img] = false
	}
	return false
}
