package graph

import (
	"fmt"
	"slices"
)

// ViewExtractor extracts radius-t views in bulk while reusing all scratch
// memory between calls: the BFS stamp array, the frontier queues, the view's
// flat CSR arrays, and the label/identifier/original-index buffers. One
// extractor per worker turns per-node view extraction from "two map-backed
// allocations per node" (Ball + InducedSubgraph) into an allocation-free
// inner loop, which is where the evaluation engine spends its time on the
// large Section 3 instances.
//
// The emitted view graph is written directly into one reused flat arena
// (offsets + neighbours), mirroring the host graph's CSR layout: both the
// BFS over the host and the induced-subgraph emission walk contiguous int32
// ranges, with no per-node slice headers on either side.
//
// The extractor reproduces ViewOf / ObliviousViewOf exactly: the view's node
// ordering is the same BFS discovery order (centre first, then by distance,
// within a layer by discovery), so the returned view is field-for-field
// identical to the one the one-shot helpers build.
//
// Lifetime contract: the *View returned by At (and everything it references —
// structure, labels, identifiers, Original) is only valid until the next call
// to At on the same extractor. Callers that need to retain a view must copy
// it; local deciders, which are pure functions of the view, never do.
//
// A ViewExtractor is not safe for concurrent use; give each worker its own.
type ViewExtractor struct {
	l   *Labeled
	ids []int // identifier per original node; nil for oblivious extraction

	// gen is the host graph's structural generation captured at bind time
	// (NewViewExtractor / Reset). At checks it so that extracting after the
	// host mutated — which the compat mutators historically allowed to read
	// torn adjacency silently — is a detected error instead.
	gen uint64

	// BFS scratch, sized to the host graph.
	stamp     []int   // visit epoch per original node
	viewIndex []int32 // original node -> dense view index, valid when stamped
	epoch     int
	ball      []int
	frontier  []int
	next      []int

	// Reusable view output buffers, sized to the largest ball seen so far.
	// The view's adjacency is one flat CSR arena reused across calls.
	viewOffsets []int32
	viewNbrs    []int32
	labels      []Label
	outIDs      []int
	orig        []int

	// The returned view aliases these; they are overwritten by the next At.
	g       Graph
	labeled Labeled
	view    View

	// code is the canonical-code workspace shared by every view this
	// extractor produces, so code computation in the engine's inner loop
	// reuses one set of buffers end to end.
	code *CodeWorkspace
}

// NewViewExtractor returns an extractor producing ID-free views of l
// (the batched equivalent of ObliviousViewOf).
func NewViewExtractor(l *Labeled) *ViewExtractor {
	n := l.N()
	return &ViewExtractor{
		l:         l,
		gen:       l.G.Generation(),
		stamp:     make([]int, n),
		viewIndex: make([]int32, n),
		code:      NewCodeWorkspace(),
	}
}

// NewInstanceViewExtractor returns an extractor producing identifier-carrying
// views of in (the batched equivalent of ViewOf).
func NewInstanceViewExtractor(in *Instance) *ViewExtractor {
	x := NewViewExtractor(in.Labeled)
	x.ids = in.IDs
	return x
}

// Reset rebinds the extractor to a new host graph while retaining every
// scratch buffer: the BFS stamp array, the flat view arenas and the shared
// canonical-code workspace. It is the batched-evaluation analogue of
// NewViewExtractor — one worker's extractor serves a whole slice of
// instances, so per-instance setup stops allocating once the largest host
// has been seen. Stamp entries from the previous host are harmless: At
// advances the visit epoch before every extraction, so no stale stamp can
// equal a fresh epoch. After Reset the extractor produces ID-free views; use
// ResetInstance to carry identifiers.
func (x *ViewExtractor) Reset(l *Labeled) {
	n := l.N()
	if cap(x.stamp) < n {
		x.stamp = make([]int, n)
		x.viewIndex = make([]int32, n)
	} else {
		x.stamp = x.stamp[:n]
		x.viewIndex = x.viewIndex[:n]
	}
	x.l = l
	x.gen = l.G.Generation()
	x.ids = nil
}

// ResetInstance rebinds the extractor to an identifier-carrying instance,
// retaining scratch exactly like Reset.
func (x *ViewExtractor) ResetInstance(in *Instance) {
	x.Reset(in.Labeled)
	x.ids = in.IDs
}

// At extracts the radius-t view of node v. The result is valid until the next
// call; see the type documentation for the full lifetime contract.
func (x *ViewExtractor) At(v, t int) *View {
	g := x.l.G
	if g.gen != x.gen {
		panic(fmt.Sprintf("graph: ViewExtractor used after host mutation (bound at generation %d, host now %d); call Reset/ResetInstance after mutating the graph", x.gen, g.gen))
	}
	g.check(v)
	if t < 0 {
		panic("graph: negative radius")
	}
	x.epoch++
	x.stamp[v] = x.epoch
	x.ball = append(x.ball[:0], v)
	x.frontier = append(x.frontier[:0], v)
	for d := 0; d < t && len(x.frontier) > 0; d++ {
		x.next = x.next[:0]
		for _, w := range x.frontier {
			for _, u := range g.row(w) {
				if x.stamp[u] != x.epoch {
					x.stamp[u] = x.epoch
					x.next = append(x.next, int(u))
					x.ball = append(x.ball, int(u))
				}
			}
		}
		x.frontier, x.next = x.next, x.frontier
	}

	k := len(x.ball)
	x.growOutput(k)
	for i, w := range x.ball {
		x.viewIndex[w] = int32(i)
	}
	// Emit the induced subgraph straight into the flat arena: node i's
	// neighbours are appended contiguously, then the (small) range is sorted
	// to restore the CSR invariant (neighbours arrive in original-index
	// order, but view indices follow BFS discovery order).
	x.viewNbrs = x.viewNbrs[:0]
	x.viewOffsets = append(x.viewOffsets[:0], 0)
	for _, w := range x.ball {
		start := len(x.viewNbrs)
		for _, u := range g.row(w) {
			if x.stamp[u] == x.epoch {
				x.viewNbrs = append(x.viewNbrs, x.viewIndex[u])
			}
		}
		slices.Sort(x.viewNbrs[start:])
		x.viewOffsets = append(x.viewOffsets, int32(len(x.viewNbrs)))
	}
	for i, w := range x.ball {
		x.labels[i] = x.l.Labels[w]
		x.orig[i] = w
		if x.ids != nil {
			x.outIDs[i] = x.ids[w]
		}
	}

	// Pre-size the shared code workspace for this view while its arrays are
	// hot: a following CanonCode miss then runs entirely in warm, already
	// grown buffers (a handful of cap checks when nothing needs growing).
	x.code.Prewarm(k, len(x.viewNbrs)/2)

	x.g = Graph{offsets: x.viewOffsets, neighbors: x.viewNbrs, m: len(x.viewNbrs) / 2}
	x.labeled = Labeled{G: &x.g, Labels: x.labels[:k]}
	x.view = View{Labeled: &x.labeled, Root: 0, Radius: t, Original: x.orig[:k], ws: x.code}
	if x.ids != nil {
		x.view.IDs = x.outIDs[:k]
	}
	return &x.view
}

// growOutput ensures the reusable output buffers hold k view nodes.
func (x *ViewExtractor) growOutput(k int) {
	if cap(x.labels) < k {
		x.labels = make([]Label, k)
		x.orig = make([]int, k)
		x.outIDs = make([]int, k)
	}
	x.labels = x.labels[:k]
	x.orig = x.orig[:k]
	x.outIDs = x.outIDs[:k]
}
