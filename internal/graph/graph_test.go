package graph

import (
	"testing"
)

func TestNewAndCounts(t *testing.T) {
	tests := []struct {
		name  string
		build func() *Graph
		n, m  int
	}{
		{"empty", func() *Graph { return New(0) }, 0, 0},
		{"isolated", func() *Graph { return New(5) }, 5, 0},
		{"path4", func() *Graph { return Path(4) }, 4, 3},
		{"cycle5", func() *Graph { return Cycle(5) }, 5, 5},
		{"complete4", func() *Graph { return Complete(4) }, 4, 6},
		{"star6", func() *Graph { return Star(6) }, 6, 5},
		{"grid3x4", func() *Graph { return Grid(3, 4) }, 12, 17},
		{"torus3x3", func() *Graph { return Torus(3, 3) }, 9, 18},
		{"cbt_depth2", func() *Graph { return CompleteBinaryTree(2) }, 7, 6},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.build()
			if g.N() != tc.n {
				t.Errorf("N() = %d, want %d", g.N(), tc.n)
			}
			if g.M() != tc.m {
				t.Errorf("M() = %d, want %d", g.M(), tc.m)
			}
		})
	}
}

func TestAddEdgeIdempotent(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0)
	g.AddEdge(0, 1)
	if g.M() != 1 {
		t.Fatalf("M() = %d after repeated AddEdge, want 1", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge {0,1} missing")
	}
	if g.HasEdge(0, 2) {
		t.Fatal("phantom edge {0,2}")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	New(2).AddEdge(1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range node")
		}
	}()
	New(2).AddEdge(0, 2)
}

func TestNeighborsSorted(t *testing.T) {
	g := New(5)
	g.AddEdge(2, 4)
	g.AddEdge(2, 0)
	g.AddEdge(2, 3)
	g.AddEdge(2, 1)
	nbrs := g.Neighbors(2)
	want := []int32{0, 1, 3, 4}
	if len(nbrs) != len(want) {
		t.Fatalf("Neighbors(2) = %v, want %v", nbrs, want)
	}
	for i := range want {
		if nbrs[i] != want[i] {
			t.Fatalf("Neighbors(2) = %v, want %v", nbrs, want)
		}
	}
}

func TestDegreeAndMaxDegree(t *testing.T) {
	g := Star(7)
	if got := g.Degree(0); got != 6 {
		t.Errorf("centre degree = %d, want 6", got)
	}
	if got := g.Degree(3); got != 1 {
		t.Errorf("leaf degree = %d, want 1", got)
	}
	if got := g.MaxDegree(); got != 6 {
		t.Errorf("MaxDegree = %d, want 6", got)
	}
	if got := New(0).MaxDegree(); got != 0 {
		t.Errorf("empty MaxDegree = %d, want 0", got)
	}
}

func TestEdgesListing(t *testing.T) {
	g := Cycle(4)
	edges := g.Edges()
	want := [][2]int{{0, 1}, {0, 3}, {1, 2}, {2, 3}}
	if len(edges) != len(want) {
		t.Fatalf("Edges() = %v, want %v", edges, want)
	}
	for i := range want {
		if edges[i] != want[i] {
			t.Fatalf("Edges() = %v, want %v", edges, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Path(4)
	h := g.Clone()
	h.AddEdge(0, 3)
	if g.HasEdge(0, 3) {
		t.Fatal("mutating clone affected original")
	}
	if !g.Equal(Path(4)) {
		t.Fatal("original changed")
	}
}

func TestEqual(t *testing.T) {
	if !Path(3).Equal(Path(3)) {
		t.Error("identical paths not Equal")
	}
	if Path(3).Equal(Path(4)) {
		t.Error("different sizes Equal")
	}
	a := New(3)
	a.AddEdge(0, 1)
	b := New(3)
	b.AddEdge(1, 2)
	if a.Equal(b) {
		t.Error("different edge sets Equal")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, orig := g.InducedSubgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("sub.N() = %d, want 4", sub.N())
	}
	// Edges among {0,1,2,4} in C6: {0,1}, {1,2}. Node 4 is isolated here.
	if sub.M() != 2 {
		t.Fatalf("sub.M() = %d, want 2", sub.M())
	}
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Fatal("expected edges missing in induced subgraph")
	}
	if sub.Degree(3) != 0 {
		t.Fatal("node 4 should be isolated in the induced subgraph")
	}
	for i, v := range []int{0, 1, 2, 4} {
		if orig[i] != v {
			t.Fatalf("orig = %v", orig)
		}
	}
}

func TestInducedSubgraphDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate nodes")
		}
	}()
	Path(3).InducedSubgraph([]int{0, 0})
}

func TestRelabel(t *testing.T) {
	g := Path(3) // edges {0,1},{1,2}
	h := g.Relabel([]int{2, 0, 1})
	if !h.HasEdge(2, 0) || !h.HasEdge(0, 1) {
		t.Fatalf("relabelled edges wrong: %v", h.Edges())
	}
	if h.M() != 2 {
		t.Fatalf("M changed under relabel: %d", h.M())
	}
}

func TestRelabelInvalidPermutationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on bad permutation")
		}
	}()
	Path(3).Relabel([]int{0, 0, 1})
}

func TestBFSDistances(t *testing.T) {
	g := Path(5)
	dist := g.BFSFrom(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if dist[v] != want {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
	// Disconnected: two components.
	h := New(4)
	h.AddEdge(0, 1)
	h.AddEdge(2, 3)
	d := h.BFSFrom(0)
	if d[2] != -1 || d[3] != -1 {
		t.Errorf("unreachable distances = %v, want -1", d[2:])
	}
}

func TestBall(t *testing.T) {
	g := Path(7)
	tests := []struct {
		v, t int
		want []int
	}{
		{3, 0, []int{3}},
		{3, 1, []int{3, 2, 4}},
		{3, 2, []int{3, 2, 4, 1, 5}},
		{0, 2, []int{0, 1, 2}},
		{3, 100, []int{3, 2, 4, 1, 5, 0, 6}},
	}
	for _, tc := range tests {
		ball := g.Ball(tc.v, tc.t)
		if len(ball) != len(tc.want) {
			t.Errorf("Ball(%d,%d) = %v, want %v", tc.v, tc.t, ball, tc.want)
			continue
		}
		for i := range tc.want {
			if ball[i] != tc.want[i] {
				t.Errorf("Ball(%d,%d) = %v, want %v", tc.v, tc.t, ball, tc.want)
				break
			}
		}
	}
}

func TestConnectivity(t *testing.T) {
	if !Path(5).IsConnected() {
		t.Error("path not connected")
	}
	if !New(0).IsConnected() {
		t.Error("empty graph should count as connected")
	}
	g := New(3)
	g.AddEdge(0, 1)
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	comps := g.ConnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want 2 components", comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 1 {
		t.Fatalf("components = %v", comps)
	}
}

func TestDiameterAndDistance(t *testing.T) {
	if d := Cycle(6).Diameter(); d != 3 {
		t.Errorf("C6 diameter = %d, want 3", d)
	}
	if d := Path(5).Diameter(); d != 4 {
		t.Errorf("P5 diameter = %d, want 4", d)
	}
	g := New(2)
	if d := g.Diameter(); d != -1 {
		t.Errorf("disconnected diameter = %d, want -1", d)
	}
	if d := Cycle(8).Distance(0, 5); d != 3 {
		t.Errorf("C8 dist(0,5) = %d, want 3", d)
	}
}

func TestTreeAndCycleDetection(t *testing.T) {
	if !Path(6).IsTree() {
		t.Error("path should be a tree")
	}
	if !CompleteBinaryTree(3).IsTree() {
		t.Error("complete binary tree should be a tree")
	}
	if Cycle(4).IsTree() {
		t.Error("cycle is not a tree")
	}
	if Path(6).HasCycle() {
		t.Error("path has no cycle")
	}
	if !Cycle(3).HasCycle() {
		t.Error("triangle has a cycle")
	}
	if !Torus(3, 3).HasCycle() {
		t.Error("torus has cycles")
	}
	disconnectedForest := New(5)
	disconnectedForest.AddEdge(0, 1)
	disconnectedForest.AddEdge(2, 3)
	if disconnectedForest.HasCycle() {
		t.Error("forest has no cycle")
	}
	if disconnectedForest.IsTree() {
		t.Error("disconnected forest is not a tree")
	}
}

func TestRandomGraphConnectedDeterministic(t *testing.T) {
	for _, n := range []int{1, 2, 10, 40} {
		g := Random(n, 0.2, 42)
		if !g.IsConnected() {
			t.Errorf("Random(%d) not connected", n)
		}
		h := Random(n, 0.2, 42)
		if !g.Equal(h) {
			t.Errorf("Random(%d) not deterministic for fixed seed", n)
		}
	}
	a := Random(20, 0.3, 1)
	b := Random(20, 0.3, 2)
	if a.Equal(b) {
		t.Error("different seeds produced identical random graphs (suspicious)")
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 3)
	centre := GridIndex(1, 1, 3)
	if g.Degree(centre) != 4 {
		t.Errorf("grid centre degree = %d, want 4", g.Degree(centre))
	}
	corner := GridIndex(0, 0, 3)
	if g.Degree(corner) != 2 {
		t.Errorf("grid corner degree = %d, want 2", g.Degree(corner))
	}
	if g.HasCycle() != true {
		t.Error("3x3 grid contains 4-cycles")
	}
	// Torus is vertex-transitive: all degrees 4.
	tor := Torus(4, 5)
	for v := 0; v < tor.N(); v++ {
		if tor.Degree(v) != 4 {
			t.Fatalf("torus degree(%d) = %d, want 4", v, tor.Degree(v))
		}
	}
}

func TestCompleteBinaryTreeShape(t *testing.T) {
	g := CompleteBinaryTree(3)
	if g.N() != 15 || g.M() != 14 {
		t.Fatalf("depth-3 CBT: n=%d m=%d", g.N(), g.M())
	}
	if g.Degree(0) != 2 {
		t.Errorf("root degree = %d, want 2", g.Degree(0))
	}
	leaves := 0
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) == 1 {
			leaves++
		}
	}
	if leaves != 8 {
		t.Errorf("leaves = %d, want 8", leaves)
	}
	single := CompleteBinaryTree(0)
	if single.N() != 1 || single.M() != 0 {
		t.Errorf("depth-0 CBT: n=%d m=%d", single.N(), single.M())
	}
}
