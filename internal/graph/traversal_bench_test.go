package graph

import (
	"fmt"
	"testing"
)

// Benchmarks for the Traversal scratch at production scale (n=10^5–10^6):
// steady-state whole-graph analyses must report 0 allocs/op, and the
// scratch variants are pinned against the allocating wrappers so the win
// stays measured. BENCH_4.json records these; scripts/benchgate gates the
// n=10^6 BFS against the committed baseline.

func traversalBenchHosts() map[string]*Graph {
	return map[string]*Graph{
		"cycle/n=100000":   Cycle(100_000),
		"cycle/n=1000000":  Cycle(1_000_000),
		"sparse/n=1000000": FromEdges(1_000_000, sparseEdges(1_000_000)),
	}
}

// BenchmarkTraversalBFS measures scratch-based full-graph BFS: same hosts
// as BenchmarkBFSLarge, 0 allocs/op steady-state (the wrapper's ~24MB/op
// at n=10^6 was the ROADMAP's large-n BFS allocation item).
func BenchmarkTraversalBFS(b *testing.B) {
	for name, g := range traversalBenchHosts() {
		b.Run(name, func(b *testing.B) {
			tr := NewTraversal()
			tr.BFSFrom(g, 0) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dist := tr.BFSFrom(g, i%g.N())
				if len(dist) != g.N() {
					b.Fatal("bad BFS")
				}
			}
		})
	}
}

// BenchmarkTraversalComponents measures scratch-based component labelling
// (the ConnectedComponents core) at n=10^6: 0 allocs/op steady-state.
func BenchmarkTraversalComponents(b *testing.B) {
	for name, g := range traversalBenchHosts() {
		b.Run(name, func(b *testing.B) {
			tr := NewTraversal()
			tr.ComponentIDs(g) // warm the scratch
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, count := tr.ComponentIDs(g); count < 1 {
					b.Fatal("bad components")
				}
			}
		})
	}
}

// BenchmarkTraversalBall pins the allocation-free Ball against the
// allocating wrapper on a sparse 10^6-node host: per-ball cost must stay
// flat and scratch-based calls allocation-free regardless of host size.
func BenchmarkTraversalBall(b *testing.B) {
	g := FromEdges(1_000_000, sparseEdges(1_000_000))
	b.Run("scratch/n=1000000/radius=3", func(b *testing.B) {
		tr := NewTraversal()
		tr.Ball(g, 0, 3)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.Ball(g, (i*7919)%g.N(), 3)
		}
	})
	b.Run("wrapper/n=1000000/radius=3", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g.Ball((i*7919)%g.N(), 3)
		}
	})
}

// BenchmarkTraversalDiameter runs the n-BFS diameter sweep on a mid-size
// host through the scratch (the per-source distance vectors the wrapper
// used to allocate dominate its profile at this size).
func BenchmarkTraversalDiameter(b *testing.B) {
	for _, n := range []int{1_000, 10_000} {
		g := Cycle(n)
		b.Run(fmt.Sprintf("cycle/n=%d", n), func(b *testing.B) {
			tr := NewTraversal()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if d := tr.Diameter(g); d != n/2 {
					b.Fatalf("bad diameter %d", d)
				}
			}
		})
	}
}
