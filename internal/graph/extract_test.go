package graph

import (
	"testing"
	"testing/quick"
)

func viewsIdentical(a, b *View) bool {
	if !a.Labeled.Equal(b.Labeled) || a.Root != b.Root || a.Radius != b.Radius {
		return false
	}
	if (a.IDs == nil) != (b.IDs == nil) || len(a.Original) != len(b.Original) {
		return false
	}
	for i := range a.Original {
		if a.Original[i] != b.Original[i] {
			return false
		}
	}
	if a.IDs != nil {
		for i := range a.IDs {
			if a.IDs[i] != b.IDs[i] {
				return false
			}
		}
	}
	return true
}

// The extractor must reproduce the one-shot helpers field for field: same
// node ordering (BFS discovery), same structure, labels, IDs and Original.
func TestViewExtractorMatchesViewOf(t *testing.T) {
	hosts := map[string]*Graph{
		"path9":    Path(9),
		"cycle12":  Cycle(12),
		"star8":    Star(8),
		"grid4x5":  Grid(4, 5),
		"tree4":    CompleteBinaryTree(4),
		"random25": Random(25, 0.2, 7),
		"single":   New(1),
	}
	for name, g := range hosts {
		l := RandomLabels(g, []Label{"a", "b", "c"}, 3)
		ids := make([]int, g.N())
		for i := range ids {
			ids[i] = 2*i + 5
		}
		in := NewInstance(l, ids)
		xObl := NewViewExtractor(l)
		xIns := NewInstanceViewExtractor(in)
		for _, radius := range []int{0, 1, 2, 3} {
			for v := 0; v < g.N(); v++ {
				if got, want := xObl.At(v, radius), ObliviousViewOf(l, v, radius); !viewsIdentical(got, want) {
					t.Fatalf("%s: oblivious view of node %d at radius %d diverges:\n got %v\nwant %v", name, v, radius, got, want)
				}
				if got, want := xIns.At(v, radius), ViewOf(in, v, radius); !viewsIdentical(got, want) {
					t.Fatalf("%s: instance view of node %d at radius %d diverges", name, v, radius)
				}
			}
		}
	}
}

func TestViewExtractorQuick(t *testing.T) {
	property := func(seed int64, tRaw uint8) bool {
		n := 2 + int(seed%29+29)%29
		radius := int(tRaw % 4)
		l := RandomLabels(Random(n, 0.25, seed), []Label{"x", "y"}, seed+1)
		x := NewViewExtractor(l)
		for v := 0; v < n; v++ {
			if !viewsIdentical(x.At(v, radius), ObliviousViewOf(l, v, radius)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Successive calls reuse the same buffers; each call must still be internally
// consistent (codes equal to the fresh extraction at the time of the call).
func TestViewExtractorReuseConsistency(t *testing.T) {
	l := UniformlyLabeled(Grid(5, 5), "g")
	x := NewViewExtractor(l)
	for v := 0; v < l.N(); v++ {
		got := x.At(v, 2).ObliviousCode()
		want := ObliviousViewOf(l, v, 2).ObliviousCode()
		if got != want {
			t.Fatalf("node %d: code diverges after buffer reuse", v)
		}
	}
}

// TestViewExtractorReset pins the rebind contract: after Reset (plain or
// instance-carrying) the extractor must reproduce fresh-extractor views
// exactly — across hosts of growing and shrinking sizes, so both the
// buffer-reuse and the regrow arms are exercised.
func TestViewExtractorReset(t *testing.T) {
	hosts := []*Labeled{
		UniformlyLabeled(Grid(4, 4), "g"),
		RandomLabels(Cycle(40), []Label{"a", "b"}, 1),
		RandomLabels(Random(9, 0.3, 2), []Label{"x"}, 3),
	}
	x := NewViewExtractor(hosts[0])
	for round := 0; round < 2; round++ {
		for _, l := range hosts {
			x.Reset(l)
			for v := 0; v < l.N(); v++ {
				if !viewsIdentical(x.At(v, 2), ObliviousViewOf(l, v, 2)) {
					t.Fatalf("round %d: reset extractor diverges on host %v node %d", round, l, v)
				}
			}
		}
	}
	ids := make([]int, hosts[1].N())
	for i := range ids {
		ids[i] = 100 + 3*i
	}
	in := NewInstance(hosts[1], ids)
	x.ResetInstance(in)
	for v := 0; v < in.N(); v++ {
		got, want := x.At(v, 2), ViewOf(in, v, 2)
		if !viewsIdentical(got, want) || got.Code() != want.Code() {
			t.Fatalf("ResetInstance extractor diverges on node %d", v)
		}
	}
}
