package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: balls are monotone in the radius and bounded by the component.
func TestBallMonotoneProperty_Quick(t *testing.T) {
	property := func(seed int64, vRaw, tRaw uint8) bool {
		n := 2 + int(abs64(seed)%20)
		g := Random(n, 0.2, seed)
		v := int(vRaw) % n
		t1 := int(tRaw % 4)
		small := g.Ball(v, t1)
		big := g.Ball(v, t1+1)
		if len(small) > len(big) {
			return false
		}
		inBig := make(map[int]struct{}, len(big))
		for _, u := range big {
			inBig[u] = struct{}{}
		}
		for _, u := range small {
			if _, ok := inBig[u]; !ok {
				return false
			}
		}
		// Ball membership matches BFS distance.
		dist := g.BFSFrom(v)
		for _, u := range small {
			if dist[u] == -1 || dist[u] > t1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: views are invariant (as codes) under node renumbering of the
// host graph.
func TestViewInvarianceProperty_Quick(t *testing.T) {
	property := func(seed int64, vRaw uint8) bool {
		n := 2 + int(abs64(seed)%10)
		l := RandomLabels(Random(n, 0.3, seed), []Label{"p", "q"}, seed+1)
		v := int(vRaw) % n
		perm := rand.New(rand.NewSource(seed + 2)).Perm(n)
		relabeled := l.Relabel(perm)
		a := ObliviousViewOf(l, v, 2).ObliviousCode()
		b := ObliviousViewOf(relabeled, perm[v], 2).ObliviousCode()
		return a == b
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: the refinement invariant never separates isomorphic graphs
// (soundness of the WL-1 fallback).
func TestRefinementCodeSoundProperty_Quick(t *testing.T) {
	property := func(seed int64, rootRaw uint8) bool {
		n := 2 + int(abs64(seed)%12)
		l := RandomLabels(Random(n, 0.3, seed), []Label{"x", "y", "z"}, seed+3)
		root := int(rootRaw) % n
		perm := rand.New(rand.NewSource(seed + 4)).Perm(n)
		return RootedRefinementCode(l, root) == RootedRefinementCode(l.Relabel(perm), perm[root])
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// Property: connected components partition the node set.
func TestComponentsPartitionProperty_Quick(t *testing.T) {
	property := func(seed int64) bool {
		n := 1 + int(abs64(seed)%25)
		g := New(n)
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.AddEdge(u, v)
			}
		}
		seen := make(map[int]int)
		for ci, comp := range g.ConnectedComponents() {
			for _, v := range comp {
				if _, dup := seen[v]; dup {
					return false
				}
				seen[v] = ci
			}
		}
		if len(seen) != n {
			return false
		}
		// Edges never cross components.
		for _, e := range g.Edges() {
			if seen[e[0]] != seen[e[1]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: CoverageFraction is 1 whenever the host is among the covers.
func TestSelfCoverageProperty_Quick(t *testing.T) {
	property := func(seed int64, tRaw uint8) bool {
		n := 2 + int(abs64(seed)%10)
		l := RandomLabels(Random(n, 0.3, seed), []Label{"a", "b"}, seed)
		return CoverageFraction(l, []*Labeled{l}, int(tRaw%3)) == 1
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
