package graph

import (
	"math/rand"
	"testing"
)

// checkCSRInvariants asserts the representation invariants every frozen
// graph must satisfy: monotone offsets, strictly ascending (hence
// duplicate-free) rows, symmetry, no self-loops, and a consistent cached
// edge count.
func checkCSRInvariants(t *testing.T, g *Graph) {
	t.Helper()
	n := g.N()
	half := 0
	for v := 0; v < n; v++ {
		row := g.Neighbors(v)
		half += len(row)
		for i, u := range row {
			if i > 0 && row[i-1] >= u {
				t.Fatalf("row %d not strictly ascending: %v", v, row)
			}
			if int(u) == v {
				t.Fatalf("self-loop at %d", v)
			}
			if !g.HasEdge(int(u), v) {
				t.Fatalf("edge {%d,%d} not symmetric", v, u)
			}
		}
	}
	if half != 2*g.M() {
		t.Fatalf("cached M = %d but rows hold %d half-edges", g.M(), half)
	}
}

// rebuildViaAddEdge replays a graph's edge set through the legacy incremental
// path (New + AddEdge) in shuffled order with duplicates and reversed pairs
// mixed in — the differential reference for Builder-built CSR graphs.
func rebuildViaAddEdge(t *testing.T, g *Graph, seed int64) *Graph {
	t.Helper()
	edges := g.Edges()
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	h := New(g.N())
	for i, e := range edges {
		u, v := e[0], e[1]
		if i%2 == 1 {
			u, v = v, u // reversed pair
		}
		h.AddEdge(u, v)
		if i%3 == 0 {
			h.AddEdge(v, u) // duplicate, other orientation
		}
	}
	return h
}

// TestBuilderMatchesAddEdgePath pins Builder-built CSR graphs against the
// legacy AddEdge path across every generator family.
func TestBuilderMatchesAddEdgePath(t *testing.T) {
	families := map[string]*Graph{
		"path":     Path(17),
		"cycle":    Cycle(12),
		"grid":     Grid(5, 7),
		"torus":    Torus(4, 5),
		"tree":     CompleteBinaryTree(4),
		"star":     Star(9),
		"complete": Complete(8),
		"random":   Random(40, 0.15, 7),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			checkCSRInvariants(t, g)
			h := rebuildViaAddEdge(t, g, 99)
			if !g.Equal(h) {
				t.Fatalf("%s: builder CSR differs from AddEdge-built graph", name)
			}
			checkCSRInvariants(t, h)
		})
	}
}

// TestBuilderRandomEdgeLists cross-checks Builder against the incremental
// path on arbitrary random edge multisets (with duplicates and reversals),
// not just generator output.
func TestBuilderRandomEdgeLists(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		mTry := rng.Intn(3 * n)
		b := NewBuilder(n)
		h := New(n)
		for i := 0; i < mTry; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			b.AddEdge(u, v)
			h.AddEdge(u, v)
			if rng.Intn(2) == 0 {
				b.AddEdge(v, u) // reversed duplicate
			}
		}
		g := b.Build()
		if !g.Equal(h) {
			t.Fatalf("trial %d: builder %v != incremental %v", trial, g.Edges(), h.Edges())
		}
		checkCSRInvariants(t, g)
	}
}

func TestBuilderEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty build: n=%d m=%d", g.N(), g.M())
	}
	if !g.Equal(New(0)) {
		t.Fatal("empty build != New(0)")
	}
	var zero Graph
	if zero.N() != 0 || zero.M() != 0 {
		t.Fatalf("zero value: n=%d m=%d", zero.N(), zero.M())
	}
	// The zero value is the empty graph and must compare as such in every
	// direction without touching its nil offsets array.
	if !zero.Equal(New(0)) || !New(0).Equal(&zero) || !zero.Equal(&Graph{}) {
		t.Fatal("zero-value graph not Equal to the empty graph")
	}
	if zero.Equal(New(1)) {
		t.Fatal("zero-value graph Equal to a 1-node graph")
	}
}

func TestBuilderIsolatedTrailingNodes(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1) // nodes 2..5 stay isolated
	g := b.Build()
	if g.N() != 6 || g.M() != 1 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	for v := 2; v < 6; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("node %d not isolated", v)
		}
	}
	checkCSRInvariants(t, g)
}

func TestBuilderDuplicateAndReversedPairs(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	b.AddEdge(2, 1)
	g := b.Build()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 after dedup", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("edges missing after dedup")
	}
	checkCSRInvariants(t, g)
}

func TestBuilderAddNodeGrowth(t *testing.T) {
	b := NewBuilder(1)
	v := b.AddNode()
	if v != 1 || b.N() != 2 {
		t.Fatalf("AddNode returned %d, n=%d", v, b.N())
	}
	b.AddEdge(0, v)
	g := b.Build()
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
}

func TestBuilderSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestBuilderOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range endpoint")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestBuilderReusableAfterBuild(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g1 := b.Build()
	b.AddEdge(1, 2)
	g2 := b.Build()
	if g1.M() != 1 {
		t.Fatalf("first build mutated: m=%d", g1.M())
	}
	if g2.M() != 2 || !g2.HasEdge(0, 1) || !g2.HasEdge(1, 2) {
		t.Fatalf("second build wrong: %v", g2.Edges())
	}
}

func TestBuilderAddGraphAt(t *testing.T) {
	c := Cycle(4)
	b := NewBuilder(9)
	b.AddGraphAt(c, 0)
	b.AddGraphAt(c, 4)
	b.AddEdge(8, 0)
	g := b.Build()
	if g.M() != 2*c.M()+1 {
		t.Fatalf("M = %d, want %d", g.M(), 2*c.M()+1)
	}
	sub, _ := g.InducedSubgraph([]int{4, 5, 6, 7})
	if !sub.Equal(c) {
		t.Fatal("shifted component does not match original")
	}
	checkCSRInvariants(t, g)
}

func TestFromEdges(t *testing.T) {
	g := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	if !g.Equal(Path(4)) {
		t.Fatalf("FromEdges != Path(4): %v", g.Edges())
	}
}

// TestRandomSkipSamplingStatistics pins the geometric-skip Random generator:
// connectivity and determinism are covered elsewhere; here the non-tree edge
// count must track the binomial expectation p·(C(n,2)-(n-1)) within a loose
// band, confirming the skip walk visits each pair with probability p.
func TestRandomSkipSamplingStatistics(t *testing.T) {
	n, p := 400, 0.05
	pairs := n * (n - 1) / 2
	expected := float64(n-1) + p*float64(pairs-(n-1))
	total := 0.0
	const runs = 20
	for seed := int64(0); seed < runs; seed++ {
		total += float64(Random(n, p, seed).M())
	}
	mean := total / runs
	if mean < 0.9*expected || mean > 1.1*expected {
		t.Fatalf("mean edge count %.1f, want within 10%% of %.1f", mean, expected)
	}
}

func TestRandomExtremeProbabilities(t *testing.T) {
	if g := Random(30, 0, 3); g.M() != 29 || !g.IsTree() {
		t.Fatalf("p=0 should yield a spanning tree, got m=%d", g.M())
	}
	if g := Random(12, 1, 3); g.M() != 12*11/2 {
		t.Fatalf("p=1 should yield the complete graph, got m=%d", g.M())
	}
}
