package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential suite: the integer/fingerprint pipeline (code.go) against the
// legacy string implementation (canon.go). The two encoders produce
// different bytes by design; what must coincide exactly is the equivalence
// they induce — equal codes iff isomorphic — over every graph family the
// reproduction exercises.

// randomTree returns a random labelled tree on n nodes (random attachment).
func randomTree(n int, rng *rand.Rand, alphabet []Label) *Labeled {
	g := New(n)
	for v := 1; v < n; v++ {
		g.AddEdge(v, rng.Intn(v))
	}
	labels := make([]Label, n)
	for v := range labels {
		labels[v] = alphabet[rng.Intn(len(alphabet))]
	}
	return NewLabeled(g, labels)
}

// diffFamily generates the differential-test corpus for one seed: random
// trees, labelled cycles, bounded-degree random graphs and a grid, each in a
// couple of label regimes (uniform labels maximise symmetry, random labels
// maximise classes).
func diffFamily(seed int64) []*Labeled {
	rng := rand.New(rand.NewSource(seed))
	ab := []Label{"a", "b"}
	n := 5 + rng.Intn(8)
	return []*Labeled{
		randomTree(n, rng, ab),
		randomTree(n, rng, []Label{"x"}),
		UniformlyLabeled(Cycle(n), "c"),
		RandomLabels(Cycle(n), ab, seed+1),
		RandomLabels(Random(n, 0.3, seed+2), ab, seed+3),
		UniformlyLabeled(Grid(3, 3), "g"),
		RandomLabels(CompleteBinaryTree(3), ab, seed+4),
	}
}

// TestCodeMatchesLegacyEquivalence is the core differential property: over
// all pairs from the corpus (including relabelled copies, which are
// isomorphic by construction), the fast codes are equal iff the legacy
// string codes are equal — rooted and unrooted.
func TestCodeMatchesLegacyEquivalence(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		family := diffFamily(seed)
		// Add relabelled twins so the corpus contains isomorphic pairs, not
		// just (mostly) non-isomorphic ones.
		for _, l := range family[:3] {
			family = append(family, l.Relabel(rng.Perm(l.N())))
		}
		w := NewCodeWorkspace()
		for i, a := range family {
			ca := w.GraphCode(a).Clone()
			caRoot := w.RootedCode(a, 0).Clone()
			for _, b := range family[i:] {
				legacyEq := CanonicalCode(a) == CanonicalCode(b)
				fastEq := ca.Equal(w.GraphCode(b))
				if legacyEq != fastEq {
					t.Logf("seed=%d: unrooted divergence (legacy %v, fast %v) on %v vs %v",
						seed, legacyEq, fastEq, a, b)
					return false
				}
				if b.N() == 0 {
					continue
				}
				legacyEq = RootedCanonicalCode(a, 0) == RootedCanonicalCode(b, 0)
				fastEq = caRoot.Equal(w.RootedCode(b, 0))
				if legacyEq != fastEq {
					t.Logf("seed=%d: rooted divergence (legacy %v, fast %v) on %v vs %v",
						seed, legacyEq, fastEq, a, b)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestCodeInvariantUnderRelabel pins the isomorphism-invariance of the fast
// code directly: relabelling (with the root mapped along) never changes it.
func TestCodeInvariantUnderRelabel(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := NewCodeWorkspace()
		for _, l := range diffFamily(seed) {
			if l.N() == 0 {
				continue
			}
			perm := rng.Perm(l.N())
			root := rng.Intn(l.N())
			orig := w.RootedCode(l, root).Clone()
			if !orig.Equal(w.RootedCode(l.Relabel(perm), perm[root])) {
				t.Logf("seed=%d: code not invariant on %v", seed, l)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCodeAgainstBruteForce cross-checks equal-iff-isomorphic against the
// exponential oracle on small graphs, independent of the legacy encoder.
func TestCodeAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var small []*Labeled
	for i := 0; i < 8; i++ {
		small = append(small, randomTree(5, rng, []Label{"a", "b"}))
		small = append(small, RandomLabels(Random(5, 0.4, int64(i)), []Label{"a", "b"}, int64(i+50)))
	}
	w := NewCodeWorkspace()
	for i, a := range small {
		ca := w.RootedCode(a, 0).Clone()
		for _, b := range small[i:] {
			want := BruteForceRootedIsomorphic(a, 0, b, 0)
			got := ca.Equal(w.RootedCode(b, 0))
			if got != want {
				t.Fatalf("fast code equality %v, brute force %v on pair %d", got, want, i)
			}
		}
	}
}

// TestViewCodesMatchAcrossPaths pins the three ways of computing a view code
// against each other: the one-shot view, the extractor-produced view (shared
// workspace) and a direct workspace call must all agree, and the string form
// must be the byte form verbatim.
func TestViewCodesMatchAcrossPaths(t *testing.T) {
	l := RandomLabels(Grid(5, 5), []Label{"a", "b"}, 3)
	x := NewViewExtractor(l)
	w := NewCodeWorkspace()
	for v := 0; v < l.N(); v++ {
		oneShot := ObliviousViewOf(l, v, 2)
		fromExtractor := x.At(v, 2).CanonCode().Clone()
		direct := w.RootedCode(oneShot.Labeled, oneShot.Root).Clone()
		if !fromExtractor.Equal(direct) {
			t.Fatalf("node %d: extractor and direct codes differ", v)
		}
		if oneShot.ObliviousCode() != string(direct.Bytes) {
			t.Fatalf("node %d: ObliviousCode string is not the byte code", v)
		}
	}
}

// TestWorkspaceReuseIsPure computes a sequence of codes with one reused
// workspace and checks each against a fresh workspace: buffer reuse must
// never leak state between calls.
func TestWorkspaceReuseIsPure(t *testing.T) {
	reused := NewCodeWorkspace()
	for _, l := range diffFamily(11) {
		if l.N() == 0 {
			continue
		}
		got := reused.RootedCode(l, 0).Clone()
		want := NewCodeWorkspace().RootedCode(l, 0)
		if !got.Equal(want) {
			t.Fatalf("workspace reuse changed the code of %v", l)
		}
	}
}

// TestFingerprintIsFNVOfBytes pins the fingerprint definition: deterministic
// FNV-1a over the byte code, so cache keys are stable across workspaces,
// goroutines and runs.
func TestFingerprintIsFNVOfBytes(t *testing.T) {
	w := NewCodeWorkspace()
	c := w.RootedCode(UniformlyLabeled(Cycle(9), "c"), 0)
	if c.Fingerprint != fingerprint64(c.Bytes) {
		t.Fatal("fingerprint is not FNV-1a of the byte code")
	}
	again := NewCodeWorkspace().RootedCode(UniformlyLabeled(Cycle(9), "c"), 0)
	if c.Fingerprint != again.Fingerprint || !bytes.Equal(c.Bytes, again.Bytes) {
		t.Fatal("code not deterministic across workspaces")
	}
}

// TestCodeEmptyAndSingle covers the degenerate inputs.
func TestCodeEmptyAndSingle(t *testing.T) {
	w := NewCodeWorkspace()
	empty := w.GraphCode(NewLabeled(New(0), nil)).Clone()
	single := w.GraphCode(UniformlyLabeled(New(1), "x")).Clone()
	if empty.Equal(single) {
		t.Fatal("empty and single-node codes collide")
	}
	if !empty.Equal(NewCodeWorkspace().GraphCode(NewLabeled(New(0), nil))) {
		t.Fatal("empty code not deterministic")
	}
}

// TestCloneDetaches checks that Clone survives workspace reuse.
func TestCloneDetaches(t *testing.T) {
	w := NewCodeWorkspace()
	a := w.RootedCode(UniformlyLabeled(Cycle(6), "c"), 0).Clone()
	saved := append([]byte(nil), a.Bytes...)
	w.RootedCode(UniformlyLabeled(Star(8), "s"), 0) // overwrite workspace buffer
	if !bytes.Equal(a.Bytes, saved) {
		t.Fatal("Clone did not detach from workspace memory")
	}
}
