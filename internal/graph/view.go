package graph

import (
	"encoding/binary"
	"fmt"
	"strconv"
)

// View is the restriction (G, x, Id) |> B(v, t): the labelled graph induced on
// the radius-t ball around a centre node, with the centre distinguished as
// Root (index in the view's own node numbering) and the original identifiers
// carried along. Original identifies the view's node indices back to the
// parent instance.
//
// A View is the entire input of a local algorithm with horizon t. Id-oblivious
// algorithms see the view without IDs; ID-using algorithms see IDs too.
type View struct {
	*Labeled
	Root     int
	Radius   int
	IDs      []int // identifier per view node; nil when extracted from a Labeled
	Original []int // view index -> node index in the parent graph

	// ws is the canonical-code workspace the view's code computations run
	// in. Views produced by a ViewExtractor share the extractor's workspace;
	// one-shot views create their own lazily. Not safe for concurrent use.
	ws *CodeWorkspace
}

// ViewOf extracts the radius-t view of node v from an instance, including
// identifiers.
func ViewOf(in *Instance, v, t int) *View {
	ball := in.G.Ball(v, t)
	sub, orig := in.Labeled.InducedSubgraph(ball)
	ids := make([]int, len(orig))
	for i, w := range orig {
		ids[i] = in.IDs[w]
	}
	return &View{Labeled: sub, Root: 0, Radius: t, IDs: ids, Original: orig}
}

// ObliviousViewOf extracts the radius-t view of node v from a labelled graph
// without identifiers. This is the whole input of an Id-oblivious algorithm.
func ObliviousViewOf(l *Labeled, v, t int) *View {
	ball := l.G.Ball(v, t)
	sub, orig := l.InducedSubgraph(ball)
	return &View{Labeled: sub, Root: 0, Radius: t, Original: orig}
}

// StripIDs returns a copy of the view with identifiers removed.
func (v *View) StripIDs() *View {
	return &View{Labeled: v.Labeled, Root: v.Root, Radius: v.Radius, Original: v.Original, ws: v.ws}
}

// workspace returns the view's canonical-code workspace, creating one on
// first use for views not produced by a ViewExtractor.
func (v *View) workspace() *CodeWorkspace {
	if v.ws == nil {
		v.ws = NewCodeWorkspace()
	}
	return v.ws
}

// RawCode is a fingerprinted byte encoding of the view exactly as extracted:
// root, then the CSR degree/neighbour arrays, then the labels. Equal raw
// codes imply identical rooted labelled graphs (hence isomorphic views); the
// converse does not hold — isomorphic views extracted in different BFS
// discovery orders encode differently. Because extraction order is a
// deterministic function of the host structure, structurally repeated
// neighbourhoods (every node of a uniform cycle, interior grid nodes, table
// cells) produce byte-identical raw codes, which makes RawCode a sound and
// nearly-free first-level dedup key in front of the full canonical code: it
// is one linear pass over the view's flat arrays, no refinement search.
//
// The returned bytes alias workspace memory (a buffer distinct from
// CanonCode's, so a raw code survives one subsequent canonical-code
// computation); they are invalidated by the next RawCode on a view sharing
// the workspace. Identifiers are deliberately excluded — the engine only
// dedups identifier-free evaluations.
func (v *View) RawCode() Code {
	w := v.workspace()
	b := w.rawBuf[:0]
	b = binary.AppendUvarint(b, uint64(v.N()))
	b = binary.AppendUvarint(b, uint64(v.Root))
	g := v.G
	g.ensureStatic()
	for i := 0; i < g.N(); i++ {
		b = binary.AppendUvarint(b, uint64(g.offsets[i+1]-g.offsets[i]))
	}
	for _, u := range g.neighbors {
		b = binary.AppendUvarint(b, uint64(u))
	}
	for _, lab := range v.Labels {
		b = binary.AppendUvarint(b, uint64(len(lab)))
		b = append(b, lab...)
	}
	w.rawBuf = b
	return Code{Fingerprint: fingerprint64(b), Bytes: b}
}

// CanonCode is the fingerprinted canonical code of the view ignoring
// identifiers, computed by the allocation-free integer pipeline in the
// view's workspace. The returned bytes alias workspace memory: they are
// valid until the next code computation on a view sharing the workspace
// (for extractor-produced views, until the extractor's next At). Callers
// that retain the code must Clone it.
func (v *View) CanonCode() Code {
	return v.workspace().RootedCode(v.Labeled, v.Root)
}

// ObliviousCode is the canonical code of the view ignoring identifiers: two
// nodes receive the same ObliviousCode iff no Id-oblivious algorithm with this
// horizon can distinguish them. (Kept label-only so renaming IDs never changes
// the code.) The string is a copy of CanonCode's bytes; the legacy string
// encoder remains available as RootedCanonicalCode for differential testing.
func (v *View) ObliviousCode() string {
	return string(v.CanonCode().Bytes)
}

// Code is the canonical code of the view including identifiers: the full
// information available to an ID-using local algorithm. Identifier values are
// folded into the node labels, so equal codes mean equal inputs up to the
// irrelevant node indexing.
func (v *View) Code() string {
	if v.IDs == nil {
		return v.ObliviousCode()
	}
	labels := make([]Label, v.N())
	for i, lab := range v.Labels {
		labels[i] = lab + "#id=" + strconv.Itoa(v.IDs[i])
	}
	withIDs := &Labeled{G: v.G, Labels: labels}
	return string(v.workspace().RootedCode(withIDs, v.Root).Bytes)
}

// RootID returns the identifier of the view's root.
func (v *View) RootID() int {
	if v.IDs == nil {
		panic("graph: RootID on an oblivious view")
	}
	return v.IDs[v.Root]
}

// MaxIDInView returns the largest identifier visible in the view.
func (v *View) MaxIDInView() int {
	if v.IDs == nil {
		panic("graph: MaxIDInView on an oblivious view")
	}
	max := -1
	for _, id := range v.IDs {
		if id > max {
			max = id
		}
	}
	return max
}

// String renders a compact description.
func (v *View) String() string {
	kind := "oblivious"
	if v.IDs != nil {
		kind = "with-ids"
	}
	return fmt.Sprintf("View(%s, n=%d, r=%d, rootLabel=%q)", kind, v.N(), v.Radius, v.Labels[v.Root])
}

// AllObliviousViews returns the radius-t view of every node of l, without
// identifiers.
func AllObliviousViews(l *Labeled, t int) []*View {
	views := make([]*View, l.N())
	for v := 0; v < l.N(); v++ {
		views[v] = ObliviousViewOf(l, v, t)
	}
	return views
}

// ObliviousViewSet returns the set of distinct oblivious view codes occurring
// in l at radius t. Extraction and code computation run through a batched
// extractor with one shared workspace, so the sweep is allocation-free per
// node beyond the set itself.
func ObliviousViewSet(l *Labeled, t int) map[string]struct{} {
	set := make(map[string]struct{})
	x := NewViewExtractor(l)
	for v := 0; v < l.N(); v++ {
		set[string(x.At(v, t).CanonCode().Bytes)] = struct{}{}
	}
	return set
}

// CoverageFraction reports what fraction of the oblivious radius-t views of
// host occur in the union of the views of the covers. A fraction of 1 means
// every local neighbourhood of host already appears in some cover graph —
// the indistinguishability situation at the core of the paper's lower bounds.
func CoverageFraction(host *Labeled, covers []*Labeled, t int) float64 {
	if host.N() == 0 {
		return 1
	}
	available := make(map[string]struct{})
	for _, c := range covers {
		for code := range ObliviousViewSet(c, t) {
			available[code] = struct{}{}
		}
	}
	covered := 0
	x := NewViewExtractor(host)
	for v := 0; v < host.N(); v++ {
		if _, ok := available[string(x.At(v, t).CanonCode().Bytes)]; ok {
			covered++
		}
	}
	return float64(covered) / float64(host.N())
}
