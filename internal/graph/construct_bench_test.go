package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the CSR substrate's scale claims with numbers: O(n+m)
// builder construction vs the seed's per-edge sorted insertion, geometric
// skip sampling vs the O(n²) all-pairs random generator, and cache-linear
// BFS / view extraction at n = 10⁵–10⁶.

// legacyAdjGraph replicates the seed representation exactly — per-node
// []int adjacency with sorted insertion — as the differential baseline for
// the construction benchmarks. (The production compatibility mutator
// Graph.AddEdge now rebuilds flat arrays and is deliberately slow; comparing
// against it would overstate the builder's win.)
type legacyAdjGraph struct {
	adj [][]int
}

func newLegacyAdj(n int) *legacyAdjGraph { return &legacyAdjGraph{adj: make([][]int, n)} }

func (g *legacyAdjGraph) addEdge(u, v int) {
	nbrs := g.adj[u]
	i := sort.SearchInts(nbrs, v)
	if i < len(nbrs) && nbrs[i] == v {
		return
	}
	g.adj[u] = legacyInsert(nbrs, i, v)
	nbrs = g.adj[v]
	i = sort.SearchInts(nbrs, u)
	g.adj[v] = legacyInsert(nbrs, i, u)
}

func legacyInsert(s []int, i, v int) []int {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// sparseEdges is a deterministic sparse edge list (spanning tree + extra
// chords, ~4n edges) used by the construction benchmarks.
func sparseEdges(n int) [][2]int {
	rng := rand.New(rand.NewSource(11))
	edges := make([][2]int, 0, 4*n)
	for v := 1; v < n; v++ {
		edges = append(edges, [2]int{v, rng.Intn(v)})
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			edges = append(edges, [2]int{u, v})
		}
	}
	return edges
}

// BenchmarkConstructSparse compares builder freeze against the seed's
// sorted-insertion path on the same sparse edge list. The legacy path is
// benchmarked only at n=10⁵ (at 10⁶ it is too slow to iterate).
func BenchmarkConstructSparse(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		edges := sparseEdges(n)
		b.Run(fmt.Sprintf("n=%d/builder", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				bl := NewBuilderHint(n, len(edges))
				for _, e := range edges {
					bl.AddEdge(e[0], e[1])
				}
				if g := bl.Build(); g.N() != n {
					b.Fatal("bad build")
				}
			}
		})
		if n > 100_000 {
			continue
		}
		b.Run(fmt.Sprintf("n=%d/seed-addedge", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := newLegacyAdj(n)
				for _, e := range edges {
					g.addEdge(e[0], e[1])
				}
			}
		})
	}
}

// BenchmarkConstructCycle measures generator end-to-end cost (builder path)
// against the seed-representation replay of the same edges.
func BenchmarkConstructCycle(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d/builder", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if g := Cycle(n); g.M() != n {
					b.Fatal("bad cycle")
				}
			}
		})
		if n > 100_000 {
			continue
		}
		b.Run(fmt.Sprintf("n=%d/seed-addedge", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g := newLegacyAdj(n)
				for v := 0; v+1 < n; v++ {
					g.addEdge(v, v+1)
				}
				g.addEdge(n-1, 0)
			}
		})
	}
}

// BenchmarkRandomGenerator pins the skip-sampling Random generator at
// production scale (the seed's all-pairs loop is O(n²) and unusable here;
// its cost is visible in the n=2000 case it can still run).
func BenchmarkRandomGenerator(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		p := 4.0 / float64(n) // ~2n extra half-edges: sparse regime
		b.Run(fmt.Sprintf("skip/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Random(n, p, int64(i))
			}
		})
	}
	b.Run("seed-allpairs/n=2000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			legacyRandom(2000, 4.0/2000, int64(i))
		}
	})
	b.Run("skip/n=2000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Random(2000, 4.0/2000, int64(i))
		}
	})
}

// legacyRandom replays the seed's O(n²) all-pairs generator on the legacy
// representation, as the baseline for BenchmarkRandomGenerator.
func legacyRandom(n int, p float64, seed int64) *legacyAdjGraph {
	rng := rand.New(rand.NewSource(seed))
	g := newLegacyAdj(n)
	for v := 1; v < n; v++ {
		g.addEdge(v, rng.Intn(v))
	}
	hasEdge := func(u, v int) bool {
		nbrs := g.adj[u]
		i := sort.SearchInts(nbrs, v)
		return i < len(nbrs) && nbrs[i] == v
	}
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !hasEdge(u, v) && rng.Float64() < p {
				g.addEdge(u, v)
			}
		}
	}
	return g
}

// BenchmarkBFSLarge measures full-graph BFS over the flat CSR arrays at
// n=10⁶ (cycle: worst-case pointer-chasing depth; sparse random: realistic
// branching).
func BenchmarkBFSLarge(b *testing.B) {
	cycle := Cycle(1_000_000)
	sparse := FromEdges(1_000_000, sparseEdges(1_000_000))
	b.Run("cycle/n=1000000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if d := cycle.BFSFrom(0); d[500_000] != 500_000 {
				b.Fatal("bad BFS")
			}
		}
	})
	b.Run("sparse/n=1000000", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cycle := sparse.BFSFrom(0)
			_ = cycle
		}
	})
}

// BenchmarkExtractLarge sweeps the batched extractor over a 10⁶-node host:
// per-view cost must stay flat (allocation-free) as n grows.
func BenchmarkExtractLarge(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		l := UniformlyLabeled(Cycle(n), "c")
		x := NewViewExtractor(l)
		b.Run(fmt.Sprintf("cycle/n=%d/radius=3", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				v := (i * 7919) % n
				if view := x.At(v, 3); view.N() != 7 {
					b.Fatal("bad view")
				}
			}
		})
	}
	sparse := UniformlyLabeled(FromEdges(1_000_000, sparseEdges(1_000_000)), "s")
	xs := NewViewExtractor(sparse)
	b.Run("sparse/n=1000000/radius=2", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			v := (i * 7919) % 1_000_000
			xs.At(v, 2)
		}
	})
}
