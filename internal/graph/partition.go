package graph

import (
	"fmt"
	"sort"
)

// This file is the graph half of the sharded message-passing runtime: a
// Partition splits a host CSR into p shards and answers the one question the
// halo-exchange protocol needs — which nodes sit within distance t of a
// shard boundary. Everything here is strategy + arithmetic over the existing
// flat arrays; no per-node maps, and the boundary-ball computation runs on
// the same epoch-stamped Traversal scratch as the whole-graph analyses.

// PartitionStrategy selects how NewPartition assigns nodes to shards.
type PartitionStrategy int

const (
	// PartitionBFSBlocked assigns nodes to shards in blocks of BFS discovery
	// order (restarting at the smallest unvisited node per component). On
	// general and random hosts this keeps each shard a locally-connected blob,
	// which is what minimises the cross-shard boundary the halo exchange pays
	// for.
	PartitionBFSBlocked PartitionStrategy = iota
	// PartitionLevelContiguous assigns contiguous node-id ranges to shards.
	// The layered-tree and pyramid families number their nodes in level order
	// (tree.LayeredTree.LevelOffset(y) = 2^y - 1, tree.Pyramid's geometric
	// levelOffset), so contiguous id blocks are level-contiguous cuts: each
	// shard owns a band of whole levels plus at most two partial ones, and
	// cross-shard edges concentrate on the two cut frontiers.
	PartitionLevelContiguous
)

// String names the strategy for logs and test output.
func (s PartitionStrategy) String() string {
	switch s {
	case PartitionBFSBlocked:
		return "bfs-blocked"
	case PartitionLevelContiguous:
		return "level-contiguous"
	default:
		return fmt.Sprintf("PartitionStrategy(%d)", int(s))
	}
}

// Partition maps the nodes of a host graph onto p shards. It is immutable
// after construction; the accessors return internal slices that callers must
// not mutate. A Partition is safe for concurrent reads, but HaloFrontier and
// Halo use internal scratch and must not run concurrently with each other.
type Partition struct {
	g     *Graph
	p     int
	shard []int32   // node -> owning shard
	owned [][]int32 // shard -> owned nodes, ascending
	tr    Traversal // scratch for the boundary-ball BFS
}

// NewPartition splits g into p shards under the given strategy. The shard
// count is clamped to [1, max(1, g.N())] so every shard is nonempty whenever
// the host has nodes; the shards always partition [0, g.N()) exactly.
func NewPartition(g *Graph, p int, strategy PartitionStrategy) *Partition {
	if g == nil {
		panic("graph: NewPartition on nil host")
	}
	n := g.N()
	if p < 1 {
		p = 1
	}
	if n > 0 && p > n {
		p = n
	}
	pt := &Partition{g: g, p: p, shard: make([]int32, n), owned: make([][]int32, p)}
	switch strategy {
	case PartitionLevelContiguous:
		pt.assignContiguous(n)
	case PartitionBFSBlocked:
		pt.assignBFSBlocked(n)
	default:
		panic(fmt.Sprintf("graph: unknown partition strategy %d", int(strategy)))
	}
	return pt
}

// assignContiguous gives shard s the id range [s*n/p, (s+1)*n/p).
func (pt *Partition) assignContiguous(n int) {
	for s := 0; s < pt.p; s++ {
		lo, hi := s*n/pt.p, (s+1)*n/pt.p
		block := make([]int32, 0, hi-lo)
		for v := lo; v < hi; v++ {
			pt.shard[v] = int32(s)
			block = append(block, int32(v))
		}
		pt.owned[s] = block
	}
}

// assignBFSBlocked cuts the BFS discovery order (restarted per component at
// the smallest unvisited node) into p balanced blocks, then sorts each
// shard's nodes ascending so Owned rows stay monotone in host-id order.
func (pt *Partition) assignBFSBlocked(n int) {
	order := make([]int32, 0, n)
	pt.tr.next(n)
	e := pt.tr.epoch
	q := pt.tr.queue[:0]
	for start := 0; start < n; start++ {
		if pt.tr.stamp[start] == e {
			continue
		}
		pt.tr.stamp[start] = e
		q = append(q[:0], int32(start))
		order = append(order, int32(start))
		for head := 0; head < len(q); head++ {
			for _, u := range pt.g.row(int(q[head])) {
				if pt.tr.stamp[u] != e {
					pt.tr.stamp[u] = e
					q = append(q, u)
					order = append(order, u)
				}
			}
		}
	}
	pt.tr.queue = q
	for s := 0; s < pt.p; s++ {
		lo, hi := s*n/pt.p, (s+1)*n/pt.p
		block := append([]int32(nil), order[lo:hi]...)
		sort.Slice(block, func(i, k int) bool { return block[i] < block[k] })
		for _, v := range block {
			pt.shard[v] = int32(s)
		}
		pt.owned[s] = block
	}
}

// Host returns the partitioned graph.
func (pt *Partition) Host() *Graph { return pt.g }

// Shards returns the shard count p.
func (pt *Partition) Shards() int { return pt.p }

// ShardOf returns the shard owning node v.
func (pt *Partition) ShardOf(v int) int {
	pt.g.check(v)
	return int(pt.shard[v])
}

// Owned returns shard s's nodes in ascending host-id order. The slice is
// internal; callers must not mutate it.
func (pt *Partition) Owned(s int) []int32 { return pt.owned[s] }

// SubCSR materialises shard s's rows of the host CSR: offsets has
// len(Owned(s))+1 entries and neighbors holds, for the i-th owned node, its
// full host adjacency row (host ids, ascending) at
// neighbors[offsets[i]:offsets[i+1]]. Rows are copied verbatim, so the
// multiset union of every shard's rows is exactly the host's directed edge
// multiset — each undirected edge appears once per endpoint, in the rows of
// the endpoints' owning shards.
func (pt *Partition) SubCSR(s int) (offsets, neighbors []int32) {
	own := pt.owned[s]
	offsets = make([]int32, len(own)+1)
	total := 0
	for i, v := range own {
		total += len(pt.g.row(int(v)))
		offsets[i+1] = int32(total)
	}
	neighbors = make([]int32, 0, total)
	for _, v := range own {
		neighbors = append(neighbors, pt.g.row(int(v))...)
	}
	return offsets, neighbors
}

// Boundary returns shard s's boundary: its owned endpoints of cross-shard
// edges, ascending. Allocates the result; Owned order makes it sorted.
func (pt *Partition) Boundary(s int) []int32 {
	var out []int32
	for _, v := range pt.owned[s] {
		for _, u := range pt.g.row(int(v)) {
			if pt.shard[u] != int32(s) {
				out = append(out, v)
				break
			}
		}
	}
	return out
}

// Halo returns shard s's depth-t boundary ball as parallel slices: every
// node within distance t of Boundary(s), ascending by host id, with depth[i]
// the BFS distance of nodes[i] from the boundary (0 for the boundary
// itself). The owned members (depth <= t-1 plus the boundary) are the
// shard's rim — the nodes whose radius-t views can leave the shard; the
// unowned members are exactly the ghosts the shard must import to complete
// those views: for any unowned u, dist(u, Owned(s)) = dist(u, Boundary(s)),
// since a shortest path into the shard enters through a boundary node.
// Both slices are freshly allocated.
func (pt *Partition) Halo(s, t int) (nodes, depth []int32) {
	if t < 0 {
		panic("graph: negative halo depth")
	}
	sources := pt.Boundary(s)
	if len(sources) == 0 {
		return nil, nil
	}
	tr := &pt.tr
	tr.next(pt.g.N())
	e := tr.epoch
	q := tr.queue[:0]
	for _, v := range sources {
		tr.stamp[v] = e
		tr.dist[v] = 0
		q = append(q, v)
	}
	for head := 0; head < len(q); head++ {
		w := q[head]
		dw := tr.dist[w]
		if int(dw) == t {
			break // FIFO: everything still queued is already at depth t
		}
		for _, u := range pt.g.row(int(w)) {
			if tr.stamp[u] != e {
				tr.stamp[u] = e
				tr.dist[u] = dw + 1
				q = append(q, u)
			}
		}
	}
	nodes = append([]int32(nil), q...)
	tr.queue = q
	sort.Slice(nodes, func(i, k int) bool { return nodes[i] < nodes[k] })
	depth = make([]int32, len(nodes))
	for i, v := range nodes {
		depth[i] = tr.dist[v]
	}
	return nodes, depth
}

// HaloFrontier returns, for each shard, its depth-t boundary ball: the
// ascending list of nodes (owned or not) within distance t of that shard's
// owned endpoints of cross-shard edges — Halo's node column for every shard.
func (pt *Partition) HaloFrontier(t int) [][]int32 {
	out := make([][]int32, pt.p)
	for s := 0; s < pt.p; s++ {
		nodes, _ := pt.Halo(s, t)
		out[s] = nodes
	}
	return out
}
