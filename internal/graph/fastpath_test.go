package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

// Differential suite for the shape-specialised fast paths (fastpath.go). The
// fast codes live in a byte namespace disjoint from the generic pipeline's,
// so the pinned property is the one every cache depends on: over every
// differential family, the equivalence induced by the routed codes (fast
// where a shape matches, generic otherwise) coincides exactly with the
// generic pipeline's, the legacy string canon's, and — on small inputs — the
// brute-force rooted-isomorphism oracle. On top of that, shape detection must
// be isomorphism-invariant (relabelled twins take the same path and produce
// byte-identical fast codes) and must never fire on non-path/cycle/tree
// inputs.

// fastPathFamily builds the deg ≤ 4 corpus the fast paths are specialised
// for: rooted paths (including path segments, i.e. radius-t views of long
// paths and cycle nodes), full cycles, random deg ≤ 4 trees, and extracted
// views of the Section 3 host families (cycles, grids standing in for the
// G(M,r) / pyramid shapes, complete binary trees standing in for T_r). Views
// are returned rooted at their extraction centre.
func fastPathFamily(seed int64) []rootedInput {
	rng := rand.New(rand.NewSource(seed))
	ab := []Label{"a", "b"}
	n := 4 + rng.Intn(10)
	var fam []rootedInput
	add := func(l *Labeled, root int) {
		fam = append(fam, rootedInput{l, root})
	}
	add(UniformlyLabeled(Path(n), "p"), rng.Intn(n))
	add(RandomLabels(Path(n), ab, seed), 0)
	add(RandomLabels(Path(n), ab, seed+1), n-1)
	add(UniformlyLabeled(Cycle(n), "c"), rng.Intn(n))
	add(RandomLabels(Cycle(n), ab, seed+2), rng.Intn(n))
	add(randomBoundedTree(n, 4, rng, ab), rng.Intn(n))
	add(randomBoundedTree(n, 3, rng, []Label{"x"}), 0)
	add(RandomLabels(CompleteBinaryTree(3), ab, seed+3), rng.Intn(15))
	// Views: path segments of a cycle (radius below half the girth) and tree
	// views of a binary tree; grid views exercise the generic fallback in the
	// same corpus.
	host := RandomLabels(Cycle(3*n), ab, seed+4)
	v := ObliviousViewOf(host, rng.Intn(3*n), 1+rng.Intn(3))
	add(v.Labeled, v.Root)
	trHost := RandomLabels(CompleteBinaryTree(4), ab, seed+5)
	v = ObliviousViewOf(trHost, rng.Intn(trHost.N()), 1+rng.Intn(2))
	add(v.Labeled, v.Root)
	gmHost := RandomLabels(Grid(4, 5), ab, seed+6)
	v = ObliviousViewOf(gmHost, rng.Intn(20), 1+rng.Intn(2))
	add(v.Labeled, v.Root)
	return fam
}

type rootedInput struct {
	l    *Labeled
	root int
}

// randomBoundedTree returns a random labelled tree with maximum degree ≤ d.
func randomBoundedTree(n, d int, rng *rand.Rand, alphabet []Label) *Labeled {
	g := New(n)
	deg := make([]int, n)
	for v := 1; v < n; v++ {
		u := rng.Intn(v)
		for deg[u] >= d-1 { // leave room for v's own parent edge
			u = rng.Intn(v)
		}
		g.AddEdge(v, u)
		deg[u]++
		deg[v]++
	}
	labels := make([]Label, n)
	for v := range labels {
		labels[v] = alphabet[rng.Intn(len(alphabet))]
	}
	return NewLabeled(g, labels)
}

// takesFastPath reports whether the routed code of the input came from a
// shape fast path (fast codes open with the 0x00 namespace prefix; generic
// codes of non-empty graphs open with uvarint(n) ≥ 0x01).
func takesFastPath(c Code) bool {
	return len(c.Bytes) >= 2 && c.Bytes[0] == fastCodePrefix
}

// TestFastPathTakenOnTargetShapes pins that the shapes the overhaul targets
// actually route through the fast paths, with the expected per-shape tag —
// otherwise the miss-path speedup silently evaporates.
func TestFastPathTakenOnTargetShapes(t *testing.T) {
	w := NewCodeWorkspace()
	rng := rand.New(rand.NewSource(11))
	cases := []struct {
		name string
		l    *Labeled
		root int
		tag  byte
	}{
		{"path-end", UniformlyLabeled(Path(9), "p"), 0, fastTagPath},
		{"path-mid", RandomLabels(Path(9), []Label{"a", "b"}, 1), 4, fastTagPath},
		{"single-node", UniformlyLabeled(New(1), "s"), 0, fastTagPath},
		{"cycle", RandomLabels(Cycle(8), []Label{"a", "b"}, 2), 3, fastTagCycle},
		{"cycle-segment-view", func() *Labeled {
			v := ObliviousViewOf(UniformlyLabeled(Cycle(20), "c"), 7, 3)
			return v.Labeled
		}(), 0, fastTagPath},
		{"deg4-tree", randomBoundedTree(12, 4, rng, []Label{"a", "b"}), 0, fastTagTree},
		{"binary-tree", UniformlyLabeled(CompleteBinaryTree(3), "t"), 0, fastTagTree},
	}
	for _, tc := range cases {
		c := w.RootedCode(tc.l, tc.root)
		if !takesFastPath(c) {
			t.Errorf("%s: expected a fast-path code, got generic (first byte %#x)", tc.name, c.Bytes[0])
			continue
		}
		if c.Bytes[1] != tc.tag {
			t.Errorf("%s: expected tag %q, got %q", tc.name, tc.tag, c.Bytes[1])
		}
	}
}

// TestFastPathEquivalenceMatchesGenericAndLegacy is the core differential
// property: over all pairs of the deg ≤ 4 corpus (plus relabelled twins, so
// isomorphic pairs occur), the routed pipeline, the forced-generic pipeline
// and the legacy string canon induce the same equivalence.
func TestFastPathEquivalenceMatchesGenericAndLegacy(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fam := fastPathFamily(seed)
		for _, in := range fam[:4] {
			perm := rng.Perm(in.l.N())
			fam = append(fam, rootedInput{in.l.Relabel(perm), perm[in.root]})
		}
		w := NewCodeWorkspace()
		wg := NewCodeWorkspace()
		for i, a := range fam {
			routedA := w.RootedCode(a.l, a.root).Clone()
			genericA := wg.genericCode(a.l, a.root).Clone()
			legacyA := RootedCanonicalCode(a.l, a.root)
			for _, b := range fam[i:] {
				routedEq := routedA.Equal(w.RootedCode(b.l, b.root))
				genericEq := genericA.Equal(wg.genericCode(b.l, b.root))
				legacyEq := legacyA == RootedCanonicalCode(b.l, b.root)
				if routedEq != genericEq || genericEq != legacyEq {
					t.Logf("seed=%d: divergence routed=%v generic=%v legacy=%v on %v/%d vs %v/%d",
						seed, routedEq, genericEq, legacyEq, a.l, a.root, b.l, b.root)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestFastCodeByteIdenticalAcrossRelabelings pins the two invariance halves
// of cache soundness separately: an isomorphic relabelling must (1) take the
// same path — fast or generic — and (2) when fast, produce byte-identical
// code from a fresh workspace.
func TestFastCodeByteIdenticalAcrossRelabelings(t *testing.T) {
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, in := range fastPathFamily(seed) {
			if in.l.N() == 0 {
				continue
			}
			perm := rng.Perm(in.l.N())
			twin := rootedInput{in.l.Relabel(perm), perm[in.root]}
			a := NewCodeWorkspace().RootedCode(in.l, in.root).Clone()
			b := NewCodeWorkspace().RootedCode(twin.l, twin.root).Clone()
			if takesFastPath(a) != takesFastPath(b) {
				t.Logf("seed=%d: detection not isomorphism-invariant on %v", seed, in.l)
				return false
			}
			if !bytes.Equal(a.Bytes, b.Bytes) || a.Fingerprint != b.Fingerprint {
				t.Logf("seed=%d: relabelled twin code differs on %v root %d", seed, in.l, in.root)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestFastPathAgainstBruteForce cross-checks the routed codes against the
// exponential oracle on small fast-path shapes, independent of both reference
// pipelines.
func TestFastPathAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ab := []Label{"a", "b"}
	var fam []rootedInput
	for i := 0; i < 6; i++ {
		fam = append(fam,
			rootedInput{RandomLabels(Path(5), ab, int64(i)), rng.Intn(5)},
			rootedInput{RandomLabels(Cycle(5), ab, int64(i+20)), rng.Intn(5)},
			rootedInput{randomBoundedTree(6, 4, rng, ab), rng.Intn(6)},
		)
	}
	w := NewCodeWorkspace()
	for i, a := range fam {
		ca := w.RootedCode(a.l, a.root).Clone()
		for _, b := range fam[i:] {
			want := BruteForceRootedIsomorphic(a.l, a.root, b.l, b.root)
			if got := ca.Equal(w.RootedCode(b.l, b.root)); got != want {
				t.Fatalf("code equality %v, brute force %v on pair %d", got, want, i)
			}
		}
	}
}

// TestShapeDetectorRejectsNonTargets is the fuzz-style detector test: inputs
// that are not a rooted path, single cycle or deg ≤ 4 tree — dense random
// graphs, grids/tori, stars above the degree bound, disconnected m = n-1
// traps (triangle plus isolated nodes), 2-regular unions of two cycles —
// must never take a fast path.
func TestShapeDetectorRejectsNonTargets(t *testing.T) {
	w := NewCodeWorkspace()

	twoCycles := New(8)
	for i := 0; i < 4; i++ {
		twoCycles.AddEdge(i, (i+1)%4)
		twoCycles.AddEdge(4+i, 4+(i+1)%4)
	}
	// m = n-1 without being a tree: a triangle plus two isolated nodes.
	triangleTrap := New(5)
	triangleTrap.AddEdge(0, 1)
	triangleTrap.AddEdge(1, 2)
	triangleTrap.AddEdge(2, 0)
	// m = n-1 with all degrees ≤ 2 and still not a path: a triangle plus a
	// detached 3-node path (n = 6, m = 5) — the exact trap the arm walk's
	// visit count must catch.
	degTwoTrap := New(6)
	degTwoTrap.AddEdge(0, 1)
	degTwoTrap.AddEdge(1, 2)
	degTwoTrap.AddEdge(2, 0)
	degTwoTrap.AddEdge(3, 4)
	degTwoTrap.AddEdge(4, 5)

	fixed := []*Labeled{
		UniformlyLabeled(Star(6), "s"),      // degree 5 root
		UniformlyLabeled(Grid(3, 3), "g"),   // cycles + deg > 2
		UniformlyLabeled(Torus(3, 3), "t"),  // 4-regular with cycles
		UniformlyLabeled(Complete(5), "k"),  // dense
		UniformlyLabeled(twoCycles, "c"),    // 2-regular, two components
		UniformlyLabeled(triangleTrap, "x"), // m = n-1, disconnected, cyclic
		UniformlyLabeled(degTwoTrap, "y"),   // m = n-1, deg ≤ 2, disconnected, cyclic
		RandomLabels(Random(10, 0.5, 3), []Label{"a"}, 4),
	}
	for _, l := range fixed {
		for root := 0; root < l.N(); root++ {
			if _, ok := w.fastCode(l, root, nil); ok {
				t.Errorf("fast path fired on non-target %v root %d", l, root)
			}
		}
	}

	// Fuzz arm: random graphs; whenever the detector does fire, the input
	// must genuinely be a path / cycle / deg ≤ 4 tree rooted anywhere, which
	// we check against first principles (connectivity via Ball, edge count,
	// degree bound).
	property := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		l := RandomLabels(Random(n, 0.25+rng.Float64()/2, seed), []Label{"a", "b"}, seed+9)
		root := rng.Intn(n)
		_, ok := w.fastCode(l, root, nil)
		g := l.G
		connected := len(g.Ball(root, n)) == n
		isTree := connected && g.M() == n-1 && g.MaxDegree() <= 4
		isCycle := connected && g.M() == n && g.MaxDegree() == 2
		if ok && !isTree && !isCycle {
			t.Logf("seed=%d: detector fired on n=%d m=%d maxdeg=%d connected=%v",
				seed, n, g.M(), g.MaxDegree(), connected)
			return false
		}
		if !ok && (isTree || isCycle) && n <= fastCodeMaxNodes {
			t.Logf("seed=%d: detector missed a genuine target n=%d m=%d", seed, n, g.M())
			return false
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestFastPathSizeCap pins the fastCodeMaxNodes gate: a path one node above
// the cap must take the generic pipeline (the AHU arena and the closed-form
// walks are view-sized tools, not host-graph tools).
func TestFastPathSizeCap(t *testing.T) {
	w := NewCodeWorkspace()
	atCap := w.RootedCode(UniformlyLabeled(Path(fastCodeMaxNodes), "p"), 0).Clone()
	if !takesFastPath(atCap) {
		t.Errorf("path at the size cap should take the fast path")
	}
	above := w.RootedCode(UniformlyLabeled(Path(fastCodeMaxNodes+1), "p"), 0).Clone()
	if takesFastPath(above) {
		t.Errorf("path above the size cap must take the generic pipeline")
	}
}

// TestFingerprintUnrolledMatchesScalar pins the 8-byte-word FNV-1a loop
// bit-identical to the byte-at-a-time reference on every length mod 8 and on
// random contents — the satellite fix's only correctness requirement.
func TestFingerprintUnrolledMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for length := 0; length <= 64; length++ {
		b := make([]byte, length)
		for trial := 0; trial < 8; trial++ {
			rng.Read(b)
			if got, want := fingerprint64(b), fingerprint64Scalar(b); got != want {
				t.Fatalf("len=%d trial=%d: unrolled %#x != scalar %#x", length, trial, got, want)
			}
		}
	}
	property := func(b []byte) bool {
		return fingerprint64(b) == fingerprint64Scalar(b)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
