package graph

import (
	"math/rand"
	"sync"
	"testing"
)

// Scratch-vs-fresh parity for the six traversal entry points: one Traversal
// reused across every host (exercising epoch reuse and scratch growth) must
// agree with naive per-call reference implementations, and with the pooled
// Graph wrappers, on every graph of a randomized family.

// refBFSFrom is the pre-scratch allocating BFS, kept as the reference.
func refBFSFrom(g *Graph, source int) []int {
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.row(v) {
			if dist[u] == -1 {
				dist[u] = dist[v] + 1
				queue = append(queue, int(u))
			}
		}
	}
	return dist
}

// refBall is the pre-scratch map-backed Ball, kept as the reference for
// content and order.
func refBall(g *Graph, v, t int) []int {
	dist := map[int]int{v: 0}
	ball := []int{v}
	frontier := []int{v}
	for d := 0; d < t && len(frontier) > 0; d++ {
		var next []int
		for _, w := range frontier {
			for _, u := range g.row(w) {
				if _, seen := dist[int(u)]; !seen {
					dist[int(u)] = d + 1
					next = append(next, int(u))
					ball = append(ball, int(u))
				}
			}
		}
		frontier = next
	}
	return ball
}

func traversalHosts() []*Graph {
	rng := rand.New(rand.NewSource(7))
	hosts := []*Graph{
		New(0),
		New(1),
		New(5), // isolated nodes
		Path(9),
		Cycle(12),
		Star(7),
		Grid(4, 5),
		CompleteBinaryTree(4),
	}
	// Random graphs across densities, plus multi-component variants.
	for i := 0; i < 12; i++ {
		n := 2 + rng.Intn(40)
		hosts = append(hosts, Random(n, rng.Float64()*0.2, rng.Int63()))
		// Two random components glued into one graph without cross edges.
		a := Random(1+rng.Intn(15), 0.2, rng.Int63())
		bG := Random(1+rng.Intn(15), 0.1, rng.Int63())
		b := NewBuilderHint(a.N()+bG.N(), a.M()+bG.M())
		b.AddGraphAt(a, 0)
		b.AddGraphAt(bG, a.N())
		hosts = append(hosts, b.Build())
	}
	return hosts
}

func TestTraversalParity(t *testing.T) {
	tr := NewTraversal() // one scratch across every host and entry point
	for gi, g := range traversalHosts() {
		n := g.N()
		for _, source := range []int{0, n / 2, n - 1} {
			if source < 0 || source >= n {
				continue
			}
			want := refBFSFrom(g, source)
			got32 := tr.BFSFrom(g, source)
			wrapped := g.BFSFrom(source)
			if len(got32) != len(want) {
				t.Fatalf("host %d: BFSFrom length %d, want %d", gi, len(got32), len(want))
			}
			for v := range want {
				if int(got32[v]) != want[v] || wrapped[v] != want[v] {
					t.Fatalf("host %d: BFSFrom(%d) dist[%d] scratch=%d wrapper=%d want=%d",
						gi, source, v, got32[v], wrapped[v], want[v])
				}
			}
			for radius := 0; radius <= 4; radius++ {
				want := refBall(g, source, radius)
				got := tr.Ball(g, source, radius)
				wrapped := g.Ball(source, radius)
				if len(got) != len(want) || len(wrapped) != len(want) {
					t.Fatalf("host %d: Ball(%d,%d) sizes %d/%d, want %d",
						gi, source, radius, len(got), len(wrapped), len(want))
				}
				for i := range want {
					if got[i] != want[i] || wrapped[i] != want[i] {
						t.Fatalf("host %d: Ball(%d,%d)[%d] scratch=%d wrapper=%d want=%d",
							gi, source, radius, i, got[i], wrapped[i], want[i])
					}
				}
			}
			for _, target := range []int{0, n - 1, n / 3} {
				if target < 0 || target >= n {
					continue
				}
				want := refBFSFrom(g, source)[target]
				if got := tr.Distance(g, source, target); got != want {
					t.Fatalf("host %d: Distance(%d,%d) = %d, want %d", gi, source, target, got, want)
				}
			}
		}

		// Connectivity / components from the same distances.
		wantConnected := true
		var wantComponents [][]int
		{
			comp := make([]int, n)
			for i := range comp {
				comp[i] = -1
			}
			for start := 0; start < n; start++ {
				if comp[start] != -1 {
					continue
				}
				id := len(wantComponents)
				var nodes []int
				for v, d := range refBFSFrom(g, start) {
					if d != -1 {
						comp[v] = id
						nodes = append(nodes, v)
					}
				}
				wantComponents = append(wantComponents, nodes)
			}
			wantConnected = n == 0 || len(wantComponents) == 1
		}
		if got := tr.IsConnected(g); got != wantConnected {
			t.Fatalf("host %d: IsConnected scratch = %v, want %v", gi, got, wantConnected)
		}
		if got := g.IsConnected(); got != wantConnected {
			t.Fatalf("host %d: IsConnected wrapper = %v, want %v", gi, got, wantConnected)
		}
		ids, count := tr.ComponentIDs(g)
		if count != len(wantComponents) {
			t.Fatalf("host %d: %d components, want %d", gi, count, len(wantComponents))
		}
		for id, nodes := range wantComponents {
			for _, v := range nodes {
				if int(ids[v]) != id {
					t.Fatalf("host %d: node %d in component %d, want %d", gi, v, ids[v], id)
				}
			}
		}
		gotComponents := g.ConnectedComponents()
		if len(gotComponents) != len(wantComponents) {
			t.Fatalf("host %d: wrapper %d components, want %d", gi, len(gotComponents), len(wantComponents))
		}
		for id := range wantComponents {
			if len(gotComponents[id]) != len(wantComponents[id]) {
				t.Fatalf("host %d: component %d size %d, want %d",
					gi, id, len(gotComponents[id]), len(wantComponents[id]))
			}
			for i := range wantComponents[id] {
				if gotComponents[id][i] != wantComponents[id][i] {
					t.Fatalf("host %d: component %d entry %d = %d, want %d",
						gi, id, i, gotComponents[id][i], wantComponents[id][i])
				}
			}
		}

		// Diameter reference: max eccentricity over reference BFS.
		wantDiameter := -1
		if n > 0 && wantConnected {
			wantDiameter = 0
			for v := 0; v < n; v++ {
				for _, d := range refBFSFrom(g, v) {
					if d > wantDiameter {
						wantDiameter = d
					}
				}
			}
		}
		if got := tr.Diameter(g); got != wantDiameter {
			t.Fatalf("host %d: Diameter scratch = %d, want %d", gi, got, wantDiameter)
		}
		if got := g.Diameter(); got != wantDiameter {
			t.Fatalf("host %d: Diameter wrapper = %d, want %d", gi, got, wantDiameter)
		}

		// Cycle reference: a graph has a cycle iff some component has at
		// least as many edges as nodes.
		wantCycle := false
		for _, nodes := range wantComponents {
			edges := 0
			for _, v := range nodes {
				edges += g.Degree(v)
			}
			if edges/2 >= len(nodes) {
				wantCycle = true
			}
		}
		if got := tr.HasCycle(g); got != wantCycle {
			t.Fatalf("host %d: HasCycle scratch = %v, want %v", gi, got, wantCycle)
		}
		if got := g.HasCycle(); got != wantCycle {
			t.Fatalf("host %d: HasCycle wrapper = %v, want %v", gi, got, wantCycle)
		}
	}
}

// TestTraversalWrapperConcurrency hammers the pooled wrappers from many
// goroutines; -race verifies that pool recycling never shares live scratch.
func TestTraversalWrapperConcurrency(t *testing.T) {
	g := Random(400, 0.01, 3)
	want := refBFSFrom(g, 0)
	wantBall := refBall(g, 5, 3)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				dist := g.BFSFrom(0)
				for v := range want {
					if dist[v] != want[v] {
						t.Errorf("concurrent BFSFrom mismatch at %d", v)
						return
					}
				}
				ball := g.Ball(5, 3)
				for i := range wantBall {
					if ball[i] != wantBall[i] {
						t.Errorf("concurrent Ball mismatch at %d", i)
						return
					}
				}
				g.IsConnected()
				g.ConnectedComponents()
				g.HasCycle()
			}
		}()
	}
	wg.Wait()
}

// TestTraversalEpochWrap forces the epoch counter over its wrap boundary
// and checks stamped traversals stay correct afterwards.
func TestTraversalEpochWrap(t *testing.T) {
	tr := NewTraversal()
	g := Cycle(8)
	tr.Ball(g, 0, 1) // grow scratch to n=8
	tr.epoch = 1<<31 - 3
	for i := 0; i < 6; i++ {
		ball := tr.Ball(g, 0, 1)
		if len(ball) != 3 || ball[0] != 0 {
			t.Fatalf("ball wrong after epoch wrap: %v", ball)
		}
		if d := tr.Distance(g, 0, 4); d != 4 {
			t.Fatalf("distance wrong after epoch wrap: %d", d)
		}
	}
	if tr.epoch >= 1<<31-1 || tr.epoch <= 0 {
		t.Fatalf("epoch did not wrap safely: %d", tr.epoch)
	}
}
