package halting

import (
	"testing"

	"repro/internal/turing"
)

// pyramidParams: Counter(2) has runtime 3, table side 4 = 2^2.
func pyramidParams(limit int) Params {
	return Params{Machine: turing.Counter(2, '0'), R: 1, MaxSteps: 100, FragmentLimit: limit}
}

func TestBuildPyramidalG(t *testing.T) {
	p := pyramidParams(30)
	asm, err := p.BuildPyramidalG()
	if err != nil {
		t.Fatal(err)
	}
	if !asm.Truncated {
		t.Fatal("expected truncation with limit 30")
	}
	// Table pyramid: 4x4 + 2x2 + 1 = 21 nodes; fragments 21 each.
	want := 21 + len(asm.Fragments)*21
	if asm.Labeled.N() != want {
		t.Fatalf("n = %d, want %d", asm.Labeled.N(), want)
	}
	if !asm.Labeled.G.IsConnected() {
		t.Fatal("pyramidal G disconnected")
	}
	if err := asm.CheckPyramidal(); err != nil {
		t.Fatalf("valid pyramidal assembly rejected: %v", err)
	}
}

func TestBuildPyramidalGRejectsNonPowerOfTwo(t *testing.T) {
	// Counter(3): runtime 4, side 5.
	p := Params{Machine: turing.Counter(3, '0'), R: 1, MaxSteps: 100, FragmentLimit: 5}
	if _, err := p.BuildPyramidalG(); err == nil {
		t.Fatal("non-power-of-two side accepted")
	}
}

func TestCheckPyramidalRejectsCorruption(t *testing.T) {
	tests := []struct {
		name    string
		corrupt func(asm *PyramidalAssembly)
	}{
		{"foreign label", func(asm *PyramidalAssembly) {
			asm.Labeled.Labels[asm.TableApex] = "junk"
		}},
		{"table cell content", func(asm *PyramidalAssembly) {
			p := asm.Params
			asm.Labeled.Labels[asm.TableBase[1][1]] = p.NodeLabel(turing.Cell{Sym: '1', State: turing.NoHead}, 1, 1)
		}},
		{"extra table edge", func(asm *PyramidalAssembly) {
			// A non-pivot table cell acquires a foreign edge.
			asm.Labeled.G.AddEdge(asm.TableBase[2][2], asm.FragmentApex[0])
		}},
		{"illegal gluing variant", func(asm *PyramidalAssembly) {
			asm.Fragments[0].Spec = turing.BorderSpec{Left: true, Right: true, Bottom: true}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			asm, err := pyramidParams(10).BuildPyramidalG()
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(asm)
			if err := asm.CheckPyramidal(); err == nil {
				t.Error("corrupted pyramidal assembly accepted")
			}
		})
	}
}

func TestDistanceShrinkage(t *testing.T) {
	// Use a larger table for a visible effect: Counter(6) runtime 7, side 8.
	p := Params{Machine: turing.Counter(6, '0'), R: 1, MaxSteps: 100, FragmentLimit: 5}
	asm, err := p.BuildPyramidalG()
	if err != nil {
		t.Fatal(err)
	}
	gridDist, pyrDist := asm.DistanceShrinkage()
	if gridDist != 14 {
		t.Fatalf("grid distance = %d, want 14", gridDist)
	}
	// Via the pyramid: up 3 layers, down 3 layers = 6.
	if pyrDist > 6 {
		t.Fatalf("pyramid distance = %d, want <= 6", pyrDist)
	}
	if pyrDist >= gridDist {
		t.Fatal("pyramid did not shrink distances")
	}
}

func TestPyramidalApexes(t *testing.T) {
	asm, err := pyramidParams(10).BuildPyramidalG()
	if err != nil {
		t.Fatal(err)
	}
	// The table apex has degree 4 (its 2x2 children).
	if d := asm.Labeled.G.Degree(asm.TableApex); d != 4 {
		t.Errorf("table apex degree = %d, want 4", d)
	}
	for i, apex := range asm.FragmentApex {
		if d := asm.Labeled.G.Degree(apex); d != 4 {
			t.Errorf("fragment %d apex degree = %d, want 4", i, d)
		}
		if asm.Labeled.Labels[apex] != asm.Params.PyrLabel() {
			t.Errorf("fragment %d apex label wrong", i)
		}
	}
}
