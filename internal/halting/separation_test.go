package halting

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/turing"
)

func TestGeneratorSamplesMatchCodes(t *testing.T) {
	p := tinyParams(turing.HaltWith('0'), 20)
	gen, err := p.GenerateNeighborhoods()
	if err != nil {
		t.Fatal(err)
	}
	if len(gen.Samples) != len(gen.Codes) {
		t.Fatalf("samples %d != codes %d", len(gen.Samples), len(gen.Codes))
	}
	for code, view := range gen.Samples {
		var got string
		if view.N() <= ExactCodeLimit {
			got = view.ObliviousCode()
		} else {
			got = graph.RootedRefinementCode(view.Labeled, view.Root)
		}
		if got != code {
			t.Fatal("sample view does not reproduce its code")
		}
	}
}

// The view-algorithm form of the separation: a candidate that rejects when
// the ROOT of its view is a halting cell with a non-'0' output. Property
// (P3)'s obfuscation plants such cells in fragments for every machine, so
// the candidate rejects B(N, r) regardless of N's actual behaviour — it
// cannot separate L0 from L1.
func TestSeparationWithViewAlgorithm(t *testing.T) {
	mk := func(p Params) local.ObliviousAlgorithm {
		return local.ObliviousFunc("root-halt-scan", 1, func(view *graph.View) local.Verdict {
			cell, _, _, err := p.ParseNodeLabel(view.Labels[view.Root])
			if err != nil {
				return local.Yes // foreign node kinds are not this scan's business
			}
			if cell.State == p.Machine.Halt && cell.Sym != '0' {
				return local.No
			}
			return local.Yes
		})
	}
	// On the L0 machine, the TRUE table contains only output-0 halts, but
	// the fragments contain spurious bad halts: candidate rejects.
	p0 := tinyParams(turing.HaltWith('0'), 0) // full collection
	if testing.Short() {
		p0.FragmentLimit = 120
	}
	res, err := p0.RunSeparationWithAlgorithm(mk(p0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("halt-scanning candidate should reject due to planted fragments")
	}
	// The same candidate also rejects the L1 machine — so it outputs the
	// same verdict on both languages: no separation.
	p1 := tinyParams(turing.HaltWith('1'), 0)
	if testing.Short() {
		p1.FragmentLimit = 120
	}
	res1, err := p1.RunSeparationWithAlgorithm(mk(p1))
	if err != nil {
		t.Fatal(err)
	}
	if res1.Accepted {
		t.Fatal("halt-scanning candidate should reject the L1 machine too")
	}
}

func TestSeparationHorizonGuard(t *testing.T) {
	p := tinyParams(turing.HaltWith('0'), 5)
	tooFar := local.ObliviousFunc("deep", p.R+1, func(view *graph.View) local.Verdict { return local.Yes })
	if _, err := p.RunSeparationWithAlgorithm(tooFar); err == nil {
		t.Fatal("horizon guard missing")
	}
}

// An always-yes candidate accepts everything: R accepts every machine —
// demonstrating that "accepting all of B" carries no information unless the
// candidate is a correct decider (which cannot exist).
func TestSeparationTrivialCandidate(t *testing.T) {
	p := tinyParams(turing.Looper(), 10)
	yes := local.ObliviousFunc("always-yes", 1, func(view *graph.View) local.Verdict { return local.Yes })
	res, err := p.RunSeparationWithAlgorithm(yes)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted || res.CodesTested == 0 {
		t.Fatal("always-yes candidate should accept all neighbourhoods")
	}
}
