package halting

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/turing"
)

// tinyParams keeps fragment collections small enough for unit tests; the
// truncation flag is asserted explicitly wherever a limit is set.
func tinyParams(m *turing.Machine, limit int) Params {
	return Params{Machine: m, R: 1, MaxSteps: 200, FragmentLimit: limit}
}

func TestBuildGShape(t *testing.T) {
	p := tinyParams(turing.HaltWith('0'), 50)
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	if !asm.Truncated {
		t.Fatal("expected truncation with limit 50")
	}
	// Table is 2x2 (runtime 1).
	if asm.TableHeight() != 2 || asm.TableWidth() != 2 {
		t.Fatalf("table %dx%d, want 2x2", asm.TableHeight(), asm.TableWidth())
	}
	// 50 contents x 9 phases x >=1 variant fragments, 9 cells each.
	if len(asm.Fragments) < 450 {
		t.Fatalf("placed fragments = %d, want >= 450", len(asm.Fragments))
	}
	if asm.Labeled.N() != 4+9*len(asm.Fragments) {
		t.Fatalf("n = %d, want %d", asm.Labeled.N(), 4+9*len(asm.Fragments))
	}
	if !asm.Labeled.G.IsConnected() {
		t.Fatal("G(M,r) should be connected (fragments glue to the pivot)")
	}
	// The pivot is the top-left table cell and has a large degree.
	if asm.Pivot != asm.TableNode[0][0] {
		t.Fatal("pivot misplaced")
	}
	if asm.Labeled.G.Degree(asm.Pivot) < PivotDegreeThreshold {
		t.Fatal("pivot degree too small")
	}
}

func TestBuildGRequiresHalting(t *testing.T) {
	p := tinyParams(turing.Looper(), 10)
	if _, err := p.BuildG(); err == nil {
		t.Fatal("BuildG should fail for a non-halting machine")
	}
	// BuildWindowG works regardless.
	if _, err := p.BuildWindowG(); err != nil {
		t.Fatalf("BuildWindowG failed: %v", err)
	}
}

func TestVerifyGAcceptsValid(t *testing.T) {
	p := tinyParams(turing.BusyBeaverish(), 40)
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	if err := asm.VerifyG(); err != nil {
		t.Fatalf("valid assembly rejected: %v", err)
	}
}

func TestVerifyGRejectsCorruption(t *testing.T) {
	p := tinyParams(turing.HaltWith('0'), 30)
	tests := []struct {
		name    string
		corrupt func(asm *Assembly)
	}{
		{"table cell label", func(asm *Assembly) {
			v := asm.TableNode[1][1]
			asm.Labeled.Labels[v] = p.NodeLabel(turing.Cell{Sym: '1', State: turing.NoHead}, 1, 1)
		}},
		{"orientation labels", func(asm *Assembly) {
			v := asm.TableNode[0][1]
			cell, _, _, _ := p.ParseNodeLabel(asm.Labeled.Labels[v])
			asm.Labeled.Labels[v] = p.NodeLabel(cell, 2, 0)
		}},
		{"fragment gluing", func(asm *Assembly) {
			// Add an illegal gluing edge to a fragment interior cell.
			asm.Labeled.G.AddEdge(asm.Pivot, asm.FragmentNodes[0][1][1])
		}},
		{"fragment content", func(asm *Assembly) {
			asm.Fragments[0].Fragment = &turing.Fragment{
				Machine: p.Machine,
				Cells: [][]turing.Cell{
					{{Sym: 'Z', State: turing.NoHead}, {Sym: 'Z', State: turing.NoHead}, {Sym: 'Z', State: turing.NoHead}},
					{{Sym: 'Z', State: turing.NoHead}, {Sym: 'Z', State: turing.NoHead}, {Sym: 'Z', State: turing.NoHead}},
					{{Sym: 'Z', State: turing.NoHead}, {Sym: 'Z', State: turing.NoHead}, {Sym: 'Z', State: turing.NoHead}},
				},
			}
		}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			asm, err := p.BuildG()
			if err != nil {
				t.Fatal(err)
			}
			tc.corrupt(asm)
			if err := asm.VerifyG(); err == nil {
				t.Error("corrupted assembly accepted")
			}
		})
	}
}

func TestStructureVerifierAcceptsG(t *testing.T) {
	p := tinyParams(turing.HaltWith('0'), 20)
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	out := local.RunOblivious(p.StructureVerifier(), asm.Labeled)
	if !out.Accepted {
		for v, verdict := range out.Verdicts {
			if verdict == local.No {
				t.Fatalf("verifier rejected node %d (label %s)", v, asm.Labeled.Labels[v])
			}
		}
	}
}

func TestStructureVerifierRejectsJunk(t *testing.T) {
	p := tinyParams(turing.HaltWith('0'), 20)
	junk := graph.UniformlyLabeled(graph.Cycle(6), "junk")
	if local.RunOblivious(p.StructureVerifier(), junk).Accepted {
		t.Error("junk accepted")
	}
	// A grid with a window-rule violation: symbol appears from nowhere.
	tab, err := turing.BuildTable(turing.Counter(3, '0'), 100)
	if err != nil {
		t.Fatal(err)
	}
	q := Params{Machine: turing.Counter(3, '0'), R: 1, MaxSteps: 100, FragmentLimit: 5}
	asm, err := q.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	_ = tab
	v := asm.TableNode[2][asm.TableWidth()-1]
	asm.Labeled.Labels[v] = q.NodeLabel(turing.Cell{Sym: '1', State: turing.NoHead}, (asm.TableWidth()-1)%3, 2%3)
	if local.RunOblivious(q.StructureVerifier(), asm.Labeled).Accepted {
		t.Error("window violation accepted")
	}
}

// Property (P1): the execution table of M is contained in G(M, r).
func TestP1TableContained(t *testing.T) {
	m := turing.BusyBeaverish()
	p := tinyParams(m, 10)
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := turing.BuildTable(m, p.MaxSteps)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < tab.Height(); y++ {
		for x := 0; x < tab.Width(); x++ {
			cell, x3, y3, err := p.ParseNodeLabel(asm.Labeled.Labels[asm.TableNode[y][x]])
			if err != nil {
				t.Fatal(err)
			}
			if cell != tab.Cell(y, x) || x3 != x%3 || y3 != y%3 {
				t.Fatalf("table cell (%d,%d) mismatch", y, x)
			}
		}
	}
	// The table's output is recorded in G.
	out, err := tab.Output()
	if err != nil {
		t.Fatal(err)
	}
	if out != '1' {
		t.Fatalf("busybeaverish output %c", out)
	}
}

// Property (P3), short-machine path: B(N, r) equals the neighbourhoods of
// G(N, r) exactly (the machine halts within the window budget, so B builds
// the true G).
func TestP3ExactShortMachine(t *testing.T) {
	for _, m := range []*turing.Machine{turing.HaltWith('0'), turing.HaltWith('1'), turing.BusyBeaverish()} {
		p := tinyParams(m, 25)
		gen, err := p.GenerateNeighborhoods()
		if err != nil {
			t.Fatal(err)
		}
		asm, err := p.BuildG()
		if err != nil {
			t.Fatal(err)
		}
		want := NeighborhoodSet(asm.Labeled, p.R, ExactCodeLimit)
		if len(gen.Codes) != len(want) {
			t.Fatalf("%s: B emitted %d codes, G has %d", m.Name, len(gen.Codes), len(want))
		}
		for code := range want {
			if _, ok := gen.Codes[code]; !ok {
				t.Fatalf("%s: G neighbourhood missing from B", m.Name)
			}
		}
	}
}

// Property (P3), long-machine path: the machine outruns the window, so B
// uses the partial table plus fragment coverage. The FULL fragment
// collection is exponentially large (that is the point of the obfuscation),
// so this test works with a shared truncated collection and verifies the two
// halves of (P3) that remain exact under truncation:
//
//  1. soundness: everything B emits occurs in the true G(N, r);
//  2. the only gaps are deep-table neighbourhoods, and each gap's covering
//     3r x 3r window of the true table is a consistent fragment — i.e. a
//     member of the full C(M, r) — so the untruncated B contains it.
func TestP3LongMachine(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy construction")
	}
	m := turing.Counter(8, '0') // runtime 9 > window budget 6
	p := Params{Machine: m, R: 1, MaxSteps: 100, FragmentLimit: 150}
	if _, halted := turing.Runtime(m, p.WindowSide()-1); halted {
		t.Fatal("test machine too fast; must outrun the window")
	}
	gen, err := p.GenerateNeighborhoods()
	if err != nil {
		t.Fatal(err)
	}
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	tab, err := turing.BuildTable(m, p.MaxSteps)
	if err != nil {
		t.Fatal(err)
	}

	// Half 1: soundness.
	want := make(map[string]struct{})
	codeOf := make(map[int]string, asm.Labeled.N())
	for v := 0; v < asm.Labeled.N(); v++ {
		code := NeighborhoodCode(asm.Labeled, v, p.R, ExactCodeLimit)
		want[code] = struct{}{}
		codeOf[v] = code
	}
	for code := range gen.Codes {
		if _, ok := want[code]; !ok {
			t.Error("B(N, r) emitted a neighbourhood not present in G(N, r)")
		}
	}

	// Half 2: characterise the gaps. Map table nodes back to coordinates.
	coordOf := make(map[int][2]int)
	for y := 0; y < asm.TableHeight(); y++ {
		for x := 0; x < asm.TableWidth(); x++ {
			coordOf[asm.TableNode[y][x]] = [2]int{y, x}
		}
	}
	missing := make(map[string]struct{})
	for code := range want {
		if _, ok := gen.Codes[code]; !ok {
			missing[code] = struct{}{}
		}
	}
	if len(missing) == 0 {
		t.Fatal("expected some deep-table gaps under truncation; test premise broken")
	}
	side := p.FragmentSide()
	h, w := tab.Height(), tab.Width()
	for v, code := range codeOf {
		if _, gap := missing[code]; !gap {
			continue
		}
		yx, isTable := coordOf[v]
		if !isTable {
			t.Fatalf("gap neighbourhood rooted at non-table node %d", v)
		}
		// The covering window: a 3r x 3r sub-table containing the ball with
		// the centre at distance >= r from the window's top (always glued)
		// and from any non-natural side border. Clamp the window inside the
		// table.
		y0 := clamp(yx[0]-p.R, 0, h-side)
		x0 := clamp(yx[1]-p.R, 0, w-side)
		frag := turing.FragmentOfTable(tab, y0, x0, side, side)
		if err := frag.Consistent(); err != nil {
			t.Fatalf("covering window of gap at %v is not a consistent fragment: %v", yx, err)
		}
	}
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// B halts on machines that never halt — the crux of (P3).
func TestBHaltsOnLoopers(t *testing.T) {
	for _, m := range []*turing.Machine{turing.Looper(), turing.Zigzag()} {
		p := tinyParams(m, 60)
		gen, err := p.GenerateNeighborhoods()
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if len(gen.Codes) == 0 {
			t.Errorf("%s: B emitted no neighbourhoods", m.Name)
		}
		if !gen.Truncated {
			t.Errorf("%s: expected truncation report with limit", m.Name)
		}
	}
}

// The obfuscation property: the fragment collection contains halting cells
// with every output, regardless of what the machine actually does, so the
// naive "scan for a bad halting pattern" decider rejects everything.
func TestObfuscationDefeatsPatternScan(t *testing.T) {
	if testing.Short() {
		t.Skip("full fragment collection")
	}
	m := turing.HaltWith('0') // M ∈ L0: the TRUE output is 0
	p := tinyParams(m, 0)     // full collection
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	if asm.Truncated {
		t.Fatal("full collection unexpectedly truncated")
	}
	// The collection contains a halting head with output '1' somewhere even
	// though M never produces one.
	foundBad := false
	for _, pf := range asm.Fragments {
		for _, row := range pf.Fragment.Cells {
			for _, c := range row {
				if c.State == m.Halt && c.Sym == '1' {
					foundBad = true
				}
			}
		}
	}
	if !foundBad {
		t.Fatal("fragment collection lacks spurious halting patterns; obfuscation broken")
	}
	// Consequently the pattern-scan candidate rejects this yes-instance.
	candidate := &HaltingPatternCandidate{Params: p}
	res, err := p.RunSeparation(candidate)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Fatal("pattern scan accepted despite planted halting patterns (obfuscation not visible to it)")
	}
}

func TestLDDeciderOnSuite(t *testing.T) {
	// Yes-instance: G(M, r) with M outputting 0. No-instance: M outputting 1.
	yes := tinyParams(turing.HaltWith('0'), 15)
	no := tinyParams(turing.HaltWith('1'), 15)
	asmYes, err := yes.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	asmNo, err := no.BuildG()
	if err != nil {
		t.Fatal(err)
	}

	// The decider for property P with machine-specific structure checks: the
	// instance labels carry (M, r), so each decider is bound to its machine;
	// cross-machine instances fail the label check.
	decYes := yes.LDDecider()
	idsFor := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if out := local.Run(decYes, graph.NewInstance(asmYes.Labeled, idsFor(asmYes.Labeled.N()))); !out.Accepted {
		t.Error("LD decider rejected a yes-instance")
	}
	decNo := no.LDDecider()
	if out := local.Run(decNo, graph.NewInstance(asmNo.Labeled, idsFor(asmNo.Labeled.N()))); out.Accepted {
		t.Error("LD decider accepted a no-instance (M outputs 1)")
	}
	// Junk is rejected by stage 1.
	junk := graph.UniformlyLabeled(graph.Cycle(8), "junk")
	if out := local.Run(decYes, graph.NewInstance(junk, idsFor(8))); out.Accepted {
		t.Error("LD decider accepted junk")
	}
}

func TestLDDeciderNeedsBigIDs(t *testing.T) {
	// With all identifiers below the runtime, no node finishes the
	// simulation and the bad output goes unnoticed — exactly why bounded
	// identifier VALUES (not just uniqueness) power Theorem 2.
	m := turing.Counter(8, '1') // runtime 9, outputs 1
	p := Params{Machine: m, R: 1, MaxSteps: 100, FragmentLimit: 10}
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	dec := p.LDDecider()
	n := asm.Labeled.N()
	small := make([]int, n)
	for i := range small {
		small[i] = i % 9 // all < runtime... but they must be distinct!
	}
	// Distinct small ids impossible for n > 9; instead verify the contrast
	// on a single node's view: a node with id 5 cannot finish the
	// simulation, a node with id 9 can.
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	in := graph.NewInstance(asm.Labeled, ids)
	out := local.Run(dec, in)
	if out.Accepted {
		t.Error("sequential ids reach the runtime; decider should reject")
	}
}

func TestSeparationBudgetedCandidateFooled(t *testing.T) {
	// The budgeted candidate with budget 5 cannot see Counter(8,'1') halt
	// (runtime 9), so the separation algorithm R accepts the machine even
	// though it belongs to L1 — the concrete face of Lemma 1.
	m := turing.Counter(8, '1')
	p := Params{Machine: m, R: 1, MaxSteps: 100, FragmentLimit: 50}
	fooled := &BudgetedCandidate{Machine: m, Budget: 5}
	res, err := p.RunSeparation(fooled)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Error("budget-5 candidate should be fooled into accepting an L1 machine")
	}
	// With a budget past the runtime the candidate rejects.
	sharp := &BudgetedCandidate{Machine: m, Budget: 20}
	res, err = p.RunSeparation(sharp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted {
		t.Error("budget-20 candidate sees the halt and must reject")
	}
	if res.CodesTested == 0 {
		t.Error("no neighbourhoods tested")
	}
}

func TestDrawBudgetDistribution(t *testing.T) {
	// 4^l with l geometric: budgets are powers of four, at least 4.
	counts := map[int]int{}
	rng := newTestRand(7)
	for i := 0; i < 1000; i++ {
		b := DrawBudget(rng)
		if b < 4 {
			t.Fatalf("budget %d < 4", b)
		}
		counts[b]++
	}
	if counts[4] < 300 || counts[4] > 700 {
		t.Errorf("P(budget=4) ≈ %d/1000, want ≈ 500", counts[4])
	}
	if len(counts) < 3 {
		t.Error("budget distribution too concentrated")
	}
}

func TestRandomizedDeciderCorollary1(t *testing.T) {
	// Yes side: G(M, r) with M ∈ L0 is never rejected (p = 1).
	yes := tinyParams(turing.HaltWith('0'), 10)
	asmYes, err := yes.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	acc, err := local.EstimateAcceptance(yes.RandomizedDecider(), asmYes.Labeled, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Errorf("yes-instance acceptance = %v, want 1", acc)
	}
	// No side: M ∈ L1 with runtime 1; every node's minimum budget (4)
	// exceeds the runtime, so rejection is certain here; the interesting
	// probability curve is measured in the experiments with longer runtimes.
	no := tinyParams(turing.HaltWith('1'), 10)
	asmNo, err := no.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	acc, err = local.EstimateAcceptance(no.RandomizedDecider(), asmNo.Labeled, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 0 {
		t.Errorf("no-instance acceptance = %v, want 0", acc)
	}
}

func TestNodeLabelRoundTrip(t *testing.T) {
	p := tinyParams(turing.HaltWith('0'), 1)
	cell := turing.Cell{Sym: '1', State: 0}
	lab := p.NodeLabel(cell, 2, 1)
	got, x3, y3, err := p.ParseNodeLabel(lab)
	if err != nil || got != cell || x3 != 2 || y3 != 1 {
		t.Fatalf("round trip failed: %+v %d %d %v", got, x3, y3, err)
	}
	if _, _, _, err := p.ParseNodeLabel("junk"); err == nil {
		t.Error("junk label parsed")
	}
	// A label from a different machine fails the prefix check.
	q := tinyParams(turing.HaltWith('1'), 1)
	if _, _, _, err := q.ParseNodeLabel(lab); err == nil {
		t.Error("cross-machine label accepted")
	}
}

func TestMod3Diff(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{0, 0, 0}, {1, 0, 1}, {0, 1, -1}, {2, 0, -1}, {0, 2, 1}, {2, 1, 1}, {1, 2, -1},
	}
	for _, tc := range tests {
		if got := mod3diff(tc.a, tc.b); got != tc.want {
			t.Errorf("mod3diff(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}
