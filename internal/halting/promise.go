package halting

import (
	"fmt"

	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/turing"
)

// This file implements Section 3's warm-up promise problem R:
//
//	Instances are labelled graphs (G, M) where G is an n-cycle and the
//	constant label encodes a Turing machine M. Promise: if M halts in
//	exactly s steps, then n >= s. Yes-instance: M runs forever.
//	No-instance: M halts.
//
// With identifiers the problem is locally decidable (a node with identifier
// i simulates M for i steps; the promise puts some identifier past M's
// runtime). An Id-oblivious algorithm would have to decide the halting
// problem from (M, a bounded view of an anonymous cycle) — impossible; the
// experiments demonstrate the failure of every budgeted decider.

// MachineCycleLabel is the constant label of the promise-R instances.
func MachineCycleLabel(m *turing.Machine) graph.Label {
	return "pr{" + m.Encode() + "}"
}

// PromiseRInstance builds the n-cycle labelled with machine m.
func PromiseRInstance(m *turing.Machine, n int) *graph.Labeled {
	return graph.UniformlyLabeled(graph.Cycle(n), MachineCycleLabel(m))
}

// PromiseR bundles yes (non-halting machines) and no (halting machines,
// n >= runtime) instances for the decision harness.
func PromiseR(yes []*turing.Machine, no []*turing.Machine, maxSteps int) (*decide.PromiseProblem, error) {
	prob := &decide.PromiseProblem{Name: "promise-R"}
	for _, m := range yes {
		if _, halted := turing.Runtime(m, maxSteps); halted {
			return nil, fmt.Errorf("halting: %q halts; cannot be a yes-instance", m.Name)
		}
		// Any cycle size satisfies the promise for a non-halting machine;
		// keep it small because deciders simulate for Id(v) steps per node.
		prob.Yes = append(prob.Yes, PromiseRInstance(m, 12))
	}
	for _, m := range no {
		s, halted := turing.Runtime(m, maxSteps)
		if !halted {
			return nil, fmt.Errorf("halting: %q does not halt within %d steps", m.Name, maxSteps)
		}
		// n = s+1 so that (with identifiers allowed to start at 0) the
		// largest of the n distinct identifiers is at least s.
		n := s + 1
		if n < 3 {
			n = 3
		}
		prob.No = append(prob.No, PromiseRInstance(m, n))
	}
	return prob, nil
}

// PromiseRIDDecider is the ID-using decider: parse M from the label,
// simulate for Id(v) steps, reject if M stops within the budget. Machines
// are resolved through the provided registry (labels carry the encoding; the
// registry maps encodings back to machines, standing in for a decoder).
func PromiseRIDDecider(registry []*turing.Machine) local.Algorithm {
	byLabel := make(map[graph.Label]*turing.Machine, len(registry))
	for _, m := range registry {
		byLabel[MachineCycleLabel(m)] = m
	}
	return local.AlgorithmFunc("promise-R-id-decider", 1, func(view *graph.View) local.Verdict {
		m, ok := byLabel[view.Labels[view.Root]]
		if !ok {
			return local.No
		}
		if view.G.Degree(view.Root) != 2 {
			return local.No
		}
		if _, halted := turing.Runtime(m, view.RootID()); halted {
			return local.No
		}
		return local.Yes
	})
}

// PromiseRBudgetedOblivious is the natural Id-oblivious attempt: simulate M
// for a FIXED budget (no identifier to scale with). It is fooled by any
// halting machine whose runtime exceeds the budget — the experiments
// quantify this.
func PromiseRBudgetedOblivious(registry []*turing.Machine, budget int) local.ObliviousAlgorithm {
	byLabel := make(map[graph.Label]*turing.Machine, len(registry))
	for _, m := range registry {
		byLabel[MachineCycleLabel(m)] = m
	}
	name := fmt.Sprintf("promise-R-budgeted(%d)", budget)
	return local.ObliviousFunc(name, 1, func(view *graph.View) local.Verdict {
		m, ok := byLabel[view.Labels[view.Root]]
		if !ok {
			return local.No
		}
		if view.G.Degree(view.Root) != 2 {
			return local.No
		}
		if _, halted := turing.Runtime(m, budget); halted {
			return local.No
		}
		return local.Yes
	})
}
