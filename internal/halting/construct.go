// Package halting implements Section 3 of the paper: the separation
// LD* != LD under computable local algorithms (C).
//
// For a halting machine M and locality parameter r, the graph G(M, r)
// consists of
//
//   - the execution table T of M, an (s+1) x (s+1) labelled grid where s is
//     M's runtime, with the pivot node at T's top-left corner, and
//   - the fragment collection C(M, r): every syntactically possible 3r x 3r
//     table fragment (all cell contents consistent with M's window rules,
//     borders unconstrained, in all nine (mod 3) orientation phases), each
//     glued to the pivot along its non-natural borders.
//
// The property P = { G(M, r) : M outputs 0 } is in LD (a node with a large
// identifier finishes simulating M and checks the output) but not in LD*
// (an Id-oblivious decider would separate the computably inseparable
// languages L0 and L1 via the neighbourhood generator B, which halts on all
// machines).
//
// Reproduction notes:
//   - Cell-local consistency uses 2-row x 3-column Cook-Levin windows rather
//     than the paper's 2x2 scheme; this changes the verification radius by a
//     constant only (see DESIGN.md).
//   - The neighbourhood generator uses a (4r+3)-sized table window (the
//     paper's flat sketch says 4r; the +3 covers all (mod 3) phases at the
//     blank top margin, and the appendix version uses a far larger 2^(4r)
//     window anyway). Neighbourhoods touching the window's bottom row or
//     rightmost column are excluded and are instead covered by fragments.
//   - Fragment collections grow exponentially with machine size; Params
//     carries an explicit FragmentLimit and every result reports truncation
//     (no silent caps).
package halting

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/turing"
)

// Params fixes the Section 3 construction.
type Params struct {
	Machine *turing.Machine
	R       int // locality parameter r >= 1
	// MaxSteps bounds the simulation used to lay out execution tables.
	MaxSteps int
	// FragmentLimit caps the number of enumerated fragment contents
	// (0 = unlimited). Truncation is reported on every artifact.
	FragmentLimit int
}

// FragmentSide returns the side length 3r of fragments.
func (p Params) FragmentSide() int { return 3 * p.R }

// WindowSide returns the table-window side used by the neighbourhood
// generator.
func (p Params) WindowSide() int { return 4*p.R + 3 }

// GMLabel is the universal (M, r) label component carried by every node.
func (p Params) GMLabel() string {
	return fmt.Sprintf("gm{%s;r=%d}", p.Machine.Encode(), p.R)
}

// NodeLabel builds the full label of a table or fragment cell: the (M, r)
// component plus the cell content and orientation coordinates.
func (p Params) NodeLabel(c turing.Cell, xMod3, yMod3 int) graph.Label {
	return p.GMLabel() + "|" + c.Label(xMod3, yMod3)
}

// ParseNodeLabel splits a node label into its cell content and orientation.
func (p Params) ParseNodeLabel(lab graph.Label) (turing.Cell, int, int, error) {
	prefix := p.GMLabel() + "|"
	if len(lab) <= len(prefix) || lab[:len(prefix)] != prefix {
		return turing.Cell{}, 0, 0, fmt.Errorf("halting: label lacks (M,r) prefix")
	}
	return turing.ParseCellLabel(lab[len(prefix):])
}

// PlacedFragment is a fragment content together with an orientation phase
// and a gluing variant.
type PlacedFragment struct {
	Fragment *turing.Fragment
	// PhaseX, PhaseY shift the (mod 3) orientation labels: cell (y, x) is
	// labelled ((x+PhaseX) mod 3, (y+PhaseY) mod 3).
	PhaseX, PhaseY int
	Spec           turing.BorderSpec
}

// Collection enumerates the full glued fragment collection: contents x
// orientation phases x gluing variants.
func (p Params) Collection() ([]PlacedFragment, bool) {
	res := turing.EnumerateFragments(p.Machine, p.FragmentSide(), p.FragmentSide(), p.FragmentLimit)
	var out []PlacedFragment
	for _, f := range res.Fragments {
		variants := f.GluingVariants()
		for py := 0; py < 3; py++ {
			for px := 0; px < 3; px++ {
				for _, spec := range variants {
					out = append(out, PlacedFragment{Fragment: f, PhaseX: px, PhaseY: py, Spec: spec})
				}
			}
		}
	}
	return out, res.Truncated
}

// Assembly is a constructed G(M, r) (or the window graph G_W used by the
// neighbourhood generator).
type Assembly struct {
	Params  Params
	Labeled *graph.Labeled
	// Pivot is the node index of the pivot (the table's top-left cell).
	Pivot int
	// TableNode[y][x] is the node index of table cell (y, x).
	TableNode [][]int
	// FragmentNodes[i][y][x] is the node index of cell (y, x) of placed
	// fragment i.
	FragmentNodes [][][]int
	Fragments     []PlacedFragment
	// Truncated reports whether the fragment enumeration hit FragmentLimit.
	Truncated bool
}

// BuildG constructs G(M, r) for a halting machine. It fails if the machine
// does not halt within MaxSteps.
func (p Params) BuildG() (*Assembly, error) {
	table, err := turing.BuildTable(p.Machine, p.MaxSteps)
	if err != nil {
		return nil, err
	}
	return p.assemble(table, true)
}

// BuildWindowG constructs the window graph G_W: the table is the
// WindowSide x WindowSide partial execution table (laid out whether or not
// the machine halts), glued to the same fragment collection. This is the
// graph underlying the neighbourhood generator B.
func (p Params) BuildWindowG() (*Assembly, error) {
	side := p.WindowSide()
	table, err := turing.PartialTable(p.Machine, side, side)
	if err != nil {
		return nil, err
	}
	return p.assemble(table, false)
}

// assemble lays out a table plus the glued fragment collection.
func (p Params) assemble(table *turing.Table, fullTable bool) (*Assembly, error) {
	fragments, truncated := p.Collection()
	h, w := table.Height(), table.Width()
	side := p.FragmentSide()

	total := h*w + len(fragments)*side*side
	b := graph.NewBuilderHint(total, 2*total)
	labels := make([]graph.Label, total)

	// Table grid.
	tableNode := make([][]int, h)
	idx := 0
	for y := 0; y < h; y++ {
		tableNode[y] = make([]int, w)
		for x := 0; x < w; x++ {
			tableNode[y][x] = idx
			labels[idx] = p.NodeLabel(table.Cell(y, x), x%3, y%3)
			idx++
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(tableNode[y][x], tableNode[y][x+1])
			}
			if y+1 < h {
				b.AddEdge(tableNode[y][x], tableNode[y+1][x])
			}
		}
	}
	pivot := tableNode[0][0]

	// Fragments.
	fragmentNodes := make([][][]int, len(fragments))
	for i, pf := range fragments {
		nodes := make([][]int, side)
		for y := 0; y < side; y++ {
			nodes[y] = make([]int, side)
			for x := 0; x < side; x++ {
				nodes[y][x] = idx
				labels[idx] = p.NodeLabel(pf.Fragment.Cells[y][x], (x+pf.PhaseX)%3, (y+pf.PhaseY)%3)
				idx++
			}
		}
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				if x+1 < side {
					b.AddEdge(nodes[y][x], nodes[y][x+1])
				}
				if y+1 < side {
					b.AddEdge(nodes[y][x], nodes[y+1][x])
				}
			}
		}
		// Glue the non-natural borders (under the variant's spec) to the
		// pivot.
		for _, cell := range pf.Fragment.BorderCells(pf.Spec) {
			b.AddEdge(pivot, nodes[cell[0]][cell[1]])
		}
		fragmentNodes[i] = nodes
	}

	return &Assembly{
		Params:        p,
		Labeled:       graph.NewLabeled(b.Build(), labels),
		Pivot:         pivot,
		TableNode:     tableNode,
		FragmentNodes: fragmentNodes,
		Fragments:     fragments,
		Truncated:     truncated,
	}, nil
}

// TableHeight returns the table part's height.
func (a *Assembly) TableHeight() int { return len(a.TableNode) }

// TableWidth returns the table part's width.
func (a *Assembly) TableWidth() int {
	if len(a.TableNode) == 0 {
		return 0
	}
	return len(a.TableNode[0])
}

// NeighborhoodCode returns the canonical code of the radius-r oblivious view
// of a node, with a size cutoff: balls larger than exactLimit nodes (the
// pivot's ball spans the whole fragment collection) use the colour-refinement
// invariant code, which is still isomorphism-invariant.
func NeighborhoodCode(l *graph.Labeled, v, radius, exactLimit int) string {
	view := graph.ObliviousViewOf(l, v, radius)
	if view.N() <= exactLimit {
		return view.ObliviousCode()
	}
	return graph.RootedRefinementCode(view.Labeled, view.Root)
}

// NeighborhoodSet enumerates all radius-r neighbourhood codes of a labelled
// graph (with the size cutoff of NeighborhoodCode), through one shared
// extractor so the whole sweep reuses a single set of scratch buffers.
func NeighborhoodSet(l *graph.Labeled, radius, exactLimit int) map[string]struct{} {
	out := make(map[string]struct{})
	x := graph.NewViewExtractor(l)
	for v := 0; v < l.N(); v++ {
		view := x.At(v, radius)
		if view.N() <= exactLimit {
			out[view.ObliviousCode()] = struct{}{}
		} else {
			out[graph.RootedRefinementCode(view.Labeled, view.Root)] = struct{}{}
		}
	}
	return out
}

// GeneratorResult is the output of the neighbourhood generator B.
type GeneratorResult struct {
	Codes map[string]struct{}
	// Samples maps each code to one representative view (Id-oblivious), so
	// that candidate deciders — which are view algorithms, as in the paper —
	// can be run directly on B's output.
	Samples map[string]*graph.View
	// Truncated reports fragment-limit truncation.
	Truncated bool
	// WindowNodes and FragmentNodes report sizes for diagnostics.
	WindowNodes int
}

// ExactCodeLimit is the ball-size threshold beyond which NeighborhoodCode
// falls back to the refinement invariant.
const ExactCodeLimit = 400

// GenerateNeighborhoods is the paper's algorithm B: on input (N, r) — where
// N need NOT halt — it returns a finite set of radius-r neighbourhood codes
// such that, whenever N halts, the set equals the neighbourhoods of G(N, r)
// (property (P3)). B always halts:
//
//   - It first simulates N for WindowSide-1 steps (a bound depending only on
//     r). If N halts within the budget, the full (small) execution table is
//     available and B simply enumerates the neighbourhoods of G(N, r).
//   - Otherwise N's runtime exceeds the window, and B lays out the
//     WindowSide x WindowSide partial table, glues the fragment collection,
//     and emits every neighbourhood that does not touch the partial table's
//     bottom row or rightmost column; deeper-table neighbourhoods are
//     covered by fragment interiors (the paper's key observation).
func (p Params) GenerateNeighborhoods() (*GeneratorResult, error) {
	budget := p.WindowSide() - 1
	if _, halted := turing.Runtime(p.Machine, budget); halted {
		short := p
		short.MaxSteps = budget
		asm, err := short.BuildG()
		if err != nil {
			return nil, err
		}
		return collectNeighborhoods(asm, p.R, nil), nil
	}
	asm, err := p.BuildWindowG()
	if err != nil {
		return nil, err
	}
	h, w := asm.TableHeight(), asm.TableWidth()
	excluded := make(map[int]struct{}, h+w)
	for x := 0; x < w; x++ {
		excluded[asm.TableNode[h-1][x]] = struct{}{}
	}
	for y := 0; y < h; y++ {
		excluded[asm.TableNode[y][w-1]] = struct{}{}
	}
	return collectNeighborhoods(asm, p.R, excluded), nil
}

// collectNeighborhoods enumerates the radius-r views of an assembly,
// skipping views that touch excluded nodes, keeping one representative view
// per code. The sweep runs through one shared ViewExtractor — per-node
// extraction and code computation reuse one set of scratch buffers — and
// only re-extracts a retainable one-shot view for codes seen for the first
// time (extractor views are invalidated by the next extraction; samples must
// outlive the loop).
func collectNeighborhoods(asm *Assembly, radius int, excluded map[int]struct{}) *GeneratorResult {
	l := asm.Labeled
	codes := make(map[string]struct{})
	samples := make(map[string]*graph.View)
	x := graph.NewViewExtractor(l)
	for v := 0; v < l.N(); v++ {
		view := x.At(v, radius)
		if len(excluded) > 0 {
			touches := false
			for _, orig := range view.Original {
				if _, bad := excluded[orig]; bad {
					touches = true
					break
				}
			}
			if touches {
				continue
			}
		}
		var code string
		if view.N() <= ExactCodeLimit {
			code = view.ObliviousCode()
		} else {
			code = graph.RootedRefinementCode(view.Labeled, view.Root)
		}
		if _, seen := codes[code]; !seen {
			codes[code] = struct{}{}
			samples[code] = graph.ObliviousViewOf(l, v, radius)
		}
	}
	return &GeneratorResult{Codes: codes, Samples: samples, Truncated: asm.Truncated, WindowNodes: l.N()}
}
