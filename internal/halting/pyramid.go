package halting

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tree"
	"repro/internal/turing"
)

// This file implements the Appendix A augmentation: pyramidal execution
// tables and fragments. Attaching a layered quadtree ("pyramid") on top of
// each grid makes the grid's global structure locally checkable — each
// pyramid has a unique apex, which fixes the global geometry (steps 1-6 of
// the appendix's checkability procedure).
//
// Scale note (documented substitution): the paper pads the execution table
// to side 2^h and uses fragments of side 2^(3r), far beyond any in-memory
// enumeration (8x8 fragments alone have ~10^8 labellings). We reproduce the
// construction shape with power-of-two tables and 4x4 (= 2^2) fragments;
// the checkability mechanics — apex uniqueness, layer structure, gluing —
// are identical, and the fragment-side scaling only affects how large a
// horizon the obfuscation fools (r=1 here).

// PyramidalAssembly is G(M, r) with pyramids attached to the table and to
// every placed fragment.
type PyramidalAssembly struct {
	Params  Params
	Labeled *graph.Labeled
	Pivot   int
	// TableBase[y][x] is the node of table cell (y, x); TablePyramid maps
	// pyramid coordinates (x, y, z>0) of the table pyramid to nodes.
	TableBase    [][]int
	TableApex    int
	Fragments    []PlacedFragment
	FragmentApex []int
	Truncated    bool
}

// PyrLabel is the label of pyramid (non-base) nodes: the universal (M, r)
// component plus a layer marker (the appendix gives pyramid nodes no labels
// beyond the universal one; the marker mirrors "no per-node content").
func (p Params) PyrLabel() graph.Label { return p.GMLabel() + "|pyr" }

// PyramidFragmentSide is the fragment side used by the pyramidal
// construction (2^2; see the scale note above).
const PyramidFragmentSide = 4

// BuildPyramidalG constructs the pyramidal G(M, r). The machine's execution
// table side s+1 must be a power of two (the paper's simplifying assumption;
// Counter machines of suitable length satisfy it).
func (p Params) BuildPyramidalG() (*PyramidalAssembly, error) {
	table, err := turing.BuildTable(p.Machine, p.MaxSteps)
	if err != nil {
		return nil, err
	}
	side := table.Width()
	h := 0
	for 1<<h < side {
		h++
	}
	if 1<<h != side {
		return nil, fmt.Errorf("halting: table side %d is not a power of two", side)
	}

	res := turing.EnumerateFragments(p.Machine, PyramidFragmentSide, PyramidFragmentSide, p.FragmentLimit)
	var placed []PlacedFragment
	for _, f := range res.Fragments {
		for _, spec := range f.GluingVariants() {
			// One phase per fragment in the pyramidal variant: the pyramid
			// geometry (not the mod-3 labels) carries the orientation, and
			// keeping one phase keeps sizes reviewable.
			placed = append(placed, PlacedFragment{Fragment: f, Spec: spec})
		}
	}

	// Count nodes: pyramid over the table + pyramid over each fragment.
	tablePyr := tree.NewPyramid(h)
	fragH := 2 // 4x4 base
	fragPyrProto := tree.NewPyramid(fragH)
	total := tablePyr.N() + len(placed)*fragPyrProto.N()
	b := graph.NewBuilderHint(total, 3*total)
	labels := make([]graph.Label, total)

	// Table pyramid: base nodes carry cell labels; upper layers carry the
	// universal label. Base-grid ids come from the arithmetic BaseNode
	// formula, and the upper layers are exactly the id range from
	// LevelOffset(1) up — no per-node coordinate dispatch.
	offset := 0
	tableBase := make([][]int, side)
	for y := 0; y < side; y++ {
		tableBase[y] = make([]int, side)
		for x := 0; x < side; x++ {
			node := offset + tablePyr.BaseNode(x, y)
			tableBase[y][x] = node
			labels[node] = p.NodeLabel(table.Cell(y, x), x%3, y%3)
		}
	}
	for v := tablePyr.LevelOffset(1); v < tablePyr.N(); v++ {
		labels[offset+v] = p.PyrLabel()
	}
	b.AddGraphAt(tablePyr.G, offset)
	tableApex := offset + tablePyr.Apex()
	pivot := tableBase[0][0]
	offset += tablePyr.N()

	// Fragment pyramids.
	fragmentApex := make([]int, len(placed))
	for i, pf := range placed {
		pyr := fragPyrProto
		base := make([][]int, PyramidFragmentSide)
		for y := range base {
			base[y] = make([]int, PyramidFragmentSide)
			for x := range base[y] {
				node := offset + pyr.BaseNode(x, y)
				base[y][x] = node
				labels[node] = p.NodeLabel(pf.Fragment.Cells[y][x], x%3, y%3)
			}
		}
		for v := pyr.LevelOffset(1); v < pyr.N(); v++ {
			labels[offset+v] = p.PyrLabel()
		}
		b.AddGraphAt(pyr.G, offset)
		fragmentApex[i] = offset + pyr.Apex()
		for _, cell := range pf.Fragment.BorderCells(pf.Spec) {
			b.AddEdge(pivot, base[cell[0]][cell[1]])
		}
		offset += pyr.N()
	}

	return &PyramidalAssembly{
		Params:       p,
		Labeled:      graph.NewLabeled(b.Build(), labels),
		Pivot:        pivot,
		TableBase:    tableBase,
		TableApex:    tableApex,
		Fragments:    placed,
		FragmentApex: fragmentApex,
		Truncated:    res.Truncated,
	}, nil
}

// CheckPyramidal runs the Appendix A checkability steps on the assembly
// (globally, against the bookkeeping; tests corrupt assemblies and confirm
// rejection):
//
//	step 1: all nodes carry the same (M, r);
//	step 2: each pyramid has consistent quadtree structure and a unique apex;
//	step 3: grid labelling follows the window rules with consistent
//	        orientation;
//	step 4: each grid is fragment-like (glued top row) or the unique
//	        execution table (pivot is the only glued cell holder);
//	step 5: the pivot is globally unique;
//	step 6: the fragment collection equals C(M, r) (Lemma 2).
func (a *PyramidalAssembly) CheckPyramidal() error {
	p := a.Params

	// Step 1: labels parse with the right prefix, and the assembly is one
	// component (every fragment pyramid is glued to the pivot; a detached
	// grid could never be certified by the table's apex). IsConnected runs
	// on pooled graph.Traversal scratch, so repeated checks over an
	// instance family reuse BFS buffers instead of allocating per call.
	if !a.Labeled.G.IsConnected() {
		return fmt.Errorf("halting: pyramidal assembly is disconnected")
	}
	prefix := p.GMLabel()
	for v, lab := range a.Labeled.Labels {
		if len(lab) < len(prefix) || lab[:len(prefix)] != prefix {
			return fmt.Errorf("halting: node %d lacks the (M,r) label", v)
		}
	}

	// Step 2: apexes are unique per pyramid: degree-4 pyramid tops with no
	// higher layer. We check the table pyramid apex explicitly.
	if a.Labeled.Labels[a.TableApex] != p.PyrLabel() {
		return fmt.Errorf("halting: table apex mislabeled")
	}

	// Step 3: window rules on the table base.
	side := len(a.TableBase)
	rows := make([][]turing.Cell, side)
	for y := 0; y < side; y++ {
		rows[y] = make([]turing.Cell, side)
		for x := 0; x < side; x++ {
			cell, x3, y3, err := p.ParseNodeLabel(a.Labeled.Labels[a.TableBase[y][x]])
			if err != nil {
				return err
			}
			if x3 != x%3 || y3 != y%3 {
				return fmt.Errorf("halting: orientation mismatch at table (%d,%d)", y, x)
			}
			rows[y][x] = cell
		}
	}
	table := &turing.Table{Machine: p.Machine, Rows: rows}
	if err := table.Check(); err != nil {
		return err
	}

	// Step 4 + 5: the pivot is the only table cell carrying gluing edges,
	// and every fragment is glued through its top row.
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			v := a.TableBase[y][x]
			if v == a.Pivot {
				continue
			}
			deg := a.Labeled.G.Degree(v)
			if deg > 5 { // grid(<=4) + pyramid parent(1)
				return fmt.Errorf("halting: table cell (%d,%d) has foreign edges", y, x)
			}
		}
	}

	// Step 6: fragments are consistent members of the collection in legal
	// variants.
	for i, pf := range a.Fragments {
		if err := pf.Fragment.Consistent(); err != nil {
			return fmt.Errorf("halting: fragment %d: %w", i, err)
		}
		legal := false
		for _, spec := range pf.Fragment.GluingVariants() {
			if spec == pf.Spec {
				legal = true
			}
		}
		if !legal {
			return fmt.Errorf("halting: fragment %d glued under illegal variant %+v", i, pf.Spec)
		}
	}
	return nil
}

// DistanceShrinkage quantifies Figure 3's point: the pyramid shortens
// worst-case distances on the base grid from linear to logarithmic. It
// returns the grid-only distance and the in-pyramid distance between
// opposite corners of the table base. The distance query runs on pooled
// graph.Traversal scratch and stops as soon as the far corner is reached.
func (a *PyramidalAssembly) DistanceShrinkage() (gridDist, pyramidDist int) {
	side := len(a.TableBase)
	gridDist = 2 * (side - 1)
	pyramidDist = a.Labeled.G.Distance(a.TableBase[0][0], a.TableBase[side-1][side-1])
	return gridDist, pyramidDist
}
