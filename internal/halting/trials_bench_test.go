package halting

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/local"
	"repro/internal/turing"
)

// Trial-throughput benchmark on E10's instance family: the Corollary 1
// decider's rejection sweep at 200 trials. The seqloop case replicates the
// BENCH_4-era hand-rolled EstimateRejection (structure check once, then one
// heavyweight rng per trial and a fresh turing.Run per (trial, node)); the
// engine case is the trial subsystem (splitmix64 streams, budget-memoised
// simulation, worker pool). CI gates engine ≤ 25% of seqloop (≥4×),
// ratio-normalised within one artifact so runner speed cancels.

// seqloopEstimateRejection is the BENCH_4-era sequential trial loop, kept
// verbatim as the benchmark baseline.
func seqloopEstimateRejection(p Params, asm *Assembly, trials int, seed int64) float64 {
	structure := engine.EvalOblivious(local.EngineObliviousDecider(p.StructureVerifier()), asm.Labeled,
		engine.Options{Scheduler: engine.Sharded, EarlyExit: true, Dedup: true})
	if !structure.Accepted {
		return 1
	}
	n := asm.Labeled.N()
	rejected := 0
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(seed + int64(trial)*2654435761))
		trialRejected := false
		for v := 0; v < n && !trialRejected; v++ {
			res, err := turing.Run(p.Machine, DrawBudget(rng))
			if err != nil {
				trialRejected = true
				break
			}
			if res.Halted && res.Output != '0' {
				trialRejected = true
			}
		}
		if trialRejected {
			rejected++
		}
	}
	return float64(rejected) / float64(trials)
}

func e10Instance(b *testing.B, k int, output turing.Symbol) (Params, *Assembly) {
	b.Helper()
	p := Params{Machine: turing.Counter(k, output), R: 1, MaxSteps: 500, FragmentLimit: 10}
	asm, err := p.BuildG()
	if err != nil {
		b.Fatal(err)
	}
	return p, asm
}

// BenchmarkTrialThroughput is the CI-gated trial-throughput measurement, on
// the family's yes-side instance (machine outputs '0'): no trial ever
// rejects, so every trial visits every node and the 200×n random stage is
// the dominant work — exactly the regime the trial engine exists for. On the
// no side (BenchmarkRejectionTrials below) both paths early-exit within a
// few nodes per trial and converge to the shared prefix cost.
func BenchmarkTrialThroughput(b *testing.B) {
	const trials, seed = 200, 42
	p, asm := e10Instance(b, 15, '0')
	b.Run("seqloop", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if r := seqloopEstimateRejection(p, asm, trials, seed); r != 0 {
				b.Fatal("yes-instance rejected")
			}
		}
	})
	b.Run("engine", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats, err := p.RejectionTrials(asm, engine.TrialOptions{Trials: trials, Seed: seed})
			if err != nil || stats.Estimate != 1 {
				b.Fatal("yes-instance rejected")
			}
		}
	})
}

func BenchmarkRejectionTrials(b *testing.B) {
	const trials, seed = 200, 42
	for _, k := range []int{7, 15} {
		p, asm := e10Instance(b, k, '1')
		b.Run(fmt.Sprintf("k=%d/seqloop", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if r := seqloopEstimateRejection(p, asm, trials, seed); r == 0 {
					b.Fatal("no-instance never rejected")
				}
			}
		})
		b.Run(fmt.Sprintf("k=%d/engine", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				stats, err := p.RejectionTrials(asm, engine.TrialOptions{Trials: trials, Seed: seed})
				if err != nil || stats.Estimate == 1 {
					b.Fatal("no-instance never rejected")
				}
			}
		})
	}
}

// The adaptive stopping rule on the same family: the sweep may halt as soon
// as the Wilson interval separates from the threshold, so far fewer than the
// budgeted trials run (recorded as the trials-run metric).
func BenchmarkRejectionTrialsAdaptive(b *testing.B) {
	p, asm := e10Instance(b, 7, '1')
	var stats engine.TrialStats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = p.RejectionTrials(asm, engine.TrialOptions{
			Trials: 200, Seed: 42, AdaptiveStop: true, Threshold: 0.5,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(stats.Trials), "trials-run")
}
