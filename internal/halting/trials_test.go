package halting

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/turing"
)

// Regression for the ID-normalisation bug: RandomizedDecider's structure
// stage must see exactly what LDDecider's stage 1 sees — the ID-stripped
// view — so evaluating the (Id-oblivious by definition) randomized decider
// on an identifier-carrying instance cannot diverge from the oblivious
// evaluation. Before the fix, stage 1 received the raw view, IDs attached.
func TestRandomizedDeciderObliviousUnderIDs(t *testing.T) {
	for _, m := range []*turing.Machine{turing.HaltWith('0'), turing.HaltWith('1')} {
		p := tinyParams(m, 10)
		asm, err := p.BuildG()
		if err != nil {
			t.Fatal(err)
		}
		dec := local.EngineRandomizedDecider(p.RandomizedDecider())
		seed := int64(11)
		obl := engine.EvalOblivious(dec, asm.Labeled, engine.Options{Seed: seed})

		// Two different identifier assignments; coins depend only on
		// (seed, node), so any verdict flip is an ID leak.
		n := asm.Labeled.N()
		for _, offset := range []int{1, 1000} {
			ids := make([]int, n)
			for v := range ids {
				ids[v] = offset + v
			}
			out := engine.Eval(dec, graph.NewInstance(asm.Labeled, ids), engine.Options{Seed: seed})
			for v := range obl.Verdicts {
				if out.Verdicts[v] != obl.Verdicts[v] {
					t.Fatalf("machine %s, ids offset %d: node %d flips %s -> %s under identifiers",
						m.Name, offset, v, obl.Verdicts[v], out.Verdicts[v])
				}
			}
		}
	}
}

// The factored trial decider must estimate the same probabilities as running
// the full randomized decider trial by trial: prefix ∧ random stage equals
// the unfactored conjunction on every (trial, node) stream.
func TestTrialDeciderMatchesFullDecider(t *testing.T) {
	for _, m := range []*turing.Machine{turing.HaltWith('0'), turing.Counter(3, '1')} {
		p := tinyParams(m, 10)
		asm, err := p.BuildG()
		if err != nil {
			t.Fatal(err)
		}
		const trials, seed = 25, 5
		factored, err := p.RejectionTrials(asm, engine.TrialOptions{Trials: trials, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		full, err := local.AcceptanceTrials(p.RandomizedDecider(), asm.Labeled,
			engine.TrialOptions{Trials: trials, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if factored.Trials != full.Trials || factored.Accepted != full.Accepted {
			t.Fatalf("machine %s: factored %d/%d accepted, full %d/%d",
				m.Name, factored.Accepted, factored.Trials, full.Accepted, full.Trials)
		}
		for i := range full.Verdicts {
			if factored.Verdicts[i] != full.Verdicts[i] {
				t.Fatalf("machine %s: trial %d verdict %s (factored) vs %s (full)",
					m.Name, i, factored.Verdicts[i], full.Verdicts[i])
			}
		}
	}
}

// A corrupted assembly must be rejected by the deterministic prefix alone:
// rejection probability 1, no random stage, for any trial budget.
func TestRejectionTrialsPrefixReject(t *testing.T) {
	p := tinyParams(turing.HaltWith('0'), 10)
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one table label so the structure verifier rejects.
	labels := append([]graph.Label(nil), asm.Labeled.Labels...)
	labels[asm.TableNode[0][0]] = "junk"
	corrupted := graph.NewLabeled(asm.Labeled.G, labels)
	stats, err := engine.EvalTrials(p.TrialDecider(), corrupted, engine.TrialOptions{Trials: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !stats.PrefixRejected || stats.Estimate != 0 || stats.Trials != 40 {
		t.Fatalf("corrupted assembly: %+v, want prefix rejection with estimate 0", stats)
	}
	if stats.Evaluated != 0 {
		t.Fatalf("random stage ran %d times on a prefix-rejected sweep", stats.Evaluated)
	}
	if 1-stats.Estimate != 1 {
		t.Fatal("rejection rate must be 1")
	}
}
