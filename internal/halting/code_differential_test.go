package halting

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/turing"
)

// Differential check of the integer canonical pipeline on the views the
// Section 3 constructions actually produce: the pyramidal assembly (Figure 3
// / Appendix A) and the grid assembly G(M, r). The fast codes and the legacy
// string codes must induce the same equivalence over all node views — these
// are exactly the codes the engine's dedup cache keys on when the halting
// experiments run.

func diffViews(t *testing.T, l *graph.Labeled, radius, maxViewNodes int) {
	t.Helper()
	type coded struct {
		fast   graph.Code
		legacy string
	}
	var views []coded
	x := graph.NewViewExtractor(l)
	for v := 0; v < l.N(); v++ {
		view := x.At(v, radius)
		if view.N() > maxViewNodes {
			// The exact canonical search is factorial on the big symmetric
			// pivot neighbourhoods; the engine's dedup path skips them too.
			continue
		}
		views = append(views, coded{
			fast:   view.CanonCode().Clone(),
			legacy: graph.RootedCanonicalCode(view.Labeled, view.Root),
		})
	}
	if len(views) < 2 {
		t.Fatalf("corpus too small: %d usable views", len(views))
	}
	for i := range views {
		for j := i + 1; j < len(views); j++ {
			fastEq := views[i].fast.Equal(views[j].fast)
			legacyEq := views[i].legacy == views[j].legacy
			if fastEq != legacyEq {
				t.Fatalf("views %d vs %d: fast equality %v, legacy equality %v", i, j, fastEq, legacyEq)
			}
		}
	}
}

func TestPyramidViewCodesMatchLegacy(t *testing.T) {
	p := Params{Machine: turing.Counter(2, '0'), R: 1, MaxSteps: 200, FragmentLimit: 8}
	asm, err := p.BuildPyramidalG()
	if err != nil {
		t.Fatal(err)
	}
	diffViews(t, asm.Labeled, 1, 40)
}

func TestGridAssemblyViewCodesMatchLegacy(t *testing.T) {
	p := Params{Machine: turing.Counter(3, '0'), R: 1, MaxSteps: 200, FragmentLimit: 8}
	asm, err := p.BuildG()
	if err != nil {
		t.Fatal(err)
	}
	diffViews(t, asm.Labeled, 1, 40)
}
