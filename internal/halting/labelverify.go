package halting

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/local"
)

// PyramidalLabelVerifier returns a radius-1 Id-oblivious label-sanity
// verifier for the pyramidal G(M, r): the self-stabilization experiment's
// subject. It checks, per node,
//
//  1. every label in the view is either a parseable cell label (the (M, r)
//     prefix plus cell content and mod-3 orientation) or the universal
//     pyramid label, and
//  2. adjacent parseable labels never differ in BOTH mod-3 coordinates —
//     grid edges move one step along one axis (exactly one coordinate
//     changes), and pivot-glue edges connect border copies that may agree in
//     both; no legal edge of the construction changes both at once.
//
// The verifier is deliberately weaker than StructureVerifier: it reads only
// labels, not the window relation, so it prices the exposure gradient of the
// fault models — Randomize breaks (1) at every victim, Flip usually breaks
// (1) or (2), and a Swap between equal labels is invisible by construction.
func (p Params) PyramidalLabelVerifier() local.ObliviousAlgorithm {
	name := fmt.Sprintf("pyr-label-verifier(%s,r=%d)", p.Machine.Name, p.R)
	pyr := p.PyrLabel()
	gv := &gVerifier{p: p, prefix: p.GMLabel() + "|"}
	return local.ObliviousFunc(name, 1, func(view *graph.View) local.Verdict {
		n := view.G.N()
		// Parse every label once; -1 in the coordinate slot marks pyramid
		// nodes (no orientation to compare).
		type coord struct{ x, y int }
		coords := make([]coord, n)
		for v := 0; v < n; v++ {
			lab := view.Labels[v]
			if lab == pyr {
				coords[v] = coord{-1, -1}
				continue
			}
			_, x3, y3, err := gv.parseLabel(lab)
			if err != nil {
				return local.No
			}
			coords[v] = coord{x3, y3}
		}
		for u := 0; u < n; u++ {
			cu := coords[u]
			if cu.x < 0 {
				continue
			}
			for _, w := range view.G.Neighbors(u) {
				cw := coords[int(w)]
				if cw.x < 0 {
					continue
				}
				if cu.x != cw.x && cu.y != cw.y {
					return local.No
				}
			}
		}
		return local.Yes
	})
}
