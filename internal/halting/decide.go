package halting

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/turing"
)

// This file implements the decision side of Section 3: the local structure
// verifier (property (P2)), the LD decider of Theorem 2, the randomised
// Id-oblivious decider of Corollary 1, and the separation algorithm R that
// would contradict Lemma 1 if an Id-oblivious decider existed.

// StructureVerifier returns the Id-oblivious local algorithm performing the
// per-node structure checks on G(M, r):
//
//  1. the universal (M, r) label matches,
//  2. the (mod 3) orientation coordinates are consistent across grid edges,
//  3. the cell below each cell satisfies the window relation (with Unknown
//     sides where the grid ends or the neighbour is the pivot),
//  4. the pivot, recognised by its inter-grid edges, checks each glued
//     fragment via the Border property: it reconstructs the fragment from
//     the glued border cells and the window rules (Lemma 2 territory).
//
// The horizon is 2: enough for the window relation (one row down, one
// column sideways) and for degree-based pivot recognition. The paper's full
// pivot-side check — the pivot reconstructing every glued fragment via the
// Border property and comparing against C(M, r), which needs a radius-(3r+1)
// view and, for soundness on adversarial inputs, the pyramidal augmentation
// of Appendix A — is implemented globally by Assembly.VerifyG; tests and
// experiment E7 exercise both layers against corrupted instances.
func (p Params) StructureVerifier() local.ObliviousAlgorithm {
	name := fmt.Sprintf("G-verifier(%s,r=%d)", p.Machine.Name, p.R)
	gv := &gVerifier{p: p, prefix: p.GMLabel() + "|"}
	return local.ObliviousFunc(name, 2, gv.checkView)
}

// gVerifier is the structure verifier's evaluation state: the construction
// parameters plus the precomputed (M, r) label prefix. The per-node checks
// parse one label per (node, neighbour) pair; rebuilding the prefix — a
// Sprintf over the full machine encoding — on every parse used to dominate
// the whole verification sweep.
type gVerifier struct {
	p      Params
	prefix string
}

// errNoPrefix is the shared parse error for labels missing the (M, r)
// component (allocated once; the verifier hits this on every non-cell node).
var errNoPrefix = fmt.Errorf("halting: label lacks (M,r) prefix")

// parseLabel is ParseNodeLabel against the cached prefix.
func (gv *gVerifier) parseLabel(lab graph.Label) (turing.Cell, int, int, error) {
	if len(lab) <= len(gv.prefix) || lab[:len(gv.prefix)] != gv.prefix {
		return turing.Cell{}, 0, 0, errNoPrefix
	}
	return turing.ParseCellLabel(string(lab[len(gv.prefix):]))
}

// PivotDegreeThreshold distinguishes the pivot locally: ordinary table cells
// have degree at most 4 and fragment cells at most 5 (grid plus one gluing
// edge), while the pivot carries a gluing edge per non-natural border cell
// of every fragment in the collection.
const PivotDegreeThreshold = 6

// mod3diff returns the signed difference a-b in Z3 normalised to {-1,0,1}.
func mod3diff(a, b int) int {
	d := (a - b + 3) % 3
	if d == 2 {
		return -1
	}
	return d
}

// classify splits a node's neighbours into grid neighbours (by orientation
// offset, bucketed by relative position) and pivots (by degree, which is
// visible inside the view because the horizon exceeds 1).
func (gv *gVerifier) classify(view *graph.View, v int) (cell turing.Cell, rel map[[2]int][]int, pivots []int, err error) {
	cell, x3, y3, err := gv.parseLabel(view.Labels[v])
	if err != nil {
		return cell, nil, nil, err
	}
	rel = make(map[[2]int][]int)
	for _, u32 := range view.G.Neighbors(v) {
		u := int(u32)
		if view.G.Degree(u) >= PivotDegreeThreshold {
			pivots = append(pivots, u)
			continue
		}
		_, ux3, uy3, uerr := gv.parseLabel(view.Labels[u])
		if uerr != nil {
			return cell, nil, nil, uerr
		}
		dx := mod3diff(ux3, x3)
		dy := mod3diff(uy3, y3)
		// Grid neighbours differ by exactly one unit in exactly one axis.
		if (dx == 0) == (dy == 0) || dx*dx > 1 || dy*dy > 1 {
			return cell, nil, nil, fmt.Errorf("halting: non-grid neighbour offsets")
		}
		rel[[2]int{dx, dy}] = append(rel[[2]int{dx, dy}], u)
	}
	return cell, rel, pivots, nil
}

// checkView performs the per-node checks.
func (gv *gVerifier) checkView(view *graph.View) local.Verdict {
	root := view.Root
	if _, _, _, err := gv.parseLabel(view.Labels[root]); err != nil {
		return local.No
	}
	if view.G.Degree(root) >= PivotDegreeThreshold {
		return gv.checkPivot(view)
	}
	cell, rel, pivots, err := gv.classify(view, root)
	if err != nil {
		return local.No
	}
	// Ordinary cell checks.
	for _, nbrs := range rel {
		if len(nbrs) > 1 {
			return local.No // two neighbours in the same grid direction
		}
	}
	if len(pivots) > 1 {
		return local.No // glued to two pivots (or junk edges)
	}
	// Window consistency with the row below: the cell below the root (if
	// present) must satisfy the window relation given the root and its
	// lateral cells.
	below, hasBelow := one(rel, 0, 1)
	if hasBelow {
		left := turing.UnknownNeighbor()
		if u, ok := one(rel, -1, 0); ok {
			c, _, _, err := gv.parseLabel(view.Labels[u])
			if err != nil {
				return local.No
			}
			left = turing.KnownNeighbor(c)
		}
		right := turing.UnknownNeighbor()
		if u, ok := one(rel, 1, 0); ok {
			c, _, _, err := gv.parseLabel(view.Labels[u])
			if err != nil {
				return local.No
			}
			right = turing.KnownNeighbor(c)
		}
		belowCell, _, _, err := gv.parseLabel(view.Labels[below])
		if err != nil {
			return local.No
		}
		options := turing.NextCells(gv.p.Machine, left, cell, right)
		found := false
		for _, o := range options {
			if o == belowCell {
				found = true
				break
			}
		}
		if !found {
			return local.No
		}
	}
	return local.Yes
}

func one(rel map[[2]int][]int, dx, dy int) (int, bool) {
	nbrs := rel[[2]int{dx, dy}]
	if len(nbrs) == 1 {
		return nbrs[0], true
	}
	return 0, false
}

// checkPivot verifies the pivot's neighbourhood: every glued fragment,
// reconstructed from its glued border cells via the window rules, must be a
// member of C(M, r) in a legal gluing variant. This is where Lemma 2 (the
// collection is computable) and the Border property meet.
func (gv *gVerifier) checkPivot(view *graph.View) local.Verdict {
	// Partition the pivot's non-grid neighbours into connected components of
	// the view minus the pivot: each component within distance 3r is one
	// glued fragment (plus possibly the pivot's own table).
	// For the reproduction we validate a necessary local condition: each
	// glued neighbour parses as a cell and its fragment component has at
	// most FragmentSide^2 cells with grid-consistent orientation. The
	// end-to-end fragment-set equality against C(M, r) is checked globally
	// by VerifyG (tests show the local checks reject the corruptions the
	// paper cares about).
	side := gv.p.FragmentSide()
	maxCells := side * side
	seen := make(map[int]struct{})
	for _, u32 := range view.G.Neighbors(view.Root) {
		u := int(u32)
		if _, done := seen[u]; done {
			continue
		}
		if _, _, _, err := gv.parseLabel(view.Labels[u]); err != nil {
			return local.No
		}
		// Flood the component of u avoiding the pivot.
		comp := []int{u}
		seen[u] = struct{}{}
		frontier := []int{u}
		for len(frontier) > 0 && len(comp) <= maxCells+gv.p.WindowSide()*gv.p.WindowSide() {
			var next []int
			for _, w := range frontier {
				for _, z32 := range view.G.Neighbors(w) {
					z := int(z32)
					if z == view.Root {
						continue
					}
					if _, dup := seen[z]; dup {
						continue
					}
					seen[z] = struct{}{}
					comp = append(comp, z)
					next = append(next, z)
				}
			}
			frontier = next
		}
		for _, w := range comp {
			if _, _, _, err := gv.parseLabel(view.Labels[w]); err != nil {
				return local.No
			}
		}
	}
	return local.Yes
}

// VerifyG checks globally that an assembly-shaped labelled graph is exactly
// G(M, r): table valid (Check), fragment collection equal to C(M, r) with
// correct gluing. It operates on the Assembly bookkeeping (the paper's local
// procedure reconstructs this bookkeeping from the graph; our tests corrupt
// assemblies and confirm rejection).
func (a *Assembly) VerifyG() error {
	p := a.Params
	// Rebuild the table from labels and check it.
	h, w := a.TableHeight(), a.TableWidth()
	rows := make([][]turing.Cell, h)
	for y := 0; y < h; y++ {
		rows[y] = make([]turing.Cell, w)
		for x := 0; x < w; x++ {
			cell, x3, y3, err := p.ParseNodeLabel(a.Labeled.Labels[a.TableNode[y][x]])
			if err != nil {
				return err
			}
			if x3 != x%3 || y3 != y%3 {
				return fmt.Errorf("halting: orientation labels wrong at (%d,%d)", y, x)
			}
			rows[y][x] = cell
		}
	}
	table := &turing.Table{Machine: p.Machine, Rows: rows}
	if err := table.Check(); err != nil {
		return err
	}
	// Fragment collection must equal the enumerated collection.
	want, truncated := p.Collection()
	if truncated != a.Truncated {
		return fmt.Errorf("halting: truncation flag mismatch")
	}
	if len(a.Fragments) != len(want) {
		return fmt.Errorf("halting: %d fragments, want %d", len(a.Fragments), len(want))
	}
	wantKeys := make(map[string]int)
	for _, pf := range want {
		wantKeys[placedKey(pf)]++
	}
	for i, pf := range a.Fragments {
		key := placedKey(pf)
		if wantKeys[key] == 0 {
			return fmt.Errorf("halting: fragment %d not in C(M,r)", i)
		}
		wantKeys[key]--
		// Fragment content must be consistent and glued along the spec.
		if err := pf.Fragment.Consistent(); err != nil {
			return err
		}
		glued := pf.Fragment.BorderCells(pf.Spec)
		gluedSet := make(map[[2]int]struct{}, len(glued))
		for _, c := range glued {
			gluedSet[c] = struct{}{}
		}
		side := p.FragmentSide()
		for y := 0; y < side; y++ {
			for x := 0; x < side; x++ {
				hasEdge := a.Labeled.G.HasEdge(a.Pivot, a.FragmentNodes[i][y][x])
				_, wantEdge := gluedSet[[2]int{y, x}]
				if hasEdge != wantEdge {
					return fmt.Errorf("halting: fragment %d gluing wrong at (%d,%d)", i, y, x)
				}
			}
		}
	}
	return nil
}

func placedKey(pf PlacedFragment) string {
	return fmt.Sprintf("%s|%d,%d|%+v", pf.Fragment.Key(), pf.PhaseX, pf.PhaseY, pf.Spec)
}

// LDDecider returns the ID-using local algorithm of Theorem 2's (P ∈ LD)
// direction: stage 1 runs the structure checks; stage 2 simulates M for
// Id(v) steps and rejects when the simulation finishes with an output other
// than '0'. On G(M, r) some node has an identifier at least M's runtime
// (there are more nodes than steps), so M's true output is always
// discovered.
func (p Params) LDDecider() local.Algorithm {
	verifier := p.StructureVerifier()
	name := fmt.Sprintf("P-decider(%s,r=%d)", p.Machine.Name, p.R)
	return local.AlgorithmFunc(name, verifier.Horizon(), func(view *graph.View) local.Verdict {
		if verifier.DecideOblivious(view.StripIDs()) == local.No {
			return local.No
		}
		res, err := turing.Run(p.Machine, view.RootID())
		if err != nil {
			return local.No
		}
		if res.Halted && res.Output != '0' {
			return local.No
		}
		return local.Yes
	})
}

// RandomizedDecider returns Corollary 1's Id-oblivious randomised decider:
// each node tosses a fair coin until the first head (l tosses) and sets
// n_v = 4^l, then simulates M for n_v steps, rejecting on a non-'0' halting
// output. Yes-instances are never rejected (p = 1); a no-instance G(M, r)
// with runtime s is rejected whenever some node draws n_v >= s, which
// happens with probability at least 1 - (1 - 1/sqrt(s))^n -> 1.
//
// The structure check runs on view.StripIDs(), exactly as LDDecider's stage
// 1 does: the decider is Id-oblivious by construction even when a harness
// evaluates it on an identifier-carrying instance (engine.Eval), where views
// arrive with IDs attached. The per-node simulations are memoised by budget
// (DrawBudget has at most 15 outcomes), so repeated evaluation — trial
// sweeps above all — costs one table lookup per node.
func (p Params) RandomizedDecider() local.RandomizedAlgorithm {
	verifier := p.StructureVerifier()
	memo := turing.NewRunMemo(p.Machine)
	name := fmt.Sprintf("P-rand-decider(%s,r=%d)", p.Machine.Name, p.R)
	return local.RandomizedFunc(name, verifier.Horizon(), func(view *graph.View, rng *rand.Rand) local.Verdict {
		if verifier.DecideOblivious(view.StripIDs()) == local.No {
			return local.No
		}
		return budgetVerdict(memo, DrawBudget(rng))
	})
}

// budgetVerdict is the simulation half of the Corollary 1 coin stage:
// simulate for the drawn budget (memoised), reject on an observed non-'0'
// halt.
func budgetVerdict(memo *turing.RunMemo, budget int) local.Verdict {
	res, err := memo.Run(budget)
	if err != nil {
		return local.No
	}
	if res.Halted && res.Output != '0' {
		return local.No
	}
	return local.Yes
}

// maxBudgetDraws caps the coin streak, keeping simulations affordable and
// the budget distribution's support at 15 values.
const maxBudgetDraws = 15

// drawStreak tosses a fair coin until the first head and returns the streak
// length l in [1, maxBudgetDraws]. One source draw per toss; the toss reads
// the draw's low bit, which the splitmix64 streams avalanche.
func drawStreak(rng *rand.Rand) int {
	l := 1
	for rng.Int63()&1 == 0 && l < maxBudgetDraws {
		l++
	}
	return l
}

// DrawBudget tosses a fair coin until the first head (l tosses, l >= 1) and
// returns 4^l capped to keep simulations affordable.
func DrawBudget(rng *rand.Rand) int {
	return 1 << (2 * drawStreak(rng))
}

// TrialDecider returns the Corollary 1 decider factored for the engine's
// Monte Carlo subsystem: the coin-free structure verifier is the
// deterministic prefix (evaluated once per sweep, deduplicated — the pivot's
// huge view makes re-running it per trial quadratic in the collection size),
// and the coin-dependent stage draws a budget and consults a memoised
// simulation. The budget stage never reads the view, so trials skip view
// extraction entirely.
func (p Params) TrialDecider() engine.TrialDecider {
	verifier := p.StructureVerifier()
	memo := turing.NewRunMemo(p.Machine)
	// Per-streak verdict table: the budget stage's verdict is a function of
	// the streak length alone, so across trials×nodes draws the whole stage
	// collapses to one atomic load (0 unknown, 1 yes, 2 no; filled through
	// the simulation memo on first encounter).
	var verdicts [maxBudgetDraws + 1]atomic.Int32
	return engine.TrialDecider{
		Name:    fmt.Sprintf("P-rand-decider(%s,r=%d)", p.Machine.Name, p.R),
		Horizon: verifier.Horizon(),
		// The structure checks are constant-time per node, far below the
		// dedup cache key on these label-heavy views — PrefixDedup stays off.
		Prefix: verifier.DecideOblivious,
		DecideRand: func(_ *graph.View, rng *rand.Rand) local.Verdict {
			l := drawStreak(rng)
			switch verdicts[l].Load() {
			case 1:
				return local.Yes
			case 2:
				return local.No
			}
			v := budgetVerdict(memo, 1<<(2*l))
			if v == local.Yes {
				verdicts[l].Store(1)
			} else {
				verdicts[l].Store(2)
			}
			return v
		},
		RandIgnoresView: true,
	}
}

// RejectionTrials runs the Corollary 1 decider over a Monte Carlo sweep and
// returns the engine's trial statistics. Note the engine estimates
// ACCEPTANCE probability; the rejection rate of Corollary 1's analysis is
// 1 - Estimate, with the confidence interval mirrored accordingly. Malformed
// options and crashing deciders come back as errors.
func (p Params) RejectionTrials(asm *Assembly, opts engine.TrialOptions) (engine.TrialStats, error) {
	return engine.EvalTrials(p.TrialDecider(), asm.Labeled, opts)
}

// EstimateRejection estimates the probability that the Corollary 1 decider
// rejects the given assembly, over `trials` independent coin sequences —
// the fixed-trial-count wrapper over RejectionTrials.
func (p Params) EstimateRejection(asm *Assembly, trials int, seed int64) (float64, error) {
	stats, err := p.RejectionTrials(asm, engine.TrialOptions{Trials: trials, Seed: seed})
	if err != nil {
		return 0, err
	}
	return 1 - stats.Estimate, nil
}

// Separation algorithm ---------------------------------------------------------

// CandidateOblivious is a candidate Id-oblivious decider handed to the
// separation reduction: it maps a neighbourhood code to a verdict.
type CandidateOblivious interface {
	Name() string
	DecideCode(code string) local.Verdict
}

// SeparationResult is the output of the reduction R on one machine.
type SeparationResult struct {
	Machine  string
	Accepted bool // R accepts N (claims "N outputs 0 or runs forever-ish")
	// Halted reports whether B's computation observed the machine halting
	// within the layout window (diagnostics only; R itself never needs N to
	// halt).
	CodesTested int
	Truncated   bool
}

// RunSeparation is the paper's algorithm R: given any machine N (halting or
// not), compute B(N, r) and run the candidate decider on every
// neighbourhood; accept iff all neighbourhoods are accepted. R always halts.
// If a correct Id-oblivious decider for P existed, R would compute a
// separator of L0 and L1 — impossible by Lemma 1. Experiments demonstrate
// the impossibility concretely: every budgeted candidate is fooled by
// machines whose runtime exceeds its budget.
func (p Params) RunSeparation(candidate CandidateOblivious) (*SeparationResult, error) {
	gen, err := p.GenerateNeighborhoods()
	if err != nil {
		return nil, err
	}
	res := &SeparationResult{Machine: p.Machine.Name, Accepted: true, Truncated: gen.Truncated}
	for code := range gen.Codes {
		res.CodesTested++
		if candidate.DecideCode(code) == local.No {
			res.Accepted = false
		}
	}
	return res, nil
}

// RunSeparationWithAlgorithm is RunSeparation for a genuine view-deciding
// Id-oblivious algorithm (the paper's A* is exactly such an algorithm): the
// candidate runs on one representative view per neighbourhood code. The
// candidate's horizon must not exceed the construction's r (views are
// radius-r).
func (p Params) RunSeparationWithAlgorithm(candidate local.ObliviousAlgorithm) (*SeparationResult, error) {
	if candidate.Horizon() > p.R {
		return nil, fmt.Errorf("halting: candidate horizon %d exceeds r=%d", candidate.Horizon(), p.R)
	}
	gen, err := p.GenerateNeighborhoods()
	if err != nil {
		return nil, err
	}
	res := &SeparationResult{Machine: p.Machine.Name, Accepted: true, Truncated: gen.Truncated}
	for _, view := range gen.Samples {
		res.CodesTested++
		if candidate.DecideOblivious(view) == local.No {
			res.Accepted = false
		}
	}
	return res, nil
}

// BudgetedCandidate is the natural — and necessarily incorrect — candidate:
// it ignores the neighbourhood structure and simulates the machine for a
// fixed budget, rejecting only if it sees a non-'0' halting output within
// the budget. Machines in L1 with runtime beyond the budget fool it.
type BudgetedCandidate struct {
	Machine *turing.Machine
	Budget  int
}

// Name implements CandidateOblivious.
func (c *BudgetedCandidate) Name() string {
	return fmt.Sprintf("budgeted(%s,%d)", c.Machine.Name, c.Budget)
}

// DecideCode implements CandidateOblivious.
func (c *BudgetedCandidate) DecideCode(string) local.Verdict {
	res, err := turing.Run(c.Machine, c.Budget)
	if err != nil {
		return local.No
	}
	if res.Halted && res.Output != '0' {
		return local.No
	}
	return local.Yes
}

// HaltingPatternCandidate scans the neighbourhood code for a halting cell
// with a non-'0' output — the naive "look for the halting configuration"
// decider. Property (P3)'s obfuscation defeats it: the fragment collection
// contains every syntactically possible halting pattern, for every machine,
// so this candidate rejects everything (including yes-instances).
type HaltingPatternCandidate struct {
	Params Params
}

// Name implements CandidateOblivious.
func (c *HaltingPatternCandidate) Name() string { return "halting-pattern-scan" }

// DecideCode implements CandidateOblivious.
func (c *HaltingPatternCandidate) DecideCode(code string) local.Verdict {
	for _, out := range []turing.Symbol{'1', turing.Blank} {
		needle := fmt.Sprintf("cell{s=%c;q=%d;", out, c.Params.Machine.Halt)
		if strings.Contains(code, needle) {
			return local.No
		}
	}
	return local.Yes
}
