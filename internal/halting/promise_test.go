package halting

import (
	"math/rand"
	"testing"

	"repro/internal/decide"
	"repro/internal/turing"
)

func newTestRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestPromiseRInstances(t *testing.T) {
	registry := append(turing.Library(), turing.Counter(5, '0'))
	prob, err := PromiseR(
		[]*turing.Machine{turing.Looper(), turing.Zigzag()},
		[]*turing.Machine{turing.Counter(5, '0'), turing.BusyBeaverish()},
		500,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(prob.Yes) != 2 || len(prob.No) != 2 {
		t.Fatalf("suite sizes %d/%d", len(prob.Yes), len(prob.No))
	}
	// Counter(5) runtime 6: cycle size 7.
	if prob.No[0].N() != 7 {
		t.Errorf("no-instance size %d, want 7", prob.No[0].N())
	}

	// The ID decider is correct under every unbounded assignment tried.
	rep := decide.VerifyLD(PromiseRIDDecider(registry), prob.AsSuite(), decide.UnboundedIDs(3), 5)
	if !rep.OK() {
		t.Fatalf("promise-R ID decider failed: %s\n%v", rep, rep.Failures)
	}
}

func TestPromiseRRejectsBadSuites(t *testing.T) {
	if _, err := PromiseR([]*turing.Machine{turing.HaltWith('0')}, nil, 100); err == nil {
		t.Error("halting machine accepted as yes-instance")
	}
	if _, err := PromiseR(nil, []*turing.Machine{turing.Looper()}, 100); err == nil {
		t.Error("non-halting machine accepted as no-instance")
	}
}

func TestPromiseRBudgetedObliviousFooled(t *testing.T) {
	registry := append(turing.Library(), turing.Counter(9, '0'), turing.Counter(60, '0'))
	prob, err := PromiseR(
		[]*turing.Machine{turing.Looper()},
		[]*turing.Machine{turing.Counter(9, '0')}, // runtime 10
		500,
	)
	if err != nil {
		t.Fatal(err)
	}
	// Budget below the runtime: the no-instance is accepted — fooled.
	weak := PromiseRBudgetedOblivious(registry, 5)
	rep := decide.VerifyLDStar(weak, prob.AsSuite())
	if rep.NoPassed != 0 {
		t.Error("budget-5 decider should be fooled by runtime-10 machine")
	}
	if rep.YesPassed != rep.YesTotal {
		t.Error("budget-5 decider should still accept loopers")
	}
	// Budget above the runtime: correct on this suite (but there is always a
	// longer machine — the point of the lower bound).
	strong := PromiseRBudgetedOblivious(registry, 50)
	rep = decide.VerifyLDStar(strong, prob.AsSuite())
	if !rep.OK() {
		t.Errorf("budget-50 decider should handle runtime-10: %s", rep)
	}
	longer, err := PromiseR(nil, []*turing.Machine{turing.Counter(60, '0')}, 500)
	if err != nil {
		t.Fatal(err)
	}
	rep = decide.VerifyLDStar(strong, longer.AsSuite())
	if rep.NoPassed != 0 {
		t.Error("budget-50 decider must be fooled by runtime-61 machine")
	}
}

func TestMachineCycleLabelDistinct(t *testing.T) {
	a := MachineCycleLabel(turing.HaltWith('0'))
	b := MachineCycleLabel(turing.HaltWith('1'))
	if a == b {
		t.Error("different machines share a label")
	}
	if PromiseRInstance(turing.Looper(), 5).N() != 5 {
		t.Error("instance size wrong")
	}
}
