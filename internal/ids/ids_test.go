package ids

import (
	"testing"
	"testing/quick"
)

func TestBounds(t *testing.T) {
	tests := []struct {
		b    Bound
		n    int
		want int
	}{
		{Linear(1), 5, 5},
		{Linear(3), 5, 15},
		{Quadratic(), 4, 20},
		{Exponential(), 5, 32},
		{Exponential(), 0, 1},
	}
	for _, tc := range tests {
		if got := tc.b.F(tc.n); got != tc.want {
			t.Errorf("%s: F(%d) = %d, want %d", tc.b.Name(), tc.n, got, tc.want)
		}
	}
}

func TestInverseF(t *testing.T) {
	// f(n) = 2n. f^-1(i) = smallest j with f(j) > i.
	b := Linear(2)
	tests := []struct{ i, want int }{
		{0, 1}, // f(1)=2 > 0
		{1, 1}, // f(1)=2 > 1
		{2, 2}, // f(1)=2 <= 2, f(2)=4 > 2
		{7, 4}, // f(3)=6 <= 7, f(4)=8 > 7
		{8, 5}, // f(4)=8 <= 8
		{100, 51},
	}
	for _, tc := range tests {
		if got := InverseF(b, tc.i); got != tc.want {
			t.Errorf("InverseF(2n, %d) = %d, want %d", tc.i, got, tc.want)
		}
	}
}

func TestInverseFProperty_Quick(t *testing.T) {
	b := Quadratic()
	property := func(raw uint16) bool {
		i := int(raw % 5000)
		j := InverseF(b, i)
		// j is the smallest index with f(j) > i.
		return b.F(j) > i && (j == 1 || b.F(j-1) <= i)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSequential(t *testing.T) {
	ids := Sequential(4)
	for i, id := range ids {
		if id != i {
			t.Fatalf("Sequential(4) = %v", ids)
		}
	}
	from := SequentialFrom(3, 10)
	if from[0] != 10 || from[2] != 12 {
		t.Fatalf("SequentialFrom = %v", from)
	}
	if err := Valid(ids, Linear(1)); err != nil {
		t.Errorf("sequential ids should satisfy f(n)=n: %v", err)
	}
}

func TestRandomBounded(t *testing.T) {
	for _, tc := range []struct {
		n int
		b Bound
	}{
		{1, Linear(1)},
		{8, Linear(1)},   // dense: permutation path
		{8, Quadratic()}, // sparse: rejection path
		{20, Exponential()},
	} {
		ids := RandomBounded(tc.n, tc.b, 99)
		if len(ids) != tc.n {
			t.Fatalf("n=%d: got %d ids", tc.n, len(ids))
		}
		if err := Valid(ids, tc.b); err != nil {
			t.Errorf("n=%d bound=%s: %v", tc.n, tc.b.Name(), err)
		}
		again := RandomBounded(tc.n, tc.b, 99)
		for i := range ids {
			if ids[i] != again[i] {
				t.Fatalf("RandomBounded not deterministic for fixed seed")
			}
		}
	}
}

func TestRandomUnbounded(t *testing.T) {
	ids := RandomUnbounded(10, 1000, 5)
	if err := Valid(ids, nil); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 10 {
		t.Fatalf("got %d ids", len(ids))
	}
	// Scale < 1 is clamped.
	small := RandomUnbounded(3, 0, 5)
	if err := Valid(small, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdversarial(t *testing.T) {
	b := Linear(2)
	ids := Adversarial(4, b) // f(4)=8: ids 7,6,5,4
	want := []int{7, 6, 5, 4}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Adversarial = %v, want %v", ids, want)
		}
	}
	if err := Valid(ids, b); err != nil {
		t.Fatal(err)
	}
	// The key property for the paper's lower bounds: the maximum adversarial
	// identifier is f(n)-1, which grows with n.
	if ids[0] != b.F(4)-1 {
		t.Fatalf("max adversarial id = %d, want f(n)-1 = %d", ids[0], b.F(4)-1)
	}
}

func TestValidRejects(t *testing.T) {
	if err := Valid([]int{0, 1, 1}, nil); err == nil {
		t.Error("duplicate accepted")
	}
	if err := Valid([]int{-1, 0}, nil); err == nil {
		t.Error("negative accepted")
	}
	if err := Valid([]int{0, 5}, Linear(1)); err == nil {
		t.Error("bound violation accepted: id 5 with f(2)=2")
	}
	if err := Valid([]int{0, 1}, Linear(1)); err != nil {
		t.Errorf("legal assignment rejected: %v", err)
	}
}

func TestTabulatedOracle(t *testing.T) {
	o := &TabulatedOracle{
		Table:   map[int]int{1: 10, 2: 100},
		Default: func(n int) int { return n * 1000 },
		Label:   "test",
	}
	if o.Query(1) != 10 || o.Query(2) != 100 {
		t.Error("table lookup failed")
	}
	if o.Query(3) != 3000 {
		t.Error("default fallback failed")
	}
	if o.Name() != "test" {
		t.Error("name wrong")
	}
	nodefault := &TabulatedOracle{Table: map[int]int{}}
	if nodefault.Query(7) != 0 {
		t.Error("missing default should yield 0")
	}
	b := OracleBound(o)
	if b.F(2) != 100 {
		t.Error("OracleBound should delegate to Query")
	}
	if b.Name() != "oracle:test" {
		t.Errorf("OracleBound name = %q", b.Name())
	}
}

func TestRenumberings(t *testing.T) {
	rs := Renumberings(5, 4, Linear(3), 7)
	if len(rs) != 4 {
		t.Fatalf("got %d renumberings, want 4", len(rs))
	}
	seen := make(map[string]struct{})
	for _, ids := range rs {
		if err := Valid(ids, Linear(3)); err != nil {
			t.Fatal(err)
		}
		key := ""
		for _, id := range ids {
			key += string(rune('A' + id))
		}
		if _, dup := seen[key]; dup {
			t.Fatal("duplicate renumbering")
		}
		seen[key] = struct{}{}
	}
	unbounded := Renumberings(5, 3, nil, 7)
	if len(unbounded) != 3 {
		t.Fatalf("unbounded renumberings = %d", len(unbounded))
	}
	for _, ids := range unbounded {
		if err := Valid(ids, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("SortedCopy = %v", out)
	}
	if in[0] != 3 {
		t.Fatal("SortedCopy mutated input")
	}
}

func TestBoundPanics(t *testing.T) {
	t.Run("linear c<1", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		Linear(0)
	})
	t.Run("exponential overflow", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		Exponential().F(70)
	})
	t.Run("adversarial under-capacity", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		Adversarial(3, FuncBound{Fn: func(n int) int { return 1 }, Label: "bad"})
	})
}
