// Package ids models identifier assignments Id: V -> N and the paper's two
// regimes for them:
//
//   - (B):  bounded identifiers, Id(v) < f(n) for a fixed function f of the
//     number of nodes n of the (connected) input graph;
//   - (¬B): unbounded identifiers.
//
// It also provides the Oracle wrapper used to model assumption (¬C): a node
// may consult an arbitrary tabulated function as a black box, standing in for
// the paper's "possibly uncomputable" local computation. The substitution is
// documented in DESIGN.md: the separations only use that f is monotone and
// that nodes can evaluate (or query) f and its inverse, which a tabulated
// oracle reproduces exactly on the finite instances we run.
package ids

import (
	"fmt"
	"math/rand"
	"sort"
)

// Bound is the function f in assumption (B): identifiers in an n-node graph
// are required to satisfy Id(v) < f(n).
type Bound interface {
	// F returns f(n). f must be monotone non-decreasing with f(n) >= n (there
	// must be room for n distinct identifiers).
	F(n int) int
	// Name identifies the bound in reports.
	Name() string
}

// FuncBound adapts a plain function to a Bound.
type FuncBound struct {
	Fn    func(n int) int
	Label string
}

// F implements Bound.
func (b FuncBound) F(n int) int { return b.Fn(n) }

// Name implements Bound.
func (b FuncBound) Name() string { return b.Label }

// Linear returns f(n) = c*n.
func Linear(c int) Bound {
	if c < 1 {
		panic("ids: linear bound needs c >= 1")
	}
	return FuncBound{Fn: func(n int) int { return c * n }, Label: fmt.Sprintf("%d*n", c)}
}

// Quadratic returns f(n) = n^2 + n (the +n keeps f(n) >= n for n <= 1).
func Quadratic() Bound {
	return FuncBound{Fn: func(n int) int { return n*n + n }, Label: "n^2+n"}
}

// Exponential returns f(n) = 2^n (capped to avoid overflow; instances in this
// repository stay far below the cap).
func Exponential() Bound {
	return FuncBound{
		Fn: func(n int) int {
			if n >= 62 {
				panic(fmt.Sprintf("ids: exponential bound overflow at n=%d", n))
			}
			return 1 << uint(n)
		},
		Label: "2^n",
	}
}

// InverseF returns the smallest j such that f(j) >= i, written f^-1(i) in the
// paper: the information an identifier i leaks about the graph size under (B)
// is exactly n >= f^-1(i) whenever i >= f(f^-1(i)-1)... in practice, a node
// holding identifier i knows n > j-1 for the largest j with f(j) <= i.
func InverseF(b Bound, i int) int {
	j := 1
	for b.F(j) < i+1 { // smallest j with f(j) >= i+1, i.e. f(j) > i
		j++
	}
	return j
}

// Oracle is a black-box function from naturals to naturals used to model
// assumption (¬C). It is deliberately an interface so that callers cannot
// inspect it other than by querying; the paper's uncomputable-f scenarios are
// reproduced by tabulated oracles whose table is hidden from the algorithm.
type Oracle interface {
	Query(n int) int
	Name() string
}

// TabulatedOracle is an Oracle backed by an explicit table (with a default
// for out-of-table queries). It stands in for an uncomputable function: the
// algorithm under test receives only the interface and cannot do better than
// query it pointwise.
type TabulatedOracle struct {
	Table   map[int]int
	Default func(n int) int
	Label   string
}

// Query implements Oracle.
func (o *TabulatedOracle) Query(n int) int {
	if v, ok := o.Table[n]; ok {
		return v
	}
	if o.Default != nil {
		return o.Default(n)
	}
	return 0
}

// Name implements Oracle.
func (o *TabulatedOracle) Name() string { return o.Label }

// OracleBound turns an Oracle into a Bound, modelling the (B, ¬C) corner:
// the identifier bound f exists but the algorithm can only query it.
func OracleBound(o Oracle) Bound {
	return FuncBound{Fn: o.Query, Label: "oracle:" + o.Name()}
}

// Assignment generators -------------------------------------------------------

// Sequential returns the identifier assignment 0, 1, ..., n-1.
func Sequential(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// SequentialFrom returns start, start+1, ..., start+n-1.
func SequentialFrom(n, start int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = start + i
	}
	return ids
}

// RandomBounded returns a uniformly random one-to-one assignment of n
// identifiers drawn from {0, ..., f(n)-1}, deterministic given the seed.
func RandomBounded(n int, b Bound, seed int64) []int {
	limit := b.F(n)
	if limit < n {
		panic(fmt.Sprintf("ids: bound %s gives f(%d)=%d < n", b.Name(), n, limit))
	}
	rng := rand.New(rand.NewSource(seed))
	if limit <= 4*n {
		// Small range: permute the whole range and take a prefix.
		perm := rng.Perm(limit)
		return perm[:n]
	}
	// Sparse range: rejection-sample distinct values.
	seen := make(map[int]struct{}, n)
	ids := make([]int, 0, n)
	for len(ids) < n {
		v := rng.Intn(limit)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		ids = append(ids, v)
	}
	return ids
}

// RandomUnbounded returns n distinct identifiers with no a-priori bound: it
// samples from a range that grows with both n and an adversarial "scale"
// parameter, modelling (¬B) where identifier magnitude is unrelated to n.
func RandomUnbounded(n int, scale int, seed int64) []int {
	if scale < 1 {
		scale = 1
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[int]struct{}, n)
	ids := make([]int, 0, n)
	for len(ids) < n {
		v := rng.Intn(scale * (n + 1))
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		ids = append(ids, v)
	}
	return ids
}

// Adversarial returns the assignment that places the largest admissible
// identifiers under bound b: f(n)-1, f(n)-2, ..., f(n)-n. Lower bounds in the
// paper hinge on such assignments existing (some node must carry an
// identifier >= f(n)-n >= ... on large instances).
func Adversarial(n int, b Bound) []int {
	limit := b.F(n)
	if limit < n {
		panic(fmt.Sprintf("ids: bound %s gives f(%d)=%d < n", b.Name(), n, limit))
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = limit - 1 - i
	}
	return ids
}

// Valid reports whether ids is a legal assignment for an n-node graph under
// bound b (nil b means unbounded): non-negative, pairwise distinct, below
// f(n) when bounded.
func Valid(ids []int, b Bound) error {
	n := len(ids)
	seen := make(map[int]struct{}, n)
	for v, id := range ids {
		if id < 0 {
			return fmt.Errorf("ids: negative identifier %d at node %d", id, v)
		}
		if _, dup := seen[id]; dup {
			return fmt.Errorf("ids: duplicate identifier %d", id)
		}
		seen[id] = struct{}{}
		if b != nil && id >= b.F(n) {
			return fmt.Errorf("ids: identifier %d violates bound %s: f(%d)=%d", id, b.Name(), n, b.F(n))
		}
	}
	return nil
}

// Renumberings returns k distinct pseudo-random renumberings of an n-node
// instance under bound b (unbounded if b is nil), for testing that a decider
// really is Id-oblivious. Deterministic given the seed.
func Renumberings(n, k int, b Bound, seed int64) [][]int {
	out := make([][]int, 0, k)
	keys := make(map[string]struct{}, k)
	for i := 0; len(out) < k && i < 100*k+100; i++ {
		var ids []int
		if b != nil {
			ids = RandomBounded(n, b, seed+int64(i))
		} else {
			ids = RandomUnbounded(n, i+1, seed+int64(i))
		}
		key := fmt.Sprint(ids)
		if _, dup := keys[key]; dup {
			continue
		}
		keys[key] = struct{}{}
		out = append(out, ids)
	}
	return out
}

// SortedCopy returns the identifiers in increasing order (handy in tests).
func SortedCopy(ids []int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	return out
}
