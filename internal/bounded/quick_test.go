package bounded

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/tree"
)

// Property: every small instance H+ is accepted by the structure verifier
// and contained in P, across random slices and both r values.
func TestSmallInstancesAlwaysVerifyProperty_Quick(t *testing.T) {
	params := map[int]Params{1: testParams(1), 2: testParams(2)}
	trees := map[int]*tree.LayeredTree{1: params[1].Tree(), 2: params[2].Tree()}
	slices := map[int][]tree.Slice{
		1: trees[1].AllSlices(1),
		2: trees[2].AllSlices(2),
	}
	property := func(rRaw, sRaw uint16) bool {
		r := 1 + int(rRaw)%2
		p := params[r]
		s := slices[r][int(sRaw)%len(slices[r])]
		h, err := p.SmallInstance(trees[r], s)
		if err != nil {
			return false
		}
		if !p.ContainsP(h) {
			return false
		}
		return local.RunOblivious(p.StructureVerifier(), h).Accepted
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the ID decider accepts small instances under every legal bounded
// assignment and rejects T_r under every legal bounded assignment.
func TestIDDeciderSeparationProperty_Quick(t *testing.T) {
	p := testParams(1)
	smalls, err := p.AllSmallInstances()
	if err != nil {
		t.Fatal(err)
	}
	large := p.LargeInstance()
	dec := p.IDDecider()
	property := func(pick uint16, seed int64) bool {
		h := smalls[int(pick)%len(smalls)]
		hIDs := ids.RandomBounded(h.N(), p.Bound, seed)
		if !local.Run(dec, graph.NewInstance(h, hIDs)).Accepted {
			return false
		}
		lIDs := ids.RandomBounded(large.N(), p.Bound, seed+1)
		return !local.Run(dec, graph.NewInstance(large, lIDs)).Accepted
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: slice borders computed from the graph always match the
// verifier's arithmetic border prediction.
func TestBorderPredictionProperty_Quick(t *testing.T) {
	p := testParams(2)
	lt := p.Tree()
	all := lt.AllSlices(p.R)
	property := func(pick uint16) bool {
		s := all[int(pick)%len(all)]
		borderNodes, err := lt.BorderNodes(s)
		if err != nil {
			return false
		}
		want := make(map[tree.Coord]struct{}, len(borderNodes))
		for _, v := range borderNodes {
			want[lt.Coords[v]] = struct{}{}
		}
		return coordSetsEqual(p.expectedBorder(s), want)
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: cycle views of the promise pair are identical for every valid
// (r, horizon) combination.
func TestCycleIndistinguishabilityProperty_Quick(t *testing.T) {
	property := func(rRaw, tRaw uint8) bool {
		horizon := int(tRaw % 3)
		r := 2*horizon + 3 + int(rRaw%5) // ensures r >= 2t+2 and r >= 3
		p := Params{R: r, Bound: ids.Linear(2)}
		same, err := p.CycleViewsIdentical(horizon)
		return err == nil && same
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
