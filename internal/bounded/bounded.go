// Package bounded implements Section 2 of the paper: the separation
// LD* != LD under bounded identifiers (B, ¬C).
//
// The construction: T_r is a layered tree of depth R(r) = f(2^(r+1)+1),
// every node labelled (r, x, y). "Small" instances H+ are induced depth-r
// sub-layered-trees H of T_r (aligned slices) augmented with a pivot node
// adjacent to all border nodes of H. The properties are
//
//	P  = ∪_r { H+ : H ≤_r T_r }          (small instances)
//	P' = P ∪ { T_r : r ≥ 0 }             (small or large instances)
//
// P' is decidable Id-obliviously (structure checks); P is decidable with
// identifiers (a node with identifier ≥ R(r) witnesses a large instance and
// rejects) but not Id-obliviously (the t-views of T_r are covered by views of
// small instances — measured, with the known boundary caveat, by experiment
// E5).
//
// Reproduction notes (documented deviations from the paper's informal text):
//   - The bound f must be strictly increasing; the "+1" slack in
//     R(r) = f(2^(r+1)+1) then guarantees every identifier of a small
//     instance is < R(r) while T_r always contains one ≥ R(r).
//   - The cycle promise problem uses n = f(r)+1 (not f(r)) for no-instances:
//     with exactly f(r) nodes an adversary can assign identifiers 0..f(r)-1
//     and no node can prove n != r. The +1 makes the pigeonhole argument
//     airtight.
//   - At the bottom boundary of T_r, range-edge nodes of the deepest slices
//     are pivot-adjacent in every small instance containing them, so their
//     T_r-views are not perfectly covered; E5 measures and reports this
//     (interior coverage → 1).
package bounded

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/tree"
)

// Params fixes the construction: the locality parameter r and the identifier
// bound f (strictly increasing).
type Params struct {
	R     int // the paper's r
	Bound ids.Bound
}

// BigR computes R(r) = f(2^(r+1) + 1).
func (p Params) BigR() int {
	return p.Bound.F((1 << (p.R + 1)) + 1)
}

// Tree returns the underlying layered tree of depth R(r) with its coordinate
// system.
func (p Params) Tree() *tree.LayeredTree {
	return tree.NewLayeredTree(p.BigR())
}

// LargeInstance builds the labelled graph T_r.
func (p Params) LargeInstance() *graph.Labeled {
	return p.Tree().Labeled(p.R)
}

// SmallInstance builds H+ for the given slice of T_r: the induced sub-tree
// plus a pivot node adjacent to all border nodes. The pivot is the last node.
func (p Params) SmallInstance(t *tree.LayeredTree, s tree.Slice) (*graph.Labeled, error) {
	if s.Depth != p.R {
		return nil, fmt.Errorf("bounded: slice depth %d, want r=%d", s.Depth, p.R)
	}
	nodes, err := t.SliceNodes(s)
	if err != nil {
		return nil, err
	}
	border, err := t.BorderNodes(s)
	if err != nil {
		return nil, err
	}
	labeledTree := t.Labeled(p.R)
	sub, orig := labeledTree.InducedSubgraph(nodes)
	// Append the pivot.
	nb := graph.NewBuilderHint(sub.G.N(), sub.G.M()+len(border))
	nb.AddGraphAt(sub.G, 0)
	pivot := nb.AddNode()
	pos := make(map[int]int, len(orig))
	for i, v := range orig {
		pos[v] = i
	}
	for _, b := range border {
		nb.AddEdge(pivot, pos[b])
	}
	labels := append(append([]graph.Label(nil), sub.Labels...), tree.PivotLabel(p.R))
	return graph.NewLabeled(nb.Build(), labels), nil
}

// AllSmallInstances builds every H+ in H_r.
func (p Params) AllSmallInstances() ([]*graph.Labeled, error) {
	return p.AllSmallInstancesOf(p.Tree())
}

// AllSmallInstancesOf builds every H+ over an arbitrary-depth layered tree.
// With t = p.Tree() this is exactly H_r; other depths decouple the coverage
// experiments from the (infeasibly deep) R(r) and are labelled as such in
// reports.
func (p Params) AllSmallInstancesOf(t *tree.LayeredTree) ([]*graph.Labeled, error) {
	slices := t.AllSlices(p.R)
	out := make([]*graph.Labeled, 0, len(slices))
	for _, s := range slices {
		h, err := p.SmallInstance(t, s)
		if err != nil {
			return nil, err
		}
		out = append(out, h)
	}
	return out, nil
}

// Membership ---------------------------------------------------------------------

// VerifySmall checks globally whether l is exactly some H+ of the
// parameters, returning the witnessing slice.
func (p Params) VerifySmall(l *graph.Labeled) (tree.Slice, error) {
	// Locate the unique pivot.
	pivot := -1
	for v, lab := range l.Labels {
		if r, ok := tree.IsPivotLabel(lab); ok {
			if r != p.R {
				return tree.Slice{}, fmt.Errorf("bounded: pivot carries r=%d, want %d", r, p.R)
			}
			if pivot != -1 {
				return tree.Slice{}, fmt.Errorf("bounded: multiple pivots")
			}
			pivot = v
		}
	}
	if pivot == -1 {
		return tree.Slice{}, fmt.Errorf("bounded: no pivot")
	}
	// Parse coordinates of the remaining nodes.
	coords := make(map[int]tree.Coord, l.N()-1)
	index := make(map[tree.Coord]int, l.N()-1)
	minY := 1 << 30
	for v, lab := range l.Labels {
		if v == pivot {
			continue
		}
		r, c, err := tree.ParseCoordLabel(lab)
		if err != nil {
			return tree.Slice{}, err
		}
		if r != p.R {
			return tree.Slice{}, fmt.Errorf("bounded: node %d carries r=%d, want %d", v, r, p.R)
		}
		if _, dup := index[c]; dup {
			return tree.Slice{}, fmt.Errorf("bounded: duplicate coordinate %+v", c)
		}
		coords[v] = c
		index[c] = v
		if c.Y < minY {
			minY = c.Y
		}
	}
	if len(coords) == 0 {
		return tree.Slice{}, fmt.Errorf("bounded: only a pivot")
	}
	// The slice root is the unique minimum-level node.
	var root tree.Coord
	rootCount := 0
	for _, c := range coords {
		if c.Y == minY {
			root = c
			rootCount++
		}
	}
	if rootCount != 1 {
		return tree.Slice{}, fmt.Errorf("bounded: %d nodes at top level", rootCount)
	}
	s := tree.Slice{RootX: root.X, RootY: root.Y, Depth: p.R}
	want, err := p.SmallInstance(p.Tree(), s)
	if err != nil {
		return tree.Slice{}, err
	}
	if !graph.Isomorphic(l, want) {
		return tree.Slice{}, fmt.Errorf("bounded: instance differs from H+ of slice %+v", s)
	}
	return s, nil
}

// VerifyLarge checks globally whether l is exactly T_r.
func (p Params) VerifyLarge(l *graph.Labeled) error {
	depth, err := tree.VerifyLayeredTreeLabels(l, p.R)
	if err != nil {
		return err
	}
	if depth != p.BigR() {
		return fmt.Errorf("bounded: depth %d, want R(r) = %d", depth, p.BigR())
	}
	return nil
}

// PropertyP is the paper's P for fixed parameters: membership = some H+.
func (p Params) PropertyP() string { return fmt.Sprintf("P(r=%d,f=%s)", p.R, p.Bound.Name()) }

// ContainsP reports (G, x) ∈ P.
func (p Params) ContainsP(l *graph.Labeled) bool {
	_, err := p.VerifySmall(l)
	return err == nil
}

// ContainsPPrime reports (G, x) ∈ P' = P ∪ {T_r}.
func (p Params) ContainsPPrime(l *graph.Labeled) bool {
	return p.ContainsP(l) || p.VerifyLarge(l) == nil
}

// Local deciders --------------------------------------------------------------------

// StructureVerifier returns the Id-oblivious local algorithm witnessing
// P' ∈ LD*: every node performs the paper's coordinate and pivot checks on
// its radius-1 view. Under (¬C) the algorithm may consult the bound f (to
// know R(r)); here that is the Params value closed over, possibly an
// ids.Oracle-backed bound.
func (p Params) StructureVerifier() local.ObliviousAlgorithm {
	return local.ObliviousFunc(fmt.Sprintf("P'-verifier(r=%d)", p.R), 1, p.checkView)
}

// checkView performs all radius-1 structure checks for one node.
func (p Params) checkView(view *graph.View) local.Verdict {
	root := view.Root
	lab := view.Labels[root]
	if _, ok := tree.IsPivotLabel(lab); ok {
		return p.checkPivotView(view)
	}
	r, c, err := tree.ParseCoordLabel(lab)
	if err != nil || r != p.R {
		return local.No
	}
	bigR := p.BigR()
	if c.Y < 0 || c.Y > bigR || c.X < 0 || c.X >= 1<<c.Y {
		return local.No
	}
	// Classify neighbours by label.
	var hasParent, hasLeft, hasRight bool
	children := 0
	pivots := 0
	for _, u := range view.G.Neighbors(root) {
		ulab := view.Labels[u]
		if ur, ok := tree.IsPivotLabel(ulab); ok {
			if ur != p.R {
				return local.No
			}
			pivots++
			continue
		}
		ur, uc, err := tree.ParseCoordLabel(ulab)
		if err != nil || ur != p.R {
			return local.No
		}
		switch {
		case c.Y > 0 && uc.Y == c.Y-1 && uc.X == c.X/2:
			hasParent = true
		case uc.Y == c.Y && uc.X == c.X-1:
			hasLeft = true
		case uc.Y == c.Y && uc.X == c.X+1:
			hasRight = true
		case uc.Y == c.Y+1 && (uc.X == 2*c.X || uc.X == 2*c.X+1):
			children++
		default:
			return local.No // unexpected neighbour
		}
	}
	if pivots > 1 {
		return local.No
	}
	pivotAdjacent := pivots == 1
	// Absence rules: every structurally expected neighbour is either present
	// or explained by the pivot (border gluing).
	expectParent := c.Y > 0
	if expectParent && !hasParent && !pivotAdjacent {
		return local.No
	}
	if !expectParent && hasParent {
		return local.No
	}
	expectLeft := c.X > 0
	if expectLeft && !hasLeft && !pivotAdjacent {
		return local.No
	}
	expectRight := c.X < 1<<c.Y-1
	if expectRight && !hasRight && !pivotAdjacent {
		return local.No
	}
	expectChildren := c.Y < bigR
	switch {
	case expectChildren && children == 0 && !pivotAdjacent:
		return local.No
	case expectChildren && children == 1:
		return local.No // half-missing children are never legal
	case !expectChildren && children > 0:
		return local.No
	}
	// A pivot edge is only legal on border nodes: some expected neighbour is
	// absent.
	isBorder := (expectParent && !hasParent) ||
		(expectLeft && !hasLeft) ||
		(expectRight && !hasRight) ||
		(expectChildren && children == 0)
	if pivotAdjacent && !isBorder {
		return local.No
	}
	return local.Yes
}

// checkPivotView verifies a pivot node: its neighbourhood must be exactly
// the border of some depth-r slice of T_r. The pivot sees all border nodes,
// which is the crucial property the paper's proof of P' ∈ LD* uses.
func (p Params) checkPivotView(view *graph.View) local.Verdict {
	neighbours := view.G.Neighbors(view.Root)
	if len(neighbours) == 0 {
		return local.No
	}
	borderCoords := make(map[tree.Coord]struct{}, len(neighbours))
	minY := 1 << 30
	minYCount := 0
	var minYCoord tree.Coord
	minBottomX := 1 << 30
	maxY := -1
	for _, u := range neighbours {
		r, c, err := tree.ParseCoordLabel(view.Labels[u])
		if err != nil || r != p.R {
			return local.No
		}
		if _, dup := borderCoords[c]; dup {
			return local.No
		}
		borderCoords[c] = struct{}{}
		if c.Y < minY {
			minY, minYCount, minYCoord = c.Y, 1, c
		} else if c.Y == minY {
			minYCount++
		}
		if c.Y > maxY {
			maxY = c.Y
		}
	}
	for c := range borderCoords {
		if c.Y == maxY && c.X < minBottomX {
			minBottomX = c.X
		}
	}
	// Candidate slices: either the min-level border node is the slice root,
	// or the slice root is unbordered (top slice rooted at level 0) and the
	// border starts lower.
	var candidates []tree.Slice
	if minYCount == 1 {
		candidates = append(candidates, tree.Slice{RootX: minYCoord.X, RootY: minY, Depth: p.R})
	}
	if maxY-p.R >= 0 {
		candidates = append(candidates, tree.Slice{RootX: minBottomX >> p.R, RootY: maxY - p.R, Depth: p.R})
	}
	for _, s := range candidates {
		if s.RootY < 0 || s.RootY+p.R > p.BigR() || s.RootX < 0 || s.RootX >= 1<<s.RootY {
			continue
		}
		if coordSetsEqual(borderCoords, p.expectedBorder(s)) {
			return local.Yes
		}
	}
	return local.No
}

// expectedBorder computes the border coordinate set of a slice of T_r.
func (p Params) expectedBorder(s tree.Slice) map[tree.Coord]struct{} {
	bigR := p.BigR()
	out := make(map[tree.Coord]struct{})
	for d := 0; d <= s.Depth; d++ {
		y := s.RootY + d
		lo := s.RootX << d
		hi := (s.RootX+1)<<d - 1 // inclusive
		levelEdgeLeft := lo == 0
		levelEdgeRight := hi == 1<<y-1
		// Root: border iff it has a parent or lateral outside (y > 0).
		if d == 0 {
			if s.RootY > 0 {
				out[tree.Coord{X: lo, Y: y}] = struct{}{}
			}
			continue
		}
		// Range-edge columns: lateral outside unless at the level edge.
		if !levelEdgeLeft {
			out[tree.Coord{X: lo, Y: y}] = struct{}{}
		}
		if !levelEdgeRight {
			out[tree.Coord{X: hi, Y: y}] = struct{}{}
		}
		// Bottom level: children outside unless the slice bottoms out at T_r's
		// own bottom level.
		if d == s.Depth && y < bigR {
			for x := lo; x <= hi; x++ {
				out[tree.Coord{X: x, Y: y}] = struct{}{}
			}
		}
	}
	return out
}

func coordSetsEqual(a, b map[tree.Coord]struct{}) bool {
	if len(a) != len(b) {
		return false
	}
	for c := range a {
		if _, ok := b[c]; !ok {
			return false
		}
	}
	return true
}

// IDDecider returns the ID-using local algorithm witnessing P ∈ LD: run the
// structure checks (accepting both small and large instances), then reject
// if the node's own identifier is at least R(r) — which happens at some node
// of T_r under every legal bounded assignment, and never in a small
// instance.
func (p Params) IDDecider() local.Algorithm {
	verifier := p.StructureVerifier()
	return local.AlgorithmFunc(fmt.Sprintf("P-decider(r=%d)", p.R), 1, func(view *graph.View) local.Verdict {
		if verifier.DecideOblivious(view.StripIDs()) == local.No {
			return local.No
		}
		if view.RootID() >= p.BigR() {
			return local.No
		}
		return local.Yes
	})
}

// CoverageReport quantifies the indistinguishability at the heart of
// P ∉ LD*: which fraction of the radius-t oblivious views of the host
// layered tree occur in small instances. The paper's argument needs every
// view covered; the measured shape is coverage → 1 as r grows (uncovered
// nodes sit at dyadic positions x ≡ 0, -1 mod 2^(r-1), a 2^(2-r) fraction).
type CoverageReport struct {
	Params     Params
	Depth      int // depth of the host layered tree
	Horizon    int
	TotalNodes int
	Covered    int
	// InteriorCovered / InteriorNodes restrict to nodes whose distance to
	// the top and bottom levels exceeds the horizon — the "highlighted"
	// band of the paper's Figure 1.
	InteriorNodes   int
	InteriorCovered int
}

// Fraction returns the overall coverage fraction.
func (c CoverageReport) Fraction() float64 {
	if c.TotalNodes == 0 {
		return 1
	}
	return float64(c.Covered) / float64(c.TotalNodes)
}

// InteriorFraction returns the coverage fraction over the interior band.
func (c CoverageReport) InteriorFraction() float64 {
	if c.InteriorNodes == 0 {
		return 1
	}
	return float64(c.InteriorCovered) / float64(c.InteriorNodes)
}

// MeasureCoverage computes the coverage report for the exact construction
// (host = T_r of depth R(r)). Only feasible for very small parameters; use
// MeasureCoverageAtDepth for the parameter sweeps.
func (p Params) MeasureCoverage(horizon int) (CoverageReport, error) {
	return p.MeasureCoverageAtDepth(p.BigR(), horizon)
}

// MeasureCoverageAtDepth measures view coverage with a host layered tree of
// the given depth (decoupled from R(r), which grows beyond reach of any
// in-memory experiment for r >= 3; the construction is uniform in the depth,
// so the coverage shape is unaffected — see DESIGN.md).
func (p Params) MeasureCoverageAtDepth(depth, horizon int) (CoverageReport, error) {
	if depth < p.R {
		return CoverageReport{}, fmt.Errorf("bounded: depth %d < r %d", depth, p.R)
	}
	t := tree.NewLayeredTree(depth)
	large := t.Labeled(p.R)
	smalls, err := p.AllSmallInstancesOf(t)
	if err != nil {
		return CoverageReport{}, err
	}
	available := make(map[string]struct{})
	for _, h := range smalls {
		for code := range graph.ObliviousViewSet(h, horizon) {
			available[code] = struct{}{}
		}
	}
	rep := CoverageReport{Params: p, Depth: depth, Horizon: horizon, TotalNodes: large.N()}
	for v := 0; v < large.N(); v++ {
		_, c, err := tree.ParseCoordLabel(large.Labels[v])
		if err != nil {
			return CoverageReport{}, err
		}
		interior := c.Y > horizon && c.Y < depth-horizon
		if interior {
			rep.InteriorNodes++
		}
		code := graph.ObliviousViewOf(large, v, horizon).ObliviousCode()
		if _, ok := available[code]; ok {
			rep.Covered++
			if interior {
				rep.InteriorCovered++
			}
		}
	}
	return rep, nil
}
