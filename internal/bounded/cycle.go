package bounded

import (
	"fmt"

	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/local"
	"repro/internal/tree"
)

// This file implements the Section 2 warm-up: the promise problem on cycles.
//
//	Instances are labelled graphs (G, r) where G is an n-cycle and the
//	constant label is r. Promise: n = r or n = f(r)+1.
//	Yes-instance: n = r. No-instance: n = f(r)+1.
//
// (The paper states the no-instances as n = f(r); we use f(r)+1 so that the
// pigeonhole argument is airtight for every legal identifier assignment —
// with exactly f(r) nodes an adversary can use identifiers 0..f(r)-1 and no
// single identifier proves n > r. See the package comment.)
//
// An Id-oblivious algorithm cannot decide the problem: every radius-t view
// of either cycle is the same (for r > 2t+1), which CycleViewsIdentical
// verifies exactly. With identifiers the problem is decidable: a node with
// identifier >= f(r) knows n > r.

// CycleLabel is the constant input label carried by every cycle node.
func CycleLabel(r int) graph.Label { return fmt.Sprintf("cycle{r=%d}", r) }

// ParseCycleLabel inverts CycleLabel.
func ParseCycleLabel(lab graph.Label) (int, error) {
	var r int
	if _, err := fmt.Sscanf(lab, "cycle{r=%d}", &r); err != nil {
		return 0, fmt.Errorf("bounded: bad cycle label %q: %w", lab, err)
	}
	return r, nil
}

// CyclePromise builds the promise problem for the given parameters.
func (p Params) CyclePromise() (*decide.PromiseProblem, error) {
	if p.R < 3 {
		return nil, fmt.Errorf("bounded: cycle promise needs r >= 3, got %d", p.R)
	}
	yes := graph.UniformlyLabeled(graph.Cycle(p.R), CycleLabel(p.R))
	no := graph.UniformlyLabeled(graph.Cycle(p.Bound.F(p.R)+1), CycleLabel(p.R))
	return &decide.PromiseProblem{
		Name: fmt.Sprintf("cycle-promise(r=%d,f=%s)", p.R, p.Bound.Name()),
		Yes:  []*graph.Labeled{yes},
		No:   []*graph.Labeled{no},
	}, nil
}

// CycleIDDecider returns the ID-using decider for the cycle promise problem:
// a node rejects iff its identifier is at least f(r) (so n > r, and by the
// promise n = f(r)+1). Note the decider only needs to query f at r — under
// (B, ¬C) this is one oracle call.
func (p Params) CycleIDDecider() local.Algorithm {
	name := fmt.Sprintf("cycle-id-decider(r=%d,f=%s)", p.R, p.Bound.Name())
	return local.AlgorithmFunc(name, 1, func(view *graph.View) local.Verdict {
		r, err := ParseCycleLabel(view.Labels[view.Root])
		if err != nil || r != p.R {
			return local.No
		}
		if view.G.Degree(view.Root) != 2 {
			return local.No // promise violation; reject defensively
		}
		if view.RootID() >= p.Bound.F(p.R) {
			return local.No
		}
		return local.Yes
	})
}

// CycleViewsIdentical verifies the impossibility side exactly: at horizon t,
// the yes-cycle and the no-cycle have precisely the same set of oblivious
// views, hence any Id-oblivious algorithm accepts both or rejects both. This
// is a complete (not sampled) indistinguishability certificate.
func (p Params) CycleViewsIdentical(horizon int) (bool, error) {
	if p.R < 2*horizon+2 {
		return false, fmt.Errorf("bounded: need r > 2t+1 (r=%d, t=%d)", p.R, horizon)
	}
	prob, err := p.CyclePromise()
	if err != nil {
		return false, err
	}
	yesViews := graph.ObliviousViewSet(prob.Yes[0], horizon)
	noViews := graph.ObliviousViewSet(prob.No[0], horizon)
	if len(yesViews) != len(noViews) {
		return false, nil
	}
	for code := range yesViews {
		if _, ok := noViews[code]; !ok {
			return false, nil
		}
	}
	return true, nil
}

// TreeSuite bundles yes/no instances of the promise-free Section 2 property
// P for the decision harness: all small instances H_r (yes) and T_r plus
// structurally corrupted variants (no).
func (p Params) TreeSuite() (*decide.Suite, error) {
	smalls, err := p.AllSmallInstances()
	if err != nil {
		return nil, err
	}
	large := p.LargeInstance()
	no := []*graph.Labeled{large}
	// Corruptions: break a coordinate label, drop the pivot edge set, attach
	// the pivot to a non-border node.
	if len(smalls) > 0 {
		corruptLabel := smalls[0].Clone()
		corruptLabel.Labels[0] = tree.CoordLabel(p.R+1, tree.Coord{X: 0, Y: 0})
		no = append(no, corruptLabel)

		h := smalls[len(smalls)/2].Clone()
		// Find the pivot (last node by construction) and a non-border,
		// non-adjacent tree node, then add an illegal pivot edge.
		pivot := h.N() - 1
		for v := 0; v < pivot; v++ {
			if !h.G.HasEdge(pivot, v) {
				h.G.AddEdge(pivot, v)
				break
			}
		}
		no = append(no, h)
	}
	return &decide.Suite{
		Name: fmt.Sprintf("tree-suite(r=%d,f=%s)", p.R, p.Bound.Name()),
		Yes:  smalls,
		No:   no,
	}, nil
}
