package bounded

import (
	"testing"

	"repro/internal/decide"
	"repro/internal/graph"
	"repro/internal/ids"
	"repro/internal/local"
	"repro/internal/tree"
)

// testParams uses the identity bound f(n) = n, the slowest strictly
// increasing bound, keeping R(r) = 2^(r+1)+1 small enough to build.
func testParams(r int) Params {
	return Params{R: r, Bound: ids.Linear(1)}
}

func TestBigR(t *testing.T) {
	p := testParams(1)
	if p.BigR() != 5 {
		t.Fatalf("R(1) = %d, want f(2^2+1) = 5", p.BigR())
	}
	p2 := Params{R: 1, Bound: ids.Linear(2)}
	if p2.BigR() != 10 {
		t.Fatalf("R(1) under 2n = %d, want 10", p2.BigR())
	}
}

func TestInstancesWellFormed(t *testing.T) {
	p := testParams(1)
	large := p.LargeInstance()
	if err := p.VerifyLarge(large); err != nil {
		t.Fatalf("T_r rejected: %v", err)
	}
	smalls, err := p.AllSmallInstances()
	if err != nil {
		t.Fatal(err)
	}
	// Slices of depth 1 in a depth-5 tree: levels 0..4 as roots: 2^5-1 = 31.
	if len(smalls) != 31 {
		t.Fatalf("|H_r| = %d, want 31", len(smalls))
	}
	for i, h := range smalls {
		if _, err := p.VerifySmall(h); err != nil {
			t.Errorf("H+ %d rejected: %v", i, err)
		}
		// Every small instance has 2^(r+1)-1 tree nodes + 1 pivot.
		if h.N() != 4 {
			t.Errorf("H+ %d has %d nodes, want 4", i, h.N())
		}
		if !h.G.IsConnected() {
			t.Errorf("H+ %d disconnected", i)
		}
	}
}

func TestMembership(t *testing.T) {
	p := testParams(1)
	large := p.LargeInstance()
	if p.ContainsP(large) {
		t.Error("T_r must not be in P")
	}
	if !p.ContainsPPrime(large) {
		t.Error("T_r must be in P'")
	}
	smalls, _ := p.AllSmallInstances()
	for i, h := range smalls {
		if !p.ContainsP(h) {
			t.Errorf("H+ %d not in P", i)
		}
		if !p.ContainsPPrime(h) {
			t.Errorf("H+ %d not in P'", i)
		}
	}
	// Garbage is in neither.
	garbage := graph.UniformlyLabeled(graph.Cycle(5), "junk")
	if p.ContainsP(garbage) || p.ContainsPPrime(garbage) {
		t.Error("garbage accepted")
	}
	// A small instance with the pivot edge removed is in neither.
	h := smalls[3].Clone()
	mutilated, _ := h.InducedSubgraph(seq(h.N() - 1))
	if p.ContainsP(mutilated) {
		t.Error("pivot-less H accepted in P")
	}
}

func TestStructureVerifierAcceptsPPrime(t *testing.T) {
	p := testParams(1)
	verifier := p.StructureVerifier()
	if out := local.RunOblivious(verifier, p.LargeInstance()); !out.Accepted {
		t.Fatalf("verifier rejected T_r: %v", out.Verdicts)
	}
	smalls, _ := p.AllSmallInstances()
	for i, h := range smalls {
		if out := local.RunOblivious(verifier, h); !out.Accepted {
			t.Errorf("verifier rejected H+ %d: %v", i, out.Verdicts)
		}
	}
}

func TestStructureVerifierRejectsCorruption(t *testing.T) {
	p := testParams(1)
	verifier := p.StructureVerifier()
	smalls, _ := p.AllSmallInstances()

	tests := []struct {
		name string
		l    *graph.Labeled
	}{
		{"garbage labels", graph.UniformlyLabeled(graph.Cycle(6), "junk")},
		{"wrong r", tree.NewLayeredTree(5).Labeled(p.R + 1)},
		{"short tree", tree.NewLayeredTree(4).Labeled(p.R)},
		{"deep tree", tree.NewLayeredTree(6).Labeled(p.R)},
		{"pivot on non-border", func() *graph.Labeled {
			h := smalls[len(smalls)/2].Clone()
			pivot := h.N() - 1
			for v := 0; v < pivot; v++ {
				if !h.G.HasEdge(pivot, v) {
					h.G.AddEdge(pivot, v)
					break
				}
			}
			return h
		}()},
		{"pivotless slice", func() *graph.Labeled {
			h := smalls[len(smalls)/2]
			cut, _ := h.InducedSubgraph(seq(h.N() - 1))
			return cut
		}()},
		{"two pivots", func() *graph.Labeled {
			h := smalls[len(smalls)/2].Clone()
			pivot := h.N() - 1
			g := h.G.Clone()
			second := g.AddNode()
			for _, u := range h.G.Neighbors(pivot) {
				g.AddEdge(second, int(u))
			}
			labels := append(append([]graph.Label(nil), h.Labels...), tree.PivotLabel(p.R))
			return graph.NewLabeled(g, labels)
		}()},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if out := local.RunOblivious(verifier, tc.l); out.Accepted {
				t.Error("corrupted instance accepted")
			}
		})
	}
}

// The headline LD side: the ID-using decider accepts every small instance and
// rejects T_r, under every legal bounded identifier assignment tried.
func TestIDDeciderSeparates(t *testing.T) {
	p := testParams(1)
	suite, err := p.TreeSuite()
	if err != nil {
		t.Fatal(err)
	}
	rep := decide.VerifyLD(p.IDDecider(), suite, decide.BoundedIDs(p.Bound, 7), 5)
	if !rep.OK() {
		t.Fatalf("ID decider failed: %s\n%v", rep, rep.Failures)
	}
}

// The LD* impossibility, finite form: an Id-oblivious algorithm cannot use
// identifiers, and the structure checks accept both T_r and the small
// instances, so the only hope would be some view unique to T_r. Coverage
// measures exactly how much of T_r is view-covered by yes-instances.
func TestCoverageGrowsWithR(t *testing.T) {
	depth := 8
	horizon := 1
	var fractions []float64
	for _, r := range []int{2, 3, 4} {
		p := testParams(r)
		rep, err := p.MeasureCoverageAtDepth(depth, horizon)
		if err != nil {
			t.Fatal(err)
		}
		fractions = append(fractions, rep.InteriorFraction())
	}
	// Interior coverage must be monotone increasing in r and substantial for
	// r = 4 (uncovered nodes are the dyadic-boundary fraction ~2^(2-r)).
	if !(fractions[0] <= fractions[1] && fractions[1] <= fractions[2]) {
		t.Errorf("interior coverage not monotone: %v", fractions)
	}
	if fractions[2] < 0.7 {
		t.Errorf("interior coverage at r=4 = %v, want >= 0.7", fractions[2])
	}
	if fractions[0] > fractions[2]-0.1 {
		t.Errorf("coverage shape too flat: %v", fractions)
	}
}

func TestMeasureCoverageErrors(t *testing.T) {
	p := testParams(3)
	if _, err := p.MeasureCoverageAtDepth(2, 1); err == nil {
		t.Error("depth < r accepted")
	}
}

func TestCyclePromise(t *testing.T) {
	p := Params{R: 8, Bound: ids.Linear(2)} // f(8) = 16; no-instance is C17
	prob, err := p.CyclePromise()
	if err != nil {
		t.Fatal(err)
	}
	if prob.Yes[0].N() != 8 || prob.No[0].N() != 17 {
		t.Fatalf("cycle sizes %d/%d, want 8/17", prob.Yes[0].N(), prob.No[0].N())
	}
	// LD side: the ID decider separates under every legal assignment.
	rep := decide.VerifyLD(p.CycleIDDecider(), prob.AsSuite(), decide.BoundedIDs(p.Bound, 5), 6)
	if !rep.OK() {
		t.Fatalf("cycle ID decider failed: %s\n%v", rep, rep.Failures)
	}
	// LD* side: the complete indistinguishability certificate.
	same, err := p.CycleViewsIdentical(2)
	if err != nil {
		t.Fatal(err)
	}
	if !same {
		t.Fatal("cycle views should be identical at horizon 2")
	}
}

func TestCyclePromiseValidation(t *testing.T) {
	p := Params{R: 2, Bound: ids.Linear(1)}
	if _, err := p.CyclePromise(); err == nil {
		t.Error("r < 3 accepted")
	}
	big := Params{R: 8, Bound: ids.Linear(1)}
	if _, err := big.CycleViewsIdentical(4); err == nil {
		t.Error("horizon too large for r accepted")
	}
}

// The worst adversarial pair for an Id-oblivious algorithm: identical view
// multisets mean not even view STATISTICS help; this holds exactly on cycles.
func TestObliviousAlgorithmsProvablyFooledOnCycles(t *testing.T) {
	p := Params{R: 10, Bound: ids.Linear(2)}
	prob, _ := p.CyclePromise()
	yes, no := prob.Yes[0], prob.No[0]
	for horizon := 0; horizon <= 3; horizon++ {
		yesSet := graph.ObliviousViewSet(yes, horizon)
		noSet := graph.ObliviousViewSet(no, horizon)
		if len(yesSet) != 1 || len(noSet) != 1 {
			t.Fatalf("horizon %d: view sets %d/%d, want 1/1", horizon, len(yesSet), len(noSet))
		}
		for code := range yesSet {
			if _, ok := noSet[code]; !ok {
				t.Fatalf("horizon %d: views differ", horizon)
			}
		}
	}
}

func TestCycleLabelRoundTrip(t *testing.T) {
	r, err := ParseCycleLabel(CycleLabel(9))
	if err != nil || r != 9 {
		t.Fatalf("round trip: %d %v", r, err)
	}
	if _, err := ParseCycleLabel("bad"); err == nil {
		t.Error("bad label parsed")
	}
}

func TestExpectedBorderMatchesGraphBorder(t *testing.T) {
	// The pivot verifier's expected border computation must agree with the
	// graph-theoretic border for every slice.
	p := testParams(2) // R(2) = 9
	lt := tree.NewLayeredTree(p.BigR())
	for _, s := range lt.AllSlices(p.R) {
		want := make(map[tree.Coord]struct{})
		borderNodes, err := lt.BorderNodes(s)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range borderNodes {
			want[lt.Coords[v]] = struct{}{}
		}
		got := p.expectedBorder(s)
		if !coordSetsEqual(got, want) {
			t.Fatalf("slice %+v: expectedBorder %v != graph border %v", s, got, want)
		}
	}
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
