// Package local implements the LOCAL model of distributed computing as used
// by the paper: constant-horizon local algorithms evaluated on radius-t
// views, in both the ID-using and the Id-oblivious variants, plus a
// goroutine-per-node synchronous message-passing runtime that realises the
// same semantics operationally (a local algorithm with horizon t corresponds
// to a distributed algorithm running in t +- 1 synchronous rounds).
package local

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Verdict is a node's local output in a decision task.
type Verdict bool

// Local outputs. A property holds globally iff every node says Yes; it fails
// iff at least one node says No.
const (
	Yes Verdict = true
	No  Verdict = false
)

// String renders the verdict.
func (v Verdict) String() string {
	if v == Yes {
		return "yes"
	}
	return "no"
}

// Algorithm is an ID-using local algorithm: a function of the radius-t view
// (G, x, Id) |> B(v, t). Implementations must be deterministic functions of
// the view. Under assumption (C) they are ordinary computable Go functions;
// assumption (¬C) is modelled by algorithms that consult an ids.Oracle.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Horizon is the constant local horizon t.
	Horizon() int
	// Decide maps the view of a node, identifiers included, to its verdict.
	Decide(view *graph.View) Verdict
}

// ObliviousAlgorithm is an Id-oblivious local algorithm: a function of the
// view without identifiers. Obliviousness is structural — implementations
// never see IDs, so A(G, x, Id, v) = A(G, x, Id', v) holds by construction.
type ObliviousAlgorithm interface {
	Name() string
	Horizon() int
	// DecideOblivious maps the ID-free view of a node to its verdict.
	DecideOblivious(view *graph.View) Verdict
}

// RandomizedAlgorithm is an Id-oblivious algorithm whose nodes additionally
// toss coins: each node receives its own pseudo-random stream.
type RandomizedAlgorithm interface {
	Name() string
	Horizon() int
	DecideRandomized(view *graph.View, rng *rand.Rand) Verdict
}

// Outcome is the result of running a decision algorithm on an instance.
type Outcome struct {
	Verdicts []Verdict
	// Accepted is true iff every node output Yes.
	Accepted bool
}

// reject returns the outcome aggregate.
func aggregate(verdicts []Verdict) Outcome {
	accepted := true
	for _, v := range verdicts {
		if v == No {
			accepted = false
			break
		}
	}
	return Outcome{Verdicts: verdicts, Accepted: accepted}
}

// Run evaluates an ID-using algorithm on every node of an instance by direct
// view extraction.
func Run(alg Algorithm, in *graph.Instance) Outcome {
	verdicts := make([]Verdict, in.N())
	for v := 0; v < in.N(); v++ {
		verdicts[v] = alg.Decide(graph.ViewOf(in, v, alg.Horizon()))
	}
	return aggregate(verdicts)
}

// RunOblivious evaluates an Id-oblivious algorithm on every node of a
// labelled graph. No identifiers are involved at any point.
func RunOblivious(alg ObliviousAlgorithm, l *graph.Labeled) Outcome {
	verdicts := make([]Verdict, l.N())
	for v := 0; v < l.N(); v++ {
		verdicts[v] = alg.DecideOblivious(graph.ObliviousViewOf(l, v, alg.Horizon()))
	}
	return aggregate(verdicts)
}

// RunRandomized evaluates a randomized Id-oblivious algorithm once, deriving
// each node's coin stream deterministically from seed and the node index
// (independent streams across nodes).
func RunRandomized(alg RandomizedAlgorithm, l *graph.Labeled, seed int64) Outcome {
	verdicts := make([]Verdict, l.N())
	for v := 0; v < l.N(); v++ {
		rng := rand.New(rand.NewSource(seed ^ (int64(v+1) * 0x9e3779b97f4a7c)))
		verdicts[v] = alg.DecideRandomized(graph.ObliviousViewOf(l, v, alg.Horizon()), rng)
	}
	return aggregate(verdicts)
}

// EstimateAcceptance runs a randomized algorithm over `trials` independent
// seeds and returns the fraction of runs in which the instance was accepted
// (all nodes Yes).
func EstimateAcceptance(alg RandomizedAlgorithm, l *graph.Labeled, trials int, seed int64) float64 {
	if trials < 1 {
		panic("local: trials must be positive")
	}
	accepted := 0
	for i := 0; i < trials; i++ {
		if RunRandomized(alg, l, seed+int64(i)*2654435761).Accepted {
			accepted++
		}
	}
	return float64(accepted) / float64(trials)
}

// AsOblivious adapts an ObliviousAlgorithm to the Algorithm interface by
// stripping identifiers before deciding. This witnesses LD* ⊆ LD.
func AsOblivious(alg ObliviousAlgorithm) Algorithm {
	return obliviousAdapter{alg: alg}
}

type obliviousAdapter struct {
	alg ObliviousAlgorithm
}

func (a obliviousAdapter) Name() string { return a.alg.Name() + "/as-ld" }
func (a obliviousAdapter) Horizon() int { return a.alg.Horizon() }
func (a obliviousAdapter) Decide(view *graph.View) Verdict {
	return a.alg.DecideOblivious(view.StripIDs())
}

// Func adapters ---------------------------------------------------------------

// AlgorithmFunc builds an Algorithm from a function.
func AlgorithmFunc(name string, horizon int, decide func(view *graph.View) Verdict) Algorithm {
	return funcAlgorithm{name: name, horizon: horizon, decide: decide}
}

type funcAlgorithm struct {
	name    string
	horizon int
	decide  func(view *graph.View) Verdict
}

func (f funcAlgorithm) Name() string                    { return f.name }
func (f funcAlgorithm) Horizon() int                    { return f.horizon }
func (f funcAlgorithm) Decide(view *graph.View) Verdict { return f.decide(view) }

// ObliviousFunc builds an ObliviousAlgorithm from a function.
func ObliviousFunc(name string, horizon int, decide func(view *graph.View) Verdict) ObliviousAlgorithm {
	return funcOblivious{name: name, horizon: horizon, decide: decide}
}

type funcOblivious struct {
	name    string
	horizon int
	decide  func(view *graph.View) Verdict
}

func (f funcOblivious) Name() string                             { return f.name }
func (f funcOblivious) Horizon() int                             { return f.horizon }
func (f funcOblivious) DecideOblivious(view *graph.View) Verdict { return f.decide(view) }

// RandomizedFunc builds a RandomizedAlgorithm from a function.
func RandomizedFunc(name string, horizon int, decide func(view *graph.View, rng *rand.Rand) Verdict) RandomizedAlgorithm {
	return funcRandomized{name: name, horizon: horizon, decide: decide}
}

type funcRandomized struct {
	name    string
	horizon int
	decide  func(view *graph.View, rng *rand.Rand) Verdict
}

func (f funcRandomized) Name() string { return f.name }
func (f funcRandomized) Horizon() int { return f.horizon }
func (f funcRandomized) DecideRandomized(view *graph.View, rng *rand.Rand) Verdict {
	return f.decide(view, rng)
}

// CheckOblivious verifies empirically that an ID-using algorithm is
// Id-oblivious on a given labelled graph: its verdict vector must not change
// across the provided identifier assignments. It returns an error naming the
// offending node on the first discrepancy.
func CheckOblivious(alg Algorithm, l *graph.Labeled, assignments [][]int) error {
	if len(assignments) < 2 {
		return fmt.Errorf("local: need at least two assignments to compare")
	}
	base := Run(alg, graph.NewInstance(l, assignments[0]))
	for i, ids := range assignments[1:] {
		out := Run(alg, graph.NewInstance(l, ids))
		for v := range out.Verdicts {
			if out.Verdicts[v] != base.Verdicts[v] {
				return fmt.Errorf("local: %s is ID-sensitive: node %d flips %s -> %s under assignment %d",
					alg.Name(), v, base.Verdicts[v], out.Verdicts[v], i+1)
			}
		}
	}
	return nil
}
