// Package local implements the LOCAL model of distributed computing as used
// by the paper: constant-horizon local algorithms evaluated on radius-t
// views, in both the ID-using and the Id-oblivious variants. Evaluation
// itself — batched view extraction, scheduling, deduplication, aggregation —
// lives in internal/engine; this package defines the algorithm interfaces of
// the paper's model and adapts them onto the engine. The historical entry
// points (Run, RunOblivious, RunParallel, RunMessagePassing, ...) remain as
// thin wrappers selecting an engine scheduler.
package local

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/graph"
)

// Verdict is a node's local output in a decision task. It is the engine's
// verdict type; Yes/No and String come with it.
type Verdict = engine.Verdict

// Local outputs. A property holds globally iff every node says Yes; it fails
// iff at least one node says No.
const (
	Yes Verdict = true
	No  Verdict = false
)

// Outcome is the result of running a decision algorithm on an instance
// (the engine's outcome, including evaluation stats).
type Outcome = engine.Outcome

// Algorithm is an ID-using local algorithm: a function of the radius-t view
// (G, x, Id) |> B(v, t). Implementations must be deterministic functions of
// the view. Under assumption (C) they are ordinary computable Go functions;
// assumption (¬C) is modelled by algorithms that consult an ids.Oracle.
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Horizon is the constant local horizon t.
	Horizon() int
	// Decide maps the view of a node, identifiers included, to its verdict.
	Decide(view *graph.View) Verdict
}

// ObliviousAlgorithm is an Id-oblivious local algorithm: a function of the
// view without identifiers. Obliviousness is structural — implementations
// never see IDs, so A(G, x, Id, v) = A(G, x, Id', v) holds by construction.
// Per the LOCAL model, implementations must depend only on the isomorphism
// class of the rooted view (not on its internal numbering or on
// View.Original); the engine's canonical-view deduplication relies on this
// when a caller enables it.
type ObliviousAlgorithm interface {
	Name() string
	Horizon() int
	// DecideOblivious maps the ID-free view of a node to its verdict.
	DecideOblivious(view *graph.View) Verdict
}

// RandomizedAlgorithm is an Id-oblivious algorithm whose nodes additionally
// toss coins: each node receives its own pseudo-random stream.
type RandomizedAlgorithm interface {
	Name() string
	Horizon() int
	DecideRandomized(view *graph.View, rng *rand.Rand) Verdict
}

// EngineDecider adapts an ID-using algorithm to the engine's decider type.
func EngineDecider(alg Algorithm) engine.Decider {
	return engine.Decider{Name: alg.Name(), Horizon: alg.Horizon(), UsesIDs: true, Decide: alg.Decide}
}

// EngineObliviousDecider adapts an Id-oblivious algorithm to the engine's
// decider type.
func EngineObliviousDecider(alg ObliviousAlgorithm) engine.Decider {
	return engine.Decider{Name: alg.Name(), Horizon: alg.Horizon(), Decide: alg.DecideOblivious}
}

// EngineRandomizedDecider adapts a randomized algorithm to the engine's
// decider type.
func EngineRandomizedDecider(alg RandomizedAlgorithm) engine.Decider {
	return engine.Decider{Name: alg.Name(), Horizon: alg.Horizon(), DecideRand: alg.DecideRandomized}
}

// Run evaluates an ID-using algorithm on every node of an instance by direct
// view extraction.
func Run(alg Algorithm, in *graph.Instance) Outcome {
	return engine.Eval(EngineDecider(alg), in, engine.Options{Scheduler: engine.Sequential})
}

// RunOblivious evaluates an Id-oblivious algorithm on every node of a
// labelled graph. No identifiers are involved at any point.
func RunOblivious(alg ObliviousAlgorithm, l *graph.Labeled) Outcome {
	return engine.EvalOblivious(EngineObliviousDecider(alg), l, engine.Options{Scheduler: engine.Sequential})
}

// RunRandomized evaluates a randomized Id-oblivious algorithm once, deriving
// each node's coin stream deterministically from seed and the node index
// (independent streams across nodes).
func RunRandomized(alg RandomizedAlgorithm, l *graph.Labeled, seed int64) Outcome {
	return engine.EvalOblivious(EngineRandomizedDecider(alg), l,
		engine.Options{Scheduler: engine.Sequential, Seed: seed})
}

// EngineTrialDecider adapts a randomized algorithm to the trial engine's
// decider type (no deterministic prefix; algorithms with a coin-free stage
// worth factoring build an engine.TrialDecider directly, as
// halting.Params.TrialDecider does).
func EngineTrialDecider(alg RandomizedAlgorithm) engine.TrialDecider {
	return engine.TrialDecider{Name: alg.Name(), Horizon: alg.Horizon(), DecideRand: alg.DecideRandomized}
}

// AcceptanceTrials runs a randomized algorithm through the engine's Monte
// Carlo subsystem: trials×nodes randomized decisions on the trial worker
// pool, per-trial early exit, deterministic per-(trial, node) coin streams,
// and — when the options ask for it — adaptive stopping on the acceptance
// estimate's confidence interval. Malformed options and crashing deciders
// come back as errors (possibly with partial committed statistics).
func AcceptanceTrials(alg RandomizedAlgorithm, l *graph.Labeled, opts engine.TrialOptions) (engine.TrialStats, error) {
	return engine.EvalTrials(EngineTrialDecider(alg), l, opts)
}

// EstimateAcceptance runs a randomized algorithm over `trials` independent
// per-trial coin derivations and returns the fraction of trials in which the
// instance was accepted (all nodes Yes) — the fixed-trial-count wrapper over
// AcceptanceTrials. Each trial early-exits at the first rejecting node.
func EstimateAcceptance(alg RandomizedAlgorithm, l *graph.Labeled, trials int, seed int64) (float64, error) {
	stats, err := AcceptanceTrials(alg, l, engine.TrialOptions{Trials: trials, Seed: seed})
	if err != nil {
		return 0, err
	}
	return stats.Estimate, nil
}

// AsOblivious adapts an ObliviousAlgorithm to the Algorithm interface by
// stripping identifiers before deciding. This witnesses LD* ⊆ LD.
func AsOblivious(alg ObliviousAlgorithm) Algorithm {
	return obliviousAdapter{alg: alg}
}

type obliviousAdapter struct {
	alg ObliviousAlgorithm
}

func (a obliviousAdapter) Name() string { return a.alg.Name() + "/as-ld" }
func (a obliviousAdapter) Horizon() int { return a.alg.Horizon() }
func (a obliviousAdapter) Decide(view *graph.View) Verdict {
	return a.alg.DecideOblivious(view.StripIDs())
}

// Func adapters ---------------------------------------------------------------

// AlgorithmFunc builds an Algorithm from a function.
func AlgorithmFunc(name string, horizon int, decide func(view *graph.View) Verdict) Algorithm {
	return funcAlgorithm{name: name, horizon: horizon, decide: decide}
}

type funcAlgorithm struct {
	name    string
	horizon int
	decide  func(view *graph.View) Verdict
}

func (f funcAlgorithm) Name() string                    { return f.name }
func (f funcAlgorithm) Horizon() int                    { return f.horizon }
func (f funcAlgorithm) Decide(view *graph.View) Verdict { return f.decide(view) }

// ObliviousFunc builds an ObliviousAlgorithm from a function.
func ObliviousFunc(name string, horizon int, decide func(view *graph.View) Verdict) ObliviousAlgorithm {
	return funcOblivious{name: name, horizon: horizon, decide: decide}
}

type funcOblivious struct {
	name    string
	horizon int
	decide  func(view *graph.View) Verdict
}

func (f funcOblivious) Name() string                             { return f.name }
func (f funcOblivious) Horizon() int                             { return f.horizon }
func (f funcOblivious) DecideOblivious(view *graph.View) Verdict { return f.decide(view) }

// RandomizedFunc builds a RandomizedAlgorithm from a function.
func RandomizedFunc(name string, horizon int, decide func(view *graph.View, rng *rand.Rand) Verdict) RandomizedAlgorithm {
	return funcRandomized{name: name, horizon: horizon, decide: decide}
}

type funcRandomized struct {
	name    string
	horizon int
	decide  func(view *graph.View, rng *rand.Rand) Verdict
}

func (f funcRandomized) Name() string { return f.name }
func (f funcRandomized) Horizon() int { return f.horizon }
func (f funcRandomized) DecideRandomized(view *graph.View, rng *rand.Rand) Verdict {
	return f.decide(view, rng)
}

// CheckOblivious verifies empirically that an ID-using algorithm is
// Id-oblivious on a given labelled graph: its verdict vector must not change
// across the provided identifier assignments. It returns an error naming the
// offending node on the first discrepancy.
func CheckOblivious(alg Algorithm, l *graph.Labeled, assignments [][]int) error {
	if len(assignments) < 2 {
		return fmt.Errorf("local: need at least two assignments to compare")
	}
	base := Run(alg, graph.NewInstance(l, assignments[0]))
	for i, ids := range assignments[1:] {
		out := Run(alg, graph.NewInstance(l, ids))
		for v := range out.Verdicts {
			if out.Verdicts[v] != base.Verdicts[v] {
				return fmt.Errorf("local: %s is ID-sensitive: node %d flips %s -> %s under assignment %d",
					alg.Name(), v, base.Verdicts[v], out.Verdicts[v], i+1)
			}
		}
	}
	return nil
}
