package local

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/ids"
)

// degreeAtMost returns an oblivious algorithm accepting iff the root degree
// is at most d.
func degreeAtMost(d int) ObliviousAlgorithm {
	return ObliviousFunc("deg<=", 1, func(view *graph.View) Verdict {
		return Verdict(view.G.Degree(view.Root) <= d)
	})
}

func TestRunObliviousDegree(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Star(5), "")
	out := RunOblivious(degreeAtMost(2), l)
	if out.Accepted {
		t.Error("star centre has degree 4; should reject")
	}
	if out.Verdicts[0] != No {
		t.Error("centre should say no")
	}
	for v := 1; v < 5; v++ {
		if out.Verdicts[v] != Yes {
			t.Errorf("leaf %d should say yes", v)
		}
	}
	cyc := graph.UniformlyLabeled(graph.Cycle(6), "")
	if !RunOblivious(degreeAtMost(2), cyc).Accepted {
		t.Error("cycle is 2-regular; should accept")
	}
}

func TestRunWithIDs(t *testing.T) {
	// Accept iff the root's own identifier is even.
	alg := AlgorithmFunc("even-id", 0, func(view *graph.View) Verdict {
		return Verdict(view.RootID()%2 == 0)
	})
	l := graph.UniformlyLabeled(graph.Path(4), "")
	out := Run(alg, graph.NewInstance(l, []int{0, 2, 4, 6}))
	if !out.Accepted {
		t.Error("all even ids should accept")
	}
	out = Run(alg, graph.NewInstance(l, []int{0, 1, 2, 4}))
	if out.Accepted || out.Verdicts[1] != No {
		t.Error("node with id 1 should reject")
	}
}

func TestAsOblivious(t *testing.T) {
	alg := AsOblivious(degreeAtMost(2))
	if !strings.Contains(alg.Name(), "as-ld") {
		t.Error("adapter name missing suffix")
	}
	l := graph.UniformlyLabeled(graph.Cycle(5), "")
	for _, assign := range ids.Renumberings(5, 3, nil, 1) {
		out := Run(alg, graph.NewInstance(l, assign))
		if !out.Accepted {
			t.Error("adapter changed semantics")
		}
	}
}

func TestCheckOblivious(t *testing.T) {
	l := graph.UniformlyLabeled(graph.Cycle(5), "")
	assignments := ids.Renumberings(5, 4, ids.Linear(3), 2)

	// An oblivious algorithm passes.
	if err := CheckOblivious(AsOblivious(degreeAtMost(2)), l, assignments); err != nil {
		t.Errorf("oblivious algorithm flagged: %v", err)
	}
	// An ID-sensitive algorithm is caught.
	sensitive := AlgorithmFunc("id-parity", 0, func(view *graph.View) Verdict {
		return Verdict(view.RootID()%2 == 0)
	})
	if err := CheckOblivious(sensitive, l, assignments); err == nil {
		t.Error("ID-sensitive algorithm not flagged")
	}
	// Too few assignments.
	if err := CheckOblivious(sensitive, l, assignments[:1]); err == nil {
		t.Error("single assignment should error")
	}
}

func TestRunRandomizedDeterministicPerSeed(t *testing.T) {
	alg := RandomizedFunc("coin", 0, func(view *graph.View, rng *rand.Rand) Verdict {
		return Verdict(rng.Intn(2) == 0)
	})
	l := graph.UniformlyLabeled(graph.Cycle(9), "")
	a := RunRandomized(alg, l, 42)
	b := RunRandomized(alg, l, 42)
	for v := range a.Verdicts {
		if a.Verdicts[v] != b.Verdicts[v] {
			t.Fatal("same seed should reproduce verdicts")
		}
	}
	// Different nodes should get independent streams: with 9 nodes the
	// chance all verdicts agree per seed is 2^-8 per side; over 20 seeds
	// seeing both values somewhere is overwhelming.
	diverse := false
	for s := int64(0); s < 20 && !diverse; s++ {
		out := RunRandomized(alg, l, s)
		yes, no := 0, 0
		for _, v := range out.Verdicts {
			if v == Yes {
				yes++
			} else {
				no++
			}
		}
		if yes > 0 && no > 0 {
			diverse = true
		}
	}
	if !diverse {
		t.Error("node coin streams appear correlated")
	}
}

func TestEstimateAcceptance(t *testing.T) {
	always := RandomizedFunc("always", 0, func(view *graph.View, rng *rand.Rand) Verdict {
		return Yes
	})
	l := graph.UniformlyLabeled(graph.Path(3), "")
	if p, err := EstimateAcceptance(always, l, 10, 1); err != nil || p != 1 {
		t.Errorf("always-yes acceptance = %v (err %v)", p, err)
	}
	never := RandomizedFunc("never", 0, func(view *graph.View, rng *rand.Rand) Verdict {
		return No
	})
	if p, err := EstimateAcceptance(never, l, 10, 1); err != nil || p != 0 {
		t.Errorf("always-no acceptance = %v (err %v)", p, err)
	}
	coin := RandomizedFunc("coin", 0, func(view *graph.View, rng *rand.Rand) Verdict {
		return Verdict(rng.Intn(2) == 0)
	})
	single := graph.UniformlyLabeled(graph.New(1), "")
	p, err := EstimateAcceptance(coin, single, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.35 || p > 0.65 {
		t.Errorf("fair coin acceptance = %v, want ~0.5", p)
	}
}

// Zero trials used to panic; the library path now reports an error instead.
func TestEstimateAcceptanceErrorsOnZeroTrials(t *testing.T) {
	always := RandomizedFunc("always", 0, func(view *graph.View, rng *rand.Rand) Verdict { return Yes })
	if _, err := EstimateAcceptance(always, graph.UniformlyLabeled(graph.New(1), ""), 0, 1); err == nil {
		t.Fatal("expected error on zero trials")
	}
}

func TestVerdictString(t *testing.T) {
	if Yes.String() != "yes" || No.String() != "no" {
		t.Error("verdict strings wrong")
	}
}

func TestOutcomeAggregation(t *testing.T) {
	// An empty instance is an explicit error rather than a vacuous accept.
	l := graph.UniformlyLabeled(graph.New(0), "")
	out := RunOblivious(degreeAtMost(0), l)
	if out.Accepted || !errors.Is(out.Err, engine.ErrEmptyInstance) {
		t.Errorf("empty graph: %+v, want ErrEmptyInstance", out)
	}
}
